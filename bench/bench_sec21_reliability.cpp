// Reproduces Sec 2.1: the cluster's hardware failure history.
//
// Component failure rates are calibrated from the paper's counts; the
// Monte Carlo shows the spread a 294-node cluster owner should expect,
// and the survival model quantifies why multi-day runs complete.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "hw/reliability.hpp"
#include "io/checkpoint.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace ss::hw;
  using ss::support::Table;

  std::cout << "Sec 2.1 reproduction: failure statistics, 294 nodes, "
               "9 months\n\n";

  const auto comps = space_simulator_components();
  const auto exp = expected_failures(comps, 294, 9.0);

  // Monte Carlo distribution.
  ss::support::Rng rng(21);
  std::vector<ss::support::RunningStat> inst(comps.size()), oper(comps.size());
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const auto f = simulate_failures(comps, 294, 9.0, rng);
    for (std::size_t c = 0; c < comps.size(); ++c) {
      inst[c].add(static_cast<double>(f.install[c]));
      oper[c].add(static_cast<double>(f.operational[c]));
    }
  }

  Table t("failures by component (paper vs model, 2000 Monte Carlo runs)");
  t.header({"component", "install paper", "install E[model]",
            "install MC mean+-sd", "9-month paper", "9-month E[model]",
            "9-month MC mean+-sd"});
  for (std::size_t c = 0; c < comps.size(); ++c) {
    t.row({comps[c].name, std::to_string(comps[c].paper_install_failures),
           std::to_string(exp.install[c]),
           Table::fixed(inst[c].mean(), 1) + "+-" +
               Table::fixed(inst[c].stddev(), 1),
           std::to_string(comps[c].paper_nine_month_failures),
           std::to_string(exp.operational[c]),
           Table::fixed(oper[c].mean(), 1) + "+-" +
               Table::fixed(oper[c].stddev(), 1)});
  }
  std::cout << t << "\n";

  Table s("no-failure survival probability of the full cluster");
  s.header({"run length", "P(no component failure)"});
  for (double hours : {1.0, 24.0, 24.0 * 7, 24.0 * 30}) {
    s.row({Table::fixed(hours, 0) + " h",
           Table::fixed(cluster_survival_probability(comps, 294, hours), 3)});
  }
  std::cout << s;
  std::cout << "\nReading: disks dominate (16 of 23 operational failures),\n"
               "matching the paper's 'most common failure has been with\n"
               "disk drives'; the fanless heat-pipe CPUs never fail.\n\n";

  // Checkpoint-interval planning (ties Sec 2.1's failure model to the
  // snapshot I/O subsystem): given the cluster MTBF implied by the
  // component rates and a checkpoint cost, Young's approximation
  // tau* = sqrt(2*C*MTBF) picks the interval; the table shows how
  // overhead and expected completed steps between failures move with tau.
  const double mtbf_h = cluster_mtbf_hours(comps, 294);
  const double ckpt_cost_h = 5.0 / 60.0;  // 5-minute striped snapshot
  const double step_h = 0.25;             // one 15-minute major timestep
  const double tau_star = ss::io::optimal_checkpoint_interval(ckpt_cost_h,
                                                              mtbf_h);
  std::cout << "cluster MTBF (294 nodes, all component classes): "
            << Table::fixed(mtbf_h, 1) << " h\n"
            << "checkpoint cost C = " << Table::fixed(ckpt_cost_h * 60.0, 1)
            << " min, Young optimum tau* = sqrt(2*C*MTBF) = "
            << Table::fixed(tau_star, 2) << " h\n\n";

  Table k("checkpoint interval vs overhead (Young 1974)");
  k.header({"interval tau", "overhead C/tau + tau/2M", "useful fraction",
            "E[steps between failures]"});
  std::vector<double> taus = {0.5, 1.0, tau_star, 4.0, 8.0, 24.0};
  std::sort(taus.begin(), taus.end());
  for (double tau : taus) {
    const double ov = ss::io::checkpoint_overhead(tau, ckpt_cost_h, mtbf_h);
    // Useful work accumulated over one MTBF, in completed steps.
    const double useful = std::max(0.0, 1.0 - ov);
    k.row({Table::fixed(tau, 2) + " h" + (tau == tau_star ? " (tau*)" : ""),
           Table::fixed(100.0 * ov, 2) + " %", Table::fixed(useful, 3),
           Table::fixed(mtbf_h * useful / step_h, 0)});
  }
  std::cout << k;
  std::cout << "\nReading: at the Young optimum the overhead is minimal and\n"
               "the run completes the most timesteps per failure interval;\n"
               "checkpointing too rarely loses whole intervals of work,\n"
               "too often burns the I/O bandwidth the paper budgets at\n"
               "417 MB/s aggregate.\n";
  return 0;
}
