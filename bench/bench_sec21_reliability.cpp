// Reproduces Sec 2.1: the cluster's hardware failure history.
//
// Component failure rates are calibrated from the paper's counts; the
// Monte Carlo shows the spread a 294-node cluster owner should expect,
// and the survival model quantifies why multi-day runs complete.
#include <iostream>

#include "hw/reliability.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace ss::hw;
  using ss::support::Table;

  std::cout << "Sec 2.1 reproduction: failure statistics, 294 nodes, "
               "9 months\n\n";

  const auto comps = space_simulator_components();
  const auto exp = expected_failures(comps, 294, 9.0);

  // Monte Carlo distribution.
  ss::support::Rng rng(21);
  std::vector<ss::support::RunningStat> inst(comps.size()), oper(comps.size());
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const auto f = simulate_failures(comps, 294, 9.0, rng);
    for (std::size_t c = 0; c < comps.size(); ++c) {
      inst[c].add(static_cast<double>(f.install[c]));
      oper[c].add(static_cast<double>(f.operational[c]));
    }
  }

  Table t("failures by component (paper vs model, 2000 Monte Carlo runs)");
  t.header({"component", "install paper", "install E[model]",
            "install MC mean+-sd", "9-month paper", "9-month E[model]",
            "9-month MC mean+-sd"});
  for (std::size_t c = 0; c < comps.size(); ++c) {
    t.row({comps[c].name, std::to_string(comps[c].paper_install_failures),
           std::to_string(exp.install[c]),
           Table::fixed(inst[c].mean(), 1) + "+-" +
               Table::fixed(inst[c].stddev(), 1),
           std::to_string(comps[c].paper_nine_month_failures),
           std::to_string(exp.operational[c]),
           Table::fixed(oper[c].mean(), 1) + "+-" +
               Table::fixed(oper[c].stddev(), 1)});
  }
  std::cout << t << "\n";

  Table s("no-failure survival probability of the full cluster");
  s.header({"run length", "P(no component failure)"});
  for (double hours : {1.0, 24.0, 24.0 * 7, 24.0 * 30}) {
    s.row({Table::fixed(hours, 0) + " h",
           Table::fixed(cluster_survival_probability(comps, 294, hours), 3)});
  }
  std::cout << s;
  std::cout << "\nReading: disks dominate (16 of 23 operational failures),\n"
               "matching the paper's 'most common failure has been with\n"
               "disk drives'; the fanless heat-pipe CPUs never fail.\n";
  return 0;
}
