// Reproduces Sec 2.1: the cluster's hardware failure history.
//
// Component failure rates are calibrated from the paper's counts; the
// Monte Carlo shows the spread a 294-node cluster owner should expect,
// and the survival model quantifies why multi-day runs complete.
//
// The SDC drill extends the failure model to the class Sec 2.1's counts
// cannot see: silent memory corruption. Pre-drawn bit-flip schedules at
// several rates land in a live multi-rank leapfrog run under two
// detector configurations (slab-CRC guard vs energy gate alone); the
// table reports detection latency and recovery cost per tier, and every
// healed run is compared bit-for-bit against an uninjected baseline.
//
// `--json [PATH]` writes the failure-model numbers and the SDC rows as
// machine-readable JSON (default BENCH_sec21_reliability.json).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "hw/reliability.hpp"
#include "integrity/memfault.hpp"
#include "io/checkpoint.hpp"
#include "nbody/checkpoint.hpp"
#include "nbody/ic.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ss::hw;
  using ss::support::Table;

  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-')
                      ? std::string(argv[++i])
                      : std::string("BENCH_sec21_reliability.json");
    } else {
      std::cerr << "usage: " << argv[0] << " [--json [PATH]]\n";
      return 2;
    }
  }

  std::cout << "Sec 2.1 reproduction: failure statistics, 294 nodes, "
               "9 months\n\n";

  const auto comps = space_simulator_components();
  const auto exp = expected_failures(comps, 294, 9.0);

  // Monte Carlo distribution.
  ss::support::Rng rng(21);
  std::vector<ss::support::RunningStat> inst(comps.size()), oper(comps.size());
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const auto f = simulate_failures(comps, 294, 9.0, rng);
    for (std::size_t c = 0; c < comps.size(); ++c) {
      inst[c].add(static_cast<double>(f.install[c]));
      oper[c].add(static_cast<double>(f.operational[c]));
    }
  }

  Table t("failures by component (paper vs model, 2000 Monte Carlo runs)");
  t.header({"component", "install paper", "install E[model]",
            "install MC mean+-sd", "9-month paper", "9-month E[model]",
            "9-month MC mean+-sd"});
  for (std::size_t c = 0; c < comps.size(); ++c) {
    t.row({comps[c].name, std::to_string(comps[c].paper_install_failures),
           std::to_string(exp.install[c]),
           Table::fixed(inst[c].mean(), 1) + "+-" +
               Table::fixed(inst[c].stddev(), 1),
           std::to_string(comps[c].paper_nine_month_failures),
           std::to_string(exp.operational[c]),
           Table::fixed(oper[c].mean(), 1) + "+-" +
               Table::fixed(oper[c].stddev(), 1)});
  }
  std::cout << t << "\n";

  Table s("no-failure survival probability of the full cluster");
  s.header({"run length", "P(no component failure)"});
  for (double hours : {1.0, 24.0, 24.0 * 7, 24.0 * 30}) {
    s.row({Table::fixed(hours, 0) + " h",
           Table::fixed(cluster_survival_probability(comps, 294, hours), 3)});
  }
  std::cout << s;
  std::cout << "\nReading: disks dominate (16 of 23 operational failures),\n"
               "matching the paper's 'most common failure has been with\n"
               "disk drives'; the fanless heat-pipe CPUs never fail.\n\n";

  // Checkpoint-interval planning (ties Sec 2.1's failure model to the
  // snapshot I/O subsystem): given the cluster MTBF implied by the
  // component rates and a checkpoint cost, Young's approximation
  // tau* = sqrt(2*C*MTBF) picks the interval; the table shows how
  // overhead and expected completed steps between failures move with tau.
  const double mtbf_h = cluster_mtbf_hours(comps, 294);
  const double ckpt_cost_h = 5.0 / 60.0;  // 5-minute striped snapshot
  const double step_h = 0.25;             // one 15-minute major timestep
  const double tau_star = ss::io::optimal_checkpoint_interval(ckpt_cost_h,
                                                              mtbf_h);
  std::cout << "cluster MTBF (294 nodes, all component classes): "
            << Table::fixed(mtbf_h, 1) << " h\n"
            << "checkpoint cost C = " << Table::fixed(ckpt_cost_h * 60.0, 1)
            << " min, Young optimum tau* = sqrt(2*C*MTBF) = "
            << Table::fixed(tau_star, 2) << " h\n\n";

  Table k("checkpoint interval vs overhead (Young 1974)");
  k.header({"interval tau", "overhead C/tau + tau/2M", "useful fraction",
            "E[steps between failures]"});
  std::vector<double> taus = {0.5, 1.0, tau_star, 4.0, 8.0, 24.0};
  std::sort(taus.begin(), taus.end());
  for (double tau : taus) {
    const double ov = ss::io::checkpoint_overhead(tau, ckpt_cost_h, mtbf_h);
    // Useful work accumulated over one MTBF, in completed steps.
    const double useful = std::max(0.0, 1.0 - ov);
    k.row({Table::fixed(tau, 2) + " h" + (tau == tau_star ? " (tau*)" : ""),
           Table::fixed(100.0 * ov, 2) + " %", Table::fixed(useful, 3),
           Table::fixed(mtbf_h * useful / step_h, 0)});
  }
  std::cout << k;
  std::cout << "\nReading: at the Young optimum the overhead is minimal and\n"
               "the run completes the most timesteps per failure interval;\n"
               "checkpointing too rarely loses whole intervals of work,\n"
               "too often burns the I/O bandwidth the paper budgets at\n"
               "417 MB/s aggregate.\n";

  // -------------------------------------------------------------------------
  // SDC drill: seeded memory bit flips vs the integrity layer.
  //
  // Flip schedules are pre-drawn from a seed at each rate (a Bernoulli
  // decision per rank/step/region, the LinkFaultModel fate discipline),
  // so each row replays exactly and consumed flips do not re-fire during
  // checkpoint-rollback replays. Two detector configurations:
  //
  //  - crc-guard: slab-CRC shadow guard + per-step tree audit. The CRC
  //    is magnitude-blind, so flips get arbitrary (offset, bit); every
  //    one is caught at the next step boundary (latency 0) and healed by
  //    a tier-1 slab memcpy before it ever touches dynamics.
  //  - energy-gate: physics invariant only. The gate can only see
  //    dynamics-visible upsets, so flips target a double's exponent MSB
  //    (byte 8k+7, bit 6); detection lands one step late, and recovery
  //    escalates through step retry to a tier-3 checkpoint rollback.
  constexpr int kSdcRanks = 2;
  constexpr std::uint64_t kSdcSteps = 10;
  constexpr int kSdcBodies = 220;

  std::cout << "\nSDC drill: seeded bit flips in live memory (" << kSdcRanks
            << " ranks, " << kSdcBodies << " bodies, " << kSdcSteps
            << " steps, checkpoint every 2)\n\n";

  ss::support::Rng icrng(4242);
  const auto initial = ss::nbody::plummer_sphere(kSdcBodies, icrng);

  namespace fs = std::filesystem;
  const fs::path sdc_root =
      fs::temp_directory_path() /
      ("ss_sec21_sdc_" + std::to_string(static_cast<long>(::getpid())));

  ss::nbody::RecoveryConfig base_rc;
  base_rc.ranks = kSdcRanks;
  base_rc.steps = kSdcSteps;
  base_rc.checkpoint_every = 2;
  base_rc.dt = 1e-3;
  base_rc.engine.batch_interactions = false;  // deterministic parity path
  base_rc.max_restarts = 32;

  auto flatten = [](const ss::nbody::RecoveryResult& r) {
    std::vector<ss::nbody::Body> all;
    for (const auto& v : r.bodies) all.insert(all.end(), v.begin(), v.end());
    return all;
  };
  int run_id = 0;
  auto run_one = [&](ss::nbody::RecoveryConfig rc) {
    rc.store.dir = (sdc_root / ("run_" + std::to_string(run_id++))).string();
    const auto t0 = std::chrono::steady_clock::now();
    auto res = ss::nbody::run_with_recovery(rc, initial, nullptr);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return std::make_pair(std::move(res), wall);
  };

  const auto [clean, clean_wall] = run_one(base_rc);
  const auto clean_flat = flatten(clean);
  auto max_dev = [&](const ss::nbody::RecoveryResult& r) {
    const auto a = flatten(r);
    if (a.size() != clean_flat.size()) {
      return std::numeric_limits<double>::infinity();
    }
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double d[7] = {a[i].pos.x - clean_flat[i].pos.x,
                           a[i].pos.y - clean_flat[i].pos.y,
                           a[i].pos.z - clean_flat[i].pos.z,
                           a[i].vel.x - clean_flat[i].vel.x,
                           a[i].vel.y - clean_flat[i].vel.y,
                           a[i].vel.z - clean_flat[i].vel.z,
                           a[i].mass - clean_flat[i].mass};
      for (const double v : d) m = std::max(m, std::abs(v));
    }
    return m;
  };

  auto draw_flips = [&](double rate, std::uint64_t seed,
                        std::initializer_list<const char*> regions,
                        bool exponent_msb) {
    std::vector<ss::integrity::ScheduledFlip> out;
    ss::support::SplitMix64 h(seed);
    for (int r = 0; r < kSdcRanks; ++r) {
      for (std::uint64_t s = 1; s <= kSdcSteps; ++s) {
        for (const char* reg : regions) {
          const double u = static_cast<double>(h.next() >> 11) * 0x1.0p-53;
          const std::uint64_t off = h.next();
          const int bit = static_cast<int>(h.next() & 7);
          if (u >= rate) continue;
          ss::integrity::ScheduledFlip f;
          f.rank = r;
          f.step = s;
          f.region = reg;
          f.offset = exponent_msb ? (off % 4096) * 8 + 7 : off;
          f.bit = exponent_msb ? 6 : bit;
          out.push_back(f);
        }
      }
    }
    return out;
  };

  struct SdcRow {
    const char* config;
    double rate;
    std::size_t planned;
    ss::integrity::Summary s;
    int restarts;
    double latency;  ///< Worst-case detection latency, steps.
    double dev;
    double wall;
  };
  std::vector<SdcRow> rows;

  for (const double rate : {0.0, 0.05, 0.2}) {
    ss::nbody::RecoveryConfig rc = base_rc;
    const auto flips =
        draw_flips(rate, 0x5dc0ULL + static_cast<std::uint64_t>(rate * 1e4),
                   {"bodies", "acc", "work"}, false);
    rc.integrity.mem_faults =
        std::make_shared<ss::integrity::MemFaultInjector>(flips);
    rc.integrity.guard = true;
    rc.integrity.audit_tree_every = 1;
    auto [res, wall] = run_one(rc);
    rows.push_back({"crc-guard", rate, flips.size(), res.integrity,
                    res.restarts, 0.0, max_dev(res), wall});
  }
  for (const double rate : {0.15, 0.3}) {
    ss::nbody::RecoveryConfig rc = base_rc;
    const auto flips =
        draw_flips(rate, 0xd1ceULL + static_cast<std::uint64_t>(rate * 1e4),
                   {"bodies"}, true);
    rc.integrity.mem_faults =
        std::make_shared<ss::integrity::MemFaultInjector>(flips);
    rc.integrity.energy_rel_gate = 1e-3;
    rc.integrity.max_step_retries = 1;
    auto [res, wall] = run_one(rc);
    rows.push_back({"energy-gate", rate, flips.size(), res.integrity,
                    res.restarts, 1.0, max_dev(res), wall});
  }
  std::error_code ec;
  fs::remove_all(sdc_root, ec);

  auto sci = [](double v) {
    std::ostringstream o;
    o << std::scientific << std::setprecision(1) << v;
    return o.str();
  };
  Table d("SDC defense: detection latency and recovery cost per tier");
  d.header({"config", "flip rate", "injected", "detected", "gate trips",
            "t1 slab", "t2 recompute", "retries", "t3 rollback", "latency",
            "replay bound", "max |dev|", "wall s"});
  for (const SdcRow& r : rows) {
    d.row({r.config, Table::fixed(r.rate, 2),
           std::to_string(r.s.faults_injected),
           std::to_string(r.s.faults_detected),
           std::to_string(r.s.invariant_trips),
           std::to_string(r.s.repairs_local),
           std::to_string(r.s.repairs_recompute),
           std::to_string(r.s.step_retries), std::to_string(r.s.rollbacks),
           Table::fixed(r.latency, 0) + " step",
           std::to_string(r.s.rollbacks * base_rc.checkpoint_every) +
               " steps",
           r.dev == 0.0 ? std::string("bit-exact") : sci(r.dev),
           Table::fixed(r.wall, 3)});
  }
  std::cout << d;
  std::cout << "\nReading: the CRC guard is magnitude-blind — every flip is\n"
               "caught at the very next step boundary (latency 0) and healed\n"
               "by a tier-1 slab memcpy before dynamics ever see it; the\n"
               "energy gate detects one step late and pays a tier-3 rollback\n"
               "(replaying at most checkpoint_every steps). Both end\n"
               "bit-exact against the uninjected baseline, and the\n"
               "zero-flip row shows injection off costs nothing observable.\n";

  if (json_path) {
    std::ofstream os(*json_path);
    if (!os) {
      std::cerr << "cannot open " << *json_path << "\n";
      return 1;
    }
    ss::support::json::Writer w(os);
    w.begin_object();
    w.kv("bench", "sec21_reliability");
    w.kv("nodes", 294);
    w.kv("cluster_mtbf_hours", mtbf_h);
    w.kv("checkpoint_cost_hours", ckpt_cost_h);
    w.kv("tau_star_hours", tau_star);
    w.key("components");
    w.begin_array();
    for (std::size_t c = 0; c < comps.size(); ++c) {
      w.begin_object();
      w.kv("name", comps[c].name);
      w.kv("paper_install", comps[c].paper_install_failures);
      w.kv("paper_nine_month", comps[c].paper_nine_month_failures);
      w.kv("expected_install", exp.install[c]);
      w.kv("expected_nine_month", exp.operational[c]);
      w.end_object();
    }
    w.end_array();
    w.key("sdc");
    w.begin_object();
    w.kv("ranks", kSdcRanks);
    w.kv("steps", kSdcSteps);
    w.kv("bodies", kSdcBodies);
    w.kv("checkpoint_every", base_rc.checkpoint_every);
    w.kv("clean_wall_seconds", clean_wall);
    w.key("rows");
    w.begin_array();
    for (const SdcRow& r : rows) {
      w.begin_object();
      w.kv("config", r.config);
      w.kv("flip_rate", r.rate);
      w.kv("scheduled", static_cast<std::uint64_t>(r.planned));
      w.kv("injected", r.s.faults_injected);
      w.kv("detected", r.s.faults_detected);
      w.kv("invariant_trips", r.s.invariant_trips);
      w.kv("tier1_repairs_local", r.s.repairs_local);
      w.kv("shadow_refreshed", r.s.shadow_refreshed);
      w.kv("tier2_repairs_recompute", r.s.repairs_recompute);
      w.kv("step_retries", r.s.step_retries);
      w.kv("tier3_rollbacks", r.s.rollbacks);
      w.kv("tree_audit_findings", r.s.tree_audit_findings);
      w.kv("unrecoverable_slabs", r.s.unrecoverable_slabs);
      w.kv("restarts", r.restarts);
      w.kv("detection_latency_steps", r.latency);
      w.kv("replay_bound_steps", r.s.rollbacks * base_rc.checkpoint_every);
      w.kv("max_abs_dev_vs_clean", r.dev);
      w.kv("wall_seconds", r.wall);
      w.end_object();
    }
    w.end_array();
    w.end_object();  // sdc
    w.end_object();
    std::cout << "\nmachine-readable results: " << *json_path << "\n";
  }
  return 0;
}
