// Reproduces Fig 7 / Sec 4.3: the cosmological production run.
//
// The paper's run: 134 million particles, ~700 timesteps, 24 hours on 250
// processors, 10^16 floating point operations (112 Gflop/s sustained),
// 1.5 TB written at 417 MB/s average (I/O in parallel to local disks,
// ~7 GB/s peak).
//
// We run the real pipeline at laptop scale — BBKS spectrum, Zel'dovich
// ICs, comoving treecode evolution to z ~ 2 — measure the per-particle
// flop cost of a treecode step, and project the production run's totals
// from it. The I/O model follows from the snapshot format.
// `--json [PATH]` additionally writes the measured and projected numbers
// as machine-readable JSON (default BENCH_fig7_cosmology.json) so the
// perf trajectory of this bench can be tracked across PRs.
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include <filesystem>

#include "cosmo/fof.hpp"
#include "cosmo/measure.hpp"
#include "cosmo/power.hpp"
#include "cosmo/sim.hpp"
#include "cosmo/zeldovich.hpp"
#include "hot/tree.hpp"
#include "io/checkpoint.hpp"
#include "io/snapshot.hpp"
#include "nbody/checkpoint.hpp"
#include "nbody/ic.hpp"
#include "nbody/integrator.hpp"
#include "nbody/outofcore.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "simnet/profile.hpp"
#include "support/json.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "vmpi/comm.hpp"

namespace {

// One engine step of the distributed multi-step run (rank-summed).
struct EngineStepRow {
  int step = 0;
  std::uint64_t remote_requests = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t walks_parked = 0;
  std::uint64_t messages = 0;  ///< physical vmpi messages this step
  double vtime_seconds = 0.0;
};

// Aggregate snapshot-I/O numbers from the striped checkpoint writer
// (the production run's 417 MB/s / 1.5 TB pattern at laptop scale).
struct SnapshotIoResult {
  std::uint64_t total_bytes = 0;   ///< Stripe bytes across all ranks.
  std::uint64_t generations = 0;   ///< Committed, fully valid generations.
  double write_seconds_max = 0.0;  ///< Slowest rank's disk time.
  double overlap_frac = 0.0;       ///< Fraction of writes hidden by compute.
  double aggregate_mb_per_s = 0.0;
};

// A production run is hundreds of steps on the same engine: measure the
// communication-avoidance trajectory (Sec 4.2's request ledger) on a
// distributed leapfrog at laptop scale. The velocities ride through the
// decomposition as the engine's aux payload. With `snapshot_dir` set,
// every step also checkpoints through the double-buffered CheckpointStore
// (real striped files on disk), so the write overlaps the next step's
// force computation exactly as in production.
std::vector<EngineStepRow> run_engine_trajectory(
    int ranks, int steps,
    const std::optional<std::filesystem::path>& snapshot_dir = std::nullopt,
    SnapshotIoResult* io_out = nullptr, ss::obs::Session* obs = nullptr) {
  auto model = ss::vmpi::make_space_simulator_model(
      ss::simnet::lam_homogeneous(), 623.9e6);
  ss::vmpi::Runtime rt(ranks, model);
  if (obs != nullptr) rt.attach_observer(obs);
  std::vector<EngineStepRow> rows(static_cast<std::size_t>(steps));
  std::mutex mu;
  rt.run([&](ss::vmpi::Comm& c) {
    ss::support::Rng rng(static_cast<std::uint64_t>(1000 + c.rank()));
    auto bodies = ss::nbody::cold_sphere(2048, rng);
    ss::hot::ParallelConfig cfg;
    cfg.theta = 0.6;
    cfg.eps2 = 1e-6;
    // Step 0 is the constructor's cold evaluation (empty ledger); each
    // further step prefetches the previous step's request set.
    ss::nbody::ParallelLeapfrog lf(c, bodies, cfg);
    std::unique_ptr<ss::io::CheckpointStore> store;
    if (snapshot_dir) {
      store = std::make_unique<ss::io::CheckpointStore>(
          c, ss::io::CheckpointStore::Config{.dir = *snapshot_dir,
                                             .keep = steps + 1,
                                             .async = true});
    }
    for (int s = 0; s < steps; ++s) {
      if (s > 0) lf.step(0.01);
      if (store) {
        ss::nbody::save_checkpoint(*store, static_cast<std::uint64_t>(s),
                                   lf);
      }
      const auto& st = lf.last_stats();
      const std::uint64_t requests = c.allreduce_sum_u64(st.remote_requests);
      const std::uint64_t hits = c.allreduce_sum_u64(st.prefetch_hits);
      const std::uint64_t parked = c.allreduce_sum_u64(st.walks_parked);
      const std::uint64_t msgs = c.allreduce_sum_u64(st.vmpi_messages);
      if (c.rank() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        EngineStepRow& row = rows[static_cast<std::size_t>(s)];
        row.step = s;
        row.remote_requests = requests;
        row.prefetch_hits = hits;
        row.walks_parked = parked;
        row.messages = msgs;
        row.vtime_seconds = st.decompose_seconds + st.build_seconds +
                            st.traverse_seconds;
      }
    }
    if (store) {
      store->finalize();  // commit the last pending generation
      const auto stats = store->io_stats();
      const std::uint64_t bytes = c.allreduce_sum_u64(stats.bytes);
      const double write_max = c.allreduce_max(stats.write_seconds);
      const double write_sum = c.allreduce_sum(stats.write_seconds);
      const double blocked_sum = c.allreduce_sum(stats.blocked_seconds);
      if (c.rank() == 0 && io_out) {
        io_out->total_bytes = bytes;
        io_out->write_seconds_max = write_max;
        io_out->overlap_frac =
            write_sum > 0.0
                ? std::max(0.0, 1.0 - blocked_sum / write_sum)
                : 0.0;
        io_out->aggregate_mb_per_s =
            write_max > 0.0 ? bytes / 1e6 / write_max : 0.0;
      }
    }
  });
  if (snapshot_dir && io_out) {
    for (const std::uint64_t gen :
         ss::io::CheckpointStore::list_generations(*snapshot_dir)) {
      if (ss::io::snapshot_valid(
              ss::io::CheckpointStore::generation_dir(*snapshot_dir, gen),
              "ckpt")) {
        ++io_out->generations;
      }
    }
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ss::cosmo;
  using ss::support::Table;

  std::optional<std::string> json_path;
  std::optional<std::filesystem::path> snapshots_dir;
  std::optional<std::string> trace_prefix;
  bool scrub = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-')
                      ? std::string(argv[++i])
                      : std::string("BENCH_fig7_cosmology.json");
    } else if (std::strcmp(argv[i], "--snapshots") == 0) {
      snapshots_dir = (i + 1 < argc && argv[i + 1][0] != '-')
                          ? std::filesystem::path(argv[++i])
                          : std::filesystem::path("BENCH_fig7_snapshots");
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_prefix = (i + 1 < argc && argv[i + 1][0] != '-')
                         ? std::string(argv[++i])
                         : std::string("BENCH_fig7_obs");
    } else if (std::strcmp(argv[i], "--scrub") == 0) {
      scrub = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--json [PATH]] [--snapshots [DIR]] [--trace [PREFIX]]"
                   " [--scrub]\n";
      return 2;
    }
  }
  if (scrub && !snapshots_dir) {
    // Nothing to scrub without snapshots on disk: imply the default dir.
    snapshots_dir = std::filesystem::path("BENCH_fig7_snapshots");
  }

  std::cout << "Fig 7 / Sec 4.3 reproduction: cosmological N-body run\n\n";

  PowerSpectrum power;  // 125 Mpc/h box, the Fig 7 scale
  power.sigma8 = 1.3;   // slightly hot so nonlinear structure appears at 16^3
  power.normalize();
  ZeldovichConfig zcfg;
  zcfg.grid = 16;
  zcfg.a_start = 0.1;
  auto ics = zeldovich_ics(lcdm_2003(), power, zcfg);

  SimConfig scfg;
  scfg.engine = ForceEngine::tree;
  scfg.theta = 0.6;
  CosmoSim sim(lcdm_2003(), ics.bodies, ics.a, scfg);

  Table evo("real run: 16^3 particles, 125 Mpc/h box, LCDM");
  evo.header({"a", "redshift", "sigma_delta (16^3 grid)"});
  ss::support::WallTimer timer;
  const int steps_per_leg = 8;
  evo.row({Table::fixed(sim.a(), 3), Table::fixed(1.0 / sim.a() - 1.0, 2),
           Table::fixed(sigma_delta(sim.bodies(), 16), 3)});
  int total_steps = 0;
  for (double a_target : {0.15, 0.25, 0.4, 0.6}) {
    sim.evolve_to(a_target, steps_per_leg);
    total_steps += steps_per_leg;
    evo.row({Table::fixed(sim.a(), 3), Table::fixed(1.0 / sim.a() - 1.0, 2),
             Table::fixed(sigma_delta(sim.bodies(), 16), 3)});
  }
  std::cout << evo;

  const double evolve_seconds = timer.seconds();
  std::cout << "\nwall time " << Table::fixed(evolve_seconds, 1) << " s for "
            << total_steps << " steps of " << ics.bodies.size()
            << " particles (tree engine, 27-image periodicity)\n";

  // Substructure: the paper's motivation for the resolution ("examine the
  // sub-structure of dark matter halos").
  const auto halos = friends_of_friends(
      sim.bodies(), {.linking_b = 0.25, .min_members = 8, .periodic = true});
  std::cout << "friends-of-friends groups at z = "
            << Table::fixed(1.0 / sim.a() - 1.0, 1) << ": " << halos.size()
            << (halos.empty()
                    ? ""
                    : ", largest " +
                          std::to_string(halos.front().members.size()) +
                          " particles")
            << "\n";

  // Host I/O rate through the out-of-core snapshot writer (the paper's
  // runs streamed snapshots to local disks at ~28 MB/s per node).
  double io_mb = 0.0;
  double io_mb_per_s = 0.0;
  {
    const auto path =
        std::filesystem::temp_directory_path() / "ss_fig7_snapshot.bin";
    ss::support::WallTimer io;
    ss::nbody::OutOfCoreStore store(path, 4096);
    for (int rep = 0; rep < 50; ++rep) store.append(sim.bodies());
    store.finish();
    io_mb = static_cast<double>(store.bytes()) / 1e6;
    io_mb_per_s = io_mb / io.seconds();
    std::cout << "host snapshot write rate: " << Table::fixed(io_mb_per_s, 0)
              << " MB/s (" << Table::fixed(io_mb, 0) << " MB)\n\n";
  }

  // Per-particle treecode cost grows ~log N; measure the plain treecode at
  // three sizes on the standard clustered problem and extrapolate the
  // logarithmic fit to the production particle count.
  Table cost("treecode force cost vs N (theta = 0.6, measured)");
  cost.header({"N", "kflop per particle"});
  std::vector<double> lnN, kflops;
  for (int n : {8192, 32768, 131072}) {
    ss::support::Rng crng(77);
    auto bodies = ss::nbody::cold_sphere(n, crng);
    auto sources = ss::nbody::sources_of(bodies);
    ss::hot::Tree tree(sources, ss::hot::TreeConfig{16});
    ss::hot::TraverseStats st;
    (void)tree.accelerate_all({.theta = 0.6, .eps2 = 1e-6,
                               .method = ss::gravity::RsqrtMethod::libm},
                              &st);
    const double per = static_cast<double>(st.flops()) / n / 1000.0;
    cost.row({std::to_string(n), Table::fixed(per, 1)});
    lnN.push_back(std::log(static_cast<double>(n)));
    kflops.push_back(per);
  }
  const auto fit = ss::support::fit_line(lnN, kflops);
  const double flops_per_body_step =
      (fit.intercept + fit.slope * std::log(134e6)) * 1000.0;
  cost.row({"134M (extrapolated)",
            Table::fixed(flops_per_body_step / 1000.0, 1)});
  std::cout << cost << "\n";

  // Project the production run.
  const double n_prod = 134e6;
  const double steps_prod = 700.0;
  const double total_flops = flops_per_body_step * n_prod * steps_prod;
  const double hours = 24.0;
  const double gflops_sustained = total_flops / (hours * 3600.0) / 1e9;

  // I/O model: position+velocity+id in single precision + header overhead
  // ~ 28-48 bytes/particle; the paper's 1.5 TB over the run implies ~230
  // snapshots at 48 B.
  const double snapshot_bytes = n_prod * 48.0;
  const double total_io = 1.5e12;
  const double snapshots = total_io / snapshot_bytes;

  Table proj("production projection vs paper (Sec 4.3)");
  proj.header({"quantity", "model", "paper"});
  proj.row({"particles", "134M", "134M"});
  proj.row({"timesteps", "700", "~700"});
  proj.row({"total flops", Table::num(total_flops, 3), "1e16"});
  proj.row({"sustained Gflop/s over 24h",
            Table::fixed(gflops_sustained, 0), "112"});
  proj.row({"Gflop/s available (250 procs x 623.9 Mflops)",
            Table::fixed(250 * 623.9 / 1000.0, 0), "156 (treecode peak)"});
  proj.row({"duty cycle implied",
            Table::fixed(gflops_sustained / (250 * 623.9 / 1000.0), 2),
            "~0.7 (I/O, analysis)"});
  proj.row({"snapshot size (48 B/particle)",
            Table::fixed(snapshot_bytes / 1e9, 1) + " GB", "-"});
  proj.row({"snapshots in 1.5 TB", Table::fixed(snapshots, 0), "-"});
  proj.row({"avg I/O rate over 1h of writing",
            Table::fixed(total_io / 3600.0 / 1e6, 0) + " MB/s", "417 MB/s"});
  proj.row({"peak I/O (250 local disks x 28 MB/s)",
            Table::fixed(250 * 28.0 / 1000.0, 1) + " GB/s", "~7 GB/s"});
  std::cout << proj;

  std::cout << "\nShape check: the measured per-particle treecode cost puts\n"
               "the 134M x 700-step run at ~1e16 flops, sustaining ~1e2\n"
               "Gflop/s over 24 h on 250 nodes — the paper's numbers.\n";

  // Multi-step distributed engine: production runs amortize the remote-
  // cell request traffic across steps via the persistent engine's ledger
  // prefetch; measure that trajectory on a small virtual cluster.
  constexpr int kEngineRanks = 8;
  constexpr int kEngineSteps = 4;
  SnapshotIoResult snap_io;
  if (snapshots_dir) {
    std::filesystem::create_directories(*snapshots_dir);
  }
  std::unique_ptr<ss::obs::Session> obs;
  if (trace_prefix) obs = std::make_unique<ss::obs::Session>(kEngineRanks);
  const auto engine_rows = run_engine_trajectory(
      kEngineRanks, kEngineSteps, snapshots_dir,
      snapshots_dir ? &snap_io : nullptr, obs.get());
  {
    Table t("multi-step distributed leapfrog (8 virtual nodes, "
            "persistent engine)");
    t.header({"step", "remote requests", "prefetch hits", "walks parked",
              "messages", "vtime (ms)"});
    for (const EngineStepRow& r : engine_rows) {
      t.row({std::to_string(r.step), std::to_string(r.remote_requests),
             std::to_string(r.prefetch_hits), std::to_string(r.walks_parked),
             std::to_string(r.messages),
             Table::fixed(r.vtime_seconds * 1000.0, 1)});
    }
    std::cout << "\n" << t;
    std::cout << "\nReading: step 0 fetches every remote cell on demand;\n"
                 "later steps bulk-prefetch the previous step's request set\n"
                 "before walks start, so the demand trickle (and the parked\n"
                 "walks it causes) collapses. Over a ~700-step production\n"
                 "run the cold step is noise.\n";
  }

  if (snapshots_dir) {
    // Real striped snapshots written during the trajectory above: every
    // rank streams its stripe through the double-buffered AsyncWriter
    // while the next step's forces compute, and rank 0 commits the
    // manifest one generation behind — the paper's parallel-to-local-
    // disks pattern (417 MB/s aggregate over 1.5 TB) at laptop scale.
    Table t("striped snapshot I/O (--snapshots " +
            snapshots_dir->string() + ")");
    t.header({"quantity", "value", "paper"});
    t.row({"valid generations", std::to_string(snap_io.generations), "~230"});
    t.row({"total bytes",
           Table::fixed(static_cast<double>(snap_io.total_bytes) / 1e6, 1) +
               " MB",
           "1.5 TB"});
    t.row({"aggregate write rate",
           Table::fixed(snap_io.aggregate_mb_per_s, 0) + " MB/s",
           "417 MB/s"});
    t.row({"write overlap fraction", Table::fixed(snap_io.overlap_frac, 3),
           "-"});
    std::cout << "\n" << t;
    std::cout << "\nReading: overlap fraction is the share of disk time\n"
                 "hidden behind compute by the async double buffer; the\n"
                 "commit-one-behind protocol means a crash loses at most\n"
                 "the single uncommitted generation.\n";
  }

  std::optional<ss::io::ScrubReport> scrub_report;
  if (scrub) {
    // Proactive media-rot sweep: re-read every generation and re-verify
    // every stripe CRC now, instead of discovering damage lazily at
    // restart time. Damaged committed generations bump io.scrub_errors.
    scrub_report = ss::io::CheckpointStore::scrub_dir(*snapshots_dir, "ckpt");
    Table t("checkpoint scrub (--scrub " + snapshots_dir->string() + ")");
    t.header({"quantity", "value"});
    t.row({"generations scanned",
           std::to_string(scrub_report->generations_scanned)});
    t.row({"fully CRC-valid", std::to_string(scrub_report->generations_ok)});
    t.row({"uncommitted (benign)", std::to_string(scrub_report->uncommitted)});
    t.row({"damaged", std::to_string(scrub_report->errors)});
    std::string ids;
    for (const std::uint64_t g : scrub_report->damaged) {
      ids += (ids.empty() ? "" : " ") + std::to_string(g);
    }
    t.row({"damaged generation ids", ids.empty() ? "-" : ids});
    std::cout << "\n" << t;
  }

  if (obs) {
    // Causal trace of the multi-step engine run: Chrome trace (flow
    // arrows between ranks), machine summary (counters + histogram
    // quantiles + critical path) and the attribution table.
    const std::string trace_path = *trace_prefix + ".trace.json";
    const std::string summary_path = *trace_prefix + ".summary.json";
    ss::obs::write_chrome_trace_file(*obs, trace_path);
    ss::obs::write_summary_file(*obs, summary_path);
    const ss::obs::CriticalPath cp(*obs);
    std::cout << "\n"
              << cp.table("critical-path attribution (8-rank engine "
                          "trajectory)");
    std::cout << "\ntrace: " << trace_path << "  summary: " << summary_path
              << "  (attributed " << Table::fixed(cp.attributed_frac(), 3)
              << " of the window)\n";
  }

  if (json_path) {
    std::ofstream os(*json_path);
    if (!os) {
      std::cerr << "cannot open " << *json_path << "\n";
      return 1;
    }
    ss::support::json::Writer w(os);
    w.begin_object();
    w.kv("bench", "fig7_cosmology");
    w.key("measured");
    w.begin_object();
    w.kv("particles", static_cast<std::uint64_t>(ics.bodies.size()));
    w.kv("steps", total_steps);
    w.kv("evolve_wall_seconds", evolve_seconds);
    w.kv("final_a", sim.a());
    w.kv("final_sigma_delta", sigma_delta(sim.bodies(), 16));
    w.kv("fof_groups", static_cast<std::uint64_t>(halos.size()));
    w.kv("snapshot_write_mb_per_s", io_mb_per_s);
    w.kv("snapshot_write_mb", io_mb);
    w.key("kflop_per_particle_fit");
    w.begin_object();
    w.kv("intercept", fit.intercept);
    w.kv("slope_per_lnN", fit.slope);
    w.end_object();
    w.end_object();
    w.key("projected_production");
    w.begin_object();
    w.kv("particles", n_prod);
    w.kv("timesteps", steps_prod);
    w.kv("flops_per_body_step", flops_per_body_step);
    w.kv("total_flops", total_flops);
    w.kv("gflops_sustained", gflops_sustained);
    w.kv("paper_gflops_sustained", 112.0);
    w.kv("snapshot_bytes", snapshot_bytes);
    w.kv("snapshots_in_1p5tb", snapshots);
    w.end_object();
    w.key("multi_step_engine");
    w.begin_object();
    w.kv("ranks", static_cast<std::uint64_t>(kEngineRanks));
    w.kv("steps", static_cast<std::uint64_t>(kEngineSteps));
    w.key("trajectory");
    w.begin_array();
    for (const EngineStepRow& r : engine_rows) {
      w.begin_object();
      w.kv("step", static_cast<std::uint64_t>(r.step));
      w.kv("remote_requests", r.remote_requests);
      w.kv("prefetch_hits", r.prefetch_hits);
      w.kv("walks_parked", r.walks_parked);
      w.kv("messages", r.messages);
      w.kv("vtime_seconds", r.vtime_seconds);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (snapshots_dir) {
      w.key("snapshot_io");
      w.begin_object();
      w.kv("dir", snapshots_dir->string());
      w.kv("ranks", static_cast<std::uint64_t>(kEngineRanks));
      w.kv("generations_valid", snap_io.generations);
      w.kv("total_bytes", snap_io.total_bytes);
      w.kv("aggregate_mb_per_s", snap_io.aggregate_mb_per_s);
      w.kv("write_overlap_frac", snap_io.overlap_frac);
      w.kv("paper_mb_per_s", 417.0);
      w.kv("paper_total_bytes", 1.5e12);
      w.end_object();
    }
    if (scrub_report) {
      w.key("scrub");
      w.begin_object();
      w.kv("dir", snapshots_dir->string());
      w.kv("generations_scanned", scrub_report->generations_scanned);
      w.kv("generations_ok", scrub_report->generations_ok);
      w.kv("uncommitted", scrub_report->uncommitted);
      w.kv("errors", scrub_report->errors);
      w.key("damaged");
      w.begin_array();
      for (const std::uint64_t g : scrub_report->damaged) w.value(g);
      w.end_array();
      w.end_object();
    }
    w.end_object();
    os << "\n";
    std::cout << "\nmachine-readable results: " << *json_path << "\n";
  }
  return 0;
}
