// Ablation: the treecode's accuracy/cost knobs.
//
//  1. Opening angle theta — the fundamental treecode tradeoff: force
//     error vs interaction count (the paper runs production at
//     theta ~ 0.6 where "force errors are exceeded by ... time
//     integration error and discretization error").
//  2. Leaf bucket size — cell-opening overhead vs direct-sum work.
//  3. Karp vs libm reciprocal square root in the full treecode (not just
//     the micro-kernel of Table 5).
#include <cmath>
#include <iostream>

#include "hot/tree.hpp"
#include "nbody/ic.hpp"
#include "nbody/integrator.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

struct Sample {
  double rms_error;
  double flops_per_body;
  double seconds;
};

Sample run_once(const std::vector<ss::nbody::Body>& bodies, double theta,
                std::uint32_t bucket, ss::gravity::RsqrtMethod method,
                const std::vector<ss::gravity::Accel>& exact) {
  const auto src = ss::nbody::sources_of(bodies);
  ss::hot::Tree tree(src, ss::hot::TreeConfig{bucket});
  ss::hot::TraverseStats st;
  ss::support::WallTimer timer;
  const auto acc = tree.accelerate_all(
      {.theta = theta, .eps2 = 1e-6, .method = method}, &st);
  Sample s;
  s.seconds = timer.seconds();
  s.flops_per_body = static_cast<double>(st.flops()) / bodies.size();
  double err = 0.0;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const auto orig = tree.original_index()[i];
    const double rel = (acc[i].a - exact[orig].a).norm() /
                       (exact[orig].a.norm() + 1e-30);
    err += rel * rel;
  }
  s.rms_error = std::sqrt(err / acc.size());
  return s;
}

}  // namespace

int main() {
  using ss::support::Table;

  std::cout << "Treecode ablations (8192-body cold sphere)\n\n";

  ss::support::Rng rng(3);
  const auto bodies = ss::nbody::cold_sphere(8192, rng);
  std::vector<ss::gravity::Accel> exact;
  ss::nbody::direct_forces(bodies, 1e-6, ss::gravity::RsqrtMethod::libm,
                           exact);

  {
    Table t("opening angle theta (bucket 16, libm)");
    t.header({"theta", "rms force error", "kflop/body", "host ms"});
    for (double theta : {0.2, 0.4, 0.6, 0.8, 1.0, 1.2}) {
      const auto s = run_once(bodies, theta, 16,
                              ss::gravity::RsqrtMethod::libm, exact);
      t.row({Table::fixed(theta, 1), Table::num(s.rms_error, 2),
             Table::fixed(s.flops_per_body / 1000.0, 1),
             Table::fixed(s.seconds * 1000.0, 0)});
    }
    std::cout << t << "\n";
  }

  {
    Table t("leaf bucket size (theta 0.6, libm)");
    t.header({"bucket", "cells", "kflop/body", "host ms"});
    for (std::uint32_t bucket : {1u, 4u, 8u, 16u, 32u, 64u, 128u}) {
      const auto src = ss::nbody::sources_of(bodies);
      ss::hot::Tree tree(src, ss::hot::TreeConfig{bucket});
      const auto s = run_once(bodies, 0.6, bucket,
                              ss::gravity::RsqrtMethod::libm, exact);
      t.row({std::to_string(bucket), std::to_string(tree.cell_count()),
             Table::fixed(s.flops_per_body / 1000.0, 1),
             Table::fixed(s.seconds * 1000.0, 0)});
    }
    std::cout << t << "\n";
  }

  {
    Table t("per-body walk vs group walk (theta 0.6, bucket 16)");
    t.header({"walk", "rms force error", "kflop/body", "host ms"});
    const auto src = ss::nbody::sources_of(bodies);
    ss::hot::Tree tree(src, ss::hot::TreeConfig{16});
    for (int grouped = 0; grouped < 2; ++grouped) {
      ss::hot::TraverseStats st;
      ss::support::WallTimer timer;
      const ss::hot::AccelParams params{
          .theta = 0.6, .eps2 = 1e-6,
          .method = ss::gravity::RsqrtMethod::libm};
      const auto acc = grouped ? tree.accelerate_group_all(params, &st)
                               : tree.accelerate_all(params, &st);
      const double ms = timer.seconds() * 1000.0;
      double err = 0.0;
      for (std::size_t i = 0; i < acc.size(); ++i) {
        const auto orig = tree.original_index()[i];
        const double rel = (acc[i].a - exact[orig].a).norm() /
                           (exact[orig].a.norm() + 1e-30);
        err += rel * rel;
      }
      t.row({grouped ? "group (shared interaction lists)" : "per body",
             Table::num(std::sqrt(err / acc.size()), 2),
             Table::fixed(static_cast<double>(st.flops()) / bodies.size() /
                              1000.0,
                          1),
             Table::fixed(ms, 0)});
    }
    std::cout << t << "\n";
  }

  {
    Table t("rsqrt method in the full traversal (theta 0.6, bucket 16)");
    t.header({"method", "rms force error", "host ms"});
    for (auto [name, m] : {std::pair{"libm", ss::gravity::RsqrtMethod::libm},
                           {"karp", ss::gravity::RsqrtMethod::karp}}) {
      const auto s = run_once(bodies, 0.6, 16, m, exact);
      t.row({name, Table::num(s.rms_error, 2),
             Table::fixed(s.seconds * 1000.0, 0)});
    }
    std::cout << t;
  }

  std::cout << "\nReading: error falls steeply with theta while cost rises;\n"
               "theta ~ 0.6 (the production choice) gives ~1e-3 rms error.\n"
               "Small buckets explode the cell count, large ones degenerate\n"
               "toward direct summation; 16-32 is the sweet spot.\n";
  return 0;
}
