// Reproduces Fig 2: NetPIPE bandwidth vs message size for plain TCP and
// four MPI libraries on the Space Simulator's gigabit fabric, and the
// quoted small-message latencies (79/83/87 us).
//
// Flags:
//   --loss [P]       additionally sweep the reliable transport's goodput
//                    against per-frame drop probability (0 / 0.1% / 1% /
//                    5%, plus P if given) on a real 2-rank vmpi Runtime
//                    over the LAM profile. The clean fabric runs the
//                    exact pre-transport path (no fault model attached);
//                    every lossy point pays framing, acks, CRC checks and
//                    retransmission timers, so the curve is the measured
//                    price of reliability, not a model of it.
//   --json [PATH]    write the Fig 2 curves — and the loss sweep when
//                    --loss ran — as machine-readable JSON (default
//                    BENCH_fig2_netpipe.json).
//   --trace [PREFIX] rerun one lossy cell (1% drop, 64 KiB messages)
//                    with an obs::Session attached and write
//                    PREFIX.trace.json (flow arrows + net.retx markers)
//                    and PREFIX.summary.json (net.rtt_seconds /
//                    net.retx_backoff_seconds quantiles, critical path).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "simnet/profile.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/fault.hpp"
#include "vmpi/timemodel.hpp"

namespace {

using ss::support::Table;

struct LossPoint {
  std::size_t bytes = 0;
  double goodput_mbits = 0.0;
  std::uint64_t frames_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t pure_acks = 0;
};

struct LossRow {
  double drop = 0.0;
  std::vector<LossPoint> points;
};

/// One cell of the sweep: stream `count` messages of `bytes` from rank 0
/// to rank 1 across the as-built fabric, with per-frame drop probability
/// `drop` handled by the reliable transport. Goodput is payload bits over
/// the receiver's virtual completion time — retransmission timers, ack
/// frames and header overhead all land in the denominator.
LossPoint run_loss_cell(double drop, std::size_t bytes, int count,
                        ss::obs::Session* obs = nullptr) {
  auto model = ss::vmpi::make_space_simulator_model(ss::simnet::lam());
  ss::vmpi::Runtime rt(2, model);
  if (obs != nullptr) rt.attach_observer(obs);
  if (drop > 0.0) {
    ss::vmpi::FaultRates rates;
    rates.drop = drop;
    // Seed mixed per message size so cells draw independent fate
    // sequences, but shared across drop rates: the fate hash compares one
    // uniform draw per frame against the threshold, so the frames lost at
    // 0.1% are a subset of those lost at 5% and the curve is monotone by
    // construction rather than by luck.
    const std::uint64_t seed =
        20030617u + static_cast<std::uint64_t>(bytes) * 2654435761u;
    auto faults = std::make_shared<ss::vmpi::LinkFaultModel>(2, seed, rates);
    ss::vmpi::TransportConfig cfg;
    // TCP-style delayed acks (every 2nd frame) and real-time pacing wide
    // enough that an ack for a 1 MB frame makes it back before the timer
    // fires: spurious retransmissions would charge phantom virtual RTOs
    // and pollute the goodput curve. The cost of a *genuine* drop is
    // virtual (the RTO charge plus the re-transfer) either way.
    cfg.ack_batch = 2;
    cfg.retx_real_seconds = 50e-3;
    cfg.retx_real_cap_seconds = 200e-3;
    rt.set_fault_model(faults, cfg);
  }
  double recv_done = 0.0;
  rt.run([&](ss::vmpi::Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::byte> payload(bytes, std::byte{0x5a});
      for (int i = 0; i < count; ++i) {
        auto copy = payload;
        c.send_bytes_move(1, 5, std::move(copy));
      }
      c.quiesce();
    } else {
      for (int i = 0; i < count; ++i) (void)c.recv_msg(0, 5);
      recv_done = c.time();
    }
  });
  LossPoint p;
  p.bytes = bytes;
  const double payload_bits =
      static_cast<double>(bytes) * 8.0 * static_cast<double>(count);
  p.goodput_mbits = recv_done > 0.0 ? payload_bits / recv_done / 1e6 : 0.0;
  const auto t = rt.net_totals();
  p.frames_sent = t.frames_sent;
  p.retransmits = t.retransmits;
  p.pure_acks = t.pure_acks;
  return p;
}

std::vector<LossRow> run_loss_sweep(std::optional<double> extra_rate) {
  std::vector<double> rates = {0.0, 0.001, 0.01, 0.05};
  if (extra_rate && *extra_rate > 0.0 &&
      std::find(rates.begin(), rates.end(), *extra_rate) == rates.end()) {
    rates.push_back(*extra_rate);
    std::sort(rates.begin(), rates.end());
  }
  const std::vector<std::size_t> sizes = {1u << 10, 16u << 10, 256u << 10,
                                          1u << 20};
  constexpr int kCount = 64;
  std::vector<LossRow> rows;
  for (double drop : rates) {
    LossRow row;
    row.drop = drop;
    for (std::size_t s : sizes) row.points.push_back(run_loss_cell(drop, s, kCount));
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_loss_sweep(const std::vector<LossRow>& rows) {
  Table t("Reliable transport: goodput (Mbit/s) vs frame drop rate");
  std::vector<std::string> head = {"drop"};
  for (const auto& p : rows.front().points) {
    head.push_back(std::to_string(p.bytes) + " B");
  }
  head.push_back("retx");
  t.header(head);
  for (const auto& row : rows) {
    std::vector<std::string> r = {Table::fixed(row.drop * 100.0, 1) + "%"};
    std::uint64_t retx = 0;
    for (const auto& p : row.points) {
      r.push_back(Table::fixed(p.goodput_mbits, 1));
      retx += p.retransmits;
    }
    r.push_back(std::to_string(retx));
    t.row(r);
  }
  std::cout << t;
  std::cout << "\nReading: the 0% row is the bare fabric (no transport\n"
               "attached — the bypass path). Every lossy row pays CRC'd\n"
               "framing, acks and RTO backoff; goodput degrades smoothly\n"
               "with drop rate instead of hanging, which is the point.\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using ss::simnet::all_profiles;

  std::optional<double> loss_rate;
  bool do_loss = false;
  std::optional<std::string> json_path;
  std::optional<std::string> trace_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--loss") == 0) {
      do_loss = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        loss_rate = std::stod(argv[++i]);
      }
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-')
                      ? std::string(argv[++i])
                      : std::string("BENCH_fig2_netpipe.json");
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_prefix = (i + 1 < argc && argv[i + 1][0] != '-')
                         ? std::string(argv[++i])
                         : std::string("BENCH_fig2_obs");
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--loss [P]] [--json [PATH]] [--trace [PREFIX]]\n";
      return 2;
    }
  }

  std::cout << "Fig 2 reproduction: bandwidth (Mbit/s) vs message size,\n"
               "per message-passing library (model of NetPIPE on the\n"
               "3c996B-T / Foundry fabric).\n\n";

  std::vector<std::size_t> curve_sizes;
  Table t("Fig 2: NetPIPE bandwidth vs message size");
  std::vector<std::string> head = {"bytes"};
  for (const auto& p : all_profiles()) head.push_back(p.name);
  t.header(head);

  for (std::size_t b = 1; b <= (8u << 20); b *= 4) {
    curve_sizes.push_back(b);
    std::vector<std::string> row = {std::to_string(b)};
    for (const auto& p : all_profiles()) {
      row.push_back(Table::fixed(p.netpipe_mbits(b), 1));
    }
    t.row(row);
  }
  std::cout << t << "\n";

  Table lat("Fig 2: small-message latency (microseconds)");
  lat.header({"library", "model (us)", "paper (us)"});
  lat.row({"tcp", Table::fixed(ss::simnet::tcp().transfer_seconds(1) * 1e6, 1),
           "79"});
  lat.row({"lam-6.5.9",
           Table::fixed(ss::simnet::lam().transfer_seconds(1) * 1e6, 1), "83"});
  lat.row({"mpich-1.2.5",
           Table::fixed(ss::simnet::mpich_125().transfer_seconds(1) * 1e6, 1),
           "87"});
  lat.row({"mpich2-0.92",
           Table::fixed(ss::simnet::mpich2_092().transfer_seconds(1) * 1e6, 1),
           "87"});
  std::cout << lat << "\n";

  Table peak("Fig 2: large-message plateau (Mbit/s, 8 MB messages)");
  peak.header({"library", "model", "paper"});
  for (const auto& p : all_profiles()) {
    std::string paper = "-";
    if (p.name == "tcp") paper = "779";
    peak.row({p.name, Table::fixed(p.netpipe_mbits(8u << 20), 1), paper});
  }
  std::cout << peak;
  std::cout << "\nShape checks: tcp highest; mpich-1.2.5 visibly below\n"
               "mpich2-0.92 at large sizes; LAM -O above plain LAM.\n\n";

  std::vector<LossRow> loss_rows;
  if (do_loss) {
    loss_rows = run_loss_sweep(loss_rate);
    print_loss_sweep(loss_rows);
  }

  if (trace_prefix) {
    // One traced lossy cell: 1% frame drop, 64 KiB messages. The trace
    // carries a flow arrow per delivered message and a net.retx marker
    // per timeout; the summary carries the Karn RTT and RTO-backoff
    // histograms the transport recorded along the way.
    auto obs = std::make_unique<ss::obs::Session>(2);
    const LossPoint p = run_loss_cell(0.01, 64u << 10, 64, obs.get());
    const std::string trace_path = *trace_prefix + ".trace.json";
    const std::string summary_path = *trace_prefix + ".summary.json";
    ss::obs::write_chrome_trace_file(*obs, trace_path);
    ss::obs::write_summary_file(*obs, summary_path);
    std::cout << "traced cell (1% drop, 64 KiB x 64): "
              << Table::fixed(p.goodput_mbits, 1) << " Mbit/s, "
              << p.retransmits << " retransmits\n"
              << "trace: " << trace_path << "  summary: " << summary_path
              << "\n\n";
  }

  if (json_path) {
    std::ofstream os(*json_path);
    if (!os) {
      std::cerr << "cannot open " << *json_path << "\n";
      return 1;
    }
    ss::support::json::Writer w(os);
    w.begin_object();
    w.kv("bench", "fig2_netpipe");
    w.key("profiles");
    w.begin_array();
    for (const auto& p : all_profiles()) {
      w.begin_object();
      w.kv("name", p.name);
      w.kv("latency_us", p.transfer_seconds(1) * 1e6);
      w.key("curve");
      w.begin_array();
      for (std::size_t b : curve_sizes) {
        w.begin_object();
        w.kv("bytes", static_cast<std::uint64_t>(b));
        w.kv("mbits", p.netpipe_mbits(b));
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    if (do_loss) {
      w.key("loss_sweep");
      w.begin_array();
      for (const auto& row : loss_rows) {
        w.begin_object();
        w.kv("drop_rate", row.drop);
        w.key("points");
        w.begin_array();
        for (const auto& p : row.points) {
          w.begin_object();
          w.kv("bytes", static_cast<std::uint64_t>(p.bytes));
          w.kv("goodput_mbits", p.goodput_mbits);
          w.kv("frames_sent", p.frames_sent);
          w.kv("retransmits", p.retransmits);
          w.kv("pure_acks", p.pure_acks);
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
    std::cout << "machine-readable results: " << *json_path << "\n";
  }
  return 0;
}
