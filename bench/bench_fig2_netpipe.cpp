// Reproduces Fig 2: NetPIPE bandwidth vs message size for plain TCP and
// four MPI libraries on the Space Simulator's gigabit fabric, and the
// quoted small-message latencies (79/83/87 us).
#include <cstdio>
#include <iostream>

#include "simnet/profile.hpp"
#include "support/table.hpp"

int main() {
  using ss::simnet::all_profiles;
  using ss::support::Table;

  std::cout << "Fig 2 reproduction: bandwidth (Mbit/s) vs message size,\n"
               "per message-passing library (model of NetPIPE on the\n"
               "3c996B-T / Foundry fabric).\n\n";

  Table t("Fig 2: NetPIPE bandwidth vs message size");
  std::vector<std::string> head = {"bytes"};
  for (const auto& p : all_profiles()) head.push_back(p.name);
  t.header(head);

  for (std::size_t b = 1; b <= (8u << 20); b *= 4) {
    std::vector<std::string> row = {std::to_string(b)};
    for (const auto& p : all_profiles()) {
      row.push_back(Table::fixed(p.netpipe_mbits(b), 1));
    }
    t.row(row);
  }
  std::cout << t << "\n";

  Table lat("Fig 2: small-message latency (microseconds)");
  lat.header({"library", "model (us)", "paper (us)"});
  lat.row({"tcp", Table::fixed(ss::simnet::tcp().transfer_seconds(1) * 1e6, 1),
           "79"});
  lat.row({"lam-6.5.9",
           Table::fixed(ss::simnet::lam().transfer_seconds(1) * 1e6, 1), "83"});
  lat.row({"mpich-1.2.5",
           Table::fixed(ss::simnet::mpich_125().transfer_seconds(1) * 1e6, 1),
           "87"});
  lat.row({"mpich2-0.92",
           Table::fixed(ss::simnet::mpich2_092().transfer_seconds(1) * 1e6, 1),
           "87"});
  std::cout << lat << "\n";

  Table peak("Fig 2: large-message plateau (Mbit/s, 8 MB messages)");
  peak.header({"library", "model", "paper"});
  for (const auto& p : all_profiles()) {
    std::string paper = "-";
    if (p.name == "tcp") paper = "779";
    peak.row({p.name, Table::fixed(p.netpipe_mbits(8u << 20), 1), paper});
  }
  std::cout << peak;
  std::cout << "\nShape checks: tcp highest; mpich-1.2.5 visibly below\n"
               "mpich2-0.92 at large sizes; LAM -O above plain LAM.\n";
  return 0;
}
