// Reproduces Fig 3 / Sec 3.3: the Linpack story.
//  - a real HPL-methodology run (blocked LU + pivoting + residual check)
//    measured on this host;
//  - the modeled 288-processor cluster runs with MPICH 1.2.4-era and
//    LAM 6.5.9 network profiles, reproducing the October 2002 (665.1
//    Gflop/s) to April 2003 (757.1 Gflop/s) improvement the paper
//    attributes mostly to the MPI-library switch;
//  - the price/performance milestone: first TOP500 machine under
//    $1 per Mflop/s.
#include <iostream>
#include <mutex>

#include "hpl/lu.hpp"
#include "hpl/parallel_lu.hpp"
#include "hw/bom.hpp"
#include "simnet/profile.hpp"
#include "support/table.hpp"
#include "vmpi/comm.hpp"

namespace {

double modeled_gflops(const ss::simnet::LibraryProfile& prof, int procs,
                      std::size_t n, double node_gflops) {
  auto model = ss::vmpi::make_space_simulator_model(prof);
  ss::vmpi::Runtime rt(procs, model);
  double gf = 0.0;
  std::mutex mu;
  rt.run([&](ss::vmpi::Comm& c) {
    const auto r = ss::hpl::run_linpack_modeled(c, n, 160, node_gflops);
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      gf = r.gflops;
    }
  });
  return gf;
}

}  // namespace

int main() {
  using ss::support::Table;

  std::cout << "Fig 3 / Sec 3.3 reproduction: Linpack\n\n";

  // Real methodology on this host.
  const auto host = ss::hpl::run_linpack_host(768, 48);
  Table h("HPL methodology, measured on this host");
  h.header({"N", "Gflop/s", "scaled residual", "passes (<16)"});
  h.row({std::to_string(host.n), Table::fixed(host.gflops, 2),
         Table::fixed(host.residual, 4), host.passed ? "yes" : "NO"});
  std::cout << h << "\n";

  // Cluster-scale modeled runs. N chosen to fill ~80% of the 288 nodes'
  // 1 GB, as HPL practice dictates: N ~ sqrt(0.8 * 288e9 / 8) ~ 170k.
  // The October 2002 run used MPICH and an older ATLAS (~3.03 Gflop/s per
  // node); April 2003 used LAM 6.5.9 and ATLAS 3.5.0 (3.302 per node,
  // Table 2). The paper credits the improvement to both changes.
  const std::size_t big_n = 169600;
  const double mpich =
      modeled_gflops(ss::simnet::mpich_125(), 288, big_n, 3.03);
  const double lam =
      modeled_gflops(ss::simnet::lam_homogeneous(), 288, big_n, 3.302);

  Table t("288-processor Linpack: model vs paper");
  t.header({"configuration", "model Gflop/s", "paper Gflop/s", "model/paper"});
  t.row({"MPICH (Oct 2002)", Table::fixed(mpich, 1), "665.1",
         Table::fixed(mpich / 665.1, 2)});
  t.row({"LAM 6.5.9 (Apr 2003)", Table::fixed(lam, 1), "757.1",
         Table::fixed(lam / 757.1, 2)});
  t.row({"improvement", Table::fixed(lam / mpich, 3), "1.138", ""});
  std::cout << t << "\n";

  ss::hw::PricePerformance pp;
  Table m("price/performance milestone");
  m.header({"metric", "model", "paper"});
  m.row({"cluster cost ($)",
         Table::fixed(ss::hw::space_simulator_bom().total(), 0), "483,855"});
  m.row({"$ / Linpack Mflop/s (LAM model)",
         Table::fixed(ss::hw::space_simulator_bom().total() / (lam * 1000.0),
                      3),
         "0.639"});
  m.row({"$ / Linpack Mflop/s (paper result)",
         Table::fixed(pp.dollars_per_linpack_mflops(), 3), "0.639"});
  m.row({"first TOP500 machine under $1/Mflop/s",
         lam * 1000.0 > ss::hw::space_simulator_bom().total() ? "yes" : "NO",
         "yes"});
  std::cout << m;
  std::cout << "\nTOP500 context (paper): #85 on the Nov 2002 list at 665.1;\n"
               "#88 on the Jun 2003 list at 757.1 (would have been #69 on\n"
               "the earlier list).\n";
  return 0;
}
