// Shared driver for the NPB reproduction benches: runs one modeled NPB
// kernel on a simulated Space Simulator of the given size and returns the
// performance record.
#pragma once

#include <mutex>
#include <string>

#include "npb/cg.hpp"
#include "npb/ft.hpp"
#include "npb/is.hpp"
#include "npb/mg.hpp"
#include "npb/pseudo.hpp"
#include "simnet/profile.hpp"
#include "vmpi/comm.hpp"

namespace ss::npb_driver {

inline ss::npb::Result run_modeled(const std::string& name,
                                   ss::npb::Class klass, int procs) {
  using namespace ss::npb;
  // LAM 6.5.9 -O was the production MPI for the paper's NPB numbers.
  auto model =
      ss::vmpi::make_space_simulator_model(ss::simnet::lam_homogeneous());
  ss::vmpi::Runtime rt(procs, model);
  Result out;
  std::mutex mu;
  rt.run([&](ss::vmpi::Comm& c) {
    Result r;
    if (name == "BT") {
      r = run_pseudo_modeled(c, PseudoApp::BT, klass);
    } else if (name == "SP") {
      r = run_pseudo_modeled(c, PseudoApp::SP, klass);
    } else if (name == "LU") {
      r = run_pseudo_modeled(c, PseudoApp::LU, klass);
    } else if (name == "MG") {
      r = run_mg_modeled(c, klass);
    } else if (name == "CG") {
      r = run_cg_modeled(c, klass);
    } else if (name == "FT") {
      r = run_ft_modeled(c, klass);
    } else if (name == "IS") {
      r = run_is_modeled(c, klass);
    } else {
      throw std::invalid_argument("unknown NPB kernel: " + name);
    }
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      out = r;
    }
  });
  return out;
}

}  // namespace ss::npb_driver
