// Ensemble campaign on the shared virtual cluster (Sec 4 workloads).
//
// The Space Simulator was a shared resource: cosmology sweeps (Fig 7),
// supernova progenitor grids (Fig 8) and benchmark batches (NPB,
// Linpack) queued against one 294-node fabric. This bench drives the
// sched::ClusterService through three campaigns and reports, per job,
// the queue wait / wall / traffic the space-sharing schedule produced:
//
//   mixed    - the acceptance campaign: >= 8 jobs across 4 workload
//              kinds, with one fault-injected node kill mid-run. The
//              killed gang requeues onto a fresh partition and restores
//              from its checkpoint.
//   tenancy  - two identical traffic tenants co-resident on a tight
//              inter-chassis trunk vs one running solo: the co-run wall
//              quantifies cross-tenant contention.
//
// `--json [PATH]` writes the numbers as machine-readable JSON (default
// BENCH_campaign.json); `--mini` shrinks both campaigns for CI.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "io/fault.hpp"
#include "sched/job.hpp"
#include "sched/service.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace {

namespace fs = std::filesystem;
using ss::sched::Campaign;
using ss::sched::CampaignResult;
using ss::sched::ClusterService;
using ss::sched::JobRecord;
using ss::sched::JobState;
using ss::sched::ServiceConfig;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("ss_bench_campaign_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

enum class Scale { full, mini, smoke };

Campaign mixed_campaign(Scale scale) {
  const bool mini = scale != Scale::full;
  Campaign c;
  c.name = "mixed";
  const std::uint64_t steps = mini ? 4 : 6;
  for (int i = 0; i < (mini ? 2 : 3); ++i) {
    auto j = ss::sched::fig7_job(i, /*gang=*/4, steps);
    // Top priority: the first wave is then fig7#0 on ranks 1..4 and
    // fig7#1 on ranks 5..8, so the scripted node-5 kill at step 3
    // deterministically hits fig7#1 after its step-2 checkpoint.
    j.priority = 3;
    c.add(j);
  }
  c.add(ss::sched::npb_job("cg", 4));
  if (scale == Scale::smoke) return c;  // the CI gate's 3-job campaign
  c.add(ss::sched::fig8_job(0, /*gang=*/2, mini ? 3 : 4));
  c.add(ss::sched::fig8_job(1, /*gang=*/2, mini ? 3 : 4));
  c.add(ss::sched::npb_job("is", 2));
  c.add(ss::sched::linpack_job(mini ? 48 : 64, 2));
  if (!mini) c.add(ss::sched::npb_job("ft", 4));
  return c;
}

ServiceConfig small_cluster() {
  ServiceConfig cfg;
  cfg.workers = 8;
  cfg.topo.nodes = 16;
  cfg.topo.ports_per_module = 4;
  cfg.topo.chassis0_ports = 8;
  return cfg;
}

void print_jobs(const CampaignResult& res) {
  using ss::support::Table;
  Table t;
  t.header({"job", "kind", "gang", "state", "attempts", "queue_wait_s",
            "wall_s", "messages", "MB", "metric"});
  for (const JobRecord& j : res.jobs) {
    t.row({j.name, ss::sched::to_string(j.kind), std::to_string(j.gang),
           ss::sched::to_string(j.state), std::to_string(j.attempts),
           Table::fixed(j.queue_wait, 3), Table::fixed(j.wall, 3),
           std::to_string(j.messages),
           Table::fixed(static_cast<double>(j.bytes) / 1e6, 2),
           Table::num(j.metric, 4)});
  }
  t.print(std::cout);
}

void json_jobs(ss::support::json::Writer& w, const CampaignResult& res) {
  w.key("jobs");
  w.begin_array();
  for (const JobRecord& j : res.jobs) {
    w.begin_object();
    w.kv("id", static_cast<std::int64_t>(j.id));
    w.kv("name", j.name);
    w.kv("kind", ss::sched::to_string(j.kind));
    w.kv("gang", static_cast<std::int64_t>(j.gang));
    w.kv("state", ss::sched::to_string(j.state));
    w.kv("attempts", static_cast<std::int64_t>(j.attempts));
    w.kv("requeues", static_cast<std::int64_t>(j.requeues));
    w.kv("queue_wait_seconds", j.queue_wait);
    w.kv("wall_seconds", j.wall);
    w.kv("messages", j.messages);
    w.kv("bytes", j.bytes);
    w.kv("metric", j.metric);
    w.kv("restored", j.restored);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<std::string> json_path;
  Scale scale = Scale::full;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-')
                      ? std::string(argv[++i])
                      : std::string("BENCH_campaign.json");
    } else if (std::strcmp(argv[i], "--mini") == 0) {
      scale = Scale::mini;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      scale = Scale::smoke;  // the CI gate: 3 jobs, one node kill
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--json [PATH]] [--mini | --smoke]\n";
      return 2;
    }
  }
  const bool mini = scale != Scale::full;

  // -- mixed campaign with one injected node kill ---------------------------
  // The lowest-priority nbody job lands on the last gang of the first
  // wave (ranks 5..8 = nodes 5..8 under the packed map); node 5 dies a
  // few steps in, the gang requeues and restores from checkpoint.
  TempDir mixed_dir("mixed");
  const Campaign mc = mixed_campaign(scale);
  ss::io::FaultInjector fault({{/*rank=*/5, /*step=*/3}});
  ServiceConfig cfg = small_cluster();
  cfg.fault = &fault;
  cfg.node_cooldown_seconds = 1.0;
  // Stable path so CI can gate the per-job rollups after the run.
  cfg.summary_path = json_path ? *json_path + ".summary.json"
                               : (mixed_dir.path / "summary.json").string();
  ClusterService mixed(mixed_dir.path / "store", mc, cfg);
  const CampaignResult mres = mixed.run();

  std::cout << "== mixed campaign (" << mc.jobs.size() << " jobs, 8 workers, "
            << "1 injected node kill) ==\n";
  print_jobs(mres);
  std::cout << "makespan " << ss::support::Table::fixed(mres.makespan, 3)
            << " s  requeues " << mres.requeues << "  node_kills "
            << mres.node_kills << "  backfills " << mres.backfills << "\n\n";

  // -- tenancy: solo vs co-resident traffic on a tight trunk ----------------
  auto traffic = [&](int index) {
    return ss::sched::traffic_job(index, /*gang=*/4, mini ? 3 : 6,
                                  /*chunks=*/8, /*chunk_bytes=*/1u << 18);
  };
  ServiceConfig tcfg = small_cluster();
  tcfg.striped = true;
  tcfg.topo.trunk_bps = 1.2e9;

  TempDir solo_dir("solo");
  Campaign solo;
  solo.name = "solo";
  solo.add(traffic(0));
  ClusterService ssolo(solo_dir.path / "store", solo, tcfg);
  const CampaignResult rsolo = ssolo.run();

  TempDir duo_dir("duo");
  Campaign duo;
  duo.name = "duo";
  duo.add(traffic(0));
  duo.add(traffic(1));
  ClusterService sduo(duo_dir.path / "store", duo, tcfg);
  const CampaignResult rduo = sduo.run();

  // Which tenant absorbs the trunk queueing depends on interleaving;
  // the slower one is the contention signal (the trunk is 2x
  // oversubscribed, so somebody always pays).
  const double solo_wall = rsolo.jobs[0].wall;
  const double co_wall =
      std::max(rduo.jobs[0].wall, rduo.jobs[1].wall);
  const double slowdown = solo_wall > 0.0 ? co_wall / solo_wall : 0.0;
  using ss::support::Table;
  std::cout << "== tenancy (two gang-4 traffic tenants, striped across a "
            << "1.2 Gbit/s trunk) ==\n"
            << "solo wall " << Table::fixed(solo_wall, 3)
            << " s   co-resident wall " << Table::fixed(co_wall, 3)
            << " s   slowdown x" << Table::fixed(slowdown, 2) << "\n"
            << "solo bw " << Table::fixed(rsolo.jobs[0].metric / 1e6, 1)
            << " Mbit/s  co-resident bw "
            << Table::fixed(
                   std::min(rduo.jobs[0].metric, rduo.jobs[1].metric) / 1e6, 1)
            << " Mbit/s\n";

  if (json_path) {
    std::ofstream os(*json_path);
    if (!os) {
      std::cerr << "cannot open " << *json_path << "\n";
      return 1;
    }
    ss::support::json::Writer w(os);
    w.begin_object();
    w.kv("bench", "campaign");
    w.kv("scale", scale == Scale::full   ? "full"
                  : scale == Scale::mini ? "mini"
                                         : "smoke");
    w.key("mixed");
    w.begin_object();
    w.kv("workers", static_cast<std::int64_t>(cfg.workers));
    w.kv("njobs", static_cast<std::uint64_t>(mres.jobs.size()));
    w.kv("all_done", mres.all_done());
    w.kv("makespan_seconds", mres.makespan);
    w.kv("requeues", static_cast<std::int64_t>(mres.requeues));
    w.kv("node_kills", static_cast<std::int64_t>(mres.node_kills));
    w.kv("backfills", static_cast<std::int64_t>(mres.backfills));
    w.kv("faults_fired", static_cast<std::uint64_t>(fault.fired()));
    w.kv("summary_path", cfg.summary_path);
    json_jobs(w, mres);
    w.end_object();
    w.key("tenancy");
    w.begin_object();
    w.kv("solo_wall_seconds", solo_wall);
    w.kv("co_wall_seconds", co_wall);
    w.kv("slowdown", slowdown);
    w.kv("solo_bps", rsolo.jobs[0].metric);
    w.kv("co_bps", std::min(rduo.jobs[0].metric, rduo.jobs[1].metric));
    w.end_object();
    w.end_object();
    std::cout << "\nmachine-readable results: " << *json_path << "\n";
  }

  const bool ok = mres.all_done() && mres.requeues >= 1 &&
                  rsolo.all_done() && rduo.all_done();
  return ok ? 0 : 1;
}
