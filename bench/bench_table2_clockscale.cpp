// Reproduces Table 2: sensitivity of STREAM / NPB / SPEC / Linpack to
// memory and CPU clock scaling.
//
// We cannot reclock a 2002 Shuttle XPC, so the experiment becomes a model
// check: calibrate the two-pipe share model's single parameter (beta, the
// memory-bound fraction) from the slow-memory column of each row, then
// predict the slow-CPU and overclock columns and compare with the paper's
// measurements. A real STREAM run on the host accompanies the table.
#include <iostream>

#include "nodemodel/sharemodel.hpp"
#include "nodemodel/stream.hpp"
#include "support/table.hpp"

int main() {
  using namespace ss::nodemodel;
  using ss::support::Table;

  std::cout << "Table 2 reproduction: clock-scaling sensitivity\n\n";

  Table t("Table 2: measured vs share-model (ratios to normal system)");
  t.header({"benchmark", "beta", "slow mem paper", "slow mem model",
            "slow CPU paper", "slow CPU model", "overclock paper",
            "overclock model"});
  for (const auto& row : table2_rows()) {
    const auto m = ShareModel::from_slow_mem_ratio(row.slow_mem / row.normal,
                                                   kSlowMemScale);
    t.row({row.name, Table::fixed(m.beta(), 2),
           Table::fixed(row.slow_mem / row.normal, 3),
           Table::fixed(m.predict(1.0, kSlowMemScale), 3),
           Table::fixed(row.slow_cpu / row.normal, 3),
           Table::fixed(m.predict(kSlowCpuScale, 1.0), 3),
           Table::fixed(row.overclock / row.normal, 3),
           Table::fixed(m.predict(kOverclockScale, kOverclockScale), 3)});
  }
  std::cout << t;
  std::cout << "\nReading: memory-bound kernels (STREAM, MG, CG, SP) have\n"
               "beta ~ 1 and track the memory clock; Linpack and CINT2000\n"
               "have low beta and track the CPU clock — the paper's\n"
               "conclusion that \"performance of most benchmarks is\n"
               "sensitive to memory bandwidth, and less so to CPU\n"
               "frequency\".\n\n";

  Table s("STREAM measured on this host (paper node: 1203-1238 Mbyte/s)");
  s.header({"kernel", "Mbyte/s"});
  for (const auto& r : run_stream({.elements = 4u << 20, .trials = 3})) {
    s.row({r.kernel, Table::fixed(r.mbytes_per_s, 1)});
  }
  std::cout << s;
  return 0;
}
