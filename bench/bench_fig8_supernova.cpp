// Reproduces Fig 8 / Sec 4.4: rotating core collapse with SPH +
// flux-limited-diffusion neutrino transport.
//
// The paper's figure shows the specific angular momentum distribution in
// a slice across the core 40 ms after bounce: the bulk of the angular
// momentum lies along the equator, and the 15-degree polar cone carries
// two orders of magnitude less. We run the real (scaled-down) collapse:
// a rotating unstable core with a stiffened nuclear EOS collapses,
// bounces when the center passes nuclear density, and the angular
// momentum distribution is measured just after bounce.
// `--trace [PREFIX]` attaches an obs::Session to the distributed SPH
// section and writes PREFIX.trace.json (Chrome trace with cross-rank
// flow arrows) + PREFIX.summary.json (counters, histogram quantiles,
// critical-path attribution). `--json [PATH]` writes the headline
// numbers as machine-readable JSON.
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include <mutex>

#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "sph/collapse.hpp"
#include "sph/eos.hpp"
#include "sph/parallel.hpp"
#include "sph/sph.hpp"
#include "support/flops.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "vmpi/comm.hpp"

int main(int argc, char** argv) {
  using namespace ss::sph;
  using ss::support::Table;

  std::optional<std::string> json_path;
  std::optional<std::string> trace_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-')
                      ? std::string(argv[++i])
                      : std::string("BENCH_fig8_supernova.json");
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_prefix = (i + 1 < argc && argv[i + 1][0] != '-')
                         ? std::string(argv[++i])
                         : std::string("BENCH_fig8_obs");
    } else {
      std::cerr << "usage: " << argv[0] << " [--json [PATH]] [--trace [PREFIX]]\n";
      return 2;
    }
  }

  std::cout << "Fig 8 / Sec 4.4 reproduction: rotating core collapse\n\n";

  ss::support::Rng rng(8);
  CollapseConfig ccfg;
  ccfg.particles = 2500;
  ccfg.omega_fraction = 0.25;
  ccfg.thermal_fraction = 0.02;
  auto parts = rotating_core(ccfg, rng);
  const auto eos = make_collapse_eos(1.0, 1.0, 0.25, 20.0);

  SphConfig cfg;
  cfg.fld.emissivity = 0.3;    // neutrino cooling lets the collapse proceed
  cfg.fld.u_threshold = 0.05;
  cfg.fld.opacity = 50.0;
  SphSim sim(parts, [eos](double rho, double u) { return eos(rho, u); },
             cfg);

  const double l0 = sim.total_angular_momentum().z;

  Table evo("collapse history");
  evo.header({"t", "dt", "rho_max", "rho_max/rho_0", "nu energy", "phase"});
  const double rho0 = 3.0 / (4.0 * M_PI);
  double rho_peak = 0.0;
  bool bounced = false;
  int steps_after_bounce = 0;
  ss::support::WallTimer timer;
  double e_nu_total = 0.0;
  for (int s = 0; s < 400 && steps_after_bounce < 12; ++s) {
    const auto d = sim.step();
    e_nu_total = 0.0;
    for (const auto& p : sim.particles()) e_nu_total += p.mass * p.e_nu;
    if (d.max_rho > rho_peak) {
      rho_peak = d.max_rho;
    } else if (!bounced && d.max_rho < 0.92 * rho_peak &&
               rho_peak > 20.0 * rho0) {
      bounced = true;  // the core rebounded off the stiff branch
    }
    if (bounced) ++steps_after_bounce;
    if (s % 25 == 0 || (bounced && steps_after_bounce <= 2)) {
      evo.row({Table::fixed(sim.time(), 3), Table::num(d.dt, 2),
               Table::fixed(d.max_rho, 1),
               Table::fixed(d.max_rho / rho0, 0), Table::num(e_nu_total, 2),
               bounced ? "post-bounce" : "infall"});
    }
  }
  std::cout << evo;
  std::cout << "\npeak density " << Table::fixed(rho_peak / rho0, 0)
            << "x initial; bounce " << (bounced ? "occurred" : "NOT reached")
            << "; run took " << Table::fixed(timer.seconds(), 1) << " s\n\n";

  // Fig 8's observable: the angular-momentum distribution after bounce.
  Table prof("specific angular momentum vs polar angle (post-bounce)");
  prof.header({"theta from pole (deg)", "<|j_z|> (code units)",
               "relative to equator"});
  const auto bins = angular_momentum_profile(sim.particles(), 6);
  const double j_eq = bins.back().specific_j;
  for (const auto& b : bins) {
    prof.row({Table::fixed(b.theta_center * 180.0 / M_PI, 0),
              Table::num(b.specific_j, 3),
              Table::num(j_eq > 0 ? b.specific_j / j_eq : 0.0, 2)});
  }
  std::cout << prof;

  const double ratio = equator_to_pole_ratio(sim.particles(), 15.0);
  const double l1 = sim.total_angular_momentum().z;
  std::cout << "\nequator/polar-cone specific angular momentum ratio: "
            << Table::fixed(ratio, 0)
            << "  (paper: ~2 orders of magnitude)\n"
            << "total J_z conservation through collapse: "
            << Table::fixed(l1 / l0, 4) << " of initial\n"
            << "neutrino energy radiated: " << Table::num(e_nu_total, 3)
            << " code units (FLD transport active)\n";

  // Sec 4.4's performance note: "for our 1 million particle simulations
  // on 128 processors, per processor performance is about 1/2 that of the
  // ASCI Q system". The distributed SPH on the virtual Space Simulator at
  // ~1k particles/processor shows the per-processor rate and the
  // ghost-exchange overhead behind that kind of factor.
  const int procs = 16;
  double mflops_per_proc = 0.0;
  std::unique_ptr<ss::obs::Session> obs;
  if (trace_prefix) obs = std::make_unique<ss::obs::Session>(procs);
  {
    const int per_proc = 1024;
    auto model = ss::vmpi::make_space_simulator_model(
        ss::simnet::lam_homogeneous(), 623.9e6);
    ss::vmpi::Runtime rt(procs, model);
    if (obs) rt.attach_observer(obs.get());
    double vtime = 0.0, flops = 0.0;
    std::mutex mu;
    rt.run([&](ss::vmpi::Comm& c) {
      ss::support::Rng prng(static_cast<std::uint64_t>(100 + c.rank()));
      CollapseConfig pc;
      pc.particles = per_proc;
      pc.omega_fraction = 0.2;
      auto mine = rotating_core(pc, prng);
      const auto peos = make_collapse_eos(1.0, 1.0, 0.5, 50.0);
      SphConfig scfg;
      scfg.self_gravity = false;
      const double t0 = c.barrier_max_time();
      std::uint64_t pairs = 0;
      for (int s = 0; s < 3; ++s) {
        ParallelSphStats st;
        mine = parallel_sph_step(
            c, std::move(mine),
            [peos](double rho, double u) { return peos(rho, u); }, scfg,
            &st);
        pairs += st.diag.pair_count;
      }
      const double t1 = c.barrier_max_time();
      const double f = c.allreduce_sum(
          2.0 * static_cast<double>(pairs) *
          static_cast<double>(ss::support::flop_cost::sph_pair));
      if (c.rank() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        vtime = t1 - t0;
        flops = f;
      }
    });
    mflops_per_proc = flops / vtime / procs / 1e6;
    std::cout << "\nvirtual-cluster SPH (" << procs << " procs, " << per_proc
              << " particles/proc): " << Table::fixed(mflops_per_proc, 0)
              << " Mflop/s per processor = "
              << Table::fixed(mflops_per_proc / 623.9, 2)
              << " of the treecode rate\n"
              << "(the paper's 'about 1/2 of ASCI Q per processor' reflects\n"
              << "the same ghost-exchange overhead at small "
                 "particles-per-processor)\n";
  }

  if (obs) {
    const std::string trace_path = *trace_prefix + ".trace.json";
    const std::string summary_path = *trace_prefix + ".summary.json";
    ss::obs::write_chrome_trace_file(*obs, trace_path);
    ss::obs::write_summary_file(*obs, summary_path);
    const ss::obs::CriticalPath cp(*obs);
    std::cout << "\n"
              << cp.table("critical-path attribution (16-rank SPH step)");
    std::cout << "\ntrace: " << trace_path << "  summary: " << summary_path
              << "  (attributed " << Table::fixed(cp.attributed_frac(), 3)
              << " of the window)\n";
  }

  if (json_path) {
    std::ofstream os(*json_path);
    if (!os) {
      std::cerr << "cannot open " << *json_path << "\n";
      return 1;
    }
    ss::support::json::Writer w(os);
    w.begin_object();
    w.kv("bench", "fig8_supernova");
    w.kv("particles", static_cast<std::uint64_t>(ccfg.particles));
    w.kv("bounced", bounced);
    w.kv("rho_peak_over_rho0", rho_peak / rho0);
    w.kv("equator_to_pole_ratio", ratio);
    w.kv("jz_conservation", l1 / l0);
    w.kv("e_nu_total", e_nu_total);
    w.key("parallel_sph");
    w.begin_object();
    w.kv("procs", static_cast<std::uint64_t>(procs));
    w.kv("mflops_per_proc", mflops_per_proc);
    w.end_object();
    w.end_object();
    os << "\n";
    std::cout << "\nmachine-readable results: " << *json_path << "\n";
  }
  return 0;
}
