// Reproduces Table 1 (Space Simulator BOM), Table 7 (Loki BOM), the
// Fig 3 / Sec 3.3 price-performance milestone ($1/Mflops broken), the
// Sec 3.5 SPECfp price/performance, and the Sec 5 Moore's-law analysis.
#include <iostream>

#include "hw/bom.hpp"
#include "support/table.hpp"

namespace {

void print_bom(const ss::hw::BillOfMaterials& bom) {
  using ss::support::Table;
  Table t(bom.name());
  t.header({"Qty", "Price", "Ext.", "Description"});
  for (const auto& i : bom.items()) {
    t.row({i.qty > 0 ? Table::fixed(i.qty, 0) : "",
           i.unit_price > 0 ? Table::fixed(i.unit_price, 0) : "",
           Table::fixed(i.extended, 0), i.description});
  }
  t.row({"Total", "", Table::fixed(bom.total(), 0),
         "$" + Table::fixed(bom.per_node(), 0) + " per node"});
  std::cout << t << "\n";
}

}  // namespace

int main() {
  using namespace ss::hw;
  using ss::support::Table;

  std::cout << "Tables 1 & 7 reproduction: cluster bills of materials\n\n";
  print_bom(space_simulator_bom());
  print_bom(loki_bom());

  PricePerformance pp;
  Table t("Fig 3 / Sec 3.3 & 3.5: price/performance milestones");
  t.header({"metric", "model", "paper"});
  t.row({"Linpack Oct 2002 (Gflop/s, 288 procs)", "665.1", "665.1"});
  t.row({"Linpack Apr 2003 (Gflop/s, 288 procs)", "757.1", "757.1"});
  t.row({"$ per Linpack Mflop/s (2003)",
         Table::fixed(pp.dollars_per_linpack_mflops(), 3), "0.639"});
  t.row({"$ per Linpack Gflop/s",
         Table::fixed(pp.dollars_per_linpack_mflops() * 1000.0, 0), "639"});
  t.row({"node cost w/o network ($)",
         Table::fixed(pp.node_cost_without_network(), 0), "888"});
  t.row({"$ per SPECfp2000", Table::fixed(pp.dollars_per_specfp(), 2),
         "1.20"});
  std::cout << t << "\n";

  Table m("Sec 5: Moore's-law comparison over the six Loki->SS years");
  m.header({"quantity", "improvement vs Moore (x)", "paper's reading"});
  m.row({"treecode Gflop/s per $",
         Table::fixed(moores_law_ratio(1.28, loki_bom().total(), 179.7,
                                       space_simulator_bom().total(), 6.0),
                      2),
         "~1 (matches Moore)"});
  m.row({"NPB BT Mop/s per node-$",
         Table::fixed(moores_law_ratio(355, 3211, 4480, 1646, 6.0), 2),
         "+25% over Moore"});
  m.row({"NPB LU Mop/s per node-$",
         Table::fixed(moores_law_ratio(428, 3211, 6640, 1646, 6.0), 2),
         "~2x over Moore"});
  m.row({"NPB MG Mop/s per node-$",
         Table::fixed(moores_law_ratio(296, 3211, 4592, 1646, 6.0), 2),
         "~2x over Moore"});
  for (const auto& c : component_trends()) {
    m.row({c.component + " price (" + c.unit + ")",
           Table::fixed(c.loki_price_per_unit / c.ss_price_per_unit / 16.0, 2),
           c.component == "disk" ? "7x beyond Moore" : "2x beyond Moore"});
  }
  std::cout << m;
  return 0;
}
