// Reproduces Table 6: historical performance of the hashed oct-tree code
// on the "standard simulation problem" — a spherical particle distribution
// representing the early evolution of a cosmological simulation.
//
// Two parts:
//  1. The real distributed treecode runs the cold-sphere problem on the
//     virtual cluster at increasing bodies-per-processor, measuring the
//     communication share of virtual time. The share falls like
//     (N/P)^(-1/3) (locally-essential-tree surface over volume); we fit
//     that law and extrapolate to the production regime (~470k bodies
//     per processor in the paper's 134M-particle runs).
//  2. The Space Simulator's Table 6 entry is then *predicted* from its
//     measured gravity-kernel rate (Table 5: 779.3 Mflop/s with gcc) times
//     the extrapolated parallel efficiency and a tree-build overhead, and
//     compared against the paper's 179.7 Gflop/s. The other machines'
//     rows are reproduced from their published per-processor rates (which
//     already embed each machine's own network losses).
//  3. Far-field backend sweep (the asymptotic ablation): the single-rank
//     per-body treecode walk and the dual-tree FMM run the same Plummer
//     spheres from 16k to 512k bodies at matched 1e-6-class accuracy —
//     the treecode at the tightest practical opening angle (theta = 0.12,
//     ~1-2e-6 RMS) on its bucket-16 tree, the FMM at its economical
//     high-accuracy configuration (theta = 1.2, p = 6, ~5-7e-7 RMS) on a
//     fat-leaf bucket-64 tree (the FMM trades M2L list length against
//     P2P tile volume, so it wants leaves ~4x fatter than the walk
//     does). Above 65k bodies the treecode column is measured on a
//     strided 8192-target sample of the same per-body walk and scaled
//     to all N (the walk is independent per target, so the strided
//     Morton-order sample is unbiased; rows carry a sampled flag). The
//     sweep emits speedup_fmm_vs_treecode and the crossover N.
//
//   --json [PATH]   write parts 1-3 as machine-readable JSON
//                   (default BENCH_table6.json).
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "hot/parallel.hpp"
#include "nbody/ic.hpp"
#include "nodemodel/processors.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "vmpi/comm.hpp"

namespace {

/// Communication share of virtual time for the real treecode at the given
/// scale on the modeled Space Simulator fabric.
double measure_comm_fraction(int procs, int bodies_per_proc) {
  ss::support::WallTimer timer;
  auto model = ss::vmpi::make_space_simulator_model(
      ss::simnet::lam_homogeneous(),
      ss::nodemodel::SpaceSimulatorNode::gravity_libm_mflops * 1e6);
  ss::vmpi::Runtime rt(procs, model);
  double frac = 0.0;
  std::mutex mu;
  rt.run([&](ss::vmpi::Comm& c) {
    ss::support::Rng rng(static_cast<std::uint64_t>(600 + c.rank()));
    auto bodies = ss::nbody::cold_sphere(bodies_per_proc, rng);
    auto sources = ss::nbody::sources_of(bodies);
    ss::hot::ParallelConfig cfg;
    cfg.theta = 0.6;
    cfg.eps2 = 1e-6;
    auto res = parallel_gravity(c, sources, {}, cfg);
    const double flops = c.allreduce_sum(
        static_cast<double>(res.stats.traverse.flops()));
    const double t_total = c.barrier_max_time();
    const double t_compute =
        flops / procs /
        (ss::nodemodel::SpaceSimulatorNode::gravity_libm_mflops * 1e6);
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      frac = std::max(0.0, 1.0 - t_compute / std::max(t_total, 1e-30));
    }
  });
  std::cerr << "[table6] comm study " << procs << " x " << bodies_per_proc
            << ": " << timer.seconds() << " s" << std::endl;
  return frac;
}

/// One row of the far-field backend sweep.
struct SweepRow {
  std::size_t n = 0;
  double treecode_ms = 0.0;
  double fmm_ms = 0.0;
  double treecode_rms = 0.0;
  double fmm_rms = 0.0;
  bool treecode_sampled = false;
  double speedup() const { return treecode_ms / fmm_ms; }
};

constexpr double kSweepEps2 = 1e-6;
constexpr double kTreecodeTheta = 0.12;  ///< ~1-2e-6 RMS (1e-6-class).
constexpr double kFmmTheta = 1.2;        ///< ~5-7e-7 RMS at p = 6.
constexpr int kFmmOrder = 6;
constexpr std::uint32_t kTreecodeBucket = 16;  ///< walk-tuned leaves
constexpr std::uint32_t kFmmBucket = 64;       ///< tile-tuned fat leaves
/// Above this N the treecode column is sampled: the per-body walk is
/// independent per target, so timing a strided subset and scaling to N
/// is unbiased — and the only way to keep the 512k row (a ~40 min full
/// walk at theta = 0.12) inside a CI budget.
constexpr std::size_t kTreecodeFullMeasureMax = 65536;
constexpr std::size_t kTreecodeSampleTargets = 8192;

SweepRow measure_far_field(std::size_t n) {
  ss::support::Rng rng(700 + static_cast<std::uint64_t>(n));
  const auto bodies = ss::nbody::plummer_sphere(n, rng);
  const auto src = ss::nbody::sources_of(bodies);
  // One tree per backend, each at its tuned leaf size. Both trees sort
  // the same bodies into the same Morton order, so index i names the
  // same body in either.
  ss::hot::Tree tc_tree(src, ss::hot::TreeConfig{kTreecodeBucket});
  ss::hot::Tree fm_tree(src, ss::hot::TreeConfig{kFmmBucket});
  std::cerr << "[table6] sweep n=" << n << " trees built" << std::endl;

  SweepRow row;
  row.n = n;

  const ss::hot::AccelParams tc{.theta = kTreecodeTheta,
                                .eps2 = kSweepEps2,
                                .method = ss::gravity::RsqrtMethod::auto_select,
                                .use_simd = true};
  std::vector<ss::hot::Accel> tc_acc;
  if (n <= kTreecodeFullMeasureMax) {
    ss::support::WallTimer tc_timer;
    tc_acc = tc_tree.accelerate_all(tc);
    row.treecode_ms = tc_timer.seconds() * 1e3;
  } else {
    row.treecode_sampled = true;
    const std::size_t stride =
        std::max<std::size_t>(1, n / kTreecodeSampleTargets);
    std::size_t walked = 0;
    ss::support::WallTimer tc_timer;
    for (std::size_t i = 0; i < n; i += stride, ++walked) {
      volatile double sink =
          tc_tree
              .accelerate(tc_tree.bodies()[i].pos, tc.theta, tc.eps2,
                          tc.method)
              .phi;
      (void)sink;
    }
    row.treecode_ms = tc_timer.seconds() * 1e3 *
                      (static_cast<double>(n) / static_cast<double>(walked));
  }
  std::cerr << "[table6]   treecode: " << row.treecode_ms << " ms"
            << (row.treecode_sampled ? " (sampled)" : "") << std::endl;

  const ss::hot::AccelParams fm{.theta = kFmmTheta,
                                .eps2 = kSweepEps2,
                                .method = ss::gravity::RsqrtMethod::auto_select,
                                .far_field = ss::hot::FarField::fmm,
                                .p_order = kFmmOrder,
                                .use_simd = true};
  ss::support::WallTimer fm_timer;
  const auto fm_acc = fm_tree.accelerate_fmm_all(fm);
  row.fmm_ms = fm_timer.seconds() * 1e3;
  std::cerr << "[table6]   fmm: " << row.fmm_ms << " ms" << std::endl;

  // Sampled direct-sum reference (the kernels skip the r2 == 0 self term).
  const std::size_t stride = std::max<std::size_t>(1, n / 128);
  double tc_rms = 0.0, fm_rms = 0.0;
  std::size_t samples = 0;
  for (std::size_t i = 0; i < n; i += stride, ++samples) {
    const ss::gravity::Accel exact = ss::gravity::interact(
        fm_tree.bodies()[i].pos, fm_tree.bodies(), kSweepEps2,
        ss::gravity::RsqrtMethod::libm);
    const ss::hot::Accel tc_i =
        tc_acc.empty() ? tc_tree.accelerate(tc_tree.bodies()[i].pos, tc.theta,
                                            tc.eps2, tc.method)
                       : tc_acc[i];
    const double inv = 1.0 / (exact.a.norm() + 1e-30);
    tc_rms += std::pow((tc_i.a - exact.a).norm() * inv, 2);
    fm_rms += std::pow((fm_acc[i].a - exact.a).norm() * inv, 2);
  }
  row.treecode_rms = std::sqrt(tc_rms / static_cast<double>(samples));
  row.fmm_rms = std::sqrt(fm_rms / static_cast<double>(samples));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using ss::support::Table;

  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-')
                      ? std::string(argv[++i])
                      : std::string("BENCH_table6.json");
    } else {
      std::cerr << "usage: " << argv[0] << " [--json [PATH]]\n";
      return 2;
    }
  }

  std::cout << "Table 6 reproduction: treecode on the standard cold-sphere "
               "problem\n\n";

  // Part 1: measured communication share vs scale on the virtual cluster.
  const int procs = 16;
  Table s("real distributed runs (16 virtual processors)");
  s.header({"bodies/proc", "comm share of vtime", "share * (N/P)^(1/3)"});
  double coeff = 0.0;
  std::vector<std::pair<int, double>> comm_rows;
  for (int bpp : {256, 1024, 4096}) {
    const double f = measure_comm_fraction(procs, bpp);
    const double c = f * std::cbrt(static_cast<double>(bpp));
    s.row({std::to_string(bpp), Table::fixed(f, 3), Table::fixed(c, 2)});
    comm_rows.emplace_back(bpp, f);
    coeff = c;  // use the largest measured size for the extrapolation
  }
  std::cout << s << "\n";

  // Part 2: predict the Space Simulator's Table 6 row.
  const double production_bpp = 134e6 / 288.0;
  const double comm_extrap = coeff / std::cbrt(production_bpp);
  const double build_overhead = 0.90;  // decomposition + tree build share
  const double predicted_mflops_per_proc =
      ss::nodemodel::SpaceSimulatorNode::gravity_libm_mflops *
      (1.0 - comm_extrap) * build_overhead;
  const double predicted_gflops = 288.0 * predicted_mflops_per_proc / 1000.0;

  std::cout << "extrapolated comm share at " << Table::fixed(production_bpp, 0)
            << " bodies/proc: " << Table::fixed(100.0 * comm_extrap, 1)
            << "%\n\n";

  Table t("Table 6: treecode performance by machine");
  t.header({"Year", "Machine", "Procs", "Gflop/s (paper)", "Mflops/proc",
            "model"});
  for (const auto& m : ss::nodemodel::table6_machines()) {
    std::string model_cell = Table::fixed(
        m.procs * m.mflops_per_proc / 1000.0, 2);  // published-rate identity
    if (m.machine == "Space Simulator") {
      model_cell = Table::fixed(predicted_gflops, 1) + " (predicted)";
    }
    t.row({std::to_string(m.year), m.machine, std::to_string(m.procs),
           Table::fixed(m.gflops, 2), Table::fixed(m.mflops_per_proc, 1),
           model_cell});
  }
  std::cout << t;

  std::cout << "\nPrediction check: kernel rate 779.3 Mflop/s (Table 5, gcc)\n"
               "x parallel efficiency x build overhead = "
            << Table::fixed(predicted_mflops_per_proc, 1)
            << " Mflops/proc vs the paper's measured 623.9 ("
            << Table::fixed(predicted_mflops_per_proc / 623.9, 2)
            << "x).\nKey shape: the full 288-proc SS (~180 Gflop/s) matches "
               "256 procs of\nASCI Q ("
            << Table::fixed(2793.0 * 256 / 3600, 0)
            << " Gflop/s) and beats the 256-proc SP-3 by 3x, at a tenth\n"
               "of the price.\n";

  // Part 3: far-field backend sweep — treecode walks vs dual-tree FMM at
  // matched 1e-6-class accuracy on growing Plummer spheres.
  std::cout << "\nFar-field ablation: treecode (theta = "
            << Table::fixed(kTreecodeTheta, 2) << ") vs FMM (theta = "
            << Table::fixed(kFmmTheta, 2) << ", p = " << kFmmOrder << ")\n";
  Table f("single-rank wall-clock at matched accuracy");
  f.header({"bodies", "treecode ms", "fmm ms", "treecode rms", "fmm rms",
            "speedup"});
  std::vector<SweepRow> sweep;
  for (std::size_t n : {std::size_t{16384}, std::size_t{65536},
                        std::size_t{262144}, std::size_t{524288}}) {
    sweep.push_back(measure_far_field(n));
    const SweepRow& r = sweep.back();
    f.row({std::to_string(r.n),
           Table::fixed(r.treecode_ms, 1) + (r.treecode_sampled ? "*" : ""),
           Table::fixed(r.fmm_ms, 1), Table::num(r.treecode_rms, 2),
           Table::num(r.fmm_rms, 2), Table::fixed(r.speedup(), 2)});
  }
  std::cout << f;
  std::cout << "* measured on a strided " << kTreecodeSampleTargets
            << "-target sample of the per-body walk, scaled to N\n";

  std::size_t crossover_n = 0;
  for (const SweepRow& r : sweep) {
    if (r.speedup() > 1.0) {
      crossover_n = r.n;
      break;
    }
  }
  const double final_speedup = sweep.back().speedup();
  std::cout << "\nspeedup_fmm_vs_treecode at N = " << sweep.back().n << ": "
            << Table::fixed(final_speedup, 2) << "x";
  if (crossover_n != 0) {
    std::cout << " (crossover at N <= " << crossover_n << ")\n";
  } else {
    std::cout << " (no crossover within the sweep)\n";
  }

  if (json_path) {
    std::ofstream os(*json_path);
    if (!os) {
      std::cerr << "cannot open " << *json_path << "\n";
      return 1;
    }
    ss::support::json::Writer w(os);
    w.begin_object();
    w.kv("bench", "table6_treecode");
    w.key("comm_share");
    w.begin_array();
    for (const auto& [bpp, frac] : comm_rows) {
      w.begin_object();
      w.kv("bodies_per_proc", static_cast<std::uint64_t>(bpp));
      w.kv("comm_fraction", frac);
      w.end_object();
    }
    w.end_array();
    w.kv("predicted_gflops", predicted_gflops);
    w.key("far_field_sweep");
    w.begin_object();
    w.kv("treecode_theta", kTreecodeTheta);
    w.kv("fmm_theta", kFmmTheta);
    w.kv("fmm_p_order", static_cast<std::uint64_t>(kFmmOrder));
    w.kv("treecode_bucket", static_cast<std::uint64_t>(kTreecodeBucket));
    w.kv("fmm_bucket", static_cast<std::uint64_t>(kFmmBucket));
    w.key("rows");
    w.begin_array();
    for (const SweepRow& r : sweep) {
      w.begin_object();
      w.kv("n", static_cast<std::uint64_t>(r.n));
      w.kv("treecode_ms", r.treecode_ms);
      w.kv("fmm_ms", r.fmm_ms);
      w.kv("treecode_rms", r.treecode_rms);
      w.kv("fmm_rms", r.fmm_rms);
      w.kv("treecode_sampled", r.treecode_sampled);
      w.kv("speedup", r.speedup());
      w.end_object();
    }
    w.end_array();
    w.kv("speedup_fmm_vs_treecode", final_speedup);
    w.kv("crossover_n", static_cast<std::uint64_t>(crossover_n));
    w.end_object();
    w.end_object();
    os << "\n";
    std::cout << "machine-readable results: " << *json_path << "\n";
  }
  return 0;
}
