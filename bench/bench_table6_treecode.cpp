// Reproduces Table 6: historical performance of the hashed oct-tree code
// on the "standard simulation problem" — a spherical particle distribution
// representing the early evolution of a cosmological simulation.
//
// Two parts:
//  1. The real distributed treecode runs the cold-sphere problem on the
//     virtual cluster at increasing bodies-per-processor, measuring the
//     communication share of virtual time. The share falls like
//     (N/P)^(-1/3) (locally-essential-tree surface over volume); we fit
//     that law and extrapolate to the production regime (~470k bodies
//     per processor in the paper's 134M-particle runs).
//  2. The Space Simulator's Table 6 entry is then *predicted* from its
//     measured gravity-kernel rate (Table 5: 779.3 Mflop/s with gcc) times
//     the extrapolated parallel efficiency and a tree-build overhead, and
//     compared against the paper's 179.7 Gflop/s. The other machines'
//     rows are reproduced from their published per-processor rates (which
//     already embed each machine's own network losses).
#include <cmath>
#include <iostream>
#include <mutex>

#include "hot/parallel.hpp"
#include "nbody/ic.hpp"
#include "nodemodel/processors.hpp"
#include "support/table.hpp"
#include "vmpi/comm.hpp"

namespace {

/// Communication share of virtual time for the real treecode at the given
/// scale on the modeled Space Simulator fabric.
double measure_comm_fraction(int procs, int bodies_per_proc) {
  auto model = ss::vmpi::make_space_simulator_model(
      ss::simnet::lam_homogeneous(),
      ss::nodemodel::SpaceSimulatorNode::gravity_libm_mflops * 1e6);
  ss::vmpi::Runtime rt(procs, model);
  double frac = 0.0;
  std::mutex mu;
  rt.run([&](ss::vmpi::Comm& c) {
    ss::support::Rng rng(static_cast<std::uint64_t>(600 + c.rank()));
    auto bodies = ss::nbody::cold_sphere(bodies_per_proc, rng);
    auto sources = ss::nbody::sources_of(bodies);
    ss::hot::ParallelConfig cfg;
    cfg.theta = 0.6;
    cfg.eps2 = 1e-6;
    auto res = parallel_gravity(c, sources, {}, cfg);
    const double flops = c.allreduce_sum(
        static_cast<double>(res.stats.traverse.flops()));
    const double t_total = c.barrier_max_time();
    const double t_compute =
        flops / procs /
        (ss::nodemodel::SpaceSimulatorNode::gravity_libm_mflops * 1e6);
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      frac = std::max(0.0, 1.0 - t_compute / std::max(t_total, 1e-30));
    }
  });
  return frac;
}

}  // namespace

int main() {
  using ss::support::Table;

  std::cout << "Table 6 reproduction: treecode on the standard cold-sphere "
               "problem\n\n";

  // Part 1: measured communication share vs scale on the virtual cluster.
  const int procs = 16;
  Table s("real distributed runs (16 virtual processors)");
  s.header({"bodies/proc", "comm share of vtime", "share * (N/P)^(1/3)"});
  double coeff = 0.0;
  for (int bpp : {256, 1024, 4096}) {
    const double f = measure_comm_fraction(procs, bpp);
    const double c = f * std::cbrt(static_cast<double>(bpp));
    s.row({std::to_string(bpp), Table::fixed(f, 3), Table::fixed(c, 2)});
    coeff = c;  // use the largest measured size for the extrapolation
  }
  std::cout << s << "\n";

  // Part 2: predict the Space Simulator's Table 6 row.
  const double production_bpp = 134e6 / 288.0;
  const double comm_extrap = coeff / std::cbrt(production_bpp);
  const double build_overhead = 0.90;  // decomposition + tree build share
  const double predicted_mflops_per_proc =
      ss::nodemodel::SpaceSimulatorNode::gravity_libm_mflops *
      (1.0 - comm_extrap) * build_overhead;
  const double predicted_gflops = 288.0 * predicted_mflops_per_proc / 1000.0;

  std::cout << "extrapolated comm share at " << Table::fixed(production_bpp, 0)
            << " bodies/proc: " << Table::fixed(100.0 * comm_extrap, 1)
            << "%\n\n";

  Table t("Table 6: treecode performance by machine");
  t.header({"Year", "Machine", "Procs", "Gflop/s (paper)", "Mflops/proc",
            "model"});
  for (const auto& m : ss::nodemodel::table6_machines()) {
    std::string model_cell = Table::fixed(
        m.procs * m.mflops_per_proc / 1000.0, 2);  // published-rate identity
    if (m.machine == "Space Simulator") {
      model_cell = Table::fixed(predicted_gflops, 1) + " (predicted)";
    }
    t.row({std::to_string(m.year), m.machine, std::to_string(m.procs),
           Table::fixed(m.gflops, 2), Table::fixed(m.mflops_per_proc, 1),
           model_cell});
  }
  std::cout << t;

  std::cout << "\nPrediction check: kernel rate 779.3 Mflop/s (Table 5, gcc)\n"
               "x parallel efficiency x build overhead = "
            << Table::fixed(predicted_mflops_per_proc, 1)
            << " Mflops/proc vs the paper's measured 623.9 ("
            << Table::fixed(predicted_mflops_per_proc / 623.9, 2)
            << "x).\nKey shape: the full 288-proc SS (~180 Gflop/s) matches "
               "256 procs of\nASCI Q ("
            << Table::fixed(2793.0 * 256 / 3600, 0)
            << " Gflop/s) and beats the 256-proc SP-3 by 3x, at a tenth\n"
               "of the price.\n";
  return 0;
}
