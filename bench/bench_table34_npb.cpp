// Reproduces Tables 3 and 4: NAS Parallel Benchmark performance of the
// Space Simulator vs ASCI Q at 64 processors (class C) and 256 processors
// (class D).
//
// Our numbers come from the modeled kernels: per-node rates are the
// paper's own Table 2 serial measurements and the network is the modeled
// Foundry fabric, so the table tests whether "Table 2 node + Fig 2/Sec
// 3.1 network => Tables 3/4 cluster" holds. The ASCI Q column repeats the
// paper's values for comparison.
#include <iostream>
#include <vector>

#include "npb_driver.hpp"
#include "support/table.hpp"

namespace {

struct PaperRow {
  const char* name;
  double ss;
  double asci_q;
};

void run_table(const char* title, ss::npb::Class klass, int procs,
               const std::vector<PaperRow>& rows) {
  using ss::support::Table;
  Table t(title);
  t.header({"Benchmark", "SS model (Mop/s)", "SS paper", "ASCI Q paper",
            "model/paper"});
  for (const auto& row : rows) {
    const auto r = ss::npb_driver::run_modeled(row.name, klass, procs);
    t.row({row.name, Table::fixed(r.mops_per_second(), 0),
           Table::fixed(row.ss, 0), Table::fixed(row.asci_q, 0),
           Table::fixed(r.mops_per_second() / row.ss, 2)});
  }
  std::cout << t << "\n";
}

}  // namespace

int main() {
  std::cout << "Tables 3 & 4 reproduction: NPB 2.4 on the modeled Space "
               "Simulator\n\n";

  run_table("Table 3: 64-processor class C (Mop/s)", ss::npb::Class::C, 64,
            {{"BT", 17032, 22540},
             {"SP", 7822, 17775},
             {"LU", 27942, 40916},
             {"CG", 3291, 4129},
             {"FT", 9860, 7275},
             {"IS", 232, 286}});

  run_table("Table 4: 256-processor class D (Mop/s)", ss::npb::Class::D, 256,
            {{"BT", 63044, 80418},
             {"SP", 29348, 55327},
             {"LU", 81472, 135650},
             {"CG", 4913, 10149},
             {"FT", 21995, 30100}});

  std::cout << "Shape checks vs paper: LU fastest, then BT, FT, SP, CG, IS;\n"
               "the Space Simulator lands within ~2x of ASCI Q on the\n"
               "compute-bound codes and further behind on the\n"
               "communication-bound ones (SP, CG) — the gigabit-ethernet\n"
               "tradeoff the paper's price/performance argument rests on.\n";
  return 0;
}
