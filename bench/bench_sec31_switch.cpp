// Reproduces the switch backplane measurements of Sec 3.1:
//  - messages within a 16-port module are non-blocking;
//  - 16 simultaneous streams from one module to another share ~6000 Mbit/s;
//  - traffic between the two chassis is limited by the trunk;
//  - the hypercube-edge pair test across dimensions.
#include <iostream>
#include <vector>

#include "simnet/fairshare.hpp"
#include "simnet/topology.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main() {
  using namespace ss::simnet;
  using ss::support::Table;
  namespace u = ss::support::units;

  const Topology topo = space_simulator_topology();

  std::cout << "Sec 3.1 reproduction: Foundry switch capacity tiers\n\n";

  {
    Table t("Module-to-module saturation (16 concurrent streams)");
    t.header({"pattern", "flows", "per-flow Mbit/s", "aggregate Mbit/s",
              "paper"});
    std::vector<Flow> same;
    for (int i = 0; i < 8; ++i) same.push_back({2 * i, 2 * i + 1});
    auto r1 = fair_share(topo, same);
    t.row({"within one module", "8", Table::fixed(r1.min_bps / u::Mbit, 0),
           Table::fixed(r1.total_bps / u::Mbit, 0), "non-blocking"});

    std::vector<Flow> cross;
    for (int i = 0; i < 16; ++i) cross.push_back({i, 16 + i});
    auto r2 = fair_share(topo, cross);
    t.row({"module 0 -> module 1", "16", Table::fixed(r2.min_bps / u::Mbit, 0),
           Table::fixed(r2.total_bps / u::Mbit, 0), "~6000 Mbit/s"});

    std::vector<Flow> trunked;
    for (int i = 0; i < 64; ++i) trunked.push_back({i, 224 + (i % 70)});
    auto r3 = fair_share(topo, trunked);
    t.row({"chassis 0 -> chassis 1", "64", Table::fixed(r3.min_bps / u::Mbit, 0),
           Table::fixed(r3.total_bps / u::Mbit, 0), "8 Gbit trunk limit"});
    std::cout << t << "\n";
  }

  {
    Table t("Hypercube-edge pair test (288 nodes, both directions per edge)");
    t.header({"dim", "crosses", "flows", "per-flow Mbit/s",
              "aggregate Gbit/s"});
    for (int dim = 0; dim < 9; ++dim) {
      const auto flows = hypercube_pairs(288, dim);
      const auto r = fair_share(topo, flows);
      const char* crosses = dim < 4          ? "within module"
                            : (1 << dim) < 224 ? "between modules"
                                                : "across trunk";
      t.row({std::to_string(dim), crosses, std::to_string(flows.size()),
             Table::fixed(r.min_bps / u::Mbit, 0),
             Table::fixed(r.total_bps / u::Gbit, 2)});
    }
    std::cout << t;
    std::cout << "\nExpected shape: full 779 Mbit/s per flow for dims 0-3\n"
                 "(non-blocking inside a module), module-backplane sharing\n"
                 "for middle dims, trunk-limited for the top dim.\n";
  }
  return 0;
}
