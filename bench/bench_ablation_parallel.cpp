// Ablation: the parallel treecode's communication design choices.
//
//  1. ABM batch size — the paper's asynchronous batched messages exist to
//     amortize per-message latency; the sweep shows message count and
//     virtual time vs batch bytes.
//  2. Work-weighted vs unweighted domain decomposition — the Morton-curve
//     split by measured work is the paper's load-balancing mechanism; the
//     ablation measures the load imbalance both ways on a clustered
//     problem.
//
// Observability flags (see README "Observability"):
//
//   --trace PREFIX   run the measured pass under an obs::Session and write
//                    PREFIX.trace.json (Chrome trace-event, open in
//                    Perfetto: one track per rank showing the four force-
//                    evaluation stages) and PREFIX.summary.json (counters,
//                    gauges, per-phase imbalance), plus print the
//                    virtual-time phase breakdown table.
//   --json [PATH]    write the ablation tables as machine-readable JSON
//                    (default BENCH_ablation_parallel.json).
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>

#include "hot/parallel.hpp"
#include "nbody/ic.hpp"
#include "obs/report.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "vmpi/comm.hpp"

namespace {

struct RunResult {
  double vtime = 0.0;
  double messages = 0.0;
  double imbalance = 0.0;      ///< max over ranks of work / mean work
  double host_seconds = 0.0;   ///< wall-clock of the whole run (both passes)
};

RunResult run_gravity(int procs, std::size_t batch_bytes, bool weighted,
                      ss::obs::Session* session = nullptr) {
  ss::support::WallTimer wall;
  auto model = ss::vmpi::make_space_simulator_model(
      ss::simnet::lam_homogeneous(), 623.9e6);
  ss::vmpi::Runtime rt(procs, model);
  rt.attach_observer(session);
  RunResult out;
  std::mutex mu;
  rt.run([&](ss::vmpi::Comm& c) {
    // Clustered bodies: three dense knots, deliberately unbalanced.
    ss::support::Rng rng(static_cast<std::uint64_t>(31 + c.rank()));
    std::vector<ss::hot::Source> local;
    const ss::support::Vec3 centers[3] = {
        {-1, -1, -1}, {1.2, 0.3, 0.0}, {0.1, 1.1, -0.7}};
    for (int i = 0; i < 1024; ++i) {
      double x, y, z;
      rng.unit_vector(x, y, z);
      const double r = 0.25 * rng.uniform() * rng.uniform();
      local.push_back(
          {centers[i % 3] + ss::support::Vec3{x, y, z} * r, 1.0 / 1024});
    }
    ss::hot::ParallelConfig cfg;
    cfg.theta = 0.6;
    cfg.eps2 = 1e-6;
    cfg.abm.batch_bytes = batch_bytes;
    // First pass provides weights; the measured pass uses them (or not).
    auto warm = parallel_gravity(c, local, {}, cfg);
    const double t0 = c.barrier_max_time();
    auto res = parallel_gravity(c, warm.bodies,
                                weighted ? std::span<const double>(warm.work)
                                         : std::span<const double>{},
                                cfg);
    const double t1 = c.barrier_max_time();
    double local_work = 0.0;
    for (double w : res.work) local_work += w;
    const double max_work = c.allreduce_max(local_work);
    const double sum_work = c.allreduce_sum(local_work);
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      out.vtime = t1 - t0;
      out.imbalance = max_work / (sum_work / procs);
    }
  });
  out.messages = static_cast<double>(rt.messages_sent());
  out.host_seconds = wall.seconds();
  return out;
}

struct SweepRow {
  std::size_t batch_bytes = 0;
  RunResult r;
};

}  // namespace

int main(int argc, char** argv) {
  using ss::support::Table;

  std::optional<std::string> trace_prefix;
  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_prefix = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-')
                      ? std::string(argv[++i])
                      : std::string("BENCH_ablation_parallel.json");
    } else {
      std::cerr << "usage: " << argv[0] << " [--trace PREFIX] [--json [PATH]]\n";
      return 2;
    }
  }

  constexpr int kProcs = 16;
  std::cout << "Parallel treecode ablations (16 virtual nodes, clustered "
               "bodies)\n\n";

  std::vector<SweepRow> batch_sweep;
  {
    Table t("ABM batch size (work-weighted decomposition)");
    t.header({"batch bytes", "physical messages (run total)",
              "virtual time (ms)", "host wall (s)"});
    for (std::size_t batch : {64u, 512u, 4096u, 32768u}) {
      const auto r = run_gravity(kProcs, batch, true);
      batch_sweep.push_back({batch, r});
      t.row({std::to_string(batch), Table::fixed(r.messages, 0),
             Table::fixed(r.vtime * 1000.0, 1),
             Table::fixed(r.host_seconds, 3)});
    }
    std::cout << t << "\n";
  }

  RunResult un, we;
  {
    Table t("domain decomposition weighting");
    t.header({"weighting", "load imbalance (max/mean)", "virtual time (ms)",
              "host wall (s)"});
    un = run_gravity(kProcs, 4096, false);
    we = run_gravity(kProcs, 4096, true);
    t.row({"uniform (particle count)", Table::fixed(un.imbalance, 2),
           Table::fixed(un.vtime * 1000.0, 1),
           Table::fixed(un.host_seconds, 3)});
    t.row({"measured work (paper's scheme)", Table::fixed(we.imbalance, 2),
           Table::fixed(we.vtime * 1000.0, 1),
           Table::fixed(we.host_seconds, 3)});
    std::cout << t;
  }

  std::cout << "\nReading: batching cuts the physical message count ~2.4x\n"
               "(the per-message software overhead it amortizes; latency\n"
               "itself pipelines across concurrent walks, so virtual time\n"
               "moves little at this scale). Work weighting flattens the\n"
               "load imbalance the clustered density field creates and\n"
               "buys back ~20% of the step time.\n";

  // Traced re-run of the paper-default configuration: per-rank spans for
  // the four force-evaluation stages plus the comm/ABM/cache counters.
  if (trace_prefix) {
    ss::obs::Session session(kProcs);
    (void)run_gravity(kProcs, 4096, true, &session);

    const std::string trace_path = *trace_prefix + ".trace.json";
    const std::string summary_path = *trace_prefix + ".summary.json";
    ss::obs::write_chrome_trace_file(session, trace_path);
    ss::obs::write_summary_file(session, summary_path);

    std::cout << "\n" << ss::obs::PhaseReport(session).table(
                     "virtual-time phase breakdown (weighted, 4096 B batches)");
    std::cout << "\ntrace:   " << trace_path
              << "  (open in ui.perfetto.dev)\nsummary: " << summary_path
              << "\n";
  }

  if (json_path) {
    std::ofstream os(*json_path);
    if (!os) {
      std::cerr << "cannot open " << *json_path << "\n";
      return 1;
    }
    ss::support::json::Writer w(os);
    w.begin_object();
    w.kv("bench", "ablation_parallel");
    w.kv("procs", kProcs);
    w.key("abm_batch_sweep");
    w.begin_array();
    for (const SweepRow& row : batch_sweep) {
      w.begin_object();
      w.kv("batch_bytes", static_cast<std::uint64_t>(row.batch_bytes));
      w.kv("messages", row.r.messages);
      w.kv("vtime_seconds", row.r.vtime);
      w.kv("host_seconds", row.r.host_seconds);
      w.end_object();
    }
    w.end_array();
    w.key("decomposition");
    w.begin_object();
    for (const auto& [name, r] :
         {std::pair<const char*, const RunResult&>{"uniform", un},
          std::pair<const char*, const RunResult&>{"work_weighted", we}}) {
      w.key(name);
      w.begin_object();
      w.kv("imbalance", r.imbalance);
      w.kv("vtime_seconds", r.vtime);
      w.kv("messages", r.messages);
      w.kv("host_seconds", r.host_seconds);
      w.end_object();
    }
    w.end_object();
    w.end_object();
    os << "\n";
    std::cout << "\nmachine-readable results: " << *json_path << "\n";
  }
  return 0;
}
