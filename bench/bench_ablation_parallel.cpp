// Ablation: the parallel treecode's communication design choices.
//
//  1. ABM batch size — the paper's asynchronous batched messages exist to
//     amortize per-message latency; the sweep shows message count and
//     virtual time vs batch bytes.
//  2. Work-weighted vs unweighted domain decomposition — the Morton-curve
//     split by measured work is the paper's load-balancing mechanism; the
//     ablation measures the load imbalance both ways on a clustered
//     problem.
//
// Observability flags (see README "Observability"):
//
//   --trace PREFIX   run the measured pass under an obs::Session and write
//                    PREFIX.trace.json (Chrome trace-event, open in
//                    Perfetto: one track per rank showing the four force-
//                    evaluation stages) and PREFIX.summary.json (counters,
//                    gauges, per-phase imbalance), plus print the
//                    virtual-time phase breakdown table.
//   --json [PATH]    write the ablation tables as machine-readable JSON
//                    (default BENCH_ablation_parallel.json).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>

#include "hot/parallel.hpp"
#include "nbody/ic.hpp"
#include "obs/report.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "vmpi/comm.hpp"

namespace {

// --no-simd: flush tiles through the auto-vectorized batch kernels
// instead of the explicit-SIMD dispatched ones (A/B host-wall lever; the
// virtual-time model and the interaction sets are identical either way).
bool g_use_simd = true;

struct RunResult {
  double vtime = 0.0;
  double messages = 0.0;
  double imbalance = 0.0;      ///< max over ranks of work / mean work
  double host_seconds = 0.0;   ///< wall-clock of the whole run (both passes)
};

RunResult run_gravity(int procs, std::size_t batch_bytes, bool weighted,
                      ss::obs::Session* session = nullptr) {
  ss::support::WallTimer wall;
  auto model = ss::vmpi::make_space_simulator_model(
      ss::simnet::lam_homogeneous(), 623.9e6);
  ss::vmpi::Runtime rt(procs, model);
  rt.attach_observer(session);
  RunResult out;
  std::mutex mu;
  rt.run([&](ss::vmpi::Comm& c) {
    // Clustered bodies: three dense knots, deliberately unbalanced.
    ss::support::Rng rng(static_cast<std::uint64_t>(31 + c.rank()));
    std::vector<ss::hot::Source> local;
    const ss::support::Vec3 centers[3] = {
        {-1, -1, -1}, {1.2, 0.3, 0.0}, {0.1, 1.1, -0.7}};
    for (int i = 0; i < 1024; ++i) {
      double x, y, z;
      rng.unit_vector(x, y, z);
      const double r = 0.25 * rng.uniform() * rng.uniform();
      local.push_back(
          {centers[i % 3] + ss::support::Vec3{x, y, z} * r, 1.0 / 1024});
    }
    ss::hot::ParallelConfig cfg;
    cfg.theta = 0.6;
    cfg.eps2 = 1e-6;
    cfg.abm.batch_bytes = batch_bytes;
    cfg.simd_kernels = g_use_simd;
    // First pass provides weights; the measured pass uses them (or not).
    auto warm = parallel_gravity(c, local, {}, cfg);
    const double t0 = c.barrier_max_time();
    auto res = parallel_gravity(c, warm.bodies,
                                weighted ? std::span<const double>(warm.work)
                                         : std::span<const double>{},
                                cfg);
    const double t1 = c.barrier_max_time();
    double local_work = 0.0;
    for (double w : res.work) local_work += w;
    const double max_work = c.allreduce_max(local_work);
    const double sum_work = c.allreduce_sum(local_work);
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      out.vtime = t1 - t0;
      out.imbalance = max_work / (sum_work / procs);
    }
  });
  out.messages = static_cast<double>(rt.messages_sent());
  out.host_seconds = wall.seconds();
  return out;
}

struct SweepRow {
  std::size_t batch_bytes = 0;
  RunResult r;
};

// ---------------------------------------------------------------------------
// Multi-step communication avoidance: persistent GravityEngine (ledger
// prefetch + dedup + piggyback) vs a fresh engine per step (the stateless
// path). Bodies drift with fixed per-body velocities routed through the
// decomposition as the engine's aux payload, so both trajectories stay
// identical and per-step forces are directly comparable.
// ---------------------------------------------------------------------------

struct StepRow {
  int step = 0;
  // Engine path (summed over ranks).
  std::uint64_t remote_requests = 0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t requests_deduped = 0;
  std::uint64_t walks_parked = 0;
  std::uint64_t sibling_pushes = 0;
  std::uint64_t abm_batches = 0;
  std::uint64_t messages = 0;  ///< physical vmpi messages (incl. collectives)
  // Stateless baseline for the same step.
  std::uint64_t stateless_messages = 0;
  std::uint64_t stateless_walks_parked = 0;
  double vtime_seconds = 0.0;  ///< engine step, decompose+build+traverse
  double host_seconds = 0.0;   ///< rank-0 wall clock of the engine step
  double force_max_rel = 0.0;  ///< max rel accel diff, engine vs stateless
};

std::vector<StepRow> run_multi_step(int procs, int steps) {
  auto model = ss::vmpi::make_space_simulator_model(
      ss::simnet::lam_homogeneous(), 623.9e6);
  ss::vmpi::Runtime rt(procs, model);
  std::vector<StepRow> rows(static_cast<std::size_t>(steps));
  std::mutex mu;
  rt.run([&](ss::vmpi::Comm& c) {
    // Same clustered knots as the ablations, plus a small coherent drift
    // per body so the remote-request set stays temporally coherent but
    // never identical step to step.
    ss::support::Rng rng(static_cast<std::uint64_t>(31 + c.rank()));
    const ss::support::Vec3 centers[3] = {
        {-1, -1, -1}, {1.2, 0.3, 0.0}, {0.1, 1.1, -0.7}};
    std::vector<ss::hot::Source> bodies;
    std::vector<double> vel;  // stride 3, the engine's aux payload
    for (int i = 0; i < 1024; ++i) {
      double x, y, z;
      rng.unit_vector(x, y, z);
      const double r = 0.25 * rng.uniform() * rng.uniform();
      bodies.push_back(
          {centers[i % 3] + ss::support::Vec3{x, y, z} * r, 1.0 / 1024});
      double vx, vy, vz;
      rng.unit_vector(vx, vy, vz);
      const double s = 0.05 * rng.uniform();
      vel.insert(vel.end(), {vx * s, vy * s, vz * s});
    }
    std::vector<ss::hot::Source> s_bodies = bodies;  // stateless twin
    std::vector<double> s_vel = vel;

    ss::hot::ParallelConfig cfg;
    cfg.theta = 0.6;
    cfg.eps2 = 1e-6;
    cfg.abm.batch_bytes = 4096;
    cfg.simd_kernels = g_use_simd;
    ss::hot::GravityEngine engine(c, cfg);
    std::vector<double> work_e, work_s;
    const double dt = 0.05;

    for (int s = 0; s < steps; ++s) {
      ss::support::WallTimer wt;
      auto re = engine.step(bodies, work_e, vel, 3);
      const double host = wt.seconds();
      // Stateless baseline: a fresh engine has an empty ledger, so this
      // is exactly one cold parallel_gravity evaluation (with aux).
      ss::hot::GravityEngine fresh(c, cfg);
      auto rs = fresh.step(s_bodies, work_s, s_vel, 3);

      if (re.bodies.size() != rs.bodies.size()) {
        throw std::runtime_error("multi-step: trajectories diverged");
      }
      double maxrel = 0.0;
      for (std::size_t i = 0; i < re.bodies.size(); ++i) {
        const double d = (re.accel[i].a - rs.accel[i].a).norm();
        const double ref = std::max(rs.accel[i].a.norm(), 1e-30);
        maxrel = std::max(maxrel, d / ref);
      }
      maxrel = c.allreduce_max(maxrel);
      const auto& st = re.stats;
      const std::uint64_t requests = c.allreduce_sum_u64(st.remote_requests);
      const std::uint64_t prefetched = c.allreduce_sum_u64(st.prefetch_issued);
      const std::uint64_t deduped = c.allreduce_sum_u64(st.requests_deduped);
      const std::uint64_t parked = c.allreduce_sum_u64(st.walks_parked);
      const std::uint64_t pushes = c.allreduce_sum_u64(st.sibling_pushes);
      const std::uint64_t batches = c.allreduce_sum_u64(st.abm_batches);
      const std::uint64_t msgs = c.allreduce_sum_u64(st.vmpi_messages);
      const std::uint64_t s_msgs =
          c.allreduce_sum_u64(rs.stats.vmpi_messages);
      const std::uint64_t s_parked =
          c.allreduce_sum_u64(rs.stats.walks_parked);
      if (c.rank() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        StepRow& row = rows[static_cast<std::size_t>(s)];
        row.step = s;
        row.remote_requests = requests;
        row.prefetch_issued = prefetched;
        row.requests_deduped = deduped;
        row.walks_parked = parked;
        row.sibling_pushes = pushes;
        row.abm_batches = batches;
        row.messages = msgs;
        row.stateless_messages = s_msgs;
        row.stateless_walks_parked = s_parked;
        row.vtime_seconds = st.decompose_seconds + st.build_seconds +
                            st.traverse_seconds;
        row.host_seconds = host;
        row.force_max_rel = maxrel;
      }

      // Drift both trajectories with their routed velocities.
      auto advance = [&](std::vector<ss::hot::Source>& b,
                         std::vector<double>& v,
                         const ss::hot::GravityResult& r) {
        b = r.bodies;
        v = r.aux;
        for (std::size_t i = 0; i < b.size(); ++i) {
          b[i].pos += dt * ss::support::Vec3{v[3 * i], v[3 * i + 1],
                                             v[3 * i + 2]};
        }
      };
      advance(bodies, vel, re);
      advance(s_bodies, s_vel, rs);
      work_e = re.work;
      work_s = rs.work;
    }
  });
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  using ss::support::Table;

  std::optional<std::string> trace_prefix;
  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_prefix = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-')
                      ? std::string(argv[++i])
                      : std::string("BENCH_ablation_parallel.json");
    } else if (std::strcmp(argv[i], "--no-simd") == 0) {
      g_use_simd = false;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--trace PREFIX] [--json [PATH]] [--no-simd]\n";
      return 2;
    }
  }

  constexpr int kProcs = 16;
  std::cout << "Parallel treecode ablations (16 virtual nodes, clustered "
               "bodies)\n\n";

  std::vector<SweepRow> batch_sweep;
  {
    Table t("ABM batch size (work-weighted decomposition)");
    t.header({"batch bytes", "physical messages (run total)",
              "virtual time (ms)", "host wall (s)"});
    for (std::size_t batch : {64u, 512u, 4096u, 32768u}) {
      const auto r = run_gravity(kProcs, batch, true);
      batch_sweep.push_back({batch, r});
      t.row({std::to_string(batch), Table::fixed(r.messages, 0),
             Table::fixed(r.vtime * 1000.0, 1),
             Table::fixed(r.host_seconds, 3)});
    }
    std::cout << t << "\n";
  }

  RunResult un, we;
  {
    Table t("domain decomposition weighting");
    t.header({"weighting", "load imbalance (max/mean)", "virtual time (ms)",
              "host wall (s)"});
    un = run_gravity(kProcs, 4096, false);
    we = run_gravity(kProcs, 4096, true);
    t.row({"uniform (particle count)", Table::fixed(un.imbalance, 2),
           Table::fixed(un.vtime * 1000.0, 1),
           Table::fixed(un.host_seconds, 3)});
    t.row({"measured work (paper's scheme)", Table::fixed(we.imbalance, 2),
           Table::fixed(we.vtime * 1000.0, 1),
           Table::fixed(we.host_seconds, 3)});
    std::cout << t;
  }

  std::cout << "\nReading: batching cuts the physical message count ~2.4x\n"
               "(the per-message software overhead it amortizes; latency\n"
               "itself pipelines across concurrent walks, so virtual time\n"
               "moves little at this scale). Work weighting flattens the\n"
               "load imbalance the clustered density field creates and\n"
               "buys back ~20% of the step time.\n";

  constexpr int kSteps = 5;
  std::vector<StepRow> multi = run_multi_step(kProcs, kSteps);
  {
    auto sci = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1e", v);
      return std::string(buf);
    };
    Table t("multi-step: persistent engine (ledger prefetch) vs stateless");
    t.header({"step", "remote reqs", "prefetch", "deduped", "parked",
              "parked (stateless)", "messages", "messages (stateless)",
              "vtime (ms)", "host (s)", "force max rel"});
    for (const StepRow& r : multi) {
      t.row({std::to_string(r.step), std::to_string(r.remote_requests),
             std::to_string(r.prefetch_issued),
             std::to_string(r.requests_deduped),
             std::to_string(r.walks_parked),
             std::to_string(r.stateless_walks_parked),
             std::to_string(r.messages),
             std::to_string(r.stateless_messages),
             Table::fixed(r.vtime_seconds * 1000.0, 1),
             Table::fixed(r.host_seconds, 3),
             sci(r.force_max_rel)});
    }
    std::cout << "\n" << t;
    std::cout << "\nReading: step 0 is cold (empty ledger — identical to the\n"
                 "stateless path). From step 1 on, the previous step's\n"
                 "request ledger is bulk-prefetched before walks start, so\n"
                 "walks find a hot cache instead of parking, and the demand\n"
                 "trickle of small request messages collapses into a few\n"
                 "full batches per owner. Values are re-fetched every step —\n"
                 "only the request *set* is reused — so forces stay\n"
                 "identical to the stateless evaluation.\n";
  }

  // Traced re-run of the paper-default configuration: per-rank spans for
  // the four force-evaluation stages plus the comm/ABM/cache counters.
  if (trace_prefix) {
    ss::obs::Session session(kProcs);
    (void)run_gravity(kProcs, 4096, true, &session);

    const std::string trace_path = *trace_prefix + ".trace.json";
    const std::string summary_path = *trace_prefix + ".summary.json";
    ss::obs::write_chrome_trace_file(session, trace_path);
    ss::obs::write_summary_file(session, summary_path);

    std::cout << "\n" << ss::obs::PhaseReport(session).table(
                     "virtual-time phase breakdown (weighted, 4096 B batches)");
    std::cout << "\ntrace:   " << trace_path
              << "  (open in ui.perfetto.dev)\nsummary: " << summary_path
              << "\n";
  }

  if (json_path) {
    std::ofstream os(*json_path);
    if (!os) {
      std::cerr << "cannot open " << *json_path << "\n";
      return 1;
    }
    ss::support::json::Writer w(os);
    w.begin_object();
    w.kv("bench", "ablation_parallel");
    w.kv("procs", kProcs);
    w.key("abm_batch_sweep");
    w.begin_array();
    for (const SweepRow& row : batch_sweep) {
      w.begin_object();
      w.kv("batch_bytes", static_cast<std::uint64_t>(row.batch_bytes));
      w.kv("messages", row.r.messages);
      w.kv("vtime_seconds", row.r.vtime);
      w.kv("host_seconds", row.r.host_seconds);
      w.end_object();
    }
    w.end_array();
    w.key("decomposition");
    w.begin_object();
    for (const auto& [name, r] :
         {std::pair<const char*, const RunResult&>{"uniform", un},
          std::pair<const char*, const RunResult&>{"work_weighted", we}}) {
      w.key(name);
      w.begin_object();
      w.kv("imbalance", r.imbalance);
      w.kv("vtime_seconds", r.vtime);
      w.kv("messages", r.messages);
      w.kv("host_seconds", r.host_seconds);
      w.end_object();
    }
    w.end_object();
    w.key("multi_step");
    w.begin_object();
    w.kv("steps", static_cast<std::uint64_t>(kSteps));
    w.key("engine");
    w.begin_array();
    for (const StepRow& r : multi) {
      w.begin_object();
      w.kv("step", static_cast<std::uint64_t>(r.step));
      w.kv("remote_requests", r.remote_requests);
      w.kv("prefetch_issued", r.prefetch_issued);
      w.kv("requests_deduped", r.requests_deduped);
      w.kv("walks_parked", r.walks_parked);
      w.kv("sibling_pushes", r.sibling_pushes);
      w.kv("abm_batches", r.abm_batches);
      w.kv("messages", r.messages);
      w.kv("stateless_messages", r.stateless_messages);
      w.kv("stateless_walks_parked", r.stateless_walks_parked);
      w.kv("vtime_seconds", r.vtime_seconds);
      w.kv("host_seconds", r.host_seconds);
      w.kv("force_max_rel", r.force_max_rel);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
    os << "\n";
    std::cout << "\nmachine-readable results: " << *json_path << "\n";
  }
  return 0;
}
