// Reproduces Table 5: Mflop/s of the gravitational micro-kernel with the
// math-library sqrt vs Karp's reciprocal-sqrt decomposition.
//
// The eleven historical processors are reported from their published
// profiles; the host machine is *measured* by running the real kernels —
// four variants: the scalar reference kernels (libm / Karp) and the SoA
// interaction-list tile kernels (libm / Karp), the portable version of the
// paper's "hand coding our inner loop with SSE instructions" experiment.
// Both Mflop/s (38 flops/interaction, the paper's accounting) and raw
// interactions/sec are reported.
//
//   --json [PATH]   write the rows as machine-readable JSON
//                   (default BENCH_table5.json).
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "gravity/batch.hpp"
#include "gravity/kernels.hpp"
#include "nodemodel/processors.hpp"
#include "simd/isa.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace ss::gravity;

constexpr int kSources = 4096;
constexpr int kRepeats = 200;

/// Interactions/sec of the scalar kernel, best of 3 trials.
template <RsqrtMethod M>
double measure_scalar_ips(std::span<const Source> sources) {
  const Vec3 target{0.01, 0.02, 0.03};
  double best = 0.0;
  volatile double sink = 0.0;
  for (int t = 0; t < 3; ++t) {
    ss::support::WallTimer timer;
    Accel acc;
    for (int r = 0; r < kRepeats; ++r) {
      acc += interact<M>(target, sources, 1e-6);
    }
    const double secs = timer.seconds();
    sink = sink + acc.phi;  // defeat dead-code elimination
    best = std::max(best,
                    static_cast<double>(sources.size()) * kRepeats / secs);
  }
  return best;
}

/// Interactions/sec of the SoA tile kernel (single-target flushes, the
/// traversal's usage pattern), best of 3 trials.
template <RsqrtMethod M>
double measure_batch_ips(const SourcesSoA& soa) {
  const Vec3 target{0.01, 0.02, 0.03};
  TileScratch scratch;
  double best = 0.0;
  volatile double sink = 0.0;
  for (int t = 0; t < 3; ++t) {
    ss::support::WallTimer timer;
    Accel acc;
    for (int r = 0; r < kRepeats; ++r) {
      acc += interact_bodies_batch<M>(target, soa, 1e-6, scratch);
    }
    const double secs = timer.seconds();
    sink = sink + acc.phi;
    best = std::max(best, static_cast<double>(soa.size()) * kRepeats / secs);
  }
  return best;
}

/// Interactions/sec of the explicit-SIMD dispatched tile kernel under the
/// currently active backend, best of 3 trials.
double measure_simd_ips(const SourcesSoA& soa) {
  const Vec3 target{0.01, 0.02, 0.03};
  double best = 0.0;
  volatile double sink = 0.0;
  for (int t = 0; t < 3; ++t) {
    ss::support::WallTimer timer;
    Accel acc;
    for (int r = 0; r < kRepeats; ++r) {
      acc += interact_bodies_simd(target, soa, 1e-6);
    }
    const double secs = timer.seconds();
    sink = sink + acc.phi;
    best = std::max(best, static_cast<double>(soa.size()) * kRepeats / secs);
  }
  return best;
}

double to_mflops(double ips) {
  return ips * static_cast<double>(kFlopsPerInteraction) / 1e6;
}

struct HostVariant {
  std::string name;
  double ips = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using ss::support::Table;

  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-')
                      ? std::string(argv[++i])
                      : std::string("BENCH_table5.json");
    } else {
      std::cerr << "usage: " << argv[0] << " [--json [PATH]]\n";
      return 2;
    }
  }

  std::cout << "Table 5 reproduction: gravity micro-kernel Mflop/s\n"
               "(historical rows from published profiles; host rows "
               "measured live)\n\n";

  // Live measurement on this machine.
  ss::support::Rng rng(5);
  std::vector<Source> src;
  for (int i = 0; i < kSources; ++i) {
    src.push_back({{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)},
                   rng.uniform(0.5, 1.5)});
  }
  const auto soa = SourcesSoA::from(src);

  std::vector<HostVariant> variants = {
      {"scalar libm", measure_scalar_ips<RsqrtMethod::libm>(src)},
      {"scalar karp", measure_scalar_ips<RsqrtMethod::karp>(src)},
      {"batch libm", measure_batch_ips<RsqrtMethod::libm>(soa)},
      {"batch karp", measure_batch_ips<RsqrtMethod::karp>(soa)},
  };
  // The explicit-SIMD dispatched kernels: once through the forced scalar
  // backend (the dispatch overhead floor) and once through whatever
  // backend the runtime selection picked (CPUID or SS_SIMD).
  {
    ss::simd::ScopedForce forced(ss::simd::Isa::scalar);
    variants.push_back({"batch simd-scalar", measure_simd_ips(soa)});
  }
  const ss::simd::Isa active = ss::simd::active();
  const std::string simd_name =
      std::string("batch simd-") + ss::simd::name(active);
  double simd_ips = 0.0;
  if (active != ss::simd::Isa::scalar) {
    variants.push_back({simd_name, measure_simd_ips(soa)});
    simd_ips = variants.back().ips;
  } else {
    simd_ips = variants.back().ips;  // scalar backend IS the active one
  }
  const double host_libm = variants[0].ips;

  Table t("Table 5: gravitational micro-kernel (virtual model rows)");
  t.header({"Processor", "libm (Mflop/s)", "Karp (Mflop/s)", "Karp/libm"});
  for (const auto& p : ss::nodemodel::table5_processors()) {
    t.row({p.name, Table::fixed(p.libm_mflops, 1),
           Table::fixed(p.karp_mflops, 1),
           Table::fixed(p.karp_mflops / p.libm_mflops, 2)});
  }
  std::cout << t << "\n";

  // The paper's Sec 5 coda: "by hand coding our inner loop with SSE
  // instructions, we hope to reach 2x" — the SoA interaction-list tile
  // kernels are the portable version of that experiment.
  Table h("this host (measured kernels)");
  h.header({"variant", "Mflop/s", "M interactions/s", "vs scalar libm"});
  for (const HostVariant& v : variants) {
    h.row({v.name, Table::fixed(to_mflops(v.ips), 1),
           Table::fixed(v.ips / 1e6, 1), Table::fixed(v.ips / host_libm, 2)});
  }
  std::cout << h;

  // The auto_select resolution the production paths will use on this
  // host — the fix for the Table 5 anomaly where scalar karp loses to
  // scalar libm while batched karp wins, so no hard-coded default is
  // right for both flavors.
  const RsqrtMethod auto_scalar = rsqrt_auto_choice(RsqrtFlavor::scalar);
  const RsqrtMethod auto_batch = rsqrt_auto_choice(RsqrtFlavor::batch);
  const auto method_name = [](RsqrtMethod m) {
    return m == RsqrtMethod::karp ? "karp" : "libm";
  };
  std::cout << "\nauto_select resolution on this host: scalar -> "
            << method_name(auto_scalar) << ", batch -> "
            << method_name(auto_batch) << "\n";

  const double speedup = variants[3].ips / host_libm;
  const double simd_speedup = simd_ips / host_libm;
  std::cout << "\nShape check vs paper: Karp's adds-and-multiplies rsqrt wins\n"
               "on every processor except the 2.2 GHz P4/gcc, where hardware\n"
               "sqrt throughput had caught up; the icc-compiled P4 row shows\n"
               "the SSE/SSE2 speedup the paper attributes to the Intel\n"
               "compiler (1170 vs 779 Mflop/s libm). On this host the\n"
               "vectorized batch-Karp tile kernel reaches "
            << Table::fixed(speedup, 2)
            << "x the scalar libm\nkernel — the >= 2x the paper hoped for "
               "from hand-coded SSE.\nThe explicit "
            << ss::simd::name(active) << " kernel reaches "
            << Table::fixed(simd_speedup, 2) << "x.\n";

  if (json_path) {
    std::ofstream os(*json_path);
    if (!os) {
      std::cerr << "cannot open " << *json_path << "\n";
      return 1;
    }
    ss::support::json::Writer w(os);
    w.begin_object();
    w.kv("bench", "table5_gravkernel");
    w.kv("flops_per_interaction",
         static_cast<std::uint64_t>(kFlopsPerInteraction));
    w.kv("sources", static_cast<std::uint64_t>(kSources));
    w.key("processors");
    w.begin_array();
    for (const auto& p : ss::nodemodel::table5_processors()) {
      w.begin_object();
      w.kv("name", p.name);
      w.kv("libm_mflops", p.libm_mflops);
      w.kv("karp_mflops", p.karp_mflops);
      w.end_object();
    }
    w.end_array();
    w.key("host");
    w.begin_object();
    w.key("variants");
    w.begin_array();
    for (const HostVariant& v : variants) {
      w.begin_object();
      w.kv("name", v.name);
      w.kv("mflops", to_mflops(v.ips));
      w.kv("interactions_per_sec", v.ips);
      w.end_object();
    }
    w.end_array();
    w.kv("speedup_batch_karp_vs_scalar_libm", speedup);
    w.kv("speedup_batch_simd_vs_scalar_libm", simd_speedup);
    w.kv("simd_isa", ss::simd::name(active));
    w.kv("rsqrt_auto_scalar", method_name(auto_scalar));
    w.kv("rsqrt_auto_batch", method_name(auto_batch));
    w.end_object();
    w.end_object();
    os << "\n";
    std::cout << "\nmachine-readable results: " << *json_path << "\n";
  }
  return 0;
}
