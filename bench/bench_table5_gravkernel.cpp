// Reproduces Table 5: Mflop/s of the gravitational micro-kernel with the
// math-library sqrt vs Karp's reciprocal-sqrt decomposition.
//
// The eleven historical processors are reported from their published
// profiles; the host machine is *measured* by running the real kernels,
// giving a 12th row — the same experiment on today's hardware.
#include <iostream>
#include <vector>

#include "gravity/batch.hpp"
#include "gravity/kernels.hpp"
#include "nodemodel/processors.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace ss::gravity;

/// Mflop/s of the interaction kernel at 38 flops/interaction (the paper's
/// accounting), best of `trials`.
template <RsqrtMethod M>
double measure_mflops(std::span<const Source> sources, int repeats) {
  const Vec3 target{0.01, 0.02, 0.03};
  double best = 0.0;
  volatile double sink = 0.0;
  for (int t = 0; t < 3; ++t) {
    ss::support::WallTimer timer;
    Accel acc;
    for (int r = 0; r < repeats; ++r) {
      acc += interact<M>(target, sources, 1e-6);
    }
    const double secs = timer.seconds();
    sink = sink + acc.phi;  // defeat dead-code elimination
    const double flops = static_cast<double>(kFlopsPerInteraction) *
                         static_cast<double>(sources.size()) * repeats;
    best = std::max(best, flops / secs / 1e6);
  }
  return best;
}

}  // namespace

int main() {
  using ss::support::Table;

  std::cout << "Table 5 reproduction: gravity micro-kernel Mflop/s\n"
               "(historical rows from published profiles; host row "
               "measured live)\n\n";

  // Live measurement on this machine.
  ss::support::Rng rng(5);
  std::vector<Source> src;
  for (int i = 0; i < 4096; ++i) {
    src.push_back({{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)},
                   rng.uniform(0.5, 1.5)});
  }
  const double host_libm = measure_mflops<RsqrtMethod::libm>(src, 200);
  const double host_karp = measure_mflops<RsqrtMethod::karp>(src, 200);

  Table t("Table 5: gravitational micro-kernel");
  t.header({"Processor", "libm (Mflop/s)", "Karp (Mflop/s)", "Karp/libm"});
  for (const auto& p : ss::nodemodel::table5_processors()) {
    t.row({p.name, Table::fixed(p.libm_mflops, 1),
           Table::fixed(p.karp_mflops, 1),
           Table::fixed(p.karp_mflops / p.libm_mflops, 2)});
  }
  t.row({"this host (measured)", Table::fixed(host_libm, 1),
         Table::fixed(host_karp, 1), Table::fixed(host_karp / host_libm, 2)});

  // The paper's Sec 5 coda: "by hand coding our inner loop with SSE
  // instructions, we hope to reach 2x" — the SoA batched kernel is the
  // portable version of that experiment, measured here on the host.
  {
    const auto soa = ss::gravity::SourcesSoA::from(src);
    const Vec3 target{0.01, 0.02, 0.03};
    std::vector<Vec3> targets(64, target);
    std::vector<Accel> out(targets.size());
    double best = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
      ss::support::WallTimer timer;
      for (int r = 0; r < 10; ++r) {
        ss::gravity::interact_batch(targets, soa, 1e-6, out);
      }
      const double flops = static_cast<double>(kFlopsPerInteraction) *
                           static_cast<double>(src.size()) * targets.size() *
                           10;
      best = std::max(best, flops / timer.seconds() / 1e6);
    }
    t.row({"this host (SoA batched)", Table::fixed(best, 1), "-",
           Table::fixed(best / host_libm, 2) + " vs libm"});
  }
  std::cout << t;

  std::cout << "\nShape check vs paper: Karp's adds-and-multiplies rsqrt wins\n"
               "on every processor except the 2.2 GHz P4/gcc, where hardware\n"
               "sqrt throughput had caught up; the icc-compiled P4 row shows\n"
               "the SSE/SSE2 speedup the paper attributes to the Intel\n"
               "compiler (1170 vs 779 Mflop/s libm).\n";
  return 0;
}
