// Reproduces Figures 4 and 5: scaling of the NAS benchmarks on the Space
// Simulator — Mop/s per processor vs processor count for class D (Fig 4)
// and class C (Fig 5). Perfect scaling is a flat line; the class C curves
// sag earlier because the problems are smaller, and the LU class C curve
// shows the bump where the per-processor working set drops into L2 cache
// (the feature the paper calls out).
#include <iostream>
#include <vector>

#include "npb_driver.hpp"
#include "support/table.hpp"

namespace {

void scaling_table(const char* title, ss::npb::Class klass,
                   const std::vector<const char*>& kernels,
                   const std::vector<int>& procs) {
  using ss::support::Table;
  Table t(title);
  std::vector<std::string> head = {"procs"};
  for (const char* k : kernels) head.push_back(k);
  t.header(head);
  for (int p : procs) {
    std::vector<std::string> row = {std::to_string(p)};
    for (const char* k : kernels) {
      const auto r = ss::npb_driver::run_modeled(k, klass, p);
      row.push_back(Table::fixed(r.mops_per_proc(), 1));
    }
    t.row(row);
  }
  std::cout << t << "\n";
}

}  // namespace

int main() {
  std::cout << "Figs 4 & 5 reproduction: NPB scaling (Mop/s per processor; "
               "flat = perfect)\n\n";

  scaling_table("Fig 4: class D scaling", ss::npb::Class::D,
                {"BT", "SP", "LU", "CG", "FT"}, {16, 32, 64, 128, 256});

  scaling_table("Fig 5: class C scaling", ss::npb::Class::C,
                {"BT", "SP", "LU", "CG", "FT", "IS", "MG"},
                {1, 2, 4, 8, 16, 32, 64, 128});

  std::cout << "Shape checks vs paper: class D stays closer to flat than\n"
               "class C; IS and CG fall off first (latency- and\n"
               "bandwidth-bound); the LU class C line rises above its\n"
               "1-processor rate at larger P when the per-processor\n"
               "working set fits in L2 (the paper's LU feature).\n";
  return 0;
}
