// Reproduces Fig 6: the self-similar Morton curve used for load balancing
// (left panel) and the adaptive tree over a centrally condensed particle
// set (right panel) — rendered as ASCII, plus the quantitative properties
// the figure illustrates: contiguous, compact processor domains and an
// adaptive cell-size distribution.
#include <iostream>
#include <vector>

#include "hot/decomp.hpp"
#include "hot/tree.hpp"
#include "nbody/ic.hpp"
#include "support/table.hpp"

int main() {
  using ss::support::Table;

  std::cout << "Fig 6 reproduction: Morton-curve domains and adaptive "
               "tree\n\n";

  // Left panel: the order-4 Morton curve in 2-D (projected from our 3-D
  // keys by fixing z), split into 4 contiguous domains.
  {
    const int side = 16;
    std::vector<std::string> grid(side, std::string(side, ' '));
    std::vector<std::pair<ss::morton::Key, std::pair<int, int>>> cells;
    for (int x = 0; x < side; ++x) {
      for (int y = 0; y < side; ++y) {
        const auto k = ss::morton::key_from_lattice(
            static_cast<std::uint32_t>(x) << 17,
            static_cast<std::uint32_t>(y) << 17, 0);
        cells.push_back({k, {x, y}});
      }
    }
    std::sort(cells.begin(), cells.end());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto [x, y] = cells[i].second;
      grid[static_cast<std::size_t>(side - 1 - y)][static_cast<std::size_t>(
          x)] = static_cast<char>('0' + (4 * i) / cells.size());
    }
    std::cout << "Morton order split into 4 processor domains "
                 "(digits = owner):\n";
    for (const auto& row : grid) std::cout << "  " << row << "\n";
    std::cout << "\n";
  }

  // Right panel: tree statistics over a centrally condensed distribution.
  ss::support::Rng rng(66);
  std::vector<ss::hot::Source> bodies;
  for (int i = 0; i < 20000; ++i) {
    double x, y, z;
    rng.unit_vector(x, y, z);
    const double r = std::pow(rng.uniform(), 3.0);  // strongly condensed
    bodies.push_back({{x * r, y * r, z * r}, 1.0 / 20000});
  }
  ss::hot::Tree tree(bodies, ss::hot::TreeConfig{8});

  std::vector<int> cells_per_level(22, 0);
  int max_level = 0;
  for (std::uint32_t i = 0; i < tree.cell_count(); ++i) {
    const int lev = ss::morton::level(tree.cell(i).key);
    ++cells_per_level[static_cast<std::size_t>(lev)];
    max_level = std::max(max_level, lev);
  }
  Table t("adaptive tree over a centrally condensed set (20k bodies)");
  t.header({"level", "cells", "note"});
  for (int l = 0; l <= max_level; ++l) {
    std::string note;
    if (l == 0) note = "root";
    if (cells_per_level[static_cast<std::size_t>(l)] ==
        *std::max_element(cells_per_level.begin(), cells_per_level.end())) {
      note = "deepest refinement follows the density peak";
    }
    t.row({std::to_string(l),
           std::to_string(cells_per_level[static_cast<std::size_t>(l)]),
           note});
  }
  std::cout << t;
  std::cout << "\ntotal cells: " << tree.cell_count() << " for "
            << bodies.size()
            << " bodies; depth adapts to the central condensation, the\n"
               "property the Fig 6 right panel illustrates.\n";
  return 0;
}
