#include "obs/obs.hpp"

namespace ss::obs {

std::uint64_t Registry::counter_value(std::string_view name) const {
  const auto it = counters_.find(std::string(name));
  return it != counters_.end() ? it->second.value() : 0;
}

double Registry::gauge_value(std::string_view name) const {
  const auto it = gauges_.find(std::string(name));
  return it != gauges_.end() ? it->second.value() : 0.0;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(std::string(name));
  return it != histograms_.end() ? &it->second : nullptr;
}

namespace detail {

Rank*& tls_slot() {
  thread_local Rank* slot = nullptr;
  return slot;
}

}  // namespace detail

}  // namespace ss::obs
