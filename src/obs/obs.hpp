// Observability: virtual-time tracing and metrics for the simulator.
//
// The paper's claims are performance claims (112 Gflop/s sustained on the
// cosmology run, latency hidden by parked tree walks, ABM batching
// amortizing per-message overhead), so the reproduction needs to see
// *where virtual time goes*. This layer provides, per vmpi rank:
//
//  - a Registry of named Counters (monotone u64) and Gauges (double),
//  - a TraceBuffer of phase spans and instant events stamped with the
//    rank's virtual clock (RAII entry point: ScopedPhase),
//
// collected in a Session that exports Chrome trace-event JSON (open in
// Perfetto / chrome://tracing; one track per rank) and a machine-readable
// run summary (obs/report.hpp).
//
// Cost model: instrumentation is *disabled by default*. A rank thread is
// instrumented only while a Session is bound to it (vmpi::Runtime does
// this when a Session is attached before run()); every hook first checks
// a thread-local pointer and does nothing when unbound, so ctest and
// un-traced bench timings are unaffected.
//
// Threading contract: each Rank recorder is written only by its own rank
// thread while the Runtime is inside run(); reading a Session (export,
// reports) is safe once run() has returned.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ss::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written (or accumulated) double-valued measurement.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Named counters and gauges for one rank. References returned by
/// counter()/gauge() stay valid for the Registry's lifetime, so hot paths
/// look a metric up once and keep the pointer.
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }

  /// Value of a counter, 0 when never touched (does not create it).
  std::uint64_t counter_value(std::string_view name) const;
  /// Value of a gauge, 0.0 when never touched (does not create it).
  double gauge_value(std::string_view name) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }

 private:
  std::map<std::string, Counter> counters_;  // node-based: stable references
  std::map<std::string, Gauge> gauges_;
};

/// One trace event in (a subset of) the Chrome trace-event model.
struct TraceEvent {
  std::string name;
  char ph = 'X';     ///< 'X' complete span, 'i' instant.
  double ts = 0.0;   ///< Virtual seconds at span begin / instant.
  double dur = 0.0;  ///< Virtual seconds of the span ('X' only).
  int depth = 0;     ///< Nesting depth at emission (0 = top level).
};

/// Per-rank recorder: a Registry plus a TraceBuffer, stamped from the
/// rank's virtual clock. Spans nest strictly (begin/end form a stack);
/// an unmatched end() throws, and open_spans() lets the owner assert
/// balance at the end of a run.
class Rank {
 public:
  explicit Rank(int id) : id_(id) {}

  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  int id() const { return id_; }

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

  /// Bind the virtual clock this recorder stamps events with. The pointer
  /// must outlive all begin()/end()/instant() calls (vmpi binds the rank's
  /// Comm clock for the duration of the run, then unbinds).
  void set_clock(const double* vclock) { clock_ = vclock; }
  double now() const { return clock_ != nullptr ? *clock_ : 0.0; }

  /// Open a phase span at the current virtual time.
  void begin(std::string name) {
    open_.push_back({std::move(name), now()});
  }

  /// Close the innermost open span, emitting a complete ('X') event.
  void end() {
    if (open_.empty()) {
      throw std::logic_error("obs: span end() without matching begin()");
    }
    Open o = std::move(open_.back());
    open_.pop_back();
    const double t = now();
    events_.push_back({std::move(o.name), 'X', o.start,
                       t > o.start ? t - o.start : 0.0,
                       static_cast<int>(open_.size())});
  }

  /// Emit an instant event at the current virtual time.
  void instant(std::string name) {
    events_.push_back(
        {std::move(name), 'i', now(), 0.0, static_cast<int>(open_.size())});
  }

  std::size_t open_spans() const { return open_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  struct Open {
    std::string name;
    double start;
  };

  int id_;
  const double* clock_ = nullptr;
  Registry registry_;
  std::vector<Open> open_;
  std::vector<TraceEvent> events_;
};

/// One observed run: a recorder per rank. Create before Runtime::run(),
/// attach with Runtime::attach_observer(), export afterwards.
class Session {
 public:
  explicit Session(int nranks) {
    if (nranks <= 0) throw std::invalid_argument("obs: nranks must be > 0");
    ranks_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      ranks_.push_back(std::make_unique<Rank>(r));
    }
  }

  int size() const { return static_cast<int>(ranks_.size()); }

  Rank& rank(int r) { return *ranks_.at(static_cast<std::size_t>(r)); }
  const Rank& rank(int r) const {
    return *ranks_.at(static_cast<std::size_t>(r));
  }

 private:
  std::vector<std::unique_ptr<Rank>> ranks_;  // stable addresses
};

// ---------------------------------------------------------------------------
// Thread-local binding: the zero-cost-when-disabled switch.
// ---------------------------------------------------------------------------

namespace detail {
Rank*& tls_slot();
}  // namespace detail

/// The recorder bound to the calling thread, or nullptr when tracing is
/// off for this thread. Hot paths cache this at phase entry.
inline Rank* tls() { return detail::tls_slot(); }

/// RAII binding of a recorder (and its clock) to the current thread.
/// Passing nullptr is a no-op binding, so call sites need no branches.
class ThreadBind {
 public:
  ThreadBind(Rank* rank, const double* vclock) : rank_(rank) {
    prev_ = detail::tls_slot();
    detail::tls_slot() = rank_;
    if (rank_ != nullptr) rank_->set_clock(vclock);
  }

  ~ThreadBind() {
    if (rank_ != nullptr) rank_->set_clock(nullptr);
    detail::tls_slot() = prev_;
  }

  ThreadBind(const ThreadBind&) = delete;
  ThreadBind& operator=(const ThreadBind&) = delete;

 private:
  Rank* rank_;
  Rank* prev_;
};

/// RAII phase span against the thread's bound recorder; a no-op when the
/// thread is unbound (one pointer test).
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name) : rank_(tls()) {
    if (rank_ != nullptr) rank_->begin(name);
  }
  ScopedPhase(Rank* rank, const char* name) : rank_(rank) {
    if (rank_ != nullptr) rank_->begin(name);
  }
  ~ScopedPhase() {
    if (rank_ != nullptr) rank_->end();
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Rank* rank_;
};

/// Counter for `name` on the calling thread's recorder, or nullptr when
/// tracing is off. Cache the result outside loops.
inline Counter* counter(const char* name) {
  Rank* r = tls();
  return r != nullptr ? &r->registry().counter(name) : nullptr;
}

inline Gauge* gauge(const char* name) {
  Rank* r = tls();
  return r != nullptr ? &r->registry().gauge(name) : nullptr;
}

}  // namespace ss::obs
