// Observability: virtual-time tracing and metrics for the simulator.
//
// The paper's claims are performance claims (112 Gflop/s sustained on the
// cosmology run, latency hidden by parked tree walks, ABM batching
// amortizing per-message overhead), so the reproduction needs to see
// *where virtual time goes*. This layer provides, per vmpi rank:
//
//  - a Registry of named Counters (monotone u64), Gauges (double) and
//    log-scale Histograms (p50/p90/p99 over fixed power-of-two buckets),
//  - a TraceBuffer of phase spans, instant events and cross-rank *flow*
//    events stamped with the rank's virtual clock (RAII entry point:
//    ScopedPhase); the buffer is a bounded ring — once full, the oldest
//    events are overwritten and `obs.events_dropped` counts the loss,
//  - a FlightRecorder: a small fixed ring of compact records (sends,
//    recvs, retransmits, parks) that watchdogs dump to a postmortem file
//    when a run stalls — the black box, not the trace.
//
// collected in a Session that exports Chrome trace-event JSON (open in
// Perfetto / chrome://tracing; one track per rank, send->recv arrows from
// the flow events) and a machine-readable run summary (obs/report.hpp).
//
// Cost model: instrumentation is *disabled by default*. A rank thread is
// instrumented only while a Session is bound to it (vmpi::Runtime does
// this when a Session is attached before run()); every hook first checks
// a thread-local pointer and does nothing when unbound, so ctest and
// un-traced bench timings are unaffected.
//
// Threading contract: each Rank recorder is written only by its own rank
// thread while the Runtime is inside run(); reading a Session (export,
// reports) is safe once run() has returned. The FlightRecorder is the one
// exception: it takes a tiny mutex per record so a watchdog on one rank
// can snapshot every rank's ring while the others are still (stalled but)
// alive.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ss::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written (or accumulated) double-valued measurement.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket log-scale histogram for positive measurements (latencies,
/// occupancies). Bucket 0 holds (0, kMinValue]; bucket i >= 1 holds
/// (kMinValue * 2^(i-1), kMinValue * 2^i]; the last bucket absorbs the
/// overflow. With kMinValue = 1e-9 the 64 buckets span a nanosecond to
/// ~9.2e9, which covers every quantity routed through it (net RTTs, RTO
/// backoffs, park times, tile occupancies). Quantiles interpolate
/// geometrically within a bucket and are clamped to the observed
/// [min, max], so degenerate distributions report exactly. Two histograms
/// share bucket edges by construction, so cross-rank merging is a plain
/// per-bucket add.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr double kMinValue = 1e-9;

  /// Bucket index of a value (values <= 0 land in bucket 0).
  static int bucket_index(double v) {
    if (!(v > kMinValue)) return 0;
    const int idx = 1 + static_cast<int>(std::floor(std::log2(v / kMinValue)));
    return std::min(idx, kBuckets - 1);
  }

  /// Inclusive upper edge of bucket i (lower edge = upper edge of i - 1).
  static double bucket_upper(int i) {
    return kMinValue * std::ldexp(1.0, i);  // kMinValue * 2^i
  }

  void record(double v) {
    ++buckets_[static_cast<std::size_t>(bucket_index(v))];
    ++count_;
    sum_ += v;
    min_ = count_ == 1 ? v : std::min(min_, v);
    max_ = count_ == 1 ? v : std::max(max_, v);
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  /// Quantile q in [0, 1]: find the bucket where the cumulative count
  /// crosses ceil(q * count), interpolate geometrically within it, clamp
  /// to the exact observed range.
  double quantile(double q) const {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t target =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       std::ceil(q * count_)));
    std::uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      const std::uint64_t n = buckets_[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      if (cum + n >= target) {
        const double frac =
            (static_cast<double>(target - cum) - 0.5) / static_cast<double>(n);
        const double hi = bucket_upper(i);
        double v;
        if (i == 0) {
          v = hi * frac;  // (0, kMinValue]: linear, there is no log floor
        } else {
          const double lo = bucket_upper(i - 1);
          v = lo * std::pow(hi / lo, frac);
        }
        return std::clamp(v, min_, max_);
      }
      cum += n;
    }
    return max_;
  }

  /// Fold another histogram in (same fixed buckets by construction).
  void merge(const Histogram& o) {
    for (int i = 0; i < kBuckets; ++i) {
      buckets_[static_cast<std::size_t>(i)] +=
          o.buckets_[static_cast<std::size_t>(i)];
    }
    if (o.count_ > 0) {
      min_ = count_ > 0 ? std::min(min_, o.min_) : o.min_;
      max_ = count_ > 0 ? std::max(max_, o.max_) : o.max_;
    }
    count_ += o.count_;
    sum_ += o.sum_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named counters, gauges and histograms for one rank. References
/// returned by counter()/gauge()/histogram() stay valid for the
/// Registry's lifetime, so hot paths look a metric up once and keep the
/// pointer.
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  /// Value of a counter, 0 when never touched (does not create it).
  std::uint64_t counter_value(std::string_view name) const;
  /// Value of a gauge, 0.0 when never touched (does not create it).
  double gauge_value(std::string_view name) const;
  /// Histogram by name, nullptr when never touched (does not create it).
  const Histogram* find_histogram(std::string_view name) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;  // node-based: stable references
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// One trace event in (a subset of) the Chrome trace-event model.
struct TraceEvent {
  std::string name;
  char ph = 'X';     ///< 'X' complete span, 'i' instant, 's'/'f' flow.
  double ts = 0.0;   ///< Virtual seconds at span begin / instant.
  double dur = 0.0;  ///< Virtual seconds of the span ('X' only).
  int depth = 0;     ///< Nesting depth at emission (0 = top level).
  std::uint64_t id = 0;  ///< Flow id ('s'/'f'; also set on tagged instants).
  double arg = 0.0;  ///< 'f' only: virtual seconds the receiver waited.
};

// ---------------------------------------------------------------------------
// Flight recorder: the black box.
// ---------------------------------------------------------------------------

/// What a flight record describes.
enum class FlightKind : std::uint32_t {
  kSend = 1,        ///< peer = dst, id = flow, value = payload bytes.
  kRecv = 2,        ///< peer = src, id = flow, value = recv wait seconds.
  kRetransmit = 3,  ///< peer = dst, id = frame seq, value = expired RTO.
  kAck = 4,         ///< peer = dst, id = cumulative ack, value = 0.
  kPark = 5,        ///< peer = owner rank, id = tree key, value = 0.
  kUnpark = 6,      ///< peer = -1, id = tree key, value = park seconds.
  kStall = 7,       ///< peer = rank, id = 0, value = watchdog seconds.
  /// Silent-data-corruption event on this rank: peer = rank, id = the
  /// flagged slab / cell index, value = repair tier taken (1 = localized
  /// repair, 2 = recompute/retry, 3 = checkpoint rollback).
  kCorruption = 8,
};

/// One compact flight record. Trivially copyable: postmortem files store
/// the ring verbatim as a raw block.
struct FlightEvent {
  double t = 0.0;  ///< Virtual time at the record.
  std::uint32_t kind = 0;
  std::int32_t peer = 0;
  std::uint64_t id = 0;
  double value = 0.0;
};
static_assert(sizeof(FlightEvent) == 32);

/// Bounded ring of the most recent FlightEvents on one rank. record() is
/// called only by the owning rank thread; snapshot() may be called by a
/// *different* rank's watchdog while this rank is stalled, hence the
/// mutex (uncontended in normal operation, and only taken at all when a
/// Session is attached).
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 10000;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : capacity_(std::max<std::size_t>(capacity, 1)) {}

  void record(double t, FlightKind kind, int peer, std::uint64_t id,
              double value) {
    std::lock_guard<std::mutex> lock(mu_);
    const FlightEvent e{t, static_cast<std::uint32_t>(kind), peer, id, value};
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
    } else {
      ring_[next_] = e;
      next_ = (next_ + 1) % capacity_;
    }
    ++total_;
  }

  /// Events in chronological order (oldest surviving record first).
  std::vector<FlightEvent> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<FlightEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
    return out;
  }

  std::uint64_t recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }
  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<FlightEvent> ring_;
  std::size_t next_ = 0;       ///< Overwrite cursor once the ring is full.
  std::uint64_t total_ = 0;    ///< Lifetime records (>= ring_.size()).
};

/// Per-rank recorder: a Registry, a TraceBuffer and a FlightRecorder,
/// stamped from the rank's virtual clock. Spans nest strictly (begin/end
/// form a stack); an unmatched end() throws, and open_spans() lets the
/// owner assert balance at the end of a run. The TraceBuffer is a ring:
/// past `event_capacity` events the oldest are overwritten and the
/// `obs.events_dropped` counter records how many were lost.
class Rank {
 public:
  static constexpr std::size_t kDefaultEventCapacity = 1 << 20;

  explicit Rank(int id, std::size_t event_capacity = kDefaultEventCapacity)
      : id_(id), capacity_(event_capacity) {}

  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  int id() const { return id_; }

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

  /// Bind the virtual clock this recorder stamps events with. The pointer
  /// must outlive all begin()/end()/instant() calls (vmpi binds the rank's
  /// Comm clock for the duration of the run, then unbinds).
  void set_clock(const double* vclock) { clock_ = vclock; }
  double now() const { return clock_ != nullptr ? *clock_ : 0.0; }

  /// Cap the TraceBuffer (0 = unbounded). Takes effect for subsequent
  /// events; call before the run starts.
  void set_event_capacity(std::size_t cap) { capacity_ = cap; }
  std::size_t event_capacity() const { return capacity_; }
  std::uint64_t events_dropped() const { return dropped_; }

  /// Open a phase span at the current virtual time.
  void begin(std::string name) {
    open_.push_back({std::move(name), now()});
  }

  /// Close the innermost open span, emitting a complete ('X') event.
  void end() {
    if (open_.empty()) {
      throw std::logic_error("obs: span end() without matching begin()");
    }
    Open o = std::move(open_.back());
    open_.pop_back();
    const double t = now();
    push_event({std::move(o.name), 'X', o.start,
                t > o.start ? t - o.start : 0.0,
                static_cast<int>(open_.size())});
  }

  /// Emit an instant event at the current virtual time.
  void instant(std::string name) {
    push_event(
        {std::move(name), 'i', now(), 0.0, static_cast<int>(open_.size())});
  }

  /// Instant event carrying an id (retransmit/ack markers keep their
  /// frame seq this way).
  void instant_id(std::string name, std::uint64_t id) {
    push_event({std::move(name), 'i', now(), 0.0,
                static_cast<int>(open_.size()), id});
  }

  /// Flow start ('s'): emitted on the sender at send time. The matching
  /// flow_end on the receiving rank (same id) renders as an arrow.
  void flow_begin(std::string name, std::uint64_t id) {
    push_event({std::move(name), 's', now(), 0.0,
                static_cast<int>(open_.size()), id});
  }

  /// Flow finish ('f'): emitted on the receiver at delivery time.
  /// `wait_seconds` is how long the receiver's clock advanced waiting for
  /// this message (0 when it was already in the mailbox).
  void flow_end(std::string name, std::uint64_t id, double wait_seconds) {
    push_event({std::move(name), 'f', now(), 0.0,
                static_cast<int>(open_.size()), id, wait_seconds});
  }

  /// Append to the flight recorder at the current virtual time.
  void flight(FlightKind kind, int peer, std::uint64_t id, double value) {
    flight_.record(now(), kind, peer, id, value);
  }
  FlightRecorder& flight_recorder() { return flight_; }
  const FlightRecorder& flight_recorder() const { return flight_; }

  std::size_t open_spans() const { return open_.size(); }

  /// The raw event ring. Chronological until the ring wraps; consumers
  /// that need order (exports, the critical-path analyzer) sort by ts.
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  struct Open {
    std::string name;
    double start;
  };

  void push_event(TraceEvent&& e) {
    if (capacity_ == 0 || events_.size() < capacity_) {
      events_.push_back(std::move(e));
      return;
    }
    events_[next_] = std::move(e);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
    if (c_dropped_ == nullptr) {
      c_dropped_ = &registry_.counter("obs.events_dropped");
    }
    c_dropped_->add(1);
  }

  int id_;
  const double* clock_ = nullptr;
  Registry registry_;
  std::vector<Open> open_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_;
  std::size_t next_ = 0;        ///< Ring overwrite cursor.
  std::uint64_t dropped_ = 0;   ///< Events overwritten after the cap.
  Counter* c_dropped_ = nullptr;
  FlightRecorder flight_;
};

/// One observed run: a recorder per rank. Create before Runtime::run(),
/// attach with Runtime::attach_observer(), export afterwards.
/// `event_capacity` is the per-rank TraceBuffer ring cap (0 = unbounded).
class Session {
 public:
  explicit Session(int nranks,
                   std::size_t event_capacity = Rank::kDefaultEventCapacity) {
    if (nranks <= 0) throw std::invalid_argument("obs: nranks must be > 0");
    ranks_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      ranks_.push_back(std::make_unique<Rank>(r, event_capacity));
    }
  }

  int size() const { return static_cast<int>(ranks_.size()); }

  Rank& rank(int r) { return *ranks_.at(static_cast<std::size_t>(r)); }
  const Rank& rank(int r) const {
    return *ranks_.at(static_cast<std::size_t>(r));
  }

  /// Events overwritten across all ranks (0 on an unwrapped ring).
  std::uint64_t events_dropped() const {
    std::uint64_t total = 0;
    for (const auto& r : ranks_) total += r->events_dropped();
    return total;
  }

 private:
  std::vector<std::unique_ptr<Rank>> ranks_;  // stable addresses
};

// ---------------------------------------------------------------------------
// Thread-local binding: the zero-cost-when-disabled switch.
// ---------------------------------------------------------------------------

namespace detail {
Rank*& tls_slot();
}  // namespace detail

/// The recorder bound to the calling thread, or nullptr when tracing is
/// off for this thread. Hot paths cache this at phase entry.
inline Rank* tls() { return detail::tls_slot(); }

/// RAII binding of a recorder (and its clock) to the current thread.
/// Passing nullptr is a no-op binding, so call sites need no branches.
class ThreadBind {
 public:
  ThreadBind(Rank* rank, const double* vclock) : rank_(rank) {
    prev_ = detail::tls_slot();
    detail::tls_slot() = rank_;
    if (rank_ != nullptr) rank_->set_clock(vclock);
  }

  ~ThreadBind() {
    if (rank_ != nullptr) rank_->set_clock(nullptr);
    detail::tls_slot() = prev_;
  }

  ThreadBind(const ThreadBind&) = delete;
  ThreadBind& operator=(const ThreadBind&) = delete;

 private:
  Rank* rank_;
  Rank* prev_;
};

/// RAII phase span against the thread's bound recorder; a no-op when the
/// thread is unbound (one pointer test).
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name) : rank_(tls()) {
    if (rank_ != nullptr) rank_->begin(name);
  }
  ScopedPhase(Rank* rank, const char* name) : rank_(rank) {
    if (rank_ != nullptr) rank_->begin(name);
  }
  ~ScopedPhase() {
    if (rank_ != nullptr) rank_->end();
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Rank* rank_;
};

/// Counter for `name` on the calling thread's recorder, or nullptr when
/// tracing is off. Cache the result outside loops.
inline Counter* counter(const char* name) {
  Rank* r = tls();
  return r != nullptr ? &r->registry().counter(name) : nullptr;
}

inline Gauge* gauge(const char* name) {
  Rank* r = tls();
  return r != nullptr ? &r->registry().gauge(name) : nullptr;
}

inline Histogram* histogram(const char* name) {
  Rank* r = tls();
  return r != nullptr ? &r->registry().histogram(name) : nullptr;
}

}  // namespace ss::obs
