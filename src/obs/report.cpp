#include "obs/report.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "support/json.hpp"

namespace ss::obs {

namespace {

using ss::support::json::Writer;

struct PerRankPhase {
  double seconds = 0.0;
  std::uint64_t spans = 0;
};

/// name -> rank -> {summed seconds, span count}, only top-level-agnostic:
/// every span contributes its own duration (nested spans therefore count
/// toward both their own phase and, through wall inclusion, the parent's).
std::map<std::string, std::map<int, PerRankPhase>> collect_phases(
    const Session& s) {
  std::map<std::string, std::map<int, PerRankPhase>> by_name;
  for (int r = 0; r < s.size(); ++r) {
    for (const TraceEvent& e : s.rank(r).events()) {
      if (e.ph != 'X') continue;
      PerRankPhase& p = by_name[e.name][r];
      p.seconds += e.dur;
      p.spans += 1;
    }
  }
  return by_name;
}

}  // namespace

PhaseReport::PhaseReport(const Session& session) {
  for (const auto& [name, per_rank] : collect_phases(session)) {
    PhaseAgg agg;
    agg.name = name;
    double sum = 0.0;
    for (const auto& [rank, p] : per_rank) {
      (void)rank;
      sum += p.seconds;
      agg.max_seconds = std::max(agg.max_seconds, p.seconds);
      agg.spans += p.spans;
      ++agg.ranks;
    }
    agg.mean_seconds = agg.ranks > 0 ? sum / agg.ranks : 0.0;
    agg.imbalance =
        agg.mean_seconds > 0.0 ? agg.max_seconds / agg.mean_seconds : 1.0;
    phases_.push_back(std::move(agg));
  }
  std::sort(phases_.begin(), phases_.end(),
            [](const PhaseAgg& a, const PhaseAgg& b) {
              return a.max_seconds != b.max_seconds
                         ? a.max_seconds > b.max_seconds
                         : a.name < b.name;
            });
}

ss::support::Table PhaseReport::table(const std::string& title) const {
  using ss::support::Table;
  Table t(title);
  t.header({"phase", "ranks", "spans", "mean (ms)", "max (ms)",
            "imbalance (max/mean)"});
  for (const PhaseAgg& p : phases_) {
    t.row({p.name, std::to_string(p.ranks), std::to_string(p.spans),
           Table::fixed(p.mean_seconds * 1e3, 3),
           Table::fixed(p.max_seconds * 1e3, 3),
           Table::fixed(p.imbalance, 2)});
  }
  return t;
}

// ---------------------------------------------------------------------------
// CriticalPath
// ---------------------------------------------------------------------------

namespace {

struct SendPoint {
  int rank = -1;
  double ts = 0.0;
};

struct RecvPoint {
  double ts = 0.0;    ///< Virtual time of delivery.
  double wait = 0.0;  ///< Seconds the receiver's clock advanced for it.
  std::uint64_t id = 0;
};

}  // namespace

CriticalPath::CriticalPath(const Session& session) {
  const int nranks = session.size();
  ranks_.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    ranks_[static_cast<std::size_t>(r)].rank = r;
  }

  // Gather the DAG: flow starts by id, per-rank waited receives, and the
  // run window over every event.
  std::unordered_map<std::uint64_t, SendPoint> sends;
  std::vector<std::vector<RecvPoint>> recvs(
      static_cast<std::size_t>(nranks));
  double t_begin = 0.0;
  double t_end = 0.0;
  std::vector<double> rank_end(static_cast<std::size_t>(nranks), 0.0);
  bool any = false;
  for (int r = 0; r < nranks; ++r) {
    for (const TraceEvent& e : session.rank(r).events()) {
      const double end = e.ph == 'X' ? e.ts + e.dur : e.ts;
      if (!any) {
        t_begin = e.ts;
        t_end = end;
        any = true;
      } else {
        t_begin = std::min(t_begin, e.ts);
        t_end = std::max(t_end, end);
      }
      rank_end[static_cast<std::size_t>(r)] =
          std::max(rank_end[static_cast<std::size_t>(r)], end);
      if (e.ph == 's') {
        sends.emplace(e.id, SendPoint{r, e.ts});  // first send wins (dups)
      } else if (e.ph == 'f' && e.arg > 0.0) {
        recvs[static_cast<std::size_t>(r)].push_back({e.ts, e.arg, e.id});
      }
    }
  }
  if (!any || t_end <= t_begin) {
    // Degenerate window: nothing to attribute.
    attributed_ = 1.0;
    for (RankAttribution& ra : ranks_) ra.attributed_frac = 1.0;
    return;
  }
  window_ = t_end - t_begin;
  for (auto& v : recvs) {
    std::sort(v.begin(), v.end(),
              [](const RecvPoint& a, const RecvPoint& b) {
                return a.ts < b.ts;
              });
  }

  // Per-rank attribution over the common window. Waits are serial in
  // virtual time (each recv advances the clock monotonically), so the
  // buckets partition the window exactly; the clamp only fires on
  // pathological traces.
  double attr_sum = 0.0;
  for (int r = 0; r < nranks; ++r) {
    RankAttribution& ra = ranks_[static_cast<std::size_t>(r)];
    for (const RecvPoint& rp : recvs[static_cast<std::size_t>(r)]) {
      double fabric = 0.0;
      const auto it = sends.find(rp.id);
      if (it != sends.end()) {
        fabric = std::clamp(rp.ts - it->second.ts, 0.0, rp.wait);
      }
      ra.fabric_seconds += fabric;
      ra.wait_seconds += rp.wait - fabric;
    }
    const double blocked = ra.wait_seconds + ra.fabric_seconds;
    ra.compute_seconds = std::max(0.0, window_ - blocked);
    ra.attributed_frac =
        std::min(1.0, (ra.compute_seconds + blocked) / window_);
    attr_sum += ra.attributed_frac;
  }
  attributed_ = attr_sum / nranks;

  // Backward chain from the last-finishing rank: compute back to the
  // latest waited receive, split its wait into fabric/wait, hop to the
  // sender at send time, repeat.
  int cur = 0;
  for (int r = 1; r < nranks; ++r) {
    if (rank_end[static_cast<std::size_t>(r)] >
        rank_end[static_cast<std::size_t>(cur)]) {
      cur = r;
    }
  }
  chain_start_ = cur;
  double t = rank_end[static_cast<std::size_t>(cur)];
  constexpr int kMaxHops = 100000;
  constexpr double kEps = 1e-15;
  for (int hop = 0; hop < kMaxHops && t > t_begin + kEps; ++hop) {
    const auto& rv = recvs[static_cast<std::size_t>(cur)];
    // Latest waited receive at or before t.
    const RecvPoint* e = nullptr;
    auto it = std::upper_bound(rv.begin(), rv.end(), t,
                               [](double val, const RecvPoint& p) {
                                 return val < p.ts;
                               });
    if (it != rv.begin()) e = &*std::prev(it);
    if (e == nullptr) {
      chain_.push_back({cur, 'c', t - t_begin});
      chain_compute_ += t - t_begin;
      break;
    }
    if (t > e->ts) {
      chain_.push_back({cur, 'c', t - e->ts});
      chain_compute_ += t - e->ts;
    }
    double fabric = 0.0;
    const SendPoint* sp = nullptr;
    const auto sit = sends.find(e->id);
    if (sit != sends.end()) {
      sp = &sit->second;
      fabric = std::clamp(e->ts - sp->ts, 0.0, e->wait);
    }
    const double wait = e->wait - fabric;
    if (fabric > 0.0) {
      chain_.push_back({cur, 'f', fabric});
      chain_fabric_ += fabric;
    }
    if (wait > 0.0) {
      chain_.push_back({cur, 'w', wait});
      chain_wait_ += wait;
    }
    const double next_t =
        sp != nullptr ? std::min(sp->ts, e->ts) : e->ts - e->wait;
    if (next_t >= t - kEps) break;  // no progress: malformed trace
    if (sp != nullptr) cur = sp->rank;
    t = next_t;
  }
}

ss::support::Table CriticalPath::table(const std::string& title) const {
  using ss::support::Table;
  Table t(title);
  t.header({"rank", "compute (ms)", "wait (ms)", "fabric (ms)",
            "attributed (%)"});
  for (const RankAttribution& ra : ranks_) {
    t.row({std::to_string(ra.rank), Table::fixed(ra.compute_seconds * 1e3, 3),
           Table::fixed(ra.wait_seconds * 1e3, 3),
           Table::fixed(ra.fabric_seconds * 1e3, 3),
           Table::fixed(ra.attributed_frac * 100.0, 1)});
  }
  return t;
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

void write_chrome_trace(const Session& session, std::ostream& os) {
  Writer w(os, /*indent=*/0);
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();

  // Metadata: one process, one named thread ("track") per rank.
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", 0);
  w.key("args");
  w.begin_object();
  w.kv("name", "space-simulator (virtual time)");
  w.end_object();
  w.end_object();

  for (int r = 0; r < session.size(); ++r) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 0);
    w.kv("tid", r);
    w.key("args");
    w.begin_object();
    w.kv("name", "rank " + std::to_string(r));
    w.end_object();
    w.end_object();
  }

  for (int r = 0; r < session.size(); ++r) {
    // Sort by begin timestamp (ties: outer spans first) so trace viewers
    // that expect ordered input nest the tracks correctly. (The event
    // buffer is a ring, so after a wrap the raw order is rotated anyway.)
    std::vector<const TraceEvent*> ordered;
    ordered.reserve(session.rank(r).events().size());
    for (const TraceEvent& e : session.rank(r).events()) {
      ordered.push_back(&e);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                if (a->ts != b->ts) return a->ts < b->ts;
                return a->depth < b->depth;
              });
    for (const TraceEvent* e : ordered) {
      w.begin_object();
      w.kv("name", e->name);
      w.key("ph");
      w.value(std::string_view(&e->ph, 1));
      w.kv("pid", 0);
      w.kv("tid", r);
      w.kv("ts", e->ts * 1e6);  // virtual seconds -> microseconds
      if (e->ph == 'X') {
        w.kv("dur", e->dur * 1e6);
      } else if (e->ph == 'i') {
        w.kv("s", "t");  // thread-scoped instant
        if (e->id != 0) w.kv("id", e->id);
      } else if (e->ph == 's' || e->ph == 'f') {
        w.kv("cat", "flow");
        w.kv("id", e->id);
        if (e->ph == 'f') {
          w.kv("bp", "e");  // bind to the enclosing slice
          w.key("args");
          w.begin_object();
          w.kv("wait_us", e->arg * 1e6);
          w.end_object();
        }
      }
      w.end_object();
    }
  }

  w.end_array();
  w.end_object();
  os << "\n";
}

void write_chrome_trace_file(const Session& session, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("obs: cannot open " + path);
  write_chrome_trace(session, os);
}

void write_summary(const Session& session, std::ostream& os) {
  Writer w(os, /*indent=*/1);
  w.begin_object();
  w.kv("schema", "ss.obs.summary.v1");
  w.kv("ranks", session.size());

  // Union of metric names across ranks, exported with per-rank values.
  std::set<std::string> counter_names;
  std::set<std::string> gauge_names;
  std::set<std::string> histogram_names;
  for (int r = 0; r < session.size(); ++r) {
    for (const auto& [name, c] : session.rank(r).registry().counters()) {
      (void)c;
      counter_names.insert(name);
    }
    for (const auto& [name, g] : session.rank(r).registry().gauges()) {
      (void)g;
      gauge_names.insert(name);
    }
    for (const auto& [name, h] : session.rank(r).registry().histograms()) {
      (void)h;
      histogram_names.insert(name);
    }
  }

  w.key("counters");
  w.begin_object();
  for (const std::string& name : counter_names) {
    std::uint64_t total = 0;
    std::vector<std::uint64_t> per_rank;
    per_rank.reserve(static_cast<std::size_t>(session.size()));
    for (int r = 0; r < session.size(); ++r) {
      const std::uint64_t v = session.rank(r).registry().counter_value(name);
      per_rank.push_back(v);
      total += v;
    }
    w.key(name);
    w.begin_object();
    w.kv("total", total);
    w.key("per_rank");
    w.begin_array();
    for (std::uint64_t v : per_rank) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const std::string& name : gauge_names) {
    double sum = 0.0;
    double mx = 0.0;
    std::vector<double> per_rank;
    per_rank.reserve(static_cast<std::size_t>(session.size()));
    for (int r = 0; r < session.size(); ++r) {
      const double v = session.rank(r).registry().gauge_value(name);
      per_rank.push_back(v);
      sum += v;
      mx = std::max(mx, v);
    }
    const double mean = sum / session.size();
    w.key(name);
    w.begin_object();
    w.kv("mean", mean);
    w.kv("max", mx);
    w.kv("imbalance", mean > 0.0 ? mx / mean : 1.0);
    w.key("per_rank");
    w.begin_array();
    for (double v : per_rank) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_object();

  // Histograms: cross-rank merge (shared fixed buckets), quantiles from
  // the merged distribution, per-rank sample counts for balance checks.
  w.key("histograms");
  w.begin_object();
  for (const std::string& name : histogram_names) {
    Histogram merged;
    std::vector<std::uint64_t> per_rank;
    per_rank.reserve(static_cast<std::size_t>(session.size()));
    for (int r = 0; r < session.size(); ++r) {
      const Histogram* h = session.rank(r).registry().find_histogram(name);
      per_rank.push_back(h != nullptr ? h->count() : 0);
      if (h != nullptr) merged.merge(*h);
    }
    w.key(name);
    w.begin_object();
    w.kv("count", merged.count());
    w.kv("mean", merged.mean());
    w.kv("min", merged.min());
    w.kv("max", merged.max());
    w.kv("p50", merged.quantile(0.50));
    w.kv("p90", merged.quantile(0.90));
    w.kv("p99", merged.quantile(0.99));
    w.key("per_rank_count");
    w.begin_array();
    for (std::uint64_t v : per_rank) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("phases");
  w.begin_array();
  // Named (not a temporary): range-for does not extend the lifetime of a
  // temporary through the .phases() member call before C++23.
  const PhaseReport report(session);
  for (const PhaseAgg& p : report.phases()) {
    w.begin_object();
    w.kv("name", p.name);
    w.kv("ranks", p.ranks);
    w.kv("spans", p.spans);
    w.kv("mean_seconds", p.mean_seconds);
    w.kv("max_seconds", p.max_seconds);
    w.kv("imbalance", p.imbalance);
    w.end_object();
  }
  w.end_array();

  // Critical path: per-rank compute/wait/fabric attribution over the run
  // window plus the backward chain from the last-finishing rank.
  const CriticalPath cp(session);
  w.key("critical_path");
  w.begin_object();
  w.kv("window_seconds", cp.window_seconds());
  w.kv("attributed_frac", cp.attributed_frac());
  w.key("per_rank");
  w.begin_array();
  for (const RankAttribution& ra : cp.ranks()) {
    w.begin_object();
    w.kv("rank", ra.rank);
    w.kv("compute_seconds", ra.compute_seconds);
    w.kv("wait_seconds", ra.wait_seconds);
    w.kv("fabric_seconds", ra.fabric_seconds);
    w.kv("attributed_frac", ra.attributed_frac);
    w.end_object();
  }
  w.end_array();
  w.key("chain");
  w.begin_object();
  w.kv("start_rank", cp.chain_start_rank());
  w.kv("hops", static_cast<std::uint64_t>(cp.chain().size()));
  w.kv("compute_seconds", cp.chain_compute_seconds());
  w.kv("wait_seconds", cp.chain_wait_seconds());
  w.kv("fabric_seconds", cp.chain_fabric_seconds());
  w.end_object();
  w.end_object();

  w.kv("events_dropped", session.events_dropped());

  w.end_object();
  os << "\n";
}

void write_summary_file(const Session& session, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("obs: cannot open " + path);
  write_summary(session, os);
}

}  // namespace ss::obs
