#include "obs/report.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <stdexcept>

#include "support/json.hpp"

namespace ss::obs {

namespace {

using ss::support::json::Writer;

struct PerRankPhase {
  double seconds = 0.0;
  std::uint64_t spans = 0;
};

/// name -> rank -> {summed seconds, span count}, only top-level-agnostic:
/// every span contributes its own duration (nested spans therefore count
/// toward both their own phase and, through wall inclusion, the parent's).
std::map<std::string, std::map<int, PerRankPhase>> collect_phases(
    const Session& s) {
  std::map<std::string, std::map<int, PerRankPhase>> by_name;
  for (int r = 0; r < s.size(); ++r) {
    for (const TraceEvent& e : s.rank(r).events()) {
      if (e.ph != 'X') continue;
      PerRankPhase& p = by_name[e.name][r];
      p.seconds += e.dur;
      p.spans += 1;
    }
  }
  return by_name;
}

}  // namespace

PhaseReport::PhaseReport(const Session& session) {
  for (const auto& [name, per_rank] : collect_phases(session)) {
    PhaseAgg agg;
    agg.name = name;
    double sum = 0.0;
    for (const auto& [rank, p] : per_rank) {
      (void)rank;
      sum += p.seconds;
      agg.max_seconds = std::max(agg.max_seconds, p.seconds);
      agg.spans += p.spans;
      ++agg.ranks;
    }
    agg.mean_seconds = agg.ranks > 0 ? sum / agg.ranks : 0.0;
    agg.imbalance =
        agg.mean_seconds > 0.0 ? agg.max_seconds / agg.mean_seconds : 1.0;
    phases_.push_back(std::move(agg));
  }
  std::sort(phases_.begin(), phases_.end(),
            [](const PhaseAgg& a, const PhaseAgg& b) {
              return a.max_seconds != b.max_seconds
                         ? a.max_seconds > b.max_seconds
                         : a.name < b.name;
            });
}

ss::support::Table PhaseReport::table(const std::string& title) const {
  using ss::support::Table;
  Table t(title);
  t.header({"phase", "ranks", "spans", "mean (ms)", "max (ms)",
            "imbalance (max/mean)"});
  for (const PhaseAgg& p : phases_) {
    t.row({p.name, std::to_string(p.ranks), std::to_string(p.spans),
           Table::fixed(p.mean_seconds * 1e3, 3),
           Table::fixed(p.max_seconds * 1e3, 3),
           Table::fixed(p.imbalance, 2)});
  }
  return t;
}

void write_chrome_trace(const Session& session, std::ostream& os) {
  Writer w(os, /*indent=*/0);
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();

  // Metadata: one process, one named thread ("track") per rank.
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", 0);
  w.key("args");
  w.begin_object();
  w.kv("name", "space-simulator (virtual time)");
  w.end_object();
  w.end_object();

  for (int r = 0; r < session.size(); ++r) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 0);
    w.kv("tid", r);
    w.key("args");
    w.begin_object();
    w.kv("name", "rank " + std::to_string(r));
    w.end_object();
    w.end_object();
  }

  for (int r = 0; r < session.size(); ++r) {
    // Sort by begin timestamp (ties: outer spans first) so trace viewers
    // that expect ordered input nest the tracks correctly.
    std::vector<const TraceEvent*> ordered;
    ordered.reserve(session.rank(r).events().size());
    for (const TraceEvent& e : session.rank(r).events()) {
      ordered.push_back(&e);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                if (a->ts != b->ts) return a->ts < b->ts;
                return a->depth < b->depth;
              });
    for (const TraceEvent* e : ordered) {
      w.begin_object();
      w.kv("name", e->name);
      w.key("ph");
      w.value(std::string_view(&e->ph, 1));
      w.kv("pid", 0);
      w.kv("tid", r);
      w.kv("ts", e->ts * 1e6);  // virtual seconds -> microseconds
      if (e->ph == 'X') {
        w.kv("dur", e->dur * 1e6);
      } else if (e->ph == 'i') {
        w.kv("s", "t");  // thread-scoped instant
      }
      w.end_object();
    }
  }

  w.end_array();
  w.end_object();
  os << "\n";
}

void write_chrome_trace_file(const Session& session, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("obs: cannot open " + path);
  write_chrome_trace(session, os);
}

void write_summary(const Session& session, std::ostream& os) {
  Writer w(os, /*indent=*/1);
  w.begin_object();
  w.kv("schema", "ss.obs.summary.v1");
  w.kv("ranks", session.size());

  // Union of metric names across ranks, exported with per-rank values.
  std::set<std::string> counter_names;
  std::set<std::string> gauge_names;
  for (int r = 0; r < session.size(); ++r) {
    for (const auto& [name, c] : session.rank(r).registry().counters()) {
      (void)c;
      counter_names.insert(name);
    }
    for (const auto& [name, g] : session.rank(r).registry().gauges()) {
      (void)g;
      gauge_names.insert(name);
    }
  }

  w.key("counters");
  w.begin_object();
  for (const std::string& name : counter_names) {
    std::uint64_t total = 0;
    std::vector<std::uint64_t> per_rank;
    per_rank.reserve(static_cast<std::size_t>(session.size()));
    for (int r = 0; r < session.size(); ++r) {
      const std::uint64_t v = session.rank(r).registry().counter_value(name);
      per_rank.push_back(v);
      total += v;
    }
    w.key(name);
    w.begin_object();
    w.kv("total", total);
    w.key("per_rank");
    w.begin_array();
    for (std::uint64_t v : per_rank) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const std::string& name : gauge_names) {
    double sum = 0.0;
    double mx = 0.0;
    std::vector<double> per_rank;
    per_rank.reserve(static_cast<std::size_t>(session.size()));
    for (int r = 0; r < session.size(); ++r) {
      const double v = session.rank(r).registry().gauge_value(name);
      per_rank.push_back(v);
      sum += v;
      mx = std::max(mx, v);
    }
    const double mean = sum / session.size();
    w.key(name);
    w.begin_object();
    w.kv("mean", mean);
    w.kv("max", mx);
    w.kv("imbalance", mean > 0.0 ? mx / mean : 1.0);
    w.key("per_rank");
    w.begin_array();
    for (double v : per_rank) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("phases");
  w.begin_array();
  // Named (not a temporary): range-for does not extend the lifetime of a
  // temporary through the .phases() member call before C++23.
  const PhaseReport report(session);
  for (const PhaseAgg& p : report.phases()) {
    w.begin_object();
    w.kv("name", p.name);
    w.kv("ranks", p.ranks);
    w.kv("spans", p.spans);
    w.kv("mean_seconds", p.mean_seconds);
    w.kv("max_seconds", p.max_seconds);
    w.kv("imbalance", p.imbalance);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  os << "\n";
}

void write_summary_file(const Session& session, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("obs: cannot open " + path);
  write_summary(session, os);
}

}  // namespace ss::obs
