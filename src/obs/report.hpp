// Exporters and reports over an obs::Session.
//
//  - write_chrome_trace: Chrome trace-event JSON ("traceEvents" array of
//    'X'/'i' events plus 's'/'f' flow pairs, one tid per rank, virtual
//    microseconds). Open the file in Perfetto (ui.perfetto.dev) or
//    chrome://tracing; matching flow ids render as send->recv arrows.
//  - write_summary: compact machine-readable run summary — per-phase
//    virtual-time aggregates (mean/max over ranks, max/mean imbalance),
//    every counter/gauge with per-rank values and totals, cross-rank
//    merged histogram quantiles, and the critical-path attribution.
//  - PhaseReport: the paper-style per-phase breakdown table (like the
//    per-phase timing tables treecode papers use to diagnose where a
//    step's time goes).
//  - CriticalPath: walks the send->recv + span DAG in virtual time and
//    attributes each rank's share of the run window to compute / wait /
//    fabric, plus the backward chain from the last-finishing rank.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "support/table.hpp"

namespace ss::obs {

/// Cross-rank aggregate of one named phase.
struct PhaseAgg {
  std::string name;
  int ranks = 0;               ///< Ranks that recorded this phase.
  std::uint64_t spans = 0;     ///< Total span count across ranks.
  double mean_seconds = 0.0;   ///< Mean over recording ranks of summed time.
  double max_seconds = 0.0;    ///< Max over recording ranks.
  double imbalance = 0.0;      ///< max/mean (1.0 = perfectly balanced).
};

/// Aggregates the Session's spans by phase name.
class PhaseReport {
 public:
  explicit PhaseReport(const Session& session);

  /// Sorted by descending max_seconds (the critical-path view).
  const std::vector<PhaseAgg>& phases() const { return phases_; }

  /// Paper-style breakdown table.
  ss::support::Table table(const std::string& title = "virtual-time phase "
                                                      "breakdown") const;

 private:
  std::vector<PhaseAgg> phases_;
};

// ---------------------------------------------------------------------------
// Critical-path analysis over the flow-event DAG.
// ---------------------------------------------------------------------------

/// Where one rank's share of the run window went. The decomposition uses
/// the causal pairing: for every receive that advanced the rank's clock,
/// the part of the wait that overlapped the message's in-flight window
/// [send ts, recv ts] is *fabric* (the wire + protocol had the data), the
/// part before the peer even sent is *wait* (idle on the peer's compute),
/// and everything else in the window is *compute*.
struct RankAttribution {
  int rank = 0;
  double compute_seconds = 0.0;
  double wait_seconds = 0.0;    ///< Blocked before the peer had sent.
  double fabric_seconds = 0.0;  ///< Blocked while the message was in flight.
  double attributed_frac = 0.0; ///< (c + w + f) / window, clamped to 1.
};

/// One segment of the backward-walked critical path.
struct ChainSegment {
  int rank = 0;
  char kind = 'c';  ///< 'c' compute, 'w' wait, 'f' fabric.
  double seconds = 0.0;
};

/// Walks the send->recv + span DAG of a Session in virtual time.
class CriticalPath {
 public:
  explicit CriticalPath(const Session& session);

  /// The analyzed window [t_begin, t_end] over all ranks.
  double window_seconds() const { return window_; }
  /// Mean over ranks of the attributed fraction (1.0 = every virtual
  /// second of every rank's window is in a bucket).
  double attributed_frac() const { return attributed_; }

  const std::vector<RankAttribution>& ranks() const { return ranks_; }

  /// Backward chain from the last-finishing rank (most recent hop first).
  const std::vector<ChainSegment>& chain() const { return chain_; }
  int chain_start_rank() const { return chain_start_; }
  double chain_compute_seconds() const { return chain_compute_; }
  double chain_wait_seconds() const { return chain_wait_; }
  double chain_fabric_seconds() const { return chain_fabric_; }

  /// PhaseReport-style per-rank attribution table.
  ss::support::Table table(const std::string& title =
                               "critical-path attribution") const;

 private:
  double window_ = 0.0;
  double attributed_ = 0.0;
  std::vector<RankAttribution> ranks_;
  std::vector<ChainSegment> chain_;
  int chain_start_ = -1;
  double chain_compute_ = 0.0;
  double chain_wait_ = 0.0;
  double chain_fabric_ = 0.0;
};

/// Chrome trace-event JSON; `ts`/`dur` are virtual microseconds.
void write_chrome_trace(const Session& session, std::ostream& os);
void write_chrome_trace_file(const Session& session, const std::string& path);

/// Machine-readable run summary (counters, gauges, histograms, phase
/// aggregates, critical-path attribution).
void write_summary(const Session& session, std::ostream& os);
void write_summary_file(const Session& session, const std::string& path);

}  // namespace ss::obs
