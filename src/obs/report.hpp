// Exporters and reports over an obs::Session.
//
//  - write_chrome_trace: Chrome trace-event JSON ("traceEvents" array of
//    'X'/'i' events, one tid per rank, virtual microseconds). Open the
//    file in Perfetto (ui.perfetto.dev) or chrome://tracing.
//  - write_summary: compact machine-readable run summary — per-phase
//    virtual-time aggregates (mean/max over ranks, max/mean imbalance)
//    and every counter/gauge with per-rank values and totals.
//  - PhaseReport: the paper-style per-phase breakdown table (like the
//    per-phase timing tables treecode papers use to diagnose where a
//    step's time goes).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "support/table.hpp"

namespace ss::obs {

/// Cross-rank aggregate of one named phase.
struct PhaseAgg {
  std::string name;
  int ranks = 0;               ///< Ranks that recorded this phase.
  std::uint64_t spans = 0;     ///< Total span count across ranks.
  double mean_seconds = 0.0;   ///< Mean over recording ranks of summed time.
  double max_seconds = 0.0;    ///< Max over recording ranks.
  double imbalance = 0.0;      ///< max/mean (1.0 = perfectly balanced).
};

/// Aggregates the Session's spans by phase name.
class PhaseReport {
 public:
  explicit PhaseReport(const Session& session);

  /// Sorted by descending max_seconds (the critical-path view).
  const std::vector<PhaseAgg>& phases() const { return phases_; }

  /// Paper-style breakdown table.
  ss::support::Table table(const std::string& title = "virtual-time phase "
                                                      "breakdown") const;

 private:
  std::vector<PhaseAgg> phases_;
};

/// Chrome trace-event JSON; `ts`/`dur` are virtual microseconds.
void write_chrome_trace(const Session& session, std::ostream& os);
void write_chrome_trace_file(const Session& session, const std::string& path);

/// Machine-readable run summary (counters, gauges, phase aggregates).
void write_summary(const Session& session, std::ostream& os);
void write_summary_file(const Session& session, const std::string& path);

}  // namespace ss::obs
