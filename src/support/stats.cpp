#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ss::support {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= v.size()) return v.back();
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

LinearFit fit_line(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_line: need >= 2 equal-length samples");
  }
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::invalid_argument("fit_line: degenerate x");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  return f;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x, double weight) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  i = std::clamp<std::ptrdiff_t>(i, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(i)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::bin_center(std::size_t i) const {
  return 0.5 * (bin_lo(i) + bin_hi(i));
}

}  // namespace ss::support
