#include "support/task_pool.hpp"

#include <cstdlib>
#include <string>

namespace ss::support {

namespace {

// Which worker deque (if any) the current thread owns, so nested
// parallel_for from inside a task pushes to its own deque and the owner
// pops LIFO. kNotWorker marks external (rank) threads.
constexpr std::size_t kNotWorker = static_cast<std::size_t>(-1);

struct TlsSlot {
  const TaskPool* pool = nullptr;
  std::size_t index = kNotWorker;
};
thread_local TlsSlot t_worker;

std::size_t worker_index_in(const TaskPool* pool) {
  return t_worker.pool == pool ? t_worker.index : kNotWorker;
}

}  // namespace

TaskPool::TaskPool(int threads) : start_(std::chrono::steady_clock::now()) {
  const int n = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void TaskPool::parallel_for(
    std::size_t n, std::ptrdiff_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  std::size_t g = grain > 0 ? static_cast<std::size_t>(grain) : 0;
  if (g == 0) {
    // Default grain: one chunk per thread, floor 1.
    g = (n + static_cast<std::size_t>(size()) - 1) /
        static_cast<std::size_t>(size());
    if (g == 0) g = 1;
  }
  const std::size_t nchunks = (n + g - 1) / g;
  ForOp op;
  op.run = [&fn, g, n](std::size_t ci) {
    const std::size_t lo = ci * g;
    const std::size_t hi = std::min(n, lo + g);
    fn(lo, hi);
  };
  run_op(op, nchunks);
}

void TaskPool::parallel_chunks(std::size_t nchunks,
                               const std::function<void(std::size_t)>& fn) {
  if (nchunks == 0) return;
  ForOp op;
  op.run = fn;
  run_op(op, nchunks);
}

void TaskPool::run_op(ForOp& op, std::size_t nchunks) {
  if (workers_.empty() || nchunks == 1) {
    // Inline fast path: no queues, no atomics per chunk; exceptions
    // propagate naturally.
    for (std::size_t ci = 0; ci < nchunks; ++ci) {
      op.run(ci);
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  op.pending.store(nchunks, std::memory_order_relaxed);

  // Distribute chunks round-robin over the worker deques, starting at a
  // rotating offset so repeated small ops don't all land on worker 0. A
  // nested caller (itself a worker) pushes to its own deque instead —
  // LIFO keeps the subtask tree cache-warm and guarantees the owner can
  // always make progress on its own op.
  const std::size_t self = worker_index_in(this);
  if (self != kNotWorker) {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lk(w.mu);
    for (std::size_t ci = 0; ci < nchunks; ++ci) {
      w.deque.push_back(Task{&op, ci});
    }
  } else {
    const std::size_t start =
        next_victim_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t ci = 0; ci < nchunks; ++ci) {
      Worker& w = *workers_[(start + ci) % workers_.size()];
      std::lock_guard<std::mutex> lk(w.mu);
      w.deque.push_back(Task{&op, ci});
    }
  }
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    ++work_epoch_;
  }
  sleep_cv_.notify_all();

  help_until_done(op);

  if (op.ex) std::rethrow_exception(op.ex);
}

void TaskPool::execute(const Task& t, bool stolen) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    t.op->run(t.ci);
  } catch (...) {
    std::lock_guard<std::mutex> lk(t.op->mu);
    if (!t.op->ex) t.op->ex = std::current_exception();
  }
  busy_ns_.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()),
      std::memory_order_relaxed);
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  if (stolen) tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
  {
    // The decrement happens under op.mu: a joiner that observes
    // pending == 0 re-acquires op.mu before returning, so it cannot
    // destroy the (stack-allocated) op while this thread is still
    // between the decrement and the notify. Also pairs with the
    // predicate check in help_until_done so the wake cannot be missed.
    std::lock_guard<std::mutex> lk(t.op->mu);
    if (t.op->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      t.op->done_cv.notify_all();
    }
  }
}

bool TaskPool::try_pop_local(std::size_t w, Task& out) {
  Worker& worker = *workers_[w];
  std::lock_guard<std::mutex> lk(worker.mu);
  if (worker.deque.empty()) return false;
  out = worker.deque.back();
  worker.deque.pop_back();
  return true;
}

bool TaskPool::try_steal(std::size_t avoid, Task& out) {
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    if (k == avoid) continue;
    Worker& worker = *workers_[k];
    std::lock_guard<std::mutex> lk(worker.mu);
    if (worker.deque.empty()) continue;
    out = worker.deque.front();
    worker.deque.pop_front();
    return true;
  }
  steals_failed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void TaskPool::help_until_done(ForOp& op) {
  const std::size_t self = worker_index_in(this);
  while (op.pending.load(std::memory_order_acquire) > 0) {
    Task t;
    if (self != kNotWorker && try_pop_local(self, t)) {
      execute(t, false);
      continue;
    }
    if (try_steal(self, t)) {
      execute(t, self != kNotWorker);
      continue;
    }
    // Nothing queued anywhere: the remaining chunks are running on other
    // threads. Sleep until the op completes.
    std::unique_lock<std::mutex> lk(op.mu);
    op.done_cv.wait(lk, [&] {
      return op.pending.load(std::memory_order_acquire) == 0;
    });
  }
  // The last executor decremented pending while holding op.mu. Taking it
  // once more means that thread has released the lock and will never
  // touch the op again — only then may the caller pop op off its stack.
  std::lock_guard<std::mutex> lk(op.mu);
}

void TaskPool::worker_main(std::size_t w) {
  t_worker = TlsSlot{this, w};
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Task t;
    if (try_pop_local(w, t)) {
      execute(t, false);
      continue;
    }
    if (try_steal(w, t)) {
      execute(t, true);
      continue;
    }
    std::unique_lock<std::mutex> lk(sleep_mu_);
    if (stop_) return;
    if (work_epoch_ != seen_epoch) {
      // Work arrived between our failed scan and taking the lock; rescan.
      seen_epoch = work_epoch_;
      continue;
    }
    sleep_cv_.wait(lk, [&] { return stop_ || work_epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = work_epoch_;
  }
}

TaskPool::Stats TaskPool::stats() const {
  Stats s;
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  s.steals_failed = steals_failed_.load(std::memory_order_relaxed);
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
  if (wall > 0.0) {
    const double busy =
        static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
    s.utilization = std::min(1.0, busy / (wall * size()));
  }
  return s;
}

namespace {

std::mutex g_global_mu;
std::unique_ptr<TaskPool> g_global;  // guarded by g_global_mu
int g_configured = 0;                // <= 0: default policy

/// Default policy with no configure_global() override: SS_POOL_THREADS,
/// else clamp(hardware_concurrency, 1, 16).
int policy_default() {
  if (const char* env = std::getenv("SS_POOL_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 16u));
}

}  // namespace

int TaskPool::default_threads() {
  {
    std::lock_guard<std::mutex> lk(g_global_mu);
    if (g_configured > 0) return g_configured;
  }
  return policy_default();
}

TaskPool& TaskPool::global() {
  const int want = default_threads();
  std::lock_guard<std::mutex> lk(g_global_mu);
  if (!g_global) g_global = std::make_unique<TaskPool>(want);
  return *g_global;
}

void TaskPool::configure_global(int threads) {
  const int want = threads > 0 ? threads : policy_default();
  std::lock_guard<std::mutex> lk(g_global_mu);
  g_configured = threads;
  if (g_global && g_global->size() != want) g_global.reset();
}

}  // namespace ss::support
