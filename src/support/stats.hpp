// Streaming statistics and small numeric helpers used by benchmarks and
// diagnostics throughout the library.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ss::support {

/// Welford online mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Linear-interpolated percentile of an unsorted sample (copies the data).
/// q in [0, 1]; empty input returns 0.
double percentile(std::span<const double> xs, double q);

/// Least-squares fit y = a + b x; returns {a, b}. Requires >= 2 points.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit fit_line(std::span<const double> x, std::span<const double> y);

/// Histogram with fixed uniform bins over [lo, hi); out-of-range samples
/// are clamped into the first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double bin_center(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

 private:
  double lo_, hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace ss::support
