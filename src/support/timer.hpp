// Wall-clock timing for host-measured benchmarks (STREAM, gravity kernel,
// mini-HPL). Virtual-time measurements use vmpi::VirtualClock instead.
#pragma once

#include <chrono>

namespace ss::support {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ss::support
