// Intra-rank work-stealing task pool.
//
// Before this existed every parallel phase (tree build, radix sort,
// traversal) spawned and joined its own std::thread batch — thread
// creation on the critical path, one thread per uniform chunk, and no
// load balancing when chunks are skewed. The pool is persistent: worker
// threads are created once per process (or per test), parked on a
// condition variable when idle, and fed through per-worker deques in the
// Chase-Lev style — an owner pushes and pops at the *back* of its own
// deque (LIFO, cache-warm), thieves take from the *front* (FIFO, the
// biggest remaining chunks first). The deques here are mutex-guarded
// rather than lock-free: tasks are coarse (a grain of thousands of
// bodies), so the queue-op cost is noise, and the mutex keeps the
// invariants simple enough to sanitize.
//
// Joining callers *help*: while a fork/join op is outstanding the caller
// runs queued tasks itself instead of blocking, so nested parallel_for
// from inside a task cannot deadlock and a pool of size 1 degenerates to
// plain inline loops (the configuration on a single-core host — zero
// threads are spawned, zero atomics touched per element).
//
// Determinism: parallel_for/parallel_chunks fix the chunk boundaries from
// (n, grain) alone — stealing moves *which thread* runs a chunk, never
// the chunk's range. parallel_reduce merges per-chunk partials in chunk
// order, so reductions are bit-identical regardless of interleaving.
//
// Observability: the pool keeps its own atomic counters (obs::Counter is
// rank-thread-local by design and must not be touched from workers);
// callers mirror Stats into the obs registry from the rank thread (see
// hot/parallel.cpp).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ss::support {

class TaskPool {
 public:
  /// `threads` is the total parallelism: the joining caller plus
  /// (threads - 1) worker threads. TaskPool(1) spawns nothing and runs
  /// every op inline.
  explicit TaskPool(int threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total parallelism (workers + caller); >= 1.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run fn(lo, hi) over [0, n) in chunks of at most `grain` elements
  /// (grain <= 0 picks one chunk per thread). Blocks until every chunk
  /// has finished; the caller executes chunks too. The first exception
  /// thrown by any chunk is rethrown here (remaining chunks still run).
  void parallel_for(std::size_t n, std::ptrdiff_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Run fn(ci) for ci in [0, nchunks): the caller owns the index ->
  /// range arithmetic. This is the primitive the radix sort uses — its
  /// histogram slots are keyed by chunk index, so boundaries must be
  /// exactly the caller's, not the pool's.
  void parallel_chunks(std::size_t nchunks,
                       const std::function<void(std::size_t)>& fn);

  /// Deterministic map-reduce: partials[ci] = map(lo, hi) per fixed
  /// chunk, merged in ascending chunk order on the calling thread.
  template <class T, class Map, class Reduce>
  T parallel_reduce(std::size_t n, std::ptrdiff_t grain, T init, Map&& map,
                    Reduce&& reduce) {
    const std::size_t nchunks = chunk_count(n, grain);
    if (nchunks == 0) return init;
    std::vector<T> partials(nchunks, init);
    const std::size_t step = (n + nchunks - 1) / nchunks;
    parallel_chunks(nchunks, [&](std::size_t ci) {
      const std::size_t lo = ci * step;
      const std::size_t hi = std::min(n, lo + step);
      partials[ci] = map(lo, hi);
    });
    T acc = init;
    for (std::size_t ci = 0; ci < nchunks; ++ci) {
      acc = reduce(acc, partials[ci]);
    }
    return acc;
  }

  /// Monotonic totals since construction. tasks_run counts every chunk
  /// executed (including inline and caller-helped ones); tasks_stolen the
  /// subset taken from another thread's deque; steals_failed the idle
  /// scans that found every deque empty.
  struct Stats {
    std::uint64_t tasks_run = 0;
    std::uint64_t tasks_stolen = 0;
    std::uint64_t steals_failed = 0;
    double utilization = 0.0;  ///< busy time / (wall time * size), [0, 1]
  };
  Stats stats() const;

  /// The per-process pool. First use constructs it with (in priority
  /// order) the configure_global() size, the SS_POOL_THREADS environment
  /// variable, or clamp(hardware_concurrency, 1, 16).
  static TaskPool& global();

  /// Set (or change) the global pool size. Rebuilds the pool if it was
  /// already constructed with a different size; must not be called while
  /// ops are in flight on it. threads <= 0 resets to the default policy.
  static void configure_global(int threads);

  /// The size global() would use if constructed now.
  static int default_threads();

 private:
  struct ForOp {
    std::function<void(std::size_t)> run;  // chunk index -> work
    std::atomic<std::size_t> pending{0};
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr ex;  // first failure, guarded by mu
  };

  struct Task {
    ForOp* op = nullptr;
    std::size_t ci = 0;
  };

  struct Worker {
    std::mutex mu;
    std::deque<Task> deque;  // owner: back; thieves: front
  };

  static std::size_t chunk_count(std::size_t n, std::ptrdiff_t grain) {
    if (n == 0) return 0;
    std::size_t g = grain > 0 ? static_cast<std::size_t>(grain) : 0;
    if (g == 0) return 1;  // resolved by callers; see parallel_for
    return (n + g - 1) / g;
  }

  void run_op(ForOp& op, std::size_t nchunks);
  void worker_main(std::size_t w);
  void execute(const Task& t, bool stolen);
  bool try_pop_local(std::size_t w, Task& out);
  bool try_steal(std::size_t avoid, Task& out);
  void help_until_done(ForOp& op);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::uint64_t work_epoch_ = 0;  // guarded by sleep_mu_
  bool stop_ = false;             // guarded by sleep_mu_

  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> tasks_stolen_{0};
  std::atomic<std::uint64_t> steals_failed_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::size_t> next_victim_{0};  // round-robin push target
};

}  // namespace ss::support
