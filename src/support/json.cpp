#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace ss::support::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Writer::Writer(std::ostream& os, int indent) : os_(os), indent_(indent) {}

void Writer::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i) {
    os_ << ' ';
  }
}

void Writer::before_value() {
  if (done_) throw std::logic_error("json::Writer: document already closed");
  if (stack_.empty()) {
    if (pending_key_) throw std::logic_error("json::Writer: key at top level");
    return;  // top-level value
  }
  Level& top = stack_.back();
  if (top.array) {
    if (pending_key_) throw std::logic_error("json::Writer: key inside array");
    if (!top.first) os_ << ',';
    newline_indent();
    top.first = false;
  } else {
    if (!pending_key_) {
      throw std::logic_error("json::Writer: value without key inside object");
    }
    pending_key_ = false;
  }
}

void Writer::key(std::string_view k) {
  if (done_) throw std::logic_error("json::Writer: document already closed");
  if (stack_.empty() || stack_.back().array) {
    throw std::logic_error("json::Writer: key outside object");
  }
  if (pending_key_) throw std::logic_error("json::Writer: duplicate key call");
  Level& top = stack_.back();
  if (!top.first) os_ << ',';
  newline_indent();
  top.first = false;
  os_ << '"' << escape(k) << "\":";
  if (indent_ > 0) os_ << ' ';
  pending_key_ = true;
}

void Writer::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back({false, true});
}

void Writer::end_object() {
  if (stack_.empty() || stack_.back().array) {
    throw std::logic_error("json::Writer: end_object without begin_object");
  }
  if (pending_key_) throw std::logic_error("json::Writer: dangling key");
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  os_ << '}';
  if (stack_.empty()) done_ = true;
}

void Writer::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back({true, true});
}

void Writer::end_array() {
  if (stack_.empty() || !stack_.back().array) {
    throw std::logic_error("json::Writer: end_array without begin_array");
  }
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  os_ << ']';
  if (stack_.empty()) done_ = true;
}

void Writer::value(std::string_view s) {
  before_value();
  os_ << '"' << escape(s) << '"';
  if (stack_.empty()) done_ = true;
}

void Writer::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no inf/nan; null is the least-wrong spelling
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
  }
  if (stack_.empty()) done_ = true;
}

void Writer::value(std::uint64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) done_ = true;
}

void Writer::value(std::int64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) done_ = true;
}

void Writer::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  if (stack_.empty()) done_ = true;
}

void Writer::null() {
  before_value();
  os_ << "null";
  if (stack_.empty()) done_ = true;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const Value* Value::find(std::string_view key) const {
  if (type != Type::object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  }
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  char get() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (get() != c) fail(std::string("expected '") + c + "'");
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::string;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.type = Value::Type::boolean;
        if (literal("true")) {
          v.boolean = true;
        } else if (literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!literal("null")) fail("bad literal");
        return Value{};
      }
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = get();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = get();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = get();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = get();
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = get();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // produced by our emitter and are passed through unpaired).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(
                                     s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      eat_digits();
    }
    if (!digits) fail("bad number");
    Value v;
    v.type = Value::Type::number;
    v.number = std::stod(std::string(s_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace ss::support::json
