// Plain-text table formatting for benchmark output. Every bench binary
// prints "paper vs model/measured" tables through this formatter so the
// output of the reproduction harness is uniform and diffable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ss::support {

/// Column-aligned text table. Numeric cells are formatted by the caller;
/// the table only handles layout.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row. Must be called before rows are added.
  void header(std::vector<std::string> names);

  /// Append one row; pads or truncates to the header width.
  void row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 3);
  /// Format with a fixed number of digits after the decimal point.
  static std::string fixed(double v, int decimals = 2);
  /// Format "measured (ratio-to-reference)" in the style of the paper's
  /// Table 2, e.g. "761.8(0.63)".
  static std::string with_ratio(double v, double reference, int decimals = 1);

  std::size_t rows() const { return rows_.size(); }

  /// Render with box-drawing separators to the stream.
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace ss::support
