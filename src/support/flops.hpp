// Floating-point operation accounting.
//
// The treecode and kernels charge their flop counts here so that the
// performance model can convert algorithmic work into virtual time for a
// given processor profile, exactly as the paper reports "Mflops/proc" for
// its standard N-body problem (Table 6).
#pragma once

#include <cstdint>

namespace ss::support {

/// Per-thread flop counter. Cheap enough to charge in inner loops when
/// compiled out; the treecode charges per-interaction constants instead of
/// per-operation increments.
class FlopCounter {
 public:
  void charge(std::uint64_t flops) { total_ += flops; }
  std::uint64_t total() const { return total_; }
  void reset() { total_ = 0; }

 private:
  std::uint64_t total_ = 0;
};

/// Flop cost constants for the gravity inner loop, following the
/// conventional Warren & Salmon accounting (38 flops per particle-particle
/// interaction including the reciprocal square root).
namespace flop_cost {
inline constexpr std::uint64_t pp_interaction = 38;
/// Particle-cell interaction through quadrupole order.
inline constexpr std::uint64_t pc_quadrupole = 70;
/// SPH pairwise kernel + momentum/energy contribution.
inline constexpr std::uint64_t sph_pair = 90;
}  // namespace flop_cost

}  // namespace ss::support
