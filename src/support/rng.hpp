// Deterministic pseudo-random number generation for reproducible runs.
//
// All stochastic components of the library (initial-condition generators,
// reliability Monte Carlo, NPB/EP workloads, sample sort splitters) draw
// from these generators so that a given seed reproduces a run bit-for-bit
// on any platform.
#pragma once

#include <cstdint>
#include <cmath>
#include <numbers>

namespace ss::support {

/// SplitMix64: used to seed larger-state generators and as a cheap
/// stateless hash of integer sequences.
struct SplitMix64 {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;

  constexpr explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Complete serializable state of an Rng (checkpoint/restart). Plain
/// integral words so it round-trips exactly through any byte-preserving
/// store.
struct RngState {
  std::uint64_t s[4] = {};
  double cached = 0.0;
  std::uint64_t have_cached = 0;  ///< 0 or 1 (bool widened for layout).
};

/// xoshiro256** by Blackman & Vigna: the library's workhorse generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling (biased < 2^-64).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
  }

  /// Standard normal deviate (Box-Muller, cached second value).
  double normal() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Exponential deviate with the given rate (events per unit time).
  double exponential(double rate) {
    double u = 0.0;
    while (u == 0.0) u = uniform();
    return -std::log(u) / rate;
  }

  /// Poisson deviate; uses inversion for small mean, normal approx for large.
  std::uint64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean < 30.0) {
      const double l = std::exp(-mean);
      std::uint64_t k = 0;
      double p = 1.0;
      do {
        ++k;
        p *= uniform();
      } while (p > l);
      return k - 1;
    }
    const double v = std::round(normal(mean, std::sqrt(mean)));
    return v < 0.0 ? 0 : static_cast<std::uint64_t>(v);
  }

  /// Snapshot the full generator state (including the Box-Muller cache).
  RngState state() const {
    RngState st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.cached = cached_;
    st.have_cached = have_cached_ ? 1 : 0;
    return st;
  }

  /// Restore a snapshot taken by state(); the stream continues exactly
  /// where it left off.
  void set_state(const RngState& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    cached_ = st.cached;
    have_cached_ = st.have_cached != 0;
  }

  /// Isotropic random unit vector.
  void unit_vector(double& x, double& y, double& z) {
    const double ct = uniform(-1.0, 1.0);
    const double st = std::sqrt(1.0 - ct * ct);
    const double phi = uniform(0.0, 2.0 * std::numbers::pi);
    x = st * std::cos(phi);
    y = st * std::sin(phi);
    z = ct;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace ss::support
