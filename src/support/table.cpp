#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ss::support {

void Table::header(std::vector<std::string> names) { header_ = std::move(names); }

void Table::row(std::vector<std::string> cells) {
  cells.resize(header_.empty() ? cells.size() : header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::setprecision(precision) << v;
  return ss.str();
}

std::string Table::fixed(double v, int decimals) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(decimals) << v;
  return ss.str();
}

std::string Table::with_ratio(double v, double reference, int decimals) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(decimals) << v << "("
     << std::setprecision(decimals + 1) << (reference != 0.0 ? v / reference : 0.0)
     << ")";
  return ss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << c << std::string(widths[i] - c.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& r : rows_) line(r);
  rule();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

}  // namespace ss::support
