// Minimal JSON support for the observability layer and the machine-
// readable bench outputs.
//
// Writer is a streaming emitter (comma/indent management, string
// escaping, finite-number guarantees) used for Chrome trace-event files
// and BENCH_*.json run summaries. parse() is a small recursive-descent
// DOM parser used by the tests to round-trip what the emitter produced —
// it is not a general-purpose (streaming, error-recovering) parser and
// does not aim to be.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ss::support::json {

/// Escape a string for inclusion in a JSON document (quotes excluded).
std::string escape(std::string_view s);

/// Streaming JSON emitter. Usage:
///
///   Writer w(os);
///   w.begin_object();
///   w.key("ranks"); w.value(std::uint64_t{4});
///   w.key("phases"); w.begin_array(); ... w.end_array();
///   w.end_object();
///
/// The writer inserts commas and newlines; misuse (a key outside an
/// object, a bare value inside an object) throws std::logic_error.
class Writer {
 public:
  explicit Writer(std::ostream& os, int indent = 1);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  /// Convenience: key followed by value.
  template <typename T>
  void kv(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

  /// True once the outermost object/array has been closed.
  bool done() const { return done_; }

 private:
  struct Level {
    bool array = false;
    bool first = true;
  };

  void before_value();
  void newline_indent();

  std::ostream& os_;
  int indent_;
  std::vector<Level> stack_;
  bool pending_key_ = false;
  bool done_ = false;
};

// ---------------------------------------------------------------------------
// DOM parser (for tests and tooling; throws std::runtime_error on
// malformed input).
// ---------------------------------------------------------------------------

struct Value {
  enum class Type { null, boolean, number, string, array, object };

  Type type = Type::null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Insertion-ordered (as written) key/value pairs.
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return type == Type::null; }
  bool is_object() const { return type == Type::object; }
  bool is_array() const { return type == Type::array; }
  bool is_number() const { return type == Type::number; }
  bool is_string() const { return type == Type::string; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  /// Member access that throws when absent.
  const Value& at(std::string_view key) const;
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
Value parse(std::string_view text);

}  // namespace ss::support::json
