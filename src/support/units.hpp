// Unit constants used across the performance and network models.
// The network models follow the networking convention: 1 Mbit = 1e6 bits.
#pragma once

namespace ss::support::units {

inline constexpr double kilo = 1e3;
inline constexpr double mega = 1e6;
inline constexpr double giga = 1e9;
inline constexpr double tera = 1e12;

/// Bits per second helpers (decimal, as used for link speeds).
inline constexpr double Mbit = 1e6;   // bits
inline constexpr double Gbit = 1e9;   // bits

/// Bytes (binary prefixes for memory, decimal for disk/throughput where the
/// paper uses decimal).
inline constexpr double KiB = 1024.0;
inline constexpr double MiB = 1024.0 * 1024.0;
inline constexpr double GiB = 1024.0 * 1024.0 * 1024.0;
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;
inline constexpr double TB = 1e12;

inline constexpr double microsecond = 1e-6;
inline constexpr double millisecond = 1e-3;

inline constexpr double bits_per_byte = 8.0;

}  // namespace ss::support::units
