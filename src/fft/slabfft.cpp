#include "fft/slabfft.hpp"

#include <stdexcept>

namespace ss::fft {

SlabFFT::SlabFFT(ss::vmpi::Comm& comm, int n) : comm_(comm), n_(n) {
  if (!is_pow2(static_cast<std::size_t>(n))) {
    throw std::invalid_argument("SlabFFT: n must be a power of two");
  }
  if (n % comm.size() != 0) {
    throw std::invalid_argument("SlabFFT: n must divide by rank count");
  }
  nloc_ = n / comm.size();
}

void SlabFFT::transpose(std::vector<cplx>& data, bool to_pencil) {
  const int p = comm_.size();
  const auto n = static_cast<std::size_t>(n_);
  const auto nl = static_cast<std::size_t>(nloc_);
  if (p == 1) {
    // Single rank: reorder locally between (z,y,x) and (x,y,z).
    std::vector<cplx> out(data.size());
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t b = 0; b < n; ++b) {
          // (z=a, y, x=b) <-> (x=b, y, z=a): the mapping is symmetric.
          out[(b * n + y) * n + a] = data[(a * n + y) * n + b];
        }
      }
    }
    data = std::move(out);
    return;
  }

  // Pack per-destination blocks. In slab layout (z_local, y, x) the block
  // for rank r is x in [r*nl, (r+1)*nl); in pencil layout (x_local, y, z)
  // the block for rank r is z in [r*nl, (r+1)*nl). Both pack in the order
  // (local_plane_of_dest, y, own_plane), so the unpack is symmetric.
  std::vector<std::vector<cplx>> out(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& block = out[static_cast<std::size_t>(r)];
    block.reserve(nl * n * nl);
    for (std::size_t dest_pl = 0; dest_pl < nl; ++dest_pl) {
      const std::size_t fast = static_cast<std::size_t>(r) * nl + dest_pl;
      for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t own = 0; own < nl; ++own) {
          block.push_back(data[(own * n + y) * n + fast]);
        }
      }
    }
  }
  auto flat = comm_.alltoallv(out);

  // Unpack: block from rank s holds (my_plane, y, s_plane) with the fast
  // axis being the peer's plane range.
  (void)to_pencil;  // the mapping is an involution; direction is implicit
  std::vector<cplx> next(data.size());
  std::size_t off = 0;
  for (int s = 0; s < p; ++s) {
    for (std::size_t my_pl = 0; my_pl < nl; ++my_pl) {
      for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t peer = 0; peer < nl; ++peer) {
          const std::size_t fast = static_cast<std::size_t>(s) * nl + peer;
          next[(my_pl * n + y) * n + fast] = flat[off++];
        }
      }
    }
  }
  data = std::move(next);
}

void SlabFFT::forward(std::vector<cplx>& data) {
  if (data.size() != local_size()) {
    throw std::invalid_argument("SlabFFT: wrong slab size");
  }
  const auto n = static_cast<std::size_t>(n_);
  const auto nl = static_cast<std::size_t>(nloc_);
  // FFT x (fastest) and y within each local plane.
  for (std::size_t z = 0; z < nl; ++z) {
    for (std::size_t y = 0; y < n; ++y) {
      fft_strided(data.data() + (z * n + y) * n, n, 1, false);
    }
    for (std::size_t x = 0; x < n; ++x) {
      fft_strided(data.data() + z * n * n + x, n, n, false);
    }
  }
  transpose(data, true);
  // Pencil layout (x_local, y, z): FFT z (fastest).
  for (std::size_t x = 0; x < nl; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      fft_strided(data.data() + (x * n + y) * n, n, 1, false);
    }
  }
}

void SlabFFT::inverse(std::vector<cplx>& data) {
  if (data.size() != local_size()) {
    throw std::invalid_argument("SlabFFT: wrong slab size");
  }
  const auto n = static_cast<std::size_t>(n_);
  const auto nl = static_cast<std::size_t>(nloc_);
  for (std::size_t x = 0; x < nl; ++x) {
    for (std::size_t y = 0; y < n; ++y) {
      fft_strided(data.data() + (x * n + y) * n, n, 1, true);
    }
  }
  transpose(data, false);
  for (std::size_t z = 0; z < nl; ++z) {
    for (std::size_t y = 0; y < n; ++y) {
      fft_strided(data.data() + (z * n + y) * n, n, 1, true);
    }
    for (std::size_t x = 0; x < n; ++x) {
      fft_strided(data.data() + z * n * n + x, n, n, true);
    }
  }
}

}  // namespace ss::fft
