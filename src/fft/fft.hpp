// Complex FFTs: an iterative radix-2 Cooley-Tukey transform and a serial
// cubic 3-D transform built on it. Used by the cosmology initial-condition
// generator (Gaussian random fields via k-space sampling) and by the NPB
// FT mini-kernel. The distributed slab decomposition lives in slabfft.hpp.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace ss::fft {

using cplx = std::complex<double>;

/// In-place radix-2 FFT. data.size() must be a power of two. The inverse
/// transform includes the 1/N normalization.
void fft_inplace(std::span<cplx> data, bool inverse);

/// Strided in-place FFT over data[offset + i*stride], i in [0, n).
void fft_strided(cplx* data, std::size_t n, std::size_t stride, bool inverse);

/// Cubic n x n x n complex grid, index (i, j, k) with k fastest.
class Grid3 {
 public:
  explicit Grid3(int n) : n_(n), data_(static_cast<std::size_t>(n) * n * n) {}

  int n() const { return n_; }
  cplx& at(int i, int j, int k) {
    return data_[(static_cast<std::size_t>(i) * n_ + j) * n_ + k];
  }
  const cplx& at(int i, int j, int k) const {
    return data_[(static_cast<std::size_t>(i) * n_ + j) * n_ + k];
  }
  std::span<cplx> flat() { return data_; }
  std::span<const cplx> flat() const { return data_; }

 private:
  int n_;
  std::vector<cplx> data_;
};

/// Serial 3-D FFT over all three axes (inverse includes 1/N^3).
void fft3(Grid3& g, bool inverse);

/// True if v is a power of two (and > 0).
constexpr bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace ss::fft
