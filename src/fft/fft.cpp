#include "fft/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ss::fft {

namespace {

void fft_core(cplx* a, std::size_t n, std::size_t stride, bool inverse) {
  if (!is_pow2(n)) {
    throw std::invalid_argument("fft: length must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i * stride], a[j * stride]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const cplx wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        cplx& u = a[(i + k) * stride];
        cplx& v = a[(i + k + len / 2) * stride];
        const cplx t = v * w;
        v = u - t;
        u += t;
        w *= wl;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) a[i * stride] *= inv;
  }
}

}  // namespace

void fft_inplace(std::span<cplx> data, bool inverse) {
  fft_core(data.data(), data.size(), 1, inverse);
}

void fft_strided(cplx* data, std::size_t n, std::size_t stride, bool inverse) {
  fft_core(data, n, stride, inverse);
}

void fft3(Grid3& g, bool inverse) {
  const auto n = static_cast<std::size_t>(g.n());
  cplx* d = g.flat().data();
  // Axis k (fastest): contiguous rows.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      fft_core(d + (i * n + j) * n, n, 1, inverse);
    }
  }
  // Axis j: stride n.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      fft_core(d + i * n * n + k, n, n, inverse);
    }
  }
  // Axis i: stride n*n.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      fft_core(d + j * n + k, n, n * n, inverse);
    }
  }
}

}  // namespace ss::fft
