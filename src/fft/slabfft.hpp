// Distributed 3-D FFT with slab decomposition over vmpi.
//
// The grid is distributed in planes of the first axis (z-slabs). The
// forward transform FFTs the two local axes in every plane, performs a
// global transpose (one alltoallv — the communication pattern whose
// scaling the NPB FT benchmark measures), and finishes with the third
// axis locally. The inverse reverses the pipeline. Layouts:
//
//   slab layout  : index (z_local, y, x), x fastest,  z distributed
//   pencil layout: index (x_local, y, z), z fastest,  x distributed
//
// The grid side n must be a power of two and divisible by the number of
// ranks.
#pragma once

#include <vector>

#include "fft/fft.hpp"
#include "vmpi/comm.hpp"

namespace ss::fft {

class SlabFFT {
 public:
  SlabFFT(ss::vmpi::Comm& comm, int n);

  int n() const { return n_; }
  /// Planes of the distributed axis held by this rank.
  int local_planes() const { return nloc_; }
  /// First global plane index of this rank.
  int plane_offset() const { return comm_.rank() * nloc_; }
  /// Elements in one rank's slab (local_planes * n * n).
  std::size_t local_size() const {
    return static_cast<std::size_t>(nloc_) * n_ * n_;
  }

  /// Forward: slab layout in, pencil layout out (in place).
  void forward(std::vector<cplx>& data);
  /// Inverse: pencil layout in, slab layout out (includes 1/N^3).
  void inverse(std::vector<cplx>& data);

 private:
  /// Global transpose between slab and pencil layouts.
  void transpose(std::vector<cplx>& data, bool to_pencil);

  ss::vmpi::Comm& comm_;
  int n_;
  int nloc_;
};

}  // namespace ss::fft
