#include "nbody/integrator.hpp"

#include "gravity/batch.hpp"

namespace ss::nbody {

void direct_forces(const std::vector<Body>& bodies, double eps2,
                   gravity::RsqrtMethod method, std::vector<Accel>& acc) {
  const auto src = sources_of(bodies);
  acc.resize(bodies.size());
  // O(N^2) solve through the SoA tile kernels: one transpose of the
  // sources, then a batched flush per target body.
  const auto soa = gravity::SourcesSoA::from(src);
  std::vector<Vec3> targets(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) targets[i] = bodies[i].pos;
  gravity::interact_batch(targets, soa, eps2, method, acc);
}

void tree_forces(const std::vector<Body>& bodies, const TreeForceConfig& cfg,
                 std::vector<Accel>& acc, hot::TraverseStats* stats) {
  const auto src = sources_of(bodies);
  hot::Tree tree(src, cfg.tree);
  const auto sorted = tree.accelerate_all(cfg.theta, cfg.eps2, cfg.method,
                                          stats);
  acc.resize(bodies.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    acc[tree.original_index()[i]] = sorted[i];
  }
}

Energies energies(const std::vector<Body>& bodies,
                  const std::vector<Accel>& acc) {
  Energies e;
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    e.kinetic += 0.5 * bodies[i].mass * bodies[i].vel.norm2();
    e.potential += 0.5 * bodies[i].mass * acc[i].phi;
  }
  return e;
}

Vec3 total_momentum(const std::vector<Body>& bodies) {
  Vec3 p;
  for (const Body& b : bodies) p += b.mass * b.vel;
  return p;
}

Vec3 total_angular_momentum(const std::vector<Body>& bodies) {
  Vec3 l;
  for (const Body& b : bodies) l += b.mass * b.pos.cross(b.vel);
  return l;
}

Leapfrog::Leapfrog(std::vector<Body> bodies, ForceFunc force)
    : bodies_(std::move(bodies)), force_(std::move(force)) {
  force_(bodies_, acc_);
}

void Leapfrog::step(double dt, int steps) {
  for (int s = 0; s < steps; ++s) {
    // Kick half, drift full, re-evaluate, kick half.
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      bodies_[i].vel += 0.5 * dt * acc_[i].a;
      bodies_[i].pos += dt * bodies_[i].vel;
    }
    force_(bodies_, acc_);
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      bodies_[i].vel += 0.5 * dt * acc_[i].a;
    }
    time_ += dt;
  }
}

}  // namespace ss::nbody
