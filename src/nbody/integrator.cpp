#include "nbody/integrator.hpp"

#include "gravity/batch.hpp"

namespace ss::nbody {

void direct_forces(const std::vector<Body>& bodies, double eps2,
                   gravity::RsqrtMethod method, std::vector<Accel>& acc) {
  const auto src = sources_of(bodies);
  acc.resize(bodies.size());
  // O(N^2) solve through the SoA tile kernels: one transpose of the
  // sources, then a batched flush per target body.
  const auto soa = gravity::SourcesSoA::from(src);
  std::vector<Vec3> targets(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) targets[i] = bodies[i].pos;
  gravity::interact_batch(targets, soa, eps2, method, acc);
}

void tree_forces(const std::vector<Body>& bodies, const TreeForceConfig& cfg,
                 std::vector<Accel>& acc, hot::TraverseStats* stats) {
  const auto src = sources_of(bodies);
  hot::Tree tree(src, cfg.tree);
  hot::AccelParams params;
  params.theta = cfg.theta;
  params.eps2 = cfg.eps2;
  params.method = cfg.method;
  params.far_field = cfg.far_field;
  params.p_order = cfg.p_order;
  const auto sorted = tree.accelerate_all(params, stats);
  acc.resize(bodies.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    acc[tree.original_index()[i]] = sorted[i];
  }
}

Energies energies(const std::vector<Body>& bodies,
                  const std::vector<Accel>& acc) {
  Energies e;
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    e.kinetic += 0.5 * bodies[i].mass * bodies[i].vel.norm2();
    e.potential += 0.5 * bodies[i].mass * acc[i].phi;
  }
  return e;
}

Vec3 total_momentum(const std::vector<Body>& bodies) {
  Vec3 p;
  for (const Body& b : bodies) p += b.mass * b.vel;
  return p;
}

Vec3 total_angular_momentum(const std::vector<Body>& bodies) {
  Vec3 l;
  for (const Body& b : bodies) l += b.mass * b.pos.cross(b.vel);
  return l;
}

Leapfrog::Leapfrog(std::vector<Body> bodies, ForceFunc force)
    : bodies_(std::move(bodies)), force_(std::move(force)) {
  force_(bodies_, acc_);
}

void Leapfrog::step(double dt, int steps) {
  for (int s = 0; s < steps; ++s) {
    // Kick half, drift full, re-evaluate, kick half.
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      bodies_[i].vel += 0.5 * dt * acc_[i].a;
      bodies_[i].pos += dt * bodies_[i].vel;
    }
    force_(bodies_, acc_);
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      bodies_[i].vel += 0.5 * dt * acc_[i].a;
    }
    time_ += dt;
  }
}

ParallelLeapfrog::ParallelLeapfrog(ss::vmpi::Comm& comm,
                                   std::vector<Body> bodies,
                                   const hot::ParallelConfig& cfg)
    : comm_(comm), engine_(comm, cfg), bodies_(std::move(bodies)) {
  evaluate();
}

ParallelLeapfrog::ParallelLeapfrog(ss::vmpi::Comm& comm, State state,
                                   const hot::ParallelConfig& cfg)
    : comm_(comm),
      engine_(comm, cfg),
      bodies_(std::move(state.bodies)),
      acc_(std::move(state.acc)),
      work_(std::move(state.work)),
      time_(state.time) {
  engine_.seed_ledger(state.ledger);
  if (acc_.size() != bodies_.size()) {
    // No matching forces (e.g. a slice re-assembled for a different rank
    // count dropped them): evaluate once to establish them, exactly like
    // the fresh-start constructor.
    acc_.clear();
    evaluate();
  }
}

ParallelLeapfrog::State ParallelLeapfrog::checkpoint_state() const {
  State st;
  st.bodies = bodies_;
  st.acc = acc_;
  st.work = work_;
  const auto led = engine_.ledger();
  st.ledger.assign(led.begin(), led.end());
  st.time = time_;
  return st;
}

void ParallelLeapfrog::evaluate() {
  // Strip to (pos, mass) sources and pack velocities as the stride-3 aux
  // payload: the engine routes them through the decomposition with the
  // bodies and hands both back in the same (Morton) order.
  const auto src = sources_of(bodies_);
  std::vector<double> aux(bodies_.size() * 3);
  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    aux[3 * i + 0] = bodies_[i].vel.x;
    aux[3 * i + 1] = bodies_[i].vel.y;
    aux[3 * i + 2] = bodies_[i].vel.z;
  }
  auto res = engine_.step(src, work_, aux, 3);
  bodies_.resize(res.bodies.size());
  for (std::size_t i = 0; i < res.bodies.size(); ++i) {
    bodies_[i].pos = res.bodies[i].pos;
    bodies_[i].mass = res.bodies[i].mass;
    bodies_[i].vel = {res.aux[3 * i + 0], res.aux[3 * i + 1],
                      res.aux[3 * i + 2]};
  }
  acc_ = std::move(res.accel);
  work_ = std::move(res.work);
  last_stats_ = res.stats;
}

void ParallelLeapfrog::step(double dt, int steps) {
  for (int s = 0; s < steps; ++s) {
    // Kick half, drift full (local phase-space updates), then one engine
    // evaluation — which may move bodies between ranks — and kick half
    // with the forces matching the redistributed set.
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      bodies_[i].vel += 0.5 * dt * acc_[i].a;
      bodies_[i].pos += dt * bodies_[i].vel;
    }
    evaluate();
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      bodies_[i].vel += 0.5 * dt * acc_[i].a;
    }
    time_ += dt;
  }
}

}  // namespace ss::nbody
