#include "nbody/checkpoint.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>

#include "integrity/audit.hpp"
#include "integrity/guard.hpp"
#include "integrity/invariant.hpp"
#include "io/postmortem.hpp"
#include "obs/obs.hpp"
#include "vmpi/comm.hpp"

namespace ss::nbody {

namespace {

std::vector<double> pack3(const std::vector<Body>& bodies, bool vel) {
  std::vector<double> out(bodies.size() * 3);
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    const Vec3& v = vel ? bodies[i].vel : bodies[i].pos;
    out[3 * i + 0] = v.x;
    out[3 * i + 1] = v.y;
    out[3 * i + 2] = v.z;
  }
  return out;
}

void require_count(const io::BlockReader& r, std::size_t got,
                   std::size_t want, const char* what) {
  if (got != want) {
    throw io::FormatError(r.origin() + ": checkpoint block '" + what +
                          "' count disagrees with 'mass'");
  }
}

}  // namespace

void encode_state(const ParallelLeapfrog::State& st, io::BlockBuilder& b) {
  const std::size_t n = st.bodies.size();
  std::vector<double> mass(n), phi(st.acc.size()), a3(st.acc.size() * 3);
  for (std::size_t i = 0; i < n; ++i) mass[i] = st.bodies[i].mass;
  for (std::size_t i = 0; i < st.acc.size(); ++i) {
    a3[3 * i + 0] = st.acc[i].a.x;
    a3[3 * i + 1] = st.acc[i].a.y;
    a3[3 * i + 2] = st.acc[i].a.z;
    phi[i] = st.acc[i].phi;
  }
  b.add<double>("pos", pack3(st.bodies, false));
  b.add<double>("vel", pack3(st.bodies, true));
  b.add<double>("mass", mass);
  b.add<double>("acc", a3);
  b.add<double>("phi", phi);
  b.add<double>("work", st.work);
  b.add<std::uint64_t>("ledger", st.ledger);
  b.add_scalar("sim_time", st.time);
}

ParallelLeapfrog::State decode_state(const io::BlockReader& r) {
  ParallelLeapfrog::State st;
  const auto mass = r.read<double>("mass");
  const auto pos = r.read<double>("pos");
  const auto vel = r.read<double>("vel");
  const auto a3 = r.read<double>("acc");
  const auto phi = r.read<double>("phi");
  const std::size_t n = mass.size();
  require_count(r, pos.size(), 3 * n, "pos");
  require_count(r, vel.size(), 3 * n, "vel");
  require_count(r, a3.size(), 3 * n, "acc");
  require_count(r, phi.size(), n, "phi");
  st.bodies.resize(n);
  st.acc.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    st.bodies[i].pos = {pos[3 * i + 0], pos[3 * i + 1], pos[3 * i + 2]};
    st.bodies[i].vel = {vel[3 * i + 0], vel[3 * i + 1], vel[3 * i + 2]};
    st.bodies[i].mass = mass[i];
    st.acc[i].a = {a3[3 * i + 0], a3[3 * i + 1], a3[3 * i + 2]};
    st.acc[i].phi = phi[i];
  }
  st.work = r.read<double>("work");
  require_count(r, st.work.size(), n, "work");
  st.ledger = r.read<std::uint64_t>("ledger");
  st.time = r.read_f64("sim_time");
  return st;
}

io::SnapshotWriteStats save_checkpoint(io::CheckpointStore& store,
                                       std::uint64_t step,
                                       const ParallelLeapfrog& leap) {
  const ParallelLeapfrog::State st = leap.checkpoint_state();
  return store.save(step, st.time, st.bodies.size(),
                    [&st](io::BlockBuilder& b) { encode_state(st, b); });
}

std::optional<RestoredState> restore_checkpoint(io::CheckpointStore& store,
                                                ss::vmpi::Comm& comm) {
  auto gen = store.restore_latest();
  if (!gen) return std::nullopt;

  RestoredState out;
  out.step = gen->generation;
  out.fallbacks = gen->fallbacks;
  out.resharded = gen->manifest.nranks != comm.size();

  if (!out.resharded) {
    // Same rank count: my stripe is exactly my state.
    out.state = decode_state(gen->stripes[static_cast<std::size_t>(
        comm.rank())]);
    return out;
  }

  // Different rank count: take the contiguous slice
  // [N*rank/size, N*(rank+1)/size) of the rank-major concatenation of all
  // stripes. Per-body payloads (forces, work weights) ride along, so the
  // resharded restart resumes from exact per-body state; only the
  // decomposition boundaries move. Prefetch ledgers of the contributing
  // stripes are merged (stale entries are harmless: ownership is
  // re-checked at prefetch time).
  const std::uint64_t total = gen->manifest.total_count();
  const std::uint64_t begin =
      total * static_cast<std::uint64_t>(comm.rank()) /
      static_cast<std::uint64_t>(comm.size());
  const std::uint64_t end =
      total * (static_cast<std::uint64_t>(comm.rank()) + 1) /
      static_cast<std::uint64_t>(comm.size());

  std::uint64_t offset = 0;  // start of stripe r in the concatenation
  for (std::size_t r = 0; r < gen->stripes.size(); ++r) {
    const std::uint64_t count = gen->manifest.counts[r];
    const std::uint64_t lo = std::max(begin, offset);
    const std::uint64_t hi = std::min(end, offset + count);
    offset += count;
    if (lo >= hi) continue;
    const ParallelLeapfrog::State part = decode_state(gen->stripes[r]);
    const std::size_t a = static_cast<std::size_t>(lo - (offset - count));
    const std::size_t b = static_cast<std::size_t>(hi - (offset - count));
    out.state.bodies.insert(out.state.bodies.end(),
                            part.bodies.begin() + a, part.bodies.begin() + b);
    out.state.acc.insert(out.state.acc.end(), part.acc.begin() + a,
                         part.acc.begin() + b);
    out.state.work.insert(out.state.work.end(), part.work.begin() + a,
                          part.work.begin() + b);
    out.state.ledger.insert(out.state.ledger.end(), part.ledger.begin(),
                            part.ledger.end());
    out.state.time = part.time;
  }
  std::sort(out.state.ledger.begin(), out.state.ledger.end());
  out.state.ledger.erase(
      std::unique(out.state.ledger.begin(), out.state.ledger.end()),
      out.state.ledger.end());
  if (out.state.bodies.empty()) out.state.time = gen->manifest.time;
  return out;
}

namespace {

/// One counter bump through the obs free helpers (no-op when no session
/// is bound to this thread).
void bump(const char* name, std::uint64_t by) {
  if (by == 0) return;
  if (obs::Counter* c = obs::counter(name)) c->add(by);
}

/// Flight-record one corruption event on this rank (tier 1/2/3).
void flight_corruption(int rank, std::uint64_t id, int tier) {
  if (obs::Rank* r = obs::tls()) {
    r->flight(obs::FlightKind::kCorruption, rank, id,
              static_cast<double>(tier));
  }
}

}  // namespace

RecoveryResult run_with_recovery(const RecoveryConfig& cfg,
                                 const std::vector<Body>& initial,
                                 io::FaultInjector* fault) {
  RecoveryResult out;
  out.bodies.assign(static_cast<std::size_t>(cfg.ranks), {});
  const std::size_t n = initial.size();

  const bool integ = cfg.integrity.enabled();
  integrity::MemFaultInjector* mem = cfg.integrity.mem_faults.get();
  // Per-rank event accounting, accumulated across attempts (each rank
  // thread writes only its own slot; summed after the loop).
  std::vector<integrity::Summary> rank_sums(
      static_cast<std::size_t>(cfg.ranks));

  // Statistical injection: one MTBF-drawn schedule shared by every
  // restart, so retried runs sail past already-fired failures.
  std::optional<io::FaultInjector> drawn;
  if (fault == nullptr && cfg.mtbf_hours > 0.0) {
    drawn = io::FaultInjector::from_mtbf(cfg.mtbf_hours, cfg.step_hours,
                                         cfg.ranks, cfg.steps,
                                         cfg.mtbf_seed);
    fault = &*drawn;
  }

  int attempts = 0;
  for (;;) {
    try {
      ss::vmpi::Runtime rt(cfg.ranks);
      if (cfg.fabric_faults != nullptr) {
        rt.set_fault_model(cfg.fabric_faults, cfg.transport);
      }
      if (cfg.observer != nullptr) rt.attach_observer(cfg.observer);
      rt.run([&](ss::vmpi::Comm& comm) {
        const int rank = comm.rank();
        const int size = comm.size();
        io::CheckpointStore store(comm, cfg.store);

        std::uint64_t start_step = 0;
        std::unique_ptr<ParallelLeapfrog> leap;
        auto restored = restore_checkpoint(store, comm);
        if (restored) {
          start_step = restored->step;
          if (rank == 0) out.restore_fallbacks = restored->fallbacks;
          leap = std::make_unique<ParallelLeapfrog>(
              comm, std::move(restored->state), cfg.engine);
        } else {
          const std::size_t b = n * static_cast<std::size_t>(rank) /
                                static_cast<std::size_t>(size);
          const std::size_t e = n * (static_cast<std::size_t>(rank) + 1) /
                                static_cast<std::size_t>(size);
          std::vector<Body> share(initial.begin() + b, initial.begin() + e);
          leap = std::make_unique<ParallelLeapfrog>(comm, std::move(share),
                                                    cfg.engine);
          // Generation 0: there is always a committed base to fall back
          // to, so a failure in the very first interval is recoverable.
          save_checkpoint(store, 0, *leap);
        }

        // -- integrity machinery (all dormant when cfg.integrity is
        // default-constructed: the loop below takes the exact legacy
        // path, no captures, no scans, no extra collectives) -----------
        integrity::StateGuard guard(cfg.integrity.guard_slab_bytes);
        integrity::InvariantMonitor invariant(cfg.integrity.energy_rel_gate);
        integrity::Summary& isum =
            rank_sums[static_cast<std::size_t>(rank)];
        const bool gate = integ && cfg.integrity.energy_rel_gate > 0.0;

        // Spans into the integrator's vectors go stale on every step /
        // force refresh (bodies redistribute, vectors reallocate), so
        // regions are re-taken at each boundary.
        auto register_regions = [&] {
          if (mem == nullptr) return;
          mem->set_region(rank, "bodies", leap->bodies_bytes());
          mem->set_region(rank, "acc", leap->acc_bytes());
          mem->set_region(rank, "work", leap->work_bytes());
          mem->set_region(rank, "tree.cells",
                          std::as_writable_bytes(
                              leap->engine().tree().cells_mutable()));
        };
        // Capture runs at the quiescent end of a boundary (post-repair /
        // post-step), so the next boundary's scan compares quiescent
        // state to quiescent state and any mismatch is corruption.
        auto capture_all = [&] {
          if (!cfg.integrity.guard) return;
          guard.capture("bodies", leap->bodies_bytes());
          guard.capture("acc", leap->acc_bytes());
          guard.capture("work", leap->work_bytes());
        };
        if (integ) capture_all();
        if (gate) {
          // Seed the energy baseline so step 1 is judged against the
          // starting state, not against itself.
          invariant.check(comm.allreduce_sum(leap->current_energies().total()));
        }

        for (std::uint64_t step = start_step + 1; step <= cfg.steps; ++step) {
          if (integ) {
            // 1. Inject: flips land in the post-step state, after the
            //    previous boundary's capture — so the guard can tell
            //    corruption from dynamics.
            register_regions();
            if (mem != nullptr) mem->tick(rank, step);

            // 2. Detect + tier-1 repair: per-slab CRC against the shadow.
            int local_action = 0;  // 0 none, 1 recompute forces, 2 rollback
            std::string_view bad_region;
            if (cfg.integrity.guard) {
              const std::pair<std::string_view, std::span<std::byte>>
                  regions[] = {{"bodies", leap->bodies_bytes()},
                               {"acc", leap->acc_bytes()},
                               {"work", leap->work_bytes()}};
              for (const auto& [name, bytes] : regions) {
                integrity::ScanResult r = guard.scan_and_repair(name, bytes);
                isum.faults_detected += r.faults_detected;
                isum.repairs_local += r.repaired;
                isum.shadow_refreshed += r.shadow_refreshed;
                isum.unrecoverable_slabs += r.unrecoverable;
                bump("integrity.faults_detected", r.faults_detected);
                bump("integrity.repairs_local", r.repaired);
                bump("integrity.shadow_refreshed", r.shadow_refreshed);
                bump("integrity.unrecoverable_slabs", r.unrecoverable);
                for (std::uint64_t slab : r.flagged) {
                  flight_corruption(rank, slab, r.unrecoverable != 0 ? 3 : 1);
                }
                if (r.unrecoverable != 0) {
                  bad_region = name;
                  // Phase space is the irreplaceable state; forces and
                  // work weights can be re-derived from positions.
                  local_action =
                      name == "bodies" ? 2 : std::max(local_action, 1);
                }
                if (r.size_changed) guard.capture(name, bytes);
              }
            }

            // 3. Structural tree audit. The cell arena is rebuilt from
            //    bodies every evaluation, so arena damage never reaches
            //    the next step's forces — the audit's job is to *see* it
            //    (and localize it) before the rebuild erases it.
            if (cfg.integrity.audit_tree_every != 0 &&
                step % cfg.integrity.audit_tree_every == 0) {
              const integrity::TreeAuditReport rep =
                  integrity::audit_tree(leap->engine().tree());
              if (!rep.ok()) {
                isum.faults_detected += 1;  // one event per audit alarm
                isum.tree_audit_findings += rep.findings.size();
                bump("integrity.faults_detected", 1);
                bump("integrity.tree_audit_findings", rep.findings.size());
                flight_corruption(rank, rep.findings.front().cell, 1);
              }
            }

            // 4. Strided force sentinel (single-rank evaluations only:
            //    the local tree must hold every source).
            if (size == 1 && cfg.integrity.sentinel_every != 0 &&
                step % cfg.integrity.sentinel_every == 0) {
              const hot::Tree& tree = leap->engine().tree();
              if (!tree.bodies().empty() &&
                  tree.bodies().size() == leap->accel().size()) {
                hot::AccelParams params;
                params.theta = cfg.engine.theta;
                params.eps2 = cfg.engine.eps2;
                params.method = cfg.engine.method;
                const integrity::SentinelResult s =
                    integrity::sentinel_recompute(
                        tree, leap->accel(), params,
                        cfg.integrity.sentinel_stride,
                        cfg.integrity.sentinel_rel_tol);
                isum.sentinel_mismatches += s.mismatches;
                bump("integrity.sentinel_mismatches", s.mismatches);
                if (s.mismatches != 0) {
                  isum.faults_detected += 1;
                  bump("integrity.faults_detected", 1);
                  flight_corruption(rank, s.first_body, 2);
                  bad_region = "acc";
                  local_action = std::max(local_action, 1);
                }
              }
            }

            // 5. Escalate. Tier 3 throws BEFORE any collective — one
            //    rank's throw tears the whole attempt down exactly like
            //    a rank kill, and the supervisor rolls back. Tier 2 is
            //    agreed by one max-allreduce so the force refresh (a
            //    collective) runs on every rank or none.
            if (local_action == 2) {
              flight_corruption(rank, 0, 3);
              throw integrity::CorruptionError(
                  rank, step, std::string(bad_region),
                  "live and shadow slabs both damaged; rolling back to "
                  "the last checkpoint");
            }
            int action = local_action;
            if (size > 1) {
              action = comm.allreduce_value<int>(
                  local_action, [](int a, int b) { return a > b ? a : b; });
            }
            if (action == 1) {
              leap->refresh_forces();
              isum.repairs_recompute += 1;
              bump("integrity.repairs_recompute", 1);
            }
          }

          if (fault != nullptr) fault->tick(rank, step);

          std::optional<ParallelLeapfrog::State> pre;
          if (gate) pre = leap->checkpoint_state();
          leap->step(cfg.dt);

          // 6. Physics invariant gate: per-step energy drift, computed
          //    from allreduced sums so every rank takes the same branch.
          //    A trip retries the step from the pre-step snapshot (the
          //    restore constructor sees matching forces, so rebuilding
          //    runs no collectives and replays bit-exactly); a persistent
          //    trip escalates to rollback.
          if (gate) {
            int retries = 0;
            for (;;) {
              const double total =
                  comm.allreduce_sum(leap->current_energies().total());
              if (invariant.check(total)) break;
              isum.invariant_trips += 1;
              bump("integrity.invariant_trips", 1);
              flight_corruption(rank, step, 2);
              if (retries >= cfg.integrity.max_step_retries) {
                throw integrity::CorruptionError(
                    rank, step, "dynamics",
                    "energy gate still tripped after " +
                        std::to_string(retries) +
                        " retry(ies); rolling back to the last checkpoint");
              }
              ++retries;
              isum.step_retries += 1;
              bump("integrity.step_retries", 1);
              leap = std::make_unique<ParallelLeapfrog>(
                  comm, ParallelLeapfrog::State(*pre), cfg.engine);
              leap->step(cfg.dt);
            }
          }

          // 7. The post-step state is now trusted: it becomes the next
          //    boundary's baseline.
          if (integ) capture_all();

          if (cfg.checkpoint_every != 0 && step % cfg.checkpoint_every == 0) {
            save_checkpoint(store, step, *leap);
          }
        }
        store.finalize();

        out.bodies[static_cast<std::size_t>(rank)] = leap->bodies();
        if (rank == 0) {
          out.steps_completed = cfg.steps;
          out.time = leap->time();
          out.io_stats = store.io_stats();
        }
      });
      break;  // clean run
    } catch (const io::RankFailure& rf) {
      if (!cfg.postmortem_path.empty()) {
        io::write_postmortem(cfg.postmortem_path, cfg.observer,
                             {"rank failure (supervisor restart)", rf.what()});
      }
      if (++attempts > cfg.max_restarts) throw;
      out.restarts = attempts;
      if (obs::Counter* c = obs::counter("io.restarts")) c->add(1);
    } catch (const integrity::CorruptionError& ce) {
      // Tier 3 of the self-healing ladder: corruption the in-step tiers
      // could not repair. The attempt tore down like a rank kill; roll
      // back to the last committed generation (already-fired injections
      // stay consumed, so the retried run sails past them).
      if (!cfg.postmortem_path.empty()) {
        io::write_postmortem(
            cfg.postmortem_path, cfg.observer,
            {"memory corruption (rollback to checkpoint)", ce.what()});
      }
      if (++attempts > cfg.max_restarts) throw;
      out.restarts = attempts;
      out.integrity.rollbacks += 1;
      if (obs::Counter* c = obs::counter("integrity.rollbacks")) c->add(1);
      if (obs::Counter* c = obs::counter("io.restarts")) c->add(1);
    } catch (const std::exception& e) {
      // Not a rank kill — a watchdog stall, a transport drain failure, a
      // corrupted store. Not restartable, but still worth a black box.
      if (!cfg.postmortem_path.empty()) {
        io::write_postmortem(cfg.postmortem_path, cfg.observer,
                             {"unrecoverable failure", e.what()});
      }
      throw;
    }
  }

  for (const integrity::Summary& s : rank_sums) {
    out.integrity.faults_detected += s.faults_detected;
    out.integrity.repairs_local += s.repairs_local;
    out.integrity.shadow_refreshed += s.shadow_refreshed;
    out.integrity.repairs_recompute += s.repairs_recompute;
    out.integrity.step_retries += s.step_retries;
    out.integrity.tree_audit_findings += s.tree_audit_findings;
    out.integrity.sentinel_mismatches += s.sentinel_mismatches;
    out.integrity.invariant_trips += s.invariant_trips;
    out.integrity.unrecoverable_slabs += s.unrecoverable_slabs;
  }
  if (mem != nullptr) out.integrity.faults_injected = mem->injected();
  return out;
}

}  // namespace ss::nbody
