#include "nbody/checkpoint.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "io/postmortem.hpp"
#include "obs/obs.hpp"
#include "vmpi/comm.hpp"

namespace ss::nbody {

namespace {

std::vector<double> pack3(const std::vector<Body>& bodies, bool vel) {
  std::vector<double> out(bodies.size() * 3);
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    const Vec3& v = vel ? bodies[i].vel : bodies[i].pos;
    out[3 * i + 0] = v.x;
    out[3 * i + 1] = v.y;
    out[3 * i + 2] = v.z;
  }
  return out;
}

void require_count(const io::BlockReader& r, std::size_t got,
                   std::size_t want, const char* what) {
  if (got != want) {
    throw io::FormatError(r.origin() + ": checkpoint block '" + what +
                          "' count disagrees with 'mass'");
  }
}

}  // namespace

void encode_state(const ParallelLeapfrog::State& st, io::BlockBuilder& b) {
  const std::size_t n = st.bodies.size();
  std::vector<double> mass(n), phi(st.acc.size()), a3(st.acc.size() * 3);
  for (std::size_t i = 0; i < n; ++i) mass[i] = st.bodies[i].mass;
  for (std::size_t i = 0; i < st.acc.size(); ++i) {
    a3[3 * i + 0] = st.acc[i].a.x;
    a3[3 * i + 1] = st.acc[i].a.y;
    a3[3 * i + 2] = st.acc[i].a.z;
    phi[i] = st.acc[i].phi;
  }
  b.add<double>("pos", pack3(st.bodies, false));
  b.add<double>("vel", pack3(st.bodies, true));
  b.add<double>("mass", mass);
  b.add<double>("acc", a3);
  b.add<double>("phi", phi);
  b.add<double>("work", st.work);
  b.add<std::uint64_t>("ledger", st.ledger);
  b.add_scalar("sim_time", st.time);
}

ParallelLeapfrog::State decode_state(const io::BlockReader& r) {
  ParallelLeapfrog::State st;
  const auto mass = r.read<double>("mass");
  const auto pos = r.read<double>("pos");
  const auto vel = r.read<double>("vel");
  const auto a3 = r.read<double>("acc");
  const auto phi = r.read<double>("phi");
  const std::size_t n = mass.size();
  require_count(r, pos.size(), 3 * n, "pos");
  require_count(r, vel.size(), 3 * n, "vel");
  require_count(r, a3.size(), 3 * n, "acc");
  require_count(r, phi.size(), n, "phi");
  st.bodies.resize(n);
  st.acc.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    st.bodies[i].pos = {pos[3 * i + 0], pos[3 * i + 1], pos[3 * i + 2]};
    st.bodies[i].vel = {vel[3 * i + 0], vel[3 * i + 1], vel[3 * i + 2]};
    st.bodies[i].mass = mass[i];
    st.acc[i].a = {a3[3 * i + 0], a3[3 * i + 1], a3[3 * i + 2]};
    st.acc[i].phi = phi[i];
  }
  st.work = r.read<double>("work");
  require_count(r, st.work.size(), n, "work");
  st.ledger = r.read<std::uint64_t>("ledger");
  st.time = r.read_f64("sim_time");
  return st;
}

io::SnapshotWriteStats save_checkpoint(io::CheckpointStore& store,
                                       std::uint64_t step,
                                       const ParallelLeapfrog& leap) {
  const ParallelLeapfrog::State st = leap.checkpoint_state();
  return store.save(step, st.time, st.bodies.size(),
                    [&st](io::BlockBuilder& b) { encode_state(st, b); });
}

std::optional<RestoredState> restore_checkpoint(io::CheckpointStore& store,
                                                ss::vmpi::Comm& comm) {
  auto gen = store.restore_latest();
  if (!gen) return std::nullopt;

  RestoredState out;
  out.step = gen->generation;
  out.fallbacks = gen->fallbacks;
  out.resharded = gen->manifest.nranks != comm.size();

  if (!out.resharded) {
    // Same rank count: my stripe is exactly my state.
    out.state = decode_state(gen->stripes[static_cast<std::size_t>(
        comm.rank())]);
    return out;
  }

  // Different rank count: take the contiguous slice
  // [N*rank/size, N*(rank+1)/size) of the rank-major concatenation of all
  // stripes. Per-body payloads (forces, work weights) ride along, so the
  // resharded restart resumes from exact per-body state; only the
  // decomposition boundaries move. Prefetch ledgers of the contributing
  // stripes are merged (stale entries are harmless: ownership is
  // re-checked at prefetch time).
  const std::uint64_t total = gen->manifest.total_count();
  const std::uint64_t begin =
      total * static_cast<std::uint64_t>(comm.rank()) /
      static_cast<std::uint64_t>(comm.size());
  const std::uint64_t end =
      total * (static_cast<std::uint64_t>(comm.rank()) + 1) /
      static_cast<std::uint64_t>(comm.size());

  std::uint64_t offset = 0;  // start of stripe r in the concatenation
  for (std::size_t r = 0; r < gen->stripes.size(); ++r) {
    const std::uint64_t count = gen->manifest.counts[r];
    const std::uint64_t lo = std::max(begin, offset);
    const std::uint64_t hi = std::min(end, offset + count);
    offset += count;
    if (lo >= hi) continue;
    const ParallelLeapfrog::State part = decode_state(gen->stripes[r]);
    const std::size_t a = static_cast<std::size_t>(lo - (offset - count));
    const std::size_t b = static_cast<std::size_t>(hi - (offset - count));
    out.state.bodies.insert(out.state.bodies.end(),
                            part.bodies.begin() + a, part.bodies.begin() + b);
    out.state.acc.insert(out.state.acc.end(), part.acc.begin() + a,
                         part.acc.begin() + b);
    out.state.work.insert(out.state.work.end(), part.work.begin() + a,
                          part.work.begin() + b);
    out.state.ledger.insert(out.state.ledger.end(), part.ledger.begin(),
                            part.ledger.end());
    out.state.time = part.time;
  }
  std::sort(out.state.ledger.begin(), out.state.ledger.end());
  out.state.ledger.erase(
      std::unique(out.state.ledger.begin(), out.state.ledger.end()),
      out.state.ledger.end());
  if (out.state.bodies.empty()) out.state.time = gen->manifest.time;
  return out;
}

RecoveryResult run_with_recovery(const RecoveryConfig& cfg,
                                 const std::vector<Body>& initial,
                                 io::FaultInjector* fault) {
  RecoveryResult out;
  out.bodies.assign(static_cast<std::size_t>(cfg.ranks), {});
  const std::size_t n = initial.size();

  // Statistical injection: one MTBF-drawn schedule shared by every
  // restart, so retried runs sail past already-fired failures.
  std::optional<io::FaultInjector> drawn;
  if (fault == nullptr && cfg.mtbf_hours > 0.0) {
    drawn = io::FaultInjector::from_mtbf(cfg.mtbf_hours, cfg.step_hours,
                                         cfg.ranks, cfg.steps,
                                         cfg.mtbf_seed);
    fault = &*drawn;
  }

  int attempts = 0;
  for (;;) {
    try {
      ss::vmpi::Runtime rt(cfg.ranks);
      if (cfg.fabric_faults != nullptr) {
        rt.set_fault_model(cfg.fabric_faults, cfg.transport);
      }
      if (cfg.observer != nullptr) rt.attach_observer(cfg.observer);
      rt.run([&](ss::vmpi::Comm& comm) {
        const int rank = comm.rank();
        const int size = comm.size();
        io::CheckpointStore store(comm, cfg.store);

        std::uint64_t start_step = 0;
        std::unique_ptr<ParallelLeapfrog> leap;
        auto restored = restore_checkpoint(store, comm);
        if (restored) {
          start_step = restored->step;
          if (rank == 0) out.restore_fallbacks = restored->fallbacks;
          leap = std::make_unique<ParallelLeapfrog>(
              comm, std::move(restored->state), cfg.engine);
        } else {
          const std::size_t b = n * static_cast<std::size_t>(rank) /
                                static_cast<std::size_t>(size);
          const std::size_t e = n * (static_cast<std::size_t>(rank) + 1) /
                                static_cast<std::size_t>(size);
          std::vector<Body> share(initial.begin() + b, initial.begin() + e);
          leap = std::make_unique<ParallelLeapfrog>(comm, std::move(share),
                                                    cfg.engine);
          // Generation 0: there is always a committed base to fall back
          // to, so a failure in the very first interval is recoverable.
          save_checkpoint(store, 0, *leap);
        }

        for (std::uint64_t step = start_step + 1; step <= cfg.steps; ++step) {
          if (fault != nullptr) fault->tick(rank, step);
          leap->step(cfg.dt);
          if (cfg.checkpoint_every != 0 && step % cfg.checkpoint_every == 0) {
            save_checkpoint(store, step, *leap);
          }
        }
        store.finalize();

        out.bodies[static_cast<std::size_t>(rank)] = leap->bodies();
        if (rank == 0) {
          out.steps_completed = cfg.steps;
          out.time = leap->time();
          out.io_stats = store.io_stats();
        }
      });
      break;  // clean run
    } catch (const io::RankFailure& rf) {
      if (!cfg.postmortem_path.empty()) {
        io::write_postmortem(cfg.postmortem_path, cfg.observer,
                             {"rank failure (supervisor restart)", rf.what()});
      }
      if (++attempts > cfg.max_restarts) throw;
      out.restarts = attempts;
      if (obs::Counter* c = obs::counter("io.restarts")) c->add(1);
    } catch (const std::exception& e) {
      // Not a rank kill — a watchdog stall, a transport drain failure, a
      // corrupted store. Not restartable, but still worth a black box.
      if (!cfg.postmortem_path.empty()) {
        io::write_postmortem(cfg.postmortem_path, cfg.observer,
                             {"unrecoverable failure", e.what()});
      }
      throw;
    }
  }
  return out;
}

}  // namespace ss::nbody
