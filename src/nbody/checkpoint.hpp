// Checkpoint/restart wiring for the distributed N-body integrator.
//
// Three layers:
//
//  - encode_state / decode_state: one rank's ParallelLeapfrog::State as
//    named typed blocks (pos/vel/mass/acc/phi/work/ledger) in the
//    self-describing block format.
//
//  - save_checkpoint / restore_checkpoint: collective save of one
//    generation through a CheckpointStore, and restore of the newest
//    valid generation onto the *current* rank count. Same count: each
//    rank takes its own stripe bit-for-bit (forces, work weights and
//    prefetch ledger included, so resuming replays the uninterrupted
//    run exactly when the engine runs its deterministic scalar path).
//    Different count: each rank takes a contiguous slice of the
//    rank-major concatenation of all stripes — per-body payloads (acc,
//    work) ride along, so even a resharded restart resumes from exact
//    per-body state and only the decomposition boundaries move.
//
//  - run_with_recovery: the supervisor loop of the fault-injection
//    story. Runs a vmpi job that integrates `steps` steps, checkpointing
//    every `checkpoint_every`; when a FaultInjector kills a rank the
//    whole virtual job tears down (as a real MPI job would), the
//    supervisor catches the failure and restarts from the last committed
//    generation. Each scheduled kill fires once, so the retried run
//    sails past the step that murdered its predecessor.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "integrity/config.hpp"
#include "io/checkpoint.hpp"
#include "io/fault.hpp"
#include "nbody/integrator.hpp"
#include "obs/obs.hpp"

namespace ss::nbody {

/// Serialize one rank's integrator state into checkpoint blocks.
/// (step/time live in the snapshot manifest, not the stripe.)
void encode_state(const ParallelLeapfrog::State& st, io::BlockBuilder& b);

/// Inverse of encode_state for one stripe. Throws io::FormatError on a
/// stripe whose blocks are missing or inconsistent.
ParallelLeapfrog::State decode_state(const io::BlockReader& r);

/// Collective: save the integrator state as checkpoint generation `step`.
io::SnapshotWriteStats save_checkpoint(io::CheckpointStore& store,
                                       std::uint64_t step,
                                       const ParallelLeapfrog& leap);

struct RestoredState {
  ParallelLeapfrog::State state;  ///< This rank's share.
  std::uint64_t step = 0;         ///< Generation id = step of the save.
  int fallbacks = 0;              ///< Damaged/uncommitted generations skipped.
  bool resharded = false;         ///< Rank count differed from the save.
};

/// Collective: restore the newest valid generation onto comm.size()
/// ranks (any count). nullopt when no generation validates.
std::optional<RestoredState> restore_checkpoint(io::CheckpointStore& store,
                                                ss::vmpi::Comm& comm);

// ---------------------------------------------------------------------------
// Fault-injected supervisor loop.
// ---------------------------------------------------------------------------

struct RecoveryConfig {
  int ranks = 4;
  std::uint64_t steps = 10;            ///< Total integration steps.
  std::uint64_t checkpoint_every = 2;  ///< Generation cadence (0: only gen 0).
  double dt = 1e-3;
  int max_restarts = 8;  ///< Give up (rethrow) past this many restarts.
  hot::ParallelConfig engine;
  io::CheckpointStore::Config store;
  /// Optional lossy fabric: each (re)started job's Runtime rides the
  /// reliable transport over this fault model, so rank kills and frame
  /// loss compose — the Sec 2.1 cluster, not a lab fabric. Null =
  /// perfect links.
  std::shared_ptr<vmpi::LinkFaultModel> fabric_faults;
  vmpi::TransportConfig transport;
  /// Optional obs session attached to every (re)started attempt's
  /// Runtime. Must outlive run_with_recovery; its flight recorders feed
  /// the postmortem below. Null = no tracing (the clean default).
  obs::Session* observer = nullptr;
  /// When non-empty, every caught rank kill (and any terminal failure)
  /// dumps the attempt's flight-recorder rings here as an SSBLOCK1
  /// postmortem (io/postmortem.hpp) before restarting / rethrowing.
  std::string postmortem_path;
  /// Statistical fault injection: when > 0 (and no explicit injector is
  /// passed to run_with_recovery), the supervisor builds one
  /// io::FaultInjector::from_mtbf(mtbf_hours, step_hours, ranks, steps,
  /// mtbf_seed) that lives across all restarts — each drawn kill fires
  /// once, like the hardware failures it models.
  double mtbf_hours = 0.0;
  double step_hours = 1.0;  ///< Virtual wall hours one step represents.
  std::uint64_t mtbf_seed = 0x5eedfau;
  /// Silent-data-corruption defense (integrity/): fault injection,
  /// boundary detection (slab-CRC guard, tree audit, force sentinel,
  /// energy gate) and the tiered self-healing ladder. Default-constructed
  /// = fully off: the loop takes the exact pre-integrity path.
  integrity::Config integrity;
};

struct RecoveryResult {
  int restarts = 0;                      ///< Restarts actually taken.
  std::uint64_t steps_completed = 0;
  double time = 0.0;                     ///< Final simulation time.
  std::vector<std::vector<Body>> bodies; ///< Final per-rank bodies.
  io::AsyncWriter::Stats io_stats;       ///< Rank 0's writer stats.
  int restore_fallbacks = 0;             ///< From the last restart's restore.
  /// Summed over all ranks and all attempts (failed ones included);
  /// faults_injected comes from the injector itself, rollbacks from the
  /// supervisor's CorruptionError catches.
  integrity::Summary integrity;
};

/// Run the whole job under the supervisor. `initial` is the global body
/// set; rank r of P starts with the contiguous slice [N*r/P, N*(r+1)/P).
/// `fault` may be null (no injection). Throws the underlying RankFailure
/// when restarts exceed cfg.max_restarts.
RecoveryResult run_with_recovery(const RecoveryConfig& cfg,
                                 const std::vector<Body>& initial,
                                 io::FaultInjector* fault = nullptr);

}  // namespace ss::nbody
