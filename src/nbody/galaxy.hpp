// Galactic dynamics initial conditions (paper Sec 4.1 / ref [18]: the
// code's original applications were dark-halo collapse and galactic
// dynamics).
//
// A simple disk-plus-halo galaxy: an exponential disk of rotating stars
// embedded in a Plummer dark halo, with circular velocities set from the
// enclosed mass so the system starts near rotational equilibrium.
#pragma once

#include <vector>

#include "nbody/ic.hpp"

namespace ss::nbody {

struct GalaxyConfig {
  int disk_particles = 4000;
  int halo_particles = 8000;
  double disk_mass = 0.2;
  double halo_mass = 1.0;
  double disk_scale = 0.15;   ///< Exponential scale length.
  double disk_height = 0.02;  ///< Vertical sech^2-ish thickness.
  double halo_scale = 0.5;    ///< Plummer scale radius of the halo.
  double max_radius = 1.2;    ///< Disk truncation.
};

/// Sample the galaxy; the disk rotates about +z. Center of mass and
/// momentum are zeroed.
std::vector<Body> make_galaxy(const GalaxyConfig& cfg, support::Rng& rng);

/// Analytic circular speed at cylindrical radius r for the config's
/// spherically-averaged mass model (Plummer halo + spherical-equivalent
/// exponential disk) — the curve the sampled galaxy should rotate on.
double circular_velocity(const GalaxyConfig& cfg, double r);

/// Measured rotation curve: mass-weighted mean tangential speed of disk
/// particles in radial bins. Returns {r_center, v_mean} pairs.
std::vector<std::pair<double, double>> rotation_curve(
    const std::vector<Body>& bodies, int disk_particles, int bins = 12,
    double r_max = 1.2);

}  // namespace ss::nbody
