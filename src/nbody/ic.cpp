#include "nbody/ic.hpp"

#include <cmath>
#include <numbers>

namespace ss::nbody {

std::vector<Body> plummer_sphere(int n, Rng& rng, double scale_radius) {
  std::vector<Body> out;
  out.reserve(static_cast<std::size_t>(n));
  const double m = 1.0 / n;
  // Standard N-body units: a = 3*pi/16 for E=-1/4; we scale by the
  // caller's scale_radius relative to that.
  const double a = scale_radius * 3.0 * std::numbers::pi / 16.0;
  for (int i = 0; i < n; ++i) {
    // Radius from the cumulative mass distribution M(r) (reject the
    // far tail to keep the box bounded).
    double r;
    do {
      const double x = rng.uniform(1e-10, 1.0 - 1e-10);
      r = a / std::sqrt(std::pow(x, -2.0 / 3.0) - 1.0);
    } while (r > 20.0 * a);
    Body b;
    double ux, uy, uz;
    rng.unit_vector(ux, uy, uz);
    b.pos = {r * ux, r * uy, r * uz};

    // Velocity: q = v/v_esc sampled from g(q) = q^2 (1-q^2)^{7/2}.
    double q, g;
    do {
      q = rng.uniform();
      g = q * q * std::pow(1.0 - q * q, 3.5);
    } while (rng.uniform(0.0, 0.1) > g);
    const double vesc = std::sqrt(2.0) * std::pow(r * r + a * a, -0.25);
    rng.unit_vector(ux, uy, uz);
    const double v = q * vesc;
    b.vel = {v * ux, v * uy, v * uz};
    b.mass = m;
    out.push_back(b);
  }
  zero_center_of_mass(out);
  return out;
}

std::vector<Body> cold_sphere(int n, Rng& rng, double radius, double perturb) {
  std::vector<Body> out;
  out.reserve(static_cast<std::size_t>(n));
  const double m = 1.0 / n;
  for (int i = 0; i < n; ++i) {
    double ux, uy, uz;
    rng.unit_vector(ux, uy, uz);
    // Uniform density: r ~ cbrt(u); perturbation displaces radially.
    double r = radius * std::cbrt(rng.uniform());
    r *= 1.0 + perturb * rng.uniform(-1.0, 1.0);
    Body b;
    b.pos = {r * ux, r * uy, r * uz};
    b.vel = {0, 0, 0};
    b.mass = m;
    out.push_back(b);
  }
  return out;
}

std::vector<Body> uniform_cube(int n, Rng& rng, double box) {
  std::vector<Body> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Body b;
    b.pos = {rng.uniform(0.0, box), rng.uniform(0.0, box),
             rng.uniform(0.0, box)};
    b.mass = 1.0 / n;
    out.push_back(b);
  }
  return out;
}

void zero_center_of_mass(std::vector<Body>& bodies) {
  Vec3 com, mom;
  double mass = 0.0;
  for (const Body& b : bodies) {
    com += b.mass * b.pos;
    mom += b.mass * b.vel;
    mass += b.mass;
  }
  if (mass <= 0.0) return;
  com /= mass;
  mom /= mass;
  for (Body& b : bodies) {
    b.pos -= com;
    b.vel -= mom;
  }
}

std::vector<Source> sources_of(const std::vector<Body>& bodies) {
  std::vector<Source> s;
  s.reserve(bodies.size());
  for (const Body& b : bodies) s.push_back({b.pos, b.mass});
  return s;
}

}  // namespace ss::nbody
