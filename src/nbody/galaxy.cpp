#include "nbody/galaxy.hpp"

#include <cmath>
#include <numbers>

namespace ss::nbody {

namespace {

/// Enclosed mass of the exponential disk treated spherically:
/// M(<r) = M_d [1 - (1 + r/h) e^{-r/h}].
double disk_enclosed(double r, double mass, double scale) {
  const double x = r / scale;
  return mass * (1.0 - (1.0 + x) * std::exp(-x));
}

/// Enclosed mass of a Plummer sphere: M(<r) = M r^3 / (r^2 + a^2)^{3/2}.
double plummer_enclosed(double r, double mass, double scale) {
  return mass * r * r * r / std::pow(r * r + scale * scale, 1.5);
}

/// Invert the exponential-disk cumulative surface density by bisection.
double sample_disk_radius(double u, double scale, double max_radius) {
  const double total = 1.0 - (1.0 + max_radius / scale) *
                                 std::exp(-max_radius / scale);
  const double target = u * total;
  double lo = 0.0, hi = max_radius;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (disk_enclosed(mid, 1.0, scale) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double circular_velocity(const GalaxyConfig& cfg, double r) {
  if (r <= 0.0) return 0.0;
  const double m = disk_enclosed(r, cfg.disk_mass, cfg.disk_scale) +
                   plummer_enclosed(r, cfg.halo_mass, cfg.halo_scale);
  return std::sqrt(m / r);
}

std::vector<Body> make_galaxy(const GalaxyConfig& cfg, support::Rng& rng) {
  std::vector<Body> out;
  out.reserve(static_cast<std::size_t>(cfg.disk_particles +
                                       cfg.halo_particles));

  // Disk: exponential in radius, thin Gaussian vertically, circular
  // orbits with a small velocity dispersion.
  const double m_disk = cfg.disk_mass / cfg.disk_particles;
  for (int i = 0; i < cfg.disk_particles; ++i) {
    const double r = sample_disk_radius(rng.uniform(), cfg.disk_scale,
                                        cfg.max_radius);
    const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
    Body b;
    b.pos = {r * std::cos(phi), r * std::sin(phi),
             rng.normal(0.0, cfg.disk_height)};
    const double vc = circular_velocity(cfg, r);
    const double sigma = 0.1 * vc;
    b.vel = {-vc * std::sin(phi) + rng.normal(0.0, sigma),
             vc * std::cos(phi) + rng.normal(0.0, sigma),
             rng.normal(0.0, 0.5 * sigma)};
    b.mass = m_disk;
    out.push_back(b);
  }

  // Halo: Plummer positions with isotropic dispersion from the local
  // circular speed (an adequate quasi-equilibrium for demonstrations).
  const double m_halo = cfg.halo_mass / cfg.halo_particles;
  for (int i = 0; i < cfg.halo_particles; ++i) {
    double ux, uy, uz;
    rng.unit_vector(ux, uy, uz);
    const double u = rng.uniform(1e-9, 1.0 - 1e-9);
    double r = cfg.halo_scale / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    r = std::min(r, 4.0 * cfg.halo_scale);
    Body b;
    b.pos = {r * ux, r * uy, r * uz};
    const double sigma = 0.5 * circular_velocity(cfg, std::max(r, 1e-3));
    b.vel = {rng.normal(0.0, sigma), rng.normal(0.0, sigma),
             rng.normal(0.0, sigma)};
    b.mass = m_halo;
    out.push_back(b);
  }
  zero_center_of_mass(out);
  return out;
}

std::vector<std::pair<double, double>> rotation_curve(
    const std::vector<Body>& bodies, int disk_particles, int bins,
    double r_max) {
  std::vector<double> vsum(static_cast<std::size_t>(bins), 0.0);
  std::vector<double> msum(static_cast<std::size_t>(bins), 0.0);
  for (int i = 0; i < disk_particles &&
                  i < static_cast<int>(bodies.size());
       ++i) {
    const auto& b = bodies[static_cast<std::size_t>(i)];
    const double r = std::hypot(b.pos.x, b.pos.y);
    if (r <= 0.0 || r >= r_max) continue;
    // Tangential speed about z.
    const double vt = (b.pos.x * b.vel.y - b.pos.y * b.vel.x) / r;
    const int bin = std::min(static_cast<int>(r / r_max * bins), bins - 1);
    vsum[static_cast<std::size_t>(bin)] += b.mass * vt;
    msum[static_cast<std::size_t>(bin)] += b.mass;
  }
  std::vector<std::pair<double, double>> out;
  for (int b = 0; b < bins; ++b) {
    if (msum[static_cast<std::size_t>(b)] <= 0.0) continue;
    out.emplace_back((b + 0.5) * r_max / bins,
                     vsum[static_cast<std::size_t>(b)] /
                         msum[static_cast<std::size_t>(b)]);
  }
  return out;
}

}  // namespace ss::nbody
