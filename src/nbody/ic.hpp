// Initial-condition generators for the N-body applications.
//
// The "standard simulation problem" used for the treecode's historical
// performance table (paper Table 6) is a spherical distribution of
// particles representing the initial evolution of a cosmological N-body
// simulation: here, a cold, slightly perturbed uniform sphere that
// collapses under self-gravity. The Plummer model is the classical
// stellar-dynamics test case used by the quickstart example.
#pragma once

#include <vector>

#include "gravity/kernels.hpp"
#include "support/rng.hpp"

namespace ss::nbody {

using gravity::Source;
using support::Rng;
using support::Vec3;

/// One particle with full phase-space state.
struct Body {
  Vec3 pos;
  Vec3 vel;
  double mass = 0.0;
};

/// Plummer (1911) sphere in virial equilibrium, standard N-body units
/// (G = M = 1, E = -1/4); positions by inverse-transform sampling of the
/// cumulative mass profile, velocities by von Neumann rejection from the
/// isotropic distribution function (Aarseth, Henon & Wielen 1974).
std::vector<Body> plummer_sphere(int n, Rng& rng, double scale_radius = 1.0);

/// Cold uniform sphere of total mass 1 and the given radius, with small
/// density perturbations (relative amplitude `perturb`) and zero initial
/// velocities — the Table 6 "spherical distribution" benchmark problem.
std::vector<Body> cold_sphere(int n, Rng& rng, double radius = 1.0,
                              double perturb = 0.1);

/// Homogeneous cube in [0, box)^3 with unit total mass, cold.
std::vector<Body> uniform_cube(int n, Rng& rng, double box = 1.0);

/// Remove net momentum and move the center of mass to the origin.
void zero_center_of_mass(std::vector<Body>& bodies);

/// Strip phase-space state down to the (position, mass) view the tree
/// consumes.
std::vector<Source> sources_of(const std::vector<Body>& bodies);

}  // namespace ss::nbody
