// Leapfrog (kick-drift-kick) time integration and diagnostics, with both a
// direct O(N^2) force baseline and the hashed oct-tree solver.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "hot/parallel.hpp"
#include "hot/tree.hpp"
#include "nbody/ic.hpp"
#include "vmpi/comm.hpp"

namespace ss::nbody {

using gravity::Accel;

/// Force engine interface: fills `acc` (one entry per body).
using ForceFunc =
    std::function<void(const std::vector<Body>&, std::vector<Accel>&)>;

/// Direct-summation baseline force (the algorithm the treecode replaces).
void direct_forces(const std::vector<Body>& bodies, double eps2,
                   gravity::RsqrtMethod method, std::vector<Accel>& acc);

struct TreeForceConfig {
  double theta = 0.6;
  double eps2 = 1e-6;
  gravity::RsqrtMethod method = gravity::RsqrtMethod::libm;
  /// treecode (default) or the dual-tree FMM backend.
  hot::FarField far_field = hot::FarField::treecode;
  int p_order = 4;  ///< FMM expansion order (ignored by the treecode).
  hot::TreeConfig tree;
};

/// Tree-based force evaluation (rebuilds the tree each call). Stats, if
/// given, accumulate across calls.
void tree_forces(const std::vector<Body>& bodies, const TreeForceConfig& cfg,
                 std::vector<Accel>& acc, hot::TraverseStats* stats = nullptr);

struct Energies {
  double kinetic = 0.0;
  double potential = 0.0;  ///< 0.5 * sum m_i * phi_i (pairwise counted once)
  double total() const { return kinetic + potential; }
};

Energies energies(const std::vector<Body>& bodies,
                  const std::vector<Accel>& acc);

Vec3 total_momentum(const std::vector<Body>& bodies);
Vec3 total_angular_momentum(const std::vector<Body>& bodies);

/// Serial KDK leapfrog driver.
class Leapfrog {
 public:
  Leapfrog(std::vector<Body> bodies, ForceFunc force);

  /// Advance by `steps` steps of size dt. Forces are evaluated once per
  /// step (the opening kick reuses the closing kick's evaluation).
  void step(double dt, int steps = 1);

  const std::vector<Body>& bodies() const { return bodies_; }
  const std::vector<Accel>& accel() const { return acc_; }
  double time() const { return time_; }
  Energies current_energies() const { return energies(bodies_, acc_); }

 private:
  std::vector<Body> bodies_;
  std::vector<Accel> acc_;
  ForceFunc force_;
  double time_ = 0.0;
};

/// Distributed KDK leapfrog routed through a persistent hot::GravityEngine.
///
/// Each rank owns a share of the bodies; every force evaluation
/// redecomposes along the Morton curve and the velocities ride through the
/// exchange as the engine's aux payload, so the phase-space state stays
/// consistent with the (re)distributed positions. Because the engine
/// persists across steps, step n+1's remote-cell traffic is prefetched
/// from step n's request ledger.
class ParallelLeapfrog {
 public:
  /// Everything a rank needs to resume integration exactly where a
  /// previous run left off: phase-space state, the matching forces (so
  /// the next opening kick reuses them, as the uninterrupted run would),
  /// per-body work weights (next decomposition), the engine's request
  /// ledger (next prefetch seed) and the simulation clock.
  struct State {
    std::vector<Body> bodies;
    std::vector<Accel> acc;
    std::vector<double> work;
    std::vector<morton::Key> ledger;
    double time = 0.0;
  };

  /// `bodies` is this rank's initial share (any distribution). The first
  /// force evaluation (and load balance) happens here.
  ParallelLeapfrog(ss::vmpi::Comm& comm, std::vector<Body> bodies,
                   const hot::ParallelConfig& cfg = {});

  /// Restore from a checkpointed State. When `state.acc` matches the
  /// bodies the initial force evaluation is skipped entirely (the saved
  /// forces are the ones the closing kick of the checkpointed step used,
  /// so resuming is bit-exact); otherwise — e.g. a slice re-assembled for
  /// a different rank count — one evaluation runs to establish forces.
  ParallelLeapfrog(ss::vmpi::Comm& comm, State state,
                   const hot::ParallelConfig& cfg = {});

  /// Advance by `steps` steps of size dt. One engine evaluation per step;
  /// the opening kick reuses the closing kick's forces.
  void step(double dt, int steps = 1);

  /// This rank's current bodies (redistributed; Morton-sorted).
  const std::vector<Body>& bodies() const { return bodies_; }
  const std::vector<Accel>& accel() const { return acc_; }
  double time() const { return time_; }
  Energies current_energies() const { return energies(bodies_, acc_); }
  /// Stats of the most recent engine evaluation.
  const hot::ParallelStats& last_stats() const { return last_stats_; }
  std::uint64_t engine_steps() const { return engine_.steps_completed(); }

  /// Snapshot everything needed to resume exactly here (copies; call
  /// between step() calls, i.e. after a closing kick).
  State checkpoint_state() const;

  /// Raw byte views of the live state arrays — the integrity subsystem's
  /// registration targets (fault injection, slab-CRC guarding). Spans go
  /// stale on any step() or refresh_forces() call: bodies redistribute
  /// and the vectors may reallocate, so re-take them every boundary.
  std::span<std::byte> bodies_bytes() {
    return std::as_writable_bytes(std::span<Body>(bodies_));
  }
  std::span<std::byte> acc_bytes() {
    return std::as_writable_bytes(std::span<Accel>(acc_));
  }
  std::span<std::byte> work_bytes() {
    return std::as_writable_bytes(std::span<double>(work_));
  }

  /// The underlying engine (integrity hook: its tree is audited and its
  /// cell arena registered as a corruption target).
  hot::GravityEngine& engine() { return engine_; }

  /// Re-derive forces from the current positions (one engine evaluation;
  /// collective — every rank must call). Tier-2 repair: a corrupted
  /// acc/work array is recomputable state, unlike the phase space.
  void refresh_forces() { evaluate(); }

 private:
  void evaluate();

  ss::vmpi::Comm& comm_;
  hot::GravityEngine engine_;
  std::vector<Body> bodies_;
  std::vector<Accel> acc_;
  std::vector<double> work_;  ///< Per-body flops, next decomposition's weights.
  hot::ParallelStats last_stats_;
  double time_ = 0.0;
};

}  // namespace ss::nbody
