#include "nbody/outofcore.hpp"

#include "io/crc32.hpp"
#include "obs/obs.hpp"
#include "support/timer.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace ss::nbody {

static_assert(std::is_trivially_copyable_v<Body>,
              "Body must serialize by memcpy");

namespace {

std::string slab_name(std::size_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "slab%08zu", i);
  return buf;
}

}  // namespace

OutOfCoreStore::OutOfCoreStore(std::filesystem::path path,
                               std::size_t bodies_per_slab)
    : path_(std::move(path)), slab_(bodies_per_slab) {
  if (slab_ == 0) {
    throw std::invalid_argument("OutOfCoreStore: slab size must be positive");
  }
  writer_ = std::make_unique<io::BlockFileWriter>(path_);
}

OutOfCoreStore::~OutOfCoreStore() {
  reader_.close();
  writer_.reset();
  std::error_code ec;
  std::filesystem::remove(path_, ec);  // best-effort cleanup
}

void OutOfCoreStore::write_slab(std::span<const Body> slab) {
  writer_->add(slab_name(slab_infos_.size()), io::DType::raw,
               static_cast<std::uint32_t>(sizeof(Body)), slab.size(),
               {reinterpret_cast<const std::byte*>(slab.data()),
                slab.size() * sizeof(Body)});
  slab_infos_.push_back(writer_->blocks().back());
  count_ += slab.size();
}

void OutOfCoreStore::append(std::span<const Body> bodies) {
  if (finished_) {
    throw std::logic_error("OutOfCoreStore: append after finish");
  }
  pending_.insert(pending_.end(), bodies.begin(), bodies.end());
  while (pending_.size() >= slab_) {
    write_slab(std::span<const Body>(pending_.data(), slab_));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(slab_));
  }
}

void OutOfCoreStore::finish() {
  if (finished_) return;
  if (!pending_.empty()) {
    write_slab(pending_);
    pending_.clear();
  }
  const std::uint64_t meta[2] = {static_cast<std::uint64_t>(count_),
                                 static_cast<std::uint64_t>(slab_)};
  writer_->add("count", io::DType::u64, sizeof(std::uint64_t), 1,
               {reinterpret_cast<const std::byte*>(&meta[0]),
                sizeof(std::uint64_t)});
  writer_->add("bodies_per_slab", io::DType::u64, sizeof(std::uint64_t), 1,
               {reinterpret_cast<const std::byte*>(&meta[1]),
                sizeof(std::uint64_t)});
  writer_->finish();
  reader_.open(path_, std::ios::binary);
  if (!reader_) {
    throw io::IoError("OutOfCoreStore: cannot reopen " + path_.string());
  }
  finished_ = true;
}

std::size_t OutOfCoreStore::slabs() const { return slab_infos_.size(); }

std::vector<Body> OutOfCoreStore::read_slab(std::size_t i) const {
  if (!finished_) {
    throw std::logic_error(
        "OutOfCoreStore: read_slab before finish() — the block index is not "
        "on disk yet; call finish() after the last append()");
  }
  if (i >= slabs()) {
    throw std::out_of_range("OutOfCoreStore: slab index");
  }
  const io::BlockInfo& info = slab_infos_[i];
  std::vector<Body> out(info.count);
  reader_.clear();
  reader_.seekg(static_cast<std::streamoff>(info.offset));
  reader_.read(reinterpret_cast<char*>(out.data()),
               static_cast<std::streamsize>(info.payload_bytes));
  if (!reader_) {
    throw io::FormatError("OutOfCoreStore: short read of " + info.name +
                          " from " + path_.string());
  }
  const std::uint32_t crc =
      io::crc32(out.data(), static_cast<std::size_t>(info.payload_bytes));
  if (crc != info.payload_crc) {
    if (obs::Counter* c = obs::counter("io.crc_failures")) c->add(1);
    throw io::CrcError("OutOfCoreStore: CRC mismatch in " + info.name +
                       " of " + path_.string());
  }
  return out;
}

void OutOfCoreStore::for_each_slab(
    const std::function<void(std::size_t, std::span<const Body>)>& fn) const {
  for (std::size_t i = 0; i < slabs(); ++i) {
    const auto slab = read_slab(i);
    fn(i, slab);
  }
}

std::uint64_t OutOfCoreStore::bytes() const {
  return static_cast<std::uint64_t>(count_) * sizeof(Body);
}

std::uint64_t OutOfCoreStore::file_bytes() const { return writer_->bytes(); }

std::vector<gravity::Accel> out_of_core_forces(const OutOfCoreStore& store,
                                               double eps2,
                                               OutOfCoreForceStats* stats) {
  std::vector<gravity::Accel> out(store.size());
  support::WallTimer total;
  double read_secs = 0.0;
  std::uint64_t bytes = 0;

  for (std::size_t ts = 0; ts < store.slabs(); ++ts) {
    support::WallTimer rt;
    const auto targets = store.read_slab(ts);
    read_secs += rt.seconds();
    bytes += targets.size() * sizeof(Body);
    const std::size_t t0 = ts * store.bodies_per_slab();

    for (std::size_t ss = 0; ss < store.slabs(); ++ss) {
      support::WallTimer rs;
      const auto src_bodies = store.read_slab(ss);
      read_secs += rs.seconds();
      bytes += src_bodies.size() * sizeof(Body);
      std::vector<gravity::Source> src;
      src.reserve(src_bodies.size());
      for (const auto& b : src_bodies) src.push_back({b.pos, b.mass});
      for (std::size_t t = 0; t < targets.size(); ++t) {
        out[t0 + t] += gravity::interact<gravity::RsqrtMethod::libm>(
            targets[t].pos, src, eps2);
      }
      if (stats) {
        stats->interactions += targets.size() * src.size();
      }
    }
  }
  if (stats) {
    stats->bytes_read = bytes;
    stats->read_seconds = read_secs;
  }
  return out;
}

}  // namespace ss::nbody
