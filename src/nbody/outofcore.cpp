#include "nbody/outofcore.hpp"

#include "support/timer.hpp"

#include <cstring>
#include <stdexcept>

namespace ss::nbody {

static_assert(std::is_trivially_copyable_v<Body>,
              "Body must serialize by memcpy");

OutOfCoreStore::OutOfCoreStore(std::filesystem::path path,
                               std::size_t bodies_per_slab)
    : path_(std::move(path)), slab_(bodies_per_slab) {
  if (slab_ == 0) {
    throw std::invalid_argument("OutOfCoreStore: slab size must be positive");
  }
  file_.open(path_, std::ios::binary | std::ios::in | std::ios::out |
                        std::ios::trunc);
  if (!file_) {
    throw std::runtime_error("OutOfCoreStore: cannot open " + path_.string());
  }
}

OutOfCoreStore::~OutOfCoreStore() {
  file_.close();
  std::error_code ec;
  std::filesystem::remove(path_, ec);  // best-effort cleanup
}

void OutOfCoreStore::append(std::span<const Body> bodies) {
  if (finished_) {
    throw std::logic_error("OutOfCoreStore: append after finish");
  }
  pending_.insert(pending_.end(), bodies.begin(), bodies.end());
  while (pending_.size() >= slab_) {
    file_.write(reinterpret_cast<const char*>(pending_.data()),
                static_cast<std::streamsize>(slab_ * sizeof(Body)));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(slab_));
    count_ += slab_;
  }
}

void OutOfCoreStore::finish() {
  if (finished_) return;
  if (!pending_.empty()) {
    file_.write(reinterpret_cast<const char*>(pending_.data()),
                static_cast<std::streamsize>(pending_.size() * sizeof(Body)));
    count_ += pending_.size();
    pending_.clear();
  }
  file_.flush();
  finished_ = true;
}

std::size_t OutOfCoreStore::slabs() const {
  return (count_ + slab_ - 1) / slab_;
}

std::vector<Body> OutOfCoreStore::read_slab(std::size_t i) const {
  if (!finished_) {
    throw std::logic_error("OutOfCoreStore: read before finish");
  }
  if (i >= slabs()) {
    throw std::out_of_range("OutOfCoreStore: slab index");
  }
  const std::size_t first = i * slab_;
  const std::size_t n = std::min(slab_, count_ - first);
  std::vector<Body> out(n);
  file_.seekg(static_cast<std::streamoff>(first * sizeof(Body)));
  file_.read(reinterpret_cast<char*>(out.data()),
             static_cast<std::streamsize>(n * sizeof(Body)));
  if (!file_) {
    throw std::runtime_error("OutOfCoreStore: short read");
  }
  return out;
}

void OutOfCoreStore::for_each_slab(
    const std::function<void(std::size_t, std::span<const Body>)>& fn) const {
  for (std::size_t i = 0; i < slabs(); ++i) {
    const auto slab = read_slab(i);
    fn(i, slab);
  }
}

std::uint64_t OutOfCoreStore::bytes() const {
  return static_cast<std::uint64_t>(count_) * sizeof(Body);
}

std::vector<gravity::Accel> out_of_core_forces(const OutOfCoreStore& store,
                                               double eps2,
                                               OutOfCoreForceStats* stats) {
  std::vector<gravity::Accel> out(store.size());
  support::WallTimer total;
  double read_secs = 0.0;
  std::uint64_t bytes = 0;

  for (std::size_t ts = 0; ts < store.slabs(); ++ts) {
    support::WallTimer rt;
    const auto targets = store.read_slab(ts);
    read_secs += rt.seconds();
    bytes += targets.size() * sizeof(Body);
    const std::size_t t0 = ts * store.bodies_per_slab();

    for (std::size_t ss = 0; ss < store.slabs(); ++ss) {
      support::WallTimer rs;
      const auto src_bodies = store.read_slab(ss);
      read_secs += rs.seconds();
      bytes += src_bodies.size() * sizeof(Body);
      std::vector<gravity::Source> src;
      src.reserve(src_bodies.size());
      for (const auto& b : src_bodies) src.push_back({b.pos, b.mass});
      for (std::size_t t = 0; t < targets.size(); ++t) {
        out[t0 + t] += gravity::interact<gravity::RsqrtMethod::libm>(
            targets[t].pos, src, eps2);
      }
      if (stats) {
        stats->interactions += targets.size() * src.size();
      }
    }
  }
  if (stats) {
    stats->bytes_read = bytes;
    stats->read_seconds = read_secs;
  }
  return out;
}

}  // namespace ss::nbody
