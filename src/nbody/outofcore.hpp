// Out-of-core particle store (paper Sec 4.3 cites Salmon & Warren 1997:
// "Even larger simulations are possible using the out-of-core version of
// our code").
//
// Bodies live in a binary file in Morton-sorted slabs; the application
// maps a bounded working set of slabs into memory at a time and streams
// through the population. This is a minimal but real implementation: it
// exercises the same slab-sequential access pattern the out-of-core
// treecode relies on, and the cosmology example can checkpoint through it.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "nbody/ic.hpp"

namespace ss::nbody {

class OutOfCoreStore {
 public:
  /// Creates (truncates) the backing file and fixes the slab size.
  OutOfCoreStore(std::filesystem::path path, std::size_t bodies_per_slab);
  ~OutOfCoreStore();

  OutOfCoreStore(const OutOfCoreStore&) = delete;
  OutOfCoreStore& operator=(const OutOfCoreStore&) = delete;

  /// Append bodies; they are buffered and written slab-by-slab.
  void append(std::span<const Body> bodies);
  /// Flush any partial trailing slab. Must be called before reading.
  void finish();

  std::size_t size() const { return count_; }
  std::size_t slabs() const;
  std::size_t bodies_per_slab() const { return slab_; }

  /// Read slab `i` (the last slab may be short).
  std::vector<Body> read_slab(std::size_t i) const;

  /// Stream every body through `fn` slab-sequentially.
  void for_each_slab(
      const std::function<void(std::size_t slab_index,
                               std::span<const Body>)>& fn) const;

  /// Total bytes on disk.
  std::uint64_t bytes() const;

  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
  std::size_t slab_;
  std::size_t count_ = 0;
  std::vector<Body> pending_;
  mutable std::fstream file_;
  bool finished_ = false;
};

/// Out-of-core force evaluation (the pattern of the paper's cited
/// out-of-core treecode): for every target slab, stream all source slabs
/// from disk and accumulate the direct interactions, so the working set
/// is two slabs regardless of N. Returns accelerations in store order.
struct OutOfCoreForceStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t interactions = 0;
  double read_seconds = 0.0;  ///< Time spent in slab reads.
};
std::vector<gravity::Accel> out_of_core_forces(const OutOfCoreStore& store,
                                               double eps2,
                                               OutOfCoreForceStats* stats =
                                                   nullptr);

}  // namespace ss::nbody
