// Out-of-core particle store (paper Sec 4.3 cites Salmon & Warren 1997:
// "Even larger simulations are possible using the out-of-core version of
// our code").
//
// Bodies live in Morton-sorted slabs inside one self-describing block
// file (io/blockfile.hpp): each slab is a named raw block with its own
// CRC32, streamed to disk by BlockFileWriter so the working set stays one
// slab regardless of N. Reads seek straight to a slab's payload and
// verify its checksum, so silent disk corruption surfaces as a typed
// io::CrcError at exactly the slab that was damaged. This exercises the
// same slab-sequential access pattern the out-of-core treecode relies
// on, and the cosmology example can checkpoint through it.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "io/blockfile.hpp"
#include "nbody/ic.hpp"

namespace ss::nbody {

class OutOfCoreStore {
 public:
  /// Creates (truncates) the backing file and fixes the slab size.
  OutOfCoreStore(std::filesystem::path path, std::size_t bodies_per_slab);
  ~OutOfCoreStore();

  OutOfCoreStore(const OutOfCoreStore&) = delete;
  OutOfCoreStore& operator=(const OutOfCoreStore&) = delete;

  /// Append bodies; they are buffered and written slab-by-slab.
  void append(std::span<const Body> bodies);
  /// Flush any partial trailing slab and write the block index + header.
  /// Must be called before reading: until then the file has no index and
  /// read_slab() throws std::logic_error with a message saying so.
  void finish();

  std::size_t size() const { return count_; }
  std::size_t slabs() const;
  std::size_t bodies_per_slab() const { return slab_; }

  /// Read slab `i` (the last slab may be short), verifying its payload
  /// CRC. Throws io::CrcError on corruption.
  std::vector<Body> read_slab(std::size_t i) const;

  /// Stream every body through `fn` slab-sequentially.
  void for_each_slab(
      const std::function<void(std::size_t slab_index,
                               std::span<const Body>)>& fn) const;

  /// Total body payload bytes (excludes block-format framing).
  std::uint64_t bytes() const;
  /// Total container bytes on disk after finish() (header + payloads +
  /// index).
  std::uint64_t file_bytes() const;

  const std::filesystem::path& path() const { return path_; }

 private:
  void write_slab(std::span<const Body> slab);

  std::filesystem::path path_;
  std::size_t slab_;
  std::size_t count_ = 0;
  std::vector<Body> pending_;
  std::unique_ptr<io::BlockFileWriter> writer_;
  std::vector<io::BlockInfo> slab_infos_;  ///< One entry per slab block.
  mutable std::ifstream reader_;           ///< Opened by finish().
  bool finished_ = false;
};

/// Out-of-core force evaluation (the pattern of the paper's cited
/// out-of-core treecode): for every target slab, stream all source slabs
/// from disk and accumulate the direct interactions, so the working set
/// is two slabs regardless of N. Returns accelerations in store order.
struct OutOfCoreForceStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t interactions = 0;
  double read_seconds = 0.0;  ///< Time spent in slab reads.
};
std::vector<gravity::Accel> out_of_core_forces(const OutOfCoreStore& store,
                                               double eps2,
                                               OutOfCoreForceStats* stats =
                                                   nullptr);

}  // namespace ss::nbody
