#include "hw/bom.hpp"

#include <cmath>
#include <stdexcept>

namespace ss::hw {

BillOfMaterials::BillOfMaterials(std::string name, int nodes,
                                 std::vector<LineItem> items)
    : name_(std::move(name)), nodes_(nodes), items_(std::move(items)) {
  if (nodes_ <= 0) throw std::invalid_argument("BOM: nodes must be positive");
}

double BillOfMaterials::total() const {
  double t = 0.0;
  for (const auto& i : items_) t += i.extended;
  return t;
}

double BillOfMaterials::total_matching(const std::string& needle) const {
  double t = 0.0;
  for (const auto& i : items_) {
    if (i.description.find(needle) != std::string::npos) t += i.extended;
  }
  return t;
}

const BillOfMaterials& space_simulator_bom() {
  static const BillOfMaterials bom(
      "Space Simulator (Sept 2002)", 294,
      {
          {294, 280, 82320, "Shuttle SS51G mini system (bare)"},
          {294, 254, 74676, "Intel P4/2.53GHz, 533MHz FSB, 512k cache"},
          {588, 118, 69384, "512Mb DDR333 SDRAM (1024Mb per node)"},
          {294, 95, 27930, "3com 3c996B-T Gigabit Ethernet PCI card"},
          {294, 83, 24402, "Maxtor 4K080H4 80Gb 5400rpm Hard Disk"},
          {294, 35, 10290, "Assembly Labor/Extended Warranty"},
          {0, 0, 4000, "Cat6 Ethernet cables"},
          {0, 0, 3300, "Wire shelving/switch rack"},
          {0, 0, 1378, "Power strips"},
          {1, 186175, 186175, "Foundry FastIron 1500+800, 304 Gigabit ports"},
      });
  return bom;
}

const BillOfMaterials& loki_bom() {
  static const BillOfMaterials bom(
      "Loki (Sept 1996)", 16,
      {
          {16, 595, 9520, "Intel Pentium Pro 200 Mhz CPU/256k cache"},
          {16, 15, 240, "Heat Sink and Fan"},
          {16, 295, 4720, "Intel VS440FX (Venus) motherboard"},
          {64, 235, 15040, "8x36 60ns parity FPM SIMMS (128 Mb per node)"},
          {16, 359, 5744, "Quantum Fireball 3240 Mbyte IDE Hard Drive"},
          {16, 85, 1360, "D-Link DFE-500TX 100 Mb Fast Ethernet PCI Card"},
          {16, 129, 2064, "SMC EtherPower 10/100 Fast Ethernet PCI Card"},
          {16, 59, 944, "S3 Trio-64 1Mb PCI Video Card"},
          {16, 119, 1904, "ATX Case"},
          {2, 4794, 9588, "3Com SuperStack II Switch 3000, 8-port Fast Ethernet"},
          {0, 0, 255, "Ethernet cables"},
      });
  return bom;
}

double PricePerformance::dollars_per_linpack_mflops() const {
  return space_simulator_bom().total() / (linpack_gflops * 1000.0);
}

double PricePerformance::node_cost_without_network() const {
  const auto& bom = space_simulator_bom();
  const double network = bom.total_matching("Ethernet") +
                         bom.total_matching("Foundry") +
                         bom.total_matching("rack") +
                         bom.total_matching("Power strips");
  return (bom.total() - network) / bom.nodes();
}

double PricePerformance::dollars_per_specfp() const {
  return node_cost_without_network() / 742.0;
}

double moores_law_ratio(double perf_old, double price_old, double perf_new,
                        double price_new, double years) {
  const double actual = (perf_new / price_new) / (perf_old / price_old);
  const double expected = std::pow(2.0, years / 1.5);
  return actual / expected;
}

namespace {

const ComponentTrend kTrends[] = {
    // Loki: 3240 MB disk at $359 => $111/GB. SS: 80 GB at $83 => ~$1/GB.
    {"disk", 359.0 / 3.240, 83.0 / 80.0, "$/GB"},
    // Loki: 128 MB/node at $940/node => $7.35/MB. SS: $236/1024MB => $0.23.
    {"memory", 15040.0 / (16.0 * 128.0), 2.0 * 118.0 / 1024.0, "$/MB"},
};

}  // namespace

std::span<const ComponentTrend> component_trends() { return kTrends; }

}  // namespace ss::hw
