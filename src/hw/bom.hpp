// Bills of materials and price/performance arithmetic (paper Tables 1 and
// 7, Fig 3's dollars-per-Mflop milestone, and the Moore's-law comparisons
// of Sec 5).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace ss::hw {

struct LineItem {
  double qty = 0.0;
  double unit_price = 0.0;  ///< 0 when only an extended price was quoted.
  double extended = 0.0;    ///< qty * unit, or the lump sum.
  std::string description;
};

class BillOfMaterials {
 public:
  BillOfMaterials(std::string name, int nodes, std::vector<LineItem> items);

  const std::string& name() const { return name_; }
  int nodes() const { return nodes_; }
  std::span<const LineItem> items() const { return items_; }

  double total() const;
  double per_node() const { return total() / nodes_; }

  /// Sum of items whose description matches `needle` (case-sensitive
  /// substring).
  double total_matching(const std::string& needle) const;

 private:
  std::string name_;
  int nodes_;
  std::vector<LineItem> items_;
};

/// Table 1: the Space Simulator (September 2002), $483,855 total.
const BillOfMaterials& space_simulator_bom();
/// Table 7: Loki (September 1996), $51,379 total.
const BillOfMaterials& loki_bom();

/// Price/performance figures quoted in the paper.
struct PricePerformance {
  double linpack_gflops = 757.1;       ///< April 2003 result
  double linpack_gflops_2002 = 665.1;  ///< October 2002 result
  double dollars_per_linpack_mflops() const;
  double node_cost_without_network() const;  ///< $888 per the paper
  double dollars_per_specfp() const;         ///< ~$1.20
};

/// Moore's-law comparison of two machines separated by `years`: the
/// expected improvement is 2^(years/1.5) at equal price; returns the
/// actual-to-expected ratio for a measured performance pair (>1 means the
/// improvement beat Moore's law).
double moores_law_ratio(double perf_old, double price_old, double perf_new,
                        double price_new, double years);

/// Sec 5's per-component price analysis rows.
struct ComponentTrend {
  std::string component;
  double loki_price_per_unit;  ///< e.g. $ per GB disk, $ per MB ram
  double ss_price_per_unit;
  std::string unit;
};
std::span<const ComponentTrend> component_trends();

}  // namespace ss::hw
