#include "hw/reliability.hpp"

#include <array>
#include <cmath>

namespace ss::hw {

namespace {

// Rates calibrated from the paper's counts over 294 nodes and nine
// months: install_defect_prob = defects / parts, and the exponential rate
// chosen so the expected nine-month failure count among parts that
// survived burn-in equals the paper's count exactly:
//   rate = -ln(1 - failures / surviving_parts) / months.
constexpr double kMonths = 9.0;

double calibrated_rate(double failures, double surviving_parts) {
  if (failures <= 0.0) return 0.0;
  return -std::log(1.0 - failures / surviving_parts) / kMonths;
}

ComponentClass make_component(std::string name, int parts_per_node,
                              int install, int nine_month) {
  const double parts = 294.0 * parts_per_node;
  ComponentClass c;
  c.name = std::move(name);
  c.parts_per_node = parts_per_node;
  c.install_defect_prob = install / parts;
  c.monthly_failure_rate = calibrated_rate(nine_month, parts - install);
  c.paper_install_failures = install;
  c.paper_nine_month_failures = nine_month;
  return c;
}

const std::array<ComponentClass, 7>& components_table() {
  static const std::array<ComponentClass, 7> kComponents = {{
      make_component("power supply", 1, 3, 2),
      make_component("disk drive", 1, 6, 16),
      make_component("motherboard", 1, 4, 1),
      make_component("DRAM stick", 2, 6, 3),
      make_component("ethernet card", 1, 1, 0),
      make_component("case fan", 1, 0, 1),
      make_component("CPU (fanless heat pipe)", 1, 0, 0),
  }};
  return kComponents;
}

}  // namespace

std::span<const ComponentClass> space_simulator_components() {
  return components_table();
}

std::uint64_t FailureCounts::total_install() const {
  std::uint64_t t = 0;
  for (auto v : install) t += v;
  return t;
}

std::uint64_t FailureCounts::total_operational() const {
  std::uint64_t t = 0;
  for (auto v : operational) t += v;
  return t;
}

FailureCounts simulate_failures(std::span<const ComponentClass> components,
                                int nodes, double months,
                                ss::support::Rng& rng) {
  FailureCounts out;
  out.install.resize(components.size(), 0);
  out.operational.resize(components.size(), 0);
  for (std::size_t c = 0; c < components.size(); ++c) {
    const auto& comp = components[c];
    const int parts = nodes * comp.parts_per_node;
    for (int i = 0; i < parts; ++i) {
      if (comp.install_defect_prob > 0.0 &&
          rng.uniform() < comp.install_defect_prob) {
        ++out.install[c];
        continue;  // defective part was replaced before operation
      }
      if (comp.monthly_failure_rate > 0.0 &&
          rng.exponential(comp.monthly_failure_rate) < months) {
        ++out.operational[c];
      }
    }
  }
  return out;
}

FailureCounts expected_failures(std::span<const ComponentClass> components,
                                int nodes, double months) {
  FailureCounts out;
  out.install.resize(components.size(), 0);
  out.operational.resize(components.size(), 0);
  for (std::size_t c = 0; c < components.size(); ++c) {
    const auto& comp = components[c];
    const double parts = static_cast<double>(nodes) * comp.parts_per_node;
    out.install[c] = static_cast<std::uint64_t>(
        std::llround(parts * comp.install_defect_prob));
    // Exponential lifetimes: expected failures within `months`.
    const double p_fail = 1.0 - std::exp(-comp.monthly_failure_rate * months);
    out.operational[c] = static_cast<std::uint64_t>(std::llround(
        parts * (1.0 - comp.install_defect_prob) * p_fail));
  }
  return out;
}

double cluster_mtbf_hours(std::span<const ComponentClass> components,
                          int nodes) {
  double rate_per_month = 0.0;  // cluster-wide failures per month
  for (const auto& comp : components) {
    rate_per_month += comp.monthly_failure_rate *
                      static_cast<double>(nodes) * comp.parts_per_node;
  }
  if (rate_per_month <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return (30.0 * 24.0) / rate_per_month;
}

double cluster_survival_probability(
    std::span<const ComponentClass> components, int nodes, double hours) {
  const double months = hours / (30.0 * 24.0);
  double log_p = 0.0;
  for (const auto& comp : components) {
    const double parts = static_cast<double>(nodes) * comp.parts_per_node;
    log_p += -comp.monthly_failure_rate * months * parts;
  }
  return std::exp(log_p);
}

}  // namespace ss::hw
