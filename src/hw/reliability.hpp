// Reliability model of the cluster (paper Sec 2.1).
//
// The paper reports two failure tables: defects found during installation
// and burn-in, and failures over the following nine months of operation.
// We model each component class with an installation defect probability
// (per part) and an operational failure rate (per part-month, exponential
// lifetimes), calibrated so the expected counts match the paper, then
// Monte Carlo the 294-node cluster to show the distribution around them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace ss::hw {

struct ComponentClass {
  std::string name;
  int parts_per_node = 1;
  double install_defect_prob = 0.0;   ///< Probability a part is DOA.
  double monthly_failure_rate = 0.0;  ///< Exponential rate per part-month.
  int paper_install_failures = 0;     ///< Sec 2.1, installation table.
  int paper_nine_month_failures = 0;  ///< Sec 2.1, operational table.
};

/// Component classes of the Space Simulator with rates calibrated to the
/// paper's counts over 294 nodes and nine months.
std::span<const ComponentClass> space_simulator_components();

struct FailureCounts {
  std::vector<std::uint64_t> install;     ///< Per component class.
  std::vector<std::uint64_t> operational;
  std::uint64_t total_install() const;
  std::uint64_t total_operational() const;
};

/// One Monte Carlo realization of the cluster's failure history.
FailureCounts simulate_failures(std::span<const ComponentClass> components,
                                int nodes, double months,
                                ss::support::Rng& rng);

/// Expected counts (closed form) for comparison with the paper.
FailureCounts expected_failures(std::span<const ComponentClass> components,
                                int nodes, double months);

/// Probability that the whole cluster survives `hours` without any
/// operational component failure (used to reason about long Linpack runs).
double cluster_survival_probability(
    std::span<const ComponentClass> components, int nodes, double hours);

/// Mean time between operational failures of the whole cluster, in hours
/// (exponential lifetimes compose: total rate = sum of part rates). Feeds
/// the optimal-checkpoint-interval analysis in io/checkpoint.hpp.
double cluster_mtbf_hours(std::span<const ComponentClass> components,
                          int nodes);

}  // namespace ss::hw
