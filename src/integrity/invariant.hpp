// Physics invariant monitor: a per-step energy-drift gate for the
// step-retry tier of the self-healing ladder.
//
// The caller feeds the *globally reduced* total energy after each step
// (every rank must pass the same value, e.g. out of allreduce_sum over
// local kinetic/potential contributions); the trip decision is then a
// pure function of that value, so all ranks take the same branch with no
// extra collective. A trip leaves the baseline at the last accepted
// energy: retrying the step and feeding the new total re-checks against
// the same pre-step reference.
//
// The gate is a coarse screen. Leapfrog conserves energy to O(dt^2) per
// step, so `rel_gate` must sit well above the integrator's own drift for
// the chosen dt (1e-3..1e-2 is typical at bench time steps) — it catches
// corruption that slipped past the byte-level detectors and landed in
// the dynamics at exponent scale, not rounding-level damage.
#pragma once

#include <cmath>
#include <cstdint>

namespace ss::integrity {

class InvariantMonitor {
 public:
  /// rel_gate <= 0 disables the gate (check always accepts).
  explicit InvariantMonitor(double rel_gate) : gate_(rel_gate) {}

  /// Feed the post-step global total energy. Returns true if the step is
  /// accepted (drift within the gate, or first sample, or gate off); the
  /// accepted value becomes the new baseline. Returns false on a trip —
  /// the baseline is NOT advanced, so a retried step is judged against
  /// the same pre-step energy.
  bool check(double total_energy) {
    if (gate_ <= 0.0) return true;
    if (!std::isfinite(total_energy)) {
      ++trips_;
      return false;
    }
    if (!have_baseline_) {
      baseline_ = total_energy;
      have_baseline_ = true;
      return true;
    }
    const double scale = std::abs(baseline_) > 1e-300 ? std::abs(baseline_)
                                                      : 1.0;
    if (std::abs(total_energy - baseline_) > gate_ * scale) {
      ++trips_;
      return false;
    }
    baseline_ = total_energy;
    return true;
  }

  /// Forget the baseline (after a checkpoint rollback the dynamics
  /// legitimately jump back in time).
  void reset() { have_baseline_ = false; }

  std::uint64_t trips() const { return trips_; }
  double baseline() const { return baseline_; }

 private:
  double gate_;
  double baseline_ = 0.0;
  bool have_baseline_ = false;
  std::uint64_t trips_ = 0;
};

}  // namespace ss::integrity
