// Inter-step block checksums over quiescent state slabs — the exact
// detector (and tier-1 repairer) of the integrity ladder.
//
// At every step boundary the integration loop captures each protected
// region: a shadow byte copy plus one io::crc32 per fixed-size slab,
// computed while the state is quiescent (between the closing kick of one
// step and the opening kick of the next). At the next boundary,
// scan_and_repair() re-CRCs both sides per slab:
//
//   live ok,  shadow ok   -> clean
//   live bad, shadow ok   -> live corrupted: memcpy shadow -> live
//                            (bitwise repair; the run continues as if
//                            the flip never happened)
//   live ok,  shadow bad  -> the *shadow* took the hit: refresh it from
//                            the still-good live bytes
//   both bad              -> unrecoverable at this tier; the caller
//                            escalates (force recompute or checkpoint
//                            rollback)
//
// Because capture and scan both happen at step boundaries, a mismatch can
// only come from corruption, never from legitimate dynamics — which is
// what makes the repair safe to apply bitwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ss::integrity {

struct ScanResult {
  std::uint64_t slabs_scanned = 0;
  std::uint64_t faults_detected = 0;    ///< Slabs where either side mismatched.
  std::uint64_t repaired = 0;           ///< Live slabs restored from shadow.
  std::uint64_t shadow_refreshed = 0;   ///< Shadow slabs refreshed from live.
  std::uint64_t unrecoverable = 0;      ///< Both sides damaged.
  bool size_changed = false;  ///< Live size != captured size: recapture needed.
  std::vector<std::uint64_t> flagged;   ///< Indices of mismatching slabs.
};

class StateGuard {
 public:
  explicit StateGuard(std::size_t slab_bytes = 4096)
      : slab_bytes_(slab_bytes == 0 ? 4096 : slab_bytes) {}

  /// Snapshot `live` (trusted at this boundary) as the region's shadow
  /// and per-slab CRCs, replacing any previous capture.
  void capture(std::string_view region, std::span<const std::byte> live);

  /// Detect-only: per-slab CRC of `live` vs the capture. No repair, no
  /// shadow refresh. Unknown region or size change: zero result.
  ScanResult scan(std::string_view region,
                  std::span<const std::byte> live) const;

  /// Detect and repair per the table above. Unknown region: zero result.
  /// Size change (the region legitimately grew/shrank since capture):
  /// nothing is scanned, size_changed is set, caller should recapture.
  ScanResult scan_and_repair(std::string_view region,
                             std::span<std::byte> live);

  /// The region's shadow bytes (empty span if never captured). Exposed
  /// so the fault injector can target the shadow itself — the
  /// both-sides-damaged escalation path is testable, and the guard's own
  /// memory is not silently assumed immune.
  std::span<std::byte> shadow(std::string_view region);

  void reset() { regions_.clear(); }

 private:
  struct Region {
    std::vector<std::byte> shadow;
    std::vector<std::uint32_t> crcs;  ///< One per slab_bytes_ slab.
  };

  std::size_t slab_bytes_;
  std::map<std::string, Region, std::less<>> regions_;
};

}  // namespace ss::integrity
