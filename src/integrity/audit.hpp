// Structural audit of a hot::Tree, and the strided force sentinel —
// semantic detectors for corruption the byte-level guard does not cover
// (the tree's cell arena is rebuilt every step, so shadow-copying it
// would checksum data that is about to be discarded; auditing its
// *invariants* instead localizes damage to a cell).
//
// audit_tree checks, per cell:
//   - mass / com / bmax are finite and count > 0;
//   - Morton link consistency: children[o] is a valid index whose key is
//     morton::child(parent key, o);
//   - the children's body ranges exactly partition the parent's
//     [first, first + count);
//   - mass closure: an internal cell's mass equals the sum of its
//     children's (a leaf's the sum of its bodies'), and its com is the
//     mass-weighted combination, to a relative tolerance;
//   - geometry: com lies inside the cell's box and bmax within its
//     diagonal (plus epsilon slack);
// plus global Morton-order monotonicity of the sorted key array. A
// single flipped exponent bit in any mass/com/child field violates at
// least one invariant at the damaged cell, so findings localize faults;
// on a clean tree every check passes to well above accumulated rounding.
//
// sentinel_recompute re-derives the force on every stride-th body with
// an independent per-body tree walk and compares against the committed
// values. The walk's interaction set differs from the batched group walk
// (its MAC is per-body, the group MAC is conservative), so agreement is
// only to the force-error level — the sentinel is a coarse screen for
// exponent-scale corruption of committed forces, not a bitwise check
// (that is the guard's job). Honest only where the tree holds every
// source, i.e. single-rank evaluations.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hot/tree.hpp"

namespace ss::integrity {

enum class AuditKind {
  key_order,     ///< Sorted body keys not monotone.
  bad_link,      ///< Child index invalid, wrong key, or wrong octant slot.
  bad_range,     ///< Children do not partition the parent's body range.
  mass_closure,  ///< Cell mass != sum of children / bodies.
  com_closure,   ///< Cell com != mass-weighted combination.
  com_bounds,    ///< com outside the cell's geometric box.
  bmax_bounds,   ///< bmax negative or beyond the cell diagonal.
  non_finite,    ///< NaN/Inf in mass, com or bmax.
  empty_cell,    ///< count == 0.
};

const char* to_string(AuditKind k);

struct AuditFinding {
  std::uint32_t cell = 0;  ///< Cell index (body index for key_order).
  AuditKind kind = AuditKind::mass_closure;
  std::string detail;
};

struct TreeAuditReport {
  std::vector<AuditFinding> findings;
  std::size_t cells_checked = 0;

  bool ok() const { return findings.empty(); }
  /// Distinct cells with findings (the localization count).
  std::size_t distinct_cells() const;
  /// "kind@cell: detail; ..." — postmortem attribution line.
  std::string summary(std::size_t max_items = 4) const;
};

/// Audit every cell of `tree`. `rel_tol` bounds the closure checks
/// (relative for mass, scaled by the box size for com); the default
/// clears accumulated build rounding by orders of magnitude while any
/// exponent-bit flip lands far outside it.
TreeAuditReport audit_tree(const hot::Tree& tree, double rel_tol = 1e-8);

struct SentinelResult {
  std::size_t checked = 0;
  std::size_t mismatches = 0;
  std::uint32_t first_body = 0;  ///< First mismatching body (tree order).
  double worst_rel = 0.0;        ///< Largest relative deviation seen.
};

/// Recompute the field at every stride-th body of `tree` and compare to
/// `committed` (in tree.bodies() order). A deviation beyond `rel_tol`
/// (relative to the committed magnitude) counts as a mismatch.
SentinelResult sentinel_recompute(const hot::Tree& tree,
                                  std::span<const gravity::Accel> committed,
                                  const hot::AccelParams& params,
                                  std::size_t stride = 16,
                                  double rel_tol = 0.05);

}  // namespace ss::integrity
