// Shared configuration and accounting for the integrity subsystem: the
// knobs the recovery supervisor reads, the summary it reports, and the
// error the self-healing ladder throws when only a checkpoint rollback
// can restore a consistent state.
#pragma once

#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "integrity/memfault.hpp"

namespace ss::integrity {

/// Thrown by the per-step integrity protocol when tier 1 (localized
/// repair) and tier 2 (step retry / force recompute) cannot restore a
/// consistent state. Thrown BEFORE any collective so the supervisor can
/// tear the attempt down like a rank failure and restart from the last
/// checkpoint. Carries the attribution the postmortem records.
class CorruptionError : public std::runtime_error {
 public:
  CorruptionError(int rank, std::uint64_t step, std::string region,
                  const std::string& what_detail)
      : std::runtime_error(format(rank, step, region, what_detail)),
        rank_(rank),
        step_(step),
        region_(std::move(region)) {}

  int rank() const { return rank_; }
  std::uint64_t step() const { return step_; }
  const std::string& region() const { return region_; }

 private:
  static std::string format(int rank, std::uint64_t step,
                            const std::string& region,
                            const std::string& detail) {
    std::ostringstream os;
    os << "unrecoverable corruption in region '" << region << "' on rank "
       << rank << " at step " << step << ": " << detail;
    return os.str();
  }

  int rank_;
  std::uint64_t step_;
  std::string region_;
};

/// Integrity knobs threaded through RecoveryConfig. Default-constructed,
/// the subsystem is fully disabled: no injector, no guard, no audits —
/// the integration loop takes the exact pre-integrity path.
struct Config {
  /// Seeded bit-flip injector, shared so tests can inspect its records
  /// after the run. Null: nothing is ever injected.
  std::shared_ptr<MemFaultInjector> mem_faults;

  /// Slab-CRC shadow guard over bodies/acc/work (capture + scan every
  /// step boundary).
  bool guard = false;
  std::size_t guard_slab_bytes = 4096;

  /// Structural tree audit cadence in steps (0: never). The tree is
  /// rebuilt from bodies every evaluation, so only audit_tree_every == 1
  /// observes every boundary; coarser cadences trade detection of
  /// benign-but-real arena corruption for audit cost.
  std::uint64_t audit_tree_every = 0;

  /// Strided force sentinel cadence in steps (0: never). Single-rank
  /// evaluations only — the local tree must hold every source.
  std::uint64_t sentinel_every = 0;
  std::size_t sentinel_stride = 16;
  double sentinel_rel_tol = 0.05;

  /// Relative per-step energy-drift gate (0: off). Trips the step-retry
  /// tier; the trip decision is computed from allreduced sums, so every
  /// rank takes the same branch.
  double energy_rel_gate = 0.0;
  int max_step_retries = 1;

  bool enabled() const {
    return mem_faults != nullptr || guard || audit_tree_every != 0 ||
           sentinel_every != 0 || energy_rel_gate != 0.0;
  }
};

/// What the ladder did over one run_with_recovery call (all ranks'
/// events, summed on the supervisor side where noted).
struct Summary {
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_detected = 0;      ///< Detection events (slabs + audits).
  std::uint64_t repairs_local = 0;        ///< Tier 1: shadow -> live memcpy.
  std::uint64_t shadow_refreshed = 0;     ///< Guard healing its own shadow.
  std::uint64_t repairs_recompute = 0;    ///< Tier 2: force field recomputed.
  std::uint64_t step_retries = 0;         ///< Tier 2: step redone from snapshot.
  std::uint64_t rollbacks = 0;            ///< Tier 3: checkpoint restarts.
  std::uint64_t tree_audit_findings = 0;
  std::uint64_t sentinel_mismatches = 0;
  std::uint64_t invariant_trips = 0;
  std::uint64_t unrecoverable_slabs = 0;  ///< Both live and shadow damaged.
};

}  // namespace ss::integrity
