#include "integrity/guard.hpp"

#include <algorithm>
#include <cstring>

#include "io/crc32.hpp"

namespace ss::integrity {

namespace {

std::size_t slab_count(std::size_t bytes, std::size_t slab) {
  return (bytes + slab - 1) / slab;
}

}  // namespace

void StateGuard::capture(std::string_view region,
                         std::span<const std::byte> live) {
  auto it = regions_.find(region);
  if (it == regions_.end()) {
    it = regions_.emplace(std::string(region), Region{}).first;
  }
  Region& r = it->second;
  r.shadow.assign(live.begin(), live.end());
  const std::size_t n = slab_count(live.size(), slab_bytes_);
  r.crcs.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t lo = s * slab_bytes_;
    const std::size_t len = std::min(slab_bytes_, live.size() - lo);
    r.crcs[s] = io::crc32(live.subspan(lo, len));
  }
}

ScanResult StateGuard::scan(std::string_view region,
                            std::span<const std::byte> live) const {
  ScanResult out;
  const auto it = regions_.find(region);
  if (it == regions_.end()) return out;
  const Region& r = it->second;
  if (r.shadow.size() != live.size()) {
    out.size_changed = true;
    return out;
  }
  const std::size_t n = r.crcs.size();
  out.slabs_scanned = n;
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t lo = s * slab_bytes_;
    const std::size_t len = std::min(slab_bytes_, live.size() - lo);
    if (io::crc32(live.subspan(lo, len)) != r.crcs[s]) {
      ++out.faults_detected;
      out.flagged.push_back(s);
    }
  }
  return out;
}

ScanResult StateGuard::scan_and_repair(std::string_view region,
                                       std::span<std::byte> live) {
  ScanResult out;
  const auto it = regions_.find(region);
  if (it == regions_.end()) return out;
  Region& r = it->second;
  if (r.shadow.size() != live.size()) {
    out.size_changed = true;
    return out;
  }
  const std::size_t n = r.crcs.size();
  out.slabs_scanned = n;
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t lo = s * slab_bytes_;
    const std::size_t len = std::min(slab_bytes_, live.size() - lo);
    const bool live_ok =
        io::crc32(live.subspan(lo, len)) == r.crcs[s];
    const bool shadow_ok =
        io::crc32(std::span<const std::byte>(r.shadow).subspan(lo, len)) ==
        r.crcs[s];
    if (live_ok && shadow_ok) continue;
    ++out.faults_detected;
    out.flagged.push_back(s);
    if (!live_ok && shadow_ok) {
      std::memcpy(live.data() + lo, r.shadow.data() + lo, len);
      ++out.repaired;
    } else if (live_ok) {
      std::memcpy(r.shadow.data() + lo, live.data() + lo, len);
      ++out.shadow_refreshed;
    } else {
      ++out.unrecoverable;
    }
  }
  return out;
}

std::span<std::byte> StateGuard::shadow(std::string_view region) {
  const auto it = regions_.find(region);
  if (it == regions_.end()) return {};
  return std::span<std::byte>(it->second.shadow);
}

}  // namespace ss::integrity
