#include "integrity/memfault.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "support/rng.hpp"

namespace ss::integrity {

namespace {

/// FNV-1a over the region name: folds the region identity into the
/// stochastic fate hash without any per-call allocation.
std::uint64_t name_hash(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

MemFaultInjector::MemFaultInjector(std::vector<ScheduledFlip> schedule)
    : schedule_(std::move(schedule)),
      fired_(schedule_.size(), false) {}

MemFaultInjector MemFaultInjector::from_rate(double flip_rate,
                                             std::uint64_t seed) {
  // Prvalue return: constructed in place (the mutex member makes the
  // injector immovable).
  return MemFaultInjector(flip_rate, seed);
}

void MemFaultInjector::set_region(int rank, std::string_view name,
                                  std::span<std::byte> live) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& regs = regions_[rank];
  for (Region& r : regs) {
    if (r.name == name) {
      r.live = live;
      return;
    }
  }
  regs.push_back(Region{std::string(name), live});
}

void MemFaultInjector::clear_regions(int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  regions_.erase(rank);
}

void MemFaultInjector::flip(int rank, std::uint64_t step,
                            const std::string& region,
                            std::span<std::byte> live, std::uint64_t offset,
                            int bit) {
  // Caller holds mu_.
  const std::uint64_t at = offset % live.size();
  const auto before =
      static_cast<unsigned char>(live[static_cast<std::size_t>(at)]);
  const auto after =
      static_cast<unsigned char>(before ^ (1u << (bit & 7)));
  live[static_cast<std::size_t>(at)] = static_cast<std::byte>(after);
  records_.push_back({rank, step, region, at, bit & 7, before, after});
  ++injected_;
  if (obs::Counter* c = obs::counter("integrity.faults_injected")) c->add(1);
}

void MemFaultInjector::tick(int rank, std::uint64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_) return;
  const auto it = regions_.find(rank);
  if (it == regions_.end()) return;

  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    if (fired_[i]) continue;
    const ScheduledFlip& f = schedule_[i];
    if (f.rank != rank || f.step != step) continue;
    for (Region& r : it->second) {
      if (r.name == f.region && !r.live.empty()) {
        flip(rank, step, r.name, r.live, f.offset, f.bit);
        fired_[i] = true;
        break;
      }
    }
  }

  if (rate_ > 0.0) {
    for (Region& r : it->second) {
      if (r.live.empty()) continue;
      // Stateless fate: a pure function of (seed, rank, step, region), so
      // the pattern replays under any interleaving — the LinkFaultModel
      // discipline.
      support::SplitMix64 h(
          seed_ ^ (0xa0761d6478bd642fULL * static_cast<std::uint64_t>(
                                               rank + 1)) ^
          (0xe7037ed1a0b428dbULL * (step + 1)) ^ name_hash(r.name));
      const double u =
          static_cast<double>(h.next() >> 11) * 0x1.0p-53;
      if (u < rate_) {
        const std::uint64_t offset = h.next();
        const int bit = static_cast<int>(h.next() & 7);
        flip(rank, step, r.name, r.live, offset, bit);
      }
    }
  }
}

void MemFaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
  rate_ = 0.0;
  fired_.assign(schedule_.size(), true);
}

std::size_t MemFaultInjector::scheduled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return schedule_.size();
}

std::uint64_t MemFaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

std::vector<FlipRecord> MemFaultInjector::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

}  // namespace ss::integrity
