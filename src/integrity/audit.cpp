#include "integrity/audit.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

namespace ss::integrity {

const char* to_string(AuditKind k) {
  switch (k) {
    case AuditKind::key_order:
      return "key_order";
    case AuditKind::bad_link:
      return "bad_link";
    case AuditKind::bad_range:
      return "bad_range";
    case AuditKind::mass_closure:
      return "mass_closure";
    case AuditKind::com_closure:
      return "com_closure";
    case AuditKind::com_bounds:
      return "com_bounds";
    case AuditKind::bmax_bounds:
      return "bmax_bounds";
    case AuditKind::non_finite:
      return "non_finite";
    case AuditKind::empty_cell:
      return "empty_cell";
  }
  return "?";
}

std::size_t TreeAuditReport::distinct_cells() const {
  std::set<std::uint32_t> cells;
  for (const AuditFinding& f : findings) cells.insert(f.cell);
  return cells.size();
}

std::string TreeAuditReport::summary(std::size_t max_items) const {
  std::ostringstream os;
  os << findings.size() << " finding(s) in " << distinct_cells()
     << " cell(s)";
  for (std::size_t i = 0; i < findings.size() && i < max_items; ++i) {
    const AuditFinding& f = findings[i];
    os << "; " << to_string(f.kind) << "@cell" << f.cell << ": " << f.detail;
  }
  if (findings.size() > max_items) os << "; ...";
  return os.str();
}

namespace {

bool finite3(const support::Vec3& v) {
  return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
}

void add(TreeAuditReport& rep, std::uint32_t cell, AuditKind kind,
         std::string detail) {
  rep.findings.push_back({cell, kind, std::move(detail)});
}

}  // namespace

TreeAuditReport audit_tree(const hot::Tree& tree, double rel_tol) {
  TreeAuditReport rep;
  const std::size_t ncells = tree.cell_count();
  if (ncells == 0) return rep;
  rep.cells_checked = ncells;
  const morton::Box& box = tree.box();
  const auto& bodies = tree.bodies();
  const auto& keys = tree.keys();
  const double com_tol = rel_tol * std::max(box.size, 1e-300);

  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] < keys[i - 1]) {
      add(rep, static_cast<std::uint32_t>(i), AuditKind::key_order,
          "sorted body keys not monotone");
    }
  }

  for (std::uint32_t ci = 0; ci < ncells; ++ci) {
    const hot::Cell& c = tree.cell(ci);
    if (c.count == 0) {
      add(rep, ci, AuditKind::empty_cell, "cell holds no bodies");
      continue;
    }
    if (!std::isfinite(c.mom.mass) || !finite3(c.mom.com) ||
        !std::isfinite(c.mom.bmax)) {
      add(rep, ci, AuditKind::non_finite, "mass/com/bmax not finite");
      continue;  // arithmetic below would cascade
    }

    const double size = morton::cell_size(c.key, box);
    const support::Vec3 center = morton::cell_center(c.key, box);
    const double slack = 1e-9 * box.size;
    const double half = 0.5 * size + slack;
    if (std::abs(c.mom.com.x - center.x) > half ||
        std::abs(c.mom.com.y - center.y) > half ||
        std::abs(c.mom.com.z - center.z) > half) {
      add(rep, ci, AuditKind::com_bounds, "com outside the cell box");
    }
    if (c.mom.bmax < 0.0 ||
        c.mom.bmax > std::sqrt(3.0) * size + slack) {
      add(rep, ci, AuditKind::bmax_bounds, "bmax beyond the cell diagonal");
    }

    if (c.leaf) {
      double mass = 0.0;
      support::Vec3 com{};
      const std::size_t lo = c.first;
      const std::size_t hi = std::min<std::size_t>(lo + c.count,
                                                   bodies.size());
      if (hi - lo != c.count) {
        add(rep, ci, AuditKind::bad_range, "body range beyond the array");
        continue;
      }
      for (std::size_t b = lo; b < hi; ++b) {
        mass += bodies[b].mass;
        com += bodies[b].mass * bodies[b].pos;
      }
      const double scale =
          std::max({std::abs(mass), std::abs(c.mom.mass), 1e-300});
      if (std::abs(mass - c.mom.mass) > rel_tol * scale) {
        add(rep, ci, AuditKind::mass_closure,
            "leaf mass disagrees with its bodies");
      } else if (mass > 0.0) {
        com = (1.0 / mass) * com;
        if ((com - c.mom.com).norm() > com_tol) {
          add(rep, ci, AuditKind::com_closure,
              "leaf com disagrees with its bodies");
        }
      }
      continue;
    }

    // Internal cell: link consistency, range partition, moment closure.
    bool links_ok = true;
    double mass = 0.0;
    support::Vec3 com{};
    std::uint64_t range_cursor = c.first;
    bool range_ok = true;
    int nchildren = 0;
    for (int o = 0; o < 8; ++o) {
      const std::int32_t idx = c.children[o];
      if (idx < 0) {
        if (idx != -1) {
          add(rep, ci, AuditKind::bad_link, "negative child index");
          links_ok = false;
        }
        continue;
      }
      if (static_cast<std::size_t>(idx) >= ncells) {
        add(rep, ci, AuditKind::bad_link, "child index out of range");
        links_ok = false;
        continue;
      }
      const hot::Cell& ch = tree.cell(static_cast<std::uint32_t>(idx));
      if (ch.key != morton::child(c.key, o)) {
        add(rep, ci, AuditKind::bad_link,
            "child key disagrees with its octant slot");
        links_ok = false;
        continue;
      }
      ++nchildren;
      if (ch.first != range_cursor) range_ok = false;
      range_cursor += ch.count;
      mass += ch.mom.mass;
      com += ch.mom.mass * ch.mom.com;
    }
    if (nchildren == 0) {
      add(rep, ci, AuditKind::bad_range, "internal cell with no children");
      continue;
    }
    if (links_ok && (!range_ok || range_cursor != c.first + c.count)) {
      add(rep, ci, AuditKind::bad_range,
          "children do not partition the parent's body range");
    }
    if (links_ok) {
      const double scale =
          std::max({std::abs(mass), std::abs(c.mom.mass), 1e-300});
      if (std::abs(mass - c.mom.mass) > rel_tol * scale) {
        add(rep, ci, AuditKind::mass_closure,
            "cell mass disagrees with its children");
      } else if (mass > 0.0) {
        com = (1.0 / mass) * com;
        if ((com - c.mom.com).norm() > com_tol) {
          add(rep, ci, AuditKind::com_closure,
              "cell com disagrees with its children");
        }
      }
    }
  }
  return rep;
}

SentinelResult sentinel_recompute(const hot::Tree& tree,
                                  std::span<const gravity::Accel> committed,
                                  const hot::AccelParams& params,
                                  std::size_t stride, double rel_tol) {
  SentinelResult out;
  if (stride == 0) stride = 1;
  const auto& bodies = tree.bodies();
  const std::size_t n = std::min(bodies.size(), committed.size());
  for (std::size_t i = 0; i < n; i += stride) {
    const gravity::Accel fresh = tree.accelerate(
        bodies[i].pos, params.theta, params.eps2, params.method);
    ++out.checked;
    const double ref = std::max(
        {fresh.a.norm(), committed[i].a.norm(), 1e-300});
    const double rel = (fresh.a - committed[i].a).norm() / ref;
    if (rel > out.worst_rel) out.worst_rel = rel;
    if (rel > rel_tol) {
      if (out.mismatches == 0) {
        out.first_body = static_cast<std::uint32_t>(i);
      }
      ++out.mismatches;
    }
  }
  return out;
}

}  // namespace ss::integrity
