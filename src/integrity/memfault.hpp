// Deterministic in-memory fault injection: the silent-data-corruption
// analogue of io::FaultInjector (process death) and vmpi::LinkFaultModel
// (frame loss).
//
// The integration loop registers its live memory regions — particle SoA
// arrays, the hot::Tree cell arena, checkpoint staging buffers — under
// stable names at every step boundary (vectors move and resize as bodies
// redistribute, so spans are refreshed rather than cached). tick(rank,
// step) then flips scheduled bits in place, byte-exact and replayable:
//
//  - an explicit schedule of (rank, step, region, offset, bit) points
//    (tests, CI gates), each firing at most once per injector lifetime
//    so restarted attempts sail past already-consumed flips, exactly
//    like FaultInjector's kill schedule; or
//  - a stochastic mode (from_rate) where each (rank, step, region)
//    decision is a pure SplitMix64 hash of the seed — the same
//    stateless-fate discipline as vmpi::LinkFaultModel::decide, so a
//    flip pattern replays identically under any thread interleaving.
//
// The injector only *creates* corruption (and bumps
// integrity.faults_injected); detection and repair live in guard.hpp /
// audit.hpp and the recovery ladder of nbody::run_with_recovery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ss::integrity {

/// One scheduled bit flip. `offset` is reduced modulo the live region
/// size at fire time, so schedules stay valid as regions grow or shrink.
struct ScheduledFlip {
  int rank = 0;
  std::uint64_t step = 0;
  std::string region;
  std::uint64_t offset = 0;
  int bit = 0;  ///< 0..7 within the byte.
};

/// What actually happened, for attribution and replay checks.
struct FlipRecord {
  int rank = 0;
  std::uint64_t step = 0;
  std::string region;
  std::uint64_t offset = 0;  ///< Resolved (post-modulo) byte offset.
  int bit = 0;
  unsigned char before = 0;
  unsigned char after = 0;
};

class MemFaultInjector {
 public:
  MemFaultInjector() = default;  ///< Empty schedule: never fires.

  /// Deterministic schedule; each entry fires at most once.
  explicit MemFaultInjector(std::vector<ScheduledFlip> schedule);

  /// Stochastic mode: at every tick, each registered region of the
  /// ticking rank independently suffers one bit flip with probability
  /// `flip_rate` (per region per step). The fate, offset and bit of a
  /// given (rank, step, region) are pure functions of `seed`, so a run
  /// replays bit-for-bit from the seed alone.
  static MemFaultInjector from_rate(double flip_rate, std::uint64_t seed);

  /// (Re)register a live region for `rank`. Call every step boundary,
  /// before tick(): spans into std::vector storage go stale whenever the
  /// simulation resizes or reallocates.
  void set_region(int rank, std::string_view name, std::span<std::byte> live);
  void clear_regions(int rank);

  /// Apply every flip due at (rank, step) to that rank's registered
  /// regions. A scheduled flip naming an unregistered region stays
  /// pending (it may fire at a later step once the region appears).
  void tick(int rank, std::uint64_t step);

  /// Defuse everything that has not fired yet.
  void disarm();

  std::size_t scheduled() const;
  std::uint64_t injected() const;
  std::vector<FlipRecord> records() const;

 private:
  MemFaultInjector(double rate, std::uint64_t seed)
      : rate_(rate), seed_(seed) {}

  void flip(int rank, std::uint64_t step, const std::string& region,
            std::span<std::byte> live, std::uint64_t offset, int bit);

  struct Region {
    std::string name;
    std::span<std::byte> live;
  };

  mutable std::mutex mu_;
  std::vector<ScheduledFlip> schedule_;
  std::vector<bool> fired_;  // parallel to schedule_
  double rate_ = 0.0;
  std::uint64_t seed_ = 0;
  bool armed_ = true;
  std::map<int, std::vector<Region>> regions_;
  std::vector<FlipRecord> records_;
  std::uint64_t injected_ = 0;
};

}  // namespace ss::integrity
