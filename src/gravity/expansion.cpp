#include "gravity/expansion.hpp"

#include <cmath>

namespace ss::gravity {

namespace fmm_tables {
namespace {

Tables make_tables() {
  Tables t{};

  // Multi-index components and total order, by flat index.
  for (int n = 0; n <= kFmmMaxTensorOrder; ++n) {
    for (int i = n; i >= 0; --i) {
      for (int j = n - i; j >= 0; --j) {
        const int k = n - i - j;
        const int c = coef_index(i, j, k);
        t.ix[c] = static_cast<std::uint8_t>(i);
        t.iy[c] = static_cast<std::uint8_t>(j);
        t.iz[c] = static_cast<std::uint8_t>(k);
        t.order[c] = static_cast<std::uint8_t>(n);
      }
    }
  }

  const auto idx_or = [](int i, int j, int k) -> std::int16_t {
    if (i < 0 || j < 0 || k < 0) return -1;
    return static_cast<std::int16_t>(coef_index(i, j, k));
  };

  // Recurrence metadata: for every coefficient of order >= 1, derive it
  // along the first axis with a positive component.
  for (int c = 1; c < kFmmTensorMax; ++c) {
    int a[3] = {t.ix[c], t.iy[c], t.iz[c]};
    const int dir = a[0] > 0 ? 0 : (a[1] > 0 ? 1 : 2);
    a[dir] -= 1;  // a is now alpha'
    TensorStep& s = t.step[c];
    s.dir = static_cast<std::uint8_t>(dir);
    s.base = idx_or(a[0], a[1], a[2]);
    int am[3] = {a[0], a[1], a[2]};
    am[dir] -= 1;
    s.base_mdir = idx_or(am[0], am[1], am[2]);
    s.c_base_mdir = static_cast<double>(a[dir]);
    for (int j = 0; j < 3; ++j) {
      int b1[3] = {a[0], a[1], a[2]};
      b1[dir] += 1;
      b1[j] -= 1;
      int b2[3] = {b1[0], b1[1], b1[2]};
      b2[j] -= 1;
      s.sub1[j] = a[j] > 0 ? idx_or(b1[0], b1[1], b1[2]) : std::int16_t{-1};
      s.sub2[j] = a[j] > 1 ? idx_or(b2[0], b2[1], b2[2]) : std::int16_t{-1};
      s.c_sub1[j] = 2.0 * a[j];
      s.c_sub2[j] = static_cast<double>(a[j]) * (a[j] - 1);
    }
  }

  // Pairwise index sums over the expansion range (orders sum to <= 2p_max,
  // always within the tensor bound).
  for (int b = 0; b < kFmmCoefMax; ++b) {
    for (int g = 0; g < kFmmCoefMax; ++g) {
      t.sum[b * kFmmCoefMax + g] = static_cast<std::uint16_t>(coef_index(
          t.ix[b] + t.ix[g], t.iy[b] + t.iy[g], t.iz[b] + t.iz[g]));
    }
  }

  // Gradient shifts alpha -> alpha + e_axis.
  for (int c = 0; c < kFmmCoefMax; ++c) {
    t.shift[0][c] =
        static_cast<std::uint16_t>(coef_index(t.ix[c] + 1, t.iy[c], t.iz[c]));
    t.shift[1][c] =
        static_cast<std::uint16_t>(coef_index(t.ix[c], t.iy[c] + 1, t.iz[c]));
    t.shift[2][c] =
        static_cast<std::uint16_t>(coef_index(t.ix[c], t.iy[c], t.iz[c] + 1));
  }

  return t;
}

}  // namespace

const Tables& tables() {
  static const Tables t = make_tables();
  return t;
}

}  // namespace fmm_tables

namespace {

/// Separable normalized power table: pw[c] = v^alpha / alpha! for every
/// coefficient up to order p. `pw` holds coef_count(p) doubles.
void power_table(const Vec3& v, int p, double* pw) {
  const fmm_tables::Tables& t = fmm_tables::tables();
  double px[kFmmMaxOrder + 1], py[kFmmMaxOrder + 1], pz[kFmmMaxOrder + 1];
  px[0] = py[0] = pz[0] = 1.0;
  for (int n = 1; n <= p; ++n) {
    const double inv = 1.0 / n;
    px[n] = px[n - 1] * v.x * inv;
    py[n] = py[n - 1] * v.y * inv;
    pz[n] = pz[n - 1] * v.z * inv;
  }
  const int np = coef_count(p);
  for (int c = 0; c < np; ++c) {
    pw[c] = px[t.ix[c]] * py[t.iy[c]] * pz[t.iz[c]];
  }
}

}  // namespace

void kernel_tensors(const Vec3& r, double eps2, int p_tensor, double* T) {
  const fmm_tables::Tables& t = fmm_tables::tables();
  const double u = r.norm2() + eps2;
  const double uinv = 1.0 / u;
  const double x[3] = {r.x, r.y, r.z};
  T[0] = 1.0 / std::sqrt(u);
  const int nt = coef_count(p_tensor);
  for (int c = 1; c < nt; ++c) {
    const fmm_tables::TensorStep& s = t.step[c];
    double acc = x[s.dir] * T[s.base];
    if (s.base_mdir >= 0) acc += s.c_base_mdir * T[s.base_mdir];
    for (int j = 0; j < 3; ++j) {
      if (s.sub1[j] >= 0) acc += s.c_sub1[j] * x[j] * T[s.sub1[j]];
      if (s.sub2[j] >= 0) acc += s.c_sub2[j] * T[s.sub2[j]];
    }
    T[c] = -acc * uinv;
  }
}

void p2m(std::span<const Source> parts, const Vec3& center, int p, double* M) {
  double pw[kFmmCoefMax];
  const int np = coef_count(p);
  for (const Source& s : parts) {
    power_table(center - s.pos, p, pw);
    for (int c = 0; c < np; ++c) M[c] += s.mass * pw[c];
  }
}

void m2m(const double* mc, const Vec3& zc, const Vec3& zp, int p, double* mp) {
  const fmm_tables::Tables& t = fmm_tables::tables();
  double pw[kFmmCoefMax];
  power_table(zp - zc, p, pw);
  const int np = coef_count(p);
  for (int c1 = 0; c1 < np; ++c1) {
    if (mc[c1] == 0.0) continue;
    const int rem = p - t.order[c1];
    const int nd = coef_count(rem);
    const std::uint16_t* row = t.sum.data() + c1 * kFmmCoefMax;
    for (int c2 = 0; c2 < nd; ++c2) {
      mp[row[c2]] += mc[c1] * pw[c2];
    }
  }
}

void m2l_scalar(const double* M, const Vec3& zb, const Vec3& za, double eps2,
                int p, double* L) {
  const fmm_tables::Tables& t = fmm_tables::tables();
  double T[kFmmTensorMax];
  kernel_tensors(za - zb, eps2, m2l_tensor_order(p), T);
  const int np = coef_count(p);
  for (int g = 0; g < np; ++g) {
    const std::uint16_t* row = t.sum.data() + g * kFmmCoefMax;
    const int nb = coef_count(m2l_source_order(p, t.order[g]));
    double acc = 0.0;
    for (int b = 0; b < nb; ++b) {
      acc += M[b] * T[row[b]];
    }
    L[g] += acc;
  }
}

void l2l(const double* lp, const Vec3& zp, const Vec3& zc, int p, double* lc) {
  const fmm_tables::Tables& t = fmm_tables::tables();
  double pw[kFmmCoefMax];
  power_table(zc - zp, p, pw);
  const int np = coef_count(p);
  for (int c1 = 0; c1 < np; ++c1) {
    const int rem = p - t.order[c1];
    const int nd = coef_count(rem);
    const std::uint16_t* row = t.sum.data() + c1 * kFmmCoefMax;
    double acc = 0.0;
    for (int c2 = 0; c2 < nd; ++c2) {
      acc += lp[row[c2]] * pw[c2];
    }
    lc[c1] += acc;
  }
}

Accel l2p_scalar(const double* L, const Vec3& center, const Vec3& pos, int p) {
  const fmm_tables::Tables& t = fmm_tables::tables();
  double pw[kFmmCoefMax];
  power_table(pos - center, p, pw);
  double psi = 0.0, ax = 0.0, ay = 0.0, az = 0.0;
  const int np = coef_count(p);
  const int ng = coef_count(p - 1);
  for (int c = 0; c < np; ++c) psi += L[c] * pw[c];
  // The gradient's multinomial weights cancel: d/dx sum L_g s^g/g! =
  // sum L_{g+e_x} s^g/g! over |g| <= p-1.
  for (int c = 0; c < ng; ++c) {
    ax += L[t.shift[0][c]] * pw[c];
    ay += L[t.shift[1][c]] * pw[c];
    az += L[t.shift[2][c]] * pw[c];
  }
  return Accel{{ax, ay, az}, -psi};
}

}  // namespace ss::gravity
