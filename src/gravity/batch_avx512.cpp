// AVX-512 instantiation of the explicit-SIMD gravity kernels. Compiled
// with -mavx512f on x86 when the compiler supports it; elsewhere the
// guard leaves the TU empty and the accessor reports the backend as
// absent. Runtime CPUID dispatch guarantees these functions only run on
// hardware with the instructions.
#include "gravity/batch_dispatch.hpp"
#include "simd/vec.hpp"

#if defined(SS_SIMD_HAVE_AVX512)

#include "gravity/batch_simd.inl"

namespace ss::gravity::detail {

const SimdKernelTable* simd_kernels_avx512() {
  static const SimdKernelTable table{
      &vec_kernels::rsqrt_batch<simd::Avx512Vec>,
      &vec_kernels::interact_bodies<simd::Avx512Vec>,
      &vec_kernels::interact_cells<simd::Avx512Vec>,
  };
  return &table;
}

}  // namespace ss::gravity::detail

#else  // !SS_SIMD_HAVE_AVX512

namespace ss::gravity::detail {

const SimdKernelTable* simd_kernels_avx512() { return nullptr; }

}  // namespace ss::gravity::detail

#endif
