// AVX2+FMA instantiation of the explicit-SIMD gravity kernels. This TU
// is compiled with -mavx2 -mfma on x86 when the compiler supports them
// (see CMakeLists.txt); everywhere else the guard leaves it empty and
// the accessor reports the backend as absent. Runtime CPUID dispatch in
// simd::active() guarantees these functions are only ever called on
// hardware that has the instructions.
#include "gravity/batch_dispatch.hpp"
#include "simd/vec.hpp"

#if defined(SS_SIMD_HAVE_AVX2)

#include "gravity/batch_simd.inl"

namespace ss::gravity::detail {

const SimdKernelTable* simd_kernels_avx2() {
  static const SimdKernelTable table{
      &vec_kernels::rsqrt_batch<simd::Avx2Vec>,
      &vec_kernels::interact_bodies<simd::Avx2Vec>,
      &vec_kernels::interact_cells<simd::Avx2Vec>,
  };
  return &table;
}

}  // namespace ss::gravity::detail

#else  // !SS_SIMD_HAVE_AVX2

namespace ss::gravity::detail {

const SimdKernelTable* simd_kernels_avx2() { return nullptr; }

}  // namespace ss::gravity::detail

#endif
