#include "gravity/kernels.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>

namespace ss::gravity {

// ---------------------------------------------------------------------------
// Karp reciprocal square root.
//
// Decompose x = 2^e * m with m in [1, 2). Then
//   rsqrt(x) = 2^(-e/2) * rsqrt(m),
// where the 2^(-e/2) factor is exact exponent arithmetic (an extra
// 1/sqrt(2) factor when e is odd). rsqrt(m) is seeded from a table indexed
// by the top mantissa bits with a linear (first-order Chebyshev/minimax)
// interpolation inside the segment, then polished with Newton-Raphson
// y <- y * (1.5 - 0.5 * m * y * y), which uses only adds and multiplies.
// ---------------------------------------------------------------------------

namespace detail {
namespace {

constexpr int kTableBits = kKarpTableBits;
constexpr int kTableSize = kKarpTableSize;

KarpTable make_table() {
  KarpTable t;
  for (int i = 0; i < kTableSize; ++i) {
    const double m0 = 1.0 + static_cast<double>(i) / kTableSize;
    const double m1 = 1.0 + static_cast<double>(i + 1) / kTableSize;
    const double y0 = 1.0 / std::sqrt(m0);
    const double y1 = 1.0 / std::sqrt(m1);
    // Secant slope; together with one NR step this achieves < 1e-8 relative
    // error before the final NR step.
    t.value[i] = y0;
    t.slope[i] = (y1 - y0) / (m1 - m0);
  }
  return t;
}

}  // namespace

const KarpTable& karp_table() {
  static const KarpTable t = make_table();
  return t;
}

}  // namespace detail

namespace {
using detail::kRsqrt2;
constexpr int kTableBits = detail::kKarpTableBits;
constexpr int kTableSize = detail::kKarpTableSize;
}  // namespace

double rsqrt_karp(double x) {
  const detail::KarpTable& t = detail::karp_table();
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  const int raw_exp = static_cast<int>((bits >> 52) & 0x7ff);
  // Fall back to libm for denormals/zero/inf/nan; the treecode never
  // produces them (distances are softened), but the public function is total.
  if (raw_exp == 0 || raw_exp == 0x7ff) return 1.0 / std::sqrt(x);

  const int e = raw_exp - 1023;
  const std::uint64_t mant = bits & 0xfffffffffffffULL;
  const double m = std::bit_cast<double>((std::uint64_t{1023} << 52) | mant);

  // Table lookup + linear interpolation on the top mantissa bits.
  const auto idx = static_cast<int>(mant >> (52 - kTableBits));
  const double m_left = 1.0 + static_cast<double>(idx) / kTableSize;
  double y = t.value[static_cast<std::size_t>(idx)] +
             t.slope[static_cast<std::size_t>(idx)] * (m - m_left);

  // Two Newton-Raphson iterations: adds and multiplies only.
  y = y * (1.5 - 0.5 * m * y * y);
  y = y * (1.5 - 0.5 * m * y * y);

  // Exponent reconstruction: rsqrt(2^e) = 2^(-e/2) [* 1/sqrt(2) if e odd].
  const int half = e >> 1;  // floor division (also for negative e)
  const bool odd = (e & 1) != 0;
  const double scale =
      std::bit_cast<double>(static_cast<std::uint64_t>(1023 - half) << 52);
  return odd ? y * scale * kRsqrt2 : y * scale;
}

namespace {

template <RsqrtMethod M>
inline double rsqrt(double x) {
  if constexpr (M == RsqrtMethod::libm) {
    return rsqrt_libm(x);
  } else {
    return rsqrt_karp(x);
  }
}

}  // namespace

template <RsqrtMethod M>
Accel interact(const Vec3& target, std::span<const Source> sources,
               double eps2) {
  double ax = 0.0, ay = 0.0, az = 0.0, phi = 0.0;
  for (const Source& s : sources) {
    const double dx = s.pos.x - target.x;
    const double dy = s.pos.y - target.y;
    const double dz = s.pos.z - target.z;
    const double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 == 0.0) {
      if (eps2 > 0.0) phi -= s.mass * rsqrt<M>(eps2);
      continue;  // never a self-force
    }
    const double rinv = rsqrt<M>(r2 + eps2);
    const double rinv3 = rinv * rinv * rinv;
    const double mr3 = s.mass * rinv3;
    ax += mr3 * dx;
    ay += mr3 * dy;
    az += mr3 * dz;
    phi -= s.mass * rinv;
  }
  return Accel{{ax, ay, az}, phi};
}

template Accel interact<RsqrtMethod::libm>(const Vec3&, std::span<const Source>,
                                           double);
template Accel interact<RsqrtMethod::karp>(const Vec3&, std::span<const Source>,
                                           double);

Accel interact(const Vec3& target, std::span<const Source> sources, double eps2,
               RsqrtMethod method) {
  return resolve_rsqrt(method, RsqrtFlavor::scalar) == RsqrtMethod::libm
             ? interact<RsqrtMethod::libm>(target, sources, eps2)
             : interact<RsqrtMethod::karp>(target, sources, eps2);
}

// ---------------------------------------------------------------------------
// Benchmark-driven auto_select resolution.
// ---------------------------------------------------------------------------

namespace detail {
namespace {

/// Deterministic positive normals spanning several octaves — the shape of
/// softened squared distances.
void fill_bench_input(double* x, std::size_t n) {
  std::uint64_t s = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < n; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    x[i] = 0.25 + static_cast<double>(s >> 40) * (1.0 / (1 << 20));
  }
}

}  // namespace

bool karp_wins_scalar() {
  constexpr std::size_t kN = 4096;
  constexpr int kTrials = 5;
  static double x[kN];
  fill_bench_input(x, kN);
  (void)karp_table();  // build the seed table outside the timed region
  volatile double sink = 0.0;
  double best_libm = 1e300, best_karp = 1e300;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto t0 = std::chrono::steady_clock::now();
    double acc = 0.0;
    for (std::size_t i = 0; i < kN; ++i) acc += rsqrt_libm(x[i]);
    auto t1 = std::chrono::steady_clock::now();
    sink = sink + acc;
    acc = 0.0;
    for (std::size_t i = 0; i < kN; ++i) acc += rsqrt_karp(x[i]);
    auto t2 = std::chrono::steady_clock::now();
    sink = sink + acc;
    best_libm = std::min(best_libm,
                         std::chrono::duration<double>(t1 - t0).count());
    best_karp = std::min(best_karp,
                         std::chrono::duration<double>(t2 - t1).count());
  }
  return best_karp < best_libm;
}

}  // namespace detail

RsqrtMethod rsqrt_auto_choice(RsqrtFlavor flavor) {
  static const RsqrtMethod scalar_choice =
      detail::karp_wins_scalar() ? RsqrtMethod::karp : RsqrtMethod::libm;
  static const RsqrtMethod batch_choice =
      detail::karp_wins_batch() ? RsqrtMethod::karp : RsqrtMethod::libm;
  return flavor == RsqrtFlavor::scalar ? scalar_choice : batch_choice;
}

}  // namespace ss::gravity
