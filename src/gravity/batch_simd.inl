// Explicit-SIMD tile kernels, templated over a simd::*Vec backend.
//
// This is the paper's Sec 5 experiment done for real: the auto-vectorized
// batch kernels in batch.cpp leave the compiler to find the vector shape
// (three scratch-array passes per block: pre-pass, rsqrt, accumulate);
// here each kernel is ONE fused register-resident pass — displacements,
// the r2 == 0 self mask, the Karp-seeded Newton-Raphson rsqrt and the
// force accumulation never touch memory between loads of the source
// streams. The file is included from one translation unit per backend
// (batch_scalar_vec.cpp, batch_avx2.cpp, batch_neon.cpp), each compiled
// with that backend's codegen flags, and instantiated for its vector
// type. Semantics match the scalar reference kernels: self-interactions
// contribute only the softened potential, never a force; tests pin
// agreement at <= 1e-12.
//
// Not a standalone header — include after gravity/batch.hpp and
// simd/vec.hpp inside namespace ss::gravity.

namespace ss::gravity::vec_kernels {

/// out[i] = 1/sqrt(x[i]) for positive normal x[i].
template <class V>
void rsqrt_batch(const double* __restrict x, double* __restrict out,
                 std::size_t n) {
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    V::rsqrt(V::load(x + i)).store(out + i);
  }
  for (; i < n; ++i) {
    simd::ScalarVec::rsqrt({x[i]}).store(out + i);
  }
}

/// Partial sums of a body-tile range: accelerations, positive potential
/// (phi accumulates -phi so the caller negates once) and the mass found
/// self-coincident with the target.
struct BodySums {
  double ax = 0.0, ay = 0.0, az = 0.0, phi = 0.0, self_mass = 0.0;
};

template <class V>
BodySums body_range(double tx, double ty, double tz, double eps2,
                    const double* __restrict sx, const double* __restrict sy,
                    const double* __restrict sz, const double* __restrict sm,
                    std::size_t n) {
  BodySums out;
  const V vtx = V::broadcast(tx), vty = V::broadcast(ty),
          vtz = V::broadcast(tz);
  const V veps2 = V::broadcast(eps2);
  const V one = V::broadcast(1.0);
  const V vzero = V::zero();
  // Two independent accumulator sets: the Newton-Raphson rsqrt chain is
  // long and strictly serial, so a single set leaves the FMA pipes idle
  // waiting on it. Interleaving two vectors keeps two chains in flight.
  V ax0 = V::zero(), ay0 = V::zero(), az0 = V::zero(), phi0 = V::zero(),
    selfm0 = V::zero();
  V ax1 = V::zero(), ay1 = V::zero(), az1 = V::zero(), phi1 = V::zero(),
    selfm1 = V::zero();
  std::size_t i = 0;
  for (; i + 2 * V::kWidth <= n; i += 2 * V::kWidth) {
    const V dx0 = V::load(sx + i) - vtx;
    const V dy0 = V::load(sy + i) - vty;
    const V dz0 = V::load(sz + i) - vtz;
    const V dx1 = V::load(sx + i + V::kWidth) - vtx;
    const V dy1 = V::load(sy + i + V::kWidth) - vty;
    const V dz1 = V::load(sz + i + V::kWidth) - vtz;
    const V r2_0 = V::fma(dx0, dx0, V::fma(dy0, dy0, dz0 * dz0));
    const V r2_1 = V::fma(dx1, dx1, V::fma(dy1, dy1, dz1 * dz1));
    const V self0 = V::cmp_eq(r2_0, vzero);
    const V self1 = V::cmp_eq(r2_1, vzero);
    // Guard the masked lane's denominator so it stays a positive normal.
    const V d0 = r2_0 + veps2 + V::blend(self0, one, vzero);
    const V d1 = r2_1 + veps2 + V::blend(self1, one, vzero);
    const V ri0 = V::rsqrt(d0);
    const V ri1 = V::rsqrt(d1);
    const V m0 = V::load(sm + i);
    const V m1 = V::load(sm + i + V::kWidth);
    const V mm0 = V::blend(self0, vzero, m0);
    const V mm1 = V::blend(self1, vzero, m1);
    selfm0 = selfm0 + V::blend(self0, m0, vzero);
    selfm1 = selfm1 + V::blend(self1, m1, vzero);
    const V mr0 = mm0 * ri0;
    const V mr1 = mm1 * ri1;
    const V mr3_0 = mr0 * ri0 * ri0;
    const V mr3_1 = mr1 * ri1 * ri1;
    ax0 = V::fma(mr3_0, dx0, ax0);
    ay0 = V::fma(mr3_0, dy0, ay0);
    az0 = V::fma(mr3_0, dz0, az0);
    phi0 = phi0 + mr0;
    ax1 = V::fma(mr3_1, dx1, ax1);
    ay1 = V::fma(mr3_1, dy1, ay1);
    az1 = V::fma(mr3_1, dz1, az1);
    phi1 = phi1 + mr1;
  }
  for (; i + V::kWidth <= n; i += V::kWidth) {
    const V dx = V::load(sx + i) - vtx;
    const V dy = V::load(sy + i) - vty;
    const V dz = V::load(sz + i) - vtz;
    const V r2 = V::fma(dx, dx, V::fma(dy, dy, dz * dz));
    const V self = V::cmp_eq(r2, vzero);
    const V d = r2 + veps2 + V::blend(self, one, vzero);
    const V ri = V::rsqrt(d);
    const V m = V::load(sm + i);
    const V mm = V::blend(self, vzero, m);
    selfm0 = selfm0 + V::blend(self, m, vzero);
    const V mr = mm * ri;
    const V mr3 = mr * ri * ri;
    ax0 = V::fma(mr3, dx, ax0);
    ay0 = V::fma(mr3, dy, ay0);
    az0 = V::fma(mr3, dz, az0);
    phi0 = phi0 + mr;
  }
  out.ax = (ax0 + ax1).hsum();
  out.ay = (ay0 + ay1).hsum();
  out.az = (az0 + az1).hsum();
  out.phi = (phi0 + phi1).hsum();
  out.self_mass = (selfm0 + selfm1).hsum();
  // Scalar tail, same formulas.
  for (; i < n; ++i) {
    const double dx = sx[i] - tx;
    const double dy = sy[i] - ty;
    const double dz = sz[i] - tz;
    const double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 == 0.0) {
      out.self_mass += sm[i];
      continue;
    }
    const double ri = simd::ScalarVec::rsqrt({r2 + eps2}).v;
    const double mr = sm[i] * ri;
    const double mr3 = mr * ri * ri;
    out.ax += mr3 * dx;
    out.ay += mr3 * dy;
    out.az += mr3 * dz;
    out.phi += mr;
  }
  return out;
}

template <class V>
Accel interact_bodies(const Vec3& target, const SourcesSoA& tile,
                      double eps2) {
  const std::size_t n = tile.size();
  if (n == 0) return {};
  const BodySums s =
      body_range<V>(target.x, target.y, target.z, eps2, tile.x.data(),
                    tile.y.data(), tile.z.data(), tile.m.data(), n);
  Accel out{{s.ax, s.ay, s.az}, -s.phi};
  // The scalar kernel counts the softened self-potential; agree with it.
  if (eps2 > 0.0 && s.self_mass != 0.0) {
    out.phi -= s.self_mass * simd::ScalarVec::rsqrt({eps2}).v;
  }
  return out;
}

template <class V>
Accel interact_cells(const Vec3& target, const CellsSoA& tile, double eps2) {
  const std::size_t n = tile.size();
  if (n == 0) return {};
  const double* __restrict cx = tile.x.data();
  const double* __restrict cy = tile.y.data();
  const double* __restrict cz = tile.z.data();
  const double* __restrict cm = tile.m.data();
  const double* __restrict qxx = tile.qxx.data();
  const double* __restrict qxy = tile.qxy.data();
  const double* __restrict qxz = tile.qxz.data();
  const double* __restrict qyy = tile.qyy.data();
  const double* __restrict qyz = tile.qyz.data();
  const double* __restrict qzz = tile.qzz.data();

  const V vtx = V::broadcast(target.x), vty = V::broadcast(target.y),
          vtz = V::broadcast(target.z);
  const V veps2 = V::broadcast(eps2);
  const V half5 = V::broadcast(2.5);
  V ax = V::zero(), ay = V::zero(), az = V::zero(), phi = V::zero();
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    const V rx = vtx - V::load(cx + i);
    const V ry = vty - V::load(cy + i);
    const V rz = vtz - V::load(cz + i);
    const V d = V::fma(rx, rx, V::fma(ry, ry, rz * rz)) + veps2;
    const V ri = V::rsqrt(d);
    const V ri2 = ri * ri;
    const V ri3 = ri * ri2;
    const V ri5 = ri3 * ri2;
    const V ri7 = ri5 * ri2;
    const V m = V::load(cm + i);
    const V mri3 = m * ri3;
    const V qrx =
        V::fma(V::load(qxx + i), rx,
               V::fma(V::load(qxy + i), ry, V::load(qxz + i) * rz));
    const V qry =
        V::fma(V::load(qxy + i), rx,
               V::fma(V::load(qyy + i), ry, V::load(qyz + i) * rz));
    const V qrz =
        V::fma(V::load(qxz + i), rx,
               V::fma(V::load(qyz + i), ry, V::load(qzz + i) * rz));
    const V rQr = V::fma(rx, qrx, V::fma(ry, qry, rz * qrz));
    const V c7 = half5 * rQr * ri7;
    // a += -mri3*r + ri5*Qr - c7*r, accumulated as fused chains.
    ax = ax + (V::fma(ri5, qrx, V::fnma(mri3, rx, V::zero())) -
               c7 * rx);
    ay = ay + (V::fma(ri5, qry, V::fnma(mri3, ry, V::zero())) -
               c7 * ry);
    az = az + (V::fma(ri5, qrz, V::fnma(mri3, rz, V::zero())) -
               c7 * rz);
    // phi -= m*ri + 0.5*rQr*ri5
    phi = phi + V::fma(m, ri, V::broadcast(0.5) * rQr * ri5);
  }
  double s_ax = ax.hsum(), s_ay = ay.hsum(), s_az = az.hsum(),
         s_phi = phi.hsum();
  for (; i < n; ++i) {
    const double rx = target.x - cx[i];
    const double ry = target.y - cy[i];
    const double rz = target.z - cz[i];
    const double d = rx * rx + ry * ry + rz * rz + eps2;
    const double ri = simd::ScalarVec::rsqrt({d}).v;
    const double ri2 = ri * ri;
    const double ri3 = ri * ri2;
    const double ri5 = ri3 * ri2;
    const double ri7 = ri5 * ri2;
    const double mri3 = cm[i] * ri3;
    const double qrx = qxx[i] * rx + qxy[i] * ry + qxz[i] * rz;
    const double qry = qxy[i] * rx + qyy[i] * ry + qyz[i] * rz;
    const double qrz = qxz[i] * rx + qyz[i] * ry + qzz[i] * rz;
    const double rQr = rx * qrx + ry * qry + rz * qrz;
    const double c7 = 2.5 * rQr * ri7;
    s_ax += -mri3 * rx + ri5 * qrx - c7 * rx;
    s_ay += -mri3 * ry + ri5 * qry - c7 * ry;
    s_az += -mri3 * rz + ri5 * qrz - c7 * rz;
    s_phi += cm[i] * ri + 0.5 * rQr * ri5;
  }
  return Accel{{s_ax, s_ay, s_az}, -s_phi};
}

}  // namespace ss::gravity::vec_kernels
