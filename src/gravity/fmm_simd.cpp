// Runtime dispatch front end for the explicit-SIMD FMM operator kernels,
// following batch_simd.cpp: simd::active() picks the ISA once, mapped
// here to the per-backend table with a scalar fallback.
#include "gravity/fmm_dispatch.hpp"

namespace ss::gravity {

namespace detail {

const FmmKernelTable* fmm_kernels_for(simd::Isa isa) {
  switch (isa) {
    case simd::Isa::scalar:
      return fmm_kernels_scalar();
    case simd::Isa::avx2:
      return fmm_kernels_avx2();
    case simd::Isa::neon:
      return fmm_kernels_neon();
    case simd::Isa::avx512:
      return fmm_kernels_avx512();
  }
  return nullptr;
}

const FmmKernelTable& fmm_kernels_active() {
  const FmmKernelTable* t = fmm_kernels_for(simd::active());
  if (t == nullptr) t = fmm_kernels_scalar();
  return *t;
}

}  // namespace detail

int fmm_simd_width() { return detail::fmm_kernels_active().width; }

void m2l_simd(const double* msoa, const double* dx, const double* dy,
              const double* dz, double eps2, int p, double* L) {
  detail::fmm_kernels_active().m2l(msoa, dx, dy, dz, eps2, p, L);
}

void l2p_simd(const double* L, const double* sx, const double* sy,
              const double* sz, int p, double* ax, double* ay, double* az,
              double* psi) {
  detail::fmm_kernels_active().l2p(L, sx, sy, sz, p, ax, ay, az, psi);
}

}  // namespace ss::gravity
