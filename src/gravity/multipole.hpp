// Multipole moments of particle aggregates and their field evaluation.
//
// The hashed oct-tree stores, for every cell, the moments computed here:
// total mass, center of mass, the traceless quadrupole tensor about the
// center of mass, and bmax — the radius of the smallest sphere about the
// center of mass containing every particle in the cell, which drives the
// multipole acceptance criterion.
#pragma once

#include <cstddef>
#include <span>

#include "gravity/kernels.hpp"
#include "support/vec3.hpp"

namespace ss::gravity {

/// Symmetric traceless 3x3 tensor stored as (xx, xy, xz, yy, yz, zz).
struct QuadTensor {
  double xx = 0.0, xy = 0.0, xz = 0.0, yy = 0.0, yz = 0.0, zz = 0.0;

  QuadTensor& operator+=(const QuadTensor& o) {
    xx += o.xx; xy += o.xy; xz += o.xz;
    yy += o.yy; yz += o.yz; zz += o.zz;
    return *this;
  }

  /// Contraction r . Q . r.
  double contract(const Vec3& r) const {
    return r.x * (xx * r.x + xy * r.y + xz * r.z) +
           r.y * (xy * r.x + yy * r.y + yz * r.z) +
           r.z * (xz * r.x + yz * r.y + zz * r.z);
  }

  /// Q . r
  Vec3 apply(const Vec3& r) const {
    return {xx * r.x + xy * r.y + xz * r.z, xy * r.x + yy * r.y + yz * r.z,
            xz * r.x + yz * r.y + zz * r.z};
  }

  /// The traceless moment of a point mass m displaced by d from the
  /// expansion center: m (3 d_i d_j - d^2 delta_ij).
  static QuadTensor point_mass(double m, const Vec3& d);
};

/// Moments of one tree cell.
struct Moments {
  double mass = 0.0;
  Vec3 com;          ///< Center of mass (absolute coordinates).
  QuadTensor quad;   ///< Traceless quadrupole about com.
  double bmax = 0.0; ///< Radius of particle-bounding sphere about com.

  /// Moments of a set of point masses (used for leaf cells).
  static Moments of_particles(std::span<const Source> parts);

  /// Combine child moments into a parent (parallel-axis shift of the
  /// quadrupoles to the joint center of mass).
  static Moments combine(std::span<const Moments> children);
};

/// Evaluate the monopole + quadrupole field of `m` at `target` with Plummer
/// softening eps2, accumulating acceleration and potential.
Accel evaluate(const Moments& m, const Vec3& target, double eps2,
               RsqrtMethod method = RsqrtMethod::libm);

/// Flops charged per particle-cell quadrupole evaluation.
inline constexpr std::uint64_t kFlopsPerCellInteraction = 70;

/// Multipole acceptance criterion: accept (do not open) the cell when
///   bmax / d < theta,
/// with d the distance from target to the cell's center of mass. This is
/// the scale-free variant of the Barnes-Hut criterion used with bmax in the
/// Warren-Salmon codes; theta ~ 0.5-0.7 for production accuracy.
inline bool mac_accept(const Moments& m, const Vec3& target, double theta) {
  const Vec3 d = target - m.com;
  const double r2 = d.norm2();
  return r2 * theta * theta > m.bmax * m.bmax;
}

}  // namespace ss::gravity
