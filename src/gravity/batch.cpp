#include "gravity/batch.hpp"

#include <cmath>
#include <stdexcept>

namespace ss::gravity {

SourcesSoA SourcesSoA::from(std::span<const Source> aos) {
  SourcesSoA s;
  s.x.reserve(aos.size());
  s.y.reserve(aos.size());
  s.z.reserve(aos.size());
  s.m.reserve(aos.size());
  for (const Source& p : aos) s.push_back(p);
  return s;
}

void interact_batch(std::span<const Vec3> targets, const SourcesSoA& sources,
                    double eps2, std::span<Accel> out) {
  if (out.size() != targets.size()) {
    throw std::invalid_argument("interact_batch: output size mismatch");
  }
  const std::size_t n = sources.size();
  const double* __restrict sx = sources.x.data();
  const double* __restrict sy = sources.y.data();
  const double* __restrict sz = sources.z.data();
  const double* __restrict sm = sources.m.data();

  for (std::size_t t = 0; t < targets.size(); ++t) {
    const double tx = targets[t].x, ty = targets[t].y, tz = targets[t].z;
    double ax = 0.0, ay = 0.0, az = 0.0, phi = 0.0;
    // Branch-free inner loop: the r2 == 0 self-term is suppressed by a
    // mask multiply instead of a conditional, so the compiler can
    // vectorize the whole body.
    for (std::size_t j = 0; j < n; ++j) {
      const double dx = sx[j] - tx;
      const double dy = sy[j] - ty;
      const double dz = sz[j] - tz;
      const double r2 = dx * dx + dy * dy + dz * dz;
      const double mask = r2 > 0.0 ? 1.0 : 0.0;
      // Guard the denominator so the masked lane stays finite.
      const double rinv = 1.0 / std::sqrt(r2 + eps2 + (1.0 - mask));
      const double mr = sm[j] * rinv * mask;
      const double mr3 = mr * rinv * rinv;
      ax += mr3 * dx;
      ay += mr3 * dy;
      az += mr3 * dz;
      phi -= mr;
    }
    // The scalar kernel counts the softened self-potential; add it back
    // for exact agreement.
    if (eps2 > 0.0) {
      for (std::size_t j = 0; j < n; ++j) {
        const double dx = sx[j] - tx;
        const double dy = sy[j] - ty;
        const double dz = sz[j] - tz;
        if (dx == 0.0 && dy == 0.0 && dz == 0.0) {
          phi -= sm[j] / std::sqrt(eps2);
        }
      }
    }
    out[t] = Accel{{ax, ay, az}, phi};
  }
}

}  // namespace ss::gravity
