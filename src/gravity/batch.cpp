// SoA tile kernels. Every loop here is written to auto-vectorize: no
// branches in loop bodies (the r2 == 0 self test is a masked pre-pass),
// separate contiguous streams per component, and a reciprocal square root
// that is either the hardware sqrt+div (libm) or Karp's exponent-halving /
// table-gather / Newton-Raphson decomposition (adds and multiplies only).
// This translation unit is compiled with the host-tuned flag set (see
// src/gravity/CMakeLists.txt) so the compiler may use the full vector ISA.
#include "gravity/batch.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace ss::gravity {

// ---------------------------------------------------------------------------
// Batched Karp rsqrt.
// ---------------------------------------------------------------------------

// The scalar rsqrt_karp seeds from an in-memory table (kernels.cpp). A
// vector lane cannot afford that: the table load becomes a gather, and the
// vectorizer either refuses it ("possible alias involving gather/scatter"
// cannot be alias-versioned) or emulates it with scalar insert chains that
// erase the vector win. The batched variant therefore applies the same
// exponent-halving idea *in-register*: shifting the whole IEEE bit pattern
// right by one halves the biased exponent, and subtracting from a tuned
// constant flips it (and linearly seeds the mantissa) in a single integer
// op — a ~3.4% seed. Four Newton-Raphson polishes (adds and multiplies
// only, exactly Karp's polish loop) take that to full double precision.
// Two more polishes than the table path, but every op is an FMA-capable
// vector instruction and nothing touches memory.
void rsqrt_karp_batch(const double* __restrict x, double* __restrict out,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double v = x[i];
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    double y = std::bit_cast<double>(0x5fe6eb50c7b537a9ULL - (bits >> 1));
    const double h = 0.5 * v;
    y = y * (1.5 - h * y * y);
    y = y * (1.5 - h * y * y);
    y = y * (1.5 - h * y * y);
    y = y * (1.5 - h * y * y);
    out[i] = y;
  }
}

// ---------------------------------------------------------------------------
// SoA containers.
// ---------------------------------------------------------------------------

SourcesSoA SourcesSoA::from(std::span<const Source> aos) {
  SourcesSoA s;
  s.reserve(aos.size());
  s.append(aos.data(), aos.size());
  return s;
}

void CellsSoA::reserve(std::size_t n) {
  x.reserve(n);
  y.reserve(n);
  z.reserve(n);
  m.reserve(n);
  qxx.reserve(n);
  qxy.reserve(n);
  qxz.reserve(n);
  qyy.reserve(n);
  qyz.reserve(n);
  qzz.reserve(n);
}

void CellsSoA::clear() {
  x.clear();
  y.clear();
  z.clear();
  m.clear();
  qxx.clear();
  qxy.clear();
  qxz.clear();
  qyy.clear();
  qyz.clear();
  qzz.clear();
}

void CellsSoA::push_back(const Moments& mom) {
  x.push_back(mom.com.x);
  y.push_back(mom.com.y);
  z.push_back(mom.com.z);
  m.push_back(mom.mass);
  qxx.push_back(mom.quad.xx);
  qxy.push_back(mom.quad.xy);
  qxz.push_back(mom.quad.xz);
  qyy.push_back(mom.quad.yy);
  qyz.push_back(mom.quad.yz);
  qzz.push_back(mom.quad.zz);
}

void TileScratch::reserve(std::size_t n) {
  dx.reserve(n);
  dy.reserve(n);
  dz.reserve(n);
  mm.reserve(n);
  d.reserve(n);
  rinv.reserve(n);
}

namespace {

inline void ensure(std::vector<double>& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
}

template <RsqrtMethod M>
inline void rsqrt_batch(const double* __restrict x, double* __restrict out,
                        std::size_t n) {
  if constexpr (M == RsqrtMethod::libm) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 1.0 / std::sqrt(x[i]);
  } else {
    rsqrt_karp_batch(x, out, n);
  }
}

// Body-tile pre-pass: displacements, masked masses and guarded
// denominators. The r2 == 0 self-interaction test lives here (if-converted
// select, no branch), so the downstream loops are branch-free. Kept as a
// separate function whose pointers are all restrict *parameters*: with ten
// arrays the vectorizer's runtime alias-check budget overflows otherwise
// ("bad data references") and the loop stays scalar. Returns the summed
// mass of self-coincident sources.
double bodies_prepass(std::size_t n, double tx, double ty, double tz,
                      double eps2, const double* __restrict sx,
                      const double* __restrict sy, const double* __restrict sz,
                      const double* __restrict sm, double* __restrict dx,
                      double* __restrict dy, double* __restrict dz,
                      double* __restrict mm, double* __restrict d) {
  double self_mass = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double ddx = sx[j] - tx;
    const double ddy = sy[j] - ty;
    const double ddz = sz[j] - tz;
    const double r2 = ddx * ddx + ddy * ddy + ddz * ddz;
    const bool self = r2 == 0.0;
    dx[j] = ddx;
    dy[j] = ddy;
    dz[j] = ddz;
    // Guard the denominator so the masked lane stays a positive normal.
    d[j] = r2 + eps2 + (self ? 1.0 : 0.0);
    mm[j] = self ? 0.0 : sm[j];
    self_mass += self ? sm[j] : 0.0;
  }
  return self_mass;
}

// Force accumulation over one block: pure multiply-add reduction streams.
// Same restrict-parameter discipline as the pre-pass.
struct Sums {
  double ax = 0.0, ay = 0.0, az = 0.0, phi = 0.0;
};

Sums bodies_accum(std::size_t n, const double* __restrict dx,
                  const double* __restrict dy, const double* __restrict dz,
                  const double* __restrict mm, const double* __restrict ri) {
  double ax = 0.0, ay = 0.0, az = 0.0, phi = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double r = ri[j];
    const double mr = mm[j] * r;
    const double mr3 = mr * r * r;
    ax += mr3 * dx[j];
    ay += mr3 * dy[j];
    az += mr3 * dz[j];
    phi -= mr;
  }
  return {ax, ay, az, phi};
}

// Block width for the fused pre-pass / rsqrt / accumulate pipeline. The
// tile itself can be thousands of bodies; processing it in blocks keeps
// the six scratch streams (~6 * 8 B * kBlock = 24 KB) plus the source
// block resident in L1 instead of round-tripping the whole tile through
// L2 three times.
constexpr std::size_t kBodyBlock = 512;

}  // namespace

// ---------------------------------------------------------------------------
// Body tile kernel.
// ---------------------------------------------------------------------------

template <RsqrtMethod M>
Accel interact_bodies_batch(const Vec3& target, const SourcesSoA& tile,
                            double eps2, TileScratch& s) {
  const std::size_t n = tile.size();
  if (n == 0) return {};
  const std::size_t blk = std::min(n, kBodyBlock);
  ensure(s.dx, blk);
  ensure(s.dy, blk);
  ensure(s.dz, blk);
  ensure(s.mm, blk);
  ensure(s.d, blk);
  ensure(s.rinv, blk);

  const double* __restrict sx = tile.x.data();
  const double* __restrict sy = tile.y.data();
  const double* __restrict sz = tile.z.data();
  const double* __restrict sm = tile.m.data();
  double* __restrict dx = s.dx.data();
  double* __restrict dy = s.dy.data();
  double* __restrict dz = s.dz.data();
  double* __restrict mm = s.mm.data();
  double* __restrict d = s.d.data();
  double* __restrict rinv = s.rinv.data();

  const double tx = target.x, ty = target.y, tz = target.z;

  // Fused pipeline, one L1-resident block at a time.
  double self_mass = 0.0;
  double ax = 0.0, ay = 0.0, az = 0.0, phi = 0.0;
  for (std::size_t base = 0; base < n; base += kBodyBlock) {
    const std::size_t m = std::min(kBodyBlock, n - base);
    self_mass += bodies_prepass(m, tx, ty, tz, eps2, sx + base, sy + base,
                                sz + base, sm + base, dx, dy, dz, mm, d);
    rsqrt_batch<M>(d, rinv, m);
    const Sums sums = bodies_accum(m, dx, dy, dz, mm, rinv);
    ax += sums.ax;
    ay += sums.ay;
    az += sums.az;
    phi += sums.phi;
  }
  // The scalar kernel counts the softened self-potential; add it back for
  // agreement.
  if (eps2 > 0.0 && self_mass != 0.0) {
    phi -= self_mass * (M == RsqrtMethod::libm ? rsqrt_libm(eps2)
                                               : rsqrt_karp(eps2));
  }
  return Accel{{ax, ay, az}, phi};
}

template Accel interact_bodies_batch<RsqrtMethod::libm>(const Vec3&,
                                                        const SourcesSoA&,
                                                        double, TileScratch&);
template Accel interact_bodies_batch<RsqrtMethod::karp>(const Vec3&,
                                                        const SourcesSoA&,
                                                        double, TileScratch&);

Accel interact_bodies_batch(const Vec3& target, const SourcesSoA& tile,
                            double eps2, RsqrtMethod method,
                            TileScratch& scratch) {
  return resolve_rsqrt(method, RsqrtFlavor::batch) == RsqrtMethod::libm
             ? interact_bodies_batch<RsqrtMethod::libm>(target, tile, eps2,
                                                        scratch)
             : interact_bodies_batch<RsqrtMethod::karp>(target, tile, eps2,
                                                        scratch);
}

// ---------------------------------------------------------------------------
// Cell tile kernel (monopole + quadrupole, matching gravity::evaluate).
// ---------------------------------------------------------------------------

template <RsqrtMethod M>
Accel interact_cells_batch(const Vec3& target, const CellsSoA& tile,
                           double eps2, TileScratch& s) {
  const std::size_t n = tile.size();
  if (n == 0) return {};
  ensure(s.d, n);
  ensure(s.rinv, n);

  const double* __restrict cx = tile.x.data();
  const double* __restrict cy = tile.y.data();
  const double* __restrict cz = tile.z.data();
  const double* __restrict cm = tile.m.data();
  const double* __restrict qxx = tile.qxx.data();
  const double* __restrict qxy = tile.qxy.data();
  const double* __restrict qxz = tile.qxz.data();
  const double* __restrict qyy = tile.qyy.data();
  const double* __restrict qyz = tile.qyz.data();
  const double* __restrict qzz = tile.qzz.data();
  double* __restrict d = s.d.data();
  double* __restrict rinv = s.rinv.data();

  const double tx = target.x, ty = target.y, tz = target.z;

  for (std::size_t j = 0; j < n; ++j) {
    const double rx = tx - cx[j];
    const double ry = ty - cy[j];
    const double rz = tz - cz[j];
    d[j] = rx * rx + ry * ry + rz * rz + eps2;
  }

  rsqrt_batch<M>(d, rinv, n);

  double ax = 0.0, ay = 0.0, az = 0.0, phi = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double rx = tx - cx[j];
    const double ry = ty - cy[j];
    const double rz = tz - cz[j];
    const double ri = rinv[j];
    const double ri2 = ri * ri;
    const double ri3 = ri * ri2;
    const double ri5 = ri3 * ri2;
    const double ri7 = ri5 * ri2;
    // Monopole.
    const double mri3 = cm[j] * ri3;
    // Quadrupole: rQr = r.Q.r, Qr = Q.r.
    const double qrx = qxx[j] * rx + qxy[j] * ry + qxz[j] * rz;
    const double qry = qxy[j] * rx + qyy[j] * ry + qyz[j] * rz;
    const double qrz = qxz[j] * rx + qyz[j] * ry + qzz[j] * rz;
    const double rQr = rx * qrx + ry * qry + rz * qrz;
    const double c7 = 2.5 * rQr * ri7;
    ax += -mri3 * rx + ri5 * qrx - c7 * rx;
    ay += -mri3 * ry + ri5 * qry - c7 * ry;
    az += -mri3 * rz + ri5 * qrz - c7 * rz;
    phi -= cm[j] * ri + 0.5 * rQr * ri5;
  }
  return Accel{{ax, ay, az}, phi};
}

template Accel interact_cells_batch<RsqrtMethod::libm>(const Vec3&,
                                                       const CellsSoA&, double,
                                                       TileScratch&);
template Accel interact_cells_batch<RsqrtMethod::karp>(const Vec3&,
                                                       const CellsSoA&, double,
                                                       TileScratch&);

Accel interact_cells_batch(const Vec3& target, const CellsSoA& tile,
                           double eps2, RsqrtMethod method,
                           TileScratch& scratch) {
  return resolve_rsqrt(method, RsqrtFlavor::batch) == RsqrtMethod::libm
             ? interact_cells_batch<RsqrtMethod::libm>(target, tile, eps2,
                                                       scratch)
             : interact_cells_batch<RsqrtMethod::karp>(target, tile, eps2,
                                                       scratch);
}

// ---------------------------------------------------------------------------
// Multi-target batch (direct solver / micro-kernel bench).
// ---------------------------------------------------------------------------

void interact_batch(std::span<const Vec3> targets, const SourcesSoA& sources,
                    double eps2, RsqrtMethod method, std::span<Accel> out) {
  if (out.size() != targets.size()) {
    throw std::invalid_argument("interact_batch: output size mismatch");
  }
  thread_local TileScratch scratch;
  method = resolve_rsqrt(method, RsqrtFlavor::batch);
  for (std::size_t t = 0; t < targets.size(); ++t) {
    out[t] = method == RsqrtMethod::libm
                 ? interact_bodies_batch<RsqrtMethod::libm>(
                       targets[t], sources, eps2, scratch)
                 : interact_bodies_batch<RsqrtMethod::karp>(
                       targets[t], sources, eps2, scratch);
  }
}

void interact_batch(std::span<const Vec3> targets, const SourcesSoA& sources,
                    double eps2, std::span<Accel> out) {
  interact_batch(targets, sources, eps2, RsqrtMethod::libm, out);
}

// ---------------------------------------------------------------------------
// Benchmark probe for RsqrtMethod::auto_select: this TU is compiled with
// the host-tuned kernel flags, so both timed loops here carry the exact
// codegen the resolved choice will govern (the libm loop auto-vectorizes
// under -march=native; under default flags it would not, which is why
// the scalar flavor is measured separately in kernels.cpp).
// ---------------------------------------------------------------------------

namespace detail {

bool karp_wins_batch() {
  constexpr std::size_t kN = 4096;
  constexpr int kTrials = 5;
  static double x[kN], out[kN];
  std::uint64_t s = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < kN; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    x[i] = 0.25 + static_cast<double>(s >> 40) * (1.0 / (1 << 20));
  }
  (void)karp_table();  // seed table built outside the timed region
  volatile double sink = 0.0;
  double best_libm = 1e300, best_karp = 1e300;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto t0 = std::chrono::steady_clock::now();
    rsqrt_batch<RsqrtMethod::libm>(x, out, kN);
    auto t1 = std::chrono::steady_clock::now();
    sink = sink + out[kN - 1];
    rsqrt_batch<RsqrtMethod::karp>(x, out, kN);
    auto t2 = std::chrono::steady_clock::now();
    sink = sink + out[kN - 1];
    best_libm = std::min(best_libm,
                         std::chrono::duration<double>(t1 - t0).count());
    best_karp = std::min(best_karp,
                         std::chrono::duration<double>(t2 - t1).count());
  }
  return best_karp < best_libm;
}

}  // namespace detail

}  // namespace ss::gravity
