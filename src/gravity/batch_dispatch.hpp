// Internal dispatch table for the explicit-SIMD gravity kernels.
//
// Each backend translation unit (batch_scalar_vec.cpp, batch_avx2.cpp,
// batch_neon.cpp) instantiates the templated kernels from batch_simd.inl
// for its vector type and exposes them through one of the accessors
// below. A backend that was not compiled in (wrong architecture, or the
// compiler lacks the flags) returns nullptr from its accessor — the TU
// still builds, its body just compiles empty. Resolution against the
// runtime ISA selection happens in batch_simd.cpp.
#pragma once

#include <cstddef>

#include "gravity/batch.hpp"
#include "simd/isa.hpp"

namespace ss::gravity::detail {

struct SimdKernelTable {
  void (*rsqrt)(const double* x, double* out, std::size_t n) = nullptr;
  Accel (*bodies)(const Vec3& target, const SourcesSoA& tile,
                  double eps2) = nullptr;
  Accel (*cells)(const Vec3& target, const CellsSoA& tile,
                 double eps2) = nullptr;
};

/// Always available.
const SimdKernelTable* simd_kernels_scalar();
/// nullptr unless this binary carries the backend.
const SimdKernelTable* simd_kernels_avx2();
const SimdKernelTable* simd_kernels_neon();
const SimdKernelTable* simd_kernels_avx512();

/// Table for an explicit ISA, or nullptr if that backend is not compiled
/// into this binary.
const SimdKernelTable* simd_kernels_for(simd::Isa isa);

/// Table for the currently active ISA (simd::active()), falling back to
/// scalar when the active backend is not compiled in. Never nullptr.
const SimdKernelTable& simd_kernels_active();

}  // namespace ss::gravity::detail
