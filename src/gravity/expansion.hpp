// Cartesian Taylor expansions — the operator algebra behind the FMM far
// field (P2M, M2M, M2L, L2L, L2P).
//
// Everything is built on the softened kernel g(r) = (|r|^2 + eps^2)^{-1/2},
// the same Plummer form the particle kernels integrate, so the far field
// converges to the *softened* direct sum, not the bare 1/r one. A cell's
// multipole coefficients about its expansion center z are
//
//   M_beta = sum_q m_q (z - x_q)^beta / beta!            (P2M)
//
// and the local expansion of a well-separated source cell B at a target
// cell A's center is the contraction
//
//   Lambda_gamma += sum_beta M_beta T_{beta+gamma}(z_A - z_B)   (M2L)
//
// with T_alpha = D^alpha g the derivative tensors of the kernel. T is
// generated to order 2p by a recurrence obtained from differentiating the
// identity u * d_i g + x_i * g = 0 (u = r^2 + eps^2) with Leibniz:
//
//   u T_{a+e_i} = -( x_i T_a + a_i T_{a-e_i}
//                    + sum_j 2 a_j x_j T_{a+e_i-e_j}
//                    + sum_j a_j (a_j - 1) T_{a+e_i-2e_j} )
//
// which needs one reciprocal square root (T_0) and one division per
// displacement — every subsequent coefficient is adds and multiplies, the
// same property the Karp rsqrt gives the particle kernels. Translations
// (M2M up, L2L down) are exact truncated-polynomial convolutions with
// t^delta / delta!; L2P evaluates Lambda and its gradient at a body.
//
// Multi-indices are flattened by total order n = i+j+k, then by i
// descending / j descending — coef_index() below is the closed form. All
// operator loops are driven by small static metadata tables so the SIMD
// instantiations (fmm_simd.inl) share the exact traversal order with the
// scalar oracles here.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "gravity/kernels.hpp"
#include "support/vec3.hpp"

namespace ss::gravity {

/// Runtime bounds of the FMM accuracy dial (expansion order p).
inline constexpr int kFmmMinOrder = 2;
inline constexpr int kFmmMaxOrder = 6;
/// Tensor bound: M2L contracts trimmed pairs |beta|+|gamma| <= p+2 (see
/// m2l_tensor_order below), but the operator *unit tests* exercise the
/// full-box contraction too, so the tables still span order 2p.
inline constexpr int kFmmMaxTensorOrder = 2 * kFmmMaxOrder;

/// Number of coefficients in a Cartesian expansion truncated at total
/// order p: C(p+3, 3).
constexpr int coef_count(int p) { return (p + 1) * (p + 2) * (p + 3) / 6; }

/// Flat index of multi-index (i, j, k): groups by total order n = i+j+k,
/// within a group i descends, then j descends.
constexpr int coef_index(int i, int j, int k) {
  const int n = i + j + k;
  const int a = n - i;  // 0..n
  return n * (n + 1) * (n + 2) / 6 + a * (a + 1) / 2 + k;
}

inline constexpr int kFmmCoefMax = coef_count(kFmmMaxOrder);          // 84
inline constexpr int kFmmTensorMax = coef_count(kFmmMaxTensorOrder);  // 455

namespace fmm_tables {

/// One step of the derivative-tensor recurrence: produces the coefficient
/// of multi-index alpha = alpha' + e_dir from already-computed lower
/// entries. Index fields are -1 when the corresponding multi-index has a
/// negative component (term absent).
struct TensorStep {
  std::int16_t base;       ///< coef_index(alpha')
  std::int16_t base_mdir;  ///< coef_index(alpha' - e_dir) or -1
  std::int16_t sub1[3];    ///< coef_index(alpha' + e_dir - e_j) or -1
  std::int16_t sub2[3];    ///< coef_index(alpha' + e_dir - 2 e_j) or -1
  double c_base_mdir;      ///< alpha'_dir
  double c_sub1[3];        ///< 2 alpha'_j
  double c_sub2[3];        ///< alpha'_j (alpha'_j - 1)
  std::uint8_t dir;        ///< differentiation axis i
};

struct Tables {
  /// Multi-index components of every coefficient up to the tensor bound.
  std::array<std::uint8_t, kFmmTensorMax> ix, iy, iz;
  /// Total order i+j+k of every coefficient.
  std::array<std::uint8_t, kFmmTensorMax> order;
  /// Recurrence metadata; entry 0 is unused (T_0 is the kernel itself).
  std::array<TensorStep, kFmmTensorMax> step;
  /// sum[b * kFmmCoefMax + g] = coef_index(beta + gamma) for expansion
  /// coefficients b, g (always <= 2 * kFmmMaxOrder, so always valid).
  std::array<std::uint16_t, kFmmCoefMax * kFmmCoefMax> sum;
  /// coef_index(alpha + e_axis); valid while |alpha| < kFmmMaxTensorOrder.
  std::array<std::uint16_t, kFmmCoefMax> shift[3];
};

/// The process-wide metadata tables (built on first use, immutable after).
const Tables& tables();

}  // namespace fmm_tables

/// Derivative tensors of the softened kernel: T[c] = D^alpha g(r) for all
/// |alpha| <= p_tensor, with u = |r|^2 + eps2 strictly positive. T must
/// hold coef_count(p_tensor) doubles.
void kernel_tensors(const Vec3& r, double eps2, int p_tensor, double* T);

/// P2M: accumulate the multipoles of `parts` about `center` into M
/// (coef_count(p) doubles, caller-zeroed).
void p2m(std::span<const Source> parts, const Vec3& center, int p, double* M);

/// M2M: accumulate a child expansion (about zc) into its parent (about
/// zp). Exact for truncated expansions.
void m2m(const double* mc, const Vec3& zc, const Vec3& zp, int p, double* mp);

/// M2L truncation: the full box |beta| <= p, |gamma| <= p would contract
/// against tensors up to order 2p, but every pair with |beta|+|gamma| >
/// p+2 contributes O(rho^{p+3}) — far below the O(rho^{p+1}) corner
/// truncation error that dominates the translation — so M2L keeps only
/// |beta|+|gamma| <= p+2. That caps the tensor recurrence at order p+2
/// (84 tensors at p=4 instead of 165) and turns the per-gamma source sum
/// into a prefix of the order-sorted coefficient array.
constexpr int m2l_tensor_order(int p) { return p + 2 < 2 * p ? p + 2 : 2 * p; }
/// Highest source order contracted for a target coefficient of order og.
constexpr int m2l_source_order(int p, int og) {
  const int rem = m2l_tensor_order(p) - og;
  return rem < p ? rem : p;
}

/// M2L scalar oracle: accumulate into L (about za) the local coefficients
/// of source multipoles M (about zb). Requires za != zb or eps2 > 0.
void m2l_scalar(const double* M, const Vec3& zb, const Vec3& za, double eps2,
                int p, double* L);

/// L2L: accumulate a parent local expansion (about zp) into a child's
/// (about zc). Exact: re-centering a degree-p polynomial loses nothing.
void l2l(const double* lp, const Vec3& zp, const Vec3& zc, int p, double* lc);

/// L2P scalar oracle: field of the local expansion (about `center`) at
/// `pos`, in the sign convention of the particle kernels (phi negative
/// for attracting masses, a pointing toward them).
Accel l2p_scalar(const double* L, const Vec3& center, const Vec3& pos, int p);

// ---------------------------------------------------------------------------
// Explicit-SIMD operator kernels (runtime ISA dispatch, fmm_dispatch.hpp).
// One call processes exactly fmm_simd_width() lanes; callers pad the last
// group — a zero-mass multipole at unit displacement is an exact no-op
// for m2l, surplus l2p lanes are discarded.
// ---------------------------------------------------------------------------

/// Lane width of the active explicit-SIMD FMM backend (1 for scalar).
int fmm_simd_width();

/// Batched M2L: accumulate into L (coef_count(p) doubles) the local
/// contributions of fmm_simd_width() source cells. msoa holds the source
/// multipoles laid out [coef][lane]; dx/dy/dz the per-lane displacements
/// z_target - z_source.
void m2l_simd(const double* msoa, const double* dx, const double* dy,
              const double* dz, double eps2, int p, double* L);

/// Batched L2P: evaluate a local expansion at fmm_simd_width() body
/// offsets s from the expansion center, writing per-lane accelerations
/// and *positive* potential psi (negate once to match Accel::phi).
void l2p_simd(const double* L, const double* sx, const double* sy,
              const double* sz, int p, double* ax, double* ay, double* az,
              double* psi);

/// Flops charged per operator application at order p, in the spirit of
/// the Warren-Salmon per-interaction accounting: the M2L figure covers
/// the tensor recurrence plus the coefficient contraction; translations
/// are pure convolutions; L2P is per body.
inline std::uint64_t fmm_flops_m2l(int p) {
  std::uint64_t pairs = 0;
  for (int og = 0; og <= p; ++og) {
    const std::uint64_t targets = static_cast<std::uint64_t>(og + 1) * (og + 2) / 2;
    pairs += targets * static_cast<std::uint64_t>(coef_count(m2l_source_order(p, og)));
  }
  return static_cast<std::uint64_t>(9 * coef_count(m2l_tensor_order(p))) +
         2 * pairs;
}
inline std::uint64_t fmm_flops_translate(int p) {
  return static_cast<std::uint64_t>(2 * coef_count(p)) * coef_count(p);
}
inline std::uint64_t fmm_flops_l2p(int p) {
  return static_cast<std::uint64_t>(8 * coef_count(p));
}

}  // namespace ss::gravity
