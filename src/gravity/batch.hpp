// Structure-of-arrays batched gravity kernels — the interaction-list flush
// path of the treecode.
//
// Paper Sec 5: "By hand coding our inner loop with SSE instructions, we
// hope to be able to reach 2x higher performance with our N-body code."
// This is the portable version of that idea: the traversal gathers accepted
// body ranges and accepted cells into reusable SoA *tiles* and flushes each
// tile through one of the kernels below. Sources live in separate
// contiguous arrays and every inner loop is written branch-free (the
// r2 == 0 self-interaction test is hoisted into a pre-pass) so the
// compiler can vectorize the whole body, including a batched Karp
// reciprocal square root that runs on adds and multiplies after a table
// gather. The scalar kernels in kernels.hpp / multipole.hpp remain the
// reference; tests require <= 1e-12 relative agreement.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "gravity/kernels.hpp"
#include "gravity/multipole.hpp"
#include "simd/isa.hpp"

namespace ss::gravity {

/// Batched Karp reciprocal square root: out[i] = rsqrt(x[i]) for `n`
/// values. Branch-free: in-register exponent halving seeds the estimate
/// (no memory table, so no gather) and four Newton-Raphson polishes — adds
/// and multiplies only — take it to full precision; the loop vectorizes.
///
/// Precondition: every x[i] is a *normal*, positive, finite double. The
/// interaction kernels guarantee this by masking the r2 == 0 lanes in a
/// pre-pass (softened denominators are never denormal in practice); the
/// scalar rsqrt_karp keeps its total-function fallback.
void rsqrt_karp_batch(const double* x, double* out, std::size_t n);

/// Structure-of-arrays source set (a body tile).
struct SourcesSoA {
  std::vector<double> x, y, z, m;

  std::size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }

  void reserve(std::size_t n) {
    x.reserve(n);
    y.reserve(n);
    z.reserve(n);
    m.reserve(n);
  }

  /// Drop contents but keep capacity (tiles are reused across flushes).
  void clear() {
    x.clear();
    y.clear();
    z.clear();
    m.clear();
  }

  void push_back(const Source& s) {
    x.push_back(s.pos.x);
    y.push_back(s.pos.y);
    z.push_back(s.pos.z);
    m.push_back(s.mass);
  }

  /// Append `n` AoS sources (the traversal's accepted body ranges).
  void append(const Source* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) push_back(p[i]);
  }

  static SourcesSoA from(std::span<const Source> aos);
};

/// Structure-of-arrays multipole set (a cell tile): mass, center of mass
/// and the six components of the traceless quadrupole.
struct CellsSoA {
  std::vector<double> x, y, z, m;
  std::vector<double> qxx, qxy, qxz, qyy, qyz, qzz;

  std::size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }

  void reserve(std::size_t n);
  void clear();
  void push_back(const Moments& mom);
};

/// Reusable scratch for the tile kernels: per-lane displacements, masked
/// masses, denominators and reciprocal roots. Owning it at the call site
/// (one per traversal engine / thread) makes a tile flush allocation-free
/// after warm-up. The kernels process tiles in L1-sized blocks, so the
/// scratch stays small no matter how large the tile grows.
struct TileScratch {
  std::vector<double> dx, dy, dz, mm, d, rinv;

  void reserve(std::size_t n);
};

/// Accumulate the softened field of a body tile at one target point.
/// Exactly the semantics of the scalar `interact`: self-interactions
/// (r2 == 0) contribute only the softened potential, never a force.
template <RsqrtMethod M>
Accel interact_bodies_batch(const Vec3& target, const SourcesSoA& tile,
                            double eps2, TileScratch& scratch);

extern template Accel interact_bodies_batch<RsqrtMethod::libm>(
    const Vec3&, const SourcesSoA&, double, TileScratch&);
extern template Accel interact_bodies_batch<RsqrtMethod::karp>(
    const Vec3&, const SourcesSoA&, double, TileScratch&);

/// Runtime-dispatched body-tile kernel.
Accel interact_bodies_batch(const Vec3& target, const SourcesSoA& tile,
                            double eps2, RsqrtMethod method,
                            TileScratch& scratch);

/// Accumulate the monopole + quadrupole field of a cell tile at one target
/// point; matches the scalar `evaluate` per cell. Targets coincident with
/// a cell's center of mass at eps2 == 0 are a caller error (the MAC never
/// accepts such a cell).
template <RsqrtMethod M>
Accel interact_cells_batch(const Vec3& target, const CellsSoA& tile,
                           double eps2, TileScratch& scratch);

extern template Accel interact_cells_batch<RsqrtMethod::libm>(
    const Vec3&, const CellsSoA&, double, TileScratch&);
extern template Accel interact_cells_batch<RsqrtMethod::karp>(
    const Vec3&, const CellsSoA&, double, TileScratch&);

/// Runtime-dispatched cell-tile kernel.
Accel interact_cells_batch(const Vec3& target, const CellsSoA& tile,
                           double eps2, RsqrtMethod method,
                           TileScratch& scratch);

/// Batched interaction: accumulate the field of all sources at each of
/// the `targets`. Kept for the O(N^2) direct solver and the micro-kernel
/// bench; implemented on the tile kernels above.
void interact_batch(std::span<const Vec3> targets, const SourcesSoA& sources,
                    double eps2, std::span<Accel> out);

/// Method-dispatched variant of the multi-target batch.
void interact_batch(std::span<const Vec3> targets, const SourcesSoA& sources,
                    double eps2, RsqrtMethod method, std::span<Accel> out);

// ---------------------------------------------------------------------------
// Explicit-SIMD kernels (runtime ISA dispatch).
//
// The kernels above rely on the compiler auto-vectorizing three
// scratch-array passes per block. The *_simd entry points instead run a
// single fused register-resident pass written against the fixed-width
// vector types in simd/vec.hpp, instantiated per ISA (scalar / AVX2+FMA /
// NEON) and selected once at runtime by simd::active() — overridable with
// SS_SIMD=scalar|avx2|neon or simd::force() for testing. Semantics match
// the batch kernels (self-interactions contribute only the softened
// potential); tests pin agreement with the scalar reference at <= 1e-12
// on every compiled backend. No TileScratch needed: the fused pass has no
// intermediate arrays.
// ---------------------------------------------------------------------------

/// True if the backend for `isa` was compiled into this binary (the
/// dispatcher falls back to scalar when the active ISA's backend is
/// absent).
bool simd_backend_compiled(simd::Isa isa);

/// Explicit-SIMD batched reciprocal square root (same Karp-seeded
/// Newton-Raphson decomposition and preconditions as rsqrt_karp_batch).
void rsqrt_simd_batch(const double* x, double* out, std::size_t n);

/// Explicit-SIMD body-tile kernel; semantics of interact_bodies_batch.
Accel interact_bodies_simd(const Vec3& target, const SourcesSoA& tile,
                           double eps2);

/// Explicit-SIMD cell-tile kernel; semantics of interact_cells_batch.
Accel interact_cells_simd(const Vec3& target, const CellsSoA& tile,
                          double eps2);

/// Explicit-SIMD multi-target batch (direct solver / bench path).
void interact_batch_simd(std::span<const Vec3> targets,
                         const SourcesSoA& sources, double eps2,
                         std::span<Accel> out);

}  // namespace ss::gravity
