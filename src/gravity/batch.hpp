// Structure-of-arrays batched gravity kernel.
//
// Paper Sec 5: "By hand coding our inner loop with SSE instructions, we
// hope to be able to reach 2x higher performance with our N-body code."
// This is the portable version of that idea: sources live in separate
// contiguous arrays and the interaction loop is written so the compiler
// can vectorize it (no branches, no aliasing, fused rsqrt via the Karp
// polish when requested). The scalar kernels in kernels.hpp remain the
// reference; tests require bit-level-close agreement.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "gravity/kernels.hpp"

namespace ss::gravity {

/// Structure-of-arrays source set.
struct SourcesSoA {
  std::vector<double> x, y, z, m;

  std::size_t size() const { return x.size(); }
  void push_back(const Source& s) {
    x.push_back(s.pos.x);
    y.push_back(s.pos.y);
    z.push_back(s.pos.z);
    m.push_back(s.mass);
  }
  static SourcesSoA from(std::span<const Source> aos);
};

/// Batched interaction: accumulate the field of all sources at each of
/// the `targets`, vector-friendly inner loop. Self-interactions (r2 == 0)
/// contribute no force, matching the scalar kernel.
void interact_batch(std::span<const Vec3> targets, const SourcesSoA& sources,
                    double eps2, std::span<Accel> out);

}  // namespace ss::gravity
