// AVX2+FMA instantiation of the explicit-SIMD FMM operators. Compiled
// with -mavx2 -mfma where available (see CMakeLists.txt); otherwise the
// guard leaves the TU empty and the accessor reports the backend absent.
#include "gravity/fmm_dispatch.hpp"
#include "simd/vec.hpp"

#if defined(SS_SIMD_HAVE_AVX2)

#include "gravity/fmm_simd.inl"

namespace ss::gravity::detail {

const FmmKernelTable* fmm_kernels_avx2() {
  static const FmmKernelTable table{
      simd::Avx2Vec::kWidth,
      &vec_kernels::fmm_m2l<simd::Avx2Vec>,
      &vec_kernels::fmm_l2p<simd::Avx2Vec>,
  };
  return &table;
}

}  // namespace ss::gravity::detail

#else  // !SS_SIMD_HAVE_AVX2

namespace ss::gravity::detail {

const FmmKernelTable* fmm_kernels_avx2() { return nullptr; }

}  // namespace ss::gravity::detail

#endif
