// Scalar (width-1) instantiation of the explicit-SIMD FMM operators —
// always compiled, the dispatch fallback and the parity reference for
// the wide backends.
#include "gravity/fmm_dispatch.hpp"
#include "simd/vec.hpp"

#include "gravity/fmm_simd.inl"

namespace ss::gravity::detail {

const FmmKernelTable* fmm_kernels_scalar() {
  static const FmmKernelTable table{
      simd::ScalarVec::kWidth,
      &vec_kernels::fmm_m2l<simd::ScalarVec>,
      &vec_kernels::fmm_l2p<simd::ScalarVec>,
  };
  return &table;
}

}  // namespace ss::gravity::detail
