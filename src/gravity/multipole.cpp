#include "gravity/multipole.hpp"

#include <algorithm>
#include <cmath>

namespace ss::gravity {

QuadTensor QuadTensor::point_mass(double m, const Vec3& d) {
  const double d2 = d.norm2();
  QuadTensor q;
  q.xx = m * (3.0 * d.x * d.x - d2);
  q.xy = m * 3.0 * d.x * d.y;
  q.xz = m * 3.0 * d.x * d.z;
  q.yy = m * (3.0 * d.y * d.y - d2);
  q.yz = m * 3.0 * d.y * d.z;
  q.zz = m * (3.0 * d.z * d.z - d2);
  return q;
}

Moments Moments::of_particles(std::span<const Source> parts) {
  Moments m;
  for (const Source& p : parts) {
    m.mass += p.mass;
    m.com += p.mass * p.pos;
  }
  if (m.mass > 0.0) {
    m.com /= m.mass;
  } else if (!parts.empty()) {
    // Massless set: fall back to the centroid so geometry stays sane.
    for (const Source& p : parts) m.com += p.pos;
    m.com /= static_cast<double>(parts.size());
  }
  for (const Source& p : parts) {
    const Vec3 d = p.pos - m.com;
    m.quad += QuadTensor::point_mass(p.mass, d);
    m.bmax = std::max(m.bmax, d.norm());
  }
  return m;
}

Moments Moments::combine(std::span<const Moments> children) {
  Moments m;
  for (const Moments& c : children) {
    m.mass += c.mass;
    m.com += c.mass * c.com;
  }
  if (m.mass > 0.0) {
    m.com /= m.mass;
  } else if (!children.empty()) {
    for (const Moments& c : children) m.com += c.com;
    m.com /= static_cast<double>(children.size());
  }
  for (const Moments& c : children) {
    const Vec3 d = c.com - m.com;
    m.quad += c.quad;
    m.quad += QuadTensor::point_mass(c.mass, d);
    m.bmax = std::max(m.bmax, d.norm() + c.bmax);
  }
  return m;
}

Accel evaluate(const Moments& m, const Vec3& target, double eps2,
               RsqrtMethod method) {
  const Vec3 r = target - m.com;  // from expansion center to target
  const double r2 = r.norm2() + eps2;
  const double rinv = resolve_rsqrt(method, RsqrtFlavor::scalar) ==
                              RsqrtMethod::libm
                          ? rsqrt_libm(r2)
                          : rsqrt_karp(r2);
  const double rinv2 = rinv * rinv;
  const double rinv3 = rinv * rinv2;
  const double rinv5 = rinv3 * rinv2;
  const double rinv7 = rinv5 * rinv2;

  Accel out;
  // Monopole: a = -M r / |r|^3, phi = -M/|r|.
  out.a = -m.mass * rinv3 * r;
  out.phi = -m.mass * rinv;

  // Quadrupole: phi_q = -(r.Q.r) / (2 |r|^5);
  // a_q = (Q.r)/|r|^5 - (5/2)(r.Q.r) r / |r|^7.
  const double rQr = m.quad.contract(r);
  const Vec3 Qr = m.quad.apply(r);
  out.phi -= 0.5 * rQr * rinv5;
  out.a += rinv5 * Qr - 2.5 * rQr * rinv7 * r;
  return out;
}

}  // namespace ss::gravity
