// ScalarVec instantiation of the explicit-SIMD gravity kernels — the
// width-1 portable backend. Compiled with the project-default flags (no
// -fassociative-math) so it is the bit-stable oracle the wide backends
// are compared against, and the fallback when SS_SIMD=scalar.
#include "gravity/batch_dispatch.hpp"
#include "simd/vec.hpp"

#include "gravity/batch_simd.inl"

namespace ss::gravity::detail {

const SimdKernelTable* simd_kernels_scalar() {
  static const SimdKernelTable table{
      &vec_kernels::rsqrt_batch<simd::ScalarVec>,
      &vec_kernels::interact_bodies<simd::ScalarVec>,
      &vec_kernels::interact_cells<simd::ScalarVec>,
  };
  return &table;
}

}  // namespace ss::gravity::detail
