// Gravitational interaction kernels — the inner loop that dominates the
// treecode's execution time (paper Sec 3.6, Table 5).
//
// Two reciprocal-square-root strategies are provided, mirroring the paper's
// micro-kernel benchmark:
//   * `libm`  — 1/sqrt(r2) through the math library.
//   * `Karp`  — A. H. Karp's decomposition of rsqrt into exponent halving,
//     a table lookup on leading mantissa bits, a Chebyshev (minimax linear)
//     interpolation within the table segment, and Newton-Raphson iteration;
//     after the lookup only adds and multiplies are executed.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

#include "support/vec3.hpp"

namespace ss::gravity {

using support::Vec3;

/// Softened point-mass source.
struct Source {
  Vec3 pos;
  double mass = 0.0;
};

/// Acceleration and potential accumulated at a target point.
struct Accel {
  Vec3 a;
  double phi = 0.0;  ///< Potential (negative for attracting masses).

  Accel& operator+=(const Accel& o) {
    a += o.a;
    phi += o.phi;
    return *this;
  }
};

/// Reciprocal square root via the math library.
inline double rsqrt_libm(double x) { return 1.0 / std::sqrt(x); }

/// Karp-style reciprocal square root. Accurate to ~1 ulp after two
/// Newton-Raphson iterations; valid for finite x > 0.
double rsqrt_karp(double x);

namespace detail {

/// Seed table shared by the scalar and the batched Karp rsqrt: per-segment
/// value at the left edge and secant slope across the segment, indexed by
/// the top mantissa bits.
inline constexpr int kKarpTableBits = 8;
inline constexpr int kKarpTableSize = 1 << kKarpTableBits;

struct KarpTable {
  std::array<double, kKarpTableSize> value{};
  std::array<double, kKarpTableSize> slope{};
};

/// The process-wide table (built on first use).
const KarpTable& karp_table();

inline constexpr double kRsqrt2 = 0.70710678118654752440;

}  // namespace detail

enum class RsqrtMethod {
  libm,
  karp,
  /// Resolve to whichever of the two wins a cached startup microbenchmark
  /// on this host (measured separately for the scalar and the batched
  /// kernel forms — the compiler may vectorize one and not the other, so
  /// a single winner would be wrong for somebody). Table 5 on some hosts
  /// shows scalar karp *losing* to scalar libm by >2x while batched karp
  /// wins; hard-coding either direction leaves performance behind.
  auto_select,
};

/// Which kernel form a resolved rsqrt choice will feed: the scalar
/// per-interaction loops (kernels.cpp / multipole.cpp, default codegen
/// flags) or the batched tile loops (batch.cpp, host-tuned flags).
enum class RsqrtFlavor { scalar, batch };

/// The benchmark-driven winner for `auto_select`, measured once per
/// process per flavor on first use and cached (a few microseconds of
/// timed loops over a deterministic input set).
RsqrtMethod rsqrt_auto_choice(RsqrtFlavor flavor);

/// Resolve a possibly-auto method for a given kernel form; `libm` and
/// `karp` pass through untouched.
inline RsqrtMethod resolve_rsqrt(RsqrtMethod m, RsqrtFlavor flavor) {
  return m == RsqrtMethod::auto_select ? rsqrt_auto_choice(flavor) : m;
}

namespace detail {
/// True when the Karp form beats the libm form in this TU's codegen;
/// karp_wins_batch lives in batch.cpp so the measurement runs under the
/// same tuned flags as the kernels the choice governs.
bool karp_wins_scalar();
bool karp_wins_batch();
}  // namespace detail

/// Accumulate the softened gravitational interaction of `sources` on the
/// point `target`: a += -G*m*(d)/(r^2+eps^2)^{3/2}, phi += -G*m/sqrt(r2+eps2)
/// with G = 1. Self-interactions (r2 == 0) contribute only the softened
/// potential, never a force.
template <RsqrtMethod M>
Accel interact(const Vec3& target, std::span<const Source> sources, double eps2);

extern template Accel interact<RsqrtMethod::libm>(const Vec3&,
                                                  std::span<const Source>,
                                                  double);
extern template Accel interact<RsqrtMethod::karp>(const Vec3&,
                                                  std::span<const Source>,
                                                  double);

/// Runtime-dispatched convenience wrapper.
Accel interact(const Vec3& target, std::span<const Source> sources, double eps2,
               RsqrtMethod method);

/// Flops per particle-particle interaction under the conventional
/// Warren-Salmon accounting used for all Gflop/s figures in the paper.
inline constexpr std::uint64_t kFlopsPerInteraction = 38;

}  // namespace ss::gravity
