// Explicit-SIMD FMM operator kernels, templated over a simd::*Vec
// backend — the vectorized counterparts of the scalar oracles in
// expansion.cpp.
//
// The lane dimension is the *fan-out* of the dual-tree traversal: m2l
// translates kWidth source cells into one target cell's local expansion
// at once (the derivative-tensor recurrence runs on vectors of
// displacements, then the coefficient contraction reduces each lane group
// with one horizontal sum per output coefficient), and l2p evaluates one
// cell's expansion at kWidth bodies at once. Both walk the exact static
// metadata tables the scalar oracles use, so lane order — and therefore
// the bitwise result for a fixed interaction list — is identical on every
// backend width for identical inputs, and agreement with the oracles is
// pinned at <= 1e-12 by tests.
//
// Not a standalone header — include after gravity/expansion.hpp and
// simd/vec.hpp inside namespace ss::gravity.

namespace ss::gravity::vec_kernels {

template <class V>
void fmm_m2l(const double* __restrict msoa, const double* __restrict dx,
             const double* __restrict dy, const double* __restrict dz,
             double eps2, int p, double* __restrict L) {
  const fmm_tables::Tables& tb = fmm_tables::tables();
  const V x = V::load(dx), y = V::load(dy), z = V::load(dz);
  const V u = V::fma(x, x, V::fma(y, y, z * z)) + V::broadcast(eps2);
  const V uinv = V::broadcast(1.0) / u;
  const V xs[3] = {x, y, z};

  // Derivative tensors to the trimmed M2L order (p+2), one vector of
  // displacements at a time.
  V T[kFmmTensorMax];
  T[0] = V::rsqrt(u);
  const int nt = coef_count(m2l_tensor_order(p));
  for (int c = 1; c < nt; ++c) {
    const fmm_tables::TensorStep& s = tb.step[c];
    V acc = xs[s.dir] * T[s.base];
    if (s.base_mdir >= 0) {
      acc = V::fma(V::broadcast(s.c_base_mdir), T[s.base_mdir], acc);
    }
    for (int j = 0; j < 3; ++j) {
      if (s.sub1[j] >= 0) {
        acc = V::fma(V::broadcast(s.c_sub1[j]) * xs[j], T[s.sub1[j]], acc);
      }
      if (s.sub2[j] >= 0) {
        acc = V::fma(V::broadcast(s.c_sub2[j]), T[s.sub2[j]], acc);
      }
    }
    T[c] = V::fnma(acc, uinv, V::zero());
  }

  // Contraction: Lambda_g += sum_b M_b T_{b+g} over the trimmed pair set
  // |beta|+|gamma| <= p+2 (an order-sorted prefix per gamma), reduced
  // across lanes.
  const int np = coef_count(p);
  for (int g = 0; g < np; ++g) {
    const std::uint16_t* row = tb.sum.data() + g * kFmmCoefMax;
    const int nb = coef_count(m2l_source_order(p, tb.order[g]));
    V acc = V::zero();
    for (int b = 0; b < nb; ++b) {
      acc = V::fma(V::load(msoa + b * V::kWidth), T[row[b]], acc);
    }
    L[g] += acc.hsum();
  }
}

template <class V>
void fmm_l2p(const double* __restrict L, const double* __restrict sx,
             const double* __restrict sy, const double* __restrict sz, int p,
             double* __restrict ax, double* __restrict ay,
             double* __restrict az, double* __restrict psi) {
  const fmm_tables::Tables& tb = fmm_tables::tables();
  const V x = V::load(sx), y = V::load(sy), z = V::load(sz);

  // Normalized powers s^alpha / alpha! per lane, separable per axis.
  V px[kFmmMaxOrder + 1], py[kFmmMaxOrder + 1], pz[kFmmMaxOrder + 1];
  px[0] = py[0] = pz[0] = V::broadcast(1.0);
  for (int n = 1; n <= p; ++n) {
    const V inv = V::broadcast(1.0 / n);
    px[n] = px[n - 1] * x * inv;
    py[n] = py[n - 1] * y * inv;
    pz[n] = pz[n - 1] * z * inv;
  }
  V pw[kFmmCoefMax];
  const int np = coef_count(p);
  for (int c = 0; c < np; ++c) {
    pw[c] = px[tb.ix[c]] * py[tb.iy[c]] * pz[tb.iz[c]];
  }

  V vpsi = V::zero(), vax = V::zero(), vay = V::zero(), vaz = V::zero();
  for (int c = 0; c < np; ++c) {
    vpsi = V::fma(V::broadcast(L[c]), pw[c], vpsi);
  }
  // Gradient: the multinomial weights cancel against the shifted
  // factorials, so it is the same weighted sum over shifted coefficients.
  const int ng = coef_count(p - 1);
  for (int c = 0; c < ng; ++c) {
    vax = V::fma(V::broadcast(L[tb.shift[0][c]]), pw[c], vax);
    vay = V::fma(V::broadcast(L[tb.shift[1][c]]), pw[c], vay);
    vaz = V::fma(V::broadcast(L[tb.shift[2][c]]), pw[c], vaz);
  }
  vax.store(ax);
  vay.store(ay);
  vaz.store(az);
  vpsi.store(psi);
}

}  // namespace ss::gravity::vec_kernels
