// Internal dispatch table for the explicit-SIMD FMM operator kernels.
//
// Mirrors batch_dispatch.hpp: each backend translation unit
// (fmm_scalar_vec.cpp, fmm_avx2.cpp, fmm_avx512.cpp, fmm_neon.cpp)
// instantiates the templated operators from fmm_simd.inl for its vector
// type and exposes them through one of the accessors below; a backend not
// compiled into this binary returns nullptr. Resolution against the
// runtime ISA selection happens in fmm_simd.cpp.
//
// Unlike the particle-tile kernels, these operate on fixed-width lane
// groups: one call processes exactly `width` source cells (m2l) or
// `width` bodies (l2p); the caller pads the last group (zero-mass
// multipoles at unit displacement are exact no-ops for m2l, surplus l2p
// lanes are simply discarded).
#pragma once

#include <cstddef>

#include "gravity/expansion.hpp"
#include "simd/isa.hpp"

namespace ss::gravity::detail {

struct FmmKernelTable {
  int width = 1;
  /// Accumulate into L (coef_count(p) doubles) the local-expansion
  /// contributions of `width` source cells: multipoles in msoa laid out
  /// [coef][lane], displacements d = z_target - z_source per lane.
  void (*m2l)(const double* msoa, const double* dx, const double* dy,
              const double* dz, double eps2, int p, double* L) = nullptr;
  /// Evaluate the local expansion at `width` body offsets s from the
  /// expansion center: per-lane acceleration and *positive* potential
  /// (the caller negates once, matching the scalar oracle's convention).
  void (*l2p)(const double* L, const double* sx, const double* sy,
              const double* sz, int p, double* ax, double* ay, double* az,
              double* psi) = nullptr;
};

/// Always available.
const FmmKernelTable* fmm_kernels_scalar();
/// nullptr unless this binary carries the backend.
const FmmKernelTable* fmm_kernels_avx2();
const FmmKernelTable* fmm_kernels_neon();
const FmmKernelTable* fmm_kernels_avx512();

/// Table for an explicit ISA, or nullptr if not compiled in.
const FmmKernelTable* fmm_kernels_for(simd::Isa isa);

/// Table for the active ISA, falling back to scalar. Never nullptr.
const FmmKernelTable& fmm_kernels_active();

}  // namespace ss::gravity::detail
