// NEON (AArch64) instantiation of the explicit-SIMD FMM operators. NEON
// is baseline on AArch64, so no special flags; empty elsewhere.
#include "gravity/fmm_dispatch.hpp"
#include "simd/vec.hpp"

#if defined(SS_SIMD_HAVE_NEON)

#include "gravity/fmm_simd.inl"

namespace ss::gravity::detail {

const FmmKernelTable* fmm_kernels_neon() {
  static const FmmKernelTable table{
      simd::NeonVec::kWidth,
      &vec_kernels::fmm_m2l<simd::NeonVec>,
      &vec_kernels::fmm_l2p<simd::NeonVec>,
  };
  return &table;
}

}  // namespace ss::gravity::detail

#else  // !SS_SIMD_HAVE_NEON

namespace ss::gravity::detail {

const FmmKernelTable* fmm_kernels_neon() { return nullptr; }

}  // namespace ss::gravity::detail

#endif
