// Runtime dispatch front end for the explicit-SIMD gravity kernels.
//
// simd::active() picks the ISA once (force > SS_SIMD env > CPUID); here
// that choice is mapped to the per-backend kernel table, falling back to
// the scalar backend when the selected ISA was not compiled into this
// binary (e.g. an x86 build without AVX2 compiler support running on an
// AVX2 machine).
#include "gravity/batch_dispatch.hpp"

namespace ss::gravity {

namespace detail {

const SimdKernelTable* simd_kernels_for(simd::Isa isa) {
  switch (isa) {
    case simd::Isa::scalar:
      return simd_kernels_scalar();
    case simd::Isa::avx2:
      return simd_kernels_avx2();
    case simd::Isa::neon:
      return simd_kernels_neon();
    case simd::Isa::avx512:
      return simd_kernels_avx512();
  }
  return nullptr;
}

const SimdKernelTable& simd_kernels_active() {
  const SimdKernelTable* t = simd_kernels_for(simd::active());
  if (t == nullptr) t = simd_kernels_scalar();
  return *t;
}

}  // namespace detail

bool simd_backend_compiled(simd::Isa isa) {
  return detail::simd_kernels_for(isa) != nullptr;
}

void rsqrt_simd_batch(const double* x, double* out, std::size_t n) {
  detail::simd_kernels_active().rsqrt(x, out, n);
}

Accel interact_bodies_simd(const Vec3& target, const SourcesSoA& tile,
                           double eps2) {
  return detail::simd_kernels_active().bodies(target, tile, eps2);
}

Accel interact_cells_simd(const Vec3& target, const CellsSoA& tile,
                          double eps2) {
  return detail::simd_kernels_active().cells(target, tile, eps2);
}

void interact_batch_simd(std::span<const Vec3> targets,
                         const SourcesSoA& sources, double eps2,
                         std::span<Accel> out) {
  const detail::SimdKernelTable& k = detail::simd_kernels_active();
  for (std::size_t t = 0; t < targets.size(); ++t) {
    out[t] = k.bodies(targets[t], sources, eps2);
  }
}

}  // namespace ss::gravity
