// NEON (AArch64) instantiation of the explicit-SIMD gravity kernels.
// NEON is architectural baseline on AArch64, so no special flags are
// needed — the guard simply keys on the target architecture.
#include "gravity/batch_dispatch.hpp"
#include "simd/vec.hpp"

#if defined(SS_SIMD_HAVE_NEON)

#include "gravity/batch_simd.inl"

namespace ss::gravity::detail {

const SimdKernelTable* simd_kernels_neon() {
  static const SimdKernelTable table{
      &vec_kernels::rsqrt_batch<simd::NeonVec>,
      &vec_kernels::interact_bodies<simd::NeonVec>,
      &vec_kernels::interact_cells<simd::NeonVec>,
  };
  return &table;
}

}  // namespace ss::gravity::detail

#else  // !SS_SIMD_HAVE_NEON

namespace ss::gravity::detail {

const SimdKernelTable* simd_kernels_neon() { return nullptr; }

}  // namespace ss::gravity::detail

#endif
