// AVX-512F instantiation of the explicit-SIMD FMM operators. Compiled
// with -mavx512f where available; empty otherwise.
#include "gravity/fmm_dispatch.hpp"
#include "simd/vec.hpp"

#if defined(SS_SIMD_HAVE_AVX512)

#include "gravity/fmm_simd.inl"

namespace ss::gravity::detail {

const FmmKernelTable* fmm_kernels_avx512() {
  static const FmmKernelTable table{
      simd::Avx512Vec::kWidth,
      &vec_kernels::fmm_m2l<simd::Avx512Vec>,
      &vec_kernels::fmm_l2p<simd::Avx512Vec>,
  };
  return &table;
}

}  // namespace ss::gravity::detail

#else  // !SS_SIMD_HAVE_AVX512

namespace ss::gravity::detail {

const FmmKernelTable* fmm_kernels_avx512() { return nullptr; }

}  // namespace ss::gravity::detail

#endif
