// vmpi: a virtual MPI.
//
// An SPMD message-passing runtime whose ranks are threads of one process
// and whose clock is virtual. The API follows the MPI idiom (buffered
// sends, blocking and polling receives matched on (source, tag),
// collectives built from point-to-point trees) so that the treecode, the
// NPB kernels and the parallel LU factorization exercise the same
// communication structure they would on the real cluster; time comes from
// a TimeModel instead of a wall clock, so a 256-"processor" run executes
// on a single core and reports the virtual time the modeled cluster would
// have taken.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "obs/obs.hpp"
#include "vmpi/timemodel.hpp"
#include "vmpi/transport.hpp"

namespace ss::vmpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Thrown inside rank bodies when another rank failed and the run is being
/// torn down; the runtime swallows it during unwinding.
struct Aborted : std::runtime_error {
  Aborted() : std::runtime_error("vmpi run aborted") {}
};

/// Causal flow id of one application message: (src, dst, per-link seq)
/// packed into 64 bits. Nonzero only when an observer is attached — the
/// id pairs the sender's 's' trace event with the receiver's 'f' so
/// cross-rank message chains render as arrows and the critical-path
/// analyzer can walk the DAG.
inline std::uint64_t make_flow_id(int src, int dst, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 32) |
         seq;
}

struct Message {
  int src = 0;
  int tag = 0;
  double arrival = 0.0;  ///< Virtual arrival time at the destination.
  std::uint64_t flow = 0;  ///< Causal flow id (0 when tracing is off).
  std::vector<std::byte> data;

  template <typename T>
  std::vector<T> as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    if (data.size() % sizeof(T) != 0) {
      throw std::runtime_error("vmpi: message size not a multiple of type");
    }
    std::vector<T> out(data.size() / sizeof(T));
    if (!data.empty()) {  // empty vectors may hand memcpy a null pointer
      std::memcpy(out.data(), data.data(), data.size());
    }
    return out;
  }

  /// Zero-copy move-out of the raw payload: the message is left empty and
  /// the buffer (with its capacity) transfers to the caller. This is the
  /// hot path for consumers that recycle receive buffers (ABM batch pool).
  std::vector<std::byte> take_data() { return std::move(data); }

  /// Consuming typed read. For T = std::byte this is a true zero-copy
  /// move; for other types it performs the one unavoidable reinterpreting
  /// copy but releases the payload storage immediately (unlike as(), which
  /// leaves a second live copy inside the message).
  template <typename T>
  std::vector<T> take() {
    static_assert(std::is_trivially_copyable_v<T>);
    if constexpr (std::is_same_v<T, std::byte>) {
      return std::move(data);
    } else {
      auto out = as<T>();
      data.clear();
      data.shrink_to_fit();
      return out;
    }
  }
};

class Runtime;

namespace detail {

/// Sub-communicator wire-tag contexts. Each live group maps its traffic
/// into a private window of the tag space so that two groups — or two
/// successive incarnations of the same partition — can never match each
/// other's messages: application tags [0, kGroupAppSpan) land at
/// [base, base + kGroupAppSpan) and collective tags fill the rest of the
/// window, with base = kGroupTagBase + (ctx % kGroupContexts) *
/// kGroupTagSpan. Ungrouped communicators translate nothing, so root-level
/// traffic is bit-for-bit what it was before groups existed.
inline constexpr int kGroupTagBase = 1 << 26;
inline constexpr int kGroupTagSpan = 1 << 21;
inline constexpr int kGroupAppSpan = 1 << 20;
inline constexpr int kGroupContexts =
    (0x7fffffff - kGroupTagBase) / kGroupTagSpan;

}  // namespace detail

/// Per-rank communicator handle. Only the owning rank thread may use it.
///
/// A Comm can temporarily act as a *sub-communicator*: split() and
/// partition() push a group frame, after which rank()/size() and every
/// send/recv/collective operate in group-local coordinates over the
/// member subset, with traffic confined to the group's tag context.
/// Frames nest LIFO (the returned guard pops on destruction); internals
/// (mailboxes, clocks, transport, traffic slots) always use the world
/// rank, so the fabric model keeps seeing the true topology.
class Comm {
 public:
  int rank() const { return groups_.empty() ? rank_ : groups_.back().local; }
  int size() const;

  /// Identity in the owning Runtime, regardless of active group frames.
  int world_rank() const { return rank_; }
  int world_size() const;
  /// True while a sub-communicator frame is active.
  bool grouped() const { return !groups_.empty(); }

  /// Current virtual time of this rank.
  double time() const { return vtime_; }
  /// Stable address of this rank's virtual clock (for obs recorders; valid
  /// while this Comm lives, i.e. for the duration of the rank body).
  const double* time_ptr() const { return &vtime_; }

  /// Advance this rank's virtual clock by a compute phase.
  void compute(double seconds) { vtime_ += seconds; }
  /// Roofline-charged compute phase: flops executed, bytes touched.
  void compute_work(std::uint64_t flops, std::uint64_t bytes);

  // -- point to point ------------------------------------------------------

  /// Buffered, non-blocking send (never deadlocks; MPI_Bsend semantics).
  void send_bytes(int dst, int tag, std::span<const std::byte> bytes);

  /// Zero-copy variant: the buffer is moved into the destination mailbox
  /// instead of copied. The hot path for senders that own a byte buffer
  /// they are done with (ABM batch shipping).
  void send_bytes_move(int dst, int tag, std::vector<std::byte>&& bytes);

  /// Send an empty token whose *cost* is that of a `modeled_bytes`-byte
  /// message. Used by the benchmark kernels to reproduce the wire traffic
  /// of problem sizes too large to materialize (the payload itself is
  /// irrelevant to the experiment).
  void send_placeholder(int dst, int tag, std::size_t modeled_bytes);

  template <typename T>
  void send(int dst, int tag, std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag,
               {reinterpret_cast<const std::byte*>(items.data()),
                items.size() * sizeof(T)});
  }

  template <typename T>
  void send_value(int dst, int tag, const T& v) {
    send<T>(dst, tag, std::span<const T>(&v, 1));
  }

  /// Blocking receive matched on (src, tag); kAnySource/kAnyTag wildcard.
  Message recv_msg(int src = kAnySource, int tag = kAnyTag);

  /// Non-blocking probe-and-receive.
  std::optional<Message> try_recv(int src = kAnySource, int tag = kAnyTag);

  template <typename T>
  std::vector<T> recv(int src, int tag) {
    return recv_msg(src, tag).as<T>();
  }

  template <typename T>
  T recv_value(int src, int tag) {
    auto v = recv<T>(src, tag);
    if (v.size() != 1) throw std::runtime_error("vmpi: expected one value");
    return v[0];
  }

  // -- collectives (see comm_collectives.inl for templates) ----------------

  void barrier();

  template <typename T>
  void bcast(std::vector<T>& data, int root);
  template <typename T>
  T bcast_value(T v, int root);

  /// Element-wise reduction to root with the given associative op.
  template <typename T, typename Op>
  std::vector<T> reduce(std::span<const T> local, Op op, int root);
  template <typename T, typename Op>
  std::vector<T> allreduce(std::span<const T> local, Op op);
  template <typename T, typename Op>
  T allreduce_value(T v, Op op);
  double allreduce_max(double v);
  double allreduce_sum(double v);
  std::uint64_t allreduce_sum_u64(std::uint64_t v);

  /// Inclusive prefix reduction.
  template <typename T, typename Op>
  T scan(T v, Op op);

  template <typename T>
  std::vector<T> gather(std::span<const T> local, int root);
  template <typename T>
  std::vector<T> allgather(std::span<const T> local);
  template <typename T>
  std::vector<T> allgather_value(const T& v);

  /// Personalized all-to-all: `per_dest[d]` goes to rank d; the result
  /// concatenates the blocks received from ranks 0..P-1 in rank order.
  /// The self-block never touches a mailbox, and zero-byte non-self
  /// blocks are never posted (each shipped block carries a count header,
  /// so absence is distinguishable from emptiness).
  template <typename T>
  std::vector<T> alltoallv(const std::vector<std::vector<T>>& per_dest);

  /// Reference alltoallv: dense pairwise exchange posting every block,
  /// empty or not. Kept as the test oracle for the sparse path above.
  template <typename T>
  std::vector<T> alltoallv_dense(const std::vector<std::vector<T>>& per_dest);

  /// Combined send+receive with distinct partners (MPI_Sendrecv): always
  /// deadlock-free here thanks to buffered sends, provided the partners'
  /// calls pair up.
  template <typename T>
  std::vector<T> sendrecv(int dst, std::span<const T> send_items, int src) {
    const int tag = coll_tag();
    send<T>(dst, tag, send_items);
    return recv_msg(src, tag).template as<T>();
  }

  /// Element-wise reduce followed by scattering equal blocks: rank r gets
  /// elements [r*n, (r+1)*n) of the reduction, n = local.size() / size().
  /// Pairwise exchange (O(n) data per rank, not the O(P*n) of the old
  /// allreduce-then-slice): each rank ships partner-sized blocks and
  /// combines only its own. The op must be commutative (combination order
  /// is rank-distance order, not rank order).
  template <typename T, typename Op>
  std::vector<T> reduce_scatter_block(std::span<const T> local, Op op);

  /// Reference implementation (allreduce the full vector, then slice).
  /// O(P*n) traffic; kept as the test oracle for the pairwise path.
  template <typename T, typename Op>
  std::vector<T> reduce_scatter_block_via_allreduce(std::span<const T> local,
                                                    Op op) {
    if (local.size() % static_cast<std::size_t>(size()) != 0) {
      throw std::invalid_argument(
          "reduce_scatter_block: length must divide by ranks");
    }
    auto full = allreduce(local, op);
    const std::size_t n = local.size() / static_cast<std::size_t>(size());
    const std::size_t off = n * static_cast<std::size_t>(rank());
    return {full.begin() + static_cast<std::ptrdiff_t>(off),
            full.begin() + static_cast<std::ptrdiff_t>(off + n)};
  }

  /// Synchronize virtual clocks to the global maximum (implicit in every
  /// barrier; exposed for timing sections).
  double barrier_max_time();

  /// Fresh tag from the reserved collective namespace. Ranks calling in
  /// the same order get matching tags — useful for hand-rolled collective
  /// patterns outside this class.
  int fresh_tag() { return coll_tag(); }

  /// Physical messages / payload bytes sent by this rank so far. Reads the
  /// runtime's own-rank traffic slot, which only this thread writes, so
  /// the call is race-free; per-phase deltas give per-step message counts.
  std::uint64_t sent_messages() const;
  std::uint64_t sent_bytes() const;

  /// Block until every message this rank has sent is delivered into its
  /// destination mailbox. On the perfect fabric delivery is synchronous
  /// and this is a no-op; under the reliable transport it waits for the
  /// cumulative acks, restoring the "enqueued at send time" invariant
  /// that the sparse alltoallv and the engine's end-of-step drain rely
  /// on. Implicit at the top of every barrier().
  void quiesce();

  /// Human-readable per-flow transport protocol state for this rank
  /// (empty string on a clean fabric). The payload of drain-watchdog
  /// error messages.
  std::string transport_dump() const;

  /// The observer Session attached to the owning Runtime, or nullptr.
  /// Lets engine watchdogs snapshot every rank's flight recorder into a
  /// postmortem file before they throw.
  obs::Session* observer() const;

  // -- sub-communicators ---------------------------------------------------

  /// RAII handle for one group frame. Move-only; popping out of LIFO
  /// order is a programming error (asserted). A guard obtained from a
  /// split() where this rank passed color < 0 holds no frame
  /// (member() == false) and pops nothing.
  class GroupGuard {
   public:
    GroupGuard(GroupGuard&& o) noexcept : comm_(o.comm_), depth_(o.depth_) {
      o.comm_ = nullptr;
    }
    GroupGuard(const GroupGuard&) = delete;
    GroupGuard& operator=(const GroupGuard&) = delete;
    GroupGuard& operator=(GroupGuard&&) = delete;
    ~GroupGuard();
    /// False when this rank is not a member of the group (split color < 0).
    bool member() const { return comm_ != nullptr; }

   private:
    friend class Comm;
    GroupGuard(Comm* c, std::size_t depth) : comm_(c), depth_(depth) {}
    Comm* comm_;         // null: non-member or moved-from
    std::size_t depth_;  // expected groups_.size() at pop time
  };

  /// Push a group over the contiguous rank range [base, base + count) of
  /// the *current* frame, with tag context `ctx`. Non-collective: only the
  /// member ranks call it (this rank must be inside the range), but every
  /// member must use the same (base, count, ctx) triple. Group rank =
  /// offset within the range.
  GroupGuard partition(int base, int count, int ctx);

  /// MPI_Comm_split over the current frame: collective on *all* ranks.
  /// Members with equal `color` form a group, ordered by (key, rank);
  /// color < 0 opts out (returns a non-member guard). `ctx` must agree
  /// across ranks; ctx < 0 derives one from a per-frame split counter
  /// (fine when groups are never re-created after a fault — schedulers
  /// that reuse partitions should pass an explicit fresh context).
  GroupGuard split(int color, int key, int ctx = -1);

  /// Drop every undelivered message in this rank's mailbox whose wire tag
  /// belongs to context `ctx`'s window. Call after abandoning a group
  /// (e.g. a killed job) before its context could be reused. Returns the
  /// number of messages discarded.
  std::size_t purge_context(int ctx);

 private:
  friend class Runtime;
  friend class Transport;
  Comm(Runtime& rt, int rank) : rt_(&rt), rank_(rank) {}

  int coll_tag();  ///< Fresh tag from the reserved collective namespace.

  /// Cache this rank's obs counters so hot-path hooks are a pointer test
  /// plus an increment (no name lookups). Called by Runtime::run when an
  /// observer Session is attached; never called otherwise.
  void bind_observer(obs::Rank* rec);

  /// Fresh flow id for a message to `dst` (observer attached only).
  std::uint64_t next_flow(int dst) {
    const std::uint32_t seq = ++flow_next_[static_cast<std::size_t>(dst)];
    return make_flow_id(rank_, dst, seq);
  }

  /// Receive-side observability: count the receive, accumulate the wait,
  /// close the flow ('f' event) and append a flight record.
  void note_recv(const Message& m, double wait) {
    obs_recvs_->add(1);
    if (wait > 0.0) obs_wait_->add(wait);
    if (m.flow != 0) {
      obs_->flow_end("vmpi.msg", m.flow, wait);
      obs_->flight(obs::FlightKind::kRecv, m.src, m.flow, wait);
    }
  }

  /// One active sub-communicator frame. All bookkeeping is group-local;
  /// `members` maps group rank -> world rank.
  struct GroupFrame {
    std::vector<int> members;
    int local = 0;     ///< This rank's position in members.
    int tag_base = 0;  ///< Wire-tag window base (from the context id).
    int coll_seq = 0;  ///< Group-local collective tag counter.
    int split_seq = 0; ///< Derives default contexts for nested splits.
  };

  /// Group rank -> world rank under the current frame (identity at root).
  int to_world(int r) const;
  /// World rank -> group rank; throws if `w` is not a member.
  int local_of_world(int w) const;
  /// Application/collective tag -> wire tag under the current frame.
  int wire_tag(int tag) const;
  /// Inverse of wire_tag for delivered messages.
  int app_tag(int wire) const;
  static int tag_base_of(int ctx) {
    return detail::kGroupTagBase +
           (ctx % detail::kGroupContexts) * detail::kGroupTagSpan;
  }

  Runtime* rt_;
  int rank_;
  double vtime_ = 0.0;
  int coll_seq_ = 0;
  int split_seq_ = 0;  ///< Root-frame default-context counter.
  std::vector<GroupFrame> groups_;

  // Observability (null when tracing is disabled).
  obs::Rank* obs_ = nullptr;
  obs::Counter* obs_msgs_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_recvs_ = nullptr;
  obs::Gauge* obs_wait_ = nullptr;
  std::vector<std::uint32_t> flow_next_;  ///< Per-dst app sequence numbers.
};

/// Owns the rank threads and mailboxes for one SPMD execution.
class Runtime {
 public:
  explicit Runtime(int nranks,
                   std::shared_ptr<TimeModel> model =
                       std::make_shared<ZeroTimeModel>());

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Run `body` on every rank; returns when all ranks finish. Rethrows the
  /// first rank exception after tearing the run down.
  void run(const std::function<void(Comm&)>& body);

  int size() const { return nranks_; }
  TimeModel& model() { return *model_; }

  /// Attach a lossy-fabric fault model to subsequent run()s.
  ///
  /// In reliable mode (the default) every point-to-point message — and
  /// therefore every collective and ABM batch — rides the CRC'd, ack'd,
  /// retransmitting transport (vmpi/transport.hpp): the fabric drops,
  /// duplicates, reorders and corrupts physical frames, yet the
  /// application sees a clean, in-order, bit-exact stream.
  ///
  /// In raw mode (`reliable = false`) the faults hit application
  /// messages directly: a dropped frame simply never arrives, a
  /// corrupted one delivers flipped bytes. This is the "what the fabric
  /// does to an unprotected protocol" mode; pair it with
  /// LinkFaultModel::set_tag_range to confine damage to app traffic.
  ///
  /// Pass nullptr to restore the perfect fabric (the default path, which
  /// is byte-for-byte the pre-transport code).
  void set_fault_model(std::shared_ptr<LinkFaultModel> faults,
                       TransportConfig cfg = {}, bool reliable = true);
  const LinkFaultModel* fault_model() const { return faults_.get(); }

  /// The reliable transport, or nullptr when the fabric is perfect or raw.
  Transport* transport() { return transport_.get(); }

  /// Aggregate transport protocol activity over the last run() (all
  /// zeros when no reliable transport is attached).
  NetTotals net_totals() const;

  /// Attach an observability session (one recorder per rank) to the next
  /// run(): rank threads get bound recorders, phase spans are stamped
  /// with the rank's virtual clock, and per-rank `vmpi.*` counters are
  /// surfaced through each rank's Registry. Pass nullptr to detach. The
  /// session must outlive run() and have exactly `size()` ranks.
  void attach_observer(obs::Session* session);
  obs::Session* observer() const { return observer_; }

  /// Maximum final virtual time over ranks from the last run().
  double elapsed_vtime() const { return elapsed_vtime_; }
  /// Total messages / payload bytes moved during the last run() (sums of
  /// the per-rank counters below).
  std::uint64_t messages_sent() const;
  std::uint64_t bytes_sent() const;
  /// Messages / payload bytes sent *by* `rank` during the last run().
  std::uint64_t messages_sent(int rank) const;
  std::uint64_t bytes_sent(int rank) const;

 private:
  friend class Comm;
  friend class Transport;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  /// Send-side traffic counters, one slot per source rank. Each slot is
  /// written only by its own rank thread (deliver runs on the sender), so
  /// plain fields suffice; the padding keeps neighbouring ranks off the
  /// same cache line.
  struct alignas(64) RankTraffic {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };

  void deliver(int src, int dst, int tag, std::vector<std::byte>&& bytes,
               double depart, std::size_t modeled_bytes,
               std::uint64_t flow = 0);
  /// Blocking receive. `tag == kAnyTag` matches only wire tags inside
  /// [tag_lo, tag_hi) — the caller's group window, or the full range at
  /// root — so a wildcard receive inside a group never steals another
  /// tenant's traffic.
  Message wait_match(int self, int src, int tag, int tag_lo, int tag_hi);
  /// Transport-aware blocking receive: alternates protocol pumping with
  /// bounded waits, because frames land in the transport inbox and only
  /// reach the mailbox when the owning rank pumps.
  Message wait_match_pumped(Comm& c, int src, int tag, int tag_lo,
                            int tag_hi);
  std::optional<Message> poll_match(int self, int src, int tag, int tag_lo,
                                    int tag_hi);
  static bool matches(const Message& m, int src, int tag, int tag_lo,
                      int tag_hi);
  void enqueue(int dst, Message&& m);
  /// Erase queued messages whose wire tag lies in [tag_lo, tag_hi).
  std::size_t purge_tags(int self, int tag_lo, int tag_hi);

  /// Raw-mode per-source fault state (fate keys and the one-deep reorder
  /// hold slot per destination). Touched only by the owning sender
  /// thread, padded so neighbours never share a line.
  struct alignas(64) RawNet {
    std::vector<std::uint64_t> keys;           // per-dst transmission count
    std::vector<std::optional<Message>> held;  // per-dst reorder hold
  };

  int nranks_;
  std::shared_ptr<TimeModel> model_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::atomic<bool> aborted_{false};
  std::vector<RankTraffic> traffic_;  // indexed by source rank
  obs::Session* observer_ = nullptr;
  double elapsed_vtime_ = 0.0;

  // Lossy fabric (both null/empty on the perfect fabric).
  std::shared_ptr<LinkFaultModel> faults_;
  std::unique_ptr<Transport> transport_;  // reliable mode only
  std::vector<RawNet> raw_;               // raw mode only
};

}  // namespace ss::vmpi

#include "vmpi/comm_collectives.inl"
