#include "vmpi/comm.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <exception>
#include <limits>
#include <thread>

namespace ss::vmpi {

int Comm::size() const {
  return groups_.empty() ? rt_->nranks_
                         : static_cast<int>(groups_.back().members.size());
}

int Comm::world_size() const { return rt_->nranks_; }

int Comm::to_world(int r) const {
  if (r < 0 || r >= size()) {
    throw std::out_of_range("vmpi: rank outside communicator");
  }
  return groups_.empty() ? r
                         : groups_.back().members[static_cast<std::size_t>(r)];
}

int Comm::local_of_world(int w) const {
  if (groups_.empty()) return w;
  const auto& m = groups_.back().members;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i] == w) return static_cast<int>(i);
  }
  throw std::logic_error("vmpi: message from outside the active group");
}

int Comm::wire_tag(int tag) const {
  if (groups_.empty()) return tag;
  const int base = groups_.back().tag_base;
  if (tag >= 0 && tag < detail::kGroupAppSpan) return base + tag;
  if (tag >= detail::kCollectiveTagBase &&
      tag < detail::kCollectiveTagBase + detail::kCollectiveTagSpan) {
    return base + detail::kGroupAppSpan + (tag - detail::kCollectiveTagBase);
  }
  throw std::invalid_argument("vmpi: tag out of range for grouped comm");
}

int Comm::app_tag(int wire) const {
  if (groups_.empty()) return wire;
  const int base = groups_.back().tag_base;
  const int off = wire - base;
  if (off < 0 || off >= detail::kGroupTagSpan) return wire;
  if (off < detail::kGroupAppSpan) return off;
  return detail::kCollectiveTagBase + (off - detail::kGroupAppSpan);
}

Comm::GroupGuard::~GroupGuard() {
  if (comm_ == nullptr) return;
  assert(comm_->groups_.size() == depth_ &&
         "vmpi: group frames must pop in LIFO order");
  comm_->groups_.pop_back();
}

Comm::GroupGuard Comm::partition(int base, int count, int ctx) {
  if (count < 1 || base < 0 || base + count > size()) {
    throw std::invalid_argument("vmpi partition: range outside communicator");
  }
  if (ctx < 0) throw std::invalid_argument("vmpi partition: ctx must be >= 0");
  const int me = rank();
  if (me < base || me >= base + count) {
    throw std::invalid_argument(
        "vmpi partition: calling rank outside the partition");
  }
  GroupFrame f;
  f.members.reserve(static_cast<std::size_t>(count));
  for (int r = base; r < base + count; ++r) f.members.push_back(to_world(r));
  f.local = me - base;
  f.tag_base = tag_base_of(ctx);
  groups_.push_back(std::move(f));
  return GroupGuard(this, groups_.size());
}

Comm::GroupGuard Comm::split(int color, int key, int ctx) {
  struct Item {
    int color;
    int key;
  };
  const Item mine{color, key};
  // Ring allgather returns blocks in group-rank order, so every member
  // derives the same membership list.
  const std::vector<Item> all = allgather_value(mine);
  if (ctx < 0) {
    ctx = groups_.empty() ? split_seq_++ : groups_.back().split_seq++;
  }
  if (color < 0) return GroupGuard(nullptr, 0);
  GroupFrame f;
  std::vector<std::pair<int, int>> order;  // (key, group rank), my color only
  for (int r = 0; r < static_cast<int>(all.size()); ++r) {
    if (all[static_cast<std::size_t>(r)].color == color) {
      order.emplace_back(all[static_cast<std::size_t>(r)].key, r);
    }
  }
  std::sort(order.begin(), order.end());
  const int me = rank();
  f.members.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    f.members.push_back(to_world(order[i].second));
    if (order[i].second == me) f.local = static_cast<int>(i);
  }
  // Distinct colors get distinct contexts (same split, disjoint windows).
  f.tag_base = tag_base_of(ctx * 31 + color);
  groups_.push_back(std::move(f));
  return GroupGuard(this, groups_.size());
}

std::size_t Comm::purge_context(int ctx) {
  const int lo = tag_base_of(ctx);
  return rt_->purge_tags(rank_, lo, lo + detail::kGroupTagSpan);
}

void Comm::bind_observer(obs::Rank* rec) {
  obs_ = rec;
  if (rec == nullptr) {
    obs_msgs_ = nullptr;
    obs_bytes_ = nullptr;
    obs_recvs_ = nullptr;
    obs_wait_ = nullptr;
    return;
  }
  auto& reg = rec->registry();
  obs_msgs_ = &reg.counter("vmpi.messages_sent");
  obs_bytes_ = &reg.counter("vmpi.bytes_sent");
  obs_recvs_ = &reg.counter("vmpi.recvs");
  obs_wait_ = &reg.gauge("vmpi.recv_wait_seconds");
  flow_next_.assign(static_cast<std::size_t>(rt_->nranks_), 0);
}

obs::Session* Comm::observer() const { return rt_->observer_; }

void Comm::compute_work(std::uint64_t flops, std::uint64_t bytes) {
  vtime_ += rt_->model_->compute_seconds(flops, bytes);
}

int Comm::coll_tag() {
  int& seq = groups_.empty() ? coll_seq_ : groups_.back().coll_seq;
  const int tag =
      detail::kCollectiveTagBase + (seq % detail::kCollectiveTagSpan);
  ++seq;
  return tag;
}

void Comm::send_bytes(int dst, int tag, std::span<const std::byte> bytes) {
  // The one copy a borrowed buffer needs; owners of a byte vector can use
  // send_bytes_move to skip it.
  send_bytes_move(dst, tag,
                  std::vector<std::byte>(bytes.begin(), bytes.end()));
}

void Comm::send_bytes_move(int dst, int tag, std::vector<std::byte>&& bytes) {
  if (dst < 0 || dst >= size()) {
    throw std::out_of_range("vmpi send: bad destination rank");
  }
  const int wdst = to_world(dst);
  const int wtag = wire_tag(tag);
  const std::size_t n = bytes.size();
  std::uint64_t flow = 0;
  if (obs_ != nullptr) {
    flow = next_flow(wdst);
    obs_->flow_begin("vmpi.msg", flow);
    obs_->flight(obs::FlightKind::kSend, wdst, flow, static_cast<double>(n));
  }
  if (rt_->transport_ != nullptr) {
    rt_->transport_->send(*this, wdst, wtag, std::move(bytes), n,
                          static_cast<std::uint32_t>(flow));
  } else {
    rt_->deliver(rank_, wdst, wtag, std::move(bytes), vtime_, n, flow);
  }
  if (obs_ != nullptr) {
    obs_msgs_->add(1);
    obs_bytes_->add(n);
  }
}

void Comm::send_placeholder(int dst, int tag, std::size_t modeled_bytes) {
  if (dst < 0 || dst >= size()) {
    throw std::out_of_range("vmpi send: bad destination rank");
  }
  const int wdst = to_world(dst);
  const int wtag = wire_tag(tag);
  std::uint64_t flow = 0;
  if (obs_ != nullptr) {
    flow = next_flow(wdst);
    obs_->flow_begin("vmpi.msg", flow);
    obs_->flight(obs::FlightKind::kSend, wdst, flow,
                 static_cast<double>(modeled_bytes));
  }
  if (rt_->transport_ != nullptr) {
    rt_->transport_->send(*this, wdst, wtag, {}, modeled_bytes,
                          static_cast<std::uint32_t>(flow));
  } else {
    rt_->deliver(rank_, wdst, wtag, {}, vtime_, modeled_bytes, flow);
  }
  if (obs_ != nullptr) {
    obs_msgs_->add(1);
    obs_bytes_->add(modeled_bytes);
  }
}

void Comm::quiesce() {
  if (rt_->transport_ != nullptr) rt_->transport_->quiesce(*this);
}

std::string Comm::transport_dump() const {
  return rt_->transport_ != nullptr ? rt_->transport_->dump(rank_)
                                    : std::string{};
}

std::uint64_t Comm::sent_messages() const {
  return rt_->traffic_[static_cast<std::size_t>(rank_)].messages;
}

std::uint64_t Comm::sent_bytes() const {
  return rt_->traffic_[static_cast<std::size_t>(rank_)].bytes;
}

Message Comm::recv_msg(int src, int tag) {
  const double before = vtime_;
  const int wsrc = src == kAnySource ? kAnySource : to_world(src);
  const int wtag = tag == kAnyTag ? kAnyTag : wire_tag(tag);
  // Wildcard receives are confined to the active group's tag window so a
  // sub-communicator can never steal a co-tenant's (or the root's) traffic.
  const int lo =
      groups_.empty() ? std::numeric_limits<int>::min() : groups_.back().tag_base;
  const int hi = groups_.empty() ? std::numeric_limits<int>::max()
                                 : groups_.back().tag_base + detail::kGroupTagSpan;
  Message m = rt_->transport_ != nullptr
                  ? rt_->wait_match_pumped(*this, wsrc, wtag, lo, hi)
                  : rt_->wait_match(rank_, wsrc, wtag, lo, hi);
  vtime_ = std::max(vtime_, m.arrival);
  if (obs_ != nullptr) note_recv(m, vtime_ - before);
  if (!groups_.empty()) {
    m.src = local_of_world(m.src);
    m.tag = app_tag(m.tag);
  }
  return m;
}

std::optional<Message> Comm::try_recv(int src, int tag) {
  const double before = vtime_;
  const int wsrc = src == kAnySource ? kAnySource : to_world(src);
  const int wtag = tag == kAnyTag ? kAnyTag : wire_tag(tag);
  const int lo =
      groups_.empty() ? std::numeric_limits<int>::min() : groups_.back().tag_base;
  const int hi = groups_.empty() ? std::numeric_limits<int>::max()
                                 : groups_.back().tag_base + detail::kGroupTagSpan;
  if (rt_->transport_ != nullptr) rt_->transport_->pump(*this);
  auto m = rt_->poll_match(rank_, wsrc, wtag, lo, hi);
  if (m) {
    vtime_ = std::max(vtime_, m->arrival);
    if (obs_ != nullptr) note_recv(*m, vtime_ - before);
    if (!groups_.empty()) {
      m->src = local_of_world(m->src);
      m->tag = app_tag(m->tag);
    }
  }
  return m;
}

void Comm::barrier() {
  // Under the reliable transport, first wait until everything this rank
  // sent is acked (= delivered to its destination mailbox). Combined
  // with the barrier that follows, this restores the perfect fabric's
  // invariant that all pre-barrier sends are visible after the barrier.
  quiesce();
  // Dissemination barrier: ceil(log2 p) rounds of shifted exchanges.
  const int p = size();
  const int me = rank();
  const int tag = coll_tag();
  const std::byte token{0};
  for (int step = 1; step < p; step <<= 1) {
    send_bytes((me + step) % p, tag, {&token, 1});
    (void)recv_msg((me - step + p) % p, tag);
  }
}

double Comm::barrier_max_time() {
  const double t = allreduce_max(vtime_);
  vtime_ = t;
  return t;
}

double Comm::allreduce_max(double v) {
  return allreduce_value(v, [](double a, double b) { return std::max(a, b); });
}

double Comm::allreduce_sum(double v) {
  return allreduce_value(v, [](double a, double b) { return a + b; });
}

std::uint64_t Comm::allreduce_sum_u64(std::uint64_t v) {
  return allreduce_value(
      v, [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

Runtime::Runtime(int nranks, std::shared_ptr<TimeModel> model)
    : nranks_(nranks), model_(std::move(model)) {
  if (nranks_ <= 0) throw std::invalid_argument("vmpi: nranks must be > 0");
  boxes_.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    boxes_.push_back(std::make_unique<Mailbox>());
  }
  traffic_.resize(static_cast<std::size_t>(nranks_));
}

void Runtime::set_fault_model(std::shared_ptr<LinkFaultModel> faults,
                              TransportConfig cfg, bool reliable) {
  transport_.reset();
  raw_.clear();
  faults_ = std::move(faults);
  if (faults_ == nullptr) return;
  if (faults_->nranks() != nranks_) {
    throw std::invalid_argument(
        "vmpi: fault model rank count does not match runtime");
  }
  if (reliable) {
    transport_ = std::make_unique<Transport>(*this, faults_, cfg);
  } else {
    raw_.resize(static_cast<std::size_t>(nranks_));
    for (RawNet& n : raw_) {
      n.keys.assign(static_cast<std::size_t>(nranks_), 0);
      n.held.resize(static_cast<std::size_t>(nranks_));
    }
  }
}

NetTotals Runtime::net_totals() const {
  return transport_ != nullptr ? transport_->totals() : NetTotals{};
}

void Runtime::attach_observer(obs::Session* session) {
  if (session != nullptr && session->size() != nranks_) {
    throw std::invalid_argument(
        "vmpi: observer session rank count does not match runtime");
  }
  observer_ = session;
}

std::uint64_t Runtime::messages_sent() const {
  std::uint64_t total = 0;
  for (const RankTraffic& t : traffic_) total += t.messages;
  return total;
}

std::uint64_t Runtime::bytes_sent() const {
  std::uint64_t total = 0;
  for (const RankTraffic& t : traffic_) total += t.bytes;
  return total;
}

std::uint64_t Runtime::messages_sent(int rank) const {
  return traffic_.at(static_cast<std::size_t>(rank)).messages;
}

std::uint64_t Runtime::bytes_sent(int rank) const {
  return traffic_.at(static_cast<std::size_t>(rank)).bytes;
}

void Runtime::run(const std::function<void(Comm&)>& body) {
  aborted_.store(false);
  for (RankTraffic& t : traffic_) t = RankTraffic{};
  for (auto& b : boxes_) {
    std::lock_guard<std::mutex> lock(b->mu);
    b->queue.clear();
  }
  if (transport_ != nullptr) transport_->reset();
  for (RawNet& n : raw_) {
    std::fill(n.keys.begin(), n.keys.end(), 0);
    for (auto& h : n.held) h.reset();
  }

  std::vector<double> final_time(static_cast<std::size_t>(nranks_), 0.0);
  std::exception_ptr first_error;
  std::mutex error_mu;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(*this, r);
      // Observability: bind this rank's recorder (and the rank's virtual
      // clock) to the thread for the duration of the body. When no
      // session is attached every hook below is a null-pointer test.
      obs::Rank* rec = observer_ != nullptr ? &observer_->rank(r) : nullptr;
      obs::ThreadBind obs_bind(rec, comm.time_ptr());
      if (rec != nullptr) comm.bind_observer(rec);
      try {
        body(comm);
        // Reliable transport: stay alive serving acks and retransmits
        // until every rank's flows are clean, so no peer is left waiting
        // on a dead thread.
        if (transport_ != nullptr) transport_->drain(comm);
      } catch (const Aborted&) {
        // Teardown in progress; nothing more to record.
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        aborted_.store(true);
        for (auto& b : boxes_) b->cv.notify_all();
      }
      final_time[static_cast<std::size_t>(r)] = comm.time();
    });
  }
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  elapsed_vtime_ = *std::max_element(final_time.begin(), final_time.end());
}

void Runtime::deliver(int src, int dst, int tag, std::vector<std::byte>&& bytes,
                      double depart, std::size_t modeled_bytes,
                      std::uint64_t flow) {
  Message m;
  m.src = src;
  m.tag = tag;
  m.flow = flow;
  m.data = std::move(bytes);  // zero-copy: the sender's buffer becomes the
                              // message payload (recycled by ABM's pool).
  m.arrival = model_->arrival(src, dst, modeled_bytes, depart);
  // deliver() always runs on the sending rank's thread, so the per-rank
  // slot needs no synchronization.
  RankTraffic& traffic = traffic_[static_cast<std::size_t>(src)];
  ++traffic.messages;
  traffic.bytes += modeled_bytes;

  // Raw-mode fault injection: the fabric perturbs the application message
  // itself — no sequence numbers, no CRC, no retransmission. What the
  // protocol stack would have protected against, the application eats.
  if (faults_ != nullptr && transport_ == nullptr) {
    RawNet& net = raw_[static_cast<std::size_t>(src)];
    const std::uint64_t key = net.keys[static_cast<std::size_t>(dst)]++;
    const LinkFaultModel::Fate fate =
        faults_->decide(src, dst, tag, depart, key);
    auto& hold = net.held[static_cast<std::size_t>(dst)];
    if (fate.drop) {
      // Vanishes — but anything held behind it still goes out eventually,
      // carried by the next transmission on the link.
      return;
    }
    m.arrival += fate.extra_delay;
    if (fate.corrupt && !m.data.empty()) {
      const std::size_t idx =
          static_cast<std::size_t>(fate.salt % m.data.size());
      m.data[idx] ^= static_cast<std::byte>(1 + ((fate.salt >> 8) % 255));
    }
    Message dup;
    const bool have_dup = fate.duplicate;
    if (have_dup) {
      dup = m;  // deep copy of the (possibly corrupted) primary
      if (fate.corrupt_dup && !dup.data.empty()) {
        const std::size_t idx =
            static_cast<std::size_t>(fate.salt % dup.data.size());
        dup.data[idx] ^= static_cast<std::byte>(1 + ((fate.salt >> 16) % 255));
      }
    }
    if (fate.hold) {
      // Reorder: stash this message behind the link's next one.
      if (hold.has_value()) {
        Message prior = std::move(*hold);
        hold = std::move(m);
        enqueue(dst, std::move(prior));
      } else {
        hold = std::move(m);
      }
      if (have_dup) enqueue(dst, std::move(dup));
      return;
    }
    enqueue(dst, std::move(m));
    if (have_dup) enqueue(dst, std::move(dup));
    if (hold.has_value()) {
      Message released = std::move(*hold);
      hold.reset();
      enqueue(dst, std::move(released));
    }
    return;
  }

  enqueue(dst, std::move(m));
}

void Runtime::enqueue(int dst, Message&& m) {
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(m));
  }
  box.cv.notify_all();
}

bool Runtime::matches(const Message& m, int src, int tag, int tag_lo,
                      int tag_hi) {
  if (src != kAnySource && m.src != src) return false;
  if (tag == kAnyTag) return m.tag >= tag_lo && m.tag < tag_hi;
  return m.tag == tag;
}

Message Runtime::wait_match(int self, int src, int tag, int tag_lo,
                            int tag_hi) {
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (matches(*it, src, tag, tag_lo, tag_hi)) {
        Message m = std::move(*it);
        box.queue.erase(it);
        return m;
      }
    }
    if (aborted_.load()) throw Aborted{};
    box.cv.wait(lock, [&] {
      if (aborted_.load()) return true;
      for (const auto& m : box.queue) {
        if (matches(m, src, tag, tag_lo, tag_hi)) return true;
      }
      return false;
    });
    if (aborted_.load()) throw Aborted{};
  }
}

Message Runtime::wait_match_pumped(Comm& c, int src, int tag, int tag_lo,
                                   int tag_hi) {
  const int self = c.rank_;
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  for (;;) {
    transport_->pump(c);
    {
      std::unique_lock<std::mutex> lock(box.mu);
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (matches(*it, src, tag, tag_lo, tag_hi)) {
          Message m = std::move(*it);
          box.queue.erase(it);
          return m;
        }
      }
      if (aborted_.load()) throw Aborted{};
      // Bounded wait: a matching message can only appear after this rank
      // pumps its transport inbox, and retransmission checks are paced by
      // real time, so never sleep unboundedly.
      box.cv.wait_for(lock, std::chrono::microseconds(50));
      if (aborted_.load()) throw Aborted{};
    }
  }
}

std::optional<Message> Runtime::poll_match(int self, int src, int tag,
                                           int tag_lo, int tag_hi) {
  if (aborted_.load()) throw Aborted{};
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  std::lock_guard<std::mutex> lock(box.mu);
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if (matches(*it, src, tag, tag_lo, tag_hi)) {
      Message m = std::move(*it);
      box.queue.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

std::size_t Runtime::purge_tags(int self, int tag_lo, int tag_hi) {
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  std::lock_guard<std::mutex> lock(box.mu);
  const std::size_t before = box.queue.size();
  std::erase_if(box.queue, [&](const Message& m) {
    return m.tag >= tag_lo && m.tag < tag_hi;
  });
  return before - box.queue.size();
}

}  // namespace ss::vmpi
