#include "vmpi/comm.hpp"

#include <algorithm>
#include <exception>
#include <thread>

namespace ss::vmpi {

int Comm::size() const { return rt_->nranks_; }

void Comm::bind_observer(obs::Rank* rec) {
  obs_ = rec;
  if (rec == nullptr) {
    obs_msgs_ = nullptr;
    obs_bytes_ = nullptr;
    obs_recvs_ = nullptr;
    obs_wait_ = nullptr;
    return;
  }
  auto& reg = rec->registry();
  obs_msgs_ = &reg.counter("vmpi.messages_sent");
  obs_bytes_ = &reg.counter("vmpi.bytes_sent");
  obs_recvs_ = &reg.counter("vmpi.recvs");
  obs_wait_ = &reg.gauge("vmpi.recv_wait_seconds");
}

void Comm::compute_work(std::uint64_t flops, std::uint64_t bytes) {
  vtime_ += rt_->model_->compute_seconds(flops, bytes);
}

int Comm::coll_tag() {
  const int tag = detail::kCollectiveTagBase +
                  (coll_seq_ % detail::kCollectiveTagSpan);
  ++coll_seq_;
  return tag;
}

void Comm::send_bytes(int dst, int tag, std::span<const std::byte> bytes) {
  // The one copy a borrowed buffer needs; owners of a byte vector can use
  // send_bytes_move to skip it.
  send_bytes_move(dst, tag,
                  std::vector<std::byte>(bytes.begin(), bytes.end()));
}

void Comm::send_bytes_move(int dst, int tag, std::vector<std::byte>&& bytes) {
  if (dst < 0 || dst >= rt_->nranks_) {
    throw std::out_of_range("vmpi send: bad destination rank");
  }
  const std::size_t n = bytes.size();
  rt_->deliver(rank_, dst, tag, std::move(bytes), vtime_, n);
  if (obs_ != nullptr) {
    obs_msgs_->add(1);
    obs_bytes_->add(n);
  }
}

void Comm::send_placeholder(int dst, int tag, std::size_t modeled_bytes) {
  if (dst < 0 || dst >= rt_->nranks_) {
    throw std::out_of_range("vmpi send: bad destination rank");
  }
  rt_->deliver(rank_, dst, tag, {}, vtime_, modeled_bytes);
  if (obs_ != nullptr) {
    obs_msgs_->add(1);
    obs_bytes_->add(modeled_bytes);
  }
}

std::uint64_t Comm::sent_messages() const {
  return rt_->traffic_[static_cast<std::size_t>(rank_)].messages;
}

std::uint64_t Comm::sent_bytes() const {
  return rt_->traffic_[static_cast<std::size_t>(rank_)].bytes;
}

Message Comm::recv_msg(int src, int tag) {
  const double before = vtime_;
  Message m = rt_->wait_match(rank_, src, tag);
  vtime_ = std::max(vtime_, m.arrival);
  if (obs_ != nullptr) {
    obs_recvs_->add(1);
    if (vtime_ > before) obs_wait_->add(vtime_ - before);
  }
  return m;
}

std::optional<Message> Comm::try_recv(int src, int tag) {
  const double before = vtime_;
  auto m = rt_->poll_match(rank_, src, tag);
  if (m) {
    vtime_ = std::max(vtime_, m->arrival);
    if (obs_ != nullptr) {
      obs_recvs_->add(1);
      if (vtime_ > before) obs_wait_->add(vtime_ - before);
    }
  }
  return m;
}

void Comm::barrier() {
  // Dissemination barrier: ceil(log2 p) rounds of shifted exchanges.
  const int p = size();
  const int tag = coll_tag();
  const std::byte token{0};
  for (int step = 1; step < p; step <<= 1) {
    send_bytes((rank_ + step) % p, tag, {&token, 1});
    (void)recv_msg((rank_ - step + p) % p, tag);
  }
}

double Comm::barrier_max_time() {
  const double t = allreduce_max(vtime_);
  vtime_ = t;
  return t;
}

double Comm::allreduce_max(double v) {
  return allreduce_value(v, [](double a, double b) { return std::max(a, b); });
}

double Comm::allreduce_sum(double v) {
  return allreduce_value(v, [](double a, double b) { return a + b; });
}

std::uint64_t Comm::allreduce_sum_u64(std::uint64_t v) {
  return allreduce_value(
      v, [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

Runtime::Runtime(int nranks, std::shared_ptr<TimeModel> model)
    : nranks_(nranks), model_(std::move(model)) {
  if (nranks_ <= 0) throw std::invalid_argument("vmpi: nranks must be > 0");
  boxes_.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    boxes_.push_back(std::make_unique<Mailbox>());
  }
  traffic_.resize(static_cast<std::size_t>(nranks_));
}

void Runtime::attach_observer(obs::Session* session) {
  if (session != nullptr && session->size() != nranks_) {
    throw std::invalid_argument(
        "vmpi: observer session rank count does not match runtime");
  }
  observer_ = session;
}

std::uint64_t Runtime::messages_sent() const {
  std::uint64_t total = 0;
  for (const RankTraffic& t : traffic_) total += t.messages;
  return total;
}

std::uint64_t Runtime::bytes_sent() const {
  std::uint64_t total = 0;
  for (const RankTraffic& t : traffic_) total += t.bytes;
  return total;
}

std::uint64_t Runtime::messages_sent(int rank) const {
  return traffic_.at(static_cast<std::size_t>(rank)).messages;
}

std::uint64_t Runtime::bytes_sent(int rank) const {
  return traffic_.at(static_cast<std::size_t>(rank)).bytes;
}

void Runtime::run(const std::function<void(Comm&)>& body) {
  aborted_.store(false);
  for (RankTraffic& t : traffic_) t = RankTraffic{};
  for (auto& b : boxes_) {
    std::lock_guard<std::mutex> lock(b->mu);
    b->queue.clear();
  }

  std::vector<double> final_time(static_cast<std::size_t>(nranks_), 0.0);
  std::exception_ptr first_error;
  std::mutex error_mu;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(*this, r);
      // Observability: bind this rank's recorder (and the rank's virtual
      // clock) to the thread for the duration of the body. When no
      // session is attached every hook below is a null-pointer test.
      obs::Rank* rec = observer_ != nullptr ? &observer_->rank(r) : nullptr;
      obs::ThreadBind obs_bind(rec, comm.time_ptr());
      if (rec != nullptr) comm.bind_observer(rec);
      try {
        body(comm);
      } catch (const Aborted&) {
        // Teardown in progress; nothing more to record.
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        aborted_.store(true);
        for (auto& b : boxes_) b->cv.notify_all();
      }
      final_time[static_cast<std::size_t>(r)] = comm.time();
    });
  }
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  elapsed_vtime_ = *std::max_element(final_time.begin(), final_time.end());
}

void Runtime::deliver(int src, int dst, int tag, std::vector<std::byte>&& bytes,
                      double depart, std::size_t modeled_bytes) {
  Message m;
  m.src = src;
  m.tag = tag;
  m.data = std::move(bytes);  // zero-copy: the sender's buffer becomes the
                              // message payload (recycled by ABM's pool).
  m.arrival = model_->arrival(src, dst, modeled_bytes, depart);
  // deliver() always runs on the sending rank's thread, so the per-rank
  // slot needs no synchronization.
  RankTraffic& traffic = traffic_[static_cast<std::size_t>(src)];
  ++traffic.messages;
  traffic.bytes += modeled_bytes;

  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(m));
  }
  box.cv.notify_all();
}

bool Runtime::matches(const Message& m, int src, int tag) {
  return (src == kAnySource || m.src == src) &&
         (tag == kAnyTag || m.tag == tag);
}

Message Runtime::wait_match(int self, int src, int tag) {
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (matches(*it, src, tag)) {
        Message m = std::move(*it);
        box.queue.erase(it);
        return m;
      }
    }
    if (aborted_.load()) throw Aborted{};
    box.cv.wait(lock, [&] {
      if (aborted_.load()) return true;
      for (const auto& m : box.queue) {
        if (matches(m, src, tag)) return true;
      }
      return false;
    });
    if (aborted_.load()) throw Aborted{};
  }
}

std::optional<Message> Runtime::poll_match(int self, int src, int tag) {
  if (aborted_.load()) throw Aborted{};
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  std::lock_guard<std::mutex> lock(box.mu);
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if (matches(*it, src, tag)) {
      Message m = std::move(*it);
      box.queue.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

}  // namespace ss::vmpi
