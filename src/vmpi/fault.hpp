// Lossy-fabric fault injection for the virtual-MPI runtime.
//
// The paper's machine ran on commodity gigabit Ethernet (3c996B-T NICs,
// Foundry FastIron switches) and Sec 2.1 reports what that buys you on a
// 294-node Beowulf: flaky links, failed NICs, bit errors that slip past
// (or don't slip past) the Ethernet FCS. A LinkFaultModel makes the
// virtual fabric exhibit those pathologies deterministically: every
// point-to-point transmission consults the model, which may drop,
// duplicate, corrupt (bit-flip), reorder (hold one frame behind the
// next) or delay it. Rates are per-link with scheduled "degraded link"
// episodes layered on top (a cable going bad for a window of virtual
// time), and every decision is a stateless hash of (seed, link, frame
// key), so a given seed reproduces the same fault pattern regardless of
// thread interleaving.
//
// The model perturbs *physical transmissions*. Ridden bare
// (FaultMode::raw) it shows what the application-level protocols do
// when the fabric lies to them — a dropped ABM reply hangs a tree walk,
// a bit flip corrupts forces. Under the reliable transport
// (vmpi/transport.hpp) the same faults are detected and repaired and
// the application sees a clean, in-order, bit-exact message stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "simnet/profile.hpp"
#include "support/rng.hpp"

namespace ss::vmpi {

/// Per-link fault probabilities (each in [0, 1], applied per physical
/// transmission) plus the extra virtual latency of a delayed frame.
struct FaultRates {
  double drop = 0.0;       ///< Frame vanishes.
  double duplicate = 0.0;  ///< Frame delivered twice.
  double corrupt = 0.0;    ///< One byte of the delivered copy is flipped.
  double reorder = 0.0;    ///< Frame held back behind the link's next frame.
  double delay = 0.0;      ///< Frame arrives `delay_seconds` late.
  double delay_seconds = 0.0;

  bool any() const {
    return drop > 0 || duplicate > 0 || corrupt > 0 || reorder > 0 ||
           delay > 0;
  }
};

/// A scheduled "degraded link" window: while `t_begin <= depart < t_end`
/// (virtual seconds) on a matching link, the episode's rates are combined
/// with the link's base rates by taking the per-field maximum. src/dst of
/// -1 match every rank (a sick switch rather than a sick cable).
struct FaultEpisode {
  int src = -1;
  int dst = -1;
  double t_begin = 0.0;
  double t_end = std::numeric_limits<double>::infinity();
  FaultRates rates;
};

/// Derive fault rates from a physical-link quality figure: the frame
/// loss rate maps to drop and the bit error rate to the probability that
/// at least one bit of a `typical_frame_bytes` frame is flipped.
FaultRates rates_from_quality(const simnet::LinkQuality& q,
                              std::size_t typical_frame_bytes);

class LinkFaultModel {
 public:
  /// `seed` makes the whole fault pattern reproducible; `base` applies to
  /// every link until overridden by set_link / add_episode.
  LinkFaultModel(int nranks, std::uint64_t seed, FaultRates base = {});

  void set_link(int src, int dst, const FaultRates& rates);
  void add_episode(const FaultEpisode& episode);

  /// Restrict perturbation to messages whose tag lies in [lo, hi);
  /// traffic outside the range passes clean. Collective tags live at
  /// >= (1 << 24), so [0, 1 << 24) targets application point-to-point
  /// traffic (ABM) only. Default: everything is fair game.
  void set_tag_range(int lo, int hi);

  /// The fate of one physical transmission. `key` identifies the
  /// transmission (the reliable transport passes (seq, attempt); the raw
  /// path a per-link counter) so the decision is a pure function of
  /// (seed, link, key) — deterministic under any thread interleaving.
  struct Fate {
    bool drop = false;
    bool duplicate = false;
    bool corrupt = false;      ///< Applies to the primary copy.
    bool corrupt_dup = false;  ///< Applies to the duplicate copy.
    bool hold = false;         ///< Reorder: stash behind the next frame.
    double extra_delay = 0.0;
    std::uint64_t salt = 0;  ///< Chooses the flipped byte/bit.
  };
  Fate decide(int src, int dst, int tag, double depart, std::uint64_t key);

  /// Aggregate injected-fault counts (valid to read once the run's rank
  /// threads have joined; each row is written only by its source rank).
  struct Stats {
    std::uint64_t transmissions = 0;
    std::uint64_t drops = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t corrupts = 0;
    std::uint64_t reorders = 0;
    std::uint64_t delays = 0;
  };
  Stats stats() const;

  int nranks() const { return nranks_; }
  std::uint64_t seed() const { return seed_; }

 private:
  FaultRates effective(int src, int dst, double depart) const;

  int nranks_;
  std::uint64_t seed_;
  FaultRates base_;
  std::unordered_map<std::uint64_t, FaultRates> overrides_;  // by link id
  std::vector<FaultEpisode> episodes_;
  int tag_lo_ = std::numeric_limits<int>::min();
  int tag_hi_ = std::numeric_limits<int>::max();

  /// Injected-fault counters, one cache-line-padded row per source rank so
  /// concurrent sender threads never share a line.
  struct alignas(64) Row {
    Stats s;
  };
  std::vector<Row> per_src_;
};

}  // namespace ss::vmpi
