// Time models for the virtual-MPI runtime.
//
// Every rank of a vmpi program carries a virtual clock. Compute phases
// advance it through a roofline node model (flops vs bytes touched);
// messages advance the receiver's clock to the arrival time computed by a
// TimeModel. Correctness tests use ZeroTimeModel (all costs zero);
// reproduction benchmarks use ClusterTimeModel, which wires in the
// simnet::Fabric of the Space Simulator and a per-node compute rate.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "simnet/fabric.hpp"

namespace ss::vmpi {

class TimeModel {
 public:
  virtual ~TimeModel() = default;

  /// Virtual arrival time of a message (may update contention state).
  virtual double arrival(int src, int dst, std::size_t bytes,
                         double depart) = 0;

  /// Seconds of compute for a phase executing `flops` floating point
  /// operations while touching `bytes` of memory (roofline: the slower of
  /// the two pipes dominates).
  virtual double compute_seconds(std::uint64_t flops,
                                 std::uint64_t bytes) const = 0;
};

/// All operations are free; virtual time never advances. For unit tests
/// where only message *content* matters.
class ZeroTimeModel final : public TimeModel {
 public:
  double arrival(int, int, std::size_t, double depart) override {
    return depart;
  }
  double compute_seconds(std::uint64_t, std::uint64_t) const override {
    return 0.0;
  }
};

/// Space-Simulator-like cluster: network costs from a simnet::Fabric,
/// compute costs from a flop rate and a memory bandwidth.
class ClusterTimeModel final : public TimeModel {
 public:
  /// Defaults: 3c996B NICs through the Foundry fabric with LAM 6.5.9 -O,
  /// a P4/2.53 node sustaining ~650 Mflop/s on compiled F77/C loops and
  /// ~1.2 GB/s of STREAM bandwidth (paper Table 2).
  ClusterTimeModel(simnet::Topology topo, simnet::LibraryProfile profile,
                   double flops_per_second = 650e6,
                   double bytes_per_second = 1.2e9);

  double arrival(int src, int dst, std::size_t bytes, double depart) override;
  double compute_seconds(std::uint64_t flops,
                         std::uint64_t bytes) const override;

  simnet::Fabric& fabric() { return fabric_; }
  double flops_per_second() const { return flops_per_second_; }
  double bytes_per_second() const { return bytes_per_second_; }

 private:
  simnet::Fabric fabric_;
  double flops_per_second_;
  double bytes_per_second_;
};

/// Convenience: the as-built Space Simulator with the given MPI library.
std::shared_ptr<ClusterTimeModel> make_space_simulator_model(
    const simnet::LibraryProfile& profile, double flops_per_second = 650e6,
    double bytes_per_second = 1.2e9);

}  // namespace ss::vmpi
