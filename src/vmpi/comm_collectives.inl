// Template collectives for vmpi::Comm. Algorithms mirror the classical
// MPICH/LAM implementations (binomial trees, recursive doubling where the
// rank count allows, rings and pairwise exchanges elsewhere) so that their
// virtual-time cost has the right log/linear structure.
#pragma once

#include <bit>

namespace ss::vmpi {

namespace detail {

/// Tags >= kCollectiveTagBase are reserved for collectives; application
/// point-to-point traffic must use smaller tags.
inline constexpr int kCollectiveTagBase = 1 << 24;
inline constexpr int kCollectiveTagSpan = 1 << 20;

}  // namespace detail

template <typename T>
void Comm::bcast(std::vector<T>& data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  const int tag = coll_tag();
  if (p == 1) return;
  // Binomial tree rooted at `root`: relative rank rel = (rank - root) mod p.
  // A node receives from rel - mask where mask is its lowest set bit, then
  // forwards to rel + m for every m below that bit (classic MPICH scheme).
  const int rel = (rank() - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((rel & mask) != 0) {
      const int parent = ((rel - mask) + root) % p;
      data = recv_msg(parent, tag).template as<T>();
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) {
      const int child = ((rel + mask) + root) % p;
      send<T>(child, tag, std::span<const T>(data.data(), data.size()));
    }
    mask >>= 1;
  }
}

template <typename T>
T Comm::bcast_value(T v, int root) {
  std::vector<T> data{v};
  bcast(data, root);
  return data.at(0);
}

template <typename T, typename Op>
std::vector<T> Comm::reduce(std::span<const T> local, Op op, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  const int tag = coll_tag();
  std::vector<T> acc(local.begin(), local.end());
  if (p == 1) return acc;
  // Binomial tree combine toward root (relative rank 0).
  const int rel = (rank() - root + p) % p;
  for (int step = 1; step < p; step <<= 1) {
    if ((rel & step) != 0) {
      const int parent = ((rel - step) + root) % p;
      send<T>(parent, tag, std::span<const T>(acc.data(), acc.size()));
      return {};  // non-roots return empty
    }
    if (rel + step < p) {
      const int child = ((rel + step) + root) % p;
      auto got = recv_msg(child, tag).template as<T>();
      if (got.size() != acc.size()) {
        throw std::runtime_error("vmpi reduce: length mismatch");
      }
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] = op(acc[i], got[i]);
      }
    }
  }
  return acc;
}

template <typename T, typename Op>
std::vector<T> Comm::allreduce(std::span<const T> local, Op op) {
  std::vector<T> result = reduce(local, op, 0);
  if (rank() != 0) result.resize(local.size());
  bcast(result, 0);
  return result;
}

template <typename T, typename Op>
T Comm::allreduce_value(T v, Op op) {
  auto r = allreduce(std::span<const T>(&v, 1), op);
  return r.at(0);
}

template <typename T, typename Op>
T Comm::scan(T v, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  const int tag = coll_tag();
  // Hillis-Steele inclusive scan: log p rounds.
  T acc = v;
  for (int step = 1; step < p; step <<= 1) {
    if (rank() + step < p) send_value<T>(rank() + step, tag, acc);
    if (rank() - step >= 0) {
      T in = recv_value<T>(rank() - step, tag);
      acc = op(in, acc);
    }
  }
  return acc;
}

template <typename T>
std::vector<T> Comm::gather(std::span<const T> local, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  const int tag = coll_tag();
  if (rank() != root) {
    send<T>(root, tag, local);
    return {};
  }
  std::vector<T> out;
  for (int r = 0; r < p; ++r) {
    if (r == root) {
      out.insert(out.end(), local.begin(), local.end());
    } else {
      auto part = recv_msg(r, tag).template as<T>();
      out.insert(out.end(), part.begin(), part.end());
    }
  }
  return out;
}

template <typename T>
std::vector<T> Comm::allgather(std::span<const T> local) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  const int tag = coll_tag();
  if (p == 1) return {local.begin(), local.end()};
  // Ring allgather: p-1 steps, each rank forwards the block it just
  // received. Blocks may have differing sizes (allgatherv semantics), so
  // every block is sent with its origin encoded by arrival order.
  std::vector<std::vector<T>> blocks(p);
  blocks[rank()].assign(local.begin(), local.end());
  const int next = (rank() + 1) % p;
  const int prev = (rank() - 1 + p) % p;
  int have = rank();  // block we most recently obtained
  for (int step = 0; step < p - 1; ++step) {
    send<T>(next, tag,
            std::span<const T>(blocks[have].data(), blocks[have].size()));
    const int incoming = (prev - step + p) % p;
    blocks[incoming] = recv_msg(prev, tag).template as<T>();
    have = incoming;
  }
  std::vector<T> out;
  for (int r = 0; r < p; ++r) {
    out.insert(out.end(), blocks[r].begin(), blocks[r].end());
  }
  return out;
}

template <typename T>
std::vector<T> Comm::allgather_value(const T& v) {
  return allgather(std::span<const T>(&v, 1));
}

template <typename T>
std::vector<T> Comm::alltoallv(const std::vector<std::vector<T>>& per_dest) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  if (static_cast<int>(per_dest.size()) != p) {
    throw std::runtime_error("vmpi alltoallv: need one block per rank");
  }
  const int tag = coll_tag();
  std::vector<std::vector<T>> received(p);
  // Self short-circuit: the local block never touches a mailbox.
  received[rank()] = per_dest[rank()];
  // Post only the non-empty non-self blocks. Each message carries a
  // 64-bit element-count header, so "block absent" (no message) and
  // "block empty" (never posted) are the same observable fact and a
  // receiver can validate what did arrive. Sparse communication patterns
  // (a few heavy partners out of P) thus cost O(partners) messages, not
  // O(P).
  for (int k = 1; k < p; ++k) {
    const int dst = (rank() + k) % p;
    const auto& block = per_dest[static_cast<std::size_t>(dst)];
    if (block.empty()) continue;
    std::vector<std::byte> buf(sizeof(std::uint64_t) +
                               block.size() * sizeof(T));
    const std::uint64_t count = block.size();
    std::memcpy(buf.data(), &count, sizeof(count));
    std::memcpy(buf.data() + sizeof(count), block.data(),
                block.size() * sizeof(T));
    send_bytes_move(dst, tag, std::move(buf));
  }
  // The runtime enqueues messages synchronously at send time — and on a
  // lossy fabric barrier() first quiesces the reliable transport, which
  // restores that invariant — so after the barrier every posted block is
  // already in our mailbox and a nonblocking drain is exact. (A real-MPI
  // port would replace this with an alltoall of the count headers.)
  barrier();
  while (auto m = try_recv(kAnySource, tag)) {
    std::uint64_t count = 0;
    if (m->data.size() < sizeof(count)) {
      throw std::runtime_error("vmpi alltoallv: truncated count header");
    }
    std::memcpy(&count, m->data.data(), sizeof(count));
    if (m->data.size() != sizeof(count) + count * sizeof(T)) {
      throw std::runtime_error("vmpi alltoallv: header/payload mismatch");
    }
    auto& blk = received[static_cast<std::size_t>(m->src)];
    blk.resize(count);
    if (count > 0) {
      std::memcpy(blk.data(), m->data.data() + sizeof(count),
                  count * sizeof(T));
    }
  }
  std::vector<T> out;
  for (int r = 0; r < p; ++r) {
    out.insert(out.end(), received[r].begin(), received[r].end());
  }
  return out;
}

template <typename T>
std::vector<T> Comm::alltoallv_dense(
    const std::vector<std::vector<T>>& per_dest) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  if (static_cast<int>(per_dest.size()) != p) {
    throw std::runtime_error("vmpi alltoallv: need one block per rank");
  }
  const int tag = coll_tag();
  std::vector<std::vector<T>> received(p);
  received[rank()] = per_dest[rank()];
  // Pairwise exchange: at step k talk to rank^k (power of two) or the
  // rotated partner otherwise.
  const bool pow2 = std::has_single_bit(static_cast<unsigned>(p));
  for (int k = 1; k < p; ++k) {
    const int sendto = pow2 ? (rank() ^ k) : (rank() + k) % p;
    const int recvfrom = pow2 ? (rank() ^ k) : (rank() - k + p) % p;
    send<T>(sendto, tag,
            std::span<const T>(per_dest[sendto].data(), per_dest[sendto].size()));
    received[recvfrom] = recv_msg(recvfrom, tag).template as<T>();
  }
  std::vector<T> out;
  for (int r = 0; r < p; ++r) {
    out.insert(out.end(), received[r].begin(), received[r].end());
  }
  return out;
}

template <typename T, typename Op>
std::vector<T> Comm::reduce_scatter_block(std::span<const T> local, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  if (local.size() % static_cast<std::size_t>(p) != 0) {
    throw std::invalid_argument(
        "reduce_scatter_block: length must divide by ranks");
  }
  const std::size_t n = local.size() / static_cast<std::size_t>(p);
  // Start from this rank's own contribution to its own block.
  std::vector<T> acc(local.begin() + static_cast<std::ptrdiff_t>(
                                         n * static_cast<std::size_t>(rank())),
                     local.begin() + static_cast<std::ptrdiff_t>(
                                         n * static_cast<std::size_t>(rank()) +
                                         n));
  if (p == 1) return acc;
  const int tag = coll_tag();
  // Pairwise exchange: step k ships our contribution to partner (rank+k)'s
  // block and folds in partner (rank-k)'s contribution to ours. Each rank
  // moves (P-1) blocks of n elements — O(local.size()) data total, versus
  // the O(P * local.size()) of allreduce-then-slice.
  for (int k = 1; k < p; ++k) {
    const int to = (rank() + k) % p;
    const int from = (rank() - k + p) % p;
    send<T>(to, tag,
            local.subspan(n * static_cast<std::size_t>(to), n));
    auto got = recv_msg(from, tag).template as<T>();
    if (got.size() != n) {
      throw std::runtime_error("vmpi reduce_scatter_block: length mismatch");
    }
    for (std::size_t i = 0; i < n; ++i) acc[i] = op(acc[i], got[i]);
  }
  return acc;
}

}  // namespace ss::vmpi
