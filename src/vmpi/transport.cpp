#include "vmpi/transport.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <thread>

#include "io/crc32.hpp"
#include "vmpi/comm.hpp"

namespace ss::vmpi {

namespace {

constexpr std::uint32_t kMagic = 0x564D5046;  // "VMPF"
constexpr std::uint32_t kKindData = 0;
constexpr std::uint32_t kKindAck = 1;

/// Modular distance seq - base on 32-bit sequence numbers. Values in
/// [1, 2^31) mean "seq is ahead of base"; 0 and values >= 2^31 mean "at or
/// behind base" (duplicate territory).
inline std::uint32_t seq_dist(std::uint32_t seq, std::uint32_t base) {
  return seq - base;
}

/// a <= b in modular arithmetic (within half the ring).
inline bool seq_le(std::uint32_t a, std::uint32_t b) {
  return seq_dist(b, a) < 0x80000000u;
}

/// Fate key of the `attempt`-th physical transmission of data seq `seq`.
/// decide() already mixes in the link, so the key only needs to be unique
/// per (flow, transmission).
inline std::uint64_t data_key(std::uint32_t seq, std::uint32_t attempt) {
  return (static_cast<std::uint64_t>(seq) << 24) ^ attempt;
}

/// Pure acks draw from a disjoint keyspace (high bit set).
inline std::uint64_t ack_key(std::uint64_t counter) {
  return (1ULL << 63) | counter;
}

}  // namespace

Transport::Transport(Runtime& rt, std::shared_ptr<LinkFaultModel> faults,
                     TransportConfig cfg)
    : rt_(rt), faults_(std::move(faults)), cfg_(cfg), nranks_(rt.size()) {
  if (!faults_) {
    throw std::invalid_argument("vmpi transport: null fault model");
  }
  if (faults_->nranks() != nranks_) {
    throw std::invalid_argument(
        "vmpi transport: fault model rank count does not match runtime");
  }
  if (cfg_.window == 0) {
    throw std::invalid_argument("vmpi transport: window must be > 0");
  }
  reset();
}

void Transport::reset() {
  nets_.clear();
  nets_.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    auto net = std::make_unique<RankNet>();
    net->tx.resize(static_cast<std::size_t>(nranks_));
    net->rx.resize(static_cast<std::size_t>(nranks_));
    net->held.resize(static_cast<std::size_t>(nranks_));
    for (TxFlow& f : net->tx) f.next_seq = cfg_.initial_seq;
    for (RxFlow& f : net->rx) f.cum = cfg_.initial_seq - 1;
    nets_.push_back(std::move(net));
  }
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drained_.assign(static_cast<std::size_t>(nranks_), 0);
  }
}

void Transport::bind_obs(RankNet& net) {
  if (net.obs_bound) return;
  net.obs_bound = true;
  obs::Rank* rec = obs::tls();
  if (rec == nullptr) return;
  net.rec = rec;
  auto& reg = rec->registry();
  net.c_retx = &reg.counter("net.retransmits");
  net.c_corrupt = &reg.counter("net.corrupt_drops");
  net.c_dup = &reg.counter("net.dup_suppressed");
  net.c_piggy = &reg.counter("net.acks_piggybacked");
  net.c_pure = &reg.counter("net.pure_acks");
  net.c_evict = &reg.counter("net.window_evictions");
  net.c_alarm = &reg.counter("net.degraded_alarms");
  net.g_health = &reg.gauge("net.link_health");
  net.h_rtt = &reg.histogram("net.rtt_seconds");
  net.h_backoff = &reg.histogram("net.retx_backoff_seconds");
}

void Transport::send(Comm& c, int dst, int tag, std::vector<std::byte>&& payload,
                     std::size_t modeled_bytes, std::uint32_t flow_seq) {
  const int src = c.world_rank();
  RankNet& net = *nets_[static_cast<std::size_t>(src)];
  bind_obs(net);
  TxFlow& flow = net.tx[static_cast<std::size_t>(dst)];

  TxFrame frame;
  frame.seq = flow.next_seq++;
  frame.tag = tag;
  frame.modeled_bytes = modeled_bytes;
  frame.sent_vtime = c.vtime_;
  frame.rto = cfg_.rto_seconds;
  frame.retx_real = cfg_.retx_real_seconds;
  frame.last_real = std::chrono::steady_clock::now();
  frame.attempts = 1;
  frame.flow_seq = flow_seq;

  transmit(c, net, dst, kKindData, frame.seq, tag, payload, modeled_bytes,
           data_key(frame.seq, 0), flow_seq);
  frame.payload = std::move(payload);
  flow.unacked.push_back(std::move(frame));

  // A send is also a progress opportunity: serve acks and timed-out peers.
  pump(c);
}

void Transport::transmit(Comm& c, RankNet& net, int dst, std::uint32_t kind,
                         std::uint32_t seq, std::int32_t tag,
                         std::span<const std::byte> payload,
                         std::size_t modeled_bytes, std::uint64_t fate_key,
                         std::uint32_t flow_seq) {
  const int src = c.world_rank();

  FrameHeader hdr;
  hdr.magic = kMagic;
  hdr.crc = 0;
  hdr.seq = seq;
  hdr.flow_seq = flow_seq;
  hdr.src = src;
  hdr.dst = dst;
  hdr.tag = tag;
  hdr.kind = kind;
  hdr.payload_bytes = static_cast<std::uint32_t>(payload.size());
  hdr.modeled_bytes = static_cast<std::uint64_t>(modeled_bytes);

  // Piggyback the cumulative ack for the reverse flow (dst -> src) on
  // every outbound frame; this clears any ack debt we owe that peer.
  RxFlow& rx = net.rx[static_cast<std::size_t>(dst)];
  hdr.ack = rx.cum;
  if (kind == kKindData && (rx.dirty || rx.pending_acks != 0)) {
    ++net.totals.acks_piggybacked;
    if (net.c_piggy != nullptr) net.c_piggy->add(1);
  }
  if (kind == kKindData) {
    rx.dirty = false;
    rx.urgent = false;
    rx.pending_acks = 0;
  }

  std::vector<std::byte> wire(sizeof(FrameHeader) + payload.size());
  std::memcpy(wire.data(), &hdr, sizeof(FrameHeader));
  if (!payload.empty()) {
    std::memcpy(wire.data() + sizeof(FrameHeader), payload.data(),
                payload.size());
  }
  const std::uint32_t crc =
      io::crc32({wire.data(), wire.size()});
  std::memcpy(wire.data() + offsetof(FrameHeader, crc), &crc,
              sizeof(std::uint32_t));

  // Physical traffic accounting: every copy that hits the wire counts,
  // exactly like the clean runtime's deliver().
  const double depart = c.vtime_;
  const std::size_t wire_cost = modeled_bytes + sizeof(FrameHeader);

  auto charge = [&] {
    Runtime::RankTraffic& traffic =
        rt_.traffic_[static_cast<std::size_t>(src)];
    ++traffic.messages;
    traffic.bytes += modeled_bytes;
    ++net.totals.frames_sent;
  };

  const LinkFaultModel::Fate fate =
      faults_->decide(src, dst, tag, depart, fate_key);

  auto flip_byte = [](std::vector<std::byte>& buf, std::uint64_t salt) {
    if (buf.empty()) return;
    const std::size_t idx = static_cast<std::size_t>(salt % buf.size());
    const auto mask =
        static_cast<std::byte>(1 + ((salt >> 8) % 255));  // never 0
    buf[idx] ^= mask;
  };

  auto launch = [&](std::vector<std::byte>&& w, bool corrupt) {
    charge();
    PhysFrame phys;
    phys.arrival =
        rt_.model_->arrival(src, dst, wire_cost, depart) + fate.extra_delay;
    phys.wire = std::move(w);
    if (corrupt) flip_byte(phys.wire, fate.salt);
    if (fate.hold) {
      // Reorder: stash this frame behind the link's next one. Anything
      // already held for this destination goes out first (one-deep hold).
      auto& slot = net.held[static_cast<std::size_t>(dst)];
      if (slot != nullptr) {
        PhysFrame prior = std::move(*slot);
        slot = std::make_unique<PhysFrame>(std::move(phys));
        enqueue_frame(dst, std::move(prior));
      } else {
        slot = std::make_unique<PhysFrame>(std::move(phys));
      }
      return;
    }
    enqueue_frame(dst, std::move(phys));
    // A frame that actually traversed the link flushes the hold slot.
    auto& slot = net.held[static_cast<std::size_t>(dst)];
    if (slot != nullptr) {
      PhysFrame held = std::move(*slot);
      slot.reset();
      enqueue_frame(dst, std::move(held));
    }
  };

  if (fate.drop) {
    charge();  // the sender paid for the transmission; the fabric ate it
    // The doomed frame still loaded the fabric on its way to the point of
    // loss: spend its serialization time in the contention model so lost
    // traffic costs capacity, not just the sender's RTO.
    (void)rt_.model_->arrival(src, dst, wire_cost, depart);
    return;
  }
  if (fate.duplicate) {
    launch(std::vector<std::byte>(wire), fate.corrupt_dup);
  }
  launch(std::move(wire), fate.corrupt);
}

void Transport::enqueue_frame(int dst, PhysFrame&& frame) {
  RankNet& net = *nets_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(net.mu);
    net.inbox.push_back(std::move(frame));
  }
  // Wake a receiver blocked in recv/quiesce so it pumps the inbox.
  Runtime::Mailbox& box = *rt_.boxes_[static_cast<std::size_t>(dst)];
  box.cv.notify_all();
}

bool Transport::pump(Comm& c) {
  const int rank = c.world_rank();
  RankNet& net = *nets_[static_cast<std::size_t>(rank)];
  bind_obs(net);

  std::deque<PhysFrame> batch;
  {
    std::lock_guard<std::mutex> lock(net.mu);
    batch.swap(net.inbox);
  }

  const bool had_frames = !batch.empty();
  while (!batch.empty()) {
    PhysFrame f = std::move(batch.front());
    batch.pop_front();
    process_frame(c, net, std::move(f));
  }

  if (had_frames) {
    net.idle_pumps = 0;
  } else if (net.idle_pumps < cfg_.ack_idle_polls) {
    ++net.idle_pumps;
  }
  flush_due_acks(c, net, /*idle=*/!had_frames);
  const bool retx = check_retransmits(c, net);
  return had_frames || retx;
}

void Transport::process_frame(Comm& c, RankNet& net, PhysFrame&& frame) {
  // -- validation: size, magic, CRC ----------------------------------------
  if (frame.wire.size() < sizeof(FrameHeader)) {
    ++net.totals.corrupt_drops;
    if (net.c_corrupt != nullptr) net.c_corrupt->add(1);
    return;
  }
  FrameHeader hdr;
  std::memcpy(&hdr, frame.wire.data(), sizeof(FrameHeader));
  const std::uint32_t got_crc = hdr.crc;
  hdr.crc = 0;
  std::memcpy(frame.wire.data(), &hdr, sizeof(FrameHeader));
  const std::uint32_t want_crc = io::crc32({frame.wire.data(), frame.wire.size()});
  if (hdr.magic != kMagic || got_crc != want_crc ||
      frame.wire.size() != sizeof(FrameHeader) + hdr.payload_bytes ||
      hdr.src < 0 || hdr.src >= nranks_) {
    ++net.totals.corrupt_drops;
    if (net.c_corrupt != nullptr) net.c_corrupt->add(1);
    return;
  }

  const int peer = hdr.src;

  // Every valid frame carries a cumulative ack for our tx flow to `peer`.
  process_ack(c, net, peer, hdr.ack, frame.arrival);

  if (hdr.kind != kKindData) return;  // pure ack: done

  RxFlow& rx = net.rx[static_cast<std::size_t>(peer)];
  const std::uint32_t dist = seq_dist(hdr.seq, rx.cum);
  if (dist == 0 || dist >= 0x80000000u) {
    // At or behind the cumulative ack: duplicate. Suppress, but re-ack
    // urgently — a dup usually means our ack got lost.
    ++net.totals.dup_suppressed;
    if (net.c_dup != nullptr) net.c_dup->add(1);
    rx.dirty = true;
    rx.urgent = true;
    return;
  }
  if (dist > cfg_.window) {
    // Beyond the reorder window: evict; the sender retransmits once the
    // gap in front of it is repaired.
    ++net.totals.window_evictions;
    if (net.c_evict != nullptr) net.c_evict->add(1);
    rx.dirty = true;
    return;
  }
  if (rx.ooo.count(hdr.seq) != 0) {
    ++net.totals.dup_suppressed;
    if (net.c_dup != nullptr) net.c_dup->add(1);
    rx.dirty = true;
    rx.urgent = true;
    return;
  }
  RxHeld held;
  held.tag = hdr.tag;
  held.arrival = frame.arrival;
  held.flow_seq = hdr.flow_seq;
  held.payload.assign(
      frame.wire.begin() + static_cast<std::ptrdiff_t>(sizeof(FrameHeader)),
      frame.wire.end());
  rx.ooo.emplace(hdr.seq, std::move(held));
  deliver_in_order(c, net, peer);
}

void Transport::process_ack(Comm& c, RankNet& net, int peer,
                            std::uint32_t ackno, double ack_arrival) {
  TxFlow& flow = net.tx[static_cast<std::size_t>(peer)];
  bool advanced = false;
  while (!flow.unacked.empty() && seq_le(flow.unacked.front().seq, ackno)) {
    TxFrame& fr = flow.unacked.front();
    // Health samples: a frame acked on its first transmission is a clean
    // delivery; one that needed retransmission counts as a loss event.
    // RTT only from unambiguous (single-attempt) frames (Karn's rule).
    const double loss_sample = fr.attempts > 1 ? 1.0 : 0.0;
    if (fr.attempts == 1) {
      const double rtt = std::max(0.0, c.vtime_ - fr.sent_vtime);
      flow.rtt_ewma = flow.rtt_ewma == 0.0
                          ? rtt
                          : flow.rtt_ewma +
                                cfg_.ewma_alpha * (rtt - flow.rtt_ewma);
      // The histogram samples against the ack frame's modeled *arrival*
      // time, not this rank's clock: frames are processed while polling,
      // before a blocking recv advances the clock, so c.vtime_ here still
      // reads the send time and would log every clean-path RTT as 0.
      if (net.h_rtt != nullptr) {
        net.h_rtt->record(std::max(0.0, ack_arrival - fr.sent_vtime));
      }
    }
    update_health(net, peer, flow, loss_sample);
    flow.unacked.pop_front();
    advanced = true;
  }
  (void)advanced;
}

void Transport::deliver_in_order(Comm& c, RankNet& net, int peer) {
  const int rank = c.world_rank();
  RxFlow& rx = net.rx[static_cast<std::size_t>(peer)];
  Runtime::Mailbox& box = *rt_.boxes_[static_cast<std::size_t>(rank)];
  bool delivered = false;
  for (;;) {
    auto it = rx.ooo.find(rx.cum + 1);
    if (it == rx.ooo.end()) break;
    Message m;
    m.src = peer;
    m.tag = it->second.tag;
    m.arrival = it->second.arrival;
    if (it->second.flow_seq != 0) {
      // Reconstruct the sender's 64-bit flow id: the header carried the
      // app sequence, and (src, dst) are the link's endpoints.
      m.flow = make_flow_id(peer, rank, it->second.flow_seq);
    }
    m.data = std::move(it->second.payload);
    rx.ooo.erase(it);
    ++rx.cum;
    ++rx.pending_acks;
    rx.dirty = true;
    ++net.totals.delivered;
    {
      std::lock_guard<std::mutex> lock(box.mu);
      box.queue.push_back(std::move(m));
    }
    delivered = true;
  }
  if (delivered) box.cv.notify_all();
}

void Transport::send_pure_ack(Comm& c, RankNet& net, int peer) {
  RxFlow& rx = net.rx[static_cast<std::size_t>(peer)];
  ++net.totals.pure_acks;
  if (net.c_pure != nullptr) net.c_pure->add(1);
  if (net.rec != nullptr) {
    net.rec->flight(obs::FlightKind::kAck, peer, rx.cum, 0.0);
  }
  const std::uint64_t key = ack_key(net.ack_counter++);
  // transmit() only clears ack debt for data frames; clear it here.
  rx.dirty = false;
  rx.urgent = false;
  rx.pending_acks = 0;
  transmit(c, net, peer, kKindAck, 0, /*tag=*/-1, {}, /*modeled_bytes=*/0,
           key);
}

void Transport::flush_due_acks(Comm& c, RankNet& net, bool idle) {
  for (int peer = 0; peer < nranks_; ++peer) {
    RxFlow& rx = net.rx[static_cast<std::size_t>(peer)];
    if (!rx.dirty) continue;
    const bool due = rx.urgent || rx.pending_acks >= cfg_.ack_batch ||
                     (idle && net.idle_pumps >= cfg_.ack_idle_polls);
    if (due) send_pure_ack(c, net, peer);
  }
}

bool Transport::check_retransmits(Comm& c, RankNet& net) {
  const auto now = std::chrono::steady_clock::now();
  bool any = false;
  for (int dst = 0; dst < nranks_; ++dst) {
    TxFlow& flow = net.tx[static_cast<std::size_t>(dst)];
    if (flow.unacked.empty()) continue;
    // Cumulative acks: only the oldest unacked frame is ever retransmitted.
    TxFrame& fr = flow.unacked.front();
    const auto elapsed = std::chrono::duration<double>(now - fr.last_real);
    if (elapsed.count() < fr.retx_real) continue;

    // The *cost* of the timeout is virtual: the sender's clock advances to
    // the expiry of the virtual RTO, so loss shows up in the goodput the
    // way a real stall would.
    c.vtime_ = std::max(c.vtime_, fr.sent_vtime + fr.rto);
    if (net.h_backoff != nullptr) net.h_backoff->record(fr.rto);
    fr.rto = std::min(fr.rto * 2.0, cfg_.rto_cap_seconds);
    fr.retx_real = std::min(fr.retx_real * 2.0, cfg_.retx_real_cap_seconds);
    fr.sent_vtime = c.vtime_;
    fr.last_real = now;
    ++fr.attempts;
    ++net.totals.retransmits;
    if (net.c_retx != nullptr) net.c_retx->add(1);
    if (net.rec != nullptr) {
      net.rec->instant_id("net.retx", fr.seq);
      net.rec->flight(obs::FlightKind::kRetransmit, dst, fr.seq, fr.rto);
    }
    update_health(net, dst, flow, 1.0);
    transmit(c, net, dst, kKindData, fr.seq, fr.tag, fr.payload,
             fr.modeled_bytes, data_key(fr.seq, fr.attempts - 1),
             fr.flow_seq);
    any = true;
  }
  return any;
}

void Transport::update_health(RankNet& net, int dst, TxFlow& flow,
                              double sample_loss) {
  flow.loss_ewma += cfg_.ewma_alpha * (sample_loss - flow.loss_ewma);
  if (!flow.alarmed && flow.loss_ewma > cfg_.health_alarm) {
    flow.alarmed = true;
    ++net.totals.degraded_alarms;
    if (net.c_alarm != nullptr) net.c_alarm->add(1);
  } else if (flow.alarmed && flow.loss_ewma < cfg_.health_alarm * 0.5) {
    flow.alarmed = false;  // hysteresis: re-alarm only after recovery
  }
  if (net.g_health != nullptr) {
    double worst = 0.0;
    for (const TxFlow& f : net.tx) worst = std::max(worst, f.loss_ewma);
    net.g_health->set(1.0 - worst);
  }
  (void)dst;
}

void Transport::quiesce(Comm& c) {
  const int rank = c.world_rank();
  RankNet& net = *nets_[static_cast<std::size_t>(rank)];
  Runtime::Mailbox& box = *rt_.boxes_[static_cast<std::size_t>(rank)];
  for (;;) {
    pump(c);
    bool clean = true;
    for (const TxFlow& f : net.tx) {
      if (!f.unacked.empty()) {
        clean = false;
        break;
      }
    }
    if (clean) return;
    if (rt_.aborted_.load()) throw Aborted{};
    std::unique_lock<std::mutex> lock(box.mu);
    box.cv.wait_for(lock, std::chrono::microseconds(100));
  }
}

void Transport::drain(Comm& c) {
  const int rank = c.world_rank();
  RankNet& net = *nets_[static_cast<std::size_t>(rank)];
  Runtime::Mailbox& box = *rt_.boxes_[static_cast<std::size_t>(rank)];
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    pump(c);
    bool mine_clean = true;
    for (const TxFlow& f : net.tx) {
      if (!f.unacked.empty()) {
        mine_clean = false;
        break;
      }
    }
    bool all_clean = false;
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      drained_[static_cast<std::size_t>(rank)] = mine_clean ? 1 : 0;
      all_clean = std::all_of(drained_.begin(), drained_.end(),
                              [](std::uint8_t d) { return d != 0; });
    }
    if (all_clean) return;
    if (rt_.aborted_.load()) return;  // teardown: give up quietly
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (elapsed > std::chrono::seconds(30)) {
      std::string msg = "vmpi transport: post-body drain stalled\n";
      for (int r = 0; r < nranks_; ++r) msg += dump(r);
      throw std::runtime_error(msg);
    }
    std::unique_lock<std::mutex> lock(box.mu);
    box.cv.wait_for(lock, std::chrono::microseconds(200));
  }
}

std::string Transport::dump(int rank) const {
  const RankNet& net = *nets_[static_cast<std::size_t>(rank)];
  std::ostringstream os;
  os << "rank " << rank << ":\n";
  for (int d = 0; d < nranks_; ++d) {
    const TxFlow& f = net.tx[static_cast<std::size_t>(d)];
    if (f.next_seq == cfg_.initial_seq && f.unacked.empty()) continue;
    os << "  tx->" << d << " next_seq=" << f.next_seq
       << " unacked=" << f.unacked.size();
    if (!f.unacked.empty()) {
      const TxFrame& fr = f.unacked.front();
      os << " front_seq=" << fr.seq << " tag=" << fr.tag
         << " attempts=" << fr.attempts << " rto=" << fr.rto;
    }
    os << " loss_ewma=" << f.loss_ewma << "\n";
  }
  for (int s = 0; s < nranks_; ++s) {
    const RxFlow& f = net.rx[static_cast<std::size_t>(s)];
    if (f.cum == cfg_.initial_seq - 1 && f.ooo.empty() && !f.dirty) continue;
    os << "  rx<-" << s << " cum=" << f.cum << " ooo=" << f.ooo.size()
       << " pending_acks=" << f.pending_acks << (f.dirty ? " dirty" : "")
       << "\n";
  }
  return os.str();
}

NetTotals Transport::totals() const {
  NetTotals sum;
  for (int r = 0; r < nranks_; ++r) {
    const NetTotals t = totals(r);
    sum.frames_sent += t.frames_sent;
    sum.retransmits += t.retransmits;
    sum.corrupt_drops += t.corrupt_drops;
    sum.dup_suppressed += t.dup_suppressed;
    sum.acks_piggybacked += t.acks_piggybacked;
    sum.pure_acks += t.pure_acks;
    sum.window_evictions += t.window_evictions;
    sum.degraded_alarms += t.degraded_alarms;
    sum.delivered += t.delivered;
  }
  return sum;
}

NetTotals Transport::totals(int rank) const {
  return nets_.at(static_cast<std::size_t>(rank))->totals;
}

double Transport::link_health(int src, int dst) const {
  const RankNet& net = *nets_.at(static_cast<std::size_t>(src));
  return 1.0 - net.tx.at(static_cast<std::size_t>(dst)).loss_ewma;
}

}  // namespace ss::vmpi
