#include "vmpi/timemodel.hpp"

namespace ss::vmpi {

ClusterTimeModel::ClusterTimeModel(simnet::Topology topo,
                                   simnet::LibraryProfile profile,
                                   double flops_per_second,
                                   double bytes_per_second)
    : fabric_(std::move(topo), std::move(profile)),
      flops_per_second_(flops_per_second),
      bytes_per_second_(bytes_per_second) {}

double ClusterTimeModel::arrival(int src, int dst, std::size_t bytes,
                                 double depart) {
  return fabric_.arrival(src, dst, bytes, depart);
}

double ClusterTimeModel::compute_seconds(std::uint64_t flops,
                                         std::uint64_t bytes) const {
  const double tf = static_cast<double>(flops) / flops_per_second_;
  const double tb = static_cast<double>(bytes) / bytes_per_second_;
  return std::max(tf, tb);
}

std::shared_ptr<ClusterTimeModel> make_space_simulator_model(
    const simnet::LibraryProfile& profile, double flops_per_second,
    double bytes_per_second) {
  return std::make_shared<ClusterTimeModel>(simnet::space_simulator_topology(),
                                            profile, flops_per_second,
                                            bytes_per_second);
}

}  // namespace ss::vmpi
