#include "vmpi/fault.hpp"

#include <algorithm>
#include <stdexcept>

namespace ss::vmpi {

namespace {

inline std::uint64_t link_id(int src, int dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

inline double to_unit(std::uint64_t u) {
  return static_cast<double>(u >> 11) * 0x1.0p-53;
}

}  // namespace

FaultRates rates_from_quality(const simnet::LinkQuality& q,
                              std::size_t typical_frame_bytes) {
  FaultRates r;
  r.drop = q.frame_loss_rate;
  r.corrupt =
      simnet::frame_corrupt_probability(typical_frame_bytes, q.bit_error_rate);
  return r;
}

LinkFaultModel::LinkFaultModel(int nranks, std::uint64_t seed, FaultRates base)
    : nranks_(nranks), seed_(seed), base_(base) {
  if (nranks <= 0) {
    throw std::invalid_argument("LinkFaultModel: nranks must be > 0");
  }
  per_src_.resize(static_cast<std::size_t>(nranks));
}

void LinkFaultModel::set_link(int src, int dst, const FaultRates& rates) {
  if (src < 0 || src >= nranks_ || dst < 0 || dst >= nranks_) {
    throw std::out_of_range("LinkFaultModel: bad link");
  }
  overrides_[link_id(src, dst)] = rates;
}

void LinkFaultModel::add_episode(const FaultEpisode& episode) {
  episodes_.push_back(episode);
}

void LinkFaultModel::set_tag_range(int lo, int hi) {
  tag_lo_ = lo;
  tag_hi_ = hi;
}

FaultRates LinkFaultModel::effective(int src, int dst, double depart) const {
  FaultRates r = base_;
  if (!overrides_.empty()) {
    auto it = overrides_.find(link_id(src, dst));
    if (it != overrides_.end()) r = it->second;
  }
  for (const FaultEpisode& e : episodes_) {
    if ((e.src != -1 && e.src != src) || (e.dst != -1 && e.dst != dst)) {
      continue;
    }
    if (depart < e.t_begin || depart >= e.t_end) continue;
    r.drop = std::max(r.drop, e.rates.drop);
    r.duplicate = std::max(r.duplicate, e.rates.duplicate);
    r.corrupt = std::max(r.corrupt, e.rates.corrupt);
    r.reorder = std::max(r.reorder, e.rates.reorder);
    if (e.rates.delay > r.delay ||
        (e.rates.delay == r.delay &&
         e.rates.delay_seconds > r.delay_seconds)) {
      r.delay = e.rates.delay;
      r.delay_seconds = e.rates.delay_seconds;
    }
  }
  return r;
}

LinkFaultModel::Fate LinkFaultModel::decide(int src, int dst, int tag,
                                            double depart, std::uint64_t key) {
  Fate f;
  Stats& row = per_src_[static_cast<std::size_t>(src)].s;
  ++row.transmissions;
  if (tag < tag_lo_ || tag >= tag_hi_) return f;
  const FaultRates r = effective(src, dst, depart);
  if (!r.any()) return f;

  // Stateless draw: the fate of transmission `key` on this link is a pure
  // function of the seed, so reruns and interleavings agree.
  support::SplitMix64 h(seed_ ^ (link_id(src, dst) * 0x9E3779B97F4A7C15ULL) ^
                        (key * 0xBF58476D1CE4E5B9ULL));
  f.salt = h.next();

  if (r.drop > 0 && to_unit(h.next()) < r.drop) {
    f.drop = true;
    ++row.drops;
    return f;  // a dropped frame has no other fate
  }
  if (r.duplicate > 0 && to_unit(h.next()) < r.duplicate) {
    f.duplicate = true;
    ++row.duplicates;
  }
  if (r.corrupt > 0) {
    if (to_unit(h.next()) < r.corrupt) {
      f.corrupt = true;
      ++row.corrupts;
    }
    if (f.duplicate && to_unit(h.next()) < r.corrupt) {
      f.corrupt_dup = true;
      ++row.corrupts;
    }
  }
  if (r.reorder > 0 && to_unit(h.next()) < r.reorder) {
    f.hold = true;
    ++row.reorders;
  }
  if (r.delay > 0 && to_unit(h.next()) < r.delay) {
    f.extra_delay = r.delay_seconds;
    ++row.delays;
  }
  return f;
}

LinkFaultModel::Stats LinkFaultModel::stats() const {
  Stats total;
  for (const Row& row : per_src_) {
    total.transmissions += row.s.transmissions;
    total.drops += row.s.drops;
    total.duplicates += row.s.duplicates;
    total.corrupts += row.s.corrupts;
    total.reorders += row.s.reorders;
    total.delays += row.s.delays;
  }
  return total;
}

}  // namespace ss::vmpi
