// Reliable end-to-end transport over a lossy virtual fabric.
//
// When a LinkFaultModel is attached to a vmpi::Runtime in reliable mode,
// every application point-to-point message (and therefore every
// collective and every ABM batch, which are built from them) rides a
// TCP-flavored protocol instead of the perfect mailbox:
//
//  - per-(src,dst) *flows* with 32-bit sequence numbers (modular
//    comparisons, so wraparound is routine, not an event),
//  - a CRC-32 (io::crc32, the snapshot format's polynomial) over every
//    frame; corrupted frames are counted and dropped at the receiver,
//  - cumulative acks piggybacked on reverse data traffic, with delayed
//    pure acks when the receiver has nothing to say,
//  - sender-side retransmission of the oldest unacked frame with
//    exponential backoff on a capped virtual-time RTO — each timeout
//    *charges virtual time*, so loss shows up in goodput curves the way
//    it would on the real fabric,
//  - a receiver-side dedup + reorder window: duplicates are suppressed
//    (and re-acked), out-of-order frames are buffered and released
//    in-order, frames beyond the window are evicted for the sender to
//    retransmit later,
//  - a per-link health monitor (EWMA loss / RTT) with a degraded-link
//    alarm, exported through obs as net.* counters and the
//    net.link_health gauge.
//
// The application-visible contract: per (src,dst) flow, messages are
// delivered exactly once, in send order, bit-identical to what was sent
// — the same contract the perfect mailbox gives — so the treecode, the
// collectives and checkpoint/restart run unchanged and bit-stable on a
// fabric that drops, duplicates, reorders and corrupts frames.
//
// Scheduling note: retransmission *costs* are virtual (RTO backoff
// advances the sender's virtual clock) but retransmission *checks* are
// paced by a small real-time timer, because a rank blocked in recv has a
// frozen virtual clock. The transport makes progress from every
// send/recv/poll call and from the blocked-receive wait loop.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"
#include "vmpi/fault.hpp"

namespace ss::vmpi {

class Comm;
class Runtime;

struct TransportConfig {
  /// Initial virtual-time retransmission timeout and its backoff cap.
  /// Each timeout advances the sender's virtual clock by the current RTO
  /// (that's the latency cost of a loss) and doubles it up to the cap.
  double rto_seconds = 200e-6;
  double rto_cap_seconds = 20e-3;
  /// Receiver reorder/dedup window in frames per flow. Frames more than
  /// `window` ahead of the cumulative ack are evicted (the sender
  /// retransmits them once the gap is repaired).
  std::uint32_t window = 256;
  /// First data sequence number on every flow. Tests set this near
  /// UINT32_MAX to exercise wraparound.
  std::uint32_t initial_seq = 1;
  /// Send a pure ack after this many in-order deliveries without reverse
  /// traffic (piggybacking covers the common case).
  std::uint32_t ack_batch = 8;
  /// Pure-ack flush after this many consecutive idle progress calls (a
  /// blocked receiver acks promptly; a busy one piggybacks).
  std::uint32_t ack_idle_polls = 8;
  /// Real-time pacing of retransmission checks (doubling, capped).
  double retx_real_seconds = 2e-3;
  double retx_real_cap_seconds = 20e-3;
  /// Health EWMA smoothing and the degraded-link alarm threshold.
  double ewma_alpha = 0.125;
  double health_alarm = 0.5;
};

/// Aggregate protocol activity (sum over ranks / flows).
struct NetTotals {
  std::uint64_t frames_sent = 0;       ///< Physical data frames (incl. retx).
  std::uint64_t retransmits = 0;       ///< Timeout-driven resends.
  std::uint64_t corrupt_drops = 0;     ///< Frames rejected by CRC/format.
  std::uint64_t dup_suppressed = 0;    ///< Duplicate data frames discarded.
  std::uint64_t acks_piggybacked = 0;  ///< Acks carried on data frames.
  std::uint64_t pure_acks = 0;         ///< Dedicated ack frames sent.
  std::uint64_t window_evictions = 0;  ///< Frames dropped past the window.
  std::uint64_t degraded_alarms = 0;   ///< Health threshold crossings.
  std::uint64_t delivered = 0;         ///< Messages handed to the app.
};

class Transport {
 public:
  Transport(Runtime& rt, std::shared_ptr<LinkFaultModel> faults,
            TransportConfig cfg);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Reset all flow state for a fresh Runtime::run().
  void reset();

  /// Sender side: frame the payload and transmit it on flow
  /// (c.rank() -> dst). May consult the fault model several times
  /// (duplicate copies). Runs on the sending rank's thread. `flow_seq`
  /// is the application-level causal sequence number (low 32 bits of the
  /// obs flow id; 0 when tracing is off) — it rides the frame header so
  /// the receiver can close the sender's flow event at delivery.
  void send(Comm& c, int dst, int tag, std::vector<std::byte>&& payload,
            std::size_t modeled_bytes, std::uint32_t flow_seq = 0);

  /// Progress engine for rank c.rank(): drain the frame inbox, deliver
  /// in-order data to the rank's mailbox, process acks, send due pure
  /// acks, retransmit timed-out frames. Returns true if any frame was
  /// processed. Runs only on the owning rank's thread.
  bool pump(Comm& c);

  /// Block (politely: keep pumping) until every frame this rank sent has
  /// been cumulatively acked — i.e. delivered into its destination
  /// mailbox. Restores the clean runtime's "synchronous enqueue"
  /// invariant ahead of a barrier.
  void quiesce(Comm& c);

  /// Post-body drain: keep serving acks/retransmits until every rank's
  /// flows are clean, so no peer is left waiting on a dead thread.
  void drain(Comm& c);

  /// Human-readable per-flow protocol state for one rank (seq/ack/unacked
  /// table) — the payload of the drain watchdog's error message.
  std::string dump(int rank) const;

  NetTotals totals() const;                       ///< Sum over ranks.
  NetTotals totals(int rank) const;               ///< One rank's share.
  double link_health(int src, int dst) const;     ///< 1 = clean, -> 0 = dying.

  const TransportConfig& config() const { return cfg_; }

 private:
  // -- wire format ----------------------------------------------------------
  struct FrameHeader {
    std::uint32_t magic = 0;
    std::uint32_t crc = 0;  ///< CRC-32 of header (crc = 0) + payload.
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;  ///< Cumulative ack for the reverse flow.
    std::int32_t src = 0;
    std::int32_t dst = 0;
    std::int32_t tag = 0;
    std::uint32_t kind = 0;  ///< 0 = data, 1 = pure ack.
    std::uint32_t payload_bytes = 0;
    std::uint32_t flow_seq = 0;  ///< App causal seq (0 = tracing off).
    std::uint64_t modeled_bytes = 0;
  };
  static_assert(sizeof(FrameHeader) == 48);

  struct PhysFrame {
    double arrival = 0.0;
    std::vector<std::byte> wire;
  };

  // -- per-flow state -------------------------------------------------------
  struct TxFrame {
    std::uint32_t seq = 0;
    std::int32_t tag = 0;
    std::vector<std::byte> payload;
    std::size_t modeled_bytes = 0;
    double sent_vtime = 0.0;  ///< Virtual time of the last transmission.
    double rto = 0.0;         ///< Current virtual RTO (backoff).
    double retx_real = 0.0;   ///< Current real-time pacing (backoff).
    std::chrono::steady_clock::time_point last_real;
    std::uint32_t attempts = 0;  ///< Physical transmissions so far.
    std::uint32_t flow_seq = 0;  ///< App causal seq (rides retransmits too).
  };

  struct TxFlow {
    std::uint32_t next_seq = 0;
    std::deque<TxFrame> unacked;  ///< Ordered by seq.
    double loss_ewma = 0.0;
    double rtt_ewma = 0.0;
    bool alarmed = false;
  };

  struct RxHeld {
    std::int32_t tag = 0;
    double arrival = 0.0;
    std::uint32_t flow_seq = 0;
    std::vector<std::byte> payload;
  };

  struct RxFlow {
    std::uint32_t cum = 0;  ///< Highest in-order seq delivered to the app.
    std::unordered_map<std::uint32_t, RxHeld> ooo;  ///< Out-of-order buffer.
    std::uint32_t pending_acks = 0;  ///< Deliveries since the last ack out.
    bool dirty = false;              ///< Ack owed to the peer.
    bool urgent = false;             ///< Duplicate seen: ack immediately.
  };

  struct RankNet {
    std::mutex mu;  ///< Guards inbox (multi-producer, one consumer).
    std::deque<PhysFrame> inbox;
    std::vector<TxFlow> tx;  ///< Indexed by destination rank.
    std::vector<RxFlow> rx;  ///< Indexed by source rank.
    std::uint64_t ack_counter = 0;  ///< Fate keys for pure acks.
    std::uint32_t idle_pumps = 0;
    NetTotals totals;
    std::vector<std::unique_ptr<PhysFrame>> held;  ///< Reorder hold, per dst.
    // Observability (bound lazily on the owning thread).
    bool obs_bound = false;
    obs::Rank* rec = nullptr;
    obs::Counter* c_retx = nullptr;
    obs::Counter* c_corrupt = nullptr;
    obs::Counter* c_dup = nullptr;
    obs::Counter* c_piggy = nullptr;
    obs::Counter* c_pure = nullptr;
    obs::Counter* c_evict = nullptr;
    obs::Counter* c_alarm = nullptr;
    obs::Gauge* g_health = nullptr;
    obs::Histogram* h_rtt = nullptr;      ///< net.rtt_seconds (Karn RTTs).
    obs::Histogram* h_backoff = nullptr;  ///< net.retx_backoff_seconds.
  };

  void bind_obs(RankNet& net);
  void transmit(Comm& c, RankNet& net, int dst, std::uint32_t kind,
                std::uint32_t seq, std::int32_t tag,
                std::span<const std::byte> payload, std::size_t modeled_bytes,
                std::uint64_t fate_key, std::uint32_t flow_seq = 0);
  void enqueue_frame(int dst, PhysFrame&& frame);
  void process_frame(Comm& c, RankNet& net, PhysFrame&& frame);
  void process_ack(Comm& c, RankNet& net, int peer, std::uint32_t ackno,
                   double ack_arrival);
  void deliver_in_order(Comm& c, RankNet& net, int peer);
  void send_pure_ack(Comm& c, RankNet& net, int peer);
  void flush_due_acks(Comm& c, RankNet& net, bool idle);
  bool check_retransmits(Comm& c, RankNet& net);
  void update_health(RankNet& net, int dst, TxFlow& flow, double sample_loss);

  Runtime& rt_;
  std::shared_ptr<LinkFaultModel> faults_;
  TransportConfig cfg_;
  int nranks_;
  std::vector<std::unique_ptr<RankNet>> nets_;
  /// Ranks whose body returned and whose tx flows are fully acked; the
  /// post-body drain loops until all are (monotone once a rank stops
  /// sending data, which the drain guarantees).
  std::vector<std::uint8_t> drained_;  // written under drain_mu_
  std::mutex drain_mu_;
};

}  // namespace ss::vmpi
