#include "morton/sort.hpp"

#include <array>
#include <numeric>

namespace ss::morton {

namespace {
constexpr int kRadixBits = 8;
constexpr std::size_t kBuckets = 1u << kRadixBits;
constexpr int kPasses = 64 / kRadixBits;
}  // namespace

std::vector<std::uint32_t> radix_sort_permutation(std::span<const Key> keys) {
  const auto n = static_cast<std::uint32_t>(keys.size());
  std::vector<std::uint32_t> perm(n), next(n);
  std::iota(perm.begin(), perm.end(), 0u);

  std::array<std::uint32_t, kBuckets> count;
  for (int pass = 0; pass < kPasses; ++pass) {
    const int shift = pass * kRadixBits;
    // Skip passes whose digit is constant (common: high placeholder bits).
    count.fill(0);
    for (std::uint32_t i = 0; i < n; ++i) {
      ++count[(keys[perm[i]] >> shift) & (kBuckets - 1)];
    }
    bool constant = false;
    for (std::uint32_t c : count) {
      if (c == n) {
        constant = true;
        break;
      }
    }
    if (constant) continue;
    // Exclusive prefix sum -> stable scatter.
    std::uint32_t acc = 0;
    for (auto& c : count) {
      const std::uint32_t v = c;
      c = acc;
      acc += v;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::size_t digit = (keys[perm[i]] >> shift) & (kBuckets - 1);
      next[count[digit]++] = perm[i];
    }
    perm.swap(next);
  }
  return perm;
}

void radix_sort(std::vector<Key>& keys) {
  const auto perm = radix_sort_permutation(keys);
  std::vector<Key> sorted(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) sorted[i] = keys[perm[i]];
  keys.swap(sorted);
}

}  // namespace ss::morton
