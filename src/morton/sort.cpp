#include "morton/sort.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "support/task_pool.hpp"

namespace ss::morton {

namespace {

constexpr int kRadixBits = 8;
constexpr std::size_t kBuckets = 1u << kRadixBits;
constexpr int kPasses = 64 / kRadixBits;
constexpr std::uint64_t kDigitMask = kBuckets - 1;

// Below this size one chunk wins: per-pass fork/join overhead (two joins
// per pass, eight passes) dominates the scatter itself.
constexpr std::size_t kParallelThreshold = std::size_t{1} << 15;

int pick_threads(std::size_t n, int requested) {
  if (requested > 0) return requested;
  if (n < kParallelThreshold) return 1;
  // One chunk per pool thread; the pool's size already reflects the
  // ParallelConfig / SS_POOL_THREADS / hardware policy.
  return support::TaskPool::global().size();
}

/// Run fn(chunk_index, lo, hi) over an even chunking of [0, n) on the
/// work-stealing pool. Chunk boundaries depend only on (n, threads) —
/// never on which pool thread runs a chunk — so the per-chunk histogram
/// slots and the scatter stay deterministic under stealing. With one
/// chunk this is a plain inline call.
template <class Fn>
void run_chunks(int threads, std::uint32_t n, Fn&& fn) {
  if (threads <= 1 || n == 0) {
    fn(0, 0u, n);
    return;
  }
  const auto chunk = [n, threads](int t) {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(n) * static_cast<std::uint32_t>(t)) /
        static_cast<std::uint32_t>(threads));
  };
  support::TaskPool::global().parallel_chunks(
      static_cast<std::size_t>(threads), [&fn, &chunk](std::size_t ci) {
        const int t = static_cast<int>(ci);
        fn(t, chunk(t), chunk(t + 1));
      });
}

/// One histogram + offsets + scatter pass over (ka [, ia]) into
/// (kb [, ib]). Returns false when the digit is constant across all keys
/// (pass skipped, outputs untouched). `counts` holds threads * kBuckets
/// slots. Stability: offsets are bucket-major then thread-minor, and each
/// thread walks its chunk in order, so equal digits keep input order.
template <bool WithIdx>
bool radix_pass(const Key* ka, Key* kb, const std::uint32_t* ia,
                std::uint32_t* ib, std::uint32_t n, int shift, int threads,
                std::uint32_t* counts) {
  run_chunks(threads, n,
             [&](int t, std::uint32_t lo, std::uint32_t hi) {
               std::uint32_t* my = counts + static_cast<std::size_t>(t) * kBuckets;
               std::memset(my, 0, kBuckets * sizeof(std::uint32_t));
               for (std::uint32_t i = lo; i < hi; ++i) {
                 ++my[(ka[i] >> shift) & kDigitMask];
               }
             });

  // Exclusive offsets, bucket-major then thread-minor; detect a constant
  // digit (common: the high placeholder bits) on the way.
  std::uint32_t acc = 0;
  bool constant = false;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint32_t before = acc;
    for (int t = 0; t < threads; ++t) {
      std::uint32_t& slot = counts[static_cast<std::size_t>(t) * kBuckets + b];
      const std::uint32_t v = slot;
      slot = acc;
      acc += v;
    }
    if (acc - before == n && n != 0) constant = true;
  }
  if (constant) return false;

  run_chunks(threads, n,
             [&](int t, std::uint32_t lo, std::uint32_t hi) {
               std::uint32_t* my = counts + static_cast<std::size_t>(t) * kBuckets;
               for (std::uint32_t i = lo; i < hi; ++i) {
                 const Key k = ka[i];
                 const std::uint32_t dst = my[(k >> shift) & kDigitMask]++;
                 kb[dst] = k;
                 if constexpr (WithIdx) ib[dst] = ia[i];
               }
             });
  return true;
}

/// All passes; returns true when the sorted data ended in the "a"
/// buffers.
template <bool WithIdx>
bool radix_passes(Key* ka, Key* kb, std::uint32_t* ia, std::uint32_t* ib,
                  std::uint32_t n, int threads, std::uint32_t* counts) {
  bool in_a = true;
  for (int pass = 0; pass < kPasses; ++pass) {
    const int shift = pass * kRadixBits;
    const bool scattered =
        in_a ? radix_pass<WithIdx>(ka, kb, ia, ib, n, shift, threads, counts)
             : radix_pass<WithIdx>(kb, ka, ib, ia, n, shift, threads, counts);
    if (scattered) in_a = !in_a;
  }
  return in_a;
}

}  // namespace

void radix_sort_permutation(std::span<const Key> keys, RadixScratch& scratch,
                            std::vector<std::uint32_t>& perm, int threads) {
  const auto n = static_cast<std::uint32_t>(keys.size());
  perm.resize(n);
  if (n == 0) return;
  std::iota(perm.begin(), perm.end(), 0u);
  threads = pick_threads(n, threads);

  scratch.keys_a.resize(n);
  scratch.keys_b.resize(n);
  scratch.idx_b.resize(n);
  scratch.counts.resize(static_cast<std::size_t>(threads) * kBuckets);
  std::copy(keys.begin(), keys.end(), scratch.keys_a.begin());

  const bool in_a = radix_passes<true>(
      scratch.keys_a.data(), scratch.keys_b.data(), perm.data(),
      scratch.idx_b.data(), n, threads, scratch.counts.data());
  // The permutation ping-pongs between perm ("a") and scratch.idx_b; an
  // O(1) vector swap retrieves it when it landed in the scratch.
  if (!in_a) perm.swap(scratch.idx_b);
}

std::vector<std::uint32_t> radix_sort_permutation(std::span<const Key> keys) {
  RadixScratch scratch;
  std::vector<std::uint32_t> perm;
  radix_sort_permutation(keys, scratch, perm, /*threads=*/1);
  return perm;
}

void radix_sort(std::vector<Key>& keys, RadixScratch& scratch, int threads) {
  const auto n = static_cast<std::uint32_t>(keys.size());
  if (n == 0) return;
  threads = pick_threads(n, threads);

  scratch.keys_b.resize(n);
  scratch.counts.resize(static_cast<std::size_t>(threads) * kBuckets);

  const bool in_a =
      radix_passes<false>(keys.data(), scratch.keys_b.data(), nullptr, nullptr,
                          n, threads, scratch.counts.data());
  if (!in_a) keys.swap(scratch.keys_b);
}

void radix_sort(std::vector<Key>& keys) {
  RadixScratch scratch;
  radix_sort(keys, scratch, /*threads=*/1);
}

}  // namespace ss::morton
