// LSD radix sort for Morton keys.
//
// The domain decomposition is "practically identical to a parallel
// sorting algorithm" (paper Sec 4.2); its local phase sorts 64-bit keys.
// A least-significant-digit radix sort beats comparison sorting for the
// key volumes of production runs and is stable, which keeps equal-key
// bodies in input order (the tie rule the tree build relies on).
//
// Two implementation points (both measurable on decomposition-heavy
// runs):
//   * Keys ride along with the permutation indices in ping-ponged
//     (key, index) buffer pairs, so every pass streams contiguously
//     instead of re-gathering keys[perm[i]] through an indirection.
//   * Passes can run on multiple threads: per-thread histograms over
//     chunk-partitioned input, bucket-major/thread-minor exclusive
//     offsets, then a stable partitioned scatter. Thread 0's chunk
//     precedes thread 1's inside every bucket, which preserves the
//     global tie-by-input-order guarantee.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "morton/key.hpp"

namespace ss::morton {

/// Reusable buffers for the radix sort. Passing the same scratch to
/// repeated sorts (the decomposition re-sorts every step) makes them
/// allocation-free after warm-up.
struct RadixScratch {
  std::vector<Key> keys_a, keys_b;
  std::vector<std::uint32_t> idx_b;
  std::vector<std::uint32_t> counts;  ///< threads * 256 histogram slots.
};

/// Stable radix sort of `keys`; returns the permutation `perm` such that
/// keys[perm[0]] <= keys[perm[1]] <= ... (ties in input order).
std::vector<std::uint32_t> radix_sort_permutation(std::span<const Key> keys);

/// Scratch-reusing, optionally parallel variant. `perm` is resized to
/// keys.size(). `threads <= 0` picks automatically: 1 below a size
/// threshold, else min(hardware_concurrency, 16).
void radix_sort_permutation(std::span<const Key> keys, RadixScratch& scratch,
                            std::vector<std::uint32_t>& perm, int threads = 0);

/// In-place stable radix sort of a key array.
void radix_sort(std::vector<Key>& keys);

/// Scratch-reusing, optionally parallel in-place sort.
void radix_sort(std::vector<Key>& keys, RadixScratch& scratch,
                int threads = 0);

}  // namespace ss::morton
