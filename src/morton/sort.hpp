// LSD radix sort for Morton keys.
//
// The domain decomposition is "practically identical to a parallel
// sorting algorithm" (paper Sec 4.2); its local phase sorts 64-bit keys.
// A least-significant-digit radix sort beats comparison sorting for the
// key volumes of production runs and is stable, which keeps equal-key
// bodies in input order (the tie rule the tree build relies on).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "morton/key.hpp"

namespace ss::morton {

/// Stable radix sort of `keys`; returns the permutation `perm` such that
/// keys[perm[0]] <= keys[perm[1]] <= ... (ties in input order).
std::vector<std::uint32_t> radix_sort_permutation(std::span<const Key> keys);

/// In-place stable radix sort of a key array.
void radix_sort(std::vector<Key>& keys);

}  // namespace ss::morton
