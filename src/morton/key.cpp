#include "morton/key.hpp"

#include <algorithm>
#include <cmath>

namespace ss::morton {

Box Box::bounding(const support::Vec3* pos, std::size_t n) {
  Box b;
  if (n == 0) return b;
  support::Vec3 lo = pos[0], hi = pos[0];
  for (std::size_t i = 1; i < n; ++i) {
    lo.x = std::min(lo.x, pos[i].x);
    lo.y = std::min(lo.y, pos[i].y);
    lo.z = std::min(lo.z, pos[i].z);
    hi.x = std::max(hi.x, pos[i].x);
    hi.y = std::max(hi.y, pos[i].y);
    hi.z = std::max(hi.z, pos[i].z);
  }
  const double span =
      std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z, 1e-300});
  // Pad by a relative epsilon so points on the upper face stay inside the
  // half-open cube.
  b.size = span * (1.0 + 1e-9);
  b.lo = lo;
  return b;
}

Key encode(const support::Vec3& p, const Box& box) {
  const double scale = static_cast<double>(kLatticeSize) / box.size;
  auto clamp_coord = [&](double c, double lo) -> std::uint32_t {
    const double t = (c - lo) * scale;
    const auto max_i = static_cast<double>(kLatticeSize - 1);
    const double clamped = std::clamp(t, 0.0, max_i);
    return static_cast<std::uint32_t>(clamped);
  };
  return key_from_lattice(clamp_coord(p.x, box.lo.x), clamp_coord(p.y, box.lo.y),
                          clamp_coord(p.z, box.lo.z));
}

support::Vec3 cell_center(Key k, const Box& box) {
  const int lev = level(k);
  // Lattice coordinate of the cell's first descendant gives its low corner.
  std::uint32_t ix, iy, iz;
  lattice_from_key(first_descendant(k), ix, iy, iz);
  const double cell = box.size / static_cast<double>(std::uint64_t{1} << lev);
  const double lattice_cell = box.size / static_cast<double>(kLatticeSize);
  return {box.lo.x + static_cast<double>(ix) * lattice_cell + 0.5 * cell,
          box.lo.y + static_cast<double>(iy) * lattice_cell + 0.5 * cell,
          box.lo.z + static_cast<double>(iz) * lattice_cell + 0.5 * cell};
}

double cell_size(Key k, const Box& box) {
  return box.size / static_cast<double>(std::uint64_t{1} << level(k));
}

}  // namespace ss::morton
