// Morton (Z-order) keys in the Warren & Salmon "hashed oct-tree" style.
//
// A key identifies a cell of the octree at any level. Following the paper,
// the key consists of a leading *placeholder bit* followed by 3 bits per
// level (one octant choice per level). The root cell is key 1; the eight
// daughters of key k are 8k .. 8k+7. This makes parent/daughter/level
// arithmetic pure bit manipulation, and the set of keys at the maximum
// depth is exactly the Morton order of the underlying 3-D integer lattice,
// which the domain decomposition uses as its 1-D load-balancing curve
// (paper Fig 6).
//
// With 64-bit keys the maximum depth is 21 levels (63 bits + placeholder),
// i.e. a 2^21 lattice per dimension.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>

#include "support/vec3.hpp"

namespace ss::morton {

using Key = std::uint64_t;

inline constexpr int kMaxLevel = 21;
inline constexpr Key kRootKey = 1;
/// Number of lattice cells per dimension at the maximum depth.
inline constexpr std::uint32_t kLatticeSize = 1u << kMaxLevel;

/// Axis-aligned bounding cube mapping simulation coordinates onto the key
/// lattice. All key construction goes through a Box so that a particle set
/// and the tree built over it agree on the mapping.
struct Box {
  support::Vec3 lo{0.0, 0.0, 0.0};
  double size = 1.0;  ///< Edge length; the cube is [lo, lo+size)^3.

  /// Smallest cube (padded slightly) containing all given points.
  static Box bounding(const support::Vec3* pos, std::size_t n);
};

/// Spread the low 21 bits of v so there are two zero bits between each
/// original bit (the standard 3-D interleave helper).
constexpr std::uint64_t spread3(std::uint64_t v) {
  v &= 0x1fffff;  // 21 bits
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

/// Inverse of spread3.
constexpr std::uint64_t compact3(std::uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffULL;
  v = (v ^ (v >> 32)) & 0x1fffffULL;
  return v;
}

/// Key of the depth-kMaxLevel lattice cell (ix, iy, iz). Bit order within
/// each level triplet is (x, y, z) from most to least significant.
constexpr Key key_from_lattice(std::uint32_t ix, std::uint32_t iy,
                                 std::uint32_t iz) {
  return (Key{1} << (3 * kMaxLevel)) | (spread3(ix) << 2) |
         (spread3(iy) << 1) | spread3(iz);
}

/// Lattice coordinates of a maximum-depth key.
constexpr void lattice_from_key(Key k, std::uint32_t& ix, std::uint32_t& iy,
                                std::uint32_t& iz) {
  ix = static_cast<std::uint32_t>(compact3(k >> 2));
  iy = static_cast<std::uint32_t>(compact3(k >> 1));
  iz = static_cast<std::uint32_t>(compact3(k));
}

/// Level of a key (root = 0, maximum-depth leaves = kMaxLevel).
constexpr int level(Key k) {
  int bits = 0;
  while (k > 1) {
    k >>= 3;
    ++bits;
  }
  return bits;
}

constexpr Key parent(Key k) { return k >> 3; }

/// Daughter `octant` (0..7) of cell k.
constexpr Key child(Key k, int octant) {
  return (k << 3) | static_cast<Key>(octant & 7);
}

/// Which daughter of its parent this key is.
constexpr int octant_of(Key k) { return static_cast<int>(k & 7); }

/// Ancestor of k at the given (shallower or equal) level.
constexpr Key ancestor_at(Key k, int lev) {
  const int d = level(k) - lev;
  return d <= 0 ? k : (k >> (3 * d));
}

/// True if `a` is an ancestor of (or equal to) `b`.
constexpr bool contains(Key a, Key b) {
  const int da = level(a), db = level(b);
  if (da > db) return false;
  return (b >> (3 * (db - da))) == a;
}

/// Smallest / largest maximum-depth key contained in cell k.
constexpr Key first_descendant(Key k) {
  return k << (3 * (kMaxLevel - level(k)));
}
constexpr Key last_descendant(Key k) {
  const int shift = 3 * (kMaxLevel - level(k));
  return (k << shift) | ((Key{1} << shift) - 1);
}

/// Encode a position into a maximum-depth key relative to `box`.
/// Positions outside the box are clamped onto its boundary lattice cell.
Key encode(const support::Vec3& p, const Box& box);

/// Geometric center of the cell identified by `k` within `box`.
support::Vec3 cell_center(Key k, const Box& box);

/// Edge length of the cell identified by `k` within `box`.
double cell_size(Key k, const Box& box);

/// Hash suitable for open-addressing tables over keys (Warren & Salmon use
/// simple masking; we mix first so that sibling keys spread).
constexpr std::uint64_t hash_key(Key k) {
  std::uint64_t z = k * 0x9e3779b97f4a7c15ULL;
  z ^= z >> 29;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 32;
  return z;
}

}  // namespace ss::morton
