// Checkpoint generations over striped snapshots, plus the classic
// checkpoint-interval analysis that links the Sec 2.1 reliability model
// to this subsystem.
//
// A checkpoint run produces a sequence of *generations* under one
// directory:
//
//   DIR/gen_00000010/ckpt.r0000.ssb ... ckpt.manifest.ssb
//   DIR/gen_00000020/...
//
// (the generation id is the step number). CheckpointStore pipelines
// them: save() serializes this rank's stripe and hands it to the
// AsyncWriter, so the disk write overlaps the next interval of force
// computation; the generation *commits* (rank 0 writes the manifest) at
// the next save()/finalize(), after every rank's writer has drained. A
// rank dying mid-interval therefore leaves at most one uncommitted
// generation, which restore_latest() skips by construction — and a
// damaged committed generation (CRC or structure) makes restore fall
// back to the one before it.
//
// restore_latest() is rank-count agnostic: a manifest written by P ranks
// restores onto any Q ranks (each new rank takes a contiguous slice of
// the rank-major concatenation; per-element payloads ride along).
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "io/async_writer.hpp"
#include "io/snapshot.hpp"
#include "vmpi/comm.hpp"

namespace ss::io {

/// A restored, validated generation: the manifest plus one BlockReader
/// per original stripe (payload CRCs all verified).
struct RestoredGeneration {
  std::uint64_t generation = 0;
  Manifest manifest;
  std::vector<BlockReader> stripes;
  int fallbacks = 0;  ///< Newer generations skipped as invalid/damaged.
};

/// Result of one on-disk scrub pass over a checkpoint directory.
struct ScrubReport {
  int generations_scanned = 0;
  int generations_ok = 0;   ///< Committed and fully CRC-valid.
  int uncommitted = 0;      ///< Stripes without a manifest (benign debris).
  int errors = 0;           ///< Committed generations with damage.
  /// Generation ids of the damaged ones (each also bumps
  /// io.scrub_errors).
  std::vector<std::uint64_t> damaged;
};

class CheckpointStore {
 public:
  struct Config {
    std::filesystem::path dir;
    /// Committed generations retained on disk (>= 2: the one being
    /// superseded must survive until its successor commits).
    int keep = 3;
    /// Overlap stripe writes with compute through an AsyncWriter. Off =
    /// synchronous stripes and immediate commit (simplest semantics).
    bool async = true;
    std::string name = "ckpt";
  };

  CheckpointStore(ss::vmpi::Comm& comm, Config cfg);
  ~CheckpointStore();  ///< Drains this rank's writer. Does NOT commit.

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Collective. Commits the previous pending generation (async path),
  /// then serializes this rank's stripe via `fill` and starts writing
  /// generation `step`. `count` is this rank's element count (manifest
  /// slicing unit — bodies, for the N-body wiring).
  SnapshotWriteStats save(std::uint64_t step, double time,
                          std::uint64_t count,
                          const std::function<void(BlockBuilder&)>& fill);

  /// Collective. Commit the pending generation, if any. Call at the end
  /// of a run so the final checkpoint becomes restorable.
  void finalize();

  /// Collective. Newest valid generation, walking backwards over
  /// corrupt or uncommitted ones (every skip is agreed by all ranks).
  /// nullopt when no generation validates.
  std::optional<RestoredGeneration> restore_latest();

  /// Collective. Proactive media-rot sweep: rank 0 re-reads every
  /// generation on disk and re-verifies every stripe's payload CRCs
  /// (what restore_latest would only discover lazily, at restart time),
  /// then broadcasts the report. Each damaged committed generation bumps
  /// io.scrub_errors.
  ScrubReport scrub();

  /// The scan itself (single-process; what rank 0 of scrub() runs).
  static ScrubReport scrub_dir(const std::filesystem::path& dir,
                               const std::string& name = "ckpt");

  /// Committed + pending generation ids, ascending (filesystem scan).
  static std::vector<std::uint64_t> list_generations(
      const std::filesystem::path& dir);
  static std::filesystem::path generation_dir(
      const std::filesystem::path& dir, std::uint64_t generation);

  AsyncWriter::Stats io_stats() const;
  std::optional<std::uint64_t> pending_generation() const {
    return pending_;
  }
  const Config& config() const { return cfg_; }

 private:
  void commit_pending();
  void prune();
  /// True when generation `gen` has a readable, well-formed manifest.
  bool read_manifest_nothrow(std::uint64_t gen) const;

  ss::vmpi::Comm& comm_;
  Config cfg_;
  std::unique_ptr<AsyncWriter> writer_;  // null on the sync path
  AsyncWriter::Stats sync_stats_;        // stats for the sync path
  std::optional<std::uint64_t> pending_;
  double pending_time_ = 0.0;
  std::uint64_t pending_count_ = 0;
  std::uint64_t pending_bytes_ = 0;
};

// ---------------------------------------------------------------------------
// Optimal checkpoint interval (Young 1974): with checkpoint cost C and
// exponential failures at MTBF M, the first-order overhead of interval
// tau is C/tau (writing) + tau/(2M) (expected recomputation), minimized
// at tau* = sqrt(2 C M). bench_sec21_reliability tabulates this against
// the paper's component failure rates.
// ---------------------------------------------------------------------------

/// tau* = sqrt(2 * checkpoint_cost * mtbf) (same unit as the inputs).
double optimal_checkpoint_interval(double checkpoint_cost, double mtbf);

/// First-order overhead fraction C/tau + tau/(2M), the run-time tax of
/// checkpointing every tau.
double checkpoint_overhead(double interval, double checkpoint_cost,
                           double mtbf);

}  // namespace ss::io
