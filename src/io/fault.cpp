#include "io/fault.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "support/rng.hpp"

namespace ss::io {

namespace {

std::vector<FaultInjector::Kill> normalized(
    std::vector<FaultInjector::Kill> kills) {
  std::sort(kills.begin(), kills.end(),
            [](const FaultInjector::Kill& a, const FaultInjector::Kill& b) {
              return a.step != b.step ? a.step < b.step : a.rank < b.rank;
            });
  kills.erase(std::unique(kills.begin(), kills.end(),
                          [](const FaultInjector::Kill& a,
                             const FaultInjector::Kill& b) {
                            return a.rank == b.rank && a.step == b.step;
                          }),
              kills.end());
  return kills;
}

}  // namespace

FaultInjector::FaultInjector(std::vector<Kill> schedule)
    : kills_(normalized(std::move(schedule))) {
  if (!kills_.empty()) {
    fired_flags_ = std::make_unique<std::atomic<bool>[]>(kills_.size());
    for (std::size_t i = 0; i < kills_.size(); ++i) {
      fired_flags_[i].store(false, std::memory_order_relaxed);
    }
  }
}

FaultInjector FaultInjector::from_mtbf(double mtbf_hours, double step_hours,
                                       int nranks, std::uint64_t max_step,
                                       std::uint64_t seed) {
  std::vector<Kill> kills;
  if (mtbf_hours > 0.0 && step_hours > 0.0 && nranks > 0) {
    ss::support::Rng rng(seed);
    double hours = 0.0;
    for (;;) {
      hours += rng.exponential(1.0 / mtbf_hours);
      const double step = std::floor(hours / step_hours);
      if (step > static_cast<double>(max_step)) break;
      Kill k;
      k.rank = static_cast<int>(rng.below(static_cast<std::uint64_t>(nranks)));
      k.step = static_cast<std::uint64_t>(step);
      kills.push_back(k);
    }
  }
  return FaultInjector(std::move(kills));
}

void FaultInjector::tick(int rank, std::uint64_t step) {
  for (std::size_t i = 0; i < kills_.size(); ++i) {
    if (kills_[i].rank != rank || kills_[i].step != step) continue;
    bool expected = false;
    if (fired_flags_[i].compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
      if (obs::Counter* c = obs::counter("io.faults_injected")) c->add(1);
      throw RankFailure(rank, step);
    }
  }
}

void FaultInjector::disarm() {
  for (std::size_t i = 0; i < kills_.size(); ++i) {
    fired_flags_[i].store(true, std::memory_order_release);
  }
}

std::size_t FaultInjector::fired() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < kills_.size(); ++i) {
    if (fired_flags_[i].load(std::memory_order_acquire)) ++n;
  }
  return n;
}

}  // namespace ss::io
