// Deterministic fault injection for checkpoint/restart testing.
//
// A FaultInjector holds a schedule of (rank, step) kill points. The
// integration loop calls tick(rank, step) once per rank per step; when a
// scheduled point is reached the injector throws RankFailure on that
// rank, modeling a node dying mid-run. vmpi::Runtime::run tears the
// whole virtual job down and rethrows the failure, so a supervisor loop
// (nbody::run_with_recovery) can catch it and restart every rank from
// the last committed checkpoint generation.
//
// Each schedule entry fires exactly once per injector lifetime: the
// injector outlives restart attempts (it lives in the supervisor, not
// inside the per-attempt Runtime), so a kill consumed on attempt k does
// not re-fire on attempt k+1 — the restarted run sails past the step
// that killed its predecessor, which is exactly the recovery semantics
// the end-to-end test asserts.
//
// Schedules come from two constructors:
//  - an explicit deterministic list (tests), or
//  - from_mtbf(): exponential time-to-failure draws at a given MTBF with
//    a uniformly random victim rank, reproducible from a seed — this
//    links the hw::reliability failure model (Sec 2.1 of the paper) to
//    the I/O subsystem it motivates.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace ss::io {

/// Thrown by FaultInjector::tick on the victim rank at its kill step.
class RankFailure : public std::runtime_error {
 public:
  RankFailure(int rank, std::uint64_t step)
      : std::runtime_error("injected failure: rank " + std::to_string(rank) +
                           " died at step " + std::to_string(step)),
        rank_(rank),
        step_(step) {}
  int rank() const noexcept { return rank_; }
  std::uint64_t step() const noexcept { return step_; }

 private:
  int rank_;
  std::uint64_t step_;
};

class FaultInjector {
 public:
  struct Kill {
    int rank = 0;
    std::uint64_t step = 0;
  };

  FaultInjector() = default;  ///< Empty schedule: never fires.

  /// Deterministic schedule (duplicates collapse; order irrelevant).
  explicit FaultInjector(std::vector<Kill> schedule);

  /// Draw a schedule from exponential inter-failure times at `mtbf_hours`
  /// with `step_hours` of virtual wall time per step, victims uniform
  /// over `nranks`. Failures past `max_step` are dropped.
  static FaultInjector from_mtbf(double mtbf_hours, double step_hours,
                                 int nranks, std::uint64_t max_step,
                                 std::uint64_t seed);

  /// Called by every rank once per step. Throws RankFailure iff this
  /// (rank, step) is scheduled and has not fired yet. Thread-safe: ranks
  /// are vmpi threads and each entry fires on exactly one of them.
  void tick(int rank, std::uint64_t step);

  /// Defuse all remaining kills (e.g. after the run under test ends).
  void disarm();

  std::size_t scheduled() const { return kills_.size(); }
  std::size_t fired() const;
  const std::vector<Kill>& schedule() const { return kills_; }

 private:
  std::vector<Kill> kills_;  // parallel to fired_flags_
  // unique_ptr so the injector stays movable while flags stay atomic.
  std::unique_ptr<std::atomic<bool>[]> fired_flags_;
};

}  // namespace ss::io
