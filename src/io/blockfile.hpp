// Self-describing block container — the on-disk unit of the snapshot and
// checkpoint subsystem (SDF-inspired: Warren & Salmon's self-describing
// files, here with a binary index instead of a parsed ASCII preamble).
//
// Layout (little-endian, fixed-width fields):
//
//   FileHeader   magic "SSBLOCK1", version, endian tag, block count,
//                index offset, total file bytes, header CRC32
//   payload 0    raw bytes of block 0
//   payload 1    ...
//   index        BlockDesc[block_count]: name, dtype, element size,
//                count, payload offset/bytes, payload CRC32, desc CRC32
//
// Every structural record carries its own CRC; payload CRCs are verified
// on read. Readers reject wrong magic, unsupported versions, foreign
// endianness, size mismatches (truncation / trailing garbage) and
// checksum failures with typed errors so callers can distinguish "not a
// snapshot" from "a damaged snapshot" — the checkpoint fallback logic
// depends on that distinction.
//
// Three entry points:
//   BlockBuilder     serialize blocks into an in-memory file image (the
//                    async writer ships the image to disk off-thread)
//   BlockFileWriter  stream blocks straight to a file (out-of-core store:
//                    payloads larger than memory)
//   BlockReader      validate + read either form
#pragma once

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ss::io {

inline constexpr std::uint32_t kFormatVersion = 1;

/// Base class of every I/O subsystem error.
struct IoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Structural problem: wrong magic, unsupported version, truncated file,
/// unknown block, type mismatch. The file is not (or is no longer) a
/// well-formed block file of this version.
struct FormatError : IoError {
  using IoError::IoError;
};

/// Integrity problem: a CRC32 check failed. The file is structurally
/// plausible but its bits are damaged.
struct CrcError : IoError {
  using IoError::IoError;
};

/// Element type of a block. `raw` covers trivially-copyable structs; the
/// element size in the descriptor keeps such blocks self-describing
/// enough for tools to skip or dump them.
enum class DType : std::uint32_t {
  u8 = 1,
  u32 = 2,
  u64 = 3,
  i32 = 4,
  i64 = 5,
  f32 = 6,
  f64 = 7,
  raw = 8,
};

template <typename T>
constexpr DType dtype_of() {
  if constexpr (std::is_same_v<T, std::uint8_t> ||
                std::is_same_v<T, std::byte>) {
    return DType::u8;
  } else if constexpr (std::is_same_v<T, std::uint32_t>) {
    return DType::u32;
  } else if constexpr (std::is_same_v<T, std::uint64_t>) {
    return DType::u64;
  } else if constexpr (std::is_same_v<T, std::int32_t>) {
    return DType::i32;
  } else if constexpr (std::is_same_v<T, std::int64_t>) {
    return DType::i64;
  } else if constexpr (std::is_same_v<T, float>) {
    return DType::f32;
  } else if constexpr (std::is_same_v<T, double>) {
    return DType::f64;
  } else {
    static_assert(std::is_trivially_copyable_v<T>,
                  "block elements must be trivially copyable");
    return DType::raw;
  }
}

/// Parsed block metadata (descriptor minus wire padding).
struct BlockInfo {
  std::string name;
  DType dtype = DType::raw;
  std::uint32_t elem_size = 0;
  std::uint64_t count = 0;
  std::uint64_t offset = 0;         ///< Payload byte offset in the file.
  std::uint64_t payload_bytes = 0;  ///< == count * elem_size.
  std::uint32_t payload_crc = 0;
};

namespace detail {

inline constexpr std::size_t kNameBytes = 24;
inline constexpr char kMagic[8] = {'S', 'S', 'B', 'L', 'O', 'C', 'K', '1'};
inline constexpr std::uint32_t kEndianTag = 0x01020304u;

struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian;
  std::uint64_t block_count;
  std::uint64_t index_offset;
  std::uint64_t file_bytes;
  std::uint32_t reserved;
  std::uint32_t header_crc;  ///< CRC32 of all preceding fields.
};
static_assert(sizeof(FileHeader) == 48);

struct BlockDesc {
  char name[kNameBytes];
  std::uint32_t dtype;
  std::uint32_t elem_size;
  std::uint64_t count;
  std::uint64_t offset;
  std::uint64_t payload_bytes;
  std::uint32_t payload_crc;
  std::uint32_t desc_crc;  ///< CRC32 of all preceding fields.
};
static_assert(sizeof(BlockDesc) == 64);

BlockDesc make_desc(std::string_view name, DType dtype,
                    std::uint32_t elem_size, std::uint64_t count,
                    std::uint64_t offset, std::uint32_t payload_crc);

}  // namespace detail

// ---------------------------------------------------------------------------
// Writers.
// ---------------------------------------------------------------------------

/// Serializes a complete block file into memory. finish() returns the
/// file image; pair with AsyncWriter to overlap the disk write with
/// compute, or with write_file_atomic for a synchronous path.
class BlockBuilder {
 public:
  BlockBuilder();

  /// Append a block. Names must be non-empty, unique, and at most 23
  /// bytes. `payload.size()` must equal `count * elem_size`.
  void add(std::string_view name, DType dtype, std::uint32_t elem_size,
           std::uint64_t count, std::span<const std::byte> payload);

  template <typename T>
  void add(std::string_view name, std::span<const T> items) {
    add(name, dtype_of<T>(), sizeof(T), items.size(),
        {reinterpret_cast<const std::byte*>(items.data()),
         items.size() * sizeof(T)});
  }

  void add_scalar(std::string_view name, std::uint64_t v) {
    add<std::uint64_t>(name, std::span<const std::uint64_t>(&v, 1));
  }
  void add_scalar(std::string_view name, double v) {
    add<double>(name, std::span<const double>(&v, 1));
  }

  /// Append the index, patch the header, and hand the image over. The
  /// builder is spent afterwards; further calls throw.
  std::vector<std::byte> finish();

  /// Bytes accumulated so far (header + payloads; index pending).
  std::uint64_t bytes() const { return image_.size(); }
  std::size_t block_count() const { return descs_.size(); }

 private:
  void require_open(const char* op) const;

  std::vector<std::byte> image_;
  std::vector<detail::BlockDesc> descs_;
  bool finished_ = false;
};

/// Streams blocks straight to a file, payload by payload, so the working
/// set stays one block regardless of total size (the out-of-core path).
/// The header is finalized by finish(); a file missing it (crash, kill)
/// fails validation on open — which is exactly the commit semantics the
/// checkpoint layer wants.
class BlockFileWriter {
 public:
  explicit BlockFileWriter(std::filesystem::path path);

  /// Open a block: subsequent append_payload() calls stream its bytes.
  void begin_block(std::string_view name, DType dtype,
                   std::uint32_t elem_size);
  void append_payload(std::span<const std::byte> bytes);
  template <typename T>
  void append_items(std::span<const T> items) {
    append_payload({reinterpret_cast<const std::byte*>(items.data()),
                    items.size() * sizeof(T)});
  }
  void end_block();

  /// One-shot block (begin + append + end).
  void add(std::string_view name, DType dtype, std::uint32_t elem_size,
           std::uint64_t count, std::span<const std::byte> payload);

  /// Write index + final header and flush. Idempotent.
  void finish();

  bool finished() const { return finished_; }
  std::uint64_t bytes() const { return cursor_; }
  const std::filesystem::path& path() const { return path_; }
  const std::vector<BlockInfo>& blocks() const { return infos_; }

 private:
  std::filesystem::path path_;
  std::ofstream file_;
  std::vector<detail::BlockDesc> descs_;
  std::vector<BlockInfo> infos_;
  std::uint64_t cursor_ = 0;
  // In-flight block state.
  bool in_block_ = false;
  std::string cur_name_;
  DType cur_dtype_ = DType::raw;
  std::uint32_t cur_elem_ = 0;
  std::uint64_t cur_offset_ = 0;
  std::uint64_t cur_bytes_ = 0;
  std::uint32_t cur_crc_ = 0;
  bool finished_ = false;
};

/// Durable whole-file write: write to `path` + ".tmp", flush, then rename
/// over `path` so readers never observe a half-written file.
void write_file_atomic(const std::filesystem::path& path,
                       std::span<const std::byte> image);

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

/// Validates and reads a block file (from disk or an in-memory image).
/// Construction verifies the structure (magic, version, endianness, size,
/// header + index CRCs); payload CRCs are verified on each read so a
/// damaged block is detected exactly when its bytes are consumed.
class BlockReader {
 public:
  /// Load and validate a file. Throws FormatError / CrcError.
  explicit BlockReader(const std::filesystem::path& path);
  /// Validate an in-memory image (tests, tooling).
  explicit BlockReader(std::vector<std::byte> image,
                       std::string origin = "<memory>");

  const std::vector<BlockInfo>& blocks() const { return blocks_; }
  bool has(std::string_view name) const { return find(name) != nullptr; }
  const BlockInfo* find(std::string_view name) const;
  /// Like find(), but throws FormatError when absent.
  const BlockInfo& info(std::string_view name) const;

  /// Typed read with payload CRC verification. Throws FormatError on a
  /// missing block or a dtype/element-size mismatch, CrcError on damage
  /// (also bumps the caller thread's `io.crc_failures` obs counter).
  template <typename T>
  std::vector<T> read(std::string_view name) const {
    const BlockInfo& b = info(name);
    check_type(b, dtype_of<T>(), sizeof(T));
    const auto bytes = payload_checked(b);
    std::vector<T> out(b.count);
    if (!bytes.empty()) {
      std::memcpy(out.data(), bytes.data(), bytes.size());
    }
    return out;
  }

  std::uint64_t read_u64(std::string_view name) const;
  double read_f64(std::string_view name) const;

  /// Raw payload bytes of a block, CRC-verified.
  std::span<const std::byte> payload_checked(const BlockInfo& b) const;

  /// Verify every payload CRC (restore-time full validation). Throws
  /// CrcError on the first damaged block.
  void verify_all() const;

  /// Where this image came from (path or "<memory>"), for error text.
  const std::string& origin() const { return origin_; }
  std::uint64_t file_bytes() const { return image_.size(); }

 private:
  void parse();
  void check_type(const BlockInfo& b, DType want, std::uint32_t elem) const;

  std::string origin_;
  std::vector<std::byte> image_;
  std::vector<BlockInfo> blocks_;
};

}  // namespace ss::io
