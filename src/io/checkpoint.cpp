#include "io/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/obs.hpp"
#include "support/timer.hpp"

namespace ss::io {

CheckpointStore::CheckpointStore(ss::vmpi::Comm& comm, Config cfg)
    : comm_(comm), cfg_(std::move(cfg)) {
  if (cfg_.keep < 2) cfg_.keep = 2;
  if (cfg_.async) writer_ = std::make_unique<AsyncWriter>(2);
}

CheckpointStore::~CheckpointStore() = default;  // writer_ dtor drains

std::filesystem::path CheckpointStore::generation_dir(
    const std::filesystem::path& dir, std::uint64_t generation) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "gen_%08llu",
                static_cast<unsigned long long>(generation));
  return dir / buf;
}

std::vector<std::uint64_t> CheckpointStore::list_generations(
    const std::filesystem::path& dir) {
  std::vector<std::uint64_t> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec), end;
  if (ec) return out;
  for (; it != end; it.increment(ec)) {
    if (ec) break;
    const std::string base = it->path().filename().string();
    unsigned long long gen = 0;
    if (std::sscanf(base.c_str(), "gen_%llu", &gen) == 1) {
      out.push_back(gen);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void CheckpointStore::commit_pending() {
  if (!pending_) return;
  if (writer_ != nullptr) writer_->drain();  // stripe durable (or throw)
  commit_snapshot(comm_, generation_dir(cfg_.dir, *pending_), cfg_.name,
                  *pending_, pending_time_, pending_count_, pending_bytes_);
  pending_.reset();
  prune();
}

void CheckpointStore::prune() {
  if (comm_.rank() == 0) {
    // Keep the newest `keep` committed generations; drop older ones and
    // any stale uncommitted directory below them (debris of a failed
    // attempt that has since been superseded).
    std::vector<std::uint64_t> committed;
    for (std::uint64_t g : list_generations(cfg_.dir)) {
      if (read_manifest_nothrow(g)) committed.push_back(g);
    }
    if (committed.size() > static_cast<std::size_t>(cfg_.keep)) {
      const std::uint64_t cutoff =
          committed[committed.size() - static_cast<std::size_t>(cfg_.keep)];
      for (std::uint64_t g : list_generations(cfg_.dir)) {
        if (g < cutoff) {
          std::error_code ec;
          std::filesystem::remove_all(generation_dir(cfg_.dir, g), ec);
        }
      }
    }
  }
  comm_.barrier();
}

bool CheckpointStore::read_manifest_nothrow(std::uint64_t gen) const {
  try {
    return read_manifest(generation_dir(cfg_.dir, gen), cfg_.name)
        .has_value();
  } catch (...) {
    return false;  // present but damaged: not a committed generation
  }
}

SnapshotWriteStats CheckpointStore::save(
    std::uint64_t step, double time, std::uint64_t count,
    const std::function<void(BlockBuilder&)>& fill) {
  obs::ScopedPhase phase("io.checkpoint");
  commit_pending();

  const auto gen_dir = generation_dir(cfg_.dir, step);
  if (comm_.rank() == 0) {
    // Re-saving a generation id (recovery replay): uncommit it first so
    // no reader can pair the new stripes with the old manifest.
    std::error_code ec;
    std::filesystem::remove(manifest_path(gen_dir, cfg_.name), ec);
  }

  SnapshotWriteStats st =
      write_snapshot(comm_, gen_dir, cfg_.name, step, time, count, fill,
                     writer_.get());
  if (writer_ != nullptr) {
    pending_ = step;
    pending_time_ = time;
    pending_count_ = count;
    pending_bytes_ = st.bytes;
    writer_->publish_obs();
  } else {
    sync_stats_.files += 1;
    sync_stats_.bytes += st.bytes;
    sync_stats_.write_seconds += st.write_seconds;
    sync_stats_.blocked_seconds += st.write_seconds;  // fully blocking
    prune();
  }
  return st;
}

void CheckpointStore::finalize() {
  commit_pending();
  if (writer_ != nullptr) writer_->publish_obs();
}

AsyncWriter::Stats CheckpointStore::io_stats() const {
  return writer_ != nullptr ? writer_->stats() : sync_stats_;
}

std::optional<RestoredGeneration> CheckpointStore::restore_latest() {
  obs::ScopedPhase phase("io.restore");
  // Rank 0 enumerates (one authoritative scan), newest first.
  std::vector<std::uint64_t> gens;
  if (comm_.rank() == 0) gens = list_generations(cfg_.dir);
  comm_.bcast(gens, 0);
  std::sort(gens.rbegin(), gens.rend());

  int fallbacks = 0;
  for (std::uint64_t gen : gens) {
    // Every rank validates the whole generation; a single dissenting
    // rank (its read raced a partial file, its stripe is damaged...)
    // vetoes it for everyone so the restart state stays consistent.
    RestoredGeneration out;
    int ok = 1;
    try {
      const auto dir = generation_dir(cfg_.dir, gen);
      auto m = read_manifest(dir, cfg_.name);
      if (!m) {
        ok = 0;  // uncommitted: stripes without a marker
      } else {
        out.manifest = std::move(*m);
        out.stripes = read_stripes(dir, cfg_.name, out.manifest);
        for (const BlockReader& r : out.stripes) r.verify_all();
      }
    } catch (const IoError&) {
      ok = 0;
    }
    const int agreed = comm_.allreduce_value<int>(
        ok, [](int a, int b) { return a < b ? a : b; });
    if (agreed == 1) {
      out.generation = gen;
      out.fallbacks = fallbacks;
      if (obs::Gauge* g = obs::gauge("io.restore_fallbacks")) {
        g->set(static_cast<double>(fallbacks));
      }
      return out;
    }
    ++fallbacks;
    if (obs::Counter* c = obs::counter("io.generations_rejected")) c->add(1);
  }
  return std::nullopt;
}

ScrubReport CheckpointStore::scrub_dir(const std::filesystem::path& dir,
                                       const std::string& name) {
  ScrubReport rep;
  for (std::uint64_t gen : list_generations(dir)) {
    ++rep.generations_scanned;
    const auto gdir = generation_dir(dir, gen);
    try {
      auto m = read_manifest(gdir, name);
      if (!m) {
        ++rep.uncommitted;  // no marker: never claimed restorable
        continue;
      }
      const auto stripes = read_stripes(gdir, name, *m);
      for (const BlockReader& r : stripes) r.verify_all();
      ++rep.generations_ok;
    } catch (const IoError&) {
      ++rep.errors;
      rep.damaged.push_back(gen);
      if (obs::Counter* c = obs::counter("io.scrub_errors")) c->add(1);
    }
  }
  return rep;
}

ScrubReport CheckpointStore::scrub() {
  obs::ScopedPhase phase("io.scrub");
  // One authoritative scan on rank 0 (concurrent scans would race the
  // pruner), then broadcast so every rank agrees on the damage list.
  std::vector<std::uint64_t> wire;
  if (comm_.rank() == 0) {
    const ScrubReport rep = scrub_dir(cfg_.dir, cfg_.name);
    wire = {static_cast<std::uint64_t>(rep.generations_scanned),
            static_cast<std::uint64_t>(rep.generations_ok),
            static_cast<std::uint64_t>(rep.uncommitted),
            static_cast<std::uint64_t>(rep.errors)};
    wire.insert(wire.end(), rep.damaged.begin(), rep.damaged.end());
  }
  comm_.bcast(wire, 0);
  ScrubReport rep;
  rep.generations_scanned = static_cast<int>(wire[0]);
  rep.generations_ok = static_cast<int>(wire[1]);
  rep.uncommitted = static_cast<int>(wire[2]);
  rep.errors = static_cast<int>(wire[3]);
  rep.damaged.assign(wire.begin() + 4, wire.end());
  return rep;
}

// ---------------------------------------------------------------------------
// Interval analysis.
// ---------------------------------------------------------------------------

double optimal_checkpoint_interval(double checkpoint_cost, double mtbf) {
  if (checkpoint_cost <= 0.0 || mtbf <= 0.0) return 0.0;
  return std::sqrt(2.0 * checkpoint_cost * mtbf);
}

double checkpoint_overhead(double interval, double checkpoint_cost,
                           double mtbf) {
  if (interval <= 0.0 || mtbf <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return checkpoint_cost / interval + interval / (2.0 * mtbf);
}

}  // namespace ss::io
