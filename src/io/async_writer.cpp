#include "io/async_writer.hpp"

#include "io/blockfile.hpp"
#include "obs/obs.hpp"
#include "support/timer.hpp"

namespace ss::io {

AsyncWriter::AsyncWriter(std::size_t depth)
    : depth_(depth == 0 ? 1 : depth), thread_([this] { worker(); }) {}

AsyncWriter::~AsyncWriter() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Let pending writes finish (a checkpoint stripe mid-flight should
    // land even during teardown; whether it *commits* is the manifest's
    // decision, not ours).
    cv_submit_.wait(lock, [this] { return in_flight_ == 0; });
    stop_ = true;
  }
  cv_work_.notify_all();
  thread_.join();
}

void AsyncWriter::submit(std::filesystem::path path,
                         std::vector<std::byte> image) {
  support::WallTimer blocked;
  std::unique_lock<std::mutex> lock(mu_);
  cv_submit_.wait(lock, [this] { return in_flight_ < depth_; });
  stats_.blocked_seconds += blocked.seconds();
  ++stats_.files;
  ++in_flight_;
  queue_.push_back({std::move(path), std::move(image)});
  lock.unlock();
  cv_work_.notify_one();
}

void AsyncWriter::drain() {
  support::WallTimer blocked;
  std::unique_lock<std::mutex> lock(mu_);
  cv_submit_.wait(lock, [this] { return in_flight_ == 0; });
  stats_.blocked_seconds += blocked.seconds();
  if (!first_error_.empty()) {
    const std::string err = first_error_;
    first_error_.clear();
    throw IoError("async write failed: " + err);
  }
}

AsyncWriter::Stats AsyncWriter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AsyncWriter::publish_obs() {
  obs::Rank* rank = obs::tls();
  if (rank == nullptr) return;
  const Stats s = stats();
  auto& reg = rank->registry();
  // Counters are monotone: add the delta since the last publish.
  reg.counter("io.bytes_written").add(s.bytes - published_bytes_);
  reg.counter("io.files_written").add(s.files - published_files_);
  published_bytes_ = s.bytes;
  published_files_ = s.files;
  reg.gauge("io.write_mb_per_s").set(s.mb_per_s());
  reg.gauge("io.write_overlap_frac").set(s.overlap_frac());
}

void AsyncWriter::worker() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    support::WallTimer t;
    std::string error;
    try {
      write_file_atomic(job.path, job.image);
    } catch (const std::exception& e) {
      error = e.what();
    }
    const double secs = t.seconds();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.write_seconds += secs;
      if (error.empty()) {
        stats_.bytes += job.image.size();
      } else {
        ++stats_.write_errors;
        if (first_error_.empty()) first_error_ = std::move(error);
      }
      --in_flight_;
    }
    cv_submit_.notify_all();
  }
}

}  // namespace ss::io
