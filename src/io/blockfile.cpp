#include "io/blockfile.hpp"

#include <algorithm>
#include <cstring>

#include "io/crc32.hpp"
#include "obs/obs.hpp"

namespace ss::io {

namespace detail {

BlockDesc make_desc(std::string_view name, DType dtype,
                    std::uint32_t elem_size, std::uint64_t count,
                    std::uint64_t offset, std::uint32_t payload_crc) {
  if (name.empty() || name.size() >= kNameBytes) {
    throw FormatError("block name must be 1.." +
                      std::to_string(kNameBytes - 1) + " bytes: '" +
                      std::string(name) + "'");
  }
  if (elem_size == 0) {
    throw FormatError("block '" + std::string(name) +
                      "': element size must be positive");
  }
  BlockDesc d{};
  std::memcpy(d.name, name.data(), name.size());
  d.dtype = static_cast<std::uint32_t>(dtype);
  d.elem_size = elem_size;
  d.count = count;
  d.offset = offset;
  d.payload_bytes = count * elem_size;
  d.payload_crc = payload_crc;
  d.desc_crc = crc32(&d, offsetof(BlockDesc, desc_crc));
  return d;
}

}  // namespace detail

using detail::BlockDesc;
using detail::FileHeader;

namespace {

FileHeader make_header(std::uint64_t block_count, std::uint64_t index_offset,
                       std::uint64_t file_bytes) {
  FileHeader h{};
  std::memcpy(h.magic, detail::kMagic, sizeof(h.magic));
  h.version = kFormatVersion;
  h.endian = detail::kEndianTag;
  h.block_count = block_count;
  h.index_offset = index_offset;
  h.file_bytes = file_bytes;
  h.header_crc = crc32(&h, offsetof(FileHeader, header_crc));
  return h;
}

BlockInfo info_of(const BlockDesc& d) {
  BlockInfo b;
  const std::size_t len =
      ::strnlen(d.name, detail::kNameBytes);  // names are NUL-padded
  b.name.assign(d.name, len);
  b.dtype = static_cast<DType>(d.dtype);
  b.elem_size = d.elem_size;
  b.count = d.count;
  b.offset = d.offset;
  b.payload_bytes = d.payload_bytes;
  b.payload_crc = d.payload_crc;
  return b;
}

void check_unique(const std::vector<BlockDesc>& descs, std::string_view name) {
  for (const BlockDesc& d : descs) {
    if (::strnlen(d.name, detail::kNameBytes) == name.size() &&
        std::memcmp(d.name, name.data(), name.size()) == 0) {
      throw FormatError("duplicate block name '" + std::string(name) + "'");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// BlockBuilder.
// ---------------------------------------------------------------------------

BlockBuilder::BlockBuilder() {
  image_.resize(sizeof(FileHeader));  // placeholder; patched in finish()
}

void BlockBuilder::require_open(const char* op) const {
  if (finished_) {
    throw FormatError(std::string("BlockBuilder: ") + op +
                      " after finish()");
  }
}

void BlockBuilder::add(std::string_view name, DType dtype,
                       std::uint32_t elem_size, std::uint64_t count,
                       std::span<const std::byte> payload) {
  require_open("add()");
  check_unique(descs_, name);
  if (payload.size() != count * elem_size) {
    throw FormatError("block '" + std::string(name) +
                      "': payload size disagrees with count * elem_size");
  }
  const std::uint64_t offset = image_.size();
  image_.insert(image_.end(), payload.begin(), payload.end());
  descs_.push_back(detail::make_desc(name, dtype, elem_size, count, offset,
                                     crc32(payload)));
}

std::vector<std::byte> BlockBuilder::finish() {
  require_open("finish()");
  finished_ = true;
  const std::uint64_t index_offset = image_.size();
  const std::size_t index_bytes = descs_.size() * sizeof(BlockDesc);
  image_.resize(image_.size() + index_bytes);
  if (index_bytes > 0) {
    std::memcpy(image_.data() + index_offset, descs_.data(), index_bytes);
  }
  const FileHeader h = make_header(descs_.size(), index_offset, image_.size());
  std::memcpy(image_.data(), &h, sizeof(h));
  return std::move(image_);
}

// ---------------------------------------------------------------------------
// BlockFileWriter.
// ---------------------------------------------------------------------------

BlockFileWriter::BlockFileWriter(std::filesystem::path path)
    : path_(std::move(path)) {
  file_.open(path_, std::ios::binary | std::ios::trunc);
  if (!file_) {
    throw IoError("cannot open " + path_.string() + " for writing");
  }
  // Reserve the header slot; the real header lands in finish(). A reader
  // opening the file before then sees zeroed magic and rejects it.
  const FileHeader zero{};
  file_.write(reinterpret_cast<const char*>(&zero), sizeof(zero));
  cursor_ = sizeof(FileHeader);
}

void BlockFileWriter::begin_block(std::string_view name, DType dtype,
                                  std::uint32_t elem_size) {
  if (finished_) throw FormatError("BlockFileWriter: add after finish()");
  if (in_block_) throw FormatError("BlockFileWriter: nested begin_block()");
  check_unique(descs_, name);
  if (elem_size == 0) {
    throw FormatError("block '" + std::string(name) +
                      "': element size must be positive");
  }
  in_block_ = true;
  cur_name_.assign(name);
  cur_dtype_ = dtype;
  cur_elem_ = elem_size;
  cur_offset_ = cursor_;
  cur_bytes_ = 0;
  cur_crc_ = 0;
}

void BlockFileWriter::append_payload(std::span<const std::byte> bytes) {
  if (!in_block_) {
    throw FormatError("BlockFileWriter: append outside begin/end block");
  }
  file_.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  if (!file_) throw IoError("write failed on " + path_.string());
  cur_crc_ = crc32(bytes, cur_crc_);
  cur_bytes_ += bytes.size();
  cursor_ += bytes.size();
}

void BlockFileWriter::end_block() {
  if (!in_block_) throw FormatError("BlockFileWriter: end without begin");
  if (cur_bytes_ % cur_elem_ != 0) {
    throw FormatError("block '" + cur_name_ +
                      "': streamed bytes not a multiple of element size");
  }
  descs_.push_back(detail::make_desc(cur_name_, cur_dtype_, cur_elem_,
                                     cur_bytes_ / cur_elem_, cur_offset_,
                                     cur_crc_));
  infos_.push_back(info_of(descs_.back()));
  in_block_ = false;
}

void BlockFileWriter::add(std::string_view name, DType dtype,
                          std::uint32_t elem_size, std::uint64_t count,
                          std::span<const std::byte> payload) {
  if (payload.size() != count * elem_size) {
    throw FormatError("block '" + std::string(name) +
                      "': payload size disagrees with count * elem_size");
  }
  begin_block(name, dtype, elem_size);
  append_payload(payload);
  end_block();
}

void BlockFileWriter::finish() {
  if (finished_) return;
  if (in_block_) throw FormatError("BlockFileWriter: finish inside a block");
  finished_ = true;
  const std::uint64_t index_offset = cursor_;
  if (!descs_.empty()) {
    file_.write(reinterpret_cast<const char*>(descs_.data()),
                static_cast<std::streamsize>(descs_.size() *
                                             sizeof(BlockDesc)));
    cursor_ += descs_.size() * sizeof(BlockDesc);
  }
  const FileHeader h = make_header(descs_.size(), index_offset, cursor_);
  file_.seekp(0);
  file_.write(reinterpret_cast<const char*>(&h), sizeof(h));
  file_.flush();
  if (!file_) throw IoError("finalize failed on " + path_.string());
}

// ---------------------------------------------------------------------------
// write_file_atomic.
// ---------------------------------------------------------------------------

void write_file_atomic(const std::filesystem::path& path,
                       std::span<const std::byte> image) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw IoError("cannot open " + tmp.string() + " for writing");
    os.write(reinterpret_cast<const char*>(image.data()),
             static_cast<std::streamsize>(image.size()));
    os.flush();
    if (!os) throw IoError("write failed on " + tmp.string());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw IoError("rename " + tmp.string() + " -> " + path.string() +
                  " failed: " + ec.message());
  }
}

// ---------------------------------------------------------------------------
// BlockReader.
// ---------------------------------------------------------------------------

BlockReader::BlockReader(const std::filesystem::path& path)
    : origin_(path.string()) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw IoError("cannot open " + origin_);
  const std::streamoff size = is.tellg();
  is.seekg(0);
  image_.resize(static_cast<std::size_t>(size));
  if (size > 0) {
    is.read(reinterpret_cast<char*>(image_.data()), size);
  }
  if (!is) throw IoError("read failed on " + origin_);
  parse();
}

BlockReader::BlockReader(std::vector<std::byte> image, std::string origin)
    : origin_(std::move(origin)), image_(std::move(image)) {
  parse();
}

void BlockReader::parse() {
  if (image_.size() < sizeof(FileHeader)) {
    throw FormatError(origin_ + ": truncated (shorter than the header)");
  }
  FileHeader h;
  std::memcpy(&h, image_.data(), sizeof(h));
  if (std::memcmp(h.magic, detail::kMagic, sizeof(h.magic)) != 0) {
    throw FormatError(origin_ + ": bad magic (not a block file)");
  }
  if (h.version != kFormatVersion) {
    throw FormatError(origin_ + ": unsupported format version " +
                      std::to_string(h.version) + " (reader speaks " +
                      std::to_string(kFormatVersion) + ")");
  }
  if (h.endian != detail::kEndianTag) {
    throw FormatError(origin_ + ": foreign endianness");
  }
  if (h.header_crc != crc32(&h, offsetof(FileHeader, header_crc))) {
    throw CrcError(origin_ + ": header checksum mismatch");
  }
  if (h.file_bytes != image_.size()) {
    throw FormatError(origin_ + ": size mismatch (header says " +
                      std::to_string(h.file_bytes) + " bytes, file has " +
                      std::to_string(image_.size()) +
                      ") — truncated or trailing garbage");
  }
  const std::uint64_t index_bytes = h.block_count * sizeof(BlockDesc);
  if (h.index_offset > image_.size() ||
      index_bytes > image_.size() - h.index_offset) {
    throw FormatError(origin_ + ": index out of bounds");
  }
  blocks_.reserve(h.block_count);
  for (std::uint64_t i = 0; i < h.block_count; ++i) {
    BlockDesc d;
    std::memcpy(&d, image_.data() + h.index_offset + i * sizeof(BlockDesc),
                sizeof(d));
    if (d.desc_crc != crc32(&d, offsetof(BlockDesc, desc_crc))) {
      throw CrcError(origin_ + ": block descriptor " + std::to_string(i) +
                     " checksum mismatch");
    }
    if (d.elem_size == 0 || d.payload_bytes != d.count * d.elem_size) {
      throw FormatError(origin_ + ": block descriptor " + std::to_string(i) +
                        " inconsistent sizes");
    }
    if (d.offset > image_.size() ||
        d.payload_bytes > image_.size() - d.offset) {
      throw FormatError(origin_ + ": block descriptor " + std::to_string(i) +
                        " payload out of bounds");
    }
    blocks_.push_back(info_of(d));
  }
}

const BlockInfo* BlockReader::find(std::string_view name) const {
  for (const BlockInfo& b : blocks_) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

const BlockInfo& BlockReader::info(std::string_view name) const {
  if (const BlockInfo* b = find(name)) return *b;
  throw FormatError(origin_ + ": no block named '" + std::string(name) + "'");
}

void BlockReader::check_type(const BlockInfo& b, DType want,
                             std::uint32_t elem) const {
  if (b.elem_size != elem || (b.dtype != want && b.dtype != DType::raw &&
                              want != DType::raw)) {
    throw FormatError(origin_ + ": block '" + b.name +
                      "' type mismatch (stored dtype " +
                      std::to_string(static_cast<std::uint32_t>(b.dtype)) +
                      " elem " + std::to_string(b.elem_size) +
                      ", requested dtype " +
                      std::to_string(static_cast<std::uint32_t>(want)) +
                      " elem " + std::to_string(elem) + ")");
  }
}

std::span<const std::byte> BlockReader::payload_checked(
    const BlockInfo& b) const {
  const std::span<const std::byte> payload(image_.data() + b.offset,
                                           b.payload_bytes);
  if (crc32(payload) != b.payload_crc) {
    if (obs::Counter* c = obs::counter("io.crc_failures")) c->add(1);
    throw CrcError(origin_ + ": block '" + b.name +
                   "' payload checksum mismatch (corrupt data)");
  }
  return payload;
}

std::uint64_t BlockReader::read_u64(std::string_view name) const {
  const auto v = read<std::uint64_t>(name);
  if (v.size() != 1) {
    throw FormatError(origin_ + ": block '" + std::string(name) +
                      "' is not a scalar");
  }
  return v[0];
}

double BlockReader::read_f64(std::string_view name) const {
  const auto v = read<double>(name);
  if (v.size() != 1) {
    throw FormatError(origin_ + ": block '" + std::string(name) +
                      "' is not a scalar");
  }
  return v[0];
}

void BlockReader::verify_all() const {
  for (const BlockInfo& b : blocks_) (void)payload_checked(b);
}

}  // namespace ss::io
