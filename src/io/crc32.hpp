// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the per-block
// integrity check of the snapshot format. Table-driven, processing one
// byte per step; at snapshot sizes the cost is dwarfed by the file write.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ss::io {

/// CRC of `data`, continuing from `crc` (pass 0 to start). Chainable:
/// crc32(b, crc32(a)) == crc32(ab).
std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t crc = 0);

/// Convenience for raw buffers.
std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t crc = 0);

}  // namespace ss::io
