#include "io/postmortem.hpp"

#include <cstdio>
#include <sstream>

#include "io/blockfile.hpp"

namespace ss::io {

namespace {

std::string rank_block_name(int rank) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "r%04d.flight", rank);
  return buf;
}

void add_text(BlockBuilder& b, std::string_view name, std::string_view text) {
  b.add(name, DType::u8, 1, text.size(),
        {reinterpret_cast<const std::byte*>(text.data()), text.size()});
}

std::string read_text(const BlockReader& r, std::string_view name) {
  if (!r.has(name)) return {};
  const BlockInfo& b = r.info(name);
  const auto bytes = r.payload_checked(b);
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

}  // namespace

void write_postmortem(const std::filesystem::path& path,
                      const obs::Session* session,
                      const PostmortemInfo& info) {
  BlockBuilder b;
  add_text(b, "reason", info.reason);
  add_text(b, "detail", info.detail);
  const int nranks = session != nullptr ? session->size() : 0;
  b.add_scalar("ranks", static_cast<std::uint64_t>(nranks));

  if (session != nullptr) {
    std::ostringstream counters;
    for (int r = 0; r < nranks; ++r) {
      for (const auto& [name, c] : session->rank(r).registry().counters()) {
        counters << r << " " << name << " " << c.value() << "\n";
      }
    }
    const std::string text = counters.str();
    add_text(b, "counters", text);

    for (int r = 0; r < nranks; ++r) {
      const std::vector<obs::FlightEvent> ring =
          session->rank(r).flight_recorder().snapshot();
      b.add<obs::FlightEvent>(rank_block_name(r),
                              {ring.data(), ring.size()});
    }
  }

  write_file_atomic(path, b.finish());
}

Postmortem read_postmortem(const std::filesystem::path& path) {
  BlockReader r(path);
  Postmortem out;
  out.reason = read_text(r, "reason");
  out.detail = read_text(r, "detail");
  out.ranks = static_cast<int>(r.read_u64("ranks"));
  out.counters = read_text(r, "counters");
  out.flight.resize(static_cast<std::size_t>(out.ranks));
  for (int rank = 0; rank < out.ranks; ++rank) {
    out.flight[static_cast<std::size_t>(rank)] =
        r.read<obs::FlightEvent>(rank_block_name(rank));
  }
  return out;
}

}  // namespace ss::io
