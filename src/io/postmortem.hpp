// Postmortem files: what the simulator was doing when a watchdog fired.
//
// When a drain/settle watchdog stalls or the fault injector kills a rank,
// the supervisor (or the engine itself) snapshots every rank's obs
// FlightRecorder — the bounded ring of recent sends/recvs/retransmits/
// parks — into one SSBLOCK1-framed file next to the failure text. The
// file reuses the snapshot container, so the same readers, CRC checks and
// tooling validate it: "it hung" becomes "here are the last 10k events on
// every rank".
//
// Layout (block names):
//   reason        u8 text: one-line cause ("drain watchdog: walk loop")
//   detail        u8 text: free-form payload (transport flow dump, ...)
//   ranks         u64 scalar: rank count (0 when no session was attached)
//   counters      u8 text: "rank name value" per line, all ranks
//   r%04d.flight  raw FlightEvent[] ring snapshot of rank %d
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace ss::io {

struct PostmortemInfo {
  std::string reason;  ///< One-line cause; required.
  std::string detail;  ///< Free text (e.g. the transport's per-flow dump).
};

/// Write a postmortem atomically (temp + rename, like snapshots).
/// `session` may be null — the file then carries only reason/detail,
/// which still validates and parses.
void write_postmortem(const std::filesystem::path& path,
                      const obs::Session* session, const PostmortemInfo& info);

/// Parsed postmortem (every payload CRC-verified on read).
struct Postmortem {
  std::string reason;
  std::string detail;
  int ranks = 0;
  std::vector<std::vector<obs::FlightEvent>> flight;  ///< Per rank.
  std::string counters;  ///< "rank name value" lines.
};

/// Load + validate a postmortem. Throws FormatError / CrcError like every
/// block-file reader.
Postmortem read_postmortem(const std::filesystem::path& path);

}  // namespace ss::io
