// Striped parallel snapshots: one block-file stripe per rank plus a
// rank-0 manifest that doubles as the commit marker.
//
// Layout of one snapshot named NAME in directory DIR:
//
//   DIR/NAME.r0000.ssb     rank 0's stripe (blockfile.hpp format)
//   DIR/NAME.r0001.ssb     rank 1's stripe
//   ...
//   DIR/NAME.manifest.ssb  rank count, step, time, per-rank element
//                          counts and stripe byte sizes
//
// Commit protocol: stripes first, barrier, manifest last. A snapshot
// without a valid manifest does not exist (a crash mid-write leaves
// stripes that no reader will ever trust); a snapshot whose manifest
// disagrees with its stripes is damaged and read_stripes() says so with
// a typed error, which is what the checkpoint generation fallback keys
// off.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "io/async_writer.hpp"
#include "io/blockfile.hpp"
#include "vmpi/comm.hpp"

namespace ss::io {

inline constexpr std::uint32_t kManifestVersion = 1;

/// Parsed manifest of one committed snapshot.
struct Manifest {
  std::uint32_t version = kManifestVersion;
  int nranks = 0;
  std::uint64_t step = 0;
  double time = 0.0;
  std::vector<std::uint64_t> counts;        ///< Elements per stripe.
  std::vector<std::uint64_t> stripe_bytes;  ///< File bytes per stripe.
  std::uint64_t total_count() const;
  std::uint64_t total_bytes() const;  ///< Stripes only (manifest excluded).
};

std::filesystem::path stripe_path(const std::filesystem::path& dir,
                                  const std::string& name, int rank);
std::filesystem::path manifest_path(const std::filesystem::path& dir,
                                    const std::string& name);

struct SnapshotWriteStats {
  std::uint64_t bytes = 0;      ///< This rank's stripe bytes.
  double serialize_seconds = 0.0;
  double write_seconds = 0.0;   ///< 0 on the async path (deferred).
};

/// Collective snapshot write. Every rank serializes its stripe through
/// `fill` (which must add this rank's blocks to the builder); `count` is
/// the rank's element count recorded in the manifest (for slicing on
/// restore). With `async` null the stripe is written synchronously and
/// the manifest commits before returning; with an AsyncWriter the stripe
/// is submitted and the manifest is NOT written — the caller commits
/// later via commit_snapshot() once every rank's writer has drained.
SnapshotWriteStats write_snapshot(
    ss::vmpi::Comm& comm, const std::filesystem::path& dir,
    const std::string& name, std::uint64_t step, double time,
    std::uint64_t count, const std::function<void(BlockBuilder&)>& fill,
    AsyncWriter* async = nullptr);

/// Collective: commit a snapshot whose stripes are already durable
/// (async path). Gathers per-rank stripe sizes, barriers, rank 0 writes
/// the manifest. Callers must drain their AsyncWriter first.
void commit_snapshot(ss::vmpi::Comm& comm, const std::filesystem::path& dir,
                     const std::string& name, std::uint64_t step, double time,
                     std::uint64_t count, std::uint64_t stripe_bytes);

/// Read + validate a manifest. Throws FormatError / CrcError; returns
/// nullopt only when the manifest file does not exist (uncommitted).
std::optional<Manifest> read_manifest(const std::filesystem::path& dir,
                                      const std::string& name);

/// Open every stripe of a committed snapshot, cross-checking stripe
/// count and per-stripe sizes against the manifest. Full payload CRC
/// verification is the caller's choice (BlockReader::verify_all).
std::vector<BlockReader> read_stripes(const std::filesystem::path& dir,
                                      const std::string& name,
                                      const Manifest& m);

/// True when the snapshot is committed and every stripe (structure and
/// all payload CRCs) verifies. Never throws — this is the probe the
/// fallback scan uses.
bool snapshot_valid(const std::filesystem::path& dir,
                    const std::string& name) noexcept;

}  // namespace ss::io
