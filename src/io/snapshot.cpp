#include "io/snapshot.hpp"

#include <cstdio>
#include <numeric>

#include "obs/obs.hpp"
#include "support/timer.hpp"

namespace ss::io {

std::uint64_t Manifest::total_count() const {
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

std::uint64_t Manifest::total_bytes() const {
  return std::accumulate(stripe_bytes.begin(), stripe_bytes.end(),
                         std::uint64_t{0});
}

std::filesystem::path stripe_path(const std::filesystem::path& dir,
                                  const std::string& name, int rank) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), ".r%04d.ssb", rank);
  return dir / (name + buf);
}

std::filesystem::path manifest_path(const std::filesystem::path& dir,
                                    const std::string& name) {
  return dir / (name + ".manifest.ssb");
}

namespace {

void write_manifest(const std::filesystem::path& dir, const std::string& name,
                    std::uint64_t step, double time,
                    const std::vector<std::uint64_t>& counts,
                    const std::vector<std::uint64_t>& stripe_bytes) {
  BlockBuilder b;
  b.add_scalar("manifest_version", std::uint64_t{kManifestVersion});
  b.add_scalar("nranks", static_cast<std::uint64_t>(counts.size()));
  b.add_scalar("step", step);
  b.add_scalar("time", time);
  b.add<std::uint64_t>("counts", counts);
  b.add<std::uint64_t>("stripe_bytes", stripe_bytes);
  write_file_atomic(manifest_path(dir, name), b.finish());
}

}  // namespace

SnapshotWriteStats write_snapshot(
    ss::vmpi::Comm& comm, const std::filesystem::path& dir,
    const std::string& name, std::uint64_t step, double time,
    std::uint64_t count, const std::function<void(BlockBuilder&)>& fill,
    AsyncWriter* async) {
  obs::ScopedPhase phase("io.snapshot");
  std::filesystem::create_directories(dir);
  SnapshotWriteStats out;

  support::WallTimer serialize;
  BlockBuilder builder;
  fill(builder);
  std::vector<std::byte> image = builder.finish();
  out.bytes = image.size();
  out.serialize_seconds = serialize.seconds();

  const auto path = stripe_path(dir, name, comm.rank());
  if (async != nullptr) {
    async->submit(path, std::move(image));
    // Manifest deferred: the caller commits once writers have drained.
    return out;
  }

  support::WallTimer write;
  write_file_atomic(path, image);
  out.write_seconds = write.seconds();
  if (obs::Counter* c = obs::counter("io.bytes_written")) c->add(out.bytes);
  if (obs::Counter* c = obs::counter("io.files_written")) c->add(1);
  commit_snapshot(comm, dir, name, step, time, count, out.bytes);
  return out;
}

void commit_snapshot(ss::vmpi::Comm& comm, const std::filesystem::path& dir,
                     const std::string& name, std::uint64_t step, double time,
                     std::uint64_t count, std::uint64_t stripe_bytes) {
  obs::ScopedPhase phase("io.commit");
  const auto counts = comm.gather<std::uint64_t>(
      std::span<const std::uint64_t>(&count, 1), 0);
  const auto sizes = comm.gather<std::uint64_t>(
      std::span<const std::uint64_t>(&stripe_bytes, 1), 0);
  // Every stripe durable before the marker exists: the gather above has
  // already synchronized rank 0 with everyone, and stripes were written
  // (or drained) before this call on each rank.
  if (comm.rank() == 0) {
    write_manifest(dir, name, step, time, counts, sizes);
  }
  comm.barrier();  // no rank proceeds believing an uncommitted snapshot
}

std::optional<Manifest> read_manifest(const std::filesystem::path& dir,
                                      const std::string& name) {
  const auto path = manifest_path(dir, name);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return std::nullopt;
  BlockReader r(path);
  Manifest m;
  m.version = static_cast<std::uint32_t>(r.read_u64("manifest_version"));
  if (m.version != kManifestVersion) {
    throw FormatError(path.string() + ": unsupported manifest version " +
                      std::to_string(m.version));
  }
  m.nranks = static_cast<int>(r.read_u64("nranks"));
  m.step = r.read_u64("step");
  m.time = r.read_f64("time");
  m.counts = r.read<std::uint64_t>("counts");
  m.stripe_bytes = r.read<std::uint64_t>("stripe_bytes");
  if (m.nranks <= 0 ||
      m.counts.size() != static_cast<std::size_t>(m.nranks) ||
      m.stripe_bytes.size() != static_cast<std::size_t>(m.nranks)) {
    throw FormatError(path.string() + ": manifest rank tables inconsistent");
  }
  return m;
}

std::vector<BlockReader> read_stripes(const std::filesystem::path& dir,
                                      const std::string& name,
                                      const Manifest& m) {
  std::vector<BlockReader> out;
  out.reserve(static_cast<std::size_t>(m.nranks));
  for (int r = 0; r < m.nranks; ++r) {
    const auto path = stripe_path(dir, name, r);
    out.emplace_back(path);
    if (out.back().file_bytes() != m.stripe_bytes[static_cast<std::size_t>(r)]) {
      throw FormatError(path.string() +
                        ": stripe size disagrees with the manifest");
    }
  }
  return out;
}

bool snapshot_valid(const std::filesystem::path& dir,
                    const std::string& name) noexcept {
  try {
    const auto m = read_manifest(dir, name);
    if (!m) return false;
    for (BlockReader& r : read_stripes(dir, name, *m)) r.verify_all();
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace ss::io
