// Double-buffered asynchronous snapshot writer.
//
// The paper's production run wrote 1.5 TB at 417 MB/s *in parallel to
// local disks* while the treecode kept computing — output must not stall
// the pipeline. The pattern here: the rank thread serializes step N's
// snapshot into a memory image (BlockBuilder) and submits it; a
// background thread ships the image to disk while the rank computes step
// N+1. The queue is bounded (default depth 2 = classic double buffer):
// submit() blocks only when serialization outruns the disk, and the time
// it spends blocked is measured — overlap_frac() is the subsystem's
// honesty metric (1.0 = the disk was fully hidden behind compute).
//
// Threading: one owner thread calls submit()/drain(); the worker never
// touches obs (recorders are rank-thread-bound) — the owner publishes
// stats through publish_obs() instead.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

namespace ss::io {

class AsyncWriter {
 public:
  struct Stats {
    std::uint64_t files = 0;          ///< Images handed to the worker.
    std::uint64_t bytes = 0;          ///< Payload bytes written to disk.
    double write_seconds = 0.0;       ///< Worker wall time spent writing.
    double blocked_seconds = 0.0;     ///< Owner wall time stalled on I/O.
    std::uint64_t write_errors = 0;   ///< Failed background writes.

    /// Fraction of write time hidden behind the owner's compute.
    double overlap_frac() const {
      if (write_seconds <= 0.0) return 0.0;
      const double f = 1.0 - blocked_seconds / write_seconds;
      return f < 0.0 ? 0.0 : f;
    }
    double mb_per_s() const {
      return write_seconds > 0.0
                 ? static_cast<double>(bytes) / 1e6 / write_seconds
                 : 0.0;
    }
  };

  /// `depth` = maximum images in flight before submit() blocks.
  explicit AsyncWriter(std::size_t depth = 2);
  ~AsyncWriter();  ///< Drains pending writes, then joins the worker.

  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Queue a complete file image for a durable (tmp + rename) write to
  /// `path`. Blocks while `depth` images are already in flight; the
  /// blocked time is charged to Stats::blocked_seconds.
  void submit(std::filesystem::path path, std::vector<std::byte> image);

  /// Block until every submitted image is on disk. Throws IoError if any
  /// background write failed since the last drain (the checkpoint layer
  /// must not commit a manifest over a failed stripe).
  void drain();

  /// Snapshot of the counters (owner thread; drained state is exact,
  /// in-flight writes are still accumulating).
  Stats stats() const;

  /// Publish stats to the calling thread's obs registry (no-op when
  /// tracing is off): io.bytes_written / io.files_written counters are
  /// leveled to the totals, io.write_mb_per_s and io.write_overlap_frac
  /// gauges are set.
  void publish_obs();

 private:
  struct Job {
    std::filesystem::path path;
    std::vector<std::byte> image;
  };

  void worker();

  const std::size_t depth_;
  mutable std::mutex mu_;
  std::condition_variable cv_submit_;  ///< Signaled when a slot frees up.
  std::condition_variable cv_work_;    ///< Signaled when work arrives.
  std::deque<Job> queue_;
  std::size_t in_flight_ = 0;  ///< Queued + currently being written.
  bool stop_ = false;
  std::string first_error_;
  Stats stats_;
  std::uint64_t published_bytes_ = 0;  // obs leveling (counters are monotone)
  std::uint64_t published_files_ = 0;
  std::thread thread_;
};

}  // namespace ss::io
