#include "io/crc32.hpp"

#include <array>

namespace ss::io {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t crc) {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::byte b : data) {
    c = kTable[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t crc) {
  return crc32(
      std::span<const std::byte>(static_cast<const std::byte*>(data), bytes),
      crc);
}

}  // namespace ss::io
