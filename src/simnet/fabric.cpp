#include "simnet/fabric.hpp"

#include <algorithm>

#include "support/units.hpp"

namespace ss::simnet {

namespace u = support::units;

Fabric::Fabric(Topology topo, LibraryProfile profile)
    : topo_(std::move(topo)),
      profile_(std::move(profile)),
      buckets_(topo_.resource_slots()) {}

double Fabric::arrival(int src, int dst, std::size_t bytes, double depart) {
  // Self-sends cost only the software overhead (a memcpy in practice).
  if (src == dst) {
    return depart + profile_.per_message_s;
  }

  const double bits = static_cast<double>(bytes) * u::bits_per_byte;
  double t = depart + profile_.latency_s + profile_.per_message_s +
             static_cast<double>(bytes) * profile_.per_byte_extra_s;
  if (profile_.rendezvous_threshold != 0 &&
      bytes >= profile_.rendezvous_threshold) {
    t += 2.0 * profile_.latency_s;
  }

  // Cut-through leaky-bucket approximation: every resource on the path is
  // a drain of fixed capacity holding a backlog of queued bits. At the
  // message's ready time the backlog accrued so far is drained at capacity
  // rate, the message's bits join the queue, and the message clears the
  // resource when the queue (including itself) drains. Uncontended
  // transfers therefore see exactly their serialization time, concurrent
  // bursts share each tier's capacity, and — unlike an absolute next-free
  // reservation — a message stamped far in the virtual future cannot
  // head-of-line-block messages that are later in send order but earlier
  // in virtual time (rank clocks legitimately drift in vmpi runs).
  const double ready = t;
  double done = ready;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Resource& r : topo_.path(src, dst)) {
    const std::size_t s = topo_.resource_slot(r);
    const double capacity = topo_.capacity_bps(r);
    Bucket& b = buckets_[s];
    if (ready > b.last_time) {
      b.backlog_bits = std::max(
          0.0, b.backlog_bits - (ready - b.last_time) * capacity);
      b.last_time = ready;
    }
    b.backlog_bits += bits;
    done = std::max(done, ready + b.backlog_bits / capacity);
  }
  return done;
}

void Fabric::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), Bucket{});
}

}  // namespace ss::simnet
