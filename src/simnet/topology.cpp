#include "simnet/topology.hpp"

#include <stdexcept>

namespace ss::simnet {

Topology::Topology(TopologyConfig cfg) : cfg_(cfg) {
  if (cfg_.nodes <= 0 || cfg_.ports_per_module <= 0) {
    throw std::invalid_argument("Topology: nodes and ports must be positive");
  }
  if (cfg_.chassis0_ports % cfg_.ports_per_module != 0) {
    throw std::invalid_argument(
        "Topology: chassis0_ports must be a whole number of modules");
  }
  modules_ = (cfg_.nodes + cfg_.ports_per_module - 1) / cfg_.ports_per_module;
  chassis0_modules_ = cfg_.chassis0_ports / cfg_.ports_per_module;
}

int Topology::module_of(int node) const { return node / cfg_.ports_per_module; }

int Topology::chassis_of(int node) const {
  return node < cfg_.chassis0_ports ? 0 : 1;
}

std::vector<Resource> Topology::path(int src, int dst) const {
  std::vector<Resource> out;
  out.push_back({Resource::Kind::node_tx, src});
  const int ms = module_of(src), md = module_of(dst);
  if (ms != md) {
    out.push_back({Resource::Kind::module_up, ms});
    if (chassis_of(src) != chassis_of(dst)) {
      out.push_back({Resource::Kind::trunk, 0});
    }
    out.push_back({Resource::Kind::module_down, md});
  }
  out.push_back({Resource::Kind::node_rx, dst});
  return out;
}

double Topology::capacity_bps(const Resource& r) const {
  switch (r.kind) {
    case Resource::Kind::node_tx:
    case Resource::Kind::node_rx:
      return cfg_.port_bps;
    case Resource::Kind::module_up:
    case Resource::Kind::module_down:
      return cfg_.module_bps;
    case Resource::Kind::trunk:
      return cfg_.trunk_bps;
  }
  return 0.0;
}

std::size_t Topology::resource_slot(const Resource& r) const {
  const auto n = static_cast<std::size_t>(cfg_.nodes);
  const auto m = static_cast<std::size_t>(modules_);
  switch (r.kind) {
    case Resource::Kind::node_tx:
      return static_cast<std::size_t>(r.index);
    case Resource::Kind::node_rx:
      return n + static_cast<std::size_t>(r.index);
    case Resource::Kind::module_up:
      return 2 * n + static_cast<std::size_t>(r.index);
    case Resource::Kind::module_down:
      return 2 * n + m + static_cast<std::size_t>(r.index);
    case Resource::Kind::trunk:
      return 2 * n + 2 * m;
  }
  return 0;
}

std::size_t Topology::resource_slots() const {
  return 2 * static_cast<std::size_t>(cfg_.nodes) +
         2 * static_cast<std::size_t>(modules_) + 1;
}

Topology space_simulator_topology() { return Topology{TopologyConfig{}}; }

}  // namespace ss::simnet
