// Max-min fair bandwidth allocation over the switch topology.
//
// Given a set of simultaneous flows (src, dst), each flow's sustained rate
// is determined by progressive filling: the most-congested resource (the
// one whose capacity divided by its unfrozen flow count is smallest)
// saturates first and freezes its flows at that fair share; the process
// repeats on the residual network. This reproduces the switch behaviour
// measured in Sec 3.1: sixteen concurrent streams from one module to
// another share the ~6 Gbit/s module uplink, and any number of streams
// crossing the chassis boundary share the trunk.
#pragma once

#include <vector>

#include "simnet/topology.hpp"

namespace ss::simnet {

struct Flow {
  int src = 0;
  int dst = 0;
};

struct FairShareResult {
  /// Sustained payload rate of each flow, bit/s, in input order.
  std::vector<double> rate_bps;
  double total_bps = 0.0;
  double min_bps = 0.0;
  double max_bps = 0.0;
};

FairShareResult fair_share(const Topology& topo, const std::vector<Flow>& flows);

/// The hypercube-edge test of Sec 3.1: pair every node i with node
/// i XOR 2^dim and run one flow per ordered pair (both directions), over
/// the first `nodes` nodes. Returns the flow set (pairs where the partner
/// is out of range are skipped).
std::vector<Flow> hypercube_pairs(int nodes, int dim);

}  // namespace ss::simnet
