// Dynamic fabric model: converts individual message transmissions into
// virtual-time arrival stamps, accounting for contention on shared
// resources (ports, module backplanes, the inter-chassis trunk).
//
// Each shared resource is modeled as a leaky bucket of fixed payload
// capacity: queued bits drain at the capacity rate, a message's bits join
// the queue at its ready time, and the message arrives when the most
// backlogged resource on its path drains past it (a cut-through
// approximation). This yields the correct *aggregate* ceiling for each
// tier (the phenomenon the paper measures in Sec 3.1) while remaining
// cheap enough to stamp every message of a virtual-MPI run, and it is
// robust to the out-of-virtual-time send order that per-rank clocks
// produce.
//
// The software cost of the MPI library itself (latency, per-message
// overhead, eager/rendezvous switch) comes from the LibraryProfile.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "simnet/profile.hpp"
#include "simnet/topology.hpp"

namespace ss::simnet {

class Fabric {
 public:
  Fabric(Topology topo, LibraryProfile profile);

  /// Compute the arrival time of a message sent at `depart` (virtual
  /// seconds) from node src to node dst, updating the contention ledger.
  /// Thread-safe.
  double arrival(int src, int dst, std::size_t bytes, double depart);

  /// Pure cost of an uncontended transfer (no ledger update).
  double uncontended_seconds(std::size_t bytes) const {
    return profile_.transfer_seconds(bytes);
  }

  const Topology& topology() const { return topo_; }
  const LibraryProfile& profile() const { return profile_; }

  /// Forget all recorded contention (e.g. between benchmark phases).
  void reset();

 private:
  struct Bucket {
    double backlog_bits = 0.0;
    double last_time = 0.0;
  };

  Topology topo_;
  LibraryProfile profile_;
  std::mutex mu_;
  std::vector<Bucket> buckets_;  ///< Per-resource queued-bits ledger.
};

}  // namespace ss::simnet
