// Topology of the Space Simulator's Gigabit Ethernet fabric.
//
// The cluster's 294 nodes connect to two trunked Foundry switches:
// a FastIron 1500 carrying 224 ports (fourteen 16-port modules) and a
// FastIron 800 carrying the remaining 70 (five modules, partially filled).
// Within a module messages are non-blocking; the capacity from one module
// to another is 8 Gbit/s of raw backplane (about 6 Gbit/s of delivered TCP
// payload, per the paper's 16x16 measurement), and the two chassis are
// joined by a fiber trunk with the same 8 Gbit/s raw capacity. These three
// capacity tiers — port, module uplink, trunk — are the shared resources
// of the fair-share and fabric models.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ss::simnet {

/// Identifier of a shared capacity resource inside the fabric.
struct Resource {
  enum class Kind { node_tx, node_rx, module_up, module_down, trunk };
  Kind kind;
  int index = 0;  ///< node id, global module id, or 0 for the trunk

  friend bool operator==(const Resource&, const Resource&) = default;
};

struct TopologyConfig {
  int nodes = 294;
  int ports_per_module = 16;
  /// Ports on the first chassis (FastIron 1500); the rest are on the
  /// second chassis (FastIron 800).
  int chassis0_ports = 224;
  /// Delivered payload capacity of one port (TCP-level ceiling).
  double port_bps = 779e6;
  /// Delivered payload capacity of a module's backplane connection.
  /// 8 Gbit/s raw; the paper measures ~6000 Mbit/s of payload for 16
  /// concurrent cross-module streams.
  double module_bps = 6.2e9;
  /// Delivered payload capacity of the inter-chassis trunk (8 Gbit/s raw).
  double trunk_bps = 6.2e9;
};

class Topology {
 public:
  explicit Topology(TopologyConfig cfg = {});

  int nodes() const { return cfg_.nodes; }
  int modules() const { return modules_; }
  const TopologyConfig& config() const { return cfg_; }

  int module_of(int node) const;
  int chassis_of(int node) const;

  /// Ordered list of shared resources a single message from src to dst
  /// traverses. Same-module traffic touches only the two ports; crossing a
  /// module boundary adds both modules' backplane connections; crossing
  /// the chassis boundary additionally adds the trunk.
  std::vector<Resource> path(int src, int dst) const;

  double capacity_bps(const Resource& r) const;

  /// Stable dense index for a resource (for ledger arrays).
  std::size_t resource_slot(const Resource& r) const;
  std::size_t resource_slots() const;

 private:
  TopologyConfig cfg_;
  int modules_ = 0;
  int chassis0_modules_ = 0;
};

/// The Space Simulator fabric as built (294 nodes).
Topology space_simulator_topology();

}  // namespace ss::simnet
