#include "simnet/profile.hpp"

#include <array>
#include <cmath>

#include "support/units.hpp"

namespace ss::simnet {

namespace u = support::units;

double LibraryProfile::transfer_seconds(std::size_t bytes) const {
  double t = latency_s + per_message_s +
             static_cast<double>(bytes) *
                 (u::bits_per_byte / bandwidth_bps + per_byte_extra_s);
  if (rendezvous_threshold != 0 && bytes >= rendezvous_threshold) {
    // Rendezvous handshake: one additional round trip of control traffic.
    t += 2.0 * latency_s;
  }
  return t;
}

double LibraryProfile::netpipe_mbits(std::size_t bytes) const {
  return static_cast<double>(bytes) * u::bits_per_byte /
         transfer_seconds(bytes) / u::Mbit;
}

namespace {

// Calibration targets from the paper (Sec 3.1 / Fig 2):
//   latency: TCP 79 us, LAM 83 us, mpich-1.2.5 and mpich2-0.92 87 us;
//   large-message plateau: TCP 779 Mbit/s; mpich2 and LAM -O close behind;
//   mpich-1.2.5 visibly lower for large messages (extra buffer copy);
//   LAM without -O pays a per-byte heterogeneity check.
const std::array<LibraryProfile, 5> kProfiles = {{
    {"tcp", 79e-6, 0.0, 779 * u::Mbit, 0.0, 0},
    {"lam-6.5.9 -O", 83e-6, 1.5e-6, 762 * u::Mbit, 0.0, 65536},
    // Plain LAM's heterogeneity handling costs ~1.3 ns/byte -> ~680 Mbit/s.
    {"lam-6.5.9", 83e-6, 1.5e-6, 762 * u::Mbit, 1.3e-9, 65536},
    {"mpich2-0.92", 87e-6, 2.0e-6, 748 * u::Mbit, 0.0, 131072},
    // mpich-1.2.5's extra large-message copy costs ~3.6 ns/byte -> ~560
    // Mbit/s plateau, the visible Fig 2 gap that mpich2 closed.
    {"mpich-1.2.5", 87e-6, 2.0e-6, 748 * u::Mbit, 3.6e-9, 131072},
}};

}  // namespace

const LibraryProfile& tcp() { return kProfiles[0]; }
const LibraryProfile& lam_homogeneous() { return kProfiles[1]; }
const LibraryProfile& lam() { return kProfiles[2]; }
const LibraryProfile& mpich2_092() { return kProfiles[3]; }
const LibraryProfile& mpich_125() { return kProfiles[4]; }

std::span<const LibraryProfile> all_profiles() { return kProfiles; }

namespace {
const LinkQuality kGigeHealthy{0.0, 1e-12};
const LinkQuality kGigeFlaky{1e-3, 1e-8};
}  // namespace

const LinkQuality& gige_healthy() { return kGigeHealthy; }
const LinkQuality& gige_flaky() { return kGigeFlaky; }

double frame_corrupt_probability(std::size_t bytes, double bit_error_rate) {
  if (bit_error_rate <= 0.0 || bytes == 0) return 0.0;
  // 1 - (1-p)^n via expm1/log1p so tiny BERs don't underflow to zero.
  const double n = 8.0 * static_cast<double>(bytes);
  return -std::expm1(n * std::log1p(-bit_error_rate));
}

}  // namespace ss::simnet
