// Message-passing library performance profiles (paper Fig 2).
//
// The paper measures NetPIPE bandwidth-vs-message-size curves on the
// Space Simulator's 3c996B-T gigabit NICs for plain TCP and four MPI
// libraries. Each curve is characterized by a small-message latency, a
// per-message software overhead, a large-message bandwidth plateau, and —
// for mpich-1.2.5 — an extra per-byte copy cost that depresses the
// large-message plateau (the defect fixed by mpich2, visible in Fig 2).
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace ss::simnet {

struct LibraryProfile {
  std::string name;
  double latency_s = 0.0;        ///< One-way small-message latency (s).
  double per_message_s = 0.0;    ///< Extra software cost per message (s).
  double bandwidth_bps = 0.0;    ///< Large-message payload plateau (bit/s).
  double per_byte_extra_s = 0.0; ///< Extra cost per byte (memory copies).
  /// Message size at which the library switches from eager to rendezvous
  /// protocol, paying one extra round trip. 0 disables.
  std::size_t rendezvous_threshold = 0;

  /// One-way transfer time of a `bytes`-byte message.
  double transfer_seconds(std::size_t bytes) const;

  /// NetPIPE-style throughput for a message size: payload bits divided by
  /// the one-way transfer time (NetPIPE reports half the round trip).
  double netpipe_mbits(std::size_t bytes) const;
};

/// The five curves of Fig 2, calibrated to the paper's quoted numbers:
/// TCP peaks at 779 Mbit/s with 79 us latency; LAM at 83 us; mpich-1.2.5
/// and mpich2-0.92 at 87 us; mpich-1.2.5 loses ~25% of bandwidth on large
/// messages; "LAM -O" (homogeneous mode) removes LAM's datatype-conversion
/// per-byte cost.
const LibraryProfile& tcp();
const LibraryProfile& lam();
const LibraryProfile& lam_homogeneous();
const LibraryProfile& mpich_125();
const LibraryProfile& mpich2_092();

/// All profiles in presentation order for the Fig 2 sweep.
std::span<const LibraryProfile> all_profiles();

// ---------------------------------------------------------------------------
// Physical link quality (Sec 2.1).
// ---------------------------------------------------------------------------

/// Reliability figures for one physical link, below the level the MPI
/// library sees. A healthy gigabit copper run has a spec-floor bit error
/// rate of ~1e-12 and essentially no frame loss; the flaky cables and
/// dying 3c996B NICs of Sec 2.1 push both figures up by orders of
/// magnitude. These feed the vmpi LinkFaultModel (fault rates derive
/// from frame size x BER), tying the injected faults to hardware reality
/// the same way hw::cluster_mtbf_hours ties rank kills to node MTBF.
struct LinkQuality {
  double frame_loss_rate = 0.0;  ///< P(frame silently lost in transit).
  double bit_error_rate = 0.0;   ///< Per-bit corruption probability.
};

/// 1000BASE-T at spec: BER 1e-12, no measurable frame loss.
const LinkQuality& gige_healthy();
/// A Sec 2.1 "flaky link": marginal cable / failing NIC. BER ~1e-8 and
/// ~0.1% frame loss — enough to corrupt a long run within minutes.
const LinkQuality& gige_flaky();

/// Probability that at least one bit of a `bytes`-byte frame is flipped
/// at the given bit error rate: 1 - (1 - ber)^(8*bytes).
double frame_corrupt_probability(std::size_t bytes, double bit_error_rate);

}  // namespace ss::simnet
