#include "simnet/fairshare.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ss::simnet {

FairShareResult fair_share(const Topology& topo,
                           const std::vector<Flow>& flows) {
  FairShareResult result;
  result.rate_bps.assign(flows.size(), 0.0);
  if (flows.empty()) return result;

  const std::size_t slots = topo.resource_slots();
  std::vector<double> remaining(slots, 0.0);
  std::vector<int> active_count(slots, 0);
  std::vector<bool> slot_used(slots, false);

  // Resource slots used by each flow.
  std::vector<std::vector<std::size_t>> flow_slots(flows.size());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    for (const Resource& r : topo.path(flows[f].src, flows[f].dst)) {
      const std::size_t s = topo.resource_slot(r);
      flow_slots[f].push_back(s);
      if (!slot_used[s]) {
        slot_used[s] = true;
        remaining[s] = topo.capacity_bps(r);
      }
      ++active_count[s];
    }
  }

  std::vector<bool> frozen(flows.size(), false);
  std::vector<double> allocated(flows.size(), 0.0);
  std::size_t unfrozen = flows.size();

  while (unfrozen > 0) {
    // Find the bottleneck: the resource with the smallest fair increment.
    double best_inc = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < slots; ++s) {
      if (slot_used[s] && active_count[s] > 0) {
        best_inc = std::min(best_inc, remaining[s] / active_count[s]);
      }
    }
    if (!std::isfinite(best_inc)) break;

    // Grant the increment to every unfrozen flow and drain resources.
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (frozen[f]) continue;
      allocated[f] += best_inc;
      for (std::size_t s : flow_slots[f]) remaining[s] -= best_inc;
    }
    // Freeze flows crossing a saturated resource.
    constexpr double kEps = 1e-6;  // bit/s slack for float comparisons
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (frozen[f]) continue;
      bool saturated = false;
      for (std::size_t s : flow_slots[f]) {
        if (remaining[s] <= kEps) {
          saturated = true;
          break;
        }
      }
      if (saturated) {
        frozen[f] = true;
        --unfrozen;
        for (std::size_t s : flow_slots[f]) --active_count[s];
      }
    }
  }

  result.rate_bps = allocated;
  result.min_bps = *std::min_element(allocated.begin(), allocated.end());
  result.max_bps = *std::max_element(allocated.begin(), allocated.end());
  for (double r : allocated) result.total_bps += r;
  return result;
}

std::vector<Flow> hypercube_pairs(int nodes, int dim) {
  std::vector<Flow> flows;
  for (int i = 0; i < nodes; ++i) {
    const int j = i ^ (1 << dim);
    if (j < nodes) flows.push_back({i, j});  // each ordered pair once
  }
  return flows;
}

}  // namespace ss::simnet
