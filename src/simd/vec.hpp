// Fixed-width double vector types — the abstraction the explicit-SIMD
// kernels are written against.
//
// Each backend is a small struct with an identical static interface
// (width, load/store, broadcast, arithmetic, fma, compares-as-masks,
// blend, horizontal sum, and a full-precision reciprocal square root).
// Kernels are function templates over the vector type
// (gravity/batch_simd.inl, sph/kernel_simd.inl) and are instantiated once
// per backend in translation units compiled with that backend's codegen
// flags (-mavx2 -mfma for Avx2Vec; NEON is baseline on AArch64). This
// header only *defines* a backend when the corresponding predefines are
// present, so including it from a plain TU is safe and yields just
// ScalarVec.
//
// Masks are represented as vectors (all-ones / all-zero bit patterns, the
// native form on both AVX2 and NEON); ScalarVec uses 0.0 / bit-pattern
// for uniformity via its own blend.
//
// rsqrt(): every backend uses the same decomposition — Karp-style
// exponent halving on the IEEE bit pattern as the seed (~3.4% error, no
// memory table, no float-range limits) and four Newton-Raphson polishes
// to full double precision. This matches gravity::rsqrt_karp_batch
// operation-for-operation, so the scalar backend reproduces the existing
// auto-vectorized batch path.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define SS_SIMD_HAVE_AVX2 1
#endif

#if defined(__AVX512F__)
#include <immintrin.h>
#define SS_SIMD_HAVE_AVX512 1
#endif

#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define SS_SIMD_HAVE_NEON 1
#endif

namespace ss::simd {

inline constexpr std::uint64_t kRsqrtSeedMagic = 0x5fe6eb50c7b537a9ULL;

// ---------------------------------------------------------------------------
// Portable scalar backend (width 1). The reference the wide backends are
// tested against, and the fallback when SS_SIMD=scalar or the hardware
// supports nothing wider.
// ---------------------------------------------------------------------------

struct ScalarVec {
  static constexpr int kWidth = 1;
  double v;

  static ScalarVec load(const double* p) { return {*p}; }
  static ScalarVec broadcast(double x) { return {x}; }
  static ScalarVec zero() { return {0.0}; }
  void store(double* p) const { *p = v; }

  friend ScalarVec operator+(ScalarVec a, ScalarVec b) { return {a.v + b.v}; }
  friend ScalarVec operator-(ScalarVec a, ScalarVec b) { return {a.v - b.v}; }
  friend ScalarVec operator*(ScalarVec a, ScalarVec b) { return {a.v * b.v}; }
  friend ScalarVec operator/(ScalarVec a, ScalarVec b) { return {a.v / b.v}; }

  /// a*b + c.
  static ScalarVec fma(ScalarVec a, ScalarVec b, ScalarVec c) {
    return {a.v * b.v + c.v};
  }
  /// c - a*b.
  static ScalarVec fnma(ScalarVec a, ScalarVec b, ScalarVec c) {
    return {c.v - a.v * b.v};
  }

  /// Mask: all-ones where equal.
  static ScalarVec cmp_eq(ScalarVec a, ScalarVec b) {
    return {a.v == b.v ? mask_all() : 0.0};
  }
  static ScalarVec cmp_lt(ScalarVec a, ScalarVec b) {
    return {a.v < b.v ? mask_all() : 0.0};
  }
  /// mask ? a : b (per lane).
  static ScalarVec blend(ScalarVec mask, ScalarVec a, ScalarVec b) {
    return {std::bit_cast<std::uint64_t>(mask.v) != 0 ? a.v : b.v};
  }
  static ScalarVec max(ScalarVec a, ScalarVec b) {
    return {a.v > b.v ? a.v : b.v};
  }

  double hsum() const { return v; }

  /// Full-precision reciprocal square root (positive normal inputs).
  static ScalarVec rsqrt(ScalarVec x) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(x.v);
    double y = std::bit_cast<double>(kRsqrtSeedMagic - (bits >> 1));
    const double h = 0.5 * x.v;
    y = y * (1.5 - h * y * y);
    y = y * (1.5 - h * y * y);
    y = y * (1.5 - h * y * y);
    y = y * (1.5 - h * y * y);
    return {y};
  }

 private:
  static double mask_all() {
    return std::bit_cast<double>(~std::uint64_t{0});
  }
};

// ---------------------------------------------------------------------------
// AVX2 + FMA backend (width 4).
// ---------------------------------------------------------------------------

#if defined(SS_SIMD_HAVE_AVX2)

struct Avx2Vec {
  static constexpr int kWidth = 4;
  __m256d v;

  static Avx2Vec load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static Avx2Vec broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static Avx2Vec zero() { return {_mm256_setzero_pd()}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }

  friend Avx2Vec operator+(Avx2Vec a, Avx2Vec b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend Avx2Vec operator-(Avx2Vec a, Avx2Vec b) {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend Avx2Vec operator*(Avx2Vec a, Avx2Vec b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  friend Avx2Vec operator/(Avx2Vec a, Avx2Vec b) {
    return {_mm256_div_pd(a.v, b.v)};
  }

  static Avx2Vec fma(Avx2Vec a, Avx2Vec b, Avx2Vec c) {
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
  }
  static Avx2Vec fnma(Avx2Vec a, Avx2Vec b, Avx2Vec c) {
    return {_mm256_fnmadd_pd(a.v, b.v, c.v)};
  }

  static Avx2Vec cmp_eq(Avx2Vec a, Avx2Vec b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)};
  }
  static Avx2Vec cmp_lt(Avx2Vec a, Avx2Vec b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
  }
  static Avx2Vec blend(Avx2Vec mask, Avx2Vec a, Avx2Vec b) {
    return {_mm256_blendv_pd(b.v, a.v, mask.v)};
  }
  static Avx2Vec max(Avx2Vec a, Avx2Vec b) {
    return {_mm256_max_pd(a.v, b.v)};
  }

  double hsum() const {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d s = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
  }

  static Avx2Vec rsqrt(Avx2Vec x) {
    // In-register Karp seed: halve the biased exponent by shifting the
    // whole IEEE pattern, subtract from the tuned magic.
    const __m256i bits = _mm256_castpd_si256(x.v);
    const __m256i magic = _mm256_set1_epi64x(
        static_cast<long long>(kRsqrtSeedMagic));
    __m256d y = _mm256_castsi256_pd(
        _mm256_sub_epi64(magic, _mm256_srli_epi64(bits, 1)));
    const __m256d h = _mm256_mul_pd(_mm256_set1_pd(0.5), x.v);
    const __m256d c15 = _mm256_set1_pd(1.5);
    for (int i = 0; i < 4; ++i) {
      // y = y * (1.5 - h*y*y), the h*y product fused.
      const __m256d hy = _mm256_mul_pd(h, y);
      const __m256d t = _mm256_fnmadd_pd(hy, y, c15);
      y = _mm256_mul_pd(y, t);
    }
    return {y};
  }
};

#endif  // SS_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// AVX-512 backend (width 8). Foundation instructions only; native compares
// produce __mmask8, expanded back to an all-ones/zero vector so the mask
// model matches the other backends.
// ---------------------------------------------------------------------------

#if defined(SS_SIMD_HAVE_AVX512)

struct Avx512Vec {
  static constexpr int kWidth = 8;
  __m512d v;

  static Avx512Vec load(const double* p) { return {_mm512_loadu_pd(p)}; }
  static Avx512Vec broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static Avx512Vec zero() { return {_mm512_setzero_pd()}; }
  void store(double* p) const { _mm512_storeu_pd(p, v); }

  friend Avx512Vec operator+(Avx512Vec a, Avx512Vec b) {
    return {_mm512_add_pd(a.v, b.v)};
  }
  friend Avx512Vec operator-(Avx512Vec a, Avx512Vec b) {
    return {_mm512_sub_pd(a.v, b.v)};
  }
  friend Avx512Vec operator*(Avx512Vec a, Avx512Vec b) {
    return {_mm512_mul_pd(a.v, b.v)};
  }
  friend Avx512Vec operator/(Avx512Vec a, Avx512Vec b) {
    return {_mm512_div_pd(a.v, b.v)};
  }

  static Avx512Vec fma(Avx512Vec a, Avx512Vec b, Avx512Vec c) {
    return {_mm512_fmadd_pd(a.v, b.v, c.v)};
  }
  static Avx512Vec fnma(Avx512Vec a, Avx512Vec b, Avx512Vec c) {
    return {_mm512_fnmadd_pd(a.v, b.v, c.v)};
  }

  static Avx512Vec cmp_eq(Avx512Vec a, Avx512Vec b) {
    return from_mask(_mm512_cmp_pd_mask(a.v, b.v, _CMP_EQ_OQ));
  }
  static Avx512Vec cmp_lt(Avx512Vec a, Avx512Vec b) {
    return from_mask(_mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ));
  }
  static Avx512Vec blend(Avx512Vec mask, Avx512Vec a, Avx512Vec b) {
    // Bitwise select (mask ? a : b): ternary logic A?B:C is imm 0xCA.
    return {_mm512_castsi512_pd(_mm512_ternarylogic_epi64(
        _mm512_castpd_si512(mask.v), _mm512_castpd_si512(a.v),
        _mm512_castpd_si512(b.v), 0xCA))};
  }
  static Avx512Vec max(Avx512Vec a, Avx512Vec b) {
    return {_mm512_max_pd(a.v, b.v)};
  }

  double hsum() const { return _mm512_reduce_add_pd(v); }

  static Avx512Vec rsqrt(Avx512Vec x) {
    const __m512i bits = _mm512_castpd_si512(x.v);
    const __m512i magic = _mm512_set1_epi64(
        static_cast<long long>(kRsqrtSeedMagic));
    __m512d y = _mm512_castsi512_pd(
        _mm512_sub_epi64(magic, _mm512_srli_epi64(bits, 1)));
    const __m512d h = _mm512_mul_pd(_mm512_set1_pd(0.5), x.v);
    const __m512d c15 = _mm512_set1_pd(1.5);
    for (int i = 0; i < 4; ++i) {
      const __m512d hy = _mm512_mul_pd(h, y);
      const __m512d t = _mm512_fnmadd_pd(hy, y, c15);
      y = _mm512_mul_pd(y, t);
    }
    return {y};
  }

 private:
  static Avx512Vec from_mask(__mmask8 k) {
    return {_mm512_castsi512_pd(
        _mm512_maskz_set1_epi64(k, static_cast<long long>(~0ULL)))};
  }
};

#endif  // SS_SIMD_HAVE_AVX512

// ---------------------------------------------------------------------------
// NEON backend (width 2, AArch64).
// ---------------------------------------------------------------------------

#if defined(SS_SIMD_HAVE_NEON)

struct NeonVec {
  static constexpr int kWidth = 2;
  float64x2_t v;

  static NeonVec load(const double* p) { return {vld1q_f64(p)}; }
  static NeonVec broadcast(double x) { return {vdupq_n_f64(x)}; }
  static NeonVec zero() { return {vdupq_n_f64(0.0)}; }
  void store(double* p) const { vst1q_f64(p, v); }

  friend NeonVec operator+(NeonVec a, NeonVec b) {
    return {vaddq_f64(a.v, b.v)};
  }
  friend NeonVec operator-(NeonVec a, NeonVec b) {
    return {vsubq_f64(a.v, b.v)};
  }
  friend NeonVec operator*(NeonVec a, NeonVec b) {
    return {vmulq_f64(a.v, b.v)};
  }
  friend NeonVec operator/(NeonVec a, NeonVec b) {
    return {vdivq_f64(a.v, b.v)};
  }

  static NeonVec fma(NeonVec a, NeonVec b, NeonVec c) {
    return {vfmaq_f64(c.v, a.v, b.v)};
  }
  static NeonVec fnma(NeonVec a, NeonVec b, NeonVec c) {
    return {vfmsq_f64(c.v, a.v, b.v)};
  }

  static NeonVec cmp_eq(NeonVec a, NeonVec b) {
    return {vreinterpretq_f64_u64(vceqq_f64(a.v, b.v))};
  }
  static NeonVec cmp_lt(NeonVec a, NeonVec b) {
    return {vreinterpretq_f64_u64(vcltq_f64(a.v, b.v))};
  }
  static NeonVec blend(NeonVec mask, NeonVec a, NeonVec b) {
    return {vbslq_f64(vreinterpretq_u64_f64(mask.v), a.v, b.v)};
  }
  static NeonVec max(NeonVec a, NeonVec b) {
    return {vmaxq_f64(a.v, b.v)};
  }

  double hsum() const { return vaddvq_f64(v); }

  static NeonVec rsqrt(NeonVec x) {
    const uint64x2_t bits = vreinterpretq_u64_f64(x.v);
    const uint64x2_t magic = vdupq_n_u64(kRsqrtSeedMagic);
    float64x2_t y = vreinterpretq_f64_u64(
        vsubq_u64(magic, vshrq_n_u64(bits, 1)));
    const float64x2_t h = vmulq_f64(vdupq_n_f64(0.5), x.v);
    const float64x2_t c15 = vdupq_n_f64(1.5);
    for (int i = 0; i < 4; ++i) {
      const float64x2_t hy = vmulq_f64(h, y);
      const float64x2_t t = vfmsq_f64(c15, hy, y);
      y = vmulq_f64(y, t);
    }
    return {y};
  }
};

#endif  // SS_SIMD_HAVE_NEON

}  // namespace ss::simd
