// Runtime SIMD instruction-set selection.
//
// Paper Sec 5: "by hand coding our inner loop with SSE instructions, we
// hope to be able to reach 2x higher performance with our N-body code."
// The explicit-SIMD kernels (gravity/batch_simd.inl, sph/kernel_simd.inl)
// are compiled once per backend — AVX-512, AVX2+FMA, NEON, and a portable
// scalar fallback — into separate translation units with the matching
// codegen flags. This header is the *selector*: which backend the process should
// run, decided once at startup from CPUID (and overridable for testing).
//
// Selection order:
//   1. force(isa) — tests flip backends at runtime to cross-check parity.
//   2. The SS_SIMD environment variable ("scalar", "avx2", "neon",
//      "auto"), read once on first use. An unsupported request falls back
//      to scalar (never to a faulting backend) and is reported by
//      env_rejected().
//   3. CPUID: the widest backend both compiled into the binary and
//      supported by the hardware.
//
// The selector itself knows nothing about kernels; each subsystem keeps a
// per-backend function table and asks active() which entry to use (a
// relaxed atomic load — cheap enough per tile flush).
#pragma once

namespace ss::simd {

/// Instruction sets the explicit kernels are specialized for. `scalar`
/// is the portable fallback (plain doubles, width 1) and is always
/// available.
enum class Isa { scalar = 0, avx2 = 1, neon = 2, avx512 = 3 };

inline constexpr int kIsaCount = 4;

/// Human-readable backend name ("scalar", "avx2", "neon", "avx512").
const char* name(Isa isa);

/// Doubles per vector register for the backend (1, 4, 2, 8).
int lane_width(Isa isa);

/// True when the *hardware* can execute the backend (CPUID on x86; NEON
/// is architectural baseline on AArch64). Says nothing about whether the
/// kernels were compiled in — subsystem dispatch tables check that
/// themselves and fall back to scalar when an entry is missing.
bool hardware_supports(Isa isa);

/// The backend the process should use: the forced one if force() was
/// called, else the SS_SIMD request, else the widest hardware-supported
/// backend. Cached after the first call; a relaxed atomic read afterward.
Isa active();

/// What CPUID alone would pick (ignores force() and SS_SIMD).
Isa detected();

/// Test/benchmark override. Forcing an unsupported backend throws
/// std::invalid_argument (forcing scalar always succeeds). Takes effect
/// immediately for subsequent active() calls on any thread.
void force(Isa isa);

/// Drop a force() override, returning to the SS_SIMD/CPUID choice.
void clear_force();

/// True when SS_SIMD named a backend the hardware cannot run (the process
/// then runs scalar). Lets CI distinguish "asked for scalar" from "asked
/// for avx2 on a machine without it".
bool env_rejected();

/// RAII backend override for tests: forces in the constructor, restores
/// the previous selection policy in the destructor.
class ScopedForce {
 public:
  explicit ScopedForce(Isa isa);
  ~ScopedForce();
  ScopedForce(const ScopedForce&) = delete;
  ScopedForce& operator=(const ScopedForce&) = delete;

 private:
  bool had_force_;
  Isa prev_;
};

}  // namespace ss::simd
