#include "simd/isa.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>

namespace ss::simd {

namespace {

// Active selection, encoded so one atomic carries both "is there a
// force?" and the chosen ISA: -1 = not yet resolved, otherwise an Isa.
std::atomic<int> g_active{-1};
std::atomic<bool> g_env_rejected{false};

// force()/clear_force() bookkeeping (rare; a mutex is fine).
std::mutex g_force_mu;
bool g_forced = false;

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  // AVX2 without FMA does not exist on real parts, but the kernels use
  // FMA intrinsics, so check both.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_has_neon() {
#if defined(__aarch64__)
  return true;  // architectural baseline
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if defined(__x86_64__) || defined(__i386__)
  // The kernels use only foundation (F) instructions on 512-bit vectors.
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

Isa detect() {
  if (cpu_has_avx512()) return Isa::avx512;
  if (cpu_has_avx2()) return Isa::avx2;
  if (cpu_has_neon()) return Isa::neon;
  return Isa::scalar;
}

/// Resolve the SS_SIMD/CPUID policy (no force considered).
Isa resolve_policy() {
  const char* env = std::getenv("SS_SIMD");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    for (int i = 0; i < kIsaCount; ++i) {
      const Isa isa = static_cast<Isa>(i);
      if (std::strcmp(env, name(isa)) == 0) {
        if (hardware_supports(isa)) return isa;
        g_env_rejected.store(true, std::memory_order_relaxed);
        return Isa::scalar;  // never select a faulting backend
      }
    }
    g_env_rejected.store(true, std::memory_order_relaxed);  // unknown name
    return Isa::scalar;
  }
  return detect();
}

}  // namespace

const char* name(Isa isa) {
  switch (isa) {
    case Isa::scalar:
      return "scalar";
    case Isa::avx2:
      return "avx2";
    case Isa::neon:
      return "neon";
    case Isa::avx512:
      return "avx512";
  }
  return "?";
}

int lane_width(Isa isa) {
  switch (isa) {
    case Isa::scalar:
      return 1;
    case Isa::avx2:
      return 4;
    case Isa::neon:
      return 2;
    case Isa::avx512:
      return 8;
  }
  return 1;
}

bool hardware_supports(Isa isa) {
  switch (isa) {
    case Isa::scalar:
      return true;
    case Isa::avx2:
      return cpu_has_avx2();
    case Isa::neon:
      return cpu_has_neon();
    case Isa::avx512:
      return cpu_has_avx512();
  }
  return false;
}

Isa detected() { return detect(); }

Isa active() {
  int v = g_active.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Isa>(v);
  // First use: resolve the env/CPUID policy. Several threads may race
  // here; resolve_policy() is deterministic, so last-write-wins is fine.
  const Isa isa = resolve_policy();
  g_active.store(static_cast<int>(isa), std::memory_order_relaxed);
  return isa;
}

void force(Isa isa) {
  if (!hardware_supports(isa)) {
    throw std::invalid_argument(std::string("simd: cannot force ") +
                                name(isa) +
                                ": not supported by this hardware");
  }
  std::lock_guard<std::mutex> lock(g_force_mu);
  g_forced = true;
  g_active.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void clear_force() {
  std::lock_guard<std::mutex> lock(g_force_mu);
  g_forced = false;
  g_active.store(static_cast<int>(resolve_policy()),
                 std::memory_order_relaxed);
}

bool env_rejected() {
  (void)active();  // make sure the env var has been examined
  return g_env_rejected.load(std::memory_order_relaxed);
}

ScopedForce::ScopedForce(Isa isa) {
  {
    std::lock_guard<std::mutex> lock(g_force_mu);
    had_force_ = g_forced;
  }
  prev_ = active();
  force(isa);
}

ScopedForce::~ScopedForce() {
  if (had_force_) {
    force(prev_);
  } else {
    clear_force();
  }
}

}  // namespace ss::simd
