#include "nodemodel/sharemodel.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace ss::nodemodel {

ShareModel::ShareModel(double beta) : beta_(beta) {
  if (beta < 0.0 || beta > 1.0) {
    throw std::invalid_argument("ShareModel: beta must be in [0, 1]");
  }
}

ShareModel ShareModel::from_slow_mem_ratio(double ratio, double mem_scale) {
  if (ratio <= 0.0 || mem_scale <= 0.0 || mem_scale >= 1.0) {
    throw std::invalid_argument("ShareModel: bad calibration inputs");
  }
  // ratio = 1 / (beta/m + 1 - beta)  =>  beta = (1/ratio - 1) / (1/m - 1).
  const double beta = (1.0 / ratio - 1.0) / (1.0 / mem_scale - 1.0);
  return ShareModel(std::clamp(beta, 0.0, 1.0));
}

double ShareModel::predict(double cpu_scale, double mem_scale) const {
  return 1.0 / (beta_ / mem_scale + (1.0 - beta_) / cpu_scale);
}

namespace {

const std::array<ClockScalingRow, 14> kTable2 = {{
    {"STREAM copy", 1203.5, 761.8, 1143.4, 1268.5},
    {"STREAM add", 1237.2, 749.8, 1165.3, 1302.8},
    {"STREAM scale", 1201.8, 756.1, 1142.8, 1267.0},
    {"STREAM triad", 1238.2, 748.9, 1160.7, 1304.1},
    {"NPB BT", 321.2, 204.1, 293.9, 342.3},
    {"NPB SP", 216.5, 131.7, 200.1, 229.6},
    {"NPB LU", 404.3, 262.2, 366.2, 427.4},
    {"NPB MG", 385.1, 231.4, 360.8, 400.1},
    {"NPB CG", 313.1, 189.4, 273.9, 330.2},
    {"NPB FT", 351.0, 248.7, 302.9, 385.1},
    {"NPB IS", 27.2, 21.2, 22.5, 28.9},
    {"SPEC CINT2000", 790.0, 655.0, 640.0, 830.0},
    {"SPEC CFP2000", 742.0, 527.0, 646.0, 782.0},
    {"Linpack", 3.302, 2.865, 2.602, 3.476},
}};

}  // namespace

std::span<const ClockScalingRow> table2_rows() { return kTable2; }

}  // namespace ss::nodemodel
