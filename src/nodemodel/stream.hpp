// A real implementation of McCalpin's STREAM kernels (copy, scale, add,
// triad), measured on the host. The paper uses STREAM to demonstrate that
// the Shuttle XPC node is memory-bandwidth bound (Sec 3.2, Table 2); we
// run the same kernels here so Table 2's first four rows have a measured
// counterpart on whatever machine runs the reproduction.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ss::nodemodel {

struct StreamResult {
  std::string kernel;
  double mbytes_per_s = 0.0;  ///< Best-of-trials rate, 1e6 bytes/s.
  double bytes_per_iter = 0.0;
};

struct StreamConfig {
  std::size_t elements = 8u << 20;  ///< Per-array doubles (3 arrays).
  int trials = 5;
};

/// Run all four kernels; results in the canonical order copy, scale, add,
/// triad. The checksum of the final arrays is folded into each result's
/// validity (throws on numerical corruption).
std::vector<StreamResult> run_stream(const StreamConfig& cfg = {});

}  // namespace ss::nodemodel
