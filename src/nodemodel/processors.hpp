// Processor performance profiles.
//
// Table 5 of the paper measures the gravitational micro-kernel on eleven
// processors, with the math-library sqrt and with Karp's decomposition.
// Table 6 reports the sustained treecode Mflop/s per processor on twelve
// machines across a decade. These published figures become the *inputs*
// of our cluster performance model: a machine is (processors, per-proc
// treecode rate, network profile), and the virtual-time benchmarks
// reproduce the tables by running the real algorithms against these rates.
#pragma once

#include <span>
#include <string>

namespace ss::nodemodel {

/// One row of paper Table 5 (gravity micro-kernel, Mflop/s).
struct ProcessorProfile {
  std::string name;
  double mhz = 0.0;
  double libm_mflops = 0.0;
  double karp_mflops = 0.0;
};

/// The eleven Table 5 rows, in the paper's order.
std::span<const ProcessorProfile> table5_processors();

/// One row of paper Table 6 (historical treecode performance).
struct MachineProfile {
  int year = 0;
  std::string site;
  std::string machine;
  int procs = 0;
  double gflops = 0.0;        ///< Whole-machine sustained treecode rate.
  double mflops_per_proc = 0.0;
};

/// The twelve Table 6 rows.
std::span<const MachineProfile> table6_machines();

/// The Space Simulator node's key rates (paper Secs 3.2-3.6):
/// STREAM triad bandwidth, sustained 1-node Linpack, gravity kernel rates.
struct SpaceSimulatorNode {
  static constexpr double stream_triad_mbytes = 1238.2;
  static constexpr double linpack_gflops = 3.302;
  static constexpr double peak_gflops = 5.06;
  static constexpr double gravity_libm_mflops = 779.3;   // gcc
  static constexpr double gravity_karp_mflops = 792.6;   // gcc
  static constexpr double gravity_icc_libm_mflops = 1170.0;
  static constexpr double gravity_icc_karp_mflops = 1357.0;
  static constexpr double treecode_mflops = 623.9;       // Table 6
  static constexpr double specfp2000 = 742.0;
  static constexpr double specint2000 = 790.0;
};

}  // namespace ss::nodemodel
