#include "nodemodel/stream.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/timer.hpp"

namespace ss::nodemodel {

std::vector<StreamResult> run_stream(const StreamConfig& cfg) {
  const std::size_t n = cfg.elements;
  std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 0.0);
  const double scalar = 3.0;

  auto best_time = [&](auto&& kernel) {
    double best = 1e300;
    for (int t = 0; t < cfg.trials; ++t) {
      support::WallTimer timer;
      kernel();
      best = std::min(best, timer.seconds());
    }
    return best;
  };

  std::vector<StreamResult> out;

  // Copy: c = a. 16 bytes moved per element.
  {
    const double secs = best_time([&] {
      for (std::size_t i = 0; i < n; ++i) c[i] = a[i];
    });
    out.push_back({"copy", 16.0 * static_cast<double>(n) / secs / 1e6, 16.0});
  }
  // Scale: b = s*c.
  {
    const double secs = best_time([&] {
      for (std::size_t i = 0; i < n; ++i) b[i] = scalar * c[i];
    });
    out.push_back({"scale", 16.0 * static_cast<double>(n) / secs / 1e6, 16.0});
  }
  // Add: c = a + b. 24 bytes per element.
  {
    const double secs = best_time([&] {
      for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
    });
    out.push_back({"add", 24.0 * static_cast<double>(n) / secs / 1e6, 24.0});
  }
  // Triad: a = b + s*c.
  {
    const double secs = best_time([&] {
      for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + scalar * c[i];
    });
    out.push_back({"triad", 24.0 * static_cast<double>(n) / secs / 1e6, 24.0});
  }

  // STREAM-style verification. With a0=1, b0=2: copy gives c=1, scale
  // b=3c=3, add c=a0+b=4, triad a=b+3c=15 (each kernel is idempotent, so
  // repeated trials do not change the fixed point).
  for (std::size_t i = 0; i < n; i += std::max<std::size_t>(n / 64, 1)) {
    if (std::abs(a[i] - 15.0) > 1e-12 || std::abs(b[i] - 3.0) > 1e-12 ||
        std::abs(c[i] - 4.0) > 1e-12) {
      throw std::runtime_error("STREAM verification failed");
    }
  }
  return out;
}

}  // namespace ss::nodemodel
