// The memory/CPU share model behind paper Table 2.
//
// The paper independently scales the node's memory clock (x0.6), CPU
// clock (x0.75), and front-side bus (x1.0526) and measures the effect on
// STREAM, the NAS kernels, SPEC and Linpack. The observed behaviour is
// captured by a two-pipe execution model: a fraction beta of the run is
// limited by memory bandwidth and the rest by the core, so
//
//   rate(c, m) = 1 / (beta / m + (1 - beta) / c)
//
// with c and m the CPU and memory clock scaling factors. We calibrate
// beta for each benchmark from the paper's slow-memory column alone and
// then *predict* the slow-CPU and overclock columns — the reproduction
// checks that one parameter explains all three experiments.
#pragma once

#include <span>
#include <string>

namespace ss::nodemodel {

class ShareModel {
 public:
  explicit ShareModel(double beta);

  /// Calibrate beta from a measured throughput ratio under memory clock
  /// scaling `mem_scale` with the CPU untouched.
  static ShareModel from_slow_mem_ratio(double ratio, double mem_scale = 0.6);

  double beta() const { return beta_; }

  /// Predicted throughput ratio to the normal system when the CPU runs at
  /// `cpu_scale` and memory at `mem_scale` of nominal.
  double predict(double cpu_scale, double mem_scale) const;

 private:
  double beta_;
};

/// One Table 2 row: measured rates for the four configurations.
struct ClockScalingRow {
  std::string name;
  double normal = 0.0;
  double slow_mem = 0.0;   ///< memory x0.6
  double slow_cpu = 0.0;   ///< CPU x0.75
  double overclock = 0.0;  ///< FSB x1.0526 (CPU and memory together)
};

/// The paper's Table 2 (values as printed; STREAM rows in Mbyte/s, NPB in
/// Mop/s, SPEC in SPEC units, Linpack in Gflop/s).
std::span<const ClockScalingRow> table2_rows();

/// Clock scaling factors used in the paper's experiment.
inline constexpr double kSlowMemScale = 0.6;     // DDR333 -> DDR200
inline constexpr double kSlowCpuScale = 0.75;    // 2.53 -> 1.9 GHz
inline constexpr double kOverclockScale = 140.0 / 133.0;

}  // namespace ss::nodemodel
