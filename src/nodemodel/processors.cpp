#include "nodemodel/processors.hpp"

#include <array>

namespace ss::nodemodel {

namespace {

const std::array<ProcessorProfile, 11> kTable5 = {{
    {"533-MHz Alpha EV56", 533, 76.2, 242.2},
    {"667-MHz Transmeta TM5600", 667, 128.7, 297.5},
    {"933-MHz Transmeta TM5800", 933, 189.5, 373.2},
    {"375-MHz IBM Power3", 375, 298.5, 514.4},
    {"1133-MHz Intel P3", 1133, 292.2, 594.9},
    {"1200-MHz AMD Athlon MP", 1200, 350.7, 614.0},
    {"2200-MHz Intel P4", 2200, 668.0, 655.5},
    {"2530-MHz Intel P4", 2530, 779.3, 792.6},
    {"1800-MHz AMD Athlon XP", 1800, 609.9, 951.9},
    {"1250-MHz Alpha 21264C", 1250, 935.2, 1141.0},
    {"2530-MHz Intel P4 (icc)", 2530, 1170.0, 1357.0},
}};

const std::array<MachineProfile, 12> kTable6 = {{
    {2003, "LANL", "ASCI QB", 3600, 2793.0, 775.8},
    {2003, "LANL", "Space Simulator", 288, 179.7, 623.9},
    {2002, "NERSC", "IBM SP-3(375/W)", 256, 57.70, 225.0},
    {2002, "LANL", "Green Destiny", 212, 38.9, 183.5},
    {2000, "LANL", "SGI Origin 2000", 64, 13.10, 205.0},
    {1998, "LANL", "Avalon", 128, 16.16, 126.0},
    {1996, "LANL", "Loki", 16, 1.28, 80.0},
    {1996, "SC '96", "Loki+Hyglac", 32, 2.19, 68.4},
    {1996, "Sandia", "ASCI Red", 6800, 464.9, 68.4},
    {1995, "JPL", "Cray T3D", 256, 7.94, 31.0},
    {1995, "LANL", "TMC CM-5", 512, 14.06, 27.5},
    {1993, "Caltech", "Intel Delta", 512, 10.02, 19.6},
}};

}  // namespace

std::span<const ProcessorProfile> table5_processors() { return kTable5; }

std::span<const MachineProfile> table6_machines() { return kTable6; }

}  // namespace ss::nodemodel
