#include "sph/collapse.hpp"

#include <cmath>
#include <numbers>

namespace ss::sph {

std::vector<Particle> rotating_core(const CollapseConfig& cfg,
                                    support::Rng& rng) {
  std::vector<Particle> out;
  out.reserve(static_cast<std::size_t>(cfg.particles));
  const double m = cfg.total_mass / cfg.particles;
  // Keplerian rate at the surface of a uniform sphere: sqrt(GM/R^3).
  const double omega =
      cfg.omega_fraction *
      std::sqrt(cfg.total_mass / std::pow(cfg.radius, 3.0));
  // Thermal energy: |W| of a uniform sphere is (3/5) GM^2/R; specific u.
  const double u0 = cfg.thermal_fraction * 0.6 * cfg.total_mass /
                    cfg.radius;

  for (int i = 0; i < cfg.particles; ++i) {
    double ux, uy, uz;
    rng.unit_vector(ux, uy, uz);
    const double r = cfg.radius * std::cbrt(rng.uniform());
    Particle p;
    p.pos = {r * ux, r * uy, r * uz};
    // Solid-body rotation about z: v = Omega x r.
    p.vel = {-omega * p.pos.y, omega * p.pos.x, 0.0};
    p.mass = m;
    p.u = u0;
    p.h = cfg.radius * std::cbrt(40.0 / cfg.particles);
    out.push_back(p);
  }
  return out;
}

std::vector<AngularBin> angular_momentum_profile(
    const std::vector<Particle>& particles, int bins) {
  std::vector<AngularBin> out(static_cast<std::size_t>(bins));
  const double half_pi = 0.5 * std::numbers::pi;
  for (int b = 0; b < bins; ++b) {
    out[static_cast<std::size_t>(b)].theta_center =
        (b + 0.5) * half_pi / bins;
  }
  for (const auto& p : particles) {
    const double r = p.pos.norm();
    if (r <= 0.0) continue;
    // Polar angle from the rotation (z) axis, folded into [0, pi/2].
    const double theta = std::acos(std::min(1.0, std::abs(p.pos.z) / r));
    int b = static_cast<int>(theta / half_pi * bins);
    b = std::min(b, bins - 1);
    const double jz = p.pos.x * p.vel.y - p.pos.y * p.vel.x;
    out[static_cast<std::size_t>(b)].specific_j += p.mass * std::abs(jz);
    out[static_cast<std::size_t>(b)].mass += p.mass;
  }
  for (auto& b : out) {
    if (b.mass > 0.0) b.specific_j /= b.mass;
  }
  return out;
}

double equator_to_pole_ratio(const std::vector<Particle>& particles,
                             double cone_degrees) {
  const double cone = cone_degrees * std::numbers::pi / 180.0;
  double j_pole = 0.0, m_pole = 0.0, j_eq = 0.0, m_eq = 0.0;
  for (const auto& p : particles) {
    const double r = p.pos.norm();
    if (r <= 0.0) continue;
    const double theta = std::acos(std::min(1.0, std::abs(p.pos.z) / r));
    const double jz =
        std::abs(p.pos.x * p.vel.y - p.pos.y * p.vel.x);
    if (theta < cone) {
      j_pole += p.mass * jz;
      m_pole += p.mass;
    } else if (theta > 0.5 * std::numbers::pi - cone) {
      j_eq += p.mass * jz;
      m_eq += p.mass;
    }
  }
  if (m_pole <= 0.0 || m_eq <= 0.0) return 0.0;
  const double jp = j_pole / m_pole;
  const double je = j_eq / m_eq;
  if (jp <= 0.0) return je > 0.0 ? 1e30 : 1.0;  // 1: no rotation anywhere
  return je / jp;
}

}  // namespace ss::sph
