#include "sph/fld.hpp"

#include <algorithm>
#include <cmath>

namespace ss::sph {

double flux_limiter(double r) {
  // Levermore & Pomraning (1981): lambda = (2 + R) / (6 + 3R + R^2).
  return (2.0 + r) / (6.0 + 3.0 * r + r * r);
}

FldDiagnostics fld_step(std::span<const FldPair> pairs,
                        std::span<const double> mass,
                        std::span<const double> rho, std::vector<double>& e_nu,
                        std::vector<double>& u, double dt,
                        const FldConfig& cfg) {
  const std::size_t n = e_nu.size();
  FldDiagnostics diag;

  // Emission: matter energy above the threshold converts to neutrinos.
  if (cfg.emissivity > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (u[i] > cfg.u_threshold) {
        const double de =
            std::min(cfg.emissivity * rho[i] * dt, u[i] - cfg.u_threshold);
        u[i] -= de;
        e_nu[i] += de;
        diag.radiated += mass[i] * de;
      }
    }
  }

  // Pass 1: gradient-magnitude estimate |grad E| per particle (scalar
  // upper bound over the neighbor graph; FLD only needs the ratio R).
  std::vector<double> grad_mag(n, 0.0);
  for (const FldPair& p : pairs) {
    const double contrib = std::abs(e_nu[p.j] * rho[p.j] -
                                    e_nu[p.i] * rho[p.i]) *
                           std::abs(p.grad_w);
    grad_mag[p.i] += mass[p.j] / rho[p.j] * contrib;
    grad_mag[p.j] += mass[p.i] / rho[p.i] * contrib;
  }

  // Per-particle limited diffusion coefficient D = c lambda / (kappa rho).
  std::vector<double> dcoef(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double energy_density = std::max(e_nu[i] * rho[i], 1e-300);
    const double r = grad_mag[i] / (cfg.opacity * rho[i] * energy_density);
    const double lam = flux_limiter(r);
    dcoef[i] = cfg.c_light * lam / (cfg.opacity * rho[i]);
    diag.max_flux_ratio = std::max(diag.max_flux_ratio, lam * r);
  }

  // Pass 2: conservative pairwise exchange (Cleary & Monaghan form).
  std::vector<double> de(n, 0.0);
  for (const FldPair& p : pairs) {
    if (p.distance <= 0.0) continue;
    // Arithmetic-mean pair diffusivity: the harmonic mean would shut off
    // transport into evacuated particles (whose own limiter is in the
    // free-streaming regime), stalling radiation fronts.
    const double dij = 0.5 * (dcoef[p.i] + dcoef[p.j]);
    // de_i/dt = sum_j 4 m_j/(rho_i rho_j) D_ij (e_j - e_i) (-W'/r).
    const double geom = -p.grad_w / p.distance;  // W' < 0 -> geom > 0
    const double flow = 4.0 * dij * (e_nu[p.j] - e_nu[p.i]) * geom /
                        (rho[p.i] * rho[p.j]);
    de[p.i] += mass[p.j] * flow * dt;
    de[p.j] -= mass[p.i] * flow * dt;
  }
  // Positivity guard: scale the whole exchange down if any particle would
  // go negative (keeps the explicit step monotone and exactly
  // conservative).
  double scale = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (de[i] < 0.0 && e_nu[i] + de[i] * scale < 0.0) {
      scale = std::min(scale, e_nu[i] / (-de[i]));
    }
  }
  for (std::size_t i = 0; i < n; ++i) e_nu[i] += scale * de[i];

  return diag;
}

}  // namespace ss::sph
