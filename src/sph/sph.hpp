// Smoothed particle hydrodynamics on the hashed oct-tree (paper Sec 4.4):
// variable smoothing lengths via tree range queries, density summation,
// symmetrized pressure forces with Monaghan artificial viscosity,
// self-gravity from the same tree, and operator-split flux-limited
// diffusion for the neutrino field.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sph/eos.hpp"
#include "sph/fld.hpp"
#include "support/vec3.hpp"

namespace ss::sph {

using support::Vec3;

struct Particle {
  Vec3 pos;
  Vec3 vel;
  double mass = 0.0;
  double u = 0.0;     ///< Specific internal energy.
  double e_nu = 0.0;  ///< Specific neutrino energy (FLD field).
  double h = 0.1;     ///< Smoothing length.
  double rho = 0.0;   ///< Density (updated every step).
  double pressure = 0.0;
  double cs = 0.0;    ///< Sound speed.
};

using EosFunc = std::function<EosResult(double rho, double u)>;

struct SphConfig {
  int target_neighbors = 40;
  double alpha_visc = 1.0;   ///< Monaghan bulk viscosity.
  double beta_visc = 2.0;    ///< Von Neumann-Richtmyer term.
  double cfl = 0.25;
  double eps_grav = 0.02;    ///< Gravitational softening.
  double theta = 0.7;        ///< Tree opening angle for gravity.
  bool self_gravity = true;
  FldConfig fld;             ///< emissivity = 0 disables transport.
};

struct StepDiagnostics {
  double dt = 0.0;
  double max_rho = 0.0;
  std::uint64_t pair_count = 0;  ///< Interacting pairs this step.
  FldDiagnostics fld;
};

class SphSim {
 public:
  SphSim(std::vector<Particle> particles, EosFunc eos, SphConfig cfg = {});

  /// Advance one adaptive (CFL-limited) step; returns its diagnostics.
  StepDiagnostics step();
  /// Advance one step of the given size (used by the distributed driver,
  /// where the CFL minimum is taken across ranks first).
  StepDiagnostics step(double dt_fixed);
  /// CFL timestep candidate from the current state.
  double cfl_dt() const;
  /// Advance by `n` steps.
  void run(int n);

  const std::vector<Particle>& particles() const { return particles_; }
  double time() const { return time_; }

  /// Conserved quantities for validation.
  Vec3 total_momentum() const;
  Vec3 total_angular_momentum() const;
  /// Kinetic + internal (+ neutrino) energy; potential is added by the
  /// gravity pass when self_gravity is on.
  double total_energy() const;

  /// Recompute smoothing lengths, densities and EOS without stepping
  /// (also runs at construction).
  void update_density();

 private:
  struct Pair {
    std::uint32_t i, j;
    double distance;
    double grad_w;  ///< dW/dr at the symmetrized smoothing length.
  };

  void find_pairs();
  std::vector<Vec3> accelerations(std::vector<double>& du_dt) const;

  std::vector<Particle> particles_;
  EosFunc eos_;
  SphConfig cfg_;
  double time_ = 0.0;
  mutable double potential_ = 0.0;  ///< From the last gravity evaluation.
  std::vector<Pair> pairs_;
};

}  // namespace ss::sph
