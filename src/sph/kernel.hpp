// The cubic-spline smoothing kernel (Monaghan & Lattanzio 1985) used by
// the SPH formalism the paper implements "onto the tree structure
// described above for N-body studies" (Sec 4.4).
#pragma once

#include <cstddef>

#include "support/vec3.hpp"

namespace ss::sph {

/// W(r, h): 3-D cubic spline with compact support 2h, normalized so that
/// the volume integral is 1.
double kernel(double r, double h);

/// dW/dr (scalar radial derivative; the vector gradient is
/// grad W = (dW/dr) * (r_vec / r)).
double kernel_grad(double r, double h);

/// Support radius: the kernel vanishes beyond this.
inline double kernel_support(double h) { return 2.0 * h; }

/// Explicit-SIMD batch evaluation: w[i] = W(r[i], h[i]). Backend chosen
/// by simd::active() (SS_SIMD / simd::force() override as usual); both
/// spline branches are evaluated and blended per lane with the scalar
/// expressions' exact operation order, so results match the scalar
/// functions (bitwise on hardware whose scalar code is uncontracted).
void kernel_batch(const double* r, const double* h, double* w,
                  std::size_t n);

/// gw[i] = dW/dr (r[i], h[i]); same contract as kernel_batch.
void kernel_grad_batch(const double* r, const double* h, double* gw,
                       std::size_t n);

}  // namespace ss::sph
