#include "sph/sph.hpp"

#include <algorithm>
#include <cmath>

#include "gravity/kernels.hpp"
#include "hot/tree.hpp"
#include "sph/kernel.hpp"

namespace ss::sph {

SphSim::SphSim(std::vector<Particle> particles, EosFunc eos, SphConfig cfg)
    : particles_(std::move(particles)), eos_(std::move(eos)), cfg_(cfg) {
  update_density();
}

void SphSim::update_density() {
  find_pairs();
}

void SphSim::find_pairs() {
  const auto n = particles_.size();
  // Tree over the particles for range queries and gravity.
  std::vector<hot::Source> sources(n);
  for (std::size_t i = 0; i < n; ++i) {
    sources[i] = {particles_[i].pos, particles_[i].mass};
  }
  hot::Tree tree(sources, hot::TreeConfig{16});
  // Map tree (sorted) index back to particle index.
  const auto& perm = tree.original_index();

  // Smoothing-length iteration: nudge h toward the target neighbor count.
  for (std::size_t i = 0; i < n; ++i) {
    Particle& p = particles_[i];
    for (int pass = 0; pass < 3; ++pass) {
      const auto found =
          tree.neighbors_within(p.pos, kernel_support(p.h));
      const auto count = static_cast<double>(found.size());
      if (count >= 0.75 * cfg_.target_neighbors &&
          count <= 1.5 * cfg_.target_neighbors) {
        break;
      }
      const double ratio = std::max(count, 1.0) / cfg_.target_neighbors;
      p.h = std::clamp(p.h * std::pow(ratio, -1.0 / 3.0), 1e-6, 10.0);
    }
  }

  // Gather-scatter symmetric pair list (i < j) with h_ij = (h_i + h_j)/2.
  // Kernel values are filled in afterward by the batched (explicit-SIMD)
  // evaluators over the whole pair list at once.
  pairs_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const Particle& pi = particles_[i];
    // Search with the maximum plausible pair support.
    const auto found = tree.neighbors_within(pi.pos, 2.0 * kernel_support(pi.h));
    for (auto t : found) {
      const std::size_t j = perm[t];
      if (j <= i) continue;
      const Particle& pj = particles_[j];
      const double hij = 0.5 * (pi.h + pj.h);
      const double r = (pi.pos - pj.pos).norm();
      if (r >= kernel_support(hij)) continue;
      pairs_.push_back({static_cast<std::uint32_t>(i),
                        static_cast<std::uint32_t>(j), r, 0.0});
    }
  }

  // SoA streams for the batch kernels: per-pair distance and h_ij.
  const std::size_t np = pairs_.size();
  std::vector<double> pr_r(np), pr_h(np), pr_w(np);
  for (std::size_t k = 0; k < np; ++k) {
    pr_r[k] = pairs_[k].distance;
    pr_h[k] = 0.5 * (particles_[pairs_[k].i].h + particles_[pairs_[k].j].h);
  }
  kernel_grad_batch(pr_r.data(), pr_h.data(), pr_w.data(), np);
  for (std::size_t k = 0; k < np; ++k) pairs_[k].grad_w = pr_w[k];

  // Density summation (self term + pairs).
  for (auto& p : particles_) {
    p.rho = p.mass * kernel(0.0, p.h);
  }
  kernel_batch(pr_r.data(), pr_h.data(), pr_w.data(), np);
  for (std::size_t k = 0; k < np; ++k) {
    particles_[pairs_[k].i].rho += particles_[pairs_[k].j].mass * pr_w[k];
    particles_[pairs_[k].j].rho += particles_[pairs_[k].i].mass * pr_w[k];
  }
  for (auto& p : particles_) {
    const auto r = eos_(p.rho, p.u);
    p.pressure = r.pressure;
    p.cs = r.sound_speed;
  }
}

std::vector<Vec3> SphSim::accelerations(std::vector<double>& du_dt) const {
  const auto n = particles_.size();
  std::vector<Vec3> acc(n);
  du_dt.assign(n, 0.0);

  for (const Pair& pr : pairs_) {
    const Particle& a = particles_[pr.i];
    const Particle& b = particles_[pr.j];
    if (pr.distance <= 0.0) continue;
    const Vec3 dx = a.pos - b.pos;
    const Vec3 dv = a.vel - b.vel;
    const Vec3 grad = (pr.grad_w / pr.distance) * dx;  // grad_a W_ab

    // Monaghan artificial viscosity.
    double visc = 0.0;
    const double vdotr = dv.dot(dx);
    if (vdotr < 0.0) {
      const double hij = 0.5 * (a.h + b.h);
      const double mu = hij * vdotr /
                        (pr.distance * pr.distance + 0.01 * hij * hij);
      const double rho_ij = 0.5 * (a.rho + b.rho);
      const double cs_ij = 0.5 * (a.cs + b.cs);
      visc = (-cfg_.alpha_visc * cs_ij * mu + cfg_.beta_visc * mu * mu) /
             rho_ij;
    }

    const double pa = a.pressure / (a.rho * a.rho);
    const double pb = b.pressure / (b.rho * b.rho);
    const Vec3 f = (pa + pb + visc) * grad;
    acc[pr.i] -= b.mass * f;
    acc[pr.j] += a.mass * f;

    // Energy equation: du/dt = (P/rho^2 + visc/2) (v_ab . grad W).
    const double dvgw = dv.dot(grad);
    du_dt[pr.i] += b.mass * (pa + 0.5 * visc) * dvgw;
    du_dt[pr.j] += a.mass * (pb + 0.5 * visc) * dvgw;
  }

  if (cfg_.self_gravity) {
    std::vector<hot::Source> sources(n);
    for (std::size_t i = 0; i < n; ++i) {
      sources[i] = {particles_[i].pos, particles_[i].mass};
    }
    hot::Tree tree(sources, hot::TreeConfig{16});
    const double eps2 = cfg_.eps_grav * cfg_.eps_grav;
    double pot = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto g = tree.accelerate(particles_[i].pos, cfg_.theta, eps2);
      acc[i] += g.a;
      pot += 0.5 * particles_[i].mass * g.phi;
    }
    potential_ = pot;
  }
  return acc;
}

double SphSim::cfl_dt() const {
  double dt = 1e30;
  for (const auto& p : particles_) {
    const double v = p.vel.norm();
    dt = std::min(dt, cfg_.cfl * p.h / (p.cs + v + 1e-30));
  }
  return dt;
}

StepDiagnostics SphSim::step() { return step(cfl_dt()); }

StepDiagnostics SphSim::step(double dt_fixed) {
  StepDiagnostics diag;
  const double dt = dt_fixed;
  diag.dt = dt;

  std::vector<double> du;
  auto acc = accelerations(du);

  // KDK.
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    particles_[i].vel += 0.5 * dt * acc[i];
    particles_[i].u = std::max(0.0, particles_[i].u + 0.5 * dt * du[i]);
    particles_[i].pos += dt * particles_[i].vel;
  }
  update_density();
  acc = accelerations(du);
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    particles_[i].vel += 0.5 * dt * acc[i];
    particles_[i].u = std::max(0.0, particles_[i].u + 0.5 * dt * du[i]);
  }

  // Operator-split neutrino transport.
  if (cfg_.fld.emissivity > 0.0 || cfg_.fld.opacity > 0.0) {
    const auto n = particles_.size();
    std::vector<FldPair> fpairs(pairs_.size());
    for (std::size_t k = 0; k < pairs_.size(); ++k) {
      fpairs[k] = {pairs_[k].i, pairs_[k].j, pairs_[k].distance,
                   pairs_[k].grad_w};
    }
    std::vector<double> mass(n), rho(n), e_nu(n), u(n);
    for (std::size_t i = 0; i < n; ++i) {
      mass[i] = particles_[i].mass;
      rho[i] = particles_[i].rho;
      e_nu[i] = particles_[i].e_nu;
      u[i] = particles_[i].u;
    }
    diag.fld = fld_step(fpairs, mass, rho, e_nu, u, dt, cfg_.fld);
    for (std::size_t i = 0; i < n; ++i) {
      particles_[i].e_nu = e_nu[i];
      particles_[i].u = u[i];
    }
  }

  for (const auto& p : particles_) diag.max_rho = std::max(diag.max_rho, p.rho);
  diag.pair_count = pairs_.size();
  time_ += dt;
  return diag;
}

void SphSim::run(int n) {
  for (int i = 0; i < n; ++i) (void)step();
}

Vec3 SphSim::total_momentum() const {
  Vec3 p;
  for (const auto& x : particles_) p += x.mass * x.vel;
  return p;
}

Vec3 SphSim::total_angular_momentum() const {
  Vec3 l;
  for (const auto& x : particles_) l += x.mass * x.pos.cross(x.vel);
  return l;
}

double SphSim::total_energy() const {
  double e = potential_;
  for (const auto& x : particles_) {
    e += 0.5 * x.mass * x.vel.norm2() + x.mass * (x.u + x.e_nu);
  }
  return e;
}

}  // namespace ss::sph
