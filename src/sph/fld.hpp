// Gray flux-limited diffusion for neutrino transport (paper Sec 4.4:
// "a flux-limited diffusion algorithm to model the neutrino transport").
//
// Each SPH particle carries a neutrino energy density; pairwise exchange
// follows the diffusion operator discretized over the SPH neighbor graph,
// with the Levermore-Pomraning flux limiter interpolating between the
// optically thick diffusion limit and the free-streaming causality bound
// |F| <= c E.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "support/vec3.hpp"

namespace ss::sph {

/// Levermore-Pomraning limiter lambda(R), R = |grad E| / (kappa rho E):
/// lambda -> 1/3 in the diffusion limit (R -> 0) and -> 1/R for free
/// streaming, so the flux D |grad E| <= c E always.
double flux_limiter(double r);

struct FldConfig {
  double c_light = 10.0;     ///< Code-unit speed of light (>> v_dyn).
  double opacity = 100.0;    ///< kappa (cm^2/g analog, code units).
  /// Emission: matter internal energy converts to neutrinos at rate
  /// emissivity * rho above u_threshold (a crude T^6 stand-in).
  double emissivity = 0.0;
  double u_threshold = 0.0;
};

/// One operator-split FLD step over the neighbor graph.
/// e_nu: per-particle specific neutrino energy (erg/g analog);
/// u: matter specific internal energy (coupled through emission);
/// pairs: neighbor pairs (i, j) with their kernel gradient magnitude and
/// distance, as produced by the SPH loop.
struct FldPair {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  double distance = 0.0;
  double grad_w = 0.0;  ///< |dW/dr| at the pair separation (symmetrized h)
};

struct FldDiagnostics {
  double radiated = 0.0;       ///< Energy moved from matter to neutrinos.
  double max_flux_ratio = 0.0; ///< max |F| / (c E): must stay <= 1.
};

FldDiagnostics fld_step(std::span<const FldPair> pairs,
                        std::span<const double> mass,
                        std::span<const double> rho, std::vector<double>& e_nu,
                        std::vector<double>& u, double dt,
                        const FldConfig& cfg);

}  // namespace ss::sph
