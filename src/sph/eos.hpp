// Equations of state for the core-collapse application (paper Sec 4.4:
// "the complex description of pressure forces for matter at nuclear
// densities").
//
// The stiffened model captures the bounce physics: a soft gamma ~ 4/3
// (relativistic electron gas) branch below nuclear density and a stiff
// gamma ~ 2.5 branch above it, joined continuously — collapse proceeds
// until the core exceeds rho_nuc, the stiff branch halts it, and the
// bounce launches the shock.
#pragma once

namespace ss::sph {

struct EosResult {
  double pressure = 0.0;
  double sound_speed = 0.0;
};

/// Ideal gamma-law gas: P = (gamma - 1) rho u.
EosResult eos_gamma_law(double rho, double u, double gamma = 5.0 / 3.0);

struct StiffenedEos {
  double gamma_soft = 4.0 / 3.0;
  double gamma_stiff = 2.5;
  double rho_nuc = 100.0;  ///< Code units (initial mean density = ~0.24).
  double kappa = 0.0;      ///< Soft-branch polytropic constant.

  /// Polytropic pressure with thermal correction: the cold curve
  /// P_cold(rho) switches branch at rho_nuc continuously; the thermal
  /// part (gamma_th - 1) rho u rides on top.
  EosResult operator()(double rho, double u) const;
};

/// A stiffened EOS whose soft branch supports a polytrope of mass M and
/// radius R in the paper-style units (G = 1) when scaled by `pressure_deficit`
/// (< 1 removes support and triggers collapse).
StiffenedEos make_collapse_eos(double mass, double radius,
                               double pressure_deficit = 0.9,
                               double rho_nuc = 100.0);

}  // namespace ss::sph
