// Runtime dispatch front end for the explicit-SIMD SPH kernels.
#include "sph/kernel.hpp"
#include "sph/kernel_dispatch.hpp"

namespace ss::sph {

namespace detail {

const SphKernelTable* sph_kernels_for(simd::Isa isa) {
  switch (isa) {
    case simd::Isa::scalar:
      return sph_kernels_scalar();
    case simd::Isa::avx2:
      return sph_kernels_avx2();
    case simd::Isa::neon:
      return sph_kernels_neon();
    case simd::Isa::avx512:
      return sph_kernels_avx512();
  }
  return nullptr;
}

const SphKernelTable& sph_kernels_active() {
  const SphKernelTable* t = sph_kernels_for(simd::active());
  if (t == nullptr) t = sph_kernels_scalar();
  return *t;
}

}  // namespace detail

void kernel_batch(const double* r, const double* h, double* w,
                  std::size_t n) {
  detail::sph_kernels_active().kernel(r, h, w, n);
}

void kernel_grad_batch(const double* r, const double* h, double* gw,
                       std::size_t n) {
  detail::sph_kernels_active().kernel_grad(r, h, gw, n);
}

}  // namespace ss::sph
