// Distributed SPH over vmpi (paper Sec 4.4: the supernova code ran on
// 128-256 cluster processors by "implementing the SPH formalism onto the
// tree structure described above").
//
// Per step:
//  1. Particles are routed to ranks by the Morton-curve decomposition
//     (the same machinery as the gravity code).
//  2. Every rank broadcasts its bounding box; particles whose kernel
//     support reaches a peer's box are replicated there as ghosts.
//  3. Each rank runs the serial SPH pipeline over locals + ghosts with a
//     globally agreed (allreduce-min CFL) timestep and keeps the local
//     results; ghosts are discarded and re-exchanged next step.
//
// Self-gravity uses the same local+ghost tree (adequate when the gas
// cloud spans a few smoothing lengths per domain, as in the collapse
// problem); the flux-limited diffusion term is supported through the same
// union evaluation, with cross-rank pair conservation accurate to the
// ghost-update discard (disable cfg.fld for exact conservation studies).
#pragma once

#include <vector>

#include "sph/sph.hpp"
#include "vmpi/comm.hpp"

namespace ss::sph {

struct ParallelSphStats {
  std::size_t local_particles = 0;
  std::size_t ghosts_received = 0;
  StepDiagnostics diag;
};

/// One distributed SPH step. `local` is this rank's share (any initial
/// distribution); the return value is the new share after decomposition
/// and integration. All ranks must pass the same `cfg` and `eos`.
std::vector<Particle> parallel_sph_step(ss::vmpi::Comm& comm,
                                        std::vector<Particle> local,
                                        const EosFunc& eos,
                                        const SphConfig& cfg,
                                        ParallelSphStats* stats = nullptr);

}  // namespace ss::sph
