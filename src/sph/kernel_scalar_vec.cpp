// ScalarVec instantiation of the explicit-SIMD SPH kernels — the portable
// width-1 backend and the bit-stable reference.
#include "sph/kernel.hpp"
#include "sph/kernel_dispatch.hpp"
#include "simd/vec.hpp"

#include <cstddef>
#include <numbers>

#include "sph/kernel_simd.inl"

namespace ss::sph::detail {

const SphKernelTable* sph_kernels_scalar() {
  static const SphKernelTable table{
      &vec_kernels::kernel_batch<simd::ScalarVec>,
      &vec_kernels::kernel_grad_batch<simd::ScalarVec>,
  };
  return &table;
}

}  // namespace ss::sph::detail
