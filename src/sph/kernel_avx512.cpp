// Avx512Vec instantiation of the explicit-SIMD SPH kernels. Compiled with
// the backend's target flags when available; otherwise the guard leaves
// this TU empty and the accessor reports the backend as absent.
#include "sph/kernel.hpp"
#include "sph/kernel_dispatch.hpp"
#include "simd/vec.hpp"

#if defined(SS_SIMD_HAVE_AVX512)

#include <cstddef>
#include <numbers>

#include "sph/kernel_simd.inl"

namespace ss::sph::detail {

const SphKernelTable* sph_kernels_avx512() {
  static const SphKernelTable table{
      &vec_kernels::kernel_batch<simd::Avx512Vec>,
      &vec_kernels::kernel_grad_batch<simd::Avx512Vec>,
  };
  return &table;
}

}  // namespace ss::sph::detail

#else  // !SS_SIMD_HAVE_AVX512

namespace ss::sph::detail {

const SphKernelTable* sph_kernels_avx512() { return nullptr; }

}  // namespace ss::sph::detail

#endif
