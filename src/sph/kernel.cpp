#include "sph/kernel.hpp"

#include <cmath>
#include <numbers>

namespace ss::sph {

namespace {
// Normalization for 3-D: sigma = 1 / (pi h^3).
double sigma(double h) { return 1.0 / (std::numbers::pi * h * h * h); }
}  // namespace

double kernel(double r, double h) {
  const double q = r / h;
  if (q >= 2.0) return 0.0;
  const double s = sigma(h);
  if (q < 1.0) {
    return s * (1.0 - 1.5 * q * q + 0.75 * q * q * q);
  }
  const double t = 2.0 - q;
  return s * 0.25 * t * t * t;
}

double kernel_grad(double r, double h) {
  const double q = r / h;
  if (q >= 2.0) return 0.0;
  const double s = sigma(h) / h;
  if (q < 1.0) {
    return s * (-3.0 * q + 2.25 * q * q);
  }
  const double t = 2.0 - q;
  return s * (-0.75 * t * t);
}

}  // namespace ss::sph
