#include "sph/parallel.hpp"

#include <algorithm>
#include <cmath>

#include "hot/decomp.hpp"
#include "obs/obs.hpp"
#include "sph/kernel.hpp"
#include "support/flops.hpp"

namespace ss::sph {

namespace {

struct Aabb {
  double lo[3] = {1e300, 1e300, 1e300};
  double hi[3] = {-1e300, -1e300, -1e300};

  void grow(const support::Vec3& p) {
    lo[0] = std::min(lo[0], p.x);
    lo[1] = std::min(lo[1], p.y);
    lo[2] = std::min(lo[2], p.z);
    hi[0] = std::max(hi[0], p.x);
    hi[1] = std::max(hi[1], p.y);
    hi[2] = std::max(hi[2], p.z);
  }

  /// True when a sphere around p intersects the box.
  bool intersects(const support::Vec3& p, double radius) const {
    double d2 = 0.0;
    const double c[3] = {p.x, p.y, p.z};
    for (int a = 0; a < 3; ++a) {
      if (c[a] < lo[a]) {
        d2 += (lo[a] - c[a]) * (lo[a] - c[a]);
      } else if (c[a] > hi[a]) {
        d2 += (c[a] - hi[a]) * (c[a] - hi[a]);
      }
    }
    return d2 <= radius * radius;
  }

  bool empty() const { return lo[0] > hi[0]; }
};
static_assert(std::is_trivially_copyable_v<Aabb>);

}  // namespace

std::vector<Particle> parallel_sph_step(ss::vmpi::Comm& comm,
                                        std::vector<Particle> local,
                                        const EosFunc& eos,
                                        const SphConfig& cfg,
                                        ParallelSphStats* stats) {
  static_assert(std::is_trivially_copyable_v<Particle>);
  const int p = comm.size();
  obs::Rank* orec = obs::tls();

  // 1. Decompose by Morton keys (positions only drive the split).
  if (orec != nullptr) orec->begin("sph.decompose");
  std::vector<ss::gravity::Source> sources;
  sources.reserve(local.size());
  for (const auto& q : local) sources.push_back({q.pos, q.mass});
  const morton::Box box = hot::global_box(comm, sources);
  const auto dec = hot::decompose(comm, sources, {}, box);
  std::vector<morton::Key> keys(local.size());
  for (std::size_t i = 0; i < local.size(); ++i) {
    keys[i] = morton::encode(local[i].pos, box);
  }
  local = hot::route_by_domains<Particle>(comm, local, keys, dec);
  const std::size_t n_local = local.size();
  if (orec != nullptr) {
    orec->end();  // sph.decompose
    orec->begin("sph.ghost_exchange");
  }

  // 2. Ghost exchange: peers whose bounding box my particle's support
  // (with a 1.5x margin for in-step smoothing-length growth) can reach
  // receive a copy.
  Aabb mine;
  for (const auto& q : local) mine.grow(q.pos);
  const auto boxes = comm.allgather_value(mine);

  std::vector<std::vector<Particle>> ghost_out(static_cast<std::size_t>(p));
  std::size_t ghosts_sent = 0;
  for (const auto& q : local) {
    const double reach = 1.5 * kernel_support(q.h);
    for (int r = 0; r < p; ++r) {
      if (r == comm.rank()) continue;
      const auto& bb = boxes[static_cast<std::size_t>(r)];
      if (!bb.empty() && bb.intersects(q.pos, reach)) {
        ghost_out[static_cast<std::size_t>(r)].push_back(q);
        ++ghosts_sent;
      }
    }
  }
  const auto ghosts = comm.alltoallv(ghost_out);
  if (orec != nullptr) {
    auto& reg = orec->registry();
    reg.counter("sph.ghosts_sent").add(ghosts_sent);
    reg.counter("sph.ghosts_received").add(ghosts.size());
    orec->end();  // sph.ghost_exchange
    orec->begin("sph.step");
  }

  // 3. Serial pipeline over locals + ghosts with the global CFL step.
  std::vector<Particle> uni = local;
  uni.insert(uni.end(), ghosts.begin(), ghosts.end());
  SphSim sim(std::move(uni), eos, cfg);
  const double dt = comm.allreduce_value(
      n_local > 0 ? sim.cfl_dt() : 1e30,
      [](double a, double b) { return std::min(a, b); });
  const auto diag = sim.step(dt);

  // Charge virtual compute: two force evaluations (KDK) over the pair
  // list at the conventional per-pair SPH cost, so virtual-cluster runs
  // report meaningful Mflop/s.
  comm.compute_work(
      2ull * diag.pair_count * ss::support::flop_cost::sph_pair, 0);
  if (orec != nullptr) {
    orec->registry().counter("sph.pairs").add(diag.pair_count);
    orec->end();  // sph.step
  }

  std::vector<Particle> out(sim.particles().begin(),
                            sim.particles().begin() +
                                static_cast<std::ptrdiff_t>(n_local));
  if (stats) {
    stats->local_particles = n_local;
    stats->ghosts_received = ghosts.size();
    stats->diag = diag;
  }
  return out;
}

}  // namespace ss::sph
