// Rotating core-collapse setup and the Fig 8 analysis.
//
// Paper Sec 4.4 / Fig 8: a rotating massive-star core collapses; 40 ms
// after bounce the specific angular momentum is concentrated along the
// equator — the material within a 15-degree cone about the poles carries
// two orders of magnitude less specific angular momentum than the
// equatorial belt. The cause is elementary and survives resolution
// reduction: solid-body rotation gives j = Omega * r^2 sin^2(theta), and
// near-cylindrical j conservation during collapse preserves the contrast.
#pragma once

#include <vector>

#include "sph/sph.hpp"
#include "support/rng.hpp"

namespace ss::sph {

struct CollapseConfig {
  int particles = 3000;
  double total_mass = 1.0;
  double radius = 1.0;
  /// Solid-body angular velocity about z (fraction of the Keplerian rate
  /// at the surface; 0 disables rotation).
  double omega_fraction = 0.2;
  /// Initial thermal energy as a fraction of |potential| (< 0.5 for
  /// collapse).
  double thermal_fraction = 0.05;
  std::uint64_t seed = 7;
};

/// Uniform-density rotating sphere in the collapse units (G = 1).
std::vector<Particle> rotating_core(const CollapseConfig& cfg,
                                    support::Rng& rng);

/// Specific angular momentum (z component about the origin) binned by
/// polar angle theta in [0, pi/2] (mirrored hemispheres combined).
struct AngularBin {
  double theta_center = 0.0;  ///< Radians from the pole.
  double specific_j = 0.0;    ///< Mass-weighted mean |j_z|.
  double mass = 0.0;
};
std::vector<AngularBin> angular_momentum_profile(
    const std::vector<Particle>& particles, int bins = 9);

/// Fig 8's headline number: mean specific angular momentum outside the
/// given polar cone divided by the mean inside it.
double equator_to_pole_ratio(const std::vector<Particle>& particles,
                             double cone_degrees = 15.0);

}  // namespace ss::sph
