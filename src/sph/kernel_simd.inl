// Explicit-SIMD cubic-spline kernel evaluation, templated over a
// simd::*Vec backend. Included from one translation unit per backend
// (kernel_scalar_vec.cpp, kernel_avx2.cpp, kernel_avx512.cpp,
// kernel_neon.cpp).
//
// The vector code evaluates BOTH spline branches for every lane and
// blends on the q < 1 / q < 2 masks. Operation order inside each branch
// replicates the scalar kernel()/kernel_grad() expressions exactly, using
// only plain IEEE mul/add/sub/div (no FMA contraction — the backend TUs
// compile with -ffp-contract=off), so on hardware without contracted
// scalar code the batch results are bit-identical to the scalar loop and
// the SPH tier-1 results are unchanged by the rewiring. The tail runs the
// scalar functions themselves.
//
// Not a standalone header — include after sph/kernel.hpp and
// simd/vec.hpp inside namespace ss::sph.

namespace ss::sph::vec_kernels {

/// w[i] = W(r[i], h[i]).
template <class V>
void kernel_batch(const double* __restrict r, const double* __restrict h,
                  double* __restrict w, std::size_t n) {
  const V one = V::broadcast(1.0);
  const V two = V::broadcast(2.0);
  const V pi = V::broadcast(std::numbers::pi);
  const V c15 = V::broadcast(1.5);
  const V c075 = V::broadcast(0.75);
  const V c025 = V::broadcast(0.25);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    const V hv = V::load(h + i);
    const V q = V::load(r + i) / hv;
    // sigma = 1 / (pi h^3), with the scalar's ((pi*h)*h)*h grouping.
    const V s = one / (pi * hv * hv * hv);
    // q < 1: s * ((1 - (1.5*q)*q) + ((0.75*q)*q)*q)
    const V inner =
        s * ((one - (c15 * q) * q) + ((c075 * q) * q) * q);
    // 1 <= q < 2: ((s*0.25)*t)*t)*t with t = 2 - q
    const V t = two - q;
    const V outer = ((s * c025) * t) * t * t;
    V res = V::blend(V::cmp_lt(q, one), inner, outer);
    res = V::blend(V::cmp_lt(q, two), res, V::zero());
    res.store(w + i);
  }
  for (; i < n; ++i) w[i] = kernel(r[i], h[i]);
}

/// gw[i] = dW/dr (r[i], h[i]).
template <class V>
void kernel_grad_batch(const double* __restrict r,
                       const double* __restrict h, double* __restrict gw,
                       std::size_t n) {
  const V one = V::broadcast(1.0);
  const V two = V::broadcast(2.0);
  const V pi = V::broadcast(std::numbers::pi);
  const V c3 = V::broadcast(-3.0);
  const V c225 = V::broadcast(2.25);
  const V c075 = V::broadcast(-0.75);
  std::size_t i = 0;
  for (; i + V::kWidth <= n; i += V::kWidth) {
    const V hv = V::load(h + i);
    const V q = V::load(r + i) / hv;
    // s = sigma(h)/h = (1/((pi*h)*h)*h)) / h, scalar grouping.
    const V s = (one / (pi * hv * hv * hv)) / hv;
    // q < 1: s * ((-3*q) + (2.25*q)*q)
    const V inner = s * ((c3 * q) + (c225 * q) * q);
    // 1 <= q < 2: s * ((-0.75*t)*t) with t = 2 - q
    const V t = two - q;
    const V outer = s * ((c075 * t) * t);
    V res = V::blend(V::cmp_lt(q, one), inner, outer);
    res = V::blend(V::cmp_lt(q, two), res, V::zero());
    res.store(gw + i);
  }
  for (; i < n; ++i) gw[i] = kernel_grad(r[i], h[i]);
}

}  // namespace ss::sph::vec_kernels
