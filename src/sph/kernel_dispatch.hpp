// Internal dispatch table for the explicit-SIMD SPH kernels; same
// per-backend-TU pattern as gravity/batch_dispatch.hpp. Accessors return
// nullptr for backends not compiled into the binary; resolution against
// simd::active() happens in kernel_simd.cpp.
#pragma once

#include <cstddef>

#include "simd/isa.hpp"

namespace ss::sph::detail {

struct SphKernelTable {
  void (*kernel)(const double* r, const double* h, double* w,
                 std::size_t n) = nullptr;
  void (*kernel_grad)(const double* r, const double* h, double* gw,
                      std::size_t n) = nullptr;
};

const SphKernelTable* sph_kernels_scalar();  // always non-null
const SphKernelTable* sph_kernels_avx2();
const SphKernelTable* sph_kernels_neon();
const SphKernelTable* sph_kernels_avx512();

const SphKernelTable* sph_kernels_for(simd::Isa isa);
/// Active-ISA table with scalar fallback; never nullptr.
const SphKernelTable& sph_kernels_active();

}  // namespace ss::sph::detail
