#include "sph/eos.hpp"

#include <algorithm>
#include <cmath>

namespace ss::sph {

EosResult eos_gamma_law(double rho, double u, double gamma) {
  EosResult r;
  r.pressure = std::max(0.0, (gamma - 1.0) * rho * u);
  r.sound_speed = std::sqrt(std::max(0.0, gamma * (gamma - 1.0) * u));
  return r;
}

EosResult StiffenedEos::operator()(double rho, double u) const {
  // Cold curve: continuous at rho_nuc.
  double p_cold, dpdrho_cold;
  if (rho <= rho_nuc) {
    p_cold = kappa * std::pow(rho, gamma_soft);
    dpdrho_cold = kappa * gamma_soft * std::pow(rho, gamma_soft - 1.0);
  } else {
    const double p_nuc = kappa * std::pow(rho_nuc, gamma_soft);
    const double k_stiff = p_nuc / std::pow(rho_nuc, gamma_stiff);
    p_cold = k_stiff * std::pow(rho, gamma_stiff);
    dpdrho_cold = k_stiff * gamma_stiff * std::pow(rho, gamma_stiff - 1.0);
  }
  // Thermal part: gamma_th = 1.5.
  constexpr double gamma_th = 1.5;
  const double p_th = (gamma_th - 1.0) * rho * std::max(u, 0.0);

  EosResult r;
  r.pressure = p_cold + p_th;
  const double cs2 =
      dpdrho_cold + gamma_th * (gamma_th - 1.0) * std::max(u, 0.0);
  r.sound_speed = std::sqrt(std::max(cs2, 0.0));
  return r;
}

StiffenedEos make_collapse_eos(double mass, double radius,
                               double pressure_deficit, double rho_nuc) {
  StiffenedEos eos;
  eos.rho_nuc = rho_nuc;
  // A gamma = 4/3 polytrope of mass M, radius R requires central
  // K ~ 0.36 G M^{2/3} (standard Lane-Emden n=3 result, order unity
  // coefficient). Scale by the deficit to trigger collapse.
  eos.kappa = pressure_deficit * 0.36 * std::pow(mass, 2.0 / 3.0);
  (void)radius;  // the n=3 polytrope's K is radius independent
  return eos;
}

}  // namespace ss::sph
