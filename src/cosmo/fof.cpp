#include "cosmo/fof.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "hot/tree.hpp"

namespace ss::cosmo {

namespace {

/// Union-find with path compression.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::uint32_t{0});
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

std::vector<Halo> friends_of_friends(const std::vector<nbody::Body>& bodies,
                                     const FofConfig& cfg) {
  const auto n = bodies.size();
  if (n == 0) return {};
  const double mean_sep = 1.0 / std::cbrt(static_cast<double>(n));
  const double link = cfg.linking_b * mean_sep;

  // Tree over the (optionally replicated) positions for range queries.
  // For the periodic case, replicate bodies within `link` of a face so
  // cross-boundary friendships are found; ghosts map back to their source.
  std::vector<hot::Source> pts;
  std::vector<std::uint32_t> owner;
  pts.reserve(n);
  owner.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({bodies[i].pos, 1.0});
    owner.push_back(static_cast<std::uint32_t>(i));
  }
  if (cfg.periodic) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto& p = bodies[i].pos;
      for (int dx = -1; dx <= 1; ++dx) {
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dz = -1; dz <= 1; ++dz) {
            if (dx == 0 && dy == 0 && dz == 0) continue;
            const support::Vec3 q{p.x + dx, p.y + dy, p.z + dz};
            // Keep a ghost only if it lies within `link` of the box.
            if (q.x > -link && q.x < 1.0 + link && q.y > -link &&
                q.y < 1.0 + link && q.z > -link && q.z < 1.0 + link) {
              pts.push_back({q, 1.0});
              owner.push_back(static_cast<std::uint32_t>(i));
            }
          }
        }
      }
    }
  }

  hot::Tree tree(pts, hot::TreeConfig{16});
  const auto& perm = tree.original_index();

  UnionFind uf(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto t : tree.neighbors_within(bodies[i].pos, link)) {
      const std::uint32_t j = owner[perm[t]];
      if (j != i) uf.unite(static_cast<std::uint32_t>(i), j);
    }
  }

  // Collect components.
  std::vector<std::vector<std::uint32_t>> groups(n);
  for (std::size_t i = 0; i < n; ++i) {
    groups[uf.find(static_cast<std::uint32_t>(i))].push_back(
        static_cast<std::uint32_t>(i));
  }

  std::vector<Halo> halos;
  for (auto& g : groups) {
    if (static_cast<int>(g.size()) < cfg.min_members) continue;
    Halo h;
    h.members = std::move(g);
    // Center of mass with periodic unwrapping relative to the first member.
    const support::Vec3 ref = bodies[h.members.front()].pos;
    support::Vec3 com, vel;
    for (auto idx : h.members) {
      const auto& b = bodies[idx];
      support::Vec3 d = b.pos - ref;
      if (cfg.periodic) {
        for (double* c : {&d.x, &d.y, &d.z}) {
          if (*c > 0.5) *c -= 1.0;
          if (*c < -0.5) *c += 1.0;
        }
      }
      com += b.mass * d;
      vel += b.mass * b.vel;
      h.mass += b.mass;
    }
    com = ref + com / h.mass;
    if (cfg.periodic) {
      com = {com.x - std::floor(com.x), com.y - std::floor(com.y),
             com.z - std::floor(com.z)};
    }
    h.center = com;
    h.velocity = vel / h.mass;
    halos.push_back(std::move(h));
  }
  std::sort(halos.begin(), halos.end(),
            [](const Halo& a, const Halo& b) { return a.mass > b.mass; });
  return halos;
}

}  // namespace ss::cosmo
