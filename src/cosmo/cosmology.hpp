// Homogeneous background cosmology: the Friedmann expansion rate and the
// linear growth factor that normalizes the Zel'dovich initial conditions
// and validates the N-body growth (paper Sec 4.3).
//
// Internal unit system: H0 = 1, G = 1, box length = 1 comoving unit. The
// critical density is then 3/(8 pi).
#pragma once

namespace ss::cosmo {

struct Cosmology {
  double omega_m = 1.0;       ///< Matter density parameter.
  double omega_lambda = 0.0;  ///< Cosmological constant.

  /// Hubble rate H(a) in units of H0 (flat; curvature from closure).
  double hubble(double a) const;

  /// Linear growth factor D(a), normalized so D(1) = 1. For
  /// Einstein-de Sitter this is exactly a; in general the standard
  /// integral D ~ H(a) * int da' / (a' H(a'))^3.
  double growth(double a) const;

  /// Growth rate f = dlnD/dlna (1 for EdS; ~omega_m(a)^0.55 otherwise).
  double growth_rate(double a) const;

  /// Mean comoving matter density with G = 1, H0 = 1.
  double mean_density() const;

  /// Cosmic time (units of 1/H0) since a=0, by quadrature.
  double time_of(double a) const;
};

/// The Einstein-de Sitter model used by the reproduction's tests.
inline Cosmology einstein_de_sitter() { return {1.0, 0.0}; }
/// A 2003-vintage LambdaCDM concordance model.
inline Cosmology lcdm_2003() { return {0.3, 0.7}; }

}  // namespace ss::cosmo
