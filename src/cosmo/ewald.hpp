// Ewald summation for gravity in the periodic unit box.
//
// The 27-image truncation used by the basic tree engine misses the
// conditionally convergent tail of the image sum; production periodic
// treecodes (Hernquist, Bouchet & Suto 1991 and descendants) split the
// periodic force of a point mass into a short-range erfc-screened real
// sum and a rapidly converging reciprocal-space sum, and tabulate the
// difference from the plain Newtonian force once per run.
//
// Conventions: unit box, G = 1, unit source mass at the origin with the
// uniform neutralizing background implied by periodicity. The force is
// the gravitational acceleration F = -grad phi (pointing toward the
// mass at small separations: F(d) ~ -d/|d|^3).
#pragma once

#include <vector>

#include "support/vec3.hpp"

namespace ss::cosmo {

struct EwaldConfig {
  double alpha = 2.0;  ///< Splitting parameter (box units).
  int real_cut = 4;    ///< Real-space images per dimension: [-cut, cut].
  int k_cut = 7;       ///< Reciprocal vectors per dimension.
};

/// Exact (to the cutoffs) periodic force of a unit mass at the origin,
/// evaluated at displacement d from the mass. The result is independent
/// of `alpha` — the property the tests exploit.
support::Vec3 ewald_force(const support::Vec3& d, const EwaldConfig& cfg = {});

/// Tabulated correction: ewald_force(d) minus the Newtonian forces of the
/// 27 fixed images n in {-1,0,1}^3. NOTE: unlike the minimum-image
/// correction of PM-tree codes, this function is *not* periodic (the
/// 27-image sum is not), but it is smooth and odd over the full displacement
/// range d in (-1, 1)^3 that box-interior positions produce, which is the
/// domain tabulated here (odd reflection halves each axis).
class EwaldCorrection {
 public:
  explicit EwaldCorrection(int grid = 16, const EwaldConfig& cfg = {});

  /// Correction force at displacement d, components in [-1, 1] (clamped).
  support::Vec3 operator()(const support::Vec3& d) const;

  int grid() const { return grid_; }

 private:
  support::Vec3 at(int i, int j, int k) const {
    return table_[(static_cast<std::size_t>(i) * (grid_ + 1) + j) *
                      (grid_ + 1) +
                  k];
  }

  int grid_;
  std::vector<support::Vec3> table_;  ///< Over [0, 1]^3, (grid+1)^3 nodes.
};

/// Newtonian force sum of the 27 nearest periodic images of a unit mass
/// at the origin (the part the tree engine computes itself).
support::Vec3 nearest_images_force(const support::Vec3& d,
                                   double softening2 = 0.0);

}  // namespace ss::cosmo
