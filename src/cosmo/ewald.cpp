#include "cosmo/ewald.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ss::cosmo {

using support::Vec3;

Vec3 ewald_force(const Vec3& d, const EwaldConfig& cfg) {
  const double alpha = cfg.alpha;
  const double two_pi = 2.0 * std::numbers::pi;
  Vec3 f;

  // Real-space: erfc-screened Newtonian forces of the image lattice.
  for (int nx = -cfg.real_cut; nx <= cfg.real_cut; ++nx) {
    for (int ny = -cfg.real_cut; ny <= cfg.real_cut; ++ny) {
      for (int nz = -cfg.real_cut; nz <= cfg.real_cut; ++nz) {
        const Vec3 r{d.x + nx, d.y + ny, d.z + nz};
        const double rr = r.norm();
        if (rr < 1e-12) continue;  // the self-image contributes no force
        const double ar = alpha * rr;
        const double screen =
            std::erfc(ar) +
            (2.0 * ar / std::sqrt(std::numbers::pi)) * std::exp(-ar * ar);
        f -= (screen / (rr * rr * rr)) * r;
      }
    }
  }

  // Reciprocal-space: F_k = -(4 pi / k^2) exp(-k^2 / 4 alpha^2) k sin(k.d)
  // (unit box volume).
  for (int hx = -cfg.k_cut; hx <= cfg.k_cut; ++hx) {
    for (int hy = -cfg.k_cut; hy <= cfg.k_cut; ++hy) {
      for (int hz = -cfg.k_cut; hz <= cfg.k_cut; ++hz) {
        if (hx == 0 && hy == 0 && hz == 0) continue;
        const Vec3 k{two_pi * hx, two_pi * hy, two_pi * hz};
        const double k2 = k.norm2();
        const double coef = 4.0 * std::numbers::pi / k2 *
                            std::exp(-k2 / (4.0 * alpha * alpha));
        f -= coef * std::sin(k.dot(d)) * k;
      }
    }
  }
  return f;
}

Vec3 nearest_images_force(const Vec3& d, double softening2) {
  Vec3 f;
  for (int nx = -1; nx <= 1; ++nx) {
    for (int ny = -1; ny <= 1; ++ny) {
      for (int nz = -1; nz <= 1; ++nz) {
        const Vec3 r{d.x + nx, d.y + ny, d.z + nz};
        const double r2 = r.norm2() + softening2;
        if (r2 < 1e-24) continue;
        f -= (1.0 / (r2 * std::sqrt(r2))) * r;
      }
    }
  }
  return f;
}

EwaldCorrection::EwaldCorrection(int grid, const EwaldConfig& cfg)
    : grid_(grid),
      table_(static_cast<std::size_t>(grid + 1) * (grid + 1) * (grid + 1)) {
  for (int i = 0; i <= grid_; ++i) {
    for (int j = 0; j <= grid_; ++j) {
      for (int k = 0; k <= grid_; ++k) {
        const Vec3 d{1.0 * i / grid_, 1.0 * j / grid_, 1.0 * k / grid_};
        table_[(static_cast<std::size_t>(i) * (grid_ + 1) + j) * (grid_ + 1) +
               k] = ewald_force(d, cfg) - nearest_images_force(d);
      }
    }
  }
}

Vec3 EwaldCorrection::operator()(const Vec3& d) const {
  // Odd reflection per axis over the tabulated octant [0, 1]^3.
  const double x = std::clamp(d.x, -1.0, 1.0);
  const double y = std::clamp(d.y, -1.0, 1.0);
  const double z = std::clamp(d.z, -1.0, 1.0);
  const double sx = x < 0 ? -1.0 : 1.0;
  const double sy = y < 0 ? -1.0 : 1.0;
  const double sz = z < 0 ? -1.0 : 1.0;
  const double ax = std::abs(x) * grid_;  // in table cells
  const double ay = std::abs(y) * grid_;
  const double az = std::abs(z) * grid_;
  const int i = std::min(static_cast<int>(ax), grid_ - 1);
  const int j = std::min(static_cast<int>(ay), grid_ - 1);
  const int k = std::min(static_cast<int>(az), grid_ - 1);
  const double tx = ax - i, ty = ay - j, tz = az - k;

  Vec3 out;
  for (int di = 0; di < 2; ++di) {
    for (int dj = 0; dj < 2; ++dj) {
      for (int dk = 0; dk < 2; ++dk) {
        const double w = (di ? tx : 1.0 - tx) * (dj ? ty : 1.0 - ty) *
                         (dk ? tz : 1.0 - tz);
        out += w * at(i + di, j + dj, k + dk);
      }
    }
  }
  // Odd symmetry: flipping an axis flips that force component.
  return {sx * out.x, sy * out.y, sz * out.z};
}

}  // namespace ss::cosmo
