#include "cosmo/power.hpp"

#include <cmath>
#include <numbers>

namespace ss::cosmo {

double PowerSpectrum::transfer_bbks(double q) {
  if (q <= 0.0) return 1.0;
  const double l = std::log(1.0 + 2.34 * q) / (2.34 * q);
  const double poly = 1.0 + 3.89 * q + std::pow(16.1 * q, 2) +
                      std::pow(5.46 * q, 3) + std::pow(6.71 * q, 4);
  return l * std::pow(poly, -0.25);
}

double PowerSpectrum::operator()(double k_hmpc) const {
  if (k_hmpc <= 0.0) return 0.0;
  const double t = transfer_bbks(k_hmpc / gamma);
  return amplitude * std::pow(k_hmpc, n_s) * t * t;
}

double PowerSpectrum::sigma_tophat(double r) const {
  // sigma^2 = 1/(2 pi^2) int k^2 P(k) W(kr)^2 dk, W the top-hat window.
  auto window = [](double x) {
    if (x < 1e-4) return 1.0 - x * x / 10.0;
    return 3.0 * (std::sin(x) - x * std::cos(x)) / (x * x * x);
  };
  // Log-spaced Simpson quadrature.
  const int steps = 2048;
  const double lk0 = std::log(1e-4), lk1 = std::log(1e3);
  const double h = (lk1 - lk0) / steps;
  double acc = 0.0;
  for (int i = 0; i <= steps; ++i) {
    const double k = std::exp(lk0 + i * h);
    const double w = window(k * r);
    const double f = k * k * k * (*this)(k)*w * w;  // extra k: dk = k dlnk
    acc += f * (i == 0 || i == steps ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0));
  }
  const double integral = acc * h / 3.0;
  return std::sqrt(integral / (2.0 * std::numbers::pi * std::numbers::pi));
}

void PowerSpectrum::normalize() {
  amplitude = 1.0;
  const double s = sigma_tophat(8.0);
  amplitude = sigma8 * sigma8 / (s * s);
}

}  // namespace ss::cosmo
