// Zel'dovich initial conditions: a Gaussian random density field with the
// prescribed linear power spectrum, realized by displacing particles off
// a uniform lattice along the gradient of the displacement potential
// (paper Sec 4.3's 134M-particle runs start exactly this way).
//
// Code units: comoving box = [0,1)^3, H0 = G = 1. The white-noise path
// (real-space noise -> FFT -> filter by sqrt(P)) guarantees a Hermitian
// field without bookkeeping.
#pragma once

#include <vector>

#include "cosmo/cosmology.hpp"
#include "cosmo/power.hpp"
#include "nbody/ic.hpp"
#include "support/rng.hpp"

namespace ss::cosmo {

struct ZeldovichConfig {
  int grid = 32;          ///< Particles per dimension (grid^3 total).
  double a_start = 0.02;  ///< Starting expansion factor.
  std::uint64_t seed = 1234;
};

struct InitialConditions {
  std::vector<nbody::Body> bodies;  ///< pos: comoving in [0,1); vel: the
                                    ///< canonical momentum p = a^2 dx/dt.
  double a = 0.0;
  double particle_mass = 0.0;
  /// Linear theory rms overdensity of the realized field at a_start
  /// (grid-scale; for validating growth).
  double sigma_linear = 0.0;
};

InitialConditions zeldovich_ics(const Cosmology& cosmo,
                                const PowerSpectrum& power,
                                const ZeldovichConfig& cfg);

}  // namespace ss::cosmo
