// Friends-of-friends halo finder — the standard tool for turning the
// paper's dark-matter simulations into halo catalogs ("examine the
// sub-structure of dark matter halos", Sec 4.3).
//
// Two particles are friends when closer than b times the mean
// interparticle separation; halos are the connected components. Neighbor
// queries run through the hashed oct-tree; components through union-find.
#pragma once

#include <cstdint>
#include <vector>

#include "nbody/ic.hpp"

namespace ss::cosmo {

struct FofConfig {
  double linking_b = 0.2;   ///< In units of the mean separation.
  int min_members = 10;     ///< Smaller groups are discarded.
  bool periodic = false;    ///< Unit-box periodic wrapping of distances.
};

struct Halo {
  std::vector<std::uint32_t> members;  ///< Indices into the input array.
  double mass = 0.0;
  support::Vec3 center;  ///< Center of mass.
  support::Vec3 velocity;
};

/// Find halos among `bodies` (assumed to live in the unit box when
/// periodic). Returned halos are sorted by descending mass.
std::vector<Halo> friends_of_friends(const std::vector<nbody::Body>& bodies,
                                     const FofConfig& cfg = {});

}  // namespace ss::cosmo
