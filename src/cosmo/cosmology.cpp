#include "cosmo/cosmology.hpp"

#include <cmath>
#include <numbers>

namespace ss::cosmo {

double Cosmology::hubble(double a) const {
  const double omega_k = 1.0 - omega_m - omega_lambda;
  return std::sqrt(omega_m / (a * a * a) + omega_k / (a * a) + omega_lambda);
}

double Cosmology::growth(double a) const {
  if (omega_lambda == 0.0 && omega_m == 1.0) return a;  // EdS exactly
  auto integrand = [&](double x) {
    const double hx = hubble(x);
    return 1.0 / (x * x * x * hx * hx * hx);
  };
  auto growth_raw = [&](double aa) {
    // Simpson quadrature of the growth integral from ~0 to aa.
    const int steps = 512;
    const double lo = 1e-6, hi = aa;
    const double h = (hi - lo) / steps;
    double acc = integrand(lo) + integrand(hi);
    for (int i = 1; i < steps; ++i) {
      acc += integrand(lo + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
    }
    return hubble(aa) * acc * h / 3.0;
  };
  return growth_raw(a) / growth_raw(1.0);
}

double Cosmology::growth_rate(double a) const {
  if (omega_lambda == 0.0 && omega_m == 1.0) return 1.0;
  const double h = 1e-4 * a;
  const double d0 = growth(a - h), d1 = growth(a + h);
  return a * (d1 - d0) / (2.0 * h) / growth(a);
}

double Cosmology::mean_density() const {
  // rho_crit = 3 H0^2 / (8 pi G) with H0 = G = 1.
  return omega_m * 3.0 / (8.0 * std::numbers::pi);
}

double Cosmology::time_of(double a) const {
  // t = int_0^a da' / (a' H(a')).
  const int steps = 2048;
  const double lo = 1e-8;
  const double h = (a - lo) / steps;
  auto f = [&](double x) { return 1.0 / (x * hubble(x)); };
  double acc = f(lo) + f(a);
  for (int i = 1; i < steps; ++i) {
    acc += f(lo + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return acc * h / 3.0;
}

}  // namespace ss::cosmo
