#include "cosmo/sim.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "cosmo/ewald.hpp"
#include "cosmo/measure.hpp"
#include "fft/fft.hpp"

namespace ss::cosmo {

using support::Vec3;

CosmoSim::CosmoSim(Cosmology cosmo, std::vector<nbody::Body> bodies,
                   double a_start, SimConfig cfg)
    : cosmo_(cosmo), bodies_(std::move(bodies)), a_(a_start), cfg_(cfg) {}

std::vector<Vec3> CosmoSim::forces() const {
  return cfg_.engine == ForceEngine::pm ? forces_pm() : forces_tree();
}

namespace {

/// Coarse mass aggregates for applying the Ewald correction at monopole
/// level: the cells at (or above, for shallow leaves) the given level.
struct CoarseCell {
  Vec3 com;
  double mass;
};

void collect_coarse(const hot::Tree& tree, std::uint32_t idx, int level,
                    std::vector<CoarseCell>& out) {
  const hot::Cell& c = tree.cell(idx);
  if (c.count == 0) return;
  if (c.leaf || morton::level(c.key) >= level) {
    out.push_back({c.mom.com, c.mom.mass});
    return;
  }
  for (int o = 0; o < 8; ++o) {
    if (c.children[o] >= 0) {
      collect_coarse(tree, static_cast<std::uint32_t>(c.children[o]), level,
                     out);
    }
  }
}

}  // namespace

std::vector<Vec3> CosmoSim::forces_pm() const {
  const int n = cfg_.pm_grid;
  const double two_pi = 2.0 * std::numbers::pi;
  // Poisson: phi_k = -(4 pi G rho_mean / a) delta_k / k^2
  //                = -(3/2) (omega_m / a) delta_k / k^2   (H0 = G = 1).
  const auto delta = cic_density(bodies_, n);
  fft::Grid3 g(n);
  for (std::size_t i = 0; i < delta.size(); ++i) g.flat()[i] = {delta[i], 0};
  fft::fft3(g, false);

  auto freq = [&](int i) { return i <= n / 2 ? i : i - n; };
  fft::Grid3 acc[3] = {fft::Grid3(n), fft::Grid3(n), fft::Grid3(n)};
  const double pref = 1.5 * cosmo_.omega_m / a_;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        const double kx = two_pi * freq(i);
        const double ky = two_pi * freq(j);
        const double kz = two_pi * freq(k);
        const double k2 = kx * kx + ky * ky + kz * kz;
        if (k2 == 0.0) continue;
        // accel_k = -i k phi_k = i k * pref * delta_k / k^2 ... sign:
        // phi_k = -pref delta_k / k^2; accel = -grad phi -> -i k phi_k
        // = i k pref delta_k / k^2.
        const auto base = g.at(i, j, k) * (pref / k2);
        const std::complex<double> I(0.0, 1.0);
        acc[0].at(i, j, k) = I * kx * base;
        acc[1].at(i, j, k) = I * ky * base;
        acc[2].at(i, j, k) = I * kz * base;
      }
    }
  }
  for (auto& gr : acc) fft::fft3(gr, true);

  // CIC interpolation back to the particles (same kernel as the deposit,
  // so the self-force cancels).
  std::vector<Vec3> out(bodies_.size());
  for (std::size_t b = 0; b < bodies_.size(); ++b) {
    const double x = bodies_[b].pos.x * n - 0.5;
    const double y = bodies_[b].pos.y * n - 0.5;
    const double z = bodies_[b].pos.z * n - 0.5;
    const int i = static_cast<int>(std::floor(x));
    const int j = static_cast<int>(std::floor(y));
    const int k = static_cast<int>(std::floor(z));
    const double fx = x - i, fy = y - j, fz = z - k;
    Vec3 a_out;
    for (int di = 0; di < 2; ++di) {
      for (int dj = 0; dj < 2; ++dj) {
        for (int dk = 0; dk < 2; ++dk) {
          const double w = (di ? fx : 1.0 - fx) * (dj ? fy : 1.0 - fy) *
                           (dk ? fz : 1.0 - fz);
          const int ii = ((i + di) % n + n) % n;
          const int jj = ((j + dj) % n + n) % n;
          const int kk = ((k + dk) % n + n) % n;
          a_out.x += w * acc[0].at(ii, jj, kk).real();
          a_out.y += w * acc[1].at(ii, jj, kk).real();
          a_out.z += w * acc[2].at(ii, jj, kk).real();
        }
      }
    }
    out[b] = a_out;
  }
  return out;
}

namespace {

/// Sum of the tree force at the 27 periodic image positions of x.
Vec3 image_sum(const hot::Tree& tree, const Vec3& x, double theta,
               double eps2, hot::TraverseStats* stats) {
  Vec3 g;
  for (int ix = -1; ix <= 1; ++ix) {
    for (int iy = -1; iy <= 1; ++iy) {
      for (int iz = -1; iz <= 1; ++iz) {
        const Vec3 target =
            x + Vec3{double(ix), double(iy), double(iz)};
        g += tree.accelerate(target, theta, eps2,
                             gravity::RsqrtMethod::libm, stats)
                 .a;
      }
    }
  }
  return g;
}

}  // namespace

void CosmoSim::build_background_table() const {
  // A uniform lattice carrying the same total mass: its 27-image force
  // field is the spurious homogeneous-background attraction that must be
  // subtracted (it pulls everything toward the image block's center).
  const int nl = 16;
  double total_mass = 0.0;
  for (const auto& b : bodies_) total_mass += b.mass;
  std::vector<hot::Source> lattice;
  lattice.reserve(static_cast<std::size_t>(nl) * nl * nl);
  const double m = total_mass / (static_cast<double>(nl) * nl * nl);
  for (int i = 0; i < nl; ++i) {
    for (int j = 0; j < nl; ++j) {
      for (int k = 0; k < nl; ++k) {
        lattice.push_back({{(i + 0.5) / nl, (j + 0.5) / nl, (k + 0.5) / nl},
                           m});
      }
    }
  }
  const morton::Box box{{0.0, 0.0, 0.0}, 1.0};
  hot::Tree tree(lattice, box, hot::TreeConfig{16});
  const double eps2 = cfg_.eps * cfg_.eps;

  bg_table_.resize(static_cast<std::size_t>(kBg + 1) * (kBg + 1) * (kBg + 1));
  for (int i = 0; i <= kBg; ++i) {
    for (int j = 0; j <= kBg; ++j) {
      for (int k = 0; k <= kBg; ++k) {
        const Vec3 x{static_cast<double>(i) / kBg,
                     static_cast<double>(j) / kBg,
                     static_cast<double>(k) / kBg};
        bg_table_[(static_cast<std::size_t>(i) * (kBg + 1) + j) * (kBg + 1) +
                  k] = image_sum(tree, x, cfg_.theta, eps2, nullptr);
      }
    }
  }
}

Vec3 CosmoSim::background_force(const Vec3& x) const {
  const double fx = std::clamp(x.x, 0.0, 1.0) * kBg;
  const double fy = std::clamp(x.y, 0.0, 1.0) * kBg;
  const double fz = std::clamp(x.z, 0.0, 1.0) * kBg;
  const int i = std::min(static_cast<int>(fx), kBg - 1);
  const int j = std::min(static_cast<int>(fy), kBg - 1);
  const int k = std::min(static_cast<int>(fz), kBg - 1);
  const double tx = fx - i, ty = fy - j, tz = fz - k;
  auto at = [&](int ii, int jj, int kk) -> const Vec3& {
    return bg_table_[(static_cast<std::size_t>(ii) * (kBg + 1) + jj) *
                         (kBg + 1) +
                     kk];
  };
  Vec3 out;
  for (int di = 0; di < 2; ++di) {
    for (int dj = 0; dj < 2; ++dj) {
      for (int dk = 0; dk < 2; ++dk) {
        const double w = (di ? tx : 1.0 - tx) * (dj ? ty : 1.0 - ty) *
                         (dk ? tz : 1.0 - tz);
        out += w * at(i + di, j + dj, k + dk);
      }
    }
  }
  return out;
}

std::vector<Vec3> CosmoSim::forces_tree() const {
  const bool ewald_mode = cfg_.engine == ForceEngine::tree_ewald;
  if (ewald_mode) {
    if (!ewald_) ewald_ = std::make_shared<EwaldCorrection>(16);
  } else if (bg_table_.empty()) {
    build_background_table();
  }
  const auto sources = nbody::sources_of(bodies_);
  const morton::Box box{{0.0, 0.0, 0.0}, 1.0};
  hot::Tree tree(sources, box, hot::TreeConfig{16});
  const double eps2 = cfg_.eps * cfg_.eps;

  // Ewald mode: the correction (exact periodic force minus the 27-image
  // Newtonian force) varies smoothly over the box, so it is applied at
  // the monopole level of coarse cells. This also neutralizes the mean
  // background exactly, replacing the background table.
  std::vector<CoarseCell> coarse;
  if (ewald_mode) collect_coarse(tree, 0, 2, coarse);

  std::vector<Vec3> out(bodies_.size());
  for (std::size_t b = 0; b < bodies_.size(); ++b) {
    Vec3 g = image_sum(tree, bodies_[b].pos, cfg_.theta, eps2, &tree_stats_);
    if (ewald_mode) {
      for (const auto& c : coarse) {
        g += c.mass * (*ewald_)(bodies_[b].pos - c.com);
      }
    } else {
      g -= background_force(bodies_[b].pos);
    }
    out[b] = g / a_;
  }
  return out;
}

void CosmoSim::evolve_to(double a_end, int steps) {
  const double da = (a_end - a_) / steps;
  auto acc = forces();
  for (int s = 0; s < steps; ++s) {
    const double a0 = a_;
    const double a1 = a_ + da;
    const double ah = 0.5 * (a0 + a1);
    const double dt0 = 0.5 * da / (a0 * cosmo_.hubble(a0));
    const double dt1 = 0.5 * da / (a1 * cosmo_.hubble(a1));
    const double dt_drift = da / (ah * cosmo_.hubble(ah));

    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      bodies_[i].vel += dt0 * acc[i];  // kick (p = a^2 dx/dt)
    }
    auto wrap = [](double x) { return x - std::floor(x); };
    for (auto& b : bodies_) {
      const Vec3 dx = (dt_drift / (ah * ah)) * b.vel;
      b.pos = {wrap(b.pos.x + dx.x), wrap(b.pos.y + dx.y),
               wrap(b.pos.z + dx.z)};
    }
    a_ = a1;
    acc = forces();
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      bodies_[i].vel += dt1 * acc[i];
    }
  }
}

}  // namespace ss::cosmo
