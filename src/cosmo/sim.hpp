// Comoving N-body evolution in the expanding background (paper Sec 4.3).
//
// Equations (Peebles): with comoving position x and canonical momentum
// p = a^2 dx/dt,
//    dp/dt = -grad phi,     lap phi = 4 pi G rho_mean_comoving delta / a,
// integrated kick-drift-kick in the expansion factor a
// (dt = da / (a H)).
//
// Two force engines share the interface:
//  * PM  — particle-mesh: CIC deposit, Poisson solve in k-space, CIC
//    force interpolation. Exactly periodic; used for physics validation.
//  * Tree — the hashed oct-tree over the 27 periodic images (the
//    production code's role here; nearest-image truncation of the Ewald
//    sum, adequate for the demonstration runs).
//  * Tree+Ewald — the 27-image tree sum plus the tabulated Ewald
//    correction applied at coarse-cell monopole level: exactly periodic
//    gravity, the way production periodic treecodes close the image sum.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cosmo/cosmology.hpp"
#include "hot/tree.hpp"
#include "nbody/ic.hpp"

namespace ss::cosmo {

enum class ForceEngine { pm, tree, tree_ewald };

struct SimConfig {
  ForceEngine engine = ForceEngine::pm;
  int pm_grid = 64;       ///< PM mesh per dimension.
  double theta = 0.6;     ///< Tree opening angle.
  double eps = 0.002;     ///< Softening (box units) for the tree engine.
};

class CosmoSim {
 public:
  CosmoSim(Cosmology cosmo, std::vector<nbody::Body> bodies, double a_start,
           SimConfig cfg = {});

  /// Advance to a_end in `steps` equal da steps (KDK).
  void evolve_to(double a_end, int steps);

  double a() const { return a_; }
  const std::vector<nbody::Body>& bodies() const { return bodies_; }
  /// Interactions executed by the tree engine so far (0 for PM).
  std::uint64_t tree_flops() const { return tree_stats_.flops(); }
  const hot::TraverseStats& tree_stats() const { return tree_stats_; }

 private:
  /// dp/dt (comoving acceleration of the canonical momentum) per body.
  std::vector<support::Vec3> forces() const;
  std::vector<support::Vec3> forces_pm() const;
  std::vector<support::Vec3> forces_tree() const;

  /// Background force of the homogeneous 27-image mass distribution,
  /// tabulated once on a grid and subtracted from the tree force (the
  /// nearest-image sum is not translation invariant, so the "Jeans
  /// swindle" must be applied explicitly).
  void build_background_table() const;
  support::Vec3 background_force(const support::Vec3& x) const;

  Cosmology cosmo_;
  std::vector<nbody::Body> bodies_;
  double a_;
  SimConfig cfg_;
  mutable hot::TraverseStats tree_stats_;
  mutable std::vector<support::Vec3> bg_table_;  ///< (kBg+1)^3 samples.
  static constexpr int kBg = 12;
  mutable std::shared_ptr<const class EwaldCorrection> ewald_;
};

}  // namespace ss::cosmo
