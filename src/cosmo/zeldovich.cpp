#include "cosmo/zeldovich.hpp"

#include <cmath>
#include <numbers>

#include "fft/fft.hpp"

namespace ss::cosmo {

namespace {

/// Signed integer frequency of FFT bin i on an n-grid.
int freq(int i, int n) { return i <= n / 2 ? i : i - n; }

}  // namespace

InitialConditions zeldovich_ics(const Cosmology& cosmo,
                                const PowerSpectrum& power,
                                const ZeldovichConfig& cfg) {
  const int n = cfg.grid;
  const double two_pi = 2.0 * std::numbers::pi;

  // White noise -> k space. The forward FFT of unit white noise has
  // <|w_k|^2> = n^3.
  support::Rng rng(cfg.seed);
  fft::Grid3 noise(n);
  for (auto& v : noise.flat()) v = {rng.normal(), 0.0};
  fft::fft3(noise, false);

  // delta_k = w_k * sqrt(P_code(k)) * n^{3/2}; our convention has
  // <|delta_k|^2> = n^6 P_code(k) with box volume 1, so that the inverse
  // transform (which divides by n^3) gives a real-space field with
  // variance integral P(k) d^3k/(2 pi)^3.
  fft::Grid3 psi[3] = {fft::Grid3(n), fft::Grid3(n), fft::Grid3(n)};
  const double norm = std::pow(static_cast<double>(n), 1.5);
  double sigma2_lin = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        const int mi = freq(i, n), mj = freq(j, n), mk = freq(k, n);
        const double m2 = static_cast<double>(mi) * mi +
                          static_cast<double>(mj) * mj +
                          static_cast<double>(mk) * mk;
        if (m2 == 0.0) continue;
        const double k_code = two_pi * std::sqrt(m2);
        // Physical wavenumber: the box is power.box_mpch Mpc/h across.
        const double k_hmpc = k_code / power.box_mpch;
        const double p_code = power(k_hmpc) / std::pow(power.box_mpch, 3.0);
        const auto delta_k = noise.at(i, j, k) * (std::sqrt(p_code) * norm);
        sigma2_lin += std::norm(delta_k) / std::pow(double(n), 6.0);
        // Displacement: psi_k = i k / k^2 * delta_k.
        const std::complex<double> fac(0.0, 1.0 / (k_code * k_code));
        psi[0].at(i, j, k) = fac * (two_pi * mi) * delta_k;
        psi[1].at(i, j, k) = fac * (two_pi * mj) * delta_k;
        psi[2].at(i, j, k) = fac * (two_pi * mk) * delta_k;
      }
    }
  }
  for (auto& g : psi) fft::fft3(g, true);

  const double d = cosmo.growth(cfg.a_start);
  const double f = cosmo.growth_rate(cfg.a_start);
  const double h = cosmo.hubble(cfg.a_start);
  const double a = cfg.a_start;
  // p = a^2 dx/dt = a^2 (H f D) psi for the growing mode.
  const double vel_fac = a * a * h * f * d;

  InitialConditions out;
  out.a = a;
  out.particle_mass = cosmo.mean_density() / std::pow(double(n), 3.0);
  out.sigma_linear = d * std::sqrt(sigma2_lin);
  out.bodies.reserve(static_cast<std::size_t>(n) * n * n);
  const double cell = 1.0 / n;
  auto wrap = [](double x) { return x - std::floor(x); };
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        nbody::Body b;
        const support::Vec3 disp{psi[0].at(i, j, k).real(),
                                 psi[1].at(i, j, k).real(),
                                 psi[2].at(i, j, k).real()};
        b.pos = {wrap((i + 0.5) * cell + d * disp.x),
                 wrap((j + 0.5) * cell + d * disp.y),
                 wrap((k + 0.5) * cell + d * disp.z)};
        b.vel = vel_fac / d * (d * disp);  // = vel_fac * psi
        b.mass = out.particle_mass;
        out.bodies.push_back(b);
      }
    }
  }
  return out;
}

}  // namespace ss::cosmo
