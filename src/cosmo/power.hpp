// Linear matter power spectrum: a scale-invariant primordial spectrum
// shaped by the BBKS (Bardeen, Bond, Kaiser & Szalay 1986) cold-dark-
// matter transfer function and normalized by sigma8 — the standard
// ingredient list for 2003-era cosmological initial conditions.
#pragma once

namespace ss::cosmo {

struct PowerSpectrum {
  double n_s = 1.0;      ///< Primordial spectral index.
  double gamma = 0.21;   ///< Shape parameter (Omega_m h for CDM).
  double sigma8 = 0.9;   ///< Normalization in 8 Mpc/h spheres.
  double box_mpch = 125.0;  ///< Box size in Mpc/h (the Fig 7 run's scale);
                            ///< maps code k (units of 2 pi / box) to Mpc/h.
  double amplitude = 0.0;   ///< Set by normalize(); P(k) prefactor.

  /// BBKS transfer function; k in h/Mpc.
  static double transfer_bbks(double k_over_gamma);

  /// Dimensioned linear power P(k), k in h/Mpc, after normalize().
  double operator()(double k_hmpc) const;

  /// Compute `amplitude` so that the rms overdensity in 8 Mpc/h top-hat
  /// spheres equals sigma8.
  void normalize();

  /// rms top-hat overdensity at radius r (Mpc/h) with current amplitude.
  double sigma_tophat(double r_mpch) const;
};

}  // namespace ss::cosmo
