#include "cosmo/measure.hpp"

#include <cmath>
#include <numbers>

#include "fft/fft.hpp"
#include "hot/tree.hpp"

namespace ss::cosmo {

std::vector<double> cic_density(const std::vector<nbody::Body>& bodies,
                                int n) {
  std::vector<double> rho(static_cast<std::size_t>(n) * n * n, 0.0);
  auto add = [&](int i, int j, int k, double w) {
    i = (i % n + n) % n;
    j = (j % n + n) % n;
    k = (k % n + n) % n;
    rho[(static_cast<std::size_t>(i) * n + j) * n + k] += w;
  };
  double total_mass = 0.0;
  for (const auto& b : bodies) total_mass += b.mass;
  for (const auto& b : bodies) {
    // Cell-centered CIC: the particle spreads over the 8 nearest centers.
    const double x = b.pos.x * n - 0.5;
    const double y = b.pos.y * n - 0.5;
    const double z = b.pos.z * n - 0.5;
    const int i = static_cast<int>(std::floor(x));
    const int j = static_cast<int>(std::floor(y));
    const int k = static_cast<int>(std::floor(z));
    const double fx = x - i, fy = y - j, fz = z - k;
    for (int di = 0; di < 2; ++di) {
      for (int dj = 0; dj < 2; ++dj) {
        for (int dk = 0; dk < 2; ++dk) {
          const double w = (di ? fx : 1.0 - fx) * (dj ? fy : 1.0 - fy) *
                           (dk ? fz : 1.0 - fz);
          add(i + di, j + dj, k + dk, w * b.mass);
        }
      }
    }
  }
  const double mean = total_mass / static_cast<double>(rho.size());
  for (auto& v : rho) v = v / mean - 1.0;
  return rho;
}

std::vector<PowerBin> power_spectrum(const std::vector<nbody::Body>& bodies,
                                     int grid) {
  const auto delta = cic_density(bodies, grid);
  fft::Grid3 g(grid);
  for (std::size_t i = 0; i < delta.size(); ++i) {
    g.flat()[i] = {delta[i], 0.0};
  }
  fft::fft3(g, false);

  auto freq = [&](int i) { return i <= grid / 2 ? i : i - grid; };
  const int nbins = grid / 2;
  std::vector<PowerBin> bins(static_cast<std::size_t>(nbins));
  const double n6 = std::pow(static_cast<double>(grid), 6.0);
  for (int i = 0; i < grid; ++i) {
    for (int j = 0; j < grid; ++j) {
      for (int k = 0; k < grid; ++k) {
        const double m = std::sqrt(
            static_cast<double>(freq(i)) * freq(i) +
            static_cast<double>(freq(j)) * freq(j) +
            static_cast<double>(freq(k)) * freq(k));
        const int bin = static_cast<int>(std::floor(m + 0.5)) - 1;
        if (bin < 0 || bin >= nbins) continue;
        auto& b = bins[static_cast<std::size_t>(bin)];
        b.power += std::norm(g.at(i, j, k)) / n6;
        b.k_code += 2.0 * std::numbers::pi * m;
        ++b.modes;
      }
    }
  }
  for (auto& b : bins) {
    if (b.modes > 0) {
      b.power /= b.modes;
      b.k_code /= b.modes;
    }
  }
  return bins;
}

std::vector<CorrelationBin> correlation_function(
    const std::vector<nbody::Body>& bodies, double r_max, int bins) {
  const auto n = bodies.size();
  std::vector<CorrelationBin> out(static_cast<std::size_t>(bins));
  for (int b = 0; b < bins; ++b) {
    out[static_cast<std::size_t>(b)].r_center = (b + 0.5) * r_max / bins;
  }
  if (n < 2) return out;

  // Replicate near-face bodies so periodic pairs are counted (r_max must
  // stay below half the box).
  std::vector<hot::Source> pts;
  for (const auto& b : bodies) pts.push_back({b.pos, 1.0});
  const std::size_t n_real = pts.size();
  for (std::size_t i = 0; i < n_real; ++i) {
    const auto p = pts[i].pos;
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          const support::Vec3 q{p.x + dx, p.y + dy, p.z + dz};
          if (q.x > -r_max && q.x < 1.0 + r_max && q.y > -r_max &&
              q.y < 1.0 + r_max && q.z > -r_max && q.z < 1.0 + r_max) {
            pts.push_back({q, 1.0});
          }
        }
      }
    }
  }
  hot::Tree tree(pts, hot::TreeConfig{16});

  for (std::size_t i = 0; i < n; ++i) {
    for (auto t : tree.neighbors_within(bodies[i].pos, r_max)) {
      const auto& q = tree.bodies()[t].pos;
      const double r = (q - bodies[i].pos).norm();
      if (r <= 0.0) continue;  // self (and exact duplicates)
      const int b = std::min(static_cast<int>(r / r_max * bins), bins - 1);
      ++out[static_cast<std::size_t>(b)].pairs;  // ordered pairs
    }
  }

  // Random expectation for ordered pairs in a periodic box of volume 1:
  // RR_bin = N * (N-1) * shell_volume.
  for (int b = 0; b < bins; ++b) {
    const double r0 = b * r_max / bins;
    const double r1 = (b + 1) * r_max / bins;
    const double shell =
        4.0 / 3.0 * std::numbers::pi * (r1 * r1 * r1 - r0 * r0 * r0);
    const double rr = static_cast<double>(n) *
                      static_cast<double>(n - 1) * shell;
    auto& bin = out[static_cast<std::size_t>(b)];
    bin.xi = rr > 0.0 ? static_cast<double>(bin.pairs) / rr - 1.0 : 0.0;
  }
  return out;
}

double sigma_delta(const std::vector<nbody::Body>& bodies, int grid) {
  const auto delta = cic_density(bodies, grid);
  double acc = 0.0;
  for (double v : delta) acc += v * v;
  return std::sqrt(acc / static_cast<double>(delta.size()));
}

}  // namespace ss::cosmo
