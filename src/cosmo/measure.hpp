// Clustering statistics of a particle distribution in the periodic unit
// box: CIC density assignment, the binned power spectrum, and the rms
// overdensity — the diagnostics used to verify the Zel'dovich pipeline
// and watch structure grow (paper Sec 4.3 / Fig 7).
#pragma once

#include <cstdint>
#include <vector>

#include "nbody/ic.hpp"

namespace ss::cosmo {

/// Cloud-in-cell density contrast field delta = rho/rho_mean - 1 on an
/// n^3 grid over the periodic unit box.
std::vector<double> cic_density(const std::vector<nbody::Body>& bodies,
                                int n);

struct PowerBin {
  double k_code = 0.0;   ///< Mean wavenumber of the bin (2 pi units).
  double power = 0.0;    ///< P_code(k) (unit box volume convention).
  int modes = 0;
};

/// Binned power spectrum of the CIC density field (shot noise not
/// subtracted; the IC tests compare against input P + 1/N).
std::vector<PowerBin> power_spectrum(const std::vector<nbody::Body>& bodies,
                                     int grid);

/// rms of delta on an n^3 CIC grid.
double sigma_delta(const std::vector<nbody::Body>& bodies, int grid);

struct CorrelationBin {
  double r_center = 0.0;  ///< Pair separation (box units).
  double xi = 0.0;        ///< Two-point correlation.
  std::uint64_t pairs = 0;
};

/// Two-point correlation function xi(r) in the periodic unit box via
/// tree-accelerated pair counting against the analytic random-pair
/// expectation: xi = DD / RR - 1.
std::vector<CorrelationBin> correlation_function(
    const std::vector<nbody::Body>& bodies, double r_max = 0.2,
    int bins = 10);

}  // namespace ss::cosmo
