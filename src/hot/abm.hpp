// Asynchronous Batched Messages (ABM).
//
// The paper (Sec 4.2): "In order to manage the complexities of the
// required asynchronous message traffic, we have developed a paradigm
// called 'asynchronous batched messages (ABM)' built from primitive
// send/recv functions whose interface is modeled after that of active
// messages."
//
// Records posted toward a destination accumulate in a per-destination
// buffer and are shipped as one physical message when the buffer reaches
// the batch size or the owner flushes. On the receive side, poll()
// dispatches every record of every pending batch to the handler
// registered for its channel — the active-message flavor of the design.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "obs/obs.hpp"
#include "vmpi/comm.hpp"

namespace ss::hot {

class Abm {
 public:
  using Handler =
      std::function<void(int src, std::span<const std::byte> payload)>;

  struct Config {
    /// Flush a destination buffer when it holds this many payload bytes.
    std::size_t batch_bytes = 4096;
    /// vmpi tag carrying ABM traffic (one tag; channels are in-band).
    int tag = 77;
    /// Bound on the recv-side recycle pool: enough for a burst of
    /// in-flight batches without pinning memory when a rank momentarily
    /// receives from every peer (on a lossy fabric, retransmitted bursts
    /// arrive in clumps — the bound keeps that from accumulating).
    std::size_t pool_buffers = 64;
  };

  Abm(ss::vmpi::Comm& comm, Config cfg);
  explicit Abm(ss::vmpi::Comm& comm) : Abm(comm, Config{}) {}

  /// Register the handler for a channel (application-defined small int).
  void on(std::uint32_t channel, Handler h);

  /// Queue one record for `dst`. The payload is copied. Triggers an eager
  /// flush when the destination buffer is full.
  void post(int dst, std::uint32_t channel, std::span<const std::byte> payload);

  template <typename T>
  void post(int dst, std::uint32_t channel, std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    post(dst, channel,
         std::span<const std::byte>(
             reinterpret_cast<const std::byte*>(items.data()),
             items.size() * sizeof(T)));
  }

  template <typename T>
  void post_value(int dst, std::uint32_t channel, const T& v) {
    post<T>(dst, channel, std::span<const T>(&v, 1));
  }

  /// Ship all pending outgoing batches.
  void flush();

  /// Receive and dispatch every batch currently queued for this rank.
  /// Returns the number of records dispatched.
  std::size_t poll();

  std::uint64_t batches_sent() const { return batches_sent_; }
  std::uint64_t records_posted() const { return records_posted_; }
  /// Times a send buffer was recycled from the pool instead of allocated.
  std::uint64_t pool_reuses() const { return pool_reuses_; }

 private:
  struct Record {
    std::uint32_t channel;
    std::uint32_t bytes;
    // payload follows inline in the batch buffer
  };

  void ship(int dst, std::vector<std::byte>& buf, bool eager);
  obs::Counter* channel_counter(std::uint32_t channel);
  std::vector<std::byte> acquire_buffer();
  void recycle_buffer(std::vector<std::byte>&& buf);

  ss::vmpi::Comm& comm_;
  Config cfg_;
  std::vector<std::vector<std::byte>> outgoing_;  // per destination
  std::vector<Handler> handlers_;
  // Zero-copy hot path: shipped buffers are moved into the vmpi message, and
  // received batch payloads are recycled here after dispatch, so steady-state
  // ABM traffic allocates nothing. Bounded so a burst cannot pin memory.
  std::vector<std::vector<std::byte>> pool_;
  std::uint64_t batches_sent_ = 0;
  std::uint64_t records_posted_ = 0;
  std::uint64_t pool_reuses_ = 0;

  // Observability (null when the owning thread has no bound recorder at
  // construction time — the zero-cost-when-disabled path).
  obs::Rank* obs_ = nullptr;
  obs::Counter* obs_records_ = nullptr;
  obs::Counter* obs_batches_ = nullptr;
  obs::Counter* obs_eager_ = nullptr;
  obs::Counter* obs_dispatched_ = nullptr;
  obs::Counter* obs_pool_reuses_ = nullptr;
  std::vector<obs::Counter*> obs_channel_;  // records posted, per channel
};

}  // namespace ss::hot
