// Work-weighted domain decomposition along the Morton curve (paper Fig 6).
//
// "The domain decomposition is obtained by splitting this list into Np
// pieces ... practically identical to a parallel sorting algorithm, with
// the modification that the amount of data that ends up in each processor
// is weighted by the work associated with each item."
//
// Implementation: weighted sample sort. Each rank sorts its bodies by key,
// draws samples spaced evenly in its local *work* distribution, allgathers
// the weighted samples, computes Np-1 splitter keys from the global sample
// distribution, and routes every body to the rank owning its key range.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "gravity/kernels.hpp"
#include "morton/key.hpp"
#include "vmpi/comm.hpp"

namespace ss::hot {

/// Inclusive range of maximum-depth Morton keys owned by one rank.
struct Domain {
  morton::Key lo = 0;
  morton::Key hi = 0;

  bool contains(morton::Key max_depth_key) const {
    return max_depth_key >= lo && max_depth_key <= hi;
  }
};

struct DecompConfig {
  int samples_per_rank = 64;
};

struct DecompResult {
  std::vector<gravity::Source> bodies;  ///< Local bodies, key-sorted.
  std::vector<double> work;             ///< Matching per-body work weights.
  std::vector<morton::Key> keys;        ///< Matching max-depth keys.
  std::vector<Domain> domains;          ///< Key range of every rank.
  /// Auxiliary per-body payload (aux_stride doubles per body), routed and
  /// reordered exactly like bodies: aux[i*stride .. i*stride+stride) goes
  /// with bodies[i]. Empty unless an aux span was passed to decompose().
  std::vector<double> aux;

  /// Rank owning a maximum-depth key.
  int owner_of(morton::Key max_depth_key) const;
  /// Rank owning cell `k` (all its descendants share one owner only when
  /// the cell does not straddle a boundary; this returns the owner of the
  /// cell's first descendant, which is the convention used for requests).
  int owner_of_cell(morton::Key cell_key) const;
};

/// Bounding box agreed by all ranks (allreduce of coordinate extrema).
morton::Box global_box(ss::vmpi::Comm& comm,
                       std::span<const gravity::Source> bodies);

/// Serial helper: splitter keys dividing a key-sorted weighted list into
/// `parts` contiguous pieces of near-equal total weight. Returns parts-1
/// maximum-depth keys; piece r is [splitters[r-1], splitters[r]).
std::vector<morton::Key> weighted_splitters(
    std::span<const morton::Key> sorted_keys, std::span<const double> weights,
    int parts);

/// Parallel decomposition: returns this rank's bodies after the exchange.
/// `work[i]` is the load estimate for bodies[i] (use 1.0 on the first
/// step; thereafter the interaction counts from the previous traversal).
/// `aux` optionally carries aux_stride doubles per body (e.g. velocities
/// for an integrator) that ride along: they are routed to the same owner
/// and reordered by the same stable sort, landing in DecompResult::aux.
DecompResult decompose(ss::vmpi::Comm& comm,
                       std::span<const gravity::Source> bodies,
                       std::span<const double> work, const morton::Box& box,
                       DecompConfig cfg = {},
                       std::span<const double> aux = {},
                       std::size_t aux_stride = 0);

/// Route arbitrary trivially-copyable payloads to the owners of their
/// Morton keys under an existing decomposition (used by applications whose
/// particles carry more state than a gravity Source, e.g. SPH).
template <typename T>
std::vector<T> route_by_domains(ss::vmpi::Comm& comm,
                                std::span<const T> items,
                                std::span<const morton::Key> keys,
                                const DecompResult& dec) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (items.size() != keys.size()) {
    throw std::invalid_argument("route_by_domains: size mismatch");
  }
  std::vector<std::vector<T>> out(static_cast<std::size_t>(comm.size()));
  for (std::size_t i = 0; i < items.size(); ++i) {
    out[static_cast<std::size_t>(dec.owner_of(keys[i]))].push_back(items[i]);
  }
  return comm.alltoallv(out);
}

}  // namespace ss::hot
