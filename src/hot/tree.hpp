// Serial hashed oct-tree over a set of point masses.
//
// Construction: bodies are assigned Morton keys, sorted into key order
// (the paper's 1-D load-balancing curve), and the tree is built by
// recursive refinement of key ranges — a cell's bodies are a contiguous
// slice of the sorted array, so child ranges come from binary search.
// Multipole moments are accumulated bottom-up during the build. Every
// cell is registered in the KeyMap, giving O(1) key -> cell lookup for
// the traversal and for serving remote requests in the parallel code.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gravity/kernels.hpp"
#include "gravity/multipole.hpp"
#include "hot/hash_table.hpp"
#include "morton/key.hpp"

namespace ss::hot {

using gravity::Accel;
using gravity::Moments;
using gravity::RsqrtMethod;
using gravity::Source;
using support::Vec3;

struct Cell {
  morton::Key key = 0;
  std::uint32_t first = 0;  ///< Offset into the sorted body array.
  std::uint32_t count = 0;  ///< Number of bodies under this cell.
  bool leaf = true;
  std::int32_t children[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
  Moments mom;
};

struct TreeConfig {
  /// Maximum bodies per leaf before a cell is split (the treecode's
  /// bucket size). Cells at the maximum key depth stay leaves regardless.
  std::uint32_t bucket_size = 16;
};

struct TraverseStats {
  std::uint64_t body_interactions = 0;
  std::uint64_t cell_interactions = 0;
  std::uint64_t cells_opened = 0;

  /// Flops under the paper's accounting for this interaction count.
  std::uint64_t flops() const {
    return body_interactions * gravity::kFlopsPerInteraction +
           cell_interactions * gravity::kFlopsPerCellInteraction;
  }
};

class Tree {
 public:
  /// Builds over a copy of `bodies`, sorted by Morton key within `box`.
  Tree(std::span<const Source> bodies, const morton::Box& box,
       TreeConfig cfg = {});

  /// Convenience: computes the bounding box internally.
  explicit Tree(std::span<const Source> bodies, TreeConfig cfg = {});

  /// Empty tree; call rebuild() before use. Lets a persistent owner (the
  /// gravity engine) construct once and re-populate every step.
  explicit Tree(TreeConfig cfg = {}) : cfg_(cfg) {}

  /// Re-populates the tree in place. All arenas (body/key/perm/cell arrays
  /// and the key map) keep their capacity, so a steady-state rebuild at
  /// stable particle counts allocates nothing.
  void rebuild(std::span<const Source> bodies, const morton::Box& box);

  const morton::Box& box() const { return box_; }
  /// Bodies in Morton order.
  const std::vector<Source>& bodies() const { return bodies_; }
  /// Morton keys of bodies(), same order.
  const std::vector<morton::Key>& keys() const { return keys_; }
  /// original_index()[i] is the caller's index of bodies()[i].
  const std::vector<std::uint32_t>& original_index() const { return perm_; }

  std::size_t cell_count() const { return cells_.size(); }
  const Cell& cell(std::uint32_t i) const { return cells_[i]; }
  const Cell& root() const { return cells_[0]; }

  /// Cell for a key, or nullptr if no such cell exists in this tree.
  const Cell* find(morton::Key k) const;

  /// Gravitational field at an arbitrary point (the point itself is not a
  /// body unless it coincides with one; coincident bodies contribute no
  /// force thanks to the kernel's r2 == 0 guard).
  Accel accelerate(const Vec3& target, double theta, double eps2,
                   RsqrtMethod method = RsqrtMethod::libm,
                   TraverseStats* stats = nullptr) const;

  /// Field at every body (skipping self-force), in bodies() order.
  std::vector<Accel> accelerate_all(double theta, double eps2,
                                    RsqrtMethod method = RsqrtMethod::libm,
                                    TraverseStats* stats = nullptr) const;

  /// Group-walk variant (the Warren-Salmon optimization): one traversal
  /// per leaf bucket builds a shared interaction list for all its bodies,
  /// amortizing the tree-walk overhead. The group MAC is conservative —
  /// a cell is accepted only if acceptable from anywhere inside the
  /// bucket's bounding sphere — so accuracy is at least that of the
  /// per-body walk at the same theta, at the cost of somewhat more
  /// interactions.
  /// `use_simd` flushes the tiles through the explicit-SIMD dispatched
  /// kernels instead of the auto-vectorized batch kernels (`method` is
  /// then ignored; the SIMD path always uses the Karp-seeded rsqrt).
  std::vector<Accel> accelerate_group_all(
      double theta, double eps2, RsqrtMethod method = RsqrtMethod::libm,
      TraverseStats* stats = nullptr, bool use_simd = false) const;

  /// All bodies within distance h of `center` (via key-range pruned tree
  /// walk); returns indices into bodies(). Used by the SPH module.
  std::vector<std::uint32_t> neighbors_within(const Vec3& center,
                                              double h) const;

 private:
  std::uint32_t build_cell(morton::Key key, std::uint32_t lo,
                           std::uint32_t hi, int level);

  morton::Box box_;
  TreeConfig cfg_;
  std::vector<Source> bodies_;
  std::vector<morton::Key> keys_;
  std::vector<std::uint32_t> perm_;
  std::vector<Cell> cells_;
  KeyMap map_;
};

}  // namespace ss::hot
