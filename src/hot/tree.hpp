// Serial hashed oct-tree over a set of point masses.
//
// Construction: bodies are assigned Morton keys, sorted into key order
// (the paper's 1-D load-balancing curve), and the tree is built by
// recursive refinement of key ranges — a cell's bodies are a contiguous
// slice of the sorted array, so child ranges come from binary search.
// Multipole moments are accumulated bottom-up during the build. Every
// cell is registered in the KeyMap, giving O(1) key -> cell lookup for
// the traversal and for serving remote requests in the parallel code.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gravity/expansion.hpp"
#include "gravity/kernels.hpp"
#include "gravity/multipole.hpp"
#include "hot/hash_table.hpp"
#include "morton/key.hpp"

namespace ss::hot {

using gravity::Accel;
using gravity::Moments;
using gravity::RsqrtMethod;
using gravity::Source;
using support::Vec3;

struct Cell {
  morton::Key key = 0;
  std::uint32_t first = 0;  ///< Offset into the sorted body array.
  std::uint32_t count = 0;  ///< Number of bodies under this cell.
  bool leaf = true;
  std::int32_t children[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
  Moments mom;
};

struct TreeConfig {
  /// Maximum bodies per leaf before a cell is split (the treecode's
  /// bucket size). Cells at the maximum key depth stay leaves regardless.
  std::uint32_t bucket_size = 16;
};

struct TraverseStats {
  std::uint64_t body_interactions = 0;
  std::uint64_t cell_interactions = 0;
  std::uint64_t cells_opened = 0;

  /// Flops under the paper's accounting for this interaction count.
  std::uint64_t flops() const {
    return body_interactions * gravity::kFlopsPerInteraction +
           cell_interactions * gravity::kFlopsPerCellInteraction;
  }
};

/// Which far-field method accelerate_all uses: per-body/group tree walks
/// (the classic treecode, O(N log N)) or the dual-tree fast multipole
/// backend (M2L into local expansions pushed down the tree, O(N)).
enum class FarField { treecode, fmm };

/// Calibration of the FMM's symmetric MAC: a pair is accepted when both
/// per-side opening ratios bmax_X / (d - bmax_other) stay below
/// kFmmMacScale * theta. The treecode tolerates ratios near theta itself
/// because it re-expands per target body; a cell-cell translation's error
/// (~rho^{p+1}) must instead carry a whole target cell, so the FMM runs
/// ~8x stricter per side. (A sum-form MAC gating on
/// (bmax_A + bmax_B) / d was measured and rejected: point-vs-fat pairs
/// dominate the error budget, and admitting them closer in exchange for
/// stricter equal-size pairs costs ~10x the RMS error at equal pair
/// counts — the per-side form already allocates the error budget the way
/// the measured pair population spends it.) The constant is calibrated on
/// the 10k Plummer reference so theta = 0.5, p = 4 lands at <= 1e-6 RMS
/// force error.
inline constexpr double kFmmMacScale = 0.13;

/// Force-evaluation parameters, shared by the treecode and FMM paths.
/// Replaces the loose theta/eps2/method positional arguments that had
/// started to drift between call sites.
struct AccelParams {
  double theta = 0.6;  ///< Opening angle of the MAC.
  double eps2 = 0.0;   ///< Plummer softening, squared.
  /// rsqrt strategy for the scalar/batch kernels (the explicit-SIMD tile
  /// kernels always use the Karp-seeded form). auto_select resolves to
  /// the benchmark winner per kernel flavor on first use.
  RsqrtMethod method = RsqrtMethod::auto_select;
  FarField far_field = FarField::treecode;
  /// FMM local-expansion order, clamped to [kFmmMinOrder, kFmmMaxOrder].
  /// p = 4 at theta = 0.5 gives ~1e-6 RMS force error on centrally
  /// concentrated distributions; each +1 buys roughly an order of
  /// magnitude at ~2x the M2L cost.
  int p_order = 4;
  /// Flush interaction tiles / operator batches through the explicit-SIMD
  /// dispatched kernels instead of the auto-vectorized (treecode) or
  /// scalar-oracle (FMM) paths.
  bool use_simd = false;
};

/// Operator counts of one dual-tree FMM evaluation.
struct FmmStats {
  std::uint64_t p2p = 0;          ///< Body-body interactions (leaf pairs).
  std::uint64_t m2l = 0;          ///< Cell-cell local translations.
  std::uint64_t l2l = 0;          ///< Parent-to-child local shifts.
  std::uint64_t l2p = 0;          ///< Bodies evaluated from locals.
  std::uint64_t m2m = 0;          ///< Child-to-parent moment shifts.
  std::uint64_t pair_splits = 0;  ///< Traversal pairs split (MAC failed).

  FmmStats& operator+=(const FmmStats& o) {
    p2p += o.p2p;
    m2l += o.m2l;
    l2l += o.l2l;
    l2p += o.l2p;
    m2m += o.m2m;
    pair_splits += o.pair_splits;
    return *this;
  }

  /// Flops under the operator accounting in gravity/expansion.hpp.
  std::uint64_t flops(int p_order) const {
    return p2p * gravity::kFlopsPerInteraction +
           m2l * gravity::fmm_flops_m2l(p_order) +
           (l2l + m2m) * gravity::fmm_flops_translate(p_order) +
           l2p * gravity::fmm_flops_l2p(p_order);
  }
};

class Tree {
 public:
  /// Builds over a copy of `bodies`, sorted by Morton key within `box`.
  Tree(std::span<const Source> bodies, const morton::Box& box,
       TreeConfig cfg = {});

  /// Convenience: computes the bounding box internally.
  explicit Tree(std::span<const Source> bodies, TreeConfig cfg = {});

  /// Empty tree; call rebuild() before use. Lets a persistent owner (the
  /// gravity engine) construct once and re-populate every step.
  explicit Tree(TreeConfig cfg = {}) : cfg_(cfg) {}

  /// Re-populates the tree in place. All arenas (body/key/perm/cell arrays
  /// and the key map) keep their capacity, so a steady-state rebuild at
  /// stable particle counts allocates nothing.
  void rebuild(std::span<const Source> bodies, const morton::Box& box);

  const morton::Box& box() const { return box_; }
  /// Bodies in Morton order.
  const std::vector<Source>& bodies() const { return bodies_; }
  /// Morton keys of bodies(), same order.
  const std::vector<morton::Key>& keys() const { return keys_; }
  /// original_index()[i] is the caller's index of bodies()[i].
  const std::vector<std::uint32_t>& original_index() const { return perm_; }

  std::size_t cell_count() const { return cells_.size(); }
  const Cell& cell(std::uint32_t i) const { return cells_[i]; }
  const Cell& root() const { return cells_[0]; }

  /// Mutable view of the cell arena. Integrity hook only: the fault
  /// injector registers it as a corruption target and tests damage it
  /// deliberately; the tree itself never mutates cells after build.
  std::span<Cell> cells_mutable() { return cells_; }

  /// Cell for a key, or nullptr if no such cell exists in this tree.
  const Cell* find(morton::Key k) const;

  /// Gravitational field at an arbitrary point (the point itself is not a
  /// body unless it coincides with one; coincident bodies contribute no
  /// force thanks to the kernel's r2 == 0 guard).
  Accel accelerate(const Vec3& target, double theta, double eps2,
                   RsqrtMethod method = RsqrtMethod::libm,
                   TraverseStats* stats = nullptr) const;

  /// Field at every body (skipping self-force), in bodies() order. With
  /// params.far_field == FarField::fmm this routes through the dual-tree
  /// backend (accelerate_fmm_all); stats then reports the FMM's P2P count
  /// as body_interactions and its M2L count as cell_interactions.
  std::vector<Accel> accelerate_all(const AccelParams& params,
                                    TraverseStats* stats = nullptr) const;

  /// Group-walk variant (the Warren-Salmon optimization): one traversal
  /// per leaf bucket builds a shared interaction list for all its bodies,
  /// amortizing the tree-walk overhead. The group MAC is conservative —
  /// a cell is accepted only if acceptable from anywhere inside the
  /// bucket's bounding sphere — so accuracy is at least that of the
  /// per-body walk at the same theta, at the cost of somewhat more
  /// interactions.
  /// `params.use_simd` flushes the tiles through the explicit-SIMD
  /// dispatched kernels instead of the auto-vectorized batch kernels
  /// (`params.method` is then ignored; the SIMD path always uses the
  /// Karp-seeded rsqrt). params.far_field is ignored: this entry point is
  /// always the treecode.
  std::vector<Accel> accelerate_group_all(
      const AccelParams& params, TraverseStats* stats = nullptr) const;

  /// Dual-tree fast multipole evaluation: one upward pass (P2M/M2M into
  /// Cartesian multipoles of order params.p_order), a pair-queue
  /// traversal with a symmetric MAC (well-separated pairs emit M2L into
  /// per-cell local expansions, leaf-leaf pairs flush through the batched
  /// P2P tile kernels, mixed pairs split the larger cell), and a pooled
  /// downward pass (L2L, then L2P at every body). O(N) in the body count
  /// at fixed accuracy. Forces are bitwise-reproducible across pool
  /// sizes: the traversal forks only on disjoint target subtrees, so
  /// every accumulation order is fixed by the tree, not the schedule.
  /// If `work` is non-null it receives a per-body work estimate (flops),
  /// in bodies() order — the decomposition weight hook.
  std::vector<Accel> accelerate_fmm_all(const AccelParams& params,
                                        FmmStats* stats = nullptr,
                                        std::vector<double>* work =
                                            nullptr) const;

  /// All bodies within distance h of `center` (via key-range pruned tree
  /// walk); returns indices into bodies(). Used by the SPH module.
  std::vector<std::uint32_t> neighbors_within(const Vec3& center,
                                              double h) const;

 private:
  std::uint32_t build_cell(morton::Key key, std::uint32_t lo,
                           std::uint32_t hi, int level);

  morton::Box box_;
  TreeConfig cfg_;
  std::vector<Source> bodies_;
  std::vector<morton::Key> keys_;
  std::vector<std::uint32_t> perm_;
  std::vector<Cell> cells_;
  KeyMap map_;
};

}  // namespace ss::hot
