// Dual-tree fast multipole evaluation over the hashed oct-tree — the
// O(N) far-field backend behind Tree::accelerate_fmm_all.
//
// Three passes:
//
//   1. Upward: every leaf seeds Cartesian multipoles about its center of
//      mass (P2M), parents accumulate shifted child moments (M2M). The
//      expansion center is the com, so the dipole vanishes identically.
//
//   2. Traversal: a pair queue over (target cell, source queue) applying
//      a *symmetric* MAC — a pair (A, B) is well-separated when the
//      opening test passes viewed from both bounding spheres:
//        (d - bmax_A) * kFmmMacScale * theta > bmax_B   and
//        (d - bmax_B) * kFmmMacScale * theta > bmax_A
//      (see kFmmMacScale in tree.hpp for the calibration).
//      Accepted pairs emit M2L into A's local expansion; leaf-leaf pairs
//      flush through the batched P2P tile kernels; mixed pairs split the
//      larger cell (by bmax). Splitting the *source* appends its children
//      to the current task's queue; splitting the *target* hands the
//      offending sources to one new task per child — so each tree cell is
//      the target of exactly one task, tasks own disjoint target
//      subtrees, and every accumulation order is a function of the tree
//      alone. That is what makes the pooled run bitwise-reproducible
//      across pool sizes: the breadth-first sequential prologue expands
//      the task frontier to a fixed fan-out (never a function of the pool
//      width), and the pool then runs whole subtree tasks depth-first
//      with single-writer output slots.
//
//   3. Downward: locals shift parent-to-child (L2L, exact for truncated
//      expansions) down to the leaves, where L2P evaluates the far field
//      at every body and adds it to the near-field P2P sums.
//
// The treecode walks stay untouched; accelerate_all routes here when
// AccelParams::far_field == FarField::fmm.
#include <algorithm>
#include <mutex>
#include <vector>

#include "gravity/batch.hpp"
#include "gravity/expansion.hpp"
#include "hot/tree.hpp"
#include "support/task_pool.hpp"

namespace ss::hot {

namespace {

/// Sequential prologue fan-out for both the upward/downward subtree
/// frontier and the traversal task frontier. A constant (not derived
/// from the pool width) so the work decomposition — and therefore every
/// accumulation order — is identical on every pool size.
constexpr std::size_t kFrontierTarget = 64;

struct PairTask {
  std::uint32_t target = 0;
  std::vector<std::uint32_t> sources;
};

/// Per-chunk working set: tiles, lane buffers and local stats. One per
/// pool chunk, merged (integer sums) under a mutex at the end.
struct FmmScratch {
  gravity::SourcesSoA body_tile;
  gravity::TileScratch tile_scratch;
  std::vector<std::uint32_t> queue, m2l_list, p2p_list, handoff;
  std::vector<double> msoa, dxl, dyl, dzl;            // m2l lane group
  std::vector<double> sxl, syl, szl, axl, ayl, azl, psil;  // l2p lane group
  FmmStats stats;
};

}  // namespace

std::vector<Accel> Tree::accelerate_fmm_all(const AccelParams& params,
                                            FmmStats* stats,
                                            std::vector<double>* work) const {
  const std::size_t n = bodies_.size();
  std::vector<Accel> out(n);
  if (work) work->assign(n, 0.0);
  if (n == 0) return out;

  const int p = std::clamp(params.p_order, gravity::kFmmMinOrder,
                           gravity::kFmmMaxOrder);
  const int np = gravity::coef_count(p);
  const double theta = params.theta;
  const double eps2 = params.eps2;
  const bool use_simd = params.use_simd;
  const int width = use_simd ? gravity::fmm_simd_width() : 1;
  auto& pool = support::TaskPool::global();

  // Cell-indexed coefficient arenas. Reused across calls on a persistent
  // tree would be nicer, but the evaluation is const; the two resizes are
  // a small fraction of a step.
  thread_local std::vector<double> mpole_tls, local_tls;
  auto& mpole = mpole_tls;
  auto& local = local_tls;
  mpole.assign(cells_.size() * static_cast<std::size_t>(np), 0.0);
  local.assign(cells_.size() * static_cast<std::size_t>(np), 0.0);

  std::mutex stats_mu;
  FmmStats total;

  // -------------------------------------------------------------------
  // Subtree frontier for the upward/downward passes: expand whole levels
  // until there is enough fan-out. `ancestors` collects the expanded
  // internal cells top-down; processing them in reverse order visits
  // children before parents.
  // -------------------------------------------------------------------
  std::vector<std::uint32_t> frontier{0};
  std::vector<std::uint32_t> ancestors;
  while (frontier.size() < kFrontierTarget) {
    std::vector<std::uint32_t> next;
    bool any = false;
    for (std::uint32_t ci : frontier) {
      const Cell& c = cells_[ci];
      if (c.leaf) {
        next.push_back(ci);
        continue;
      }
      any = true;
      ancestors.push_back(ci);
      for (int o = 0; o < 8; ++o) {
        if (c.children[o] >= 0) {
          next.push_back(static_cast<std::uint32_t>(c.children[o]));
        }
      }
    }
    frontier.swap(next);
    if (!any) break;
  }

  // -------------------------------------------------------------------
  // Upward pass: P2M at leaves, M2M into parents, subtrees on the pool.
  // -------------------------------------------------------------------
  {
    // Recursive subtree accumulation; children occupy higher indices, so
    // a parent's m2m reads fully-built child coefficients.
    auto upward_cell = [&](auto&& self, std::uint32_t ci,
                           FmmStats& st) -> void {
      const Cell& c = cells_[ci];
      double* m = mpole.data() + ci * static_cast<std::size_t>(np);
      if (c.leaf) {
        gravity::p2m(
            std::span<const Source>(bodies_.data() + c.first, c.count),
            c.mom.com, p, m);
        return;
      }
      for (int o = 0; o < 8; ++o) {
        if (c.children[o] < 0) continue;
        const auto ch = static_cast<std::uint32_t>(c.children[o]);
        self(self, ch, st);
        gravity::m2m(mpole.data() + ch * static_cast<std::size_t>(np),
                     cells_[ch].mom.com, c.mom.com, p, m);
        ++st.m2m;
      }
    };
    pool.parallel_for(frontier.size(), /*grain=*/1,
                      [&](std::size_t lo, std::size_t hi) {
                        FmmStats st;
                        for (std::size_t i = lo; i < hi; ++i) {
                          upward_cell(upward_cell, frontier[i], st);
                        }
                        std::lock_guard<std::mutex> lk(stats_mu);
                        total += st;
                      });
    // Ancestor cells sequentially, children-first.
    for (auto it = ancestors.rbegin(); it != ancestors.rend(); ++it) {
      const Cell& c = cells_[*it];
      double* m = mpole.data() + *it * static_cast<std::size_t>(np);
      for (int o = 0; o < 8; ++o) {
        if (c.children[o] < 0) continue;
        const auto ch = static_cast<std::uint32_t>(c.children[o]);
        gravity::m2m(mpole.data() + ch * static_cast<std::size_t>(np),
                     cells_[ch].mom.com, c.mom.com, p, m);
        ++total.m2m;
      }
    }
  }

  // -------------------------------------------------------------------
  // Dual-tree traversal.
  // -------------------------------------------------------------------

  // Symmetric MAC: well-separated viewed from either bounding sphere,
  // with the per-side opening ratio calibrated to kFmmMacScale * theta.
  // The translation error of an accepted pair scales as rho^{p+1} with
  // rho the larger of bmax_B/(d - bmax_A) and bmax_A/(d - bmax_B), so the
  // ratio cap — not the order — sets the accuracy floor; kFmmMacScale
  // pins the dial so theta keeps its treecode meaning as an accuracy
  // knob while the FMM lands in the absolute-error regime the gates ask
  // for: theta = 0.5 at p = 4 delivers <= 1e-6 RMS force error on the
  // 10k Plummer reference (measured ~6e-7; each +1 in p buys roughly
  // another decade at fixed theta). Geometric pair counts are
  // p-independent, so the traversal shape — and the bitwise-determinism
  // guarantee — does not depend on the order dial.
  const double ratio_cap = kFmmMacScale * theta;
  const auto mac_pair = [&](const Cell& a, const Cell& b) {
    const double d = (a.mom.com - b.mom.com).norm();
    return (d - a.mom.bmax) * ratio_cap > b.mom.bmax &&
           (d - b.mom.bmax) * ratio_cap > a.mom.bmax;
  };

  // Drain one task: test every queued source against the fixed target,
  // growing the queue in place on source splits. Flushes the target's
  // M2L batch and (for leaf targets) its P2P tile; returns the sources
  // to hand to the target's children, empty for leaf targets.
  const auto process_target = [&](PairTask& t, FmmScratch& s) {
    const Cell& a = cells_[t.target];
    s.queue.assign(t.sources.begin(), t.sources.end());
    s.m2l_list.clear();
    s.p2p_list.clear();
    s.handoff.clear();
    for (std::size_t cur = 0; cur < s.queue.size(); ++cur) {
      const Cell& b = cells_[s.queue[cur]];
      if (b.count == 0) continue;
      if (mac_pair(a, b)) {
        s.m2l_list.push_back(s.queue[cur]);
        continue;
      }
      if (a.leaf && b.leaf) {
        s.p2p_list.push_back(s.queue[cur]);
        continue;
      }
      // Split the larger side; a leaf can only split its counterpart.
      const bool split_source =
          a.leaf || (!b.leaf && b.mom.bmax > a.mom.bmax);
      ++s.stats.pair_splits;
      if (split_source) {
        for (int o = 0; o < 8; ++o) {
          if (b.children[o] >= 0) {
            s.queue.push_back(static_cast<std::uint32_t>(b.children[o]));
          }
        }
      } else {
        s.handoff.push_back(s.queue[cur]);
      }
    }

    // M2L flush into the target's local expansion (single writer: each
    // cell is the target of exactly one task).
    double* lam = local.data() + t.target * static_cast<std::size_t>(np);
    s.stats.m2l += s.m2l_list.size();
    if (use_simd && !s.m2l_list.empty()) {
      const std::size_t w = static_cast<std::size_t>(width);
      s.msoa.resize(static_cast<std::size_t>(np) * w);
      s.dxl.resize(w);
      s.dyl.resize(w);
      s.dzl.resize(w);
      for (std::size_t g = 0; g < s.m2l_list.size(); g += w) {
        const std::size_t lanes = std::min(w, s.m2l_list.size() - g);
        for (std::size_t l = 0; l < lanes; ++l) {
          const std::uint32_t src = s.m2l_list[g + l];
          const double* m =
              mpole.data() + src * static_cast<std::size_t>(np);
          for (int c = 0; c < np; ++c) s.msoa[c * w + l] = m[c];
          const Vec3 d = a.mom.com - cells_[src].mom.com;
          s.dxl[l] = d.x;
          s.dyl[l] = d.y;
          s.dzl[l] = d.z;
        }
        for (std::size_t l = lanes; l < w; ++l) {
          // Zero-mass multipole at unit displacement: exact no-op.
          for (int c = 0; c < np; ++c) s.msoa[c * w + l] = 0.0;
          s.dxl[l] = 1.0;
          s.dyl[l] = 0.0;
          s.dzl[l] = 0.0;
        }
        gravity::m2l_simd(s.msoa.data(), s.dxl.data(), s.dyl.data(),
                          s.dzl.data(), eps2, p, lam);
      }
    } else {
      for (std::uint32_t src : s.m2l_list) {
        gravity::m2l_scalar(mpole.data() + src * static_cast<std::size_t>(np),
                            cells_[src].mom.com, a.mom.com, eps2, p, lam);
      }
    }

    // Near field of a leaf target: one shared tile for the whole bucket,
    // flushed per body (the kernels mask the r2 == 0 self lane).
    if (a.leaf && !s.p2p_list.empty()) {
      s.body_tile.clear();
      for (std::uint32_t src : s.p2p_list) {
        const Cell& b = cells_[src];
        s.body_tile.append(bodies_.data() + b.first, b.count);
      }
      const double tile_work =
          static_cast<double>(s.body_tile.size()) *
          static_cast<double>(gravity::kFlopsPerInteraction);
      for (std::uint32_t i = a.first; i < a.first + a.count; ++i) {
        out[i] = use_simd
                     ? gravity::interact_bodies_simd(bodies_[i].pos,
                                                     s.body_tile, eps2)
                     : gravity::interact_bodies_batch(
                           bodies_[i].pos, s.body_tile, eps2, params.method,
                           s.tile_scratch);
        if (work) (*work)[i] += tile_work;
      }
      s.stats.p2p +=
          static_cast<std::uint64_t>(a.count) * s.body_tile.size();
    }
  };

  // Breadth-first sequential prologue: expand tasks until the frontier
  // has pool-independent fan-out, then run whole target subtrees on the
  // pool, depth-first within each task.
  {
    FmmScratch seq;
    std::vector<PairTask> pending;
    std::vector<PairTask> parallel_tasks;
    pending.push_back(PairTask{0, {0}});
    std::size_t head = 0;
    while (head < pending.size() &&
           (pending.size() - head) + parallel_tasks.size() <
               kFrontierTarget) {
      PairTask t = std::move(pending[head++]);
      if (cells_[t.target].leaf) {
        parallel_tasks.push_back(std::move(t));
        continue;
      }
      process_target(t, seq);
      for (int o = 0; o < 8; ++o) {
        if (cells_[t.target].children[o] >= 0) {
          pending.push_back(
              PairTask{static_cast<std::uint32_t>(cells_[t.target].children[o]),
                       seq.handoff});
        }
      }
    }
    for (; head < pending.size(); ++head) {
      parallel_tasks.push_back(std::move(pending[head]));
    }
    total += seq.stats;
    seq.stats = FmmStats{};

    pool.parallel_for(
        parallel_tasks.size(), /*grain=*/1,
        [&](std::size_t lo, std::size_t hi) {
          FmmScratch s;
          auto run = [&](auto&& self, PairTask& t) -> void {
            process_target(t, s);
            if (s.handoff.empty()) return;
            std::vector<std::uint32_t> handoff = s.handoff;
            const Cell& a = cells_[t.target];
            for (int o = 0; o < 8; ++o) {
              if (a.children[o] < 0) continue;
              PairTask child{static_cast<std::uint32_t>(a.children[o]),
                             handoff};
              self(self, child);
            }
          };
          for (std::size_t i = lo; i < hi; ++i) {
            run(run, parallel_tasks[i]);
          }
          std::lock_guard<std::mutex> lk(stats_mu);
          total += s.stats;
        });
  }

  // -------------------------------------------------------------------
  // Downward pass: L2L down to the leaves, L2P at every body. Reuses the
  // upward frontier: ancestors sequentially (parents before children),
  // then disjoint subtrees on the pool.
  // -------------------------------------------------------------------
  {
    const auto push_children = [&](std::uint32_t ci, FmmStats& st) {
      const Cell& c = cells_[ci];
      const double* lam = local.data() + ci * static_cast<std::size_t>(np);
      for (int o = 0; o < 8; ++o) {
        if (c.children[o] < 0) continue;
        const auto ch = static_cast<std::uint32_t>(c.children[o]);
        gravity::l2l(lam, c.mom.com, cells_[ch].mom.com, p,
                     local.data() + ch * static_cast<std::size_t>(np));
        ++st.l2l;
      }
    };
    for (std::uint32_t ci : ancestors) push_children(ci, total);

    const double l2p_work = static_cast<double>(gravity::fmm_flops_l2p(p));
    pool.parallel_for(
        frontier.size(), /*grain=*/1, [&](std::size_t lo, std::size_t hi) {
          FmmScratch s;
          auto down = [&](auto&& self, std::uint32_t ci) -> void {
            const Cell& c = cells_[ci];
            if (!c.leaf) {
              push_children(ci, s.stats);
              for (int o = 0; o < 8; ++o) {
                if (c.children[o] >= 0) {
                  self(self, static_cast<std::uint32_t>(c.children[o]));
                }
              }
              return;
            }
            if (c.count == 0) return;
            const double* lam =
                local.data() + ci * static_cast<std::size_t>(np);
            if (use_simd) {
              const std::size_t w = static_cast<std::size_t>(width);
              s.sxl.resize(w);
              s.syl.resize(w);
              s.szl.resize(w);
              s.axl.resize(w);
              s.ayl.resize(w);
              s.azl.resize(w);
              s.psil.resize(w);
              for (std::uint32_t b0 = c.first; b0 < c.first + c.count;
                   b0 += static_cast<std::uint32_t>(w)) {
                const std::size_t lanes =
                    std::min<std::size_t>(w, c.first + c.count - b0);
                for (std::size_t l = 0; l < lanes; ++l) {
                  const Vec3 d = bodies_[b0 + l].pos - c.mom.com;
                  s.sxl[l] = d.x;
                  s.syl[l] = d.y;
                  s.szl[l] = d.z;
                }
                for (std::size_t l = lanes; l < w; ++l) {
                  s.sxl[l] = s.syl[l] = s.szl[l] = 0.0;  // discarded
                }
                gravity::l2p_simd(lam, s.sxl.data(), s.syl.data(),
                                  s.szl.data(), p, s.axl.data(),
                                  s.ayl.data(), s.azl.data(), s.psil.data());
                for (std::size_t l = 0; l < lanes; ++l) {
                  Accel& acc = out[b0 + l];
                  acc.a += Vec3{s.axl[l], s.ayl[l], s.azl[l]};
                  acc.phi -= s.psil[l];
                }
              }
            } else {
              for (std::uint32_t i = c.first; i < c.first + c.count; ++i) {
                out[i] += gravity::l2p_scalar(lam, c.mom.com, bodies_[i].pos,
                                              p);
              }
            }
            s.stats.l2p += c.count;
            if (work) {
              for (std::uint32_t i = c.first; i < c.first + c.count; ++i) {
                (*work)[i] += l2p_work;
              }
            }
          };
          for (std::size_t i = lo; i < hi; ++i) down(down, frontier[i]);
          std::lock_guard<std::mutex> lk(stats_mu);
          total += s.stats;
        });
  }

  if (stats) *stats += total;
  return out;
}

}  // namespace ss::hot
