#include "hot/tree.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "gravity/batch.hpp"
#include "morton/sort.hpp"
#include "support/task_pool.hpp"

namespace ss::hot {

Tree::Tree(std::span<const Source> bodies, TreeConfig cfg)
    : Tree(bodies,
           [&] {
             std::vector<Vec3> pos(bodies.size());
             for (std::size_t i = 0; i < bodies.size(); ++i) {
               pos[i] = bodies[i].pos;
             }
             return morton::Box::bounding(pos.data(), pos.size());
           }(),
           cfg) {}

Tree::Tree(std::span<const Source> bodies, const morton::Box& box,
           TreeConfig cfg)
    : cfg_(cfg) {
  rebuild(bodies, box);
}

void Tree::rebuild(std::span<const Source> bodies, const morton::Box& box) {
  box_ = box;
  const auto n = static_cast<std::uint32_t>(bodies.size());

  // All containers below are resized/cleared, never reconstructed: a
  // persistent engine rebuilding at a stable particle count reuses the
  // previous step's allocations wholesale.
  // The lambdas below must go through this automatic reference: lambdas
  // do not capture thread_local variables, so naming the vector directly
  // inside a pool task would resolve to the *worker's* (empty) instance.
  thread_local std::vector<morton::Key> raw_keys_tls;
  auto& raw_keys = raw_keys_tls;
  raw_keys.resize(n);
  auto& pool = support::TaskPool::global();
  pool.parallel_for(n, /*grain=*/0, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      raw_keys[i] = morton::encode(bodies[i].pos, box_);
    }
  });
  // Stable radix sort: equal keys keep input order, the tie rule the old
  // comparator sort spelled explicitly.
  {
    thread_local morton::RadixScratch scratch;
    morton::radix_sort_permutation(raw_keys, scratch, perm_);
  }

  bodies_.resize(n);
  keys_.resize(n);
  pool.parallel_for(n, /*grain=*/0, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      bodies_[i] = bodies[perm_[i]];
      keys_[i] = raw_keys[perm_[i]];
    }
  });

  cells_.clear();
  cells_.reserve(n / 2 + 8);
  if (n > 0) {
    build_cell(morton::kRootKey, 0, n, 0);
  } else {
    Cell root;
    root.key = morton::kRootKey;
    cells_.push_back(root);
  }
  map_.clear();
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    map_.insert(cells_[i].key, i);
  }
}

std::uint32_t Tree::build_cell(morton::Key key, std::uint32_t lo,
                               std::uint32_t hi, int level) {
  const auto idx = static_cast<std::uint32_t>(cells_.size());
  cells_.emplace_back();
  cells_[idx].key = key;
  cells_[idx].first = lo;
  cells_[idx].count = hi - lo;

  if (hi - lo <= cfg_.bucket_size || level == morton::kMaxLevel) {
    cells_[idx].leaf = true;
    cells_[idx].mom = Moments::of_particles(
        std::span<const Source>(bodies_.data() + lo, hi - lo));
    return idx;
  }

  cells_[idx].leaf = false;
  Moments child_moms[8];
  int nchild = 0;
  std::uint32_t cursor = lo;
  for (int o = 0; o < 8 && cursor < hi; ++o) {
    const morton::Key ck = morton::child(key, o);
    // Bodies of child o occupy keys in [first_descendant, last_descendant].
    const morton::Key ck_hi = morton::last_descendant(ck);
    const auto end = static_cast<std::uint32_t>(
        std::upper_bound(keys_.begin() + cursor, keys_.begin() + hi, ck_hi) -
        keys_.begin());
    if (end > cursor) {
      const std::uint32_t child_idx = build_cell(ck, cursor, end, level + 1);
      cells_[idx].children[o] = static_cast<std::int32_t>(child_idx);
      child_moms[nchild++] = cells_[child_idx].mom;
      cursor = end;
    }
  }
  cells_[idx].mom =
      Moments::combine(std::span<const Moments>(child_moms, nchild));
  return idx;
}

const Cell* Tree::find(morton::Key k) const {
  const auto i = map_.find(k);
  return i ? &cells_[*i] : nullptr;
}

Accel Tree::accelerate(const Vec3& target, double theta, double eps2,
                       RsqrtMethod method, TraverseStats* stats) const {
  Accel out;
  if (bodies_.empty()) return out;
  std::vector<std::uint32_t> stack;
  stack.push_back(0);
  while (!stack.empty()) {
    const Cell& c = cells_[stack.back()];
    stack.pop_back();
    if (c.mom.mass == 0.0 && c.count == 0) continue;
    if (c.leaf) {
      out += gravity::interact(
          target,
          std::span<const Source>(bodies_.data() + c.first, c.count), eps2,
          method);
      if (stats) stats->body_interactions += c.count;
      continue;
    }
    if (gravity::mac_accept(c.mom, target, theta)) {
      out += gravity::evaluate(c.mom, target, eps2, method);
      if (stats) ++stats->cell_interactions;
      continue;
    }
    if (stats) ++stats->cells_opened;
    for (int o = 0; o < 8; ++o) {
      if (c.children[o] >= 0) {
        stack.push_back(static_cast<std::uint32_t>(c.children[o]));
      }
    }
  }
  return out;
}

std::vector<Accel> Tree::accelerate_all(const AccelParams& params,
                                        TraverseStats* stats) const {
  if (params.far_field == FarField::fmm) {
    FmmStats fs;
    std::vector<Accel> out = accelerate_fmm_all(params, stats ? &fs : nullptr);
    if (stats) {
      stats->body_interactions += fs.p2p;
      stats->cell_interactions += fs.m2l;
      stats->cells_opened += fs.pair_splits;
    }
    return out;
  }
  const double theta = params.theta;
  const double eps2 = params.eps2;
  const RsqrtMethod method = params.method;
  std::vector<Accel> out(bodies_.size());
  // Fork/join over the pool; per-chunk stats merge under a mutex (sums of
  // integers, so the merge order cannot change the totals).
  std::mutex stats_mu;
  support::TaskPool::global().parallel_for(
      bodies_.size(), /*grain=*/256, [&](std::size_t lo, std::size_t hi) {
        TraverseStats local;
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = accelerate(bodies_[i].pos, theta, eps2, method,
                              stats ? &local : nullptr);
        }
        if (stats) {
          std::lock_guard<std::mutex> lk(stats_mu);
          stats->body_interactions += local.body_interactions;
          stats->cell_interactions += local.cell_interactions;
          stats->cells_opened += local.cells_opened;
        }
      });
  return out;
}

std::vector<Accel> Tree::accelerate_group_all(const AccelParams& params,
                                              TraverseStats* stats) const {
  const double theta = params.theta;
  const double eps2 = params.eps2;
  const RsqrtMethod method = params.method;
  const bool use_simd = params.use_simd;
  std::vector<Accel> out(bodies_.size());
  if (bodies_.empty()) return out;

  // Fork/join over the leaf groups on the pool. Each chunk owns its walk
  // scratch and tiles; every group's result depends only on its own walk,
  // so the output is identical however chunks land on threads. Grain 8:
  // group costs are skewed (surface vs center buckets), so small chunks
  // give the stealing something to balance.
  std::mutex stats_mu;
  support::TaskPool::global().parallel_for(
      cells_.size(), /*grain=*/8, [&](std::size_t clo, std::size_t chi) {
        std::vector<std::uint32_t> stack, cell_list, leaf_list;
        gravity::SourcesSoA body_tile;
        gravity::CellsSoA cell_tile;
        gravity::TileScratch scratch;
        TraverseStats local;
        for (std::size_t ci = clo; ci < chi; ++ci) {
          const Cell& group = cells_[ci];
          if (!group.leaf || group.count == 0) continue;

          // One walk for the whole bucket. Group MAC: the cell must be
          // acceptable from every point of the group's bounding sphere,
          // i.e. (d - bmax_group) * theta > bmax_cell with d the center
          // distance.
          cell_list.clear();
          leaf_list.clear();
          stack.assign(1, 0u);
          while (!stack.empty()) {
            const Cell& c = cells_[stack.back()];
            stack.pop_back();
            if (c.mom.mass == 0.0 && c.count == 0) continue;
            if (c.leaf) {
              leaf_list.push_back(c.first);
              leaf_list.push_back(c.count);
              continue;
            }
            const double d = (c.mom.com - group.mom.com).norm();
            if ((d - group.mom.bmax) * theta > c.mom.bmax) {
              cell_list.push_back(
                  static_cast<std::uint32_t>(&c - cells_.data()));
              continue;
            }
            ++local.cells_opened;
            for (int o = 0; o < 8; ++o) {
              if (c.children[o] >= 0) {
                stack.push_back(static_cast<std::uint32_t>(c.children[o]));
              }
            }
          }

          // Transpose the shared lists into SoA tiles, then flush them
          // through the batched kernels for every body of the bucket. The
          // bucket's own bodies are in the tile too; the kernels mask the
          // r2 == 0 lane.
          body_tile.clear();
          cell_tile.clear();
          for (std::size_t l = 0; l < leaf_list.size(); l += 2) {
            body_tile.append(bodies_.data() + leaf_list[l], leaf_list[l + 1]);
          }
          for (std::uint32_t cc : cell_list) {
            cell_tile.push_back(cells_[cc].mom);
          }

          for (std::uint32_t b = group.first; b < group.first + group.count;
               ++b) {
            Accel acc;
            if (use_simd) {
              acc = gravity::interact_bodies_simd(bodies_[b].pos, body_tile,
                                                  eps2);
              acc += gravity::interact_cells_simd(bodies_[b].pos, cell_tile,
                                                  eps2);
            } else {
              acc = gravity::interact_bodies_batch(bodies_[b].pos, body_tile,
                                                   eps2, method, scratch);
              acc += gravity::interact_cells_batch(bodies_[b].pos, cell_tile,
                                                   eps2, method, scratch);
            }
            local.body_interactions += body_tile.size();
            local.cell_interactions += cell_tile.size();
            out[b] = acc;
          }
        }
        if (stats) {
          std::lock_guard<std::mutex> lk(stats_mu);
          stats->body_interactions += local.body_interactions;
          stats->cell_interactions += local.cell_interactions;
          stats->cells_opened += local.cells_opened;
        }
      });
  return out;
}

std::vector<std::uint32_t> Tree::neighbors_within(const Vec3& center,
                                                  double h) const {
  std::vector<std::uint32_t> out;
  if (bodies_.empty()) return out;
  const double h2 = h * h;
  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    const Cell& c = cells_[stack.back()];
    stack.pop_back();
    if (c.count == 0) continue;
    // Prune: the cell's bounding sphere about its center of mass.
    const double reach = c.mom.bmax + h;
    if ((center - c.mom.com).norm2() > reach * reach) continue;
    if (c.leaf) {
      for (std::uint32_t i = c.first; i < c.first + c.count; ++i) {
        if ((bodies_[i].pos - center).norm2() <= h2) out.push_back(i);
      }
      continue;
    }
    for (int o = 0; o < 8; ++o) {
      if (c.children[o] >= 0) {
        stack.push_back(static_cast<std::uint32_t>(c.children[o]));
      }
    }
  }
  return out;
}

}  // namespace ss::hot
