// The "hash" in Hashed Oct-Tree: an open-addressing table translating a
// Morton key into the index of the cell that stores its data. The level of
// indirection through this table is what lets the traversal treat local
// and non-local cells uniformly — a miss on a key that should exist under
// a remote branch is the signal to request data from its owner (paper
// Sec 4.2).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "morton/key.hpp"

namespace ss::hot {

/// Open-addressing (linear probing) Key -> uint32 map. Keys are octree
/// keys and therefore never 0, which serves as the empty marker. The table
/// supports insert and lookup only; trees are rebuilt, not edited.
class KeyMap {
 public:
  explicit KeyMap(std::size_t expected = 64) { rehash_for(expected); }

  void insert(morton::Key k, std::uint32_t value) {
    if ((size_ + 1) * 4 > slots_.size() * 3) rehash_for(slots_.size());
    insert_no_grow(k, value);
    ++size_;
  }

  /// Value for key k, or nullopt. Inserting an existing key overwrites.
  std::optional<std::uint32_t> find(morton::Key k) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = morton::hash_key(k) & mask;
    while (slots_[i].key != 0) {
      if (slots_[i].key == k) return slots_[i].value;
      i = (i + 1) & mask;
    }
    return std::nullopt;
  }

  bool contains(morton::Key k) const { return find(k).has_value(); }

  std::size_t size() const { return size_; }

  void clear() {
    for (auto& s : slots_) s = Slot{};
    size_ = 0;
  }

 private:
  struct Slot {
    morton::Key key = 0;
    std::uint32_t value = 0;
  };

  void insert_no_grow(morton::Key k, std::uint32_t value) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = morton::hash_key(k) & mask;
    while (slots_[i].key != 0 && slots_[i].key != k) i = (i + 1) & mask;
    if (slots_[i].key == k) {
      slots_[i].value = value;  // overwrite
      --size_;                  // caller will re-increment
    } else {
      slots_[i] = {k, value};
    }
  }

  void rehash_for(std::size_t want) {
    std::size_t cap = 16;
    while (cap * 3 < want * 8) cap <<= 1;  // keep load factor under 3/4
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    for (const Slot& s : old) {
      if (s.key != 0) insert_no_grow(s.key, s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace ss::hot
