// Distributed hashed oct-tree gravity (the paper's core algorithm,
// Sec 4.2), on top of vmpi + ABM.
//
// One force evaluation proceeds in the paper's stages:
//
//  1. *Domain decomposition*: bodies are routed to ranks by splitting the
//     Morton-ordered list into Np work-weighted pieces (decomp.hpp).
//  2. *Distributed tree build*: each rank builds a local tree over its
//     bodies, computes the minimal set of cells tiling its key range
//     ("branch" or cover cells, whose moments are globally correct because
//     the domain owns every body under them), and allgathers the cover
//     cells. Every rank assembles the shared *top tree* above the cover
//     cells by combining moments upward.
//  3. *Traversal with latency hiding*: each local body walks the global
//     tree. Cells above cover level come from the top tree; cells below a
//     local cover cell come from the local tree; cells below a remote
//     cover cell come from a software cache filled by asynchronous
//     batched requests to the owner. A walk that needs missing remote
//     data is parked ("explicit context switching using a software
//     queue", per the paper) and resumed when the reply arrives; other
//     walks proceed meanwhile.
//  4. *Termination*: a rank that has finished all walks and received all
//     replies reports QUIET to rank 0, which broadcasts DONE once every
//     rank is quiet (quietness is monotone: serving further requests
//     cannot create new local work).
//  5. *Cross-step communication avoidance* (GravityEngine): science runs
//     are multi-step, and while cell *values* (moments) change every step,
//     the *set* of remote cells a rank needs is temporally coherent. A
//     persistent engine keeps a ledger of the keys demanded last step and
//     bulk-requests them at the start of the next one (speculative
//     prefetch), parks at most one request per in-flight key (dedup), and
//     lets owners push the siblings of a requested cell in the same batch
//     (reply piggybacking). Values are never reused across steps — only
//     the request set is.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "hot/abm.hpp"
#include "hot/decomp.hpp"
#include "hot/tree.hpp"
#include "vmpi/comm.hpp"

namespace ss::hot {

/// A requested configuration cannot take effect on this run (e.g.
/// far_field = fmm on a multi-rank engine). Thrown at engine
/// construction when ParallelConfig::strict_config is set; otherwise the
/// engine degrades with a one-shot warning and an
/// integrity.config_fallbacks count.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

struct ParallelConfig {
  double theta = 0.6;
  double eps2 = 0.0;
  RsqrtMethod method = RsqrtMethod::libm;
  /// Far-field backend for the single-rank traversal: the classic
  /// treecode walks, or the dual-tree FMM (Cartesian local expansions,
  /// O(N)). Multi-rank runs always use the treecode walks — the FMM's
  /// local expansions would need remote M2L partners, which the
  /// latency-hiding machinery does not ship yet — so `fmm` falls back
  /// there: loudly (one-shot stderr warning + an
  /// integrity.config_fallbacks count), or as a ConfigError when
  /// strict_config is set.
  FarField far_field = FarField::treecode;
  /// Refuse degraded configurations instead of falling back: engine
  /// construction throws hot::ConfigError when a requested option cannot
  /// take effect (currently: far_field = fmm on a multi-rank comm).
  bool strict_config = false;
  /// FMM expansion order (see AccelParams::p_order).
  int p_order = 4;
  TreeConfig tree;
  DecompConfig decomp;
  Abm::Config abm;
  /// Charge virtual compute time for interactions (flops at the rank's
  /// modeled rate). Disable for pure-correctness tests.
  bool charge_compute = true;
  /// Gather accepted bodies/cells into SoA interaction-list tiles and
  /// flush them through the batched kernels (gravity/batch.hpp). Off =
  /// the scalar per-acceptance kernels (reference path; forces agree to
  /// <= 1e-12).
  bool batch_interactions = true;
  /// Tile capacities: a tile is flushed when full and when its walk
  /// parks or terminates.
  std::uint32_t tile_bodies = 2048;
  std::uint32_t tile_cells = 256;
  /// Flush tiles through the explicit-SIMD dispatched kernels
  /// (gravity::interact_*_simd; backend chosen at runtime, SS_SIMD
  /// overrides) instead of the auto-vectorized batch kernels. Only
  /// meaningful with batch_interactions; `method` is then ignored at
  /// flush time (the SIMD path always uses the Karp-seeded rsqrt).
  bool simd_kernels = true;
  /// Intra-rank work-stealing pool size for tree build/sort and the
  /// single-rank traversal. 0 = keep the process-wide default policy
  /// (SS_POOL_THREADS env, else hardware concurrency clamped to 16).
  /// The pool is process-global: the last engine constructed wins.
  int pool_threads = 0;
  /// Walks per task chunk for the pooled single-rank traversal.
  /// 0 = auto (256). Smaller chunks steal/balance better; larger ones
  /// amortize fork/join overhead.
  std::size_t pool_grain = 0;
  /// Speculative prefetch (GravityEngine only): bulk-request the remote
  /// keys demanded last step before walks start. Off = every remote cell
  /// is fetched on demand, as in the stateless path.
  bool prefetch = true;
  /// Drain prefetch replies before starting walks (deadlock-free: the
  /// settle loop is non-blocking and serves peers while it waits). Off =
  /// replies race the walks and residual misses park as usual.
  bool prefetch_settle = true;
  /// Owners answer a demand request for a cell by also pushing the
  /// expansions of its siblings in the same batch (spatially coherent
  /// walks almost always want them next).
  bool sibling_piggyback = true;
  /// Watchdog on the engine's settle/termination loops (real seconds;
  /// 0 disables). On a fabric that loses messages with no reliable
  /// transport underneath, a lost ABM reply would spin these loops
  /// forever; the watchdog turns the hang into a std::runtime_error
  /// carrying the transport's per-flow protocol state (when one is
  /// attached) so the stall is diagnosable instead of silent.
  double drain_timeout_seconds = 30.0;
  /// When non-empty and an obs::Session is attached to the Runtime, a
  /// watchdog stall dumps every rank's flight-recorder ring (plus the
  /// transport's per-flow dump) to this SSBLOCK1 postmortem file
  /// (io/postmortem.hpp) before the stall throws.
  std::string postmortem_path;
};

struct ParallelStats {
  TraverseStats traverse;
  std::uint64_t remote_requests = 0;  ///< Distinct keys fetched remotely.
  std::uint64_t requests_served = 0;  ///< Requests answered for peers.
  std::uint64_t walks_parked = 0;     ///< Context switches taken.
  /// Interaction-list accounting. Batched counts go through the SoA tile
  /// kernels; scalar counts through the per-acceptance reference kernels
  /// (batching disabled). The sums equal traverse.body/cell_interactions.
  std::uint64_t tile_flushes = 0;  ///< Body + cell tiles flushed.
  std::uint64_t batched_body_interactions = 0;
  std::uint64_t batched_cell_interactions = 0;
  std::uint64_t scalar_body_interactions = 0;
  std::uint64_t scalar_cell_interactions = 0;
  /// Mean interactions per tile flush (tile-size utilization).
  double mean_tile_occupancy() const {
    return tile_flushes == 0
               ? 0.0
               : static_cast<double>(batched_body_interactions +
                                     batched_cell_interactions) /
                     static_cast<double>(tile_flushes);
  }
  /// Communication-avoidance accounting (all zero on the stateless path).
  /// Invariant: remote_requests + requests_deduped equals the number of
  /// distinct remote keys the traversal demanded, which is a deterministic
  /// property of the decomposition — so the sum is invariant under
  /// prefetch and piggybacking even though its split shifts.
  std::uint64_t requests_deduped = 0;   ///< Demands satisfied without a post.
  std::uint64_t prefetch_issued = 0;    ///< Ledger keys bulk-requested.
  std::uint64_t prefetch_hits = 0;      ///< Prefetched keys demanded later.
  std::uint64_t prefetch_wasted = 0;    ///< Prefetched keys never demanded.
  std::uint64_t sibling_pushes = 0;     ///< Expansions pushed to peers.
  std::uint64_t unsolicited_expansions = 0;  ///< Pushed expansions accepted.
  /// Physical traffic this step (deltas of the rank's vmpi/ABM counters,
  /// so collectives and barriers are included — the honest message bill).
  std::uint64_t abm_batches = 0;
  std::uint64_t vmpi_messages = 0;
  std::uint64_t vmpi_bytes = 0;
  std::size_t local_bodies = 0;
  std::size_t local_cells = 0;
  std::size_t top_cells = 0;
  std::size_t cover_cells = 0;
  /// Virtual-time breakdown of the paper's algorithm stages (barrier-to-
  /// barrier, so each includes that stage's load imbalance).
  double decompose_seconds = 0.0;
  double build_seconds = 0.0;   ///< Local tree + cover exchange.
  double traverse_seconds = 0.0;
};

struct GravityResult {
  std::vector<Source> bodies;  ///< This rank's bodies after decomposition.
  std::vector<Accel> accel;    ///< Field at each body (self excluded).
  std::vector<double> work;    ///< Flop count per body; feed to next step.
  /// Aux payload passed to GravityEngine::step, routed/reordered with the
  /// bodies (aux[i*stride..] belongs to bodies[i]). Empty if none given.
  std::vector<double> aux;
  Domain domain;               ///< This rank's key range.
  ParallelStats stats;
};

/// Minimal set of cells whose descendant ranges exactly tile the inclusive
/// key range [lo, hi] (both maximum-depth keys).
std::vector<morton::Key> cover_cells(morton::Key lo, morton::Key hi);

/// Persistent distributed-gravity engine: owns all cross-step state (tree
/// and scratch arenas, interaction-list tiles, the ABM instance with its
/// buffer pool, and the remote-cell request ledger) so that a multi-step
/// run pays the latency-hiding machinery's setup once and amortizes the
/// request traffic across steps.
///
/// Lifetime/invalidation contract: every step redecomposes, rebuilds the
/// tree and clears the remote-cell cache — cell *values* are never reused
/// across steps (moments change as bodies move). Only the *request set*
/// survives: the keys demanded in step n seed the speculative prefetch of
/// step n+1, guarded against ownership changes from the redecomposition.
/// One engine per Comm (per rank thread); not thread-safe.
class GravityEngine {
 public:
  GravityEngine(ss::vmpi::Comm& comm, const ParallelConfig& cfg = {});
  ~GravityEngine();
  GravityEngine(const GravityEngine&) = delete;
  GravityEngine& operator=(const GravityEngine&) = delete;

  /// One force evaluation. `bodies` is this rank's current share (any
  /// distribution); `prev_work` the per-body weights from the previous
  /// step ({} on the first). `aux` optionally carries aux_stride doubles
  /// per body (e.g. velocities) that are routed through the decomposition
  /// with the bodies and returned in GravityResult::aux.
  GravityResult step(std::span<const Source> bodies,
                     std::span<const double> prev_work,
                     std::span<const double> aux = {},
                     std::size_t aux_stride = 0);

  /// Steps completed so far (the engine-reuse gauge).
  std::uint64_t steps_completed() const;
  /// Distinct remote keys demanded last step (next step's prefetch seed).
  std::size_t ledger_size() const;

  /// The request ledger itself: sorted distinct remote keys demanded last
  /// step. Valid until the next step() call. Checkpointing captures this
  /// so a restarted engine prefetches like the uninterrupted one.
  std::span<const morton::Key> ledger() const;
  /// Replace the ledger (restart path). Keys are sorted/deduplicated
  /// here; ownership changes are re-checked at prefetch time, so a stale
  /// seed is safe — at worst the speculation misses.
  void seed_ledger(std::span<const morton::Key> keys);

  /// The engine's local tree (rebuilt in place every step; arenas
  /// persist). Integrity hook: the structural audit walks it and the
  /// fault injector registers its cell arena as a corruption target.
  /// Valid after the first step() call, until the next one.
  Tree& tree();
  const Tree& tree() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One complete parallel force evaluation. `bodies` is this rank's current
/// share (any distribution); `prev_work` are per-body weights from the
/// previous step (pass {} for the first step). Thin one-shot wrapper over
/// GravityEngine: a fresh engine has an empty ledger, so no prefetch
/// happens and the behavior is the classic stateless evaluation.
GravityResult parallel_gravity(ss::vmpi::Comm& comm,
                               std::span<const Source> bodies,
                               std::span<const double> prev_work,
                               const ParallelConfig& cfg = {});

}  // namespace ss::hot
