#include "hot/decomp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "morton/sort.hpp"

namespace ss::hot {

using gravity::Source;
using morton::Key;

namespace {

/// Stable Morton ordering of `keys` into `order` (ties in input order —
/// the rule the old comparator sorts spelled as `a < b`; radix stability
/// supplies it for free). One scratch per thread makes repeated
/// decompositions allocation-free.
void morton_order(std::span<const Key> keys, std::vector<std::uint32_t>& order) {
  thread_local morton::RadixScratch scratch;
  morton::radix_sort_permutation(keys, scratch, order);
}

}  // namespace

int DecompResult::owner_of(Key max_depth_key) const {
  // Domains are contiguous and sorted; binary search on lower bounds.
  int lo = 0, hi = static_cast<int>(domains.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (domains[static_cast<std::size_t>(mid)].lo <= max_depth_key) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

int DecompResult::owner_of_cell(Key cell_key) const {
  return owner_of(morton::first_descendant(cell_key));
}

morton::Box global_box(ss::vmpi::Comm& comm,
                       std::span<const Source> bodies) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // min over (x,y,z), then max encoded as min of negation.
  double ext[6] = {kInf, kInf, kInf, kInf, kInf, kInf};
  for (const Source& b : bodies) {
    ext[0] = std::min(ext[0], b.pos.x);
    ext[1] = std::min(ext[1], b.pos.y);
    ext[2] = std::min(ext[2], b.pos.z);
    ext[3] = std::min(ext[3], -b.pos.x);
    ext[4] = std::min(ext[4], -b.pos.y);
    ext[5] = std::min(ext[5], -b.pos.z);
  }
  auto red = comm.allreduce(std::span<const double>(ext, 6),
                            [](double a, double b) { return std::min(a, b); });
  morton::Box box;
  if (!std::isfinite(red[0])) return box;  // no bodies anywhere
  const double span = std::max(
      {-red[3] - red[0], -red[4] - red[1], -red[5] - red[2], 1e-300});
  box.lo = {red[0], red[1], red[2]};
  box.size = span * (1.0 + 1e-9);
  return box;
}

std::vector<Key> weighted_splitters(std::span<const Key> sorted_keys,
                                    std::span<const double> weights,
                                    int parts) {
  std::vector<Key> splits;
  if (parts <= 1) return splits;
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0 || sorted_keys.empty()) {
    // Degenerate: split key space evenly.
    for (int r = 1; r < parts; ++r) {
      const unsigned __int128 span =
          (static_cast<unsigned __int128>(morton::last_descendant(
               morton::kRootKey)) -
           morton::first_descendant(morton::kRootKey)) +
          1;
      splits.push_back(morton::first_descendant(morton::kRootKey) +
                       static_cast<Key>(span * r / parts));
    }
    return splits;
  }
  double acc = 0.0;
  std::size_t i = 0;
  for (int r = 1; r < parts; ++r) {
    const double target = total * r / parts;
    // Assign the boundary item to whichever side its midpoint falls on.
    while (i < sorted_keys.size() && acc + 0.5 * weights[i] < target) {
      acc += weights[i];
      ++i;
    }
    // The boundary falls at element i: everything before it belongs to
    // earlier parts. Use its key as the (inclusive-lower) splitter.
    if (i < sorted_keys.size()) {
      splits.push_back(sorted_keys[i]);
    } else {
      // Saturate: the last key may be the maximal 64-bit key.
      const Key back = sorted_keys.back();
      splits.push_back(back == std::numeric_limits<Key>::max() ? back
                                                               : back + 1);
    }
  }
  return splits;
}

DecompResult decompose(ss::vmpi::Comm& comm, std::span<const Source> bodies,
                       std::span<const double> work, const morton::Box& box,
                       DecompConfig cfg, std::span<const double> aux,
                       std::size_t aux_stride) {
  const int p = comm.size();
  const auto n = bodies.size();
  if (!work.empty() && work.size() != n) {
    throw std::invalid_argument("decompose: work/bodies length mismatch");
  }
  if (aux_stride > 0 && aux.size() != n * aux_stride) {
    throw std::invalid_argument("decompose: aux length must be n*stride");
  }

  // Key and sort locally.
  std::vector<Key> raw(n);
  for (std::size_t i = 0; i < n; ++i) raw[i] = morton::encode(bodies[i].pos, box);
  std::vector<std::uint32_t> order;
  morton_order(raw, order);

  auto weight_of = [&](std::size_t i) {
    return work.empty() ? 1.0 : std::max(work[i], 1e-12);
  };

  // Weighted samples: walk the local work distribution and emit a sample
  // key every (local_total / samples) units of work.
  struct Sample {
    Key key;
    double weight;
  };
  double local_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) local_total += weight_of(i);
  std::vector<Sample> samples;
  const int s = std::max(cfg.samples_per_rank, 1);
  if (n > 0) {
    const double step = local_total / s;
    double acc = 0.0, next = step * 0.5;
    std::size_t emitted = 0;
    for (std::size_t i = 0; i < n && emitted < static_cast<std::size_t>(s);
         ++i) {
      acc += weight_of(order[i]);
      while (acc >= next && emitted < static_cast<std::size_t>(s)) {
        samples.push_back({raw[order[i]], step});
        next += step;
        ++emitted;
      }
    }
  }

  // Globalize the sample distribution and derive splitters. Every rank
  // computes identical splitters from the identical gathered list.
  auto all_samples = comm.allgather(
      std::span<const Sample>(samples.data(), samples.size()));
  // Order the gathered samples by key on the radix path too (stable, so
  // every rank derives identical splitters from the identical list).
  std::vector<Key> raw_sample_keys(all_samples.size());
  for (std::size_t i = 0; i < all_samples.size(); ++i) {
    raw_sample_keys[i] = all_samples[i].key;
  }
  std::vector<std::uint32_t> sample_order;
  morton_order(raw_sample_keys, sample_order);
  std::vector<Key> sample_keys(all_samples.size());
  std::vector<double> sample_w(all_samples.size());
  for (std::size_t i = 0; i < all_samples.size(); ++i) {
    sample_keys[i] = raw_sample_keys[sample_order[i]];
    sample_w[i] = all_samples[sample_order[i]].weight;
  }
  std::vector<Key> splits = weighted_splitters(sample_keys, sample_w, p);

  DecompResult result;
  result.domains.resize(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    result.domains[static_cast<std::size_t>(r)].lo =
        r == 0 ? morton::first_descendant(morton::kRootKey)
               : splits[static_cast<std::size_t>(r - 1)];
    result.domains[static_cast<std::size_t>(r)].hi =
        r == p - 1 ? morton::last_descendant(morton::kRootKey)
                   : splits[static_cast<std::size_t>(r)] - 1;
  }

  // Route bodies (with their weights) to their owners.
  struct BodyW {
    Source body;
    double weight;
  };
  std::vector<std::vector<BodyW>> outgoing(static_cast<std::size_t>(p));
  std::vector<std::vector<double>> aux_outgoing(
      aux_stride > 0 ? static_cast<std::size_t>(p) : 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t src = order[i];
    const int dst = result.owner_of(raw[src]);
    outgoing[static_cast<std::size_t>(dst)].push_back(
        {bodies[src], weight_of(src)});
    if (aux_stride > 0) {
      auto& ao = aux_outgoing[static_cast<std::size_t>(dst)];
      ao.insert(ao.end(), aux.begin() + static_cast<std::ptrdiff_t>(
                                            src * aux_stride),
                aux.begin() + static_cast<std::ptrdiff_t>(
                                  src * aux_stride + aux_stride));
    }
  }
  auto incoming = comm.alltoallv(outgoing);
  // The aux exchange mirrors the body exchange element-for-element: blocks
  // are built in the same per-destination order and alltoallv concatenates
  // rank blocks identically, so aux_incoming[i*stride ..] belongs to
  // incoming[i].
  std::vector<double> aux_incoming;
  if (aux_stride > 0) aux_incoming = comm.alltoallv(aux_outgoing);

  // Final local sort by key (same stable radix path as the first sort).
  std::vector<Key> in_keys(incoming.size());
  for (std::size_t i = 0; i < incoming.size(); ++i) {
    in_keys[i] = morton::encode(incoming[i].body.pos, box);
  }
  std::vector<std::uint32_t> in_order;
  morton_order(in_keys, in_order);
  result.bodies.reserve(incoming.size());
  result.work.reserve(incoming.size());
  result.keys.reserve(incoming.size());
  if (aux_stride > 0) result.aux.reserve(incoming.size() * aux_stride);
  for (std::uint32_t i : in_order) {
    result.bodies.push_back(incoming[i].body);
    result.work.push_back(incoming[i].weight);
    result.keys.push_back(in_keys[i]);
    if (aux_stride > 0) {
      const std::size_t off = static_cast<std::size_t>(i) * aux_stride;
      result.aux.insert(result.aux.end(), aux_incoming.begin() +
                                              static_cast<std::ptrdiff_t>(off),
                        aux_incoming.begin() +
                            static_cast<std::ptrdiff_t>(off + aux_stride));
    }
  }
  return result;
}

}  // namespace ss::hot
