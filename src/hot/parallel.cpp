#include "hot/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "gravity/batch.hpp"
#include "io/postmortem.hpp"
#include "obs/obs.hpp"
#include "support/task_pool.hpp"

namespace ss::hot {

using gravity::Moments;
using gravity::QuadTensor;
using morton::Key;

std::vector<Key> cover_cells(Key lo, Key hi) {
  std::vector<Key> cells;
  if (lo > hi) return cells;
  Key cursor = lo;
  for (;;) {
    // Grow the cell anchored at `cursor` as long as it stays aligned and
    // inside [cursor, hi].
    Key k = cursor;  // maximum-depth cell
    while (morton::level(k) > 0) {
      const Key up = morton::parent(k);
      if (morton::first_descendant(up) != cursor ||
          morton::last_descendant(up) > hi) {
        break;
      }
      k = up;
    }
    cells.push_back(k);
    const Key last = morton::last_descendant(k);
    if (last >= hi) break;
    cursor = last + 1;
  }
  return cells;
}

namespace {

// ---------------------------------------------------------------------------
// Wire formats (trivially copyable records for ABM channels).
// ---------------------------------------------------------------------------

struct WireCell {
  Key key = 0;
  double mass = 0.0;
  double com[3] = {0, 0, 0};
  double quad[6] = {0, 0, 0, 0, 0, 0};
  double bmax = 0.0;
  std::uint32_t count = 0;
  std::uint32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<WireCell>);

WireCell to_wire(Key key, const Moments& m, std::uint32_t count) {
  WireCell w;
  w.key = key;
  w.mass = m.mass;
  w.com[0] = m.com.x;
  w.com[1] = m.com.y;
  w.com[2] = m.com.z;
  w.quad[0] = m.quad.xx;
  w.quad[1] = m.quad.xy;
  w.quad[2] = m.quad.xz;
  w.quad[3] = m.quad.yy;
  w.quad[4] = m.quad.yz;
  w.quad[5] = m.quad.zz;
  w.bmax = m.bmax;
  w.count = count;
  return w;
}

Moments from_wire(const WireCell& w) {
  Moments m;
  m.mass = w.mass;
  m.com = {w.com[0], w.com[1], w.com[2]};
  m.quad.xx = w.quad[0];
  m.quad.xy = w.quad[1];
  m.quad.xz = w.quad[2];
  m.quad.yy = w.quad[3];
  m.quad.yz = w.quad[4];
  m.quad.zz = w.quad[5];
  m.bmax = w.bmax;
  return m;
}

// ABM channels. The demand/reply protocol (0-2) is the paper's; 3-4 are
// the termination protocol; 5-7 are the communication-avoidance layer:
// bulk prefetch requests (answered like demand requests but never
// piggybacked — the prefetch set already covers the siblings) and
// unsolicited sibling pushes (same payloads as the replies, but the
// receiver must not decrement its outstanding-request count for them).
constexpr std::uint32_t kChanRequest = 0;       // payload: Key
constexpr std::uint32_t kChanChildren = 1;      // payload: Key + WireCell[]
constexpr std::uint32_t kChanBodies = 2;        // payload: Key + Source[]
constexpr std::uint32_t kChanQuiet = 3;         // payload: none (to rank 0)
constexpr std::uint32_t kChanDone = 4;          // payload: none (from rank 0)
constexpr std::uint32_t kChanBulkRequest = 5;   // payload: Key (prefetch)
constexpr std::uint32_t kChanPushChildren = 6;  // payload: Key + WireCell[]
constexpr std::uint32_t kChanPushBodies = 7;    // payload: Key + Source[]

// ---------------------------------------------------------------------------
// Per-rank cached tree fragments and walk state.
// ---------------------------------------------------------------------------

struct TopCell {
  Moments mom;
  std::uint32_t count = 0;
  bool cover = false;
  int owner = -1;
  std::vector<Key> children;
};

struct RemoteCell {
  Moments mom;
  std::uint32_t count = 0;
  int owner = -1;
  bool expanded = false;
  bool leaf = false;
  std::vector<Key> children;
  std::vector<Source> bodies;
};

struct Walk {
  std::uint32_t body = 0;
  Vec3 pos;
  std::vector<Key> stack;
  Accel acc;
  std::uint64_t body_interactions = 0;
  std::uint64_t cell_interactions = 0;
  std::uint64_t cells_opened = 0;
  double park_start = 0.0;  ///< Virtual time of the last park (tracing only).
};

}  // namespace

// ---------------------------------------------------------------------------
// The persistent engine. All state lives here across steps; reset_step()
// clears the per-step portions (keeping their capacity) while the ledger,
// the ABM buffer pool, and every arena survive.
// ---------------------------------------------------------------------------

struct GravityEngine::Impl {
  Impl(ss::vmpi::Comm& comm, const ParallelConfig& cfg)
      : comm_(comm), cfg_(cfg), tree_(cfg.tree), abm_(comm, cfg.abm) {
    // A requested option that cannot take effect is surfaced here, once,
    // instead of degrading silently deep in the traversal.
    if (cfg.far_field == FarField::fmm && comm.size() > 1) {
      if (cfg.strict_config) {
        throw ConfigError(
            "far_field = fmm requires a single-rank comm (the FMM's M2L "
            "partners are not shipped remotely); refusing the treecode "
            "fallback because strict_config is set");
      }
      if (obs::Counter* c = obs::counter("integrity.config_fallbacks")) {
        c->add(1);
      }
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        std::fprintf(stderr,
                     "[hot] warning: far_field = fmm is single-rank only; "
                     "falling back to treecode walks on %d ranks "
                     "(set strict_config to make this an error)\n",
                     comm.size());
      }
    }
    // Observability: resolve the rank recorder (if any) and its counters
    // once; the traversal hot loop then pays one pointer test per event.
    obs_ = obs::tls();
    if (obs_ != nullptr) {
      auto& reg = obs_->registry();
      c_cache_hits_ = &reg.counter("hot.cache_hits");
      c_cache_misses_ = &reg.counter("hot.cache_misses");
      c_parked_ = &reg.counter("hot.walks_parked");
      c_resumed_ = &reg.counter("hot.walks_resumed");
      c_requests_ = &reg.counter("hot.remote_requests");
      c_served_ = &reg.counter("hot.requests_served");
      c_tile_flushes_ = &reg.counter("hot.tile_flushes");
      c_batched_ = &reg.counter("hot.batched_interactions");
      c_scalar_ = &reg.counter("hot.scalar_interactions");
      c_deduped_ = &reg.counter("hot.requests_deduped");
      c_prefetch_issued_ = &reg.counter("hot.prefetch_issued");
      c_prefetch_hits_ = &reg.counter("hot.prefetch_hits");
      c_prefetch_wasted_ = &reg.counter("hot.prefetch_wasted");
      c_pushes_ = &reg.counter("hot.sibling_pushes");
      h_park_ = &reg.histogram("hot.walk_park_seconds");
      h_tile_ = &reg.histogram("hot.tile_occupancy");
      c_pool_run_ = &reg.counter("pool.tasks_run");
      c_pool_stolen_ = &reg.counter("pool.tasks_stolen");
      c_pool_steals_failed_ = &reg.counter("pool.steals_failed");
      c_fmm_p2p_ = &reg.counter("fmm.p2p");
      c_fmm_m2l_ = &reg.counter("fmm.m2l");
      c_fmm_l2l_ = &reg.counter("fmm.l2l");
      c_fmm_l2p_ = &reg.counter("fmm.l2p");
      c_fmm_splits_ = &reg.counter("fmm.pair_splits");
    }
    // The work-stealing pool is process-global (tree build, Morton sort
    // and the pooled traversal all share it); a non-zero pool_threads
    // resizes it for every engine in the process.
    if (cfg.pool_threads > 0) {
      support::TaskPool::configure_global(cfg.pool_threads);
    }
    tiles_.body_tile.reserve(cfg.tile_bodies);
    tiles_.cell_tile.reserve(cfg.tile_cells);
    abm_.on(kChanRequest, [this](int src, std::span<const std::byte> p) {
      serve_request(src, p, cfg_.sibling_piggyback);
    });
    abm_.on(kChanChildren, [this](int src, std::span<const std::byte> p) {
      handle_children(src, p);
    });
    abm_.on(kChanBodies, [this](int src, std::span<const std::byte> p) {
      handle_bodies(src, p);
    });
    abm_.on(kChanQuiet, [this](int, std::span<const std::byte>) {
      ++quiet_count_;
    });
    abm_.on(kChanDone,
            [this](int, std::span<const std::byte>) { done_ = true; });
    abm_.on(kChanBulkRequest, [this](int src, std::span<const std::byte> p) {
      serve_request(src, p, /*piggyback=*/false);
    });
    abm_.on(kChanPushChildren, [this](int src, std::span<const std::byte> p) {
      handle_push_children(src, p);
    });
    abm_.on(kChanPushBodies, [this](int src, std::span<const std::byte> p) {
      handle_push_bodies(src, p);
    });
  }

  GravityResult step(std::span<const Source> bodies,
                     std::span<const double> prev_work,
                     std::span<const double> aux, std::size_t aux_stride);

  // -- per-step phases ------------------------------------------------------
  void reset_step();
  void exchange_cover();
  void prefetch();
  void run_walks(GravityResult& out);
  [[noreturn]] void drain_stall(const char* where);

  // -- protocol -------------------------------------------------------------
  void build_top(const std::vector<WireCell>& covers,
                 const std::vector<int>& owners);
  void serve_request(int src, std::span<const std::byte> payload,
                     bool piggyback);
  void push_expansion(int dst, const Cell& c);
  bool fill_children(std::span<const std::byte> payload, int src, Key* parent);
  bool fill_bodies(std::span<const std::byte> payload, int src, Key* key);
  void handle_children(int src, std::span<const std::byte> payload);
  void handle_bodies(int src, std::span<const std::byte> payload);
  void handle_push_children(int src, std::span<const std::byte> payload);
  void handle_push_bodies(int src, std::span<const std::byte> payload);

  // Interaction-list tiles, kernel scratch and flush accounting. One
  // context per traversal thread: the sequential walk loop uses the
  // engine's tiles_, the pooled single-rank loop gives each chunk its
  // own. Stats and histogram samples accumulate here (a pool worker must
  // never touch stats_ or the obs recorder — both are rank-thread-only)
  // and are drained on the rank thread by drain_tile_ctx().
  struct TileCtx {
    gravity::SourcesSoA body_tile;
    gravity::CellsSoA cell_tile;
    gravity::TileScratch scratch;
    std::uint64_t batched_body = 0;
    std::uint64_t batched_cell = 0;
    std::uint64_t scalar_body = 0;
    std::uint64_t scalar_cell = 0;
    std::uint64_t flushes = 0;
    std::vector<double> occupancy;  ///< hot.tile_occupancy samples
  };

  // -- traversal ------------------------------------------------------------
  /// Returns false if the walk parked waiting for remote data.
  bool advance(Walk& w, TileCtx& ctx);
  void park(Walk& w, Key k, int owner, std::uint32_t walk_idx,
            bool first_demand);
  void direct_local_range(Walk& w, TileCtx& ctx, Key cell);
  void unpark(Key k);

  // Interaction-list plumbing. Accepted body ranges and accepted cells are
  // gathered into the context's SoA tiles and flushed through the batched
  // kernels when a tile fills or the walk leaves advance() (within one
  // context the tiles are shared across walks, so they never outlive one
  // activation).
  void add_bodies(Walk& w, TileCtx& ctx, const Source* p, std::size_t n);
  void add_cell(Walk& w, TileCtx& ctx, const Moments& m);
  void flush_body_tile(Walk& w, TileCtx& ctx);
  void flush_cell_tile(Walk& w, TileCtx& ctx);
  void flush_tiles(Walk& w, TileCtx& ctx) {
    flush_body_tile(w, ctx);
    flush_cell_tile(w, ctx);
  }
  /// Folds a context's accounting into stats_ and the obs counters, then
  /// resets it (tile capacity kept). Rank thread only.
  void drain_tile_ctx(TileCtx& ctx);

  // -- persistent state -----------------------------------------------------
  ss::vmpi::Comm& comm_;
  ParallelConfig cfg_;  // owned copy: the engine outlives the call site
  Tree tree_;           // rebuilt in place each step (arenas reused)
  DecompResult dec_;    // refreshed each step
  Abm abm_;             // buffer pool and handler table persist

  /// Distinct remote keys demanded last step — next step's prefetch seed.
  std::vector<Key> ledger_;
  std::uint64_t steps_ = 0;

  // -- per-step state (cleared by reset_step, capacity kept) ----------------
  std::unordered_map<Key, TopCell> top_;
  std::unordered_map<Key, RemoteCell> remote_;
  std::unordered_set<Key> requested_;  ///< Keys with a request posted.
  std::unordered_set<Key> demanded_;   ///< Keys a walk needed expanded.
  std::unordered_set<std::uint64_t> pushed_;  ///< (parent,dst) push guards.
  std::vector<Key> prefetched_;        ///< Keys bulk-requested this step.
  std::unordered_map<Key, std::vector<std::uint32_t>> waiting_;

  std::vector<Walk> walks_;
  std::deque<std::uint32_t> ready_;
  std::uint64_t outstanding_ = 0;  // requests sent minus replies received

  // The rank thread's tile context, reused across every walk and flush:
  // the sequential traversal allocates nothing per walk after warm-up.
  TileCtx tiles_;

  int quiet_count_ = 0;  // rank 0 only
  bool sent_quiet_ = false;
  bool done_ = false;

  ParallelStats stats_;

  // Observability (all null when tracing is disabled).
  obs::Rank* obs_ = nullptr;
  obs::Counter* c_cache_hits_ = nullptr;
  obs::Counter* c_cache_misses_ = nullptr;
  obs::Counter* c_parked_ = nullptr;
  obs::Counter* c_resumed_ = nullptr;
  obs::Counter* c_requests_ = nullptr;
  obs::Counter* c_served_ = nullptr;
  obs::Counter* c_tile_flushes_ = nullptr;
  obs::Counter* c_batched_ = nullptr;
  obs::Counter* c_scalar_ = nullptr;
  obs::Counter* c_deduped_ = nullptr;
  obs::Counter* c_prefetch_issued_ = nullptr;
  obs::Counter* c_prefetch_hits_ = nullptr;
  obs::Counter* c_prefetch_wasted_ = nullptr;
  obs::Counter* c_pushes_ = nullptr;
  obs::Histogram* h_park_ = nullptr;  ///< hot.walk_park_seconds
  obs::Histogram* h_tile_ = nullptr;  ///< hot.tile_occupancy
  obs::Counter* c_pool_run_ = nullptr;
  obs::Counter* c_pool_stolen_ = nullptr;
  obs::Counter* c_pool_steals_failed_ = nullptr;
  obs::Counter* c_fmm_p2p_ = nullptr;
  obs::Counter* c_fmm_m2l_ = nullptr;
  obs::Counter* c_fmm_l2l_ = nullptr;
  obs::Counter* c_fmm_l2p_ = nullptr;
  obs::Counter* c_fmm_splits_ = nullptr;
  // Last-mirrored pool totals: the pool's counters are process-wide and
  // monotone, the obs counters per rank recorder — each step() adds the
  // delta on rank 0 only, so an aggregated summary is not multiplied by
  // the rank count.
  support::TaskPool::Stats pool_seen_;
};

void GravityEngine::Impl::drain_stall(const char* where) {
  std::string msg = "gravity engine: ";
  msg += where;
  msg += " made no progress for ";
  msg += std::to_string(cfg_.drain_timeout_seconds);
  msg += "s (rank " + std::to_string(comm_.rank()) + ", outstanding=" +
         std::to_string(outstanding_) +
         "); a message was likely lost below the reliability layer";
  const std::string flows = comm_.transport_dump();
  if (!flows.empty()) msg += "\ntransport flow state:\n" + flows;
  if (obs_ != nullptr) {
    obs_->flight(obs::FlightKind::kStall, comm_.rank(), 0,
                 cfg_.drain_timeout_seconds);
  }
  if (!cfg_.postmortem_path.empty()) {
    // Black box dump: every rank's flight-recorder ring (the stalled
    // peers' included — FlightRecorder::snapshot is cross-rank safe) plus
    // the transport's per-flow state. Atomic write: if several ranks
    // stall at once, each writes a complete file and the last wins.
    io::write_postmortem(cfg_.postmortem_path, comm_.observer(),
                         {msg.substr(0, msg.find('\n')), flows});
  }
  throw std::runtime_error(msg);
}

void GravityEngine::Impl::reset_step() {
  // Values are never reused across steps: moments change as bodies move,
  // so the remote cache, the top tree and every per-step set are cleared.
  // clear() keeps hash-table buckets and vector capacity, so a steady-state
  // step re-populates warm memory. The ledger_ (the request *set*) is the
  // one thing deliberately carried over.
  top_.clear();
  remote_.clear();
  requested_.clear();
  demanded_.clear();
  pushed_.clear();
  prefetched_.clear();
  waiting_.clear();
  walks_.clear();
  ready_.clear();
  outstanding_ = 0;
  quiet_count_ = 0;
  sent_quiet_ = false;
  done_ = false;
  stats_ = ParallelStats{};
  tiles_.body_tile.clear();
  tiles_.cell_tile.clear();
}

void GravityEngine::Impl::add_bodies(Walk& w, TileCtx& ctx, const Source* p,
                                     std::size_t n) {
  if (n == 0) return;
  w.body_interactions += n;
  if (!cfg_.batch_interactions) {
    w.acc += gravity::interact(w.pos, std::span<const Source>(p, n), cfg_.eps2,
                               cfg_.method);
    ctx.scalar_body += n;
    return;
  }
  const std::size_t cap = std::max<std::size_t>(cfg_.tile_bodies, 1);
  while (n > 0) {
    const std::size_t take = std::min(n, cap - ctx.body_tile.size());
    ctx.body_tile.append(p, take);
    p += take;
    n -= take;
    if (ctx.body_tile.size() >= cap) flush_body_tile(w, ctx);
  }
}

void GravityEngine::Impl::add_cell(Walk& w, TileCtx& ctx, const Moments& m) {
  ++w.cell_interactions;
  if (!cfg_.batch_interactions) {
    w.acc += gravity::evaluate(m, w.pos, cfg_.eps2, cfg_.method);
    ++ctx.scalar_cell;
    return;
  }
  ctx.cell_tile.push_back(m);
  if (ctx.cell_tile.size() >= std::max<std::size_t>(cfg_.tile_cells, 1)) {
    flush_cell_tile(w, ctx);
  }
}

void GravityEngine::Impl::flush_body_tile(Walk& w, TileCtx& ctx) {
  if (ctx.body_tile.empty()) return;
  if (cfg_.simd_kernels) {
    w.acc += gravity::interact_bodies_simd(w.pos, ctx.body_tile, cfg_.eps2);
  } else {
    w.acc += gravity::interact_bodies_batch(w.pos, ctx.body_tile, cfg_.eps2,
                                            cfg_.method, ctx.scratch);
  }
  ctx.batched_body += ctx.body_tile.size();
  ++ctx.flushes;
  ctx.occupancy.push_back(static_cast<double>(ctx.body_tile.size()));
  ctx.body_tile.clear();
}

void GravityEngine::Impl::flush_cell_tile(Walk& w, TileCtx& ctx) {
  if (ctx.cell_tile.empty()) return;
  if (cfg_.simd_kernels) {
    w.acc += gravity::interact_cells_simd(w.pos, ctx.cell_tile, cfg_.eps2);
  } else {
    w.acc += gravity::interact_cells_batch(w.pos, ctx.cell_tile, cfg_.eps2,
                                           cfg_.method, ctx.scratch);
  }
  ctx.batched_cell += ctx.cell_tile.size();
  ++ctx.flushes;
  ctx.occupancy.push_back(static_cast<double>(ctx.cell_tile.size()));
  ctx.cell_tile.clear();
}

void GravityEngine::Impl::drain_tile_ctx(TileCtx& ctx) {
  stats_.batched_body_interactions += ctx.batched_body;
  stats_.batched_cell_interactions += ctx.batched_cell;
  stats_.scalar_body_interactions += ctx.scalar_body;
  stats_.scalar_cell_interactions += ctx.scalar_cell;
  stats_.tile_flushes += ctx.flushes;
  if (obs_ != nullptr) {
    if (ctx.scalar_body + ctx.scalar_cell > 0) {
      c_scalar_->add(ctx.scalar_body + ctx.scalar_cell);
    }
    if (ctx.flushes > 0) {
      c_tile_flushes_->add(ctx.flushes);
      c_batched_->add(ctx.batched_body + ctx.batched_cell);
      for (double occ : ctx.occupancy) h_tile_->record(occ);
    }
  }
  ctx.batched_body = ctx.batched_cell = 0;
  ctx.scalar_body = ctx.scalar_cell = 0;
  ctx.flushes = 0;
  ctx.occupancy.clear();
}

void GravityEngine::Impl::exchange_cover() {
  const Domain dom = dec_.domains[static_cast<std::size_t>(comm_.rank())];
  std::vector<Key> cover = cover_cells(dom.lo, dom.hi);
  std::vector<WireCell> local_wire;
  local_wire.reserve(cover.size());
  for (Key k : cover) {
    if (const Cell* c = tree_.find(k)) {
      local_wire.push_back(to_wire(k, c->mom, c->count));
    } else {
      // No cell means either no bodies in range, or the bodies live in a
      // leaf above this cover cell. Compute moments from the key range.
      const auto& keys = tree_.keys();
      const auto lo = std::lower_bound(keys.begin(), keys.end(),
                                       morton::first_descendant(k));
      const auto hi = std::upper_bound(keys.begin(), keys.end(),
                                       morton::last_descendant(k));
      const auto first = static_cast<std::size_t>(lo - keys.begin());
      const auto count = static_cast<std::size_t>(hi - lo);
      const Moments m = Moments::of_particles(
          std::span<const Source>(tree_.bodies().data() + first, count));
      local_wire.push_back(to_wire(k, m, static_cast<std::uint32_t>(count)));
    }
  }
  stats_.cover_cells = local_wire.size();

  auto counts = comm_.allgather_value<std::uint32_t>(
      static_cast<std::uint32_t>(local_wire.size()));
  auto flat = comm_.allgather(
      std::span<const WireCell>(local_wire.data(), local_wire.size()));
  std::vector<int> owners;
  owners.reserve(flat.size());
  for (int r = 0; r < comm_.size(); ++r) {
    for (std::uint32_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i) {
      owners.push_back(r);
    }
  }
  build_top(flat, owners);
}

void GravityEngine::Impl::build_top(const std::vector<WireCell>& covers,
                                    const std::vector<int>& owners) {
  for (std::size_t i = 0; i < covers.size(); ++i) {
    TopCell tc;
    tc.mom = from_wire(covers[i]);
    tc.count = covers[i].count;
    tc.cover = true;
    tc.owner = owners[i];
    top_.emplace(covers[i].key, std::move(tc));
  }
  // Create ancestors level by level, deepest first.
  std::vector<Key> frontier;
  frontier.reserve(covers.size());
  for (const auto& w : covers) frontier.push_back(w.key);
  std::sort(frontier.begin(), frontier.end(), [](Key a, Key b) {
    return morton::level(a) != morton::level(b)
               ? morton::level(a) > morton::level(b)
               : a < b;
  });
  std::size_t i = 0;
  while (i < frontier.size()) {
    const int lev = morton::level(frontier[i]);
    if (lev == 0) break;
    // Group this level's keys into parents.
    std::vector<Key> parents;
    for (; i < frontier.size() && morton::level(frontier[i]) == lev; ++i) {
      const Key pk = morton::parent(frontier[i]);
      auto [it, created] = top_.try_emplace(pk);
      it->second.children.push_back(frontier[i]);
      if (created) parents.push_back(pk);
    }
    // Combine moments of freshly completed parents (children of a parent
    // all live at this level because cover ranges are disjoint and tiled).
    for (Key pk : parents) {
      TopCell& tc = top_[pk];
      std::vector<Moments> ms;
      ms.reserve(tc.children.size());
      tc.count = 0;
      for (Key ck : tc.children) {
        ms.push_back(top_[ck].mom);
        tc.count += top_[ck].count;
      }
      tc.mom = Moments::combine(ms);
    }
    // Parents join the frontier; keep level ordering by re-sorting the
    // remainder (parents are one level up, so they sort after this level).
    frontier.insert(frontier.end(), parents.begin(), parents.end());
    std::sort(frontier.begin() + static_cast<std::ptrdiff_t>(i),
              frontier.end(), [](Key a, Key b) {
                return morton::level(a) != morton::level(b)
                           ? morton::level(a) > morton::level(b)
                           : a < b;
              });
  }
  stats_.top_cells = top_.size();
}

void GravityEngine::Impl::serve_request(int src,
                                        std::span<const std::byte> payload,
                                        bool piggyback) {
  Key k;
  if (payload.size() != sizeof(Key)) {
    throw std::runtime_error("hot: bad request payload");
  }
  std::memcpy(&k, payload.data(), sizeof(Key));
  ++stats_.requests_served;
  if (obs_ != nullptr) c_served_->add(1);

  const Cell* c = tree_.find(k);
  if (c != nullptr && !c->leaf) {
    // Reply: parent key followed by the existing children's WireCells.
    std::vector<std::byte> buf(sizeof(Key));
    std::memcpy(buf.data(), &k, sizeof(Key));
    for (int o = 0; o < 8; ++o) {
      if (c->children[o] < 0) continue;
      const Cell& ch = tree_.cell(static_cast<std::uint32_t>(c->children[o]));
      const WireCell w = to_wire(ch.key, ch.mom, ch.count);
      const std::size_t off = buf.size();
      buf.resize(off + sizeof(WireCell));
      std::memcpy(buf.data() + off, &w, sizeof(WireCell));
    }
    abm_.post(src, kChanChildren, std::span<const std::byte>(buf));
  } else {
    // Leaf (or no explicit cell): reply with the bodies in k's key range.
    const Source* first = nullptr;
    std::size_t count = 0;
    if (c != nullptr) {
      first = tree_.bodies().data() + c->first;
      count = c->count;
    } else {
      const auto& keys = tree_.keys();
      const auto lo = std::lower_bound(keys.begin(), keys.end(),
                                       morton::first_descendant(k));
      const auto hi = std::upper_bound(keys.begin(), keys.end(),
                                       morton::last_descendant(k));
      first = tree_.bodies().data() + (lo - keys.begin());
      count = static_cast<std::size_t>(hi - lo);
    }
    std::vector<std::byte> buf(sizeof(Key) + count * sizeof(Source));
    std::memcpy(buf.data(), &k, sizeof(Key));
    if (count > 0) {
      std::memcpy(buf.data() + sizeof(Key), first, count * sizeof(Source));
    }
    abm_.post(src, kChanBodies, std::span<const std::byte>(buf));
  }

  // Reply piggybacking: a walk that opened cell k will, with high
  // probability, also open k's siblings (spatial coherence along the
  // Morton curve). Push their expansions unsolicited in the same batch —
  // after the solicited reply, so the requester's pending slot resolves
  // first. Only when the whole parent lies inside our domain (its
  // children's moments are then globally correct) and only once per
  // (parent, destination): the guard is a hash, and a collision merely
  // suppresses an optimization.
  if (piggyback && morton::level(k) > 0 && comm_.size() > 1) {
    const Key parent = morton::parent(k);
    const Domain& mine = dec_.domains[static_cast<std::size_t>(comm_.rank())];
    if (mine.contains(morton::first_descendant(parent)) &&
        mine.contains(morton::last_descendant(parent))) {
      const std::uint64_t guard =
          parent ^ (static_cast<std::uint64_t>(src) * 0x9E3779B97F4A7C15ULL);
      if (pushed_.insert(guard).second) {
        if (const Cell* pc = tree_.find(parent); pc != nullptr && !pc->leaf) {
          for (int o = 0; o < 8; ++o) {
            if (pc->children[o] < 0) continue;
            const Cell& sib =
                tree_.cell(static_cast<std::uint32_t>(pc->children[o]));
            if (sib.key == k) continue;
            push_expansion(src, sib);
            ++stats_.sibling_pushes;
            if (obs_ != nullptr) c_pushes_->add(1);
          }
        }
      }
    }
  }
}

void GravityEngine::Impl::push_expansion(int dst, const Cell& c) {
  if (!c.leaf) {
    std::vector<std::byte> buf(sizeof(Key));
    std::memcpy(buf.data(), &c.key, sizeof(Key));
    for (int o = 0; o < 8; ++o) {
      if (c.children[o] < 0) continue;
      const Cell& ch = tree_.cell(static_cast<std::uint32_t>(c.children[o]));
      const WireCell w = to_wire(ch.key, ch.mom, ch.count);
      const std::size_t off = buf.size();
      buf.resize(off + sizeof(WireCell));
      std::memcpy(buf.data() + off, &w, sizeof(WireCell));
    }
    abm_.post(dst, kChanPushChildren, std::span<const std::byte>(buf));
    return;
  }
  std::vector<std::byte> buf(sizeof(Key) +
                             static_cast<std::size_t>(c.count) * sizeof(Source));
  std::memcpy(buf.data(), &c.key, sizeof(Key));
  if (c.count > 0) {
    std::memcpy(buf.data() + sizeof(Key), tree_.bodies().data() + c.first,
                static_cast<std::size_t>(c.count) * sizeof(Source));
  }
  abm_.post(dst, kChanPushBodies, std::span<const std::byte>(buf));
}

/// Fills the remote cache from a children payload. Idempotent: if the key
/// is already expanded (a push raced the solicited reply, or vice versa)
/// nothing is touched and false is returned — the payloads are identical
/// by construction, so dropping the duplicate is exact.
bool GravityEngine::Impl::fill_children(std::span<const std::byte> payload,
                                        int src, Key* parent) {
  if (payload.size() < sizeof(Key) ||
      (payload.size() - sizeof(Key)) % sizeof(WireCell) != 0) {
    throw std::runtime_error("hot: bad children payload");
  }
  std::memcpy(parent, payload.data(), sizeof(Key));
  RemoteCell& rc = remote_[*parent];
  if (rc.expanded) return false;
  const std::size_t n = (payload.size() - sizeof(Key)) / sizeof(WireCell);
  rc.expanded = true;
  rc.leaf = false;
  for (std::size_t i = 0; i < n; ++i) {
    WireCell w;
    std::memcpy(&w, payload.data() + sizeof(Key) + i * sizeof(WireCell),
                sizeof(WireCell));
    rc.children.push_back(w.key);
    RemoteCell& child = remote_[w.key];
    // Always refresh the child's summary data: a direct (prefetch)
    // expansion of the child may have landed before this parent reply,
    // and that fill sets only the expansion — the moments and count come
    // from here. The wire values are the owner's current-step tree state
    // either way, so overwriting is exact. Only the expansion itself
    // (children/bodies) keeps its identity.
    child.mom = from_wire(w);
    child.count = w.count;
    child.owner = src;
  }
  return true;
}

bool GravityEngine::Impl::fill_bodies(std::span<const std::byte> payload,
                                      int src, Key* key) {
  if (payload.size() < sizeof(Key) ||
      (payload.size() - sizeof(Key)) % sizeof(Source) != 0) {
    throw std::runtime_error("hot: bad bodies payload");
  }
  std::memcpy(key, payload.data(), sizeof(Key));
  RemoteCell& rc = remote_[*key];
  if (rc.expanded) return false;
  const std::size_t n = (payload.size() - sizeof(Key)) / sizeof(Source);
  rc.expanded = true;
  rc.leaf = true;
  rc.owner = src;
  rc.bodies.resize(n);
  if (n > 0) {
    std::memcpy(rc.bodies.data(), payload.data() + sizeof(Key),
                n * sizeof(Source));
  }
  return true;
}

void GravityEngine::Impl::handle_children(int src,
                                          std::span<const std::byte> payload) {
  Key parent;
  fill_children(payload, src, &parent);
  --outstanding_;  // solicited: always balances a posted request
  unpark(parent);
}

void GravityEngine::Impl::handle_bodies(int src,
                                        std::span<const std::byte> payload) {
  Key k;
  fill_bodies(payload, src, &k);
  --outstanding_;  // solicited: always balances a posted request
  unpark(k);
}

void GravityEngine::Impl::handle_push_children(
    int src, std::span<const std::byte> payload) {
  Key parent;
  if (fill_children(payload, src, &parent)) ++stats_.unsolicited_expansions;
  unpark(parent);  // a walk may have parked while the push was in flight
}

void GravityEngine::Impl::handle_push_bodies(
    int src, std::span<const std::byte> payload) {
  Key k;
  if (fill_bodies(payload, src, &k)) ++stats_.unsolicited_expansions;
  unpark(k);
}

void GravityEngine::Impl::unpark(Key k) {
  auto it = waiting_.find(k);
  if (it == waiting_.end()) return;
  if (obs_ != nullptr) {
    c_resumed_->add(it->second.size());
    const double now = obs_->now();
    for (std::uint32_t w : it->second) {
      const double parked =
          now - walks_[static_cast<std::size_t>(w)].park_start;
      h_park_->record(parked > 0.0 ? parked : 0.0);
    }
    obs_->flight(obs::FlightKind::kUnpark, -1, k,
                 static_cast<double>(it->second.size()));
  }
  for (std::uint32_t w : it->second) ready_.push_back(w);
  waiting_.erase(it);
}

void GravityEngine::Impl::park(Walk& w, Key k, int owner,
                               std::uint32_t walk_idx, bool first_demand) {
  w.stack.push_back(k);  // retry this key on resume
  waiting_[k].push_back(walk_idx);
  ++stats_.walks_parked;
  if (obs_ != nullptr) {
    c_parked_->add(1);
    w.park_start = obs_->now();
    obs_->flight(obs::FlightKind::kPark, owner, k, 0.0);
  }
  if (requested_.insert(k).second) {
    abm_.post_value(owner, kChanRequest, k);
    ++stats_.remote_requests;
    ++outstanding_;
    if (obs_ != nullptr) c_requests_->add(1);
  } else if (first_demand) {
    // The key is already in flight (a prefetch posted it); this demand
    // parks on the pending slot instead of re-posting.
    ++stats_.requests_deduped;
    if (obs_ != nullptr) c_deduped_->add(1);
  }
}

void GravityEngine::Impl::direct_local_range(Walk& w, TileCtx& ctx, Key cell) {
  const auto& keys = tree_.keys();
  const auto lo = std::lower_bound(keys.begin(), keys.end(),
                                   morton::first_descendant(cell));
  const auto hi = std::upper_bound(keys.begin(), keys.end(),
                                   morton::last_descendant(cell));
  const auto first = static_cast<std::size_t>(lo - keys.begin());
  const auto count = static_cast<std::size_t>(hi - lo);
  add_bodies(w, ctx, tree_.bodies().data() + first, count);
}

bool GravityEngine::Impl::advance(Walk& w, TileCtx& ctx) {
  const auto walk_idx = static_cast<std::uint32_t>(&w - walks_.data());
  while (!w.stack.empty()) {
    const Key k = w.stack.back();
    w.stack.pop_back();

    // Resolution order: shared top tree, then the local tree (below local
    // cover cells), then the remote cache (below remote cover cells).
    if (auto it = top_.find(k); it != top_.end()) {
      const TopCell& tc = it->second;
      if (tc.count == 0) continue;
      if (gravity::mac_accept(tc.mom, w.pos, cfg_.theta)) {
        add_cell(w, ctx, tc.mom);
        continue;
      }
      ++w.cells_opened;
      if (!tc.cover) {
        for (Key ck : tc.children) w.stack.push_back(ck);
        continue;
      }
      if (tc.owner == comm_.rank()) {
        if (const Cell* c = tree_.find(k)) {
          if (c->leaf) {
            add_bodies(w, ctx, tree_.bodies().data() + c->first, c->count);
          } else {
            for (int o = 0; o < 8; ++o) {
              if (c->children[o] >= 0) {
                w.stack.push_back(
                    tree_.cell(static_cast<std::uint32_t>(c->children[o])).key);
              }
            }
          }
        } else {
          // Bodies live in a leaf above the cover cell.
          direct_local_range(w, ctx, k);
        }
        continue;
      }
      // Remote cover cell: treated like any remote cell below. This is a
      // demand point: the walk needs k's expansion. First demands are
      // counted exactly once — as a posted request, or as a dedup when
      // the expansion is already in flight or already cached.
      RemoteCell& rc = remote_[k];
      if (rc.owner < 0) {
        rc.mom = tc.mom;
        rc.count = tc.count;
        rc.owner = tc.owner;
      }
      const bool first_demand = demanded_.insert(k).second;
      if (!rc.expanded) {
        if (obs_ != nullptr) c_cache_misses_->add(1);
        park(w, k, rc.owner, walk_idx, first_demand);
        flush_tiles(w, ctx);  // tiles are context-shared; don't leak across walks
        return false;
      }
      if (first_demand) {
        // Satisfied without a demand post (prefetch or sibling push).
        ++stats_.requests_deduped;
        if (obs_ != nullptr) c_deduped_->add(1);
      }
      if (obs_ != nullptr) c_cache_hits_->add(1);
      if (rc.leaf) {
        add_bodies(w, ctx, rc.bodies.data(), rc.bodies.size());
      } else {
        for (Key ck : rc.children) w.stack.push_back(ck);
      }
      continue;
    }

    if (const Cell* c = tree_.find(k)) {
      if (c->count == 0) continue;
      if (c->leaf) {
        add_bodies(w, ctx, tree_.bodies().data() + c->first, c->count);
        continue;
      }
      if (gravity::mac_accept(c->mom, w.pos, cfg_.theta)) {
        add_cell(w, ctx, c->mom);
        continue;
      }
      ++w.cells_opened;
      for (int o = 0; o < 8; ++o) {
        if (c->children[o] >= 0) {
          w.stack.push_back(
              tree_.cell(static_cast<std::uint32_t>(c->children[o])).key);
        }
      }
      continue;
    }

    auto rit = remote_.find(k);
    if (rit == remote_.end()) {
      throw std::logic_error("hot: traversal reached unknown key");
    }
    RemoteCell& rc = rit->second;
    if (rc.count == 0) continue;
    if (gravity::mac_accept(rc.mom, w.pos, cfg_.theta)) {
      add_cell(w, ctx, rc.mom);
      continue;
    }
    ++w.cells_opened;
    // Demand point (see the cover-cell branch above for the accounting).
    const bool first_demand = demanded_.insert(k).second;
    if (!rc.expanded) {
      if (obs_ != nullptr) c_cache_misses_->add(1);
      park(w, k, rc.owner, walk_idx, first_demand);
      flush_tiles(w, ctx);  // tiles are context-shared; don't leak across walks
      return false;
    }
    if (first_demand) {
      ++stats_.requests_deduped;
      if (obs_ != nullptr) c_deduped_->add(1);
    }
    if (obs_ != nullptr) c_cache_hits_->add(1);
    if (rc.leaf) {
      add_bodies(w, ctx, rc.bodies.data(), rc.bodies.size());
    } else {
      for (Key ck : rc.children) w.stack.push_back(ck);
    }
  }
  // Walk complete: drain this walk's pending interaction lists.
  flush_tiles(w, ctx);
  return true;
}

void GravityEngine::Impl::prefetch() {
  if (!cfg_.prefetch || ledger_.empty() || comm_.size() == 1) return;
  if (obs_ != nullptr) obs_->begin("gravity.prefetch");
  // Bulk-request last step's demanded keys from their (new) owners — one
  // ABM batch per owner instead of a trickle of demand posts during the
  // traversal. The redecomposition may have moved ownership, so each key
  // is guarded: skip keys now local and keys whose descendant range
  // straddles a domain boundary (no single owner could answer exactly).
  const int self = comm_.rank();
  for (Key k : ledger_) {
    const int owner = dec_.owner_of(morton::first_descendant(k));
    if (owner == self || owner != dec_.owner_of(morton::last_descendant(k))) {
      continue;
    }
    if (!requested_.insert(k).second) continue;
    abm_.post_value(owner, kChanBulkRequest, k);
    ++stats_.prefetch_issued;
    ++outstanding_;
    prefetched_.push_back(k);
    if (obs_ != nullptr) c_prefetch_issued_->add(1);
  }
  abm_.flush();
  if (cfg_.prefetch_settle) {
    // Drain replies before walks start so the first walks already find a
    // hot cache. Deadlock-free: poll() is non-blocking and serves peers'
    // bulk requests, and ranks that skip the loop proceed into the main
    // walk loop, which also polls.
    auto settle_progress = std::chrono::steady_clock::now();
    while (outstanding_ > 0) {
      if (abm_.poll() == 0) {
        if (cfg_.drain_timeout_seconds > 0 &&
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          settle_progress)
                    .count() > cfg_.drain_timeout_seconds) {
          drain_stall("prefetch settle loop");
        }
        std::this_thread::yield();
      } else {
        settle_progress = std::chrono::steady_clock::now();
      }
      abm_.flush();
    }
  }
  if (obs_ != nullptr) obs_->end();  // gravity.prefetch
}

void GravityEngine::Impl::run_walks(GravityResult& out) {
  const auto n = tree_.bodies().size();

  // Dual-tree FMM backend (single-rank only; multi-rank falls through to
  // the treecode walks — see ParallelConfig::far_field). The prefetch
  // ledger machinery is moot here: everything resolves locally.
  if (cfg_.far_field == FarField::fmm && comm_.size() == 1) {
    if (obs_ != nullptr) obs_->begin("gravity.traverse");
    AccelParams params;
    params.theta = cfg_.theta;
    params.eps2 = cfg_.eps2;
    params.method = cfg_.method;
    params.far_field = FarField::fmm;
    params.p_order = cfg_.p_order;
    params.use_simd = cfg_.batch_interactions && cfg_.simd_kernels;
    FmmStats fs;
    out.accel = tree_.accelerate_fmm_all(params, &fs, &out.work);
    const int p = std::clamp(params.p_order, gravity::kFmmMinOrder,
                             gravity::kFmmMaxOrder);
    const std::uint64_t flops = fs.flops(p);
    stats_.traverse.body_interactions += fs.p2p;
    stats_.traverse.cell_interactions += fs.m2l;
    stats_.traverse.cells_opened += fs.pair_splits;
    if (params.use_simd) {
      stats_.batched_body_interactions += fs.p2p;
      stats_.batched_cell_interactions += fs.m2l;
    } else {
      stats_.scalar_body_interactions += fs.p2p;
      stats_.scalar_cell_interactions += fs.m2l;
    }
    if (cfg_.charge_compute) comm_.compute_work(flops, 0);
    // Trivially quiet: no remote traffic exists on one rank.
    sent_quiet_ = true;
    done_ = true;
    if (obs_ != nullptr) {
      c_fmm_p2p_->add(fs.p2p);
      c_fmm_m2l_->add(fs.m2l);
      c_fmm_l2l_->add(fs.l2l);
      c_fmm_l2p_->add(fs.l2p);
      c_fmm_splits_->add(fs.pair_splits);
      obs_->registry().gauge("fmm.p_order").set(static_cast<double>(p));
      obs_->end();  // gravity.traverse
      obs_->begin("gravity.terminate");
      obs_->end();
      obs_->registry()
          .gauge("gravity.work_flops")
          .set(static_cast<double>(flops));
      obs_->registry()
          .gauge("gravity.local_bodies")
          .set(static_cast<double>(n));
    }
    return;
  }
  walks_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    walks_[i].body = static_cast<std::uint32_t>(i);
    walks_[i].pos = tree_.bodies()[i].pos;
    walks_[i].stack.clear();
    walks_[i].stack.push_back(morton::kRootKey);
    walks_[i].acc = Accel{};
    walks_[i].body_interactions = 0;
    walks_[i].cell_interactions = 0;
    walks_[i].cells_opened = 0;
    ready_.push_back(static_cast<std::uint32_t>(i));
  }
  std::size_t completed = 0;

  // Speculative prefetch from last step's ledger. Runs after the cover
  // barrier (every rank can serve) and inside this loop's phase so no
  // rank ever blocks in a collective while a peer waits on its replies.
  prefetch();

  // Trace the paper's stage 3/4 split: "traverse" is this rank walking
  // its bodies (parking on remote misses), "terminate" is the tail where
  // local walks are done and the rank only serves peers and waits for
  // the quiet/done protocol.
  bool in_terminate = false;
  if (obs_ != nullptr) obs_->begin("gravity.traverse");

  const bool single = comm_.size() == 1;
  auto& pool = support::TaskPool::global();
  if (single && pool.size() > 1 && n > 0) {
    // Single-rank traversal on the work-stealing pool. With one rank
    // every key resolves locally (the rank owns every cover cell), so a
    // walk can never park: advance() completes in one call and no ABM
    // traffic exists to poll. Each chunk owns a TileCtx, and a walk's
    // tiles start empty and are flushed before it returns, so every
    // walk's result is bitwise identical to the sequential loop's no
    // matter which thread runs which chunk. Stats/obs accounting rides
    // in the contexts and is drained on this (the rank) thread below.
    std::mutex merge_mu;
    std::vector<TileCtx> done_ctxs;
    const std::size_t grain = cfg_.pool_grain > 0 ? cfg_.pool_grain : 256;
    pool.parallel_for(
        n, static_cast<std::ptrdiff_t>(grain),
        [&](std::size_t lo, std::size_t hi) {
          TileCtx ctx;
          ctx.body_tile.reserve(cfg_.tile_bodies);
          ctx.cell_tile.reserve(cfg_.tile_cells);
          for (std::size_t i = lo; i < hi; ++i) {
            if (!advance(walks_[i], ctx)) {
              throw std::logic_error(
                  "hot: walk parked in single-rank pooled traversal");
            }
          }
          std::lock_guard<std::mutex> lk(merge_mu);
          done_ctxs.push_back(std::move(ctx));
        });
    for (TileCtx& ctx : done_ctxs) drain_tile_ctx(ctx);
    completed = n;
    ready_.clear();
    // The termination protocol collapses: this rank is trivially quiet.
    sent_quiet_ = true;
    ++quiet_count_;
    done_ = true;
    if (obs_ != nullptr) {
      obs_->end();  // gravity.traverse
      obs_->begin("gravity.terminate");
      in_terminate = true;
    }
  }
  auto walk_progress = std::chrono::steady_clock::now();
  while (!done_) {
    // Service incoming traffic first so replies unpark walks promptly.
    const std::size_t handled = abm_.poll();
    if (handled == 0 && ready_.empty() && !single) {
      // Idle: no traffic served, no walk runnable. On a fabric that can
      // lose an ABM reply (raw fault injection, no reliable transport)
      // this state can be permanent; the watchdog turns the silent spin
      // into a diagnosable error instead of a hung run.
      if (cfg_.drain_timeout_seconds > 0 &&
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        walk_progress)
                  .count() > cfg_.drain_timeout_seconds) {
        drain_stall("walk/termination loop");
      }
      std::this_thread::yield();  // idle: let peer rank threads progress
    } else {
      walk_progress = std::chrono::steady_clock::now();
    }

    std::size_t burst = 0;
    while (!ready_.empty() && burst < 256) {
      const std::uint32_t idx = ready_.front();
      ready_.pop_front();
      if (advance(walks_[idx], tiles_)) ++completed;
      ++burst;
    }
    abm_.flush();

    if (completed == n && outstanding_ == 0 && !sent_quiet_) {
      sent_quiet_ = true;
      if (obs_ != nullptr && !in_terminate) {
        obs_->end();  // gravity.traverse
        obs_->begin("gravity.terminate");
        in_terminate = true;
      }
      if (comm_.rank() == 0) {
        ++quiet_count_;
      } else {
        abm_.post_value<std::uint8_t>(0, kChanQuiet, 1);
        abm_.flush();
      }
    }
    if (comm_.rank() == 0 && quiet_count_ == comm_.size()) {
      for (int r = 1; r < comm_.size(); ++r) {
        abm_.post_value<std::uint8_t>(r, kChanDone, 1);
      }
      abm_.flush();
      done_ = true;
    }
    if (single && sent_quiet_) done_ = true;
  }

  if (!single) {
    // Unsolicited sibling pushes can still be undelivered when DONE
    // arrives (a push batch raced the quiet protocol). Drain them now so
    // step n+1's mailbox starts clean: after the barrier every rank has
    // left its loop, and vmpi enqueues messages synchronously at send
    // time, so a single non-blocking poll sees everything outstanding.
    comm_.barrier();
    abm_.poll();
  }

  if (obs_ != nullptr) {
    if (!in_terminate) {
      obs_->end();  // gravity.traverse (no separate termination tail seen)
      obs_->begin("gravity.terminate");
    }
    obs_->end();  // gravity.terminate
  }

  // Fold the rank thread's tile accounting into stats_ (the pooled path
  // drained its per-chunk contexts already; on that path this is empty).
  drain_tile_ctx(tiles_);

  // Collect results and per-body work estimates (flops, the paper's
  // weighting for the next decomposition).
  out.accel.resize(n);
  out.work.resize(n);
  std::uint64_t flops = 0;
  for (const Walk& w : walks_) {
    out.accel[w.body] = w.acc;
    const std::uint64_t wf =
        w.body_interactions * gravity::kFlopsPerInteraction +
        w.cell_interactions * gravity::kFlopsPerCellInteraction;
    out.work[w.body] = static_cast<double>(wf);
    flops += wf;
    stats_.traverse.body_interactions += w.body_interactions;
    stats_.traverse.cell_interactions += w.cell_interactions;
    stats_.traverse.cells_opened += w.cells_opened;
  }
  if (cfg_.charge_compute) {
    comm_.compute_work(flops, 0);
  }
  if (obs_ != nullptr) {
    // Per-rank work gauges: the summary derives the load-imbalance ratio
    // (max/mean over ranks) from these without extra communication.
    obs_->registry().gauge("gravity.work_flops").set(static_cast<double>(flops));
    obs_->registry()
        .gauge("gravity.local_bodies")
        .set(static_cast<double>(n));
    obs_->registry()
        .gauge("hot.tile_mean_occupancy")
        .set(stats_.mean_tile_occupancy());
  }
}

GravityResult GravityEngine::Impl::step(std::span<const Source> bodies,
                                        std::span<const double> prev_work,
                                        std::span<const double> aux,
                                        std::size_t aux_stride) {
  const std::uint64_t msgs0 = comm_.sent_messages();
  const std::uint64_t bytes0 = comm_.sent_bytes();
  const std::uint64_t batches0 = abm_.batches_sent();

  reset_step();

  const double t0 = comm_.barrier_max_time();
  if (obs_ != nullptr) obs_->begin("gravity.decompose");
  const morton::Box box = global_box(comm_, bodies);
  dec_ = decompose(comm_, bodies, prev_work, box, cfg_.decomp, aux, aux_stride);
  const double t1 = comm_.barrier_max_time();
  if (obs_ != nullptr) {
    obs_->end();  // gravity.decompose
    obs_->begin("gravity.build");
  }

  tree_.rebuild(dec_.bodies, box);
  if (cfg_.charge_compute) {
    // Tree construction is memory-traffic bound: sort + build touch each
    // body and cell a handful of times.
    comm_.compute_work(0, 200ull * dec_.bodies.size());
  }

  GravityResult out;
  out.domain = dec_.domains[static_cast<std::size_t>(comm_.rank())];

  exchange_cover();
  comm_.barrier();  // cover exchange complete everywhere before requests fly
  const double t2 = comm_.barrier_max_time();
  if (obs_ != nullptr) obs_->end();  // gravity.build
  run_walks(out);  // prefetch + gravity.traverse / gravity.terminate
  const double t3 = comm_.barrier_max_time();

  out.bodies = tree_.bodies();
  // dec_ and tree_ orders agree: decompose's output is key-sorted and the
  // tree's stable sort of sorted input is the identity, so the aux block
  // still lines up with out.bodies element-for-element.
  out.aux = std::move(dec_.aux);

  // Prefetch effectiveness: a prefetched key pays off exactly when the
  // traversal demanded it.
  for (Key k : prefetched_) {
    if (demanded_.count(k) != 0) {
      ++stats_.prefetch_hits;
      if (obs_ != nullptr) c_prefetch_hits_->add(1);
    } else {
      ++stats_.prefetch_wasted;
      if (obs_ != nullptr) c_prefetch_wasted_->add(1);
    }
  }

  // Next step's prefetch seed: the distinct keys demanded this step,
  // sorted so the posting order (and thus the message trace) is
  // reproducible run-to-run.
  ledger_.assign(demanded_.begin(), demanded_.end());
  std::sort(ledger_.begin(), ledger_.end());
  ++steps_;

  stats_.local_bodies = out.bodies.size();
  stats_.local_cells = tree_.cell_count();
  stats_.decompose_seconds = t1 - t0;
  stats_.build_seconds = t2 - t1;
  stats_.traverse_seconds = t3 - t2;
  stats_.vmpi_messages = comm_.sent_messages() - msgs0;
  stats_.vmpi_bytes = comm_.sent_bytes() - bytes0;
  stats_.abm_batches = abm_.batches_sent() - batches0;
  if (obs_ != nullptr) {
    obs_->registry().gauge("hot.engine_steps").set(static_cast<double>(steps_));
    if (comm_.rank() == 0) {
      // Pool counters are process-wide (all ranks share one pool); rank 0
      // mirrors the deltas so aggregated summaries count each task once.
      auto& pool = support::TaskPool::global();
      const support::TaskPool::Stats ps = pool.stats();
      c_pool_run_->add(ps.tasks_run - pool_seen_.tasks_run);
      c_pool_stolen_->add(ps.tasks_stolen - pool_seen_.tasks_stolen);
      c_pool_steals_failed_->add(ps.steals_failed - pool_seen_.steals_failed);
      obs_->registry().gauge("pool.threads").set(
          static_cast<double>(pool.size()));
      obs_->registry().gauge("pool.utilization").set(ps.utilization);
      pool_seen_ = ps;
      // Host kernel calibration (cached per process, so the first step
      // pays the microbenchmark once): 1.0 = the Karp-seeded rsqrt beat
      // libm for that kernel flavor on this host, 0.0 = libm won. The
      // Table 5 anomaly is precisely a host where the two flavors
      // disagree, so both are recorded.
      obs_->registry()
          .gauge("gravity.rsqrt_auto_scalar")
          .set(gravity::rsqrt_auto_choice(gravity::RsqrtFlavor::scalar) ==
                       RsqrtMethod::karp
                   ? 1.0
                   : 0.0);
      obs_->registry()
          .gauge("gravity.rsqrt_auto_batch")
          .set(gravity::rsqrt_auto_choice(gravity::RsqrtFlavor::batch) ==
                       RsqrtMethod::karp
                   ? 1.0
                   : 0.0);
    }
  }
  out.stats = stats_;
  return out;
}

// ---------------------------------------------------------------------------
// Public surface.
// ---------------------------------------------------------------------------

GravityEngine::GravityEngine(ss::vmpi::Comm& comm, const ParallelConfig& cfg)
    : impl_(std::make_unique<Impl>(comm, cfg)) {}

GravityEngine::~GravityEngine() = default;

GravityResult GravityEngine::step(std::span<const Source> bodies,
                                  std::span<const double> prev_work,
                                  std::span<const double> aux,
                                  std::size_t aux_stride) {
  return impl_->step(bodies, prev_work, aux, aux_stride);
}

std::uint64_t GravityEngine::steps_completed() const { return impl_->steps_; }

Tree& GravityEngine::tree() { return impl_->tree_; }

const Tree& GravityEngine::tree() const { return impl_->tree_; }

std::size_t GravityEngine::ledger_size() const { return impl_->ledger_.size(); }

std::span<const morton::Key> GravityEngine::ledger() const {
  return impl_->ledger_;
}

void GravityEngine::seed_ledger(std::span<const morton::Key> keys) {
  impl_->ledger_.assign(keys.begin(), keys.end());
  std::sort(impl_->ledger_.begin(), impl_->ledger_.end());
  impl_->ledger_.erase(
      std::unique(impl_->ledger_.begin(), impl_->ledger_.end()),
      impl_->ledger_.end());
}

GravityResult parallel_gravity(ss::vmpi::Comm& comm,
                               std::span<const Source> bodies,
                               std::span<const double> prev_work,
                               const ParallelConfig& cfg) {
  // One-shot wrapper: a fresh engine has an empty ledger, so no prefetch
  // fires and this is exactly the classic stateless evaluation.
  GravityEngine engine(comm, cfg);
  return engine.step(bodies, prev_work);
}

}  // namespace ss::hot
