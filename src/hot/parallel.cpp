#include "hot/parallel.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "gravity/batch.hpp"
#include "obs/obs.hpp"

namespace ss::hot {

using gravity::Moments;
using gravity::QuadTensor;
using morton::Key;

std::vector<Key> cover_cells(Key lo, Key hi) {
  std::vector<Key> cells;
  if (lo > hi) return cells;
  Key cursor = lo;
  for (;;) {
    // Grow the cell anchored at `cursor` as long as it stays aligned and
    // inside [cursor, hi].
    Key k = cursor;  // maximum-depth cell
    while (morton::level(k) > 0) {
      const Key up = morton::parent(k);
      if (morton::first_descendant(up) != cursor ||
          morton::last_descendant(up) > hi) {
        break;
      }
      k = up;
    }
    cells.push_back(k);
    const Key last = morton::last_descendant(k);
    if (last >= hi) break;
    cursor = last + 1;
  }
  return cells;
}

namespace {

// ---------------------------------------------------------------------------
// Wire formats (trivially copyable records for ABM channels).
// ---------------------------------------------------------------------------

struct WireCell {
  Key key = 0;
  double mass = 0.0;
  double com[3] = {0, 0, 0};
  double quad[6] = {0, 0, 0, 0, 0, 0};
  double bmax = 0.0;
  std::uint32_t count = 0;
  std::uint32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<WireCell>);

WireCell to_wire(Key key, const Moments& m, std::uint32_t count) {
  WireCell w;
  w.key = key;
  w.mass = m.mass;
  w.com[0] = m.com.x;
  w.com[1] = m.com.y;
  w.com[2] = m.com.z;
  w.quad[0] = m.quad.xx;
  w.quad[1] = m.quad.xy;
  w.quad[2] = m.quad.xz;
  w.quad[3] = m.quad.yy;
  w.quad[4] = m.quad.yz;
  w.quad[5] = m.quad.zz;
  w.bmax = m.bmax;
  w.count = count;
  return w;
}

Moments from_wire(const WireCell& w) {
  Moments m;
  m.mass = w.mass;
  m.com = {w.com[0], w.com[1], w.com[2]};
  m.quad.xx = w.quad[0];
  m.quad.xy = w.quad[1];
  m.quad.xz = w.quad[2];
  m.quad.yy = w.quad[3];
  m.quad.yz = w.quad[4];
  m.quad.zz = w.quad[5];
  m.bmax = w.bmax;
  return m;
}

// ABM channels.
constexpr std::uint32_t kChanRequest = 0;   // payload: Key
constexpr std::uint32_t kChanChildren = 1;  // payload: Key parent + WireCell[]
constexpr std::uint32_t kChanBodies = 2;    // payload: Key leaf + Source[]
constexpr std::uint32_t kChanQuiet = 3;     // payload: none (to rank 0)
constexpr std::uint32_t kChanDone = 4;      // payload: none (from rank 0)

// ---------------------------------------------------------------------------
// The per-rank traversal engine.
// ---------------------------------------------------------------------------

struct TopCell {
  Moments mom;
  std::uint32_t count = 0;
  bool cover = false;
  int owner = -1;
  std::vector<Key> children;
};

struct RemoteCell {
  Moments mom;
  std::uint32_t count = 0;
  int owner = -1;
  bool expanded = false;
  bool leaf = false;
  std::vector<Key> children;
  std::vector<Source> bodies;
};

struct Walk {
  std::uint32_t body = 0;
  Vec3 pos;
  std::vector<Key> stack;
  Accel acc;
  std::uint64_t body_interactions = 0;
  std::uint64_t cell_interactions = 0;
  std::uint64_t cells_opened = 0;
};

class Engine {
 public:
  Engine(ss::vmpi::Comm& comm, const ParallelConfig& cfg, const Tree& tree,
         const DecompResult& dec)
      : comm_(comm), cfg_(cfg), tree_(tree), dec_(dec), abm_(comm, cfg.abm) {
    // Observability: resolve the rank recorder (if any) and its counters
    // once; the traversal hot loop then pays one pointer test per event.
    obs_ = obs::tls();
    if (obs_ != nullptr) {
      auto& reg = obs_->registry();
      c_cache_hits_ = &reg.counter("hot.cache_hits");
      c_cache_misses_ = &reg.counter("hot.cache_misses");
      c_parked_ = &reg.counter("hot.walks_parked");
      c_resumed_ = &reg.counter("hot.walks_resumed");
      c_requests_ = &reg.counter("hot.remote_requests");
      c_served_ = &reg.counter("hot.requests_served");
      c_tile_flushes_ = &reg.counter("hot.tile_flushes");
      c_batched_ = &reg.counter("hot.batched_interactions");
      c_scalar_ = &reg.counter("hot.scalar_interactions");
    }
    body_tile_.reserve(cfg.tile_bodies);
    cell_tile_.reserve(cfg.tile_cells);
    abm_.on(kChanRequest, [this](int src, std::span<const std::byte> p) {
      serve_request(src, p);
    });
    abm_.on(kChanChildren, [this](int src, std::span<const std::byte> p) {
      handle_children(src, p);
    });
    abm_.on(kChanBodies, [this](int src, std::span<const std::byte> p) {
      handle_bodies(src, p);
    });
    abm_.on(kChanQuiet, [this](int, std::span<const std::byte>) {
      ++quiet_count_;
    });
    abm_.on(kChanDone,
            [this](int, std::span<const std::byte>) { done_ = true; });
  }

  void exchange_cover();
  void run_walks(GravityResult& out);

  const ParallelStats& stats() const { return stats_; }

 private:
  void build_top(const std::vector<WireCell>& covers,
                 const std::vector<int>& owners);
  void serve_request(int src, std::span<const std::byte> payload);
  void handle_children(int src, std::span<const std::byte> payload);
  void handle_bodies(int src, std::span<const std::byte> payload);
  /// Returns false if the walk parked waiting for remote data.
  bool advance(Walk& w);
  void park(Walk& w, Key k, int owner, std::uint32_t walk_idx);
  void direct_local_range(Walk& w, Key cell);
  void unpark(Key k);

  // Interaction-list plumbing. Accepted body ranges and accepted cells are
  // gathered into the engine-owned SoA tiles and flushed through the
  // batched kernels when a tile fills or the walk leaves advance() (the
  // tiles are shared across walks, so they never outlive one activation).
  void add_bodies(Walk& w, const Source* p, std::size_t n);
  void add_cell(Walk& w, const Moments& m);
  void flush_body_tile(Walk& w);
  void flush_cell_tile(Walk& w);
  void flush_tiles(Walk& w) {
    flush_body_tile(w);
    flush_cell_tile(w);
  }

  ss::vmpi::Comm& comm_;
  const ParallelConfig& cfg_;
  const Tree& tree_;
  const DecompResult& dec_;
  Abm abm_;

  std::unordered_map<Key, TopCell> top_;
  std::unordered_map<Key, RemoteCell> remote_;
  std::unordered_set<Key> requested_;
  std::unordered_map<Key, std::vector<std::uint32_t>> waiting_;

  std::vector<Walk> walks_;
  std::deque<std::uint32_t> ready_;
  std::uint64_t outstanding_ = 0;  // requests sent minus replies received

  // Interaction-list tiles + kernel scratch, reused across every walk and
  // flush: the traversal allocates nothing per walk after warm-up.
  gravity::SourcesSoA body_tile_;
  gravity::CellsSoA cell_tile_;
  gravity::TileScratch scratch_;

  int quiet_count_ = 0;  // rank 0 only
  bool sent_quiet_ = false;
  bool done_ = false;

  ParallelStats stats_;

  // Observability (all null when tracing is disabled).
  obs::Rank* obs_ = nullptr;
  obs::Counter* c_cache_hits_ = nullptr;
  obs::Counter* c_cache_misses_ = nullptr;
  obs::Counter* c_parked_ = nullptr;
  obs::Counter* c_resumed_ = nullptr;
  obs::Counter* c_requests_ = nullptr;
  obs::Counter* c_served_ = nullptr;
  obs::Counter* c_tile_flushes_ = nullptr;
  obs::Counter* c_batched_ = nullptr;
  obs::Counter* c_scalar_ = nullptr;
};

void Engine::add_bodies(Walk& w, const Source* p, std::size_t n) {
  if (n == 0) return;
  w.body_interactions += n;
  if (!cfg_.batch_interactions) {
    w.acc += gravity::interact(w.pos, std::span<const Source>(p, n), cfg_.eps2,
                               cfg_.method);
    stats_.scalar_body_interactions += n;
    if (obs_ != nullptr) c_scalar_->add(n);
    return;
  }
  const std::size_t cap = std::max<std::size_t>(cfg_.tile_bodies, 1);
  while (n > 0) {
    const std::size_t take = std::min(n, cap - body_tile_.size());
    body_tile_.append(p, take);
    p += take;
    n -= take;
    if (body_tile_.size() >= cap) flush_body_tile(w);
  }
}

void Engine::add_cell(Walk& w, const Moments& m) {
  ++w.cell_interactions;
  if (!cfg_.batch_interactions) {
    w.acc += gravity::evaluate(m, w.pos, cfg_.eps2, cfg_.method);
    ++stats_.scalar_cell_interactions;
    if (obs_ != nullptr) c_scalar_->add(1);
    return;
  }
  cell_tile_.push_back(m);
  if (cell_tile_.size() >= std::max<std::size_t>(cfg_.tile_cells, 1)) {
    flush_cell_tile(w);
  }
}

void Engine::flush_body_tile(Walk& w) {
  if (body_tile_.empty()) return;
  w.acc += gravity::interact_bodies_batch(w.pos, body_tile_, cfg_.eps2,
                                          cfg_.method, scratch_);
  stats_.batched_body_interactions += body_tile_.size();
  ++stats_.tile_flushes;
  if (obs_ != nullptr) {
    c_tile_flushes_->add(1);
    c_batched_->add(body_tile_.size());
  }
  body_tile_.clear();
}

void Engine::flush_cell_tile(Walk& w) {
  if (cell_tile_.empty()) return;
  w.acc += gravity::interact_cells_batch(w.pos, cell_tile_, cfg_.eps2,
                                         cfg_.method, scratch_);
  stats_.batched_cell_interactions += cell_tile_.size();
  ++stats_.tile_flushes;
  if (obs_ != nullptr) {
    c_tile_flushes_->add(1);
    c_batched_->add(cell_tile_.size());
  }
  cell_tile_.clear();
}

void Engine::exchange_cover() {
  const Domain dom = dec_.domains[static_cast<std::size_t>(comm_.rank())];
  std::vector<Key> cover = cover_cells(dom.lo, dom.hi);
  std::vector<WireCell> local_wire;
  local_wire.reserve(cover.size());
  for (Key k : cover) {
    if (const Cell* c = tree_.find(k)) {
      local_wire.push_back(to_wire(k, c->mom, c->count));
    } else {
      // No cell means either no bodies in range, or the bodies live in a
      // leaf above this cover cell. Compute moments from the key range.
      const auto& keys = tree_.keys();
      const auto lo = std::lower_bound(keys.begin(), keys.end(),
                                       morton::first_descendant(k));
      const auto hi = std::upper_bound(keys.begin(), keys.end(),
                                       morton::last_descendant(k));
      const auto first = static_cast<std::size_t>(lo - keys.begin());
      const auto count = static_cast<std::size_t>(hi - lo);
      const Moments m = Moments::of_particles(
          std::span<const Source>(tree_.bodies().data() + first, count));
      local_wire.push_back(to_wire(k, m, static_cast<std::uint32_t>(count)));
    }
  }
  stats_.cover_cells = local_wire.size();

  auto counts = comm_.allgather_value<std::uint32_t>(
      static_cast<std::uint32_t>(local_wire.size()));
  auto flat = comm_.allgather(
      std::span<const WireCell>(local_wire.data(), local_wire.size()));
  std::vector<int> owners;
  owners.reserve(flat.size());
  for (int r = 0; r < comm_.size(); ++r) {
    for (std::uint32_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i) {
      owners.push_back(r);
    }
  }
  build_top(flat, owners);
}

void Engine::build_top(const std::vector<WireCell>& covers,
                       const std::vector<int>& owners) {
  for (std::size_t i = 0; i < covers.size(); ++i) {
    TopCell tc;
    tc.mom = from_wire(covers[i]);
    tc.count = covers[i].count;
    tc.cover = true;
    tc.owner = owners[i];
    top_.emplace(covers[i].key, std::move(tc));
  }
  // Create ancestors level by level, deepest first.
  std::vector<Key> frontier;
  frontier.reserve(covers.size());
  for (const auto& w : covers) frontier.push_back(w.key);
  std::sort(frontier.begin(), frontier.end(), [](Key a, Key b) {
    return morton::level(a) != morton::level(b)
               ? morton::level(a) > morton::level(b)
               : a < b;
  });
  std::size_t i = 0;
  while (i < frontier.size()) {
    const int lev = morton::level(frontier[i]);
    if (lev == 0) break;
    // Group this level's keys into parents.
    std::vector<Key> parents;
    for (; i < frontier.size() && morton::level(frontier[i]) == lev; ++i) {
      const Key pk = morton::parent(frontier[i]);
      auto [it, created] = top_.try_emplace(pk);
      it->second.children.push_back(frontier[i]);
      if (created) parents.push_back(pk);
    }
    // Combine moments of freshly completed parents (children of a parent
    // all live at this level because cover ranges are disjoint and tiled).
    for (Key pk : parents) {
      TopCell& tc = top_[pk];
      std::vector<Moments> ms;
      ms.reserve(tc.children.size());
      tc.count = 0;
      for (Key ck : tc.children) {
        ms.push_back(top_[ck].mom);
        tc.count += top_[ck].count;
      }
      tc.mom = Moments::combine(ms);
    }
    // Parents join the frontier; keep level ordering by re-sorting the
    // remainder (parents are one level up, so they sort after this level).
    frontier.insert(frontier.end(), parents.begin(), parents.end());
    std::sort(frontier.begin() + static_cast<std::ptrdiff_t>(i),
              frontier.end(), [](Key a, Key b) {
                return morton::level(a) != morton::level(b)
                           ? morton::level(a) > morton::level(b)
                           : a < b;
              });
  }
  stats_.top_cells = top_.size();
}

void Engine::serve_request(int src, std::span<const std::byte> payload) {
  Key k;
  if (payload.size() != sizeof(Key)) {
    throw std::runtime_error("hot: bad request payload");
  }
  std::memcpy(&k, payload.data(), sizeof(Key));
  ++stats_.requests_served;
  if (obs_ != nullptr) c_served_->add(1);

  const Cell* c = tree_.find(k);
  if (c != nullptr && !c->leaf) {
    // Reply: parent key followed by the existing children's WireCells.
    std::vector<std::byte> buf(sizeof(Key));
    std::memcpy(buf.data(), &k, sizeof(Key));
    for (int o = 0; o < 8; ++o) {
      if (c->children[o] < 0) continue;
      const Cell& ch = tree_.cell(static_cast<std::uint32_t>(c->children[o]));
      const WireCell w = to_wire(ch.key, ch.mom, ch.count);
      const std::size_t off = buf.size();
      buf.resize(off + sizeof(WireCell));
      std::memcpy(buf.data() + off, &w, sizeof(WireCell));
    }
    abm_.post(src, kChanChildren, std::span<const std::byte>(buf));
    return;
  }

  // Leaf (or no explicit cell): reply with the bodies in k's key range.
  const Source* first = nullptr;
  std::size_t count = 0;
  if (c != nullptr) {
    first = tree_.bodies().data() + c->first;
    count = c->count;
  } else {
    const auto& keys = tree_.keys();
    const auto lo = std::lower_bound(keys.begin(), keys.end(),
                                     morton::first_descendant(k));
    const auto hi = std::upper_bound(keys.begin(), keys.end(),
                                     morton::last_descendant(k));
    first = tree_.bodies().data() + (lo - keys.begin());
    count = static_cast<std::size_t>(hi - lo);
  }
  std::vector<std::byte> buf(sizeof(Key) + count * sizeof(Source));
  std::memcpy(buf.data(), &k, sizeof(Key));
  if (count > 0) {
    std::memcpy(buf.data() + sizeof(Key), first, count * sizeof(Source));
  }
  abm_.post(src, kChanBodies, std::span<const std::byte>(buf));
}

void Engine::handle_children(int src, std::span<const std::byte> payload) {
  if (payload.size() < sizeof(Key) ||
      (payload.size() - sizeof(Key)) % sizeof(WireCell) != 0) {
    throw std::runtime_error("hot: bad children payload");
  }
  Key parent;
  std::memcpy(&parent, payload.data(), sizeof(Key));
  const std::size_t n = (payload.size() - sizeof(Key)) / sizeof(WireCell);

  RemoteCell& rc = remote_[parent];
  rc.expanded = true;
  rc.leaf = false;
  for (std::size_t i = 0; i < n; ++i) {
    WireCell w;
    std::memcpy(&w, payload.data() + sizeof(Key) + i * sizeof(WireCell),
                sizeof(WireCell));
    rc.children.push_back(w.key);
    RemoteCell& child = remote_[w.key];
    child.mom = from_wire(w);
    child.count = w.count;
    child.owner = src;
  }
  --outstanding_;
  unpark(parent);
}

void Engine::handle_bodies(int src, std::span<const std::byte> payload) {
  if (payload.size() < sizeof(Key) ||
      (payload.size() - sizeof(Key)) % sizeof(Source) != 0) {
    throw std::runtime_error("hot: bad bodies payload");
  }
  Key k;
  std::memcpy(&k, payload.data(), sizeof(Key));
  const std::size_t n = (payload.size() - sizeof(Key)) / sizeof(Source);
  RemoteCell& rc = remote_[k];
  rc.expanded = true;
  rc.leaf = true;
  rc.owner = src;
  rc.bodies.resize(n);
  if (n > 0) {
    std::memcpy(rc.bodies.data(), payload.data() + sizeof(Key),
                n * sizeof(Source));
  }
  --outstanding_;
  unpark(k);
}

void Engine::unpark(Key k) {
  auto it = waiting_.find(k);
  if (it == waiting_.end()) return;
  if (obs_ != nullptr) c_resumed_->add(it->second.size());
  for (std::uint32_t w : it->second) ready_.push_back(w);
  waiting_.erase(it);
}

void Engine::park(Walk& w, Key k, int owner, std::uint32_t walk_idx) {
  w.stack.push_back(k);  // retry this key on resume
  waiting_[k].push_back(walk_idx);
  ++stats_.walks_parked;
  if (obs_ != nullptr) c_parked_->add(1);
  if (requested_.insert(k).second) {
    abm_.post_value(owner, kChanRequest, k);
    ++stats_.remote_requests;
    ++outstanding_;
    if (obs_ != nullptr) c_requests_->add(1);
  }
}

void Engine::direct_local_range(Walk& w, Key cell) {
  const auto& keys = tree_.keys();
  const auto lo = std::lower_bound(keys.begin(), keys.end(),
                                   morton::first_descendant(cell));
  const auto hi = std::upper_bound(keys.begin(), keys.end(),
                                   morton::last_descendant(cell));
  const auto first = static_cast<std::size_t>(lo - keys.begin());
  const auto count = static_cast<std::size_t>(hi - lo);
  add_bodies(w, tree_.bodies().data() + first, count);
}

bool Engine::advance(Walk& w) {
  const auto walk_idx = static_cast<std::uint32_t>(&w - walks_.data());
  while (!w.stack.empty()) {
    const Key k = w.stack.back();
    w.stack.pop_back();

    // Resolution order: shared top tree, then the local tree (below local
    // cover cells), then the remote cache (below remote cover cells).
    if (auto it = top_.find(k); it != top_.end()) {
      const TopCell& tc = it->second;
      if (tc.count == 0) continue;
      if (gravity::mac_accept(tc.mom, w.pos, cfg_.theta)) {
        add_cell(w, tc.mom);
        continue;
      }
      ++w.cells_opened;
      if (!tc.cover) {
        for (Key ck : tc.children) w.stack.push_back(ck);
        continue;
      }
      if (tc.owner == comm_.rank()) {
        if (const Cell* c = tree_.find(k)) {
          if (c->leaf) {
            add_bodies(w, tree_.bodies().data() + c->first, c->count);
          } else {
            for (int o = 0; o < 8; ++o) {
              if (c->children[o] >= 0) {
                w.stack.push_back(
                    tree_.cell(static_cast<std::uint32_t>(c->children[o])).key);
              }
            }
          }
        } else {
          // Bodies live in a leaf above the cover cell.
          direct_local_range(w, k);
        }
        continue;
      }
      // Remote cover cell: treated like any remote cell below.
      RemoteCell& rc = remote_[k];
      if (rc.owner < 0) {
        rc.mom = tc.mom;
        rc.count = tc.count;
        rc.owner = tc.owner;
      }
      if (!rc.expanded) {
        if (obs_ != nullptr) c_cache_misses_->add(1);
        park(w, k, rc.owner, walk_idx);
        flush_tiles(w);  // tiles are engine-shared; don't leak across walks
        return false;
      }
      if (obs_ != nullptr) c_cache_hits_->add(1);
      if (rc.leaf) {
        add_bodies(w, rc.bodies.data(), rc.bodies.size());
      } else {
        for (Key ck : rc.children) w.stack.push_back(ck);
      }
      continue;
    }

    if (const Cell* c = tree_.find(k)) {
      if (c->count == 0) continue;
      if (c->leaf) {
        add_bodies(w, tree_.bodies().data() + c->first, c->count);
        continue;
      }
      if (gravity::mac_accept(c->mom, w.pos, cfg_.theta)) {
        add_cell(w, c->mom);
        continue;
      }
      ++w.cells_opened;
      for (int o = 0; o < 8; ++o) {
        if (c->children[o] >= 0) {
          w.stack.push_back(
              tree_.cell(static_cast<std::uint32_t>(c->children[o])).key);
        }
      }
      continue;
    }

    auto rit = remote_.find(k);
    if (rit == remote_.end()) {
      throw std::logic_error("hot: traversal reached unknown key");
    }
    RemoteCell& rc = rit->second;
    if (rc.count == 0) continue;
    if (gravity::mac_accept(rc.mom, w.pos, cfg_.theta)) {
      add_cell(w, rc.mom);
      continue;
    }
    ++w.cells_opened;
    if (!rc.expanded) {
      if (obs_ != nullptr) c_cache_misses_->add(1);
      park(w, k, rc.owner, walk_idx);
      flush_tiles(w);  // tiles are engine-shared; don't leak across walks
      return false;
    }
    if (obs_ != nullptr) c_cache_hits_->add(1);
    if (rc.leaf) {
      add_bodies(w, rc.bodies.data(), rc.bodies.size());
    } else {
      for (Key ck : rc.children) w.stack.push_back(ck);
    }
  }
  // Walk complete: drain this walk's pending interaction lists.
  flush_tiles(w);
  return true;
}

void Engine::run_walks(GravityResult& out) {
  const auto n = tree_.bodies().size();
  walks_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    walks_[i].body = static_cast<std::uint32_t>(i);
    walks_[i].pos = tree_.bodies()[i].pos;
    walks_[i].stack.push_back(morton::kRootKey);
    ready_.push_back(static_cast<std::uint32_t>(i));
  }
  std::size_t completed = 0;

  // Trace the paper's stage 3/4 split: "traverse" is this rank walking
  // its bodies (parking on remote misses), "terminate" is the tail where
  // local walks are done and the rank only serves peers and waits for
  // the quiet/done protocol.
  bool in_terminate = false;
  if (obs_ != nullptr) obs_->begin("gravity.traverse");

  const bool single = comm_.size() == 1;
  while (!done_) {
    // Service incoming traffic first so replies unpark walks promptly.
    const std::size_t handled = abm_.poll();
    if (handled == 0 && ready_.empty() && !single) {
      std::this_thread::yield();  // idle: let peer rank threads progress
    }

    std::size_t burst = 0;
    while (!ready_.empty() && burst < 256) {
      const std::uint32_t idx = ready_.front();
      ready_.pop_front();
      if (advance(walks_[idx])) ++completed;
      ++burst;
    }
    abm_.flush();

    if (completed == n && outstanding_ == 0 && !sent_quiet_) {
      sent_quiet_ = true;
      if (obs_ != nullptr && !in_terminate) {
        obs_->end();  // gravity.traverse
        obs_->begin("gravity.terminate");
        in_terminate = true;
      }
      if (comm_.rank() == 0) {
        ++quiet_count_;
      } else {
        abm_.post_value<std::uint8_t>(0, kChanQuiet, 1);
        abm_.flush();
      }
    }
    if (comm_.rank() == 0 && quiet_count_ == comm_.size()) {
      for (int r = 1; r < comm_.size(); ++r) {
        abm_.post_value<std::uint8_t>(r, kChanDone, 1);
      }
      abm_.flush();
      done_ = true;
    }
    if (single && sent_quiet_) done_ = true;
  }
  if (obs_ != nullptr) {
    if (!in_terminate) {
      obs_->end();  // gravity.traverse (no separate termination tail seen)
      obs_->begin("gravity.terminate");
    }
    obs_->end();  // gravity.terminate
  }

  // Collect results and per-body work estimates (flops, the paper's
  // weighting for the next decomposition).
  out.accel.resize(n);
  out.work.resize(n);
  std::uint64_t flops = 0;
  for (const Walk& w : walks_) {
    out.accel[w.body] = w.acc;
    const std::uint64_t wf =
        w.body_interactions * gravity::kFlopsPerInteraction +
        w.cell_interactions * gravity::kFlopsPerCellInteraction;
    out.work[w.body] = static_cast<double>(wf);
    flops += wf;
    stats_.traverse.body_interactions += w.body_interactions;
    stats_.traverse.cell_interactions += w.cell_interactions;
    stats_.traverse.cells_opened += w.cells_opened;
  }
  if (cfg_.charge_compute) {
    comm_.compute_work(flops, 0);
  }
  if (obs_ != nullptr) {
    // Per-rank work gauges: the summary derives the load-imbalance ratio
    // (max/mean over ranks) from these without extra communication.
    obs_->registry().gauge("gravity.work_flops").set(static_cast<double>(flops));
    obs_->registry()
        .gauge("gravity.local_bodies")
        .set(static_cast<double>(n));
    obs_->registry()
        .gauge("hot.tile_mean_occupancy")
        .set(stats_.mean_tile_occupancy());
  }
  out.stats = stats_;
}

}  // namespace

GravityResult parallel_gravity(ss::vmpi::Comm& comm,
                               std::span<const Source> bodies,
                               std::span<const double> prev_work,
                               const ParallelConfig& cfg) {
  obs::Rank* orec = obs::tls();

  const double t0 = comm.barrier_max_time();
  if (orec != nullptr) orec->begin("gravity.decompose");
  const morton::Box box = global_box(comm, bodies);
  DecompResult dec = decompose(comm, bodies, prev_work, box, cfg.decomp);
  const double t1 = comm.barrier_max_time();
  if (orec != nullptr) {
    orec->end();  // gravity.decompose
    orec->begin("gravity.build");
  }

  Tree tree(dec.bodies, box, cfg.tree);
  if (cfg.charge_compute) {
    // Tree construction is memory-traffic bound: sort + build touch each
    // body and cell a handful of times.
    comm.compute_work(0, 200ull * dec.bodies.size());
  }

  GravityResult out;
  out.domain = dec.domains[static_cast<std::size_t>(comm.rank())];

  Engine engine(comm, cfg, tree, dec);
  engine.exchange_cover();
  comm.barrier();  // cover exchange complete everywhere before requests fly
  const double t2 = comm.barrier_max_time();
  if (orec != nullptr) orec->end();  // gravity.build
  engine.run_walks(out);  // opens gravity.traverse / gravity.terminate
  const double t3 = comm.barrier_max_time();

  out.bodies = tree.bodies();
  ParallelStats st = engine.stats();
  st.local_bodies = out.bodies.size();
  st.local_cells = tree.cell_count();
  st.decompose_seconds = t1 - t0;
  st.build_seconds = t2 - t1;
  st.traverse_seconds = t3 - t2;
  out.stats = st;
  return out;
}

}  // namespace ss::hot
