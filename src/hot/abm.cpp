#include "hot/abm.hpp"

#include <stdexcept>

namespace ss::hot {

Abm::Abm(ss::vmpi::Comm& comm, Config cfg)
    : comm_(comm),
      cfg_(cfg),
      outgoing_(static_cast<std::size_t>(comm.size())) {}

void Abm::on(std::uint32_t channel, Handler h) {
  if (handlers_.size() <= channel) handlers_.resize(channel + 1);
  handlers_[channel] = std::move(h);
}

void Abm::post(int dst, std::uint32_t channel,
               std::span<const std::byte> payload) {
  auto& buf = outgoing_[static_cast<std::size_t>(dst)];
  const Record rec{channel, static_cast<std::uint32_t>(payload.size())};
  const std::size_t off = buf.size();
  buf.resize(off + sizeof(Record) + payload.size());
  std::memcpy(buf.data() + off, &rec, sizeof(Record));
  std::memcpy(buf.data() + off + sizeof(Record), payload.data(),
              payload.size());
  ++records_posted_;
  if (buf.size() >= cfg_.batch_bytes) {
    comm_.send_bytes(dst, cfg_.tag, buf);
    buf.clear();
    ++batches_sent_;
  }
}

void Abm::flush() {
  for (int dst = 0; dst < comm_.size(); ++dst) {
    auto& buf = outgoing_[static_cast<std::size_t>(dst)];
    if (!buf.empty()) {
      comm_.send_bytes(dst, cfg_.tag, buf);
      buf.clear();
      ++batches_sent_;
    }
  }
}

std::size_t Abm::poll() {
  std::size_t dispatched = 0;
  while (auto msg = comm_.try_recv(ss::vmpi::kAnySource, cfg_.tag)) {
    const std::byte* p = msg->data.data();
    const std::byte* end = p + msg->data.size();
    while (p < end) {
      Record rec;
      if (p + sizeof(Record) > end) {
        throw std::runtime_error("ABM: truncated batch header");
      }
      std::memcpy(&rec, p, sizeof(Record));
      p += sizeof(Record);
      if (p + rec.bytes > end) {
        throw std::runtime_error("ABM: truncated batch payload");
      }
      if (rec.channel >= handlers_.size() || !handlers_[rec.channel]) {
        throw std::runtime_error("ABM: no handler for channel");
      }
      handlers_[rec.channel](msg->src, {p, rec.bytes});
      p += rec.bytes;
      ++dispatched;
    }
  }
  return dispatched;
}

}  // namespace ss::hot
