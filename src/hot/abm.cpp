#include "hot/abm.hpp"

#include <stdexcept>
#include <string>

namespace ss::hot {

Abm::Abm(ss::vmpi::Comm& comm, Config cfg)
    : comm_(comm),
      cfg_(cfg),
      outgoing_(static_cast<std::size_t>(comm.size())),
      obs_(obs::tls()) {
  if (obs_ != nullptr) {
    auto& reg = obs_->registry();
    obs_records_ = &reg.counter("abm.records_posted");
    obs_batches_ = &reg.counter("abm.batches_sent");
    obs_eager_ = &reg.counter("abm.eager_flushes");
    obs_dispatched_ = &reg.counter("abm.records_dispatched");
    obs_pool_reuses_ = &reg.counter("abm.pool_reuses");
  }
}

obs::Counter* Abm::channel_counter(std::uint32_t channel) {
  if (obs_channel_.size() <= channel) obs_channel_.resize(channel + 1, nullptr);
  obs::Counter*& slot = obs_channel_[channel];
  if (slot == nullptr) {
    slot = &obs_->registry().counter("abm.records_posted.ch" +
                                     std::to_string(channel));
  }
  return slot;
}

void Abm::on(std::uint32_t channel, Handler h) {
  if (handlers_.size() <= channel) handlers_.resize(channel + 1);
  handlers_[channel] = std::move(h);
}

std::vector<std::byte> Abm::acquire_buffer() {
  if (!pool_.empty()) {
    std::vector<std::byte> buf = std::move(pool_.back());
    pool_.pop_back();
    buf.clear();  // keeps capacity
    ++pool_reuses_;
    if (obs_ != nullptr) obs_pool_reuses_->add(1);
    return buf;
  }
  return {};
}

void Abm::recycle_buffer(std::vector<std::byte>&& buf) {
  if (pool_.size() < cfg_.pool_buffers && buf.capacity() > 0) {
    pool_.push_back(std::move(buf));
  }
}

void Abm::ship(int dst, std::vector<std::byte>& buf, bool eager) {
  // Zero-copy: the batch buffer becomes the vmpi message payload. The
  // destination slot is refilled from the recycle pool so the next post()
  // usually writes into warm, already-sized memory.
  comm_.send_bytes_move(dst, cfg_.tag, std::move(buf));
  buf = acquire_buffer();
  ++batches_sent_;
  if (obs_ != nullptr) {
    obs_batches_->add(1);
    if (eager) obs_eager_->add(1);
  }
}

void Abm::post(int dst, std::uint32_t channel,
               std::span<const std::byte> payload) {
  auto& buf = outgoing_[static_cast<std::size_t>(dst)];
  const Record rec{channel, static_cast<std::uint32_t>(payload.size())};
  const std::size_t off = buf.size();
  buf.resize(off + sizeof(Record) + payload.size());
  std::memcpy(buf.data() + off, &rec, sizeof(Record));
  std::memcpy(buf.data() + off + sizeof(Record), payload.data(),
              payload.size());
  ++records_posted_;
  if (obs_ != nullptr) {
    obs_records_->add(1);
    channel_counter(channel)->add(1);
  }
  if (buf.size() >= cfg_.batch_bytes) {
    ship(dst, buf, /*eager=*/true);
  }
}

void Abm::flush() {
  for (int dst = 0; dst < comm_.size(); ++dst) {
    auto& buf = outgoing_[static_cast<std::size_t>(dst)];
    if (!buf.empty()) {
      ship(dst, buf, /*eager=*/false);
    }
  }
}

std::size_t Abm::poll() {
  std::size_t dispatched = 0;
  while (auto msg = comm_.try_recv(ss::vmpi::kAnySource, cfg_.tag)) {
    const std::byte* p = msg->data.data();
    const std::byte* end = p + msg->data.size();
    while (p < end) {
      Record rec;
      if (p + sizeof(Record) > end) {
        throw std::runtime_error("ABM: truncated batch header");
      }
      std::memcpy(&rec, p, sizeof(Record));
      p += sizeof(Record);
      if (p + rec.bytes > end) {
        throw std::runtime_error("ABM: truncated batch payload");
      }
      if (rec.channel >= handlers_.size() || !handlers_[rec.channel]) {
        throw std::runtime_error("ABM: no handler for channel");
      }
      handlers_[rec.channel](msg->src, {p, rec.bytes});
      p += rec.bytes;
      ++dispatched;
    }
    // The message's payload is done being read; its allocation feeds the
    // send-side pool so the next ship() starts from warm memory.
    recycle_buffer(msg->take_data());
  }
  if (dispatched > 0 && obs_ != nullptr) obs_dispatched_->add(dispatched);
  return dispatched;
}

}  // namespace ss::hot
