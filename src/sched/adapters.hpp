// Workload adapters: run one JobSpec on a gang's sub-communicator.
//
// Each adapter runs SPMD on every rank of the job's partition, with the
// Comm already switched to gang-local coordinates. Adapters call
// JobContext::heartbeat(step) at every step boundary; the heartbeat
// ticks the shared FaultInjector with this rank's *fabric node* and, via
// a gang allreduce, converts a single injected node death into a
// synchronized JobKilled throw on every member — the job tears down as a
// unit (gang semantics) while co-resident tenants keep running.
#pragma once

#include <cstdint>
#include <filesystem>

#include "io/fault.hpp"
#include "sched/job.hpp"
#include "vmpi/comm.hpp"

namespace ss::sched {

/// Thrown (on every gang rank) when a fault kills a member node. Caught
/// by the worker loop, which reports the kill to the head for
/// restore-or-requeue; unlike io::RankFailure it never reaches
/// Runtime::run, so the shared fabric is not torn down.
struct JobKilled {
  int job = -1;
  std::uint64_t step = 0;
  int node = -1;  ///< The fabric node that died.
};

/// Thrown (on every gang rank, agreed by allreduce) when the adapter's
/// integrity scan finds corrupted job state. The worker loop reports it
/// to the head, which requeues the job like a node kill — but with no
/// victim node (and so no node cooldown): the result is untrustworthy,
/// the hardware placement is not implicated.
struct JobCorrupted {
  int job = -1;
  std::uint64_t step = 0;
  int rank = -1;  ///< Gang rank whose state scanned bad.
};

struct JobOutcome {
  std::uint64_t steps_done = 0;
  double metric = 0.0;
  bool restored = false;  ///< Resumed from a checkpoint (nbody only).
  std::uint64_t restored_step = 0;
};

/// Everything an adapter needs on one gang rank.
struct JobContext {
  const JobSpec* spec = nullptr;
  vmpi::Comm* sub = nullptr;  ///< Gang-local coordinates (rank 0 = root).
  std::filesystem::path job_dir;
  io::FaultInjector* fault = nullptr;  ///< Shared; null = no injection.
  int node = 0;  ///< Fabric node this rank is placed on.
  int attempt = 0;  ///< Head-assigned attempt index (0 = first try).

  /// Collective over the gang: tick the injector and, if any member's
  /// node died this step, throw JobKilled everywhere.
  void heartbeat(std::uint64_t step);
};

/// Dispatch on spec->kind. Collective over the gang; throws JobKilled on
/// an injected member death.
JobOutcome run_job(JobContext& ctx);

}  // namespace ss::sched
