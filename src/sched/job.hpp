// Job and campaign model for the ensemble scheduler.
//
// The Space Simulator was operated as a shared resource: cosmology
// parameter sweeps (paper Fig 7), supernova progenitor grids (Fig 8) and
// benchmark batches (NPB, Linpack) queued against one 294-node fabric.
// A JobSpec describes one such job — what to run, how many ranks it
// gangs together, and how urgent it is; a Campaign is the ordered batch
// a ClusterService drains onto the shared virtual cluster.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ss::sched {

/// Workload families the scheduler knows how to launch on a partition.
enum class JobKind : int {
  nbody = 0,    ///< Distributed treecode integration (fig7/fig8 proxies).
  npb = 1,      ///< One NPB kernel (cg/mg/ft/is), modeled class S.
  hpl = 2,      ///< Parallel LU solve (Linpack-style).
  traffic = 3,  ///< Pairwise bandwidth probe (pure fabric load).
};

const char* to_string(JobKind k);

struct JobSpec {
  int id = -1;  ///< Assigned by Campaign::add; stable across service runs.
  std::string name;
  JobKind kind = JobKind::nbody;
  int gang = 4;      ///< Ranks requested (one contiguous partition).
  int priority = 0;  ///< Larger = placed earlier; ties broken by id.
  std::uint64_t seed = 42;

  // nbody
  int bodies = 96;
  std::uint64_t steps = 4;
  double dt = 1e-3;
  std::uint64_t checkpoint_every = 2;  ///< 0: only the base generation.
  /// Silent-data-corruption drill (0 = off): on the job's FIRST attempt,
  /// flip one byte of gang rank 0's particle array at this step. The
  /// adapter's detect-only integrity scan flags it, the gang throws
  /// JobCorrupted, and the head requeues the job like a node kill (minus
  /// the node cooldown — the memory, not the node, is suspect).
  std::uint64_t sdc_corrupt_step = 0;

  // npb
  std::string npb_kernel = "cg";  ///< cg | mg | ft | is

  // hpl
  std::uint64_t hpl_n = 64;

  // traffic
  std::uint64_t traffic_iters = 4;
  std::uint64_t traffic_chunks = 8;
  std::uint64_t traffic_chunk_bytes = 1u << 18;
};

/// A named batch of jobs. Job ids are dense indices into `jobs`.
struct Campaign {
  std::string name = "campaign";
  std::vector<JobSpec> jobs;

  /// Append a job; returns its id.
  int add(JobSpec spec) {
    spec.id = static_cast<int>(jobs.size());
    jobs.push_back(std::move(spec));
    return jobs.back().id;
  }
};

enum class JobState : int {
  pending = 0,       ///< Still queued when the service stopped.
  done = 1,          ///< Completed this service run (result committed).
  failed = 2,        ///< Exhausted max_attempts.
  skipped_done = 3,  ///< Valid result found on disk; not rerun.
};

const char* to_string(JobState s);

/// Per-job outcome as the head saw it (merged into CampaignResult and
/// mirrored into the `job.<id>.*` obs rollups).
struct JobRecord {
  int id = -1;
  std::string name;
  JobKind kind = JobKind::nbody;
  int gang = 0;
  JobState state = JobState::pending;
  int attempts = 0;  ///< Assignments this service run.
  int requeues = 0;  ///< Kill-triggered re-assignments this run.
  int base = -1;     ///< World-rank base of the last partition.
  double queue_wait = 0.0;  ///< Virtual seconds from submit to first gang.
  double wall = 0.0;        ///< Virtual seconds of the completing attempt.
  std::uint64_t messages = 0;  ///< Gang messages during the job (collectives
  std::uint64_t bytes = 0;     ///< included), summed over members.
  double metric = 0.0;  ///< Adapter figure: energy (nbody), Mop/s (npb),
                        ///< residual (hpl), delivered bps (traffic).
  std::uint64_t steps_done = 0;
  bool restored = false;  ///< Resumed from a checkpoint generation.
  std::uint64_t restored_step = 0;
};

// -- campaign factories ------------------------------------------------------

/// One member of the Fig 7 cosmology sweep: a small self-gravitating
/// sphere whose seed varies across the grid.
JobSpec fig7_job(int index, int gang = 4, std::uint64_t steps = 4);

/// One member of the Fig 8 progenitor grid: denser core, shorter runs,
/// higher priority (the paper's supernova jobs were the interactive
/// workload between cosmology sweeps).
JobSpec fig8_job(int index, int gang = 2, std::uint64_t steps = 3);

JobSpec npb_job(const std::string& kernel, int gang = 4);
JobSpec linpack_job(std::uint64_t n, int gang = 4);
JobSpec traffic_job(int index, int gang = 4, std::uint64_t iters = 4,
                    std::uint64_t chunks = 8,
                    std::uint64_t chunk_bytes = 1u << 18);

}  // namespace ss::sched
