// Campaign manifest + per-job results on disk (SSBLOCK1).
//
// Layout under the campaign directory:
//
//   manifest.ssb            campaign identity: job ids/kinds/gangs/names.
//                           Written atomically once; a reopening service
//                           validates its campaign against it, so a
//                           resumed queue cannot silently run different
//                           jobs under old results.
//   jobs/job_NNNN/          one directory per job:
//     ckpt/                 the job's CheckpointStore (nbody restore).
//     result.ssb            the commit marker. Written atomically by the
//                           gang root when (and only when) the job
//                           completes; a job is "done" exactly when this
//                           file exists and validates (CRCs + id match).
//
// A killed service therefore resumes by scanning result files: finished
// jobs are skipped, half-written results (no file, stray .tmp, damaged
// blocks) are rerun.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "sched/job.hpp"

namespace ss::sched {

/// Result payload committed per job (subset of JobRecord that the gang
/// root knows; queue-side fields like queue_wait live with the head).
struct JobResult {
  int id = -1;
  int attempt = 0;  ///< Attempt (within its service run) that finished.
  double wall = 0.0;
  double metric = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t steps_done = 0;
  bool restored = false;
  std::uint64_t restored_step = 0;
};

class CampaignStore {
 public:
  /// Open (creating directories as needed). Writes the manifest if
  /// absent; otherwise validates `campaign` against it and throws
  /// io::FormatError on any mismatch.
  CampaignStore(std::filesystem::path dir, const Campaign& campaign);

  const std::filesystem::path& dir() const { return dir_; }
  std::filesystem::path job_dir(int id) const;      ///< Created on demand.
  std::filesystem::path result_path(int id) const;  ///< job_dir/result.ssb

  /// Atomically commit a job's result (the completion marker).
  void commit_result(const JobResult& r);

  /// The committed result for `id`, if one exists and validates (all
  /// payload CRCs good, id matches). Damaged or foreign files: nullopt.
  std::optional<JobResult> load_result(int id) const;

  /// Ids of all jobs with a valid committed result.
  std::vector<int> completed() const;

 private:
  std::filesystem::path dir_;
  int njobs_;
};

}  // namespace ss::sched
