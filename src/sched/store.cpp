#include "sched/store.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "io/blockfile.hpp"

namespace ss::sched {

namespace {

constexpr char kManifestName[] = "manifest.ssb";

std::string join_names(const Campaign& c) {
  std::string out;
  for (const JobSpec& j : c.jobs) {
    out += j.name;
    out += '\n';
  }
  return out;
}

std::vector<std::byte> manifest_image(const Campaign& c) {
  io::BlockBuilder b;
  const std::size_t n = c.jobs.size();
  std::vector<std::uint64_t> kinds(n), gangs(n);
  std::vector<std::int64_t> prios(n);
  for (std::size_t i = 0; i < n; ++i) {
    kinds[i] = static_cast<std::uint64_t>(c.jobs[i].kind);
    gangs[i] = static_cast<std::uint64_t>(c.jobs[i].gang);
    prios[i] = c.jobs[i].priority;
  }
  b.add_scalar("njobs", static_cast<std::uint64_t>(n));
  b.add<std::uint64_t>("kinds", kinds);
  b.add<std::uint64_t>("gangs", gangs);
  b.add<std::int64_t>("priorities", prios);
  const std::string names = join_names(c);
  b.add<char>("names", std::span<const char>(names.data(), names.size()));
  return b.finish();
}

}  // namespace

CampaignStore::CampaignStore(std::filesystem::path dir,
                             const Campaign& campaign)
    : dir_(std::move(dir)), njobs_(static_cast<int>(campaign.jobs.size())) {
  std::filesystem::create_directories(dir_ / "jobs");
  const auto path = dir_ / kManifestName;
  const auto fresh = manifest_image(campaign);
  if (!std::filesystem::exists(path)) {
    io::write_file_atomic(path, fresh);
    return;
  }
  // Reopen: the on-disk manifest must describe this exact campaign.
  io::BlockReader have(path);
  have.verify_all();
  io::BlockReader want(fresh, "<campaign>");
  for (const char* block : {"njobs", "kinds", "gangs", "names"}) {
    const auto a = have.payload_checked(have.info(block));
    const auto b = want.payload_checked(want.info(block));
    if (a.size() != b.size() ||
        !std::equal(a.begin(), a.end(), b.begin())) {
      throw io::FormatError(dir_.string() +
                            ": campaign does not match on-disk manifest "
                            "(block '" +
                            block + "' differs)");
    }
  }
}

std::filesystem::path CampaignStore::job_dir(int id) const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "job_%04d", id);
  auto p = dir_ / "jobs" / buf;
  std::filesystem::create_directories(p);
  return p;
}

std::filesystem::path CampaignStore::result_path(int id) const {
  return job_dir(id) / "result.ssb";
}

void CampaignStore::commit_result(const JobResult& r) {
  io::BlockBuilder b;
  b.add_scalar("job_id", static_cast<std::uint64_t>(r.id));
  b.add_scalar("attempt", static_cast<std::uint64_t>(r.attempt));
  b.add_scalar("wall_seconds", r.wall);
  b.add_scalar("metric", r.metric);
  b.add_scalar("messages", r.messages);
  b.add_scalar("bytes", r.bytes);
  b.add_scalar("steps_done", r.steps_done);
  b.add_scalar("restored", static_cast<std::uint64_t>(r.restored ? 1 : 0));
  b.add_scalar("restored_step", r.restored_step);
  io::write_file_atomic(result_path(r.id), b.finish());
}

std::optional<JobResult> CampaignStore::load_result(int id) const {
  const auto path = result_path(id);
  if (!std::filesystem::exists(path)) return std::nullopt;
  try {
    io::BlockReader r(path);
    r.verify_all();
    JobResult out;
    out.id = static_cast<int>(r.read_u64("job_id"));
    if (out.id != id) return std::nullopt;
    out.attempt = static_cast<int>(r.read_u64("attempt"));
    out.wall = r.read_f64("wall_seconds");
    out.metric = r.read_f64("metric");
    out.messages = r.read_u64("messages");
    out.bytes = r.read_u64("bytes");
    out.steps_done = r.read_u64("steps_done");
    out.restored = r.read_u64("restored") != 0;
    out.restored_step = r.read_u64("restored_step");
    return out;
  } catch (const io::IoError&) {
    return std::nullopt;  // damaged marker: the job is not done
  }
}

std::vector<int> CampaignStore::completed() const {
  std::vector<int> out;
  for (int id = 0; id < njobs_; ++id) {
    if (load_result(id)) out.push_back(id);
  }
  return out;
}

}  // namespace ss::sched
